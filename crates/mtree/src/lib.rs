//! A paged M-tree (Ciaccia et al.) with optional pivot-space augmentation.
//!
//! The M-tree is the storage substrate of two of the paper's indexes:
//!
//! * **CPT** (§3.3) uses a plain M-tree to cluster objects on disk, with the
//!   distance table kept in main memory;
//! * the **PM-tree** (§5.1) is an M-tree whose leaf entries additionally
//!   carry the pivot-mapped vector of their object, and whose routing
//!   entries carry a minimum bounding box over the mapped vectors of their
//!   subtree ("cut-region" rings). Enabling `pivots` on [`MTree`] yields
//!   exactly that structure.
//!
//! Objects are stored *inline* in the nodes — the property that forces CPT
//! and the PM-tree onto 40 KB pages for high-dimensional data (paper §6.1)
//! and that the experiments surface as poor page utilization (§6.5.2).
//!
//! Every node is one disk page; entries are variable-length (objects are
//! serialized with [`EncodeObject`]), so node capacity is byte-bounded and
//! splits trigger on serialized size.

use pmi_metric::lemmas;
use pmi_metric::{EncodeObject, Metric};
use pmi_storage::{DiskSim, PageId};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// A leaf entry: one data object.
#[derive(Clone, Debug)]
pub struct LeafEntry<O> {
    /// Object identifier.
    pub oid: u32,
    /// Distance to the routing object of the parent entry (∞ at the root).
    pub pd: f64,
    /// The object itself, stored inline.
    pub obj: O,
    /// Pivot-mapped vector `⟨d(o,p_1),…,d(o,p_l)⟩`; empty when the tree is
    /// not pivot-augmented.
    pub mapped: Vec<f64>,
}

/// A routing (internal) entry.
#[derive(Clone, Debug)]
pub struct RoutingEntry<O> {
    /// Child node page.
    pub child: PageId,
    /// Covering radius: max distance from the routing object to any object
    /// in the subtree.
    pub radius: f64,
    /// Distance to the parent entry's routing object (∞ at the root).
    pub pd: f64,
    /// The routing object, stored inline.
    pub robj: O,
    /// Per-pivot lower bounds of the subtree's mapped vectors.
    pub mbb_lo: Vec<f64>,
    /// Per-pivot upper bounds of the subtree's mapped vectors.
    pub mbb_hi: Vec<f64>,
}

/// A decoded M-tree node.
#[derive(Clone, Debug)]
pub enum Node<O> {
    /// Leaf level: data objects.
    Leaf(Vec<LeafEntry<O>>),
    /// Internal level: routing entries.
    Internal(Vec<RoutingEntry<O>>),
}

enum InsertOutcome<O> {
    /// Subtree absorbed the object.
    Done,
    /// Subtree split: replace its routing entry with these two.
    Split(RoutingEntry<O>, RoutingEntry<O>),
}

/// A paged M-tree. `pivots` non-empty enables PM-tree augmentation.
pub struct MTree<O, M> {
    disk: DiskSim,
    metric: M,
    pivots: Vec<O>,
    root: Option<PageId>,
    height: usize,
    len: usize,
    pages_used: usize,
    free: Vec<PageId>,
    /// oid → leaf page, maintained across splits so CPT can fetch objects
    /// through its distance-table pointers (paper Fig. 6).
    loc: HashMap<u32, PageId>,
}

impl<O: EncodeObject + Clone, M: Metric<O>> MTree<O, M> {
    /// Creates an empty M-tree. Pass pivot objects to enable PM-tree
    /// augmentation (empty slice = plain M-tree).
    pub fn new(disk: DiskSim, metric: M, pivots: Vec<O>) -> Self {
        MTree {
            disk,
            metric,
            pivots,
            root: None,
            height: 0,
            len: 0,
            pages_used: 0,
            free: Vec::new(),
            loc: HashMap::new(),
        }
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tree height (0 when empty).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Pages owned.
    pub fn pages_used(&self) -> usize {
        self.pages_used
    }

    /// Bytes on disk.
    pub fn disk_bytes(&self) -> u64 {
        (self.pages_used * self.disk.page_size()) as u64
    }

    /// The disk handle.
    pub fn disk(&self) -> &DiskSim {
        &self.disk
    }

    /// The metric (all tree distance computations go through it).
    pub fn metric(&self) -> &M {
        &self.metric
    }

    /// Number of augmentation pivots (0 = plain M-tree).
    pub fn num_pivots(&self) -> usize {
        self.pivots.len()
    }

    /// Maps an object to its pivot-distance vector (computes distances).
    pub fn map_object(&self, o: &O) -> Vec<f64> {
        self.pivots.iter().map(|p| self.metric.dist(o, p)).collect()
    }

    /// Inserts an object under id `oid`.
    pub fn insert(&mut self, oid: u32, o: &O) {
        let mapped = self.map_object(o);
        let entry = LeafEntry {
            oid,
            pd: f64::INFINITY,
            obj: o.clone(),
            mapped,
        };
        match self.root {
            None => {
                let pid = self.alloc_page();
                self.write_node(pid, &Node::Leaf(vec![entry]));
                self.loc.insert(oid, pid);
                self.root = Some(pid);
                self.height = 1;
            }
            Some(root) => match self.insert_rec(root, 1, entry, None) {
                InsertOutcome::Done => {}
                InsertOutcome::Split(a, b) => {
                    let new_root = self.alloc_page();
                    self.write_node(new_root, &Node::Internal(vec![a, b]));
                    self.root = Some(new_root);
                    self.height += 1;
                }
            },
        }
        self.len += 1;
    }

    /// Removes object `oid` (the object value is needed to steer the
    /// descent). Covering radii are not shrunk — they remain valid upper
    /// bounds. Returns whether the object was found.
    pub fn remove(&mut self, oid: u32, o: &O) -> bool {
        let Some(root) = self.root else { return false };
        let (found, now_empty) = self.remove_rec(root, o, oid);
        if found {
            self.len -= 1;
            self.loc.remove(&oid);
            if now_empty {
                self.free_page(root);
                self.root = None;
                self.height = 0;
            } else if self.height > 1 {
                if let Node::Internal(entries) = self.read_node(root) {
                    if entries.len() == 1 {
                        self.free_page(root);
                        self.root = Some(entries[0].child);
                        self.height -= 1;
                    }
                }
            }
        }
        found
    }

    /// Fetches an object by id through the location directory (one page
    /// read — this is CPT's "load object for verification" path).
    pub fn fetch(&self, oid: u32) -> Option<O> {
        let pid = *self.loc.get(&oid)?;
        match self.read_node(pid) {
            Node::Leaf(entries) => entries.into_iter().find(|e| e.oid == oid).map(|e| e.obj),
            Node::Internal(_) => None,
        }
    }

    /// Reads and decodes a node (counted page access).
    pub fn read_node(&self, pid: PageId) -> Node<O> {
        let page = self.disk.read(pid);
        self.decode(&page)
    }

    /// Verifies the M-tree invariants over the whole tree:
    ///
    /// * every object in a routing entry's subtree lies within that entry's
    ///   covering radius (the M-tree correctness invariant, §3.3 (ii) — NOT
    ///   the stronger nested-ball property, which M-trees do not maintain),
    /// * stored parent distances equal the recomputed distances,
    /// * pivot-space MBBs contain every mapped vector beneath them.
    ///
    /// Test/debug facility — O(n · height) distance computations.
    pub fn check_invariants(&self) -> Result<(), String> {
        let Some(root) = self.root else { return Ok(()) };
        self.check_rec(root, None, &[], &[]).map(|_| ())
    }

    /// Returns the leaf objects of the subtree after checking it.
    #[allow(clippy::type_complexity)]
    fn check_rec(
        &self,
        pid: PageId,
        parent: Option<&O>,
        mbb_lo: &[f64],
        mbb_hi: &[f64],
    ) -> Result<Vec<O>, String> {
        const EPS: f64 = 1e-6;
        match self.read_node(pid) {
            Node::Leaf(entries) => {
                let mut objs = Vec::with_capacity(entries.len());
                for e in entries {
                    if let Some(p) = parent {
                        let d = self.metric.dist(&e.obj, p);
                        if (d - e.pd).abs() > EPS {
                            return Err(format!(
                                "leaf {}: stored pd {} != actual {}",
                                e.oid, e.pd, d
                            ));
                        }
                    }
                    for (i, m) in e.mapped.iter().enumerate() {
                        if !mbb_lo.is_empty() && (*m < mbb_lo[i] - EPS || *m > mbb_hi[i] + EPS) {
                            return Err(format!(
                                "leaf {}: mapped[{i}]={m} outside MBB [{}, {}]",
                                e.oid, mbb_lo[i], mbb_hi[i]
                            ));
                        }
                    }
                    objs.push(e.obj);
                }
                Ok(objs)
            }
            Node::Internal(entries) => {
                let mut all = Vec::new();
                for e in &entries {
                    if let Some(p) = parent {
                        let d = self.metric.dist(&e.robj, p);
                        if (d - e.pd).abs() > EPS {
                            return Err(format!("routing: stored pd {} != actual {d}", e.pd));
                        }
                    }
                    if !mbb_lo.is_empty() {
                        for i in 0..self.l() {
                            if e.mbb_lo[i] < mbb_lo[i] - EPS || e.mbb_hi[i] > mbb_hi[i] + EPS {
                                return Err("child MBB exceeds parent MBB".into());
                            }
                        }
                    }
                    let subtree = self.check_rec(e.child, Some(&e.robj), &e.mbb_lo, &e.mbb_hi)?;
                    // Covering-radius invariant over every object below.
                    for o in &subtree {
                        let d = self.metric.dist(o, &e.robj);
                        if d > e.radius + EPS {
                            return Err(format!(
                                "object at distance {d} outside covering radius {}",
                                e.radius
                            ));
                        }
                    }
                    all.extend(subtree);
                }
                Ok(all)
            }
        }
    }

    /// MRQ over the tree (paper §5.1): depth-first; routing entries pruned
    /// by the parent-distance test, Lemma 2 (range-pivot on the covering
    /// radius) and — when augmented — Lemma 1 on the MBB; leaf entries
    /// pruned by parent distance and Lemma 1 before the final distance
    /// computation. `q_dists` must hold `d(q, p_i)` for augmented trees
    /// (empty otherwise).
    pub fn range(&self, q: &O, r: f64, q_dists: &[f64]) -> Vec<(u32, f64)> {
        let mut out = Vec::new();
        if let Some(root) = self.root {
            self.range_rec(root, q, r, q_dists, f64::INFINITY, &mut out);
        }
        out
    }

    fn range_rec(
        &self,
        pid: PageId,
        q: &O,
        r: f64,
        q_dists: &[f64],
        d_q_parent: f64,
        out: &mut Vec<(u32, f64)>,
    ) {
        match self.read_node(pid) {
            Node::Leaf(entries) => {
                for e in entries {
                    // Parent-distance filter (cheap, no distance needed).
                    if d_q_parent.is_finite() && (d_q_parent - e.pd).abs() > r {
                        continue;
                    }
                    // Lemma 1 on the mapped vector.
                    if !q_dists.is_empty() && lemmas::lemma1_prunable(q_dists, &e.mapped, r) {
                        continue;
                    }
                    let d = self.metric.dist(q, &e.obj);
                    if d <= r {
                        out.push((e.oid, d));
                    }
                }
            }
            Node::Internal(entries) => {
                for e in entries {
                    if d_q_parent.is_finite() && (d_q_parent - e.pd).abs() > r + e.radius {
                        continue;
                    }
                    if !q_dists.is_empty()
                        && lemmas::lemma1_box_prunable(q_dists, &e.mbb_lo, &e.mbb_hi, r)
                    {
                        continue;
                    }
                    let d = self.metric.dist(q, &e.robj);
                    // Lemma 2: range-pivot filtering on the ball region.
                    if lemmas::lemma2_prunable(d, e.radius, r) {
                        continue;
                    }
                    self.range_rec(e.child, q, r, q_dists, d, out);
                }
            }
        }
    }

    /// MkNNQ over the tree: best-first by the entry lower bound (ball bound
    /// combined with the MBB bound when augmented), shrinking the radius as
    /// neighbors are found (paper §5.1).
    pub fn knn(&self, q: &O, k: usize, q_dists: &[f64]) -> Vec<(u32, f64)> {
        let mut result: BinaryHeap<(NotNan, u32)> = BinaryHeap::new(); // max-heap on dist
        let mut heap: BinaryHeap<Reverse<(NotNan, PageId, u64)>> = BinaryHeap::new();
        let mut seq = 0u64;
        let Some(root) = self.root else {
            return Vec::new();
        };
        if k == 0 {
            return Vec::new();
        }
        heap.push(Reverse((NotNan(0.0), root, seq)));
        let radius = |res: &BinaryHeap<(NotNan, u32)>| {
            if res.len() < k {
                f64::INFINITY
            } else {
                res.peek().unwrap().0 .0
            }
        };
        while let Some(Reverse((lb, pid, _))) = heap.pop() {
            if lb.0 > radius(&result) {
                break;
            }
            match self.read_node(pid) {
                Node::Leaf(entries) => {
                    for e in entries {
                        let r = radius(&result);
                        if !q_dists.is_empty()
                            && r.is_finite()
                            && lemmas::lemma1_prunable(q_dists, &e.mapped, r)
                        {
                            continue;
                        }
                        let d = self.metric.dist(q, &e.obj);
                        if d <= radius(&result) {
                            result.push((NotNan(d), e.oid));
                            if result.len() > k {
                                result.pop();
                            }
                        }
                    }
                }
                Node::Internal(entries) => {
                    for e in entries {
                        let r = radius(&result);
                        let mut lb = 0.0f64;
                        if !q_dists.is_empty() {
                            lb = lemmas::mbb_lower_bound(q_dists, &e.mbb_lo, &e.mbb_hi);
                            if r.is_finite() && lb > r {
                                continue;
                            }
                        }
                        let d = self.metric.dist(q, &e.robj);
                        let ball_lb = lemmas::ball_lower_bound(d, e.radius);
                        let lower = ball_lb.max(lb);
                        if lower <= radius(&result) {
                            seq += 1;
                            heap.push(Reverse((NotNan(lower), e.child, seq)));
                        }
                    }
                }
            }
        }
        let mut v: Vec<(u32, f64)> = result.into_iter().map(|(d, oid)| (oid, d.0)).collect();
        v.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        v
    }

    // --- internals ---------------------------------------------------------

    fn alloc_page(&mut self) -> PageId {
        self.pages_used += 1;
        self.free.pop().unwrap_or_else(|| self.disk.alloc())
    }

    fn free_page(&mut self, pid: PageId) {
        self.pages_used -= 1;
        self.free.push(pid);
    }

    fn l(&self) -> usize {
        self.pivots.len()
    }

    fn leaf_entry_bytes(&self, e: &LeafEntry<O>) -> usize {
        4 + 8 + 4 + e.obj.encoded_len() + 8 * self.l()
    }

    fn routing_entry_bytes(&self, e: &RoutingEntry<O>) -> usize {
        4 + 8 + 8 + 4 + e.robj.encoded_len() + 16 * self.l()
    }

    fn node_bytes(&self, node: &Node<O>) -> usize {
        3 + match node {
            Node::Leaf(es) => es.iter().map(|e| self.leaf_entry_bytes(e)).sum::<usize>(),
            Node::Internal(es) => es
                .iter()
                .map(|e| self.routing_entry_bytes(e))
                .sum::<usize>(),
        }
    }

    fn write_node(&mut self, pid: PageId, node: &Node<O>) {
        let ps = self.disk.page_size();
        let mut page = Vec::with_capacity(ps);
        match node {
            Node::Leaf(entries) => {
                page.push(0u8);
                page.extend_from_slice(&(entries.len() as u16).to_le_bytes());
                for e in entries {
                    page.extend_from_slice(&e.oid.to_le_bytes());
                    page.extend_from_slice(&e.pd.to_le_bytes());
                    page.extend_from_slice(&(e.obj.encoded_len() as u32).to_le_bytes());
                    e.obj.encode_into(&mut page);
                    for m in &e.mapped {
                        page.extend_from_slice(&m.to_le_bytes());
                    }
                    // Track object locations through every rewrite.
                    self.loc.insert(e.oid, pid);
                }
            }
            Node::Internal(entries) => {
                page.push(1u8);
                page.extend_from_slice(&(entries.len() as u16).to_le_bytes());
                for e in entries {
                    page.extend_from_slice(&e.child.to_le_bytes());
                    page.extend_from_slice(&e.radius.to_le_bytes());
                    page.extend_from_slice(&e.pd.to_le_bytes());
                    page.extend_from_slice(&(e.robj.encoded_len() as u32).to_le_bytes());
                    e.robj.encode_into(&mut page);
                    for m in &e.mbb_lo {
                        page.extend_from_slice(&m.to_le_bytes());
                    }
                    for m in &e.mbb_hi {
                        page.extend_from_slice(&m.to_le_bytes());
                    }
                }
            }
        }
        assert!(
            page.len() <= ps,
            "M-tree node overflows page ({} > {ps}); object too large for page size",
            page.len()
        );
        page.resize(ps, 0);
        self.disk.write(pid, &page);
    }

    fn decode(&self, page: &[u8]) -> Node<O> {
        let count = u16::from_le_bytes(page[1..3].try_into().unwrap()) as usize;
        let l = self.l();
        let mut off = 3;
        if page[0] == 0 {
            let mut entries = Vec::with_capacity(count);
            for _ in 0..count {
                let oid = u32::from_le_bytes(page[off..off + 4].try_into().unwrap());
                off += 4;
                let pd = f64::from_le_bytes(page[off..off + 8].try_into().unwrap());
                off += 8;
                let olen = u32::from_le_bytes(page[off..off + 4].try_into().unwrap()) as usize;
                off += 4;
                let (obj, used) = O::decode_from(&page[off..off + olen]);
                debug_assert_eq!(used, olen);
                off += olen;
                let mut mapped = Vec::with_capacity(l);
                for _ in 0..l {
                    mapped.push(f64::from_le_bytes(page[off..off + 8].try_into().unwrap()));
                    off += 8;
                }
                entries.push(LeafEntry {
                    oid,
                    pd,
                    obj,
                    mapped,
                });
            }
            Node::Leaf(entries)
        } else {
            let mut entries = Vec::with_capacity(count);
            for _ in 0..count {
                let child = PageId::from_le_bytes(page[off..off + 4].try_into().unwrap());
                off += 4;
                let radius = f64::from_le_bytes(page[off..off + 8].try_into().unwrap());
                off += 8;
                let pd = f64::from_le_bytes(page[off..off + 8].try_into().unwrap());
                off += 8;
                let olen = u32::from_le_bytes(page[off..off + 4].try_into().unwrap()) as usize;
                off += 4;
                let (robj, used) = O::decode_from(&page[off..off + olen]);
                debug_assert_eq!(used, olen);
                off += olen;
                let mut mbb_lo = Vec::with_capacity(l);
                for _ in 0..l {
                    mbb_lo.push(f64::from_le_bytes(page[off..off + 8].try_into().unwrap()));
                    off += 8;
                }
                let mut mbb_hi = Vec::with_capacity(l);
                for _ in 0..l {
                    mbb_hi.push(f64::from_le_bytes(page[off..off + 8].try_into().unwrap()));
                    off += 8;
                }
                entries.push(RoutingEntry {
                    child,
                    radius,
                    pd,
                    robj,
                    mbb_lo,
                    mbb_hi,
                });
            }
            Node::Internal(entries)
        }
    }

    /// Recursive insert; `parent_robj` is the routing object of the entry we
    /// descended through (None at the root).
    fn insert_rec(
        &mut self,
        pid: PageId,
        level: usize,
        mut entry: LeafEntry<O>,
        parent_robj: Option<&O>,
    ) -> InsertOutcome<O> {
        if level == self.height {
            // Leaf node.
            let Node::Leaf(mut entries) = self.read_node(pid) else {
                unreachable!("leaf expected");
            };
            entry.pd = parent_robj
                .map(|p| self.metric.dist(&entry.obj, p))
                .unwrap_or(f64::INFINITY);
            entries.push(entry);
            let node = Node::Leaf(entries);
            if self.node_bytes(&node) <= self.disk.page_size() {
                self.write_node(pid, &node);
                InsertOutcome::Done
            } else {
                let Node::Leaf(entries) = node else {
                    unreachable!()
                };
                self.split_leaf(pid, entries, parent_robj)
            }
        } else {
            let Node::Internal(mut entries) = self.read_node(pid) else {
                unreachable!("internal expected");
            };
            // Choose subtree: min distance among covering entries, else min
            // radius increase (classic M-tree heuristic).
            let dists: Vec<f64> = entries
                .iter()
                .map(|e| self.metric.dist(&entry.obj, &e.robj))
                .collect();
            let mut best: Option<usize> = None;
            for (i, e) in entries.iter().enumerate() {
                if dists[i] <= e.radius && best.is_none_or(|b| dists[i] < dists[b]) {
                    best = Some(i);
                }
            }
            let idx = match best {
                Some(i) => i,
                None => {
                    let mut bi = 0;
                    let mut binc = f64::INFINITY;
                    for (i, e) in entries.iter().enumerate() {
                        let inc = dists[i] - e.radius;
                        if inc < binc {
                            binc = inc;
                            bi = i;
                        }
                    }
                    entries[bi].radius = dists[bi];
                    bi
                }
            };
            // Maintain the PM-tree MBB on the way down.
            if self.l() > 0 {
                for d in 0..self.l() {
                    entries[idx].mbb_lo[d] = entries[idx].mbb_lo[d].min(entry.mapped[d]);
                    entries[idx].mbb_hi[d] = entries[idx].mbb_hi[d].max(entry.mapped[d]);
                }
            }
            let child = entries[idx].child;
            let robj = entries[idx].robj.clone();
            match self.insert_rec(child, level + 1, entry, Some(&robj)) {
                InsertOutcome::Done => {
                    self.write_node(pid, &Node::Internal(entries));
                    InsertOutcome::Done
                }
                InsertOutcome::Split(mut a, mut b) => {
                    a.pd = parent_robj
                        .map(|p| self.metric.dist(&a.robj, p))
                        .unwrap_or(f64::INFINITY);
                    b.pd = parent_robj
                        .map(|p| self.metric.dist(&b.robj, p))
                        .unwrap_or(f64::INFINITY);
                    entries.remove(idx);
                    entries.push(a);
                    entries.push(b);
                    let node = Node::Internal(entries);
                    if self.node_bytes(&node) <= self.disk.page_size() {
                        self.write_node(pid, &node);
                        InsertOutcome::Done
                    } else {
                        let Node::Internal(entries) = node else {
                            unreachable!()
                        };
                        self.split_internal(pid, entries, parent_robj)
                    }
                }
            }
        }
    }

    /// Promotes two routing objects (sampled mM_RAD: try a few pairs, keep
    /// the one minimizing the larger covering radius) and partitions by
    /// generalized hyperplane (nearest promoted object wins).
    fn promote_leaf(&self, entries: &[LeafEntry<O>]) -> (usize, usize) {
        let n = entries.len();
        let pairs = candidate_pairs(n);
        let mut best = (0, 1);
        let mut best_cost = f64::INFINITY;
        for (i, j) in pairs {
            let mut r1 = 0.0f64;
            let mut r2 = 0.0f64;
            for (k, e) in entries.iter().enumerate() {
                if k == i || k == j {
                    continue;
                }
                let d1 = self.metric.dist(&e.obj, &entries[i].obj);
                let d2 = self.metric.dist(&e.obj, &entries[j].obj);
                if d1 <= d2 {
                    r1 = r1.max(d1);
                } else {
                    r2 = r2.max(d2);
                }
            }
            let cost = r1.max(r2);
            if cost < best_cost {
                best_cost = cost;
                best = (i, j);
            }
        }
        best
    }

    fn split_leaf(
        &mut self,
        pid: PageId,
        entries: Vec<LeafEntry<O>>,
        _parent: Option<&O>,
    ) -> InsertOutcome<O> {
        let (i, j) = self.promote_leaf(&entries);
        let p1 = entries[i].obj.clone();
        let p2 = entries[j].obj.clone();
        let mut g1: Vec<LeafEntry<O>> = Vec::new();
        let mut g2: Vec<LeafEntry<O>> = Vec::new();
        let mut r1 = 0.0f64;
        let mut r2 = 0.0f64;
        for mut e in entries {
            let d1 = self.metric.dist(&e.obj, &p1);
            let d2 = self.metric.dist(&e.obj, &p2);
            if d1 <= d2 {
                e.pd = d1;
                r1 = r1.max(d1);
                g1.push(e);
            } else {
                e.pd = d2;
                r2 = r2.max(d2);
                g2.push(e);
            }
        }
        let rpid = self.alloc_page();
        let (lo1, hi1) = self.mapped_bounds_leaf(&g1);
        let (lo2, hi2) = self.mapped_bounds_leaf(&g2);
        self.write_node(pid, &Node::Leaf(g1));
        self.write_node(rpid, &Node::Leaf(g2));
        InsertOutcome::Split(
            RoutingEntry {
                child: pid,
                radius: r1,
                pd: f64::INFINITY,
                robj: p1,
                mbb_lo: lo1,
                mbb_hi: hi1,
            },
            RoutingEntry {
                child: rpid,
                radius: r2,
                pd: f64::INFINITY,
                robj: p2,
                mbb_lo: lo2,
                mbb_hi: hi2,
            },
        )
    }

    fn split_internal(
        &mut self,
        pid: PageId,
        entries: Vec<RoutingEntry<O>>,
        _parent: Option<&O>,
    ) -> InsertOutcome<O> {
        // Promote among routing objects; radius must cover child radii.
        let n = entries.len();
        let pairs = candidate_pairs(n);
        let mut best = (0, 1);
        let mut best_cost = f64::INFINITY;
        for (i, j) in pairs {
            let mut r1 = 0.0f64;
            let mut r2 = 0.0f64;
            for (k, e) in entries.iter().enumerate() {
                if k == i || k == j {
                    continue;
                }
                let d1 = self.metric.dist(&e.robj, &entries[i].robj) + e.radius;
                let d2 = self.metric.dist(&e.robj, &entries[j].robj) + e.radius;
                if d1 <= d2 {
                    r1 = r1.max(d1);
                } else {
                    r2 = r2.max(d2);
                }
            }
            let cost = r1.max(r2);
            if cost < best_cost {
                best_cost = cost;
                best = (i, j);
            }
        }
        let (i, j) = best;
        let p1 = entries[i].robj.clone();
        let p2 = entries[j].robj.clone();
        let mut g1: Vec<RoutingEntry<O>> = Vec::new();
        let mut g2: Vec<RoutingEntry<O>> = Vec::new();
        let mut r1 = entries[i].radius;
        let mut r2 = entries[j].radius;
        for mut e in entries {
            let d1 = self.metric.dist(&e.robj, &p1);
            let d2 = self.metric.dist(&e.robj, &p2);
            if d1 <= d2 {
                e.pd = d1;
                r1 = r1.max(d1 + e.radius);
                g1.push(e);
            } else {
                e.pd = d2;
                r2 = r2.max(d2 + e.radius);
                g2.push(e);
            }
        }
        let rpid = self.alloc_page();
        let (lo1, hi1) = self.mapped_bounds_internal(&g1);
        let (lo2, hi2) = self.mapped_bounds_internal(&g2);
        self.write_node(pid, &Node::Internal(g1));
        self.write_node(rpid, &Node::Internal(g2));
        InsertOutcome::Split(
            RoutingEntry {
                child: pid,
                radius: r1,
                pd: f64::INFINITY,
                robj: p1,
                mbb_lo: lo1,
                mbb_hi: hi1,
            },
            RoutingEntry {
                child: rpid,
                radius: r2,
                pd: f64::INFINITY,
                robj: p2,
                mbb_lo: lo2,
                mbb_hi: hi2,
            },
        )
    }

    fn mapped_bounds_leaf(&self, entries: &[LeafEntry<O>]) -> (Vec<f64>, Vec<f64>) {
        let l = self.l();
        let mut lo = vec![f64::INFINITY; l];
        let mut hi = vec![f64::NEG_INFINITY; l];
        for e in entries {
            for d in 0..l {
                lo[d] = lo[d].min(e.mapped[d]);
                hi[d] = hi[d].max(e.mapped[d]);
            }
        }
        (lo, hi)
    }

    fn mapped_bounds_internal(&self, entries: &[RoutingEntry<O>]) -> (Vec<f64>, Vec<f64>) {
        let l = self.l();
        let mut lo = vec![f64::INFINITY; l];
        let mut hi = vec![f64::NEG_INFINITY; l];
        for e in entries {
            for d in 0..l {
                lo[d] = lo[d].min(e.mbb_lo[d]);
                hi[d] = hi[d].max(e.mbb_hi[d]);
            }
        }
        (lo, hi)
    }

    /// Returns `(found, subtree empty)`.
    fn remove_rec(&mut self, pid: PageId, o: &O, oid: u32) -> (bool, bool) {
        match self.read_node(pid) {
            Node::Leaf(mut entries) => {
                if let Some(pos) = entries.iter().position(|e| e.oid == oid) {
                    entries.remove(pos);
                    let empty = entries.is_empty();
                    self.write_node(pid, &Node::Leaf(entries));
                    (true, empty)
                } else {
                    (false, false)
                }
            }
            Node::Internal(mut entries) => {
                for idx in 0..entries.len() {
                    let d = self.metric.dist(o, &entries[idx].robj);
                    if d > entries[idx].radius + 1e-9 {
                        continue;
                    }
                    let (found, child_empty) = self.remove_rec(entries[idx].child, o, oid);
                    if found {
                        if child_empty {
                            self.free_page(entries[idx].child);
                            entries.remove(idx);
                        }
                        let empty = entries.is_empty();
                        if !empty {
                            self.write_node(pid, &Node::Internal(entries));
                        }
                        return (true, empty);
                    }
                }
                (false, false)
            }
        }
    }
}

/// Candidate promotion pairs: bounded sample so splits stay O(n · pairs).
fn candidate_pairs(n: usize) -> Vec<(usize, usize)> {
    let mut pairs = Vec::new();
    if n < 2 {
        return pairs;
    }
    // Deterministic spread of up to 5 pairs.
    let picks = [
        (0, n / 2),
        (0, n - 1),
        (n / 3, 2 * n / 3),
        (n / 4, n - 1),
        (n / 2, n - 1),
    ];
    for (a, b) in picks {
        if a != b && !pairs.contains(&(a.min(b), a.max(b))) {
            pairs.push((a.min(b), a.max(b)));
        }
    }
    pairs
}

/// Total-ordered f64 wrapper (distances are never NaN here).
#[derive(Clone, Copy, Debug, PartialEq)]
struct NotNan(f64);
impl Eq for NotNan {}
impl PartialOrd for NotNan {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for NotNan {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmi_metric::{datasets, CountingMetric, L2};

    #[allow(clippy::type_complexity)]
    fn build(n: usize, pivots: usize) -> (Vec<Vec<f32>>, MTree<Vec<f32>, CountingMetric<L2>>) {
        let pts = datasets::la(n, 77);
        let metric = CountingMetric::new(L2);
        let pv: Vec<Vec<f32>> = pmi_pivots_stub(&pts, pivots);
        let mut t = MTree::new(DiskSim::new(1024), metric, pv);
        for (i, p) in pts.iter().enumerate() {
            t.insert(i as u32, p);
        }
        (pts, t)
    }

    // Tiny local pivot picker to avoid a dev-dependency cycle.
    fn pmi_pivots_stub(pts: &[Vec<f32>], k: usize) -> Vec<Vec<f32>> {
        (0..k).map(|i| pts[i * 37 % pts.len()].clone()).collect()
    }

    fn brute_range(pts: &[Vec<f32>], q: &[f32], r: f64) -> Vec<u32> {
        let q = q.to_vec();
        pts.iter()
            .enumerate()
            .filter(|(_, p)| L2.dist(&q, p) <= r)
            .map(|(i, _)| i as u32)
            .collect()
    }

    #[test]
    fn range_matches_brute_force_plain() {
        let (pts, t) = build(500, 0);
        assert_eq!(t.len(), 500);
        assert!(t.height() >= 2);
        for qi in [3usize, 99, 250] {
            let q = &pts[qi];
            for r in [100.0, 800.0, 3000.0] {
                let mut got: Vec<u32> = t.range(q, r, &[]).into_iter().map(|(i, _)| i).collect();
                got.sort();
                assert_eq!(got, brute_range(&pts, q, r), "q={qi} r={r}");
            }
        }
    }

    #[test]
    fn range_matches_brute_force_augmented() {
        let (pts, t) = build(500, 4);
        let qd = t.map_object(&pts[42]);
        let mut got: Vec<u32> = t
            .range(&pts[42], 900.0, &qd)
            .into_iter()
            .map(|(i, _)| i)
            .collect();
        got.sort();
        assert_eq!(got, brute_range(&pts, &pts[42], 900.0));
    }

    #[test]
    fn augmentation_reduces_distance_computations() {
        let (pts, plain) = build(800, 0);
        let (_, aug) = build(800, 4);
        let q = &pts[11];
        plain.metric().reset();
        let _ = plain.range(q, 500.0, &[]);
        let plain_cd = plain.metric().count();
        aug.metric().reset();
        let qd = aug.map_object(q);
        let _ = aug.range(q, 500.0, &qd);
        let aug_cd = aug.metric().count();
        assert!(
            aug_cd < plain_cd,
            "PM-tree rings should prune: {aug_cd} vs {plain_cd}"
        );
    }

    #[test]
    fn knn_matches_brute_force() {
        let (pts, t) = build(400, 3);
        let q = &pts[7];
        let qd = t.map_object(q);
        let got = t.knn(q, 10, &qd);
        assert_eq!(got.len(), 10);
        let mut all: Vec<(u32, f64)> = pts
            .iter()
            .enumerate()
            .map(|(i, p)| (i as u32, L2.dist(q, p)))
            .collect();
        all.sort_by(|a, b| a.1.total_cmp(&b.1));
        // Distance multiset must match (ties can reorder ids).
        for (g, w) in got.iter().zip(&all[..10]) {
            assert!((g.1 - w.1).abs() < 1e-9, "{got:?}");
        }
    }

    #[test]
    fn fetch_finds_objects_after_splits() {
        let (pts, t) = build(300, 0);
        for i in [0usize, 150, 299] {
            let o = t.fetch(i as u32).expect("object present");
            assert_eq!(o, pts[i]);
        }
        assert_eq!(t.fetch(9999), None);
    }

    #[test]
    fn remove_then_queries_stay_correct() {
        let (pts, mut t) = build(300, 0);
        for i in 0..50u32 {
            assert!(t.remove(i, &pts[i as usize]), "remove {i}");
        }
        assert_eq!(t.len(), 250);
        let q = &pts[100];
        let mut got: Vec<u32> = t
            .range(q, 1500.0, &[])
            .into_iter()
            .map(|(i, _)| i)
            .collect();
        got.sort();
        let want: Vec<u32> = brute_range(&pts, q, 1500.0)
            .into_iter()
            .filter(|&i| i >= 50)
            .collect();
        assert_eq!(got, want);
        // Reinsert and check again.
        for i in 0..50u32 {
            t.insert(i, &pts[i as usize]);
        }
        let mut got: Vec<u32> = t
            .range(q, 1500.0, &[])
            .into_iter()
            .map(|(i, _)| i)
            .collect();
        got.sort();
        assert_eq!(got, brute_range(&pts, q, 1500.0));
    }

    #[test]
    fn pages_and_storage_accounting() {
        let (_, t) = build(500, 0);
        assert!(t.pages_used() > 2);
        assert_eq!(t.disk_bytes(), (t.pages_used() * 1024) as u64);
    }

    #[test]
    fn invariants_hold_after_build_and_updates() {
        let (pts, mut t) = build(400, 3);
        t.check_invariants().expect("fresh tree");
        for i in (0..100u32).step_by(3) {
            assert!(t.remove(i, &pts[i as usize]));
        }
        t.check_invariants().expect("after removals");
        for i in (0..100u32).step_by(3) {
            t.insert(i, &pts[i as usize]);
        }
        t.check_invariants().expect("after reinserts");
    }

    #[test]
    fn empty_tree() {
        let t: MTree<Vec<f32>, L2> = MTree::new(DiskSim::new(1024), L2, vec![]);
        assert!(t.is_empty());
        assert_eq!(t.range(&vec![0.0, 0.0], 10.0, &[]), vec![]);
        assert_eq!(t.knn(&vec![0.0, 0.0], 3, &[]), vec![]);
    }
}
