//! A paged R-tree over the simulated disk.
//!
//! The OmniR-tree (paper §5.2) indexes the pivot-mapped vectors — points in
//! an `l`-dimensional space where `l = |P|` — with an R-tree whose leaf
//! entries reference objects in a separate random access file. This
//! implementation provides:
//!
//! * STR bulk loading (sort-tile-recursive) for well-clustered builds,
//! * Guttman quadratic-split insertion and simple deletion with reinsertion,
//! * box-intersection range search (the search region of Lemma 1 is a box
//!   in pivot space),
//! * raw node access ([`RTree::read_node`]) for best-first MkNNQ traversals
//!   driven by the Chebyshev `MINDIST` of [`Mbb::mindist`], which is the
//!   valid metric lower bound in pivot space.
//!
//! Boxes are stored as `f32` with outward rounding so that pruning stays
//! sound for `f64` distances.

use pmi_storage::{DiskSim, PageId};

/// Maximum supported dimensionality (the paper sweeps |P| up to 9).
pub const MAX_DIMS: usize = 16;

/// An axis-aligned minimum bounding box with outward-rounded `f32` bounds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Mbb {
    dims: u8,
    lo: [f32; MAX_DIMS],
    hi: [f32; MAX_DIMS],
}

impl Mbb {
    /// An empty (inverted) box of `dims` dimensions; unioning fixes it.
    pub fn empty(dims: usize) -> Self {
        assert!((1..=MAX_DIMS).contains(&dims));
        let mut lo = [f32::INFINITY; MAX_DIMS];
        let mut hi = [f32::NEG_INFINITY; MAX_DIMS];
        for d in dims..MAX_DIMS {
            lo[d] = 0.0;
            hi[d] = 0.0;
        }
        Mbb {
            dims: dims as u8,
            lo,
            hi,
        }
    }

    /// A degenerate box around an `f64` point, rounded outward so the box
    /// provably contains the point.
    pub fn from_point(p: &[f64]) -> Self {
        let mut b = Mbb::empty(p.len());
        for (d, &x) in p.iter().enumerate() {
            b.lo[d] = next_down(x as f32, x);
            b.hi[d] = next_up(x as f32, x);
        }
        b
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.dims as usize
    }

    /// Lower bounds.
    pub fn lo(&self) -> &[f32] {
        &self.lo[..self.dims as usize]
    }

    /// Upper bounds.
    pub fn hi(&self) -> &[f32] {
        &self.hi[..self.dims as usize]
    }

    /// Lower bounds widened to `f64`.
    pub fn lo_f64(&self) -> Vec<f64> {
        self.lo().iter().map(|&x| x as f64).collect()
    }

    /// Upper bounds widened to `f64`.
    pub fn hi_f64(&self) -> Vec<f64> {
        self.hi().iter().map(|&x| x as f64).collect()
    }

    /// Grows `self` to cover `other`.
    pub fn union_with(&mut self, other: &Mbb) {
        debug_assert_eq!(self.dims, other.dims);
        for d in 0..self.dims as usize {
            self.lo[d] = self.lo[d].min(other.lo[d]);
            self.hi[d] = self.hi[d].max(other.hi[d]);
        }
    }

    /// Whether `self` intersects the closed `f64` box `[lo, hi]`.
    pub fn intersects(&self, lo: &[f64], hi: &[f64]) -> bool {
        for d in 0..self.dims as usize {
            if (self.lo[d] as f64) > hi[d] || (self.hi[d] as f64) < lo[d] {
                return false;
            }
        }
        true
    }

    /// Chebyshev (L∞) distance from point `q` to this box — the valid lower
    /// bound on the metric distance for any object mapped inside the box
    /// (Lemma 1 applied to regions).
    pub fn mindist(&self, q: &[f64]) -> f64 {
        let mut m = 0.0f64;
        for (d, &x) in q.iter().enumerate().take(self.dims as usize) {
            let gap = if x < self.lo[d] as f64 {
                self.lo[d] as f64 - x
            } else if x > self.hi[d] as f64 {
                x - self.hi[d] as f64
            } else {
                0.0
            };
            if gap > m {
                m = gap;
            }
        }
        m
    }

    /// Area (product of extents) in `f64`; used by the quadratic split.
    pub fn area(&self) -> f64 {
        let mut a = 1.0f64;
        for d in 0..self.dims as usize {
            a *= (self.hi[d] - self.lo[d]).max(0.0) as f64;
        }
        a
    }

    /// Sum of extents; tiebreaker where areas degenerate to zero.
    pub fn margin(&self) -> f64 {
        (0..self.dims as usize)
            .map(|d| (self.hi[d] - self.lo[d]).max(0.0) as f64)
            .sum()
    }

    fn union(a: &Mbb, b: &Mbb) -> Mbb {
        let mut u = *a;
        u.union_with(b);
        u
    }

    fn enlargement(&self, add: &Mbb) -> f64 {
        let u = Mbb::union(self, add);
        let da = u.area() - self.area();
        if da > 0.0 {
            da
        } else {
            // Degenerate area: fall back to margin growth.
            (u.margin() - self.margin()).max(0.0)
        }
    }

    fn write(&self, out: &mut Vec<u8>) {
        for d in 0..self.dims as usize {
            out.extend_from_slice(&self.lo[d].to_le_bytes());
            out.extend_from_slice(&self.hi[d].to_le_bytes());
        }
    }

    fn read(buf: &[u8], dims: usize) -> Self {
        let mut b = Mbb::empty(dims);
        let mut off = 0;
        for d in 0..dims {
            b.lo[d] = f32::from_le_bytes(buf[off..off + 4].try_into().unwrap());
            b.hi[d] = f32::from_le_bytes(buf[off + 4..off + 8].try_into().unwrap());
            off += 8;
        }
        b
    }
}

/// Rounds `v` down if the cast rounded up.
fn next_down(v: f32, exact: f64) -> f32 {
    if (v as f64) > exact {
        f32::from_bits(if v > 0.0 {
            v.to_bits() - 1
        } else {
            v.to_bits() + 1
        })
    } else {
        v
    }
}

/// Rounds `v` up if the cast rounded down.
fn next_up(v: f32, exact: f64) -> f32 {
    if (v as f64) < exact {
        f32::from_bits(if v >= 0.0 {
            v.to_bits() + 1
        } else {
            v.to_bits() - 1
        })
    } else {
        v
    }
}

/// A decoded R-tree node.
#[derive(Clone, Debug)]
pub enum NodeView {
    /// Leaf entries: object boxes (points, for pivot mappings) + object ids.
    Leaf {
        /// `(bounding box, object id)` pairs.
        entries: Vec<(Mbb, u32)>,
    },
    /// Internal entries: child boxes + child pages.
    Internal {
        /// `(bounding box, child page)` pairs.
        entries: Vec<(Mbb, PageId)>,
    },
}

/// A paged R-tree.
pub struct RTree {
    disk: DiskSim,
    dims: usize,
    root: Option<PageId>,
    height: usize,
    len: usize,
    pages_used: usize,
    free: Vec<PageId>,
}

impl RTree {
    /// Creates an empty R-tree for `dims`-dimensional boxes.
    pub fn new(disk: DiskSim, dims: usize) -> Self {
        assert!((1..=MAX_DIMS).contains(&dims));
        let t = RTree {
            disk,
            dims,
            root: None,
            height: 0,
            len: 0,
            pages_used: 0,
            free: Vec::new(),
        };
        assert!(t.cap() >= 4, "page too small for an R-tree node");
        t
    }

    /// STR bulk load from `(box, object id)` pairs.
    pub fn bulk_load(disk: DiskSim, dims: usize, mut items: Vec<(Mbb, u32)>) -> Self {
        let mut t = Self::new(disk, dims);
        if items.is_empty() {
            return t;
        }
        t.len = items.len();
        let cap = (t.cap() * 4) / 5;
        let mut groups: Vec<Vec<(Mbb, u32)>> = Vec::new();
        str_partition(&mut items, 0, dims, cap.max(2), &mut groups);
        let mut level: Vec<(Mbb, PageId)> = groups
            .into_iter()
            .map(|g| {
                let pid = t.alloc_page();
                t.write_node(
                    pid,
                    true,
                    &g.iter().map(|(b, v)| (*b, *v)).collect::<Vec<_>>(),
                );
                let mut mbb = g[0].0;
                for (b, _) in &g[1..] {
                    mbb.union_with(b);
                }
                (mbb, pid)
            })
            .collect();
        t.height = 1;
        while level.len() > 1 {
            let mut upper = Vec::new();
            for chunk in level.chunks(cap.max(2)) {
                let pid = t.alloc_page();
                t.write_node(pid, false, chunk);
                let mut mbb = chunk[0].0;
                for (b, _) in &chunk[1..] {
                    mbb.union_with(b);
                }
                upper.push((mbb, pid));
            }
            level = upper;
            t.height += 1;
        }
        t.root = Some(level[0].1);
        t
    }

    /// Number of indexed objects.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tree height (0 when empty).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Root page, if any.
    pub fn root(&self) -> Option<PageId> {
        self.root
    }

    /// Pages owned by the tree.
    pub fn pages_used(&self) -> usize {
        self.pages_used
    }

    /// Bytes on disk.
    pub fn disk_bytes(&self) -> u64 {
        (self.pages_used * self.disk.page_size()) as u64
    }

    /// The disk handle.
    pub fn disk(&self) -> &DiskSim {
        &self.disk
    }

    /// Dimensionality.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Reads and decodes a node (counted page access).
    pub fn read_node(&self, pid: PageId) -> NodeView {
        let page = self.disk.read(pid);
        self.decode(&page)
    }

    /// Inserts `(mbb, id)` (Guttman: least-enlargement descent, quadratic
    /// split).
    pub fn insert(&mut self, mbb: Mbb, id: u32) {
        assert_eq!(mbb.dims(), self.dims);
        match self.root {
            None => {
                let pid = self.alloc_page();
                self.write_node(pid, true, &[(mbb, id)]);
                self.root = Some(pid);
                self.height = 1;
            }
            Some(root) => {
                if let (_, Some((rb, rpid))) = self.insert_rec(root, 1, mbb, id) {
                    let lb = self.node_mbb(root);
                    let new_root = self.alloc_page();
                    self.write_node(new_root, false, &[(lb, root), (rb, rpid)]);
                    self.root = Some(new_root);
                    self.height += 1;
                }
            }
        }
        self.len += 1;
    }

    /// Removes the entry `(id)` whose box contains/equals `mbb`'s center;
    /// returns whether it was found. Simple algorithm: locate, remove, and
    /// leave the node (no condensation; boxes stay valid upper bounds).
    pub fn remove(&mut self, mbb: &Mbb, id: u32) -> bool {
        let Some(root) = self.root else { return false };
        let found = self.remove_rec(root, mbb, id);
        if found {
            self.len -= 1;
            if self.len == 0 {
                self.free_all(root);
                self.root = None;
                self.height = 0;
            }
        }
        found
    }

    /// Visits ids of all leaf entries whose box intersects `[lo, hi]`.
    pub fn search_box<F: FnMut(u32)>(&self, lo: &[f64], hi: &[f64], mut f: F) {
        let Some(root) = self.root else { return };
        let mut stack = vec![root];
        while let Some(pid) = stack.pop() {
            match self.read_node(pid) {
                NodeView::Leaf { entries } => {
                    for (b, id) in entries {
                        if b.intersects(lo, hi) {
                            f(id);
                        }
                    }
                }
                NodeView::Internal { entries } => {
                    for (b, c) in entries {
                        if b.intersects(lo, hi) {
                            stack.push(c);
                        }
                    }
                }
            }
        }
    }

    // --- internals ---------------------------------------------------------

    fn cap(&self) -> usize {
        (self.disk.page_size() - 3) / (8 * self.dims + 4)
    }

    fn alloc_page(&mut self) -> PageId {
        self.pages_used += 1;
        self.free.pop().unwrap_or_else(|| self.disk.alloc())
    }

    fn free_page(&mut self, pid: PageId) {
        self.pages_used -= 1;
        self.free.push(pid);
    }

    fn free_all(&mut self, pid: PageId) {
        if let NodeView::Internal { entries } = self.read_node(pid) {
            for (_, c) in entries {
                self.free_all(c);
            }
        }
        self.free_page(pid);
    }

    fn decode(&self, page: &[u8]) -> NodeView {
        let leaf = page[0] == 0;
        let count = u16::from_le_bytes(page[1..3].try_into().unwrap()) as usize;
        let esz = 8 * self.dims + 4;
        let mut off = 3;
        if leaf {
            let mut entries = Vec::with_capacity(count);
            for _ in 0..count {
                let b = Mbb::read(&page[off..], self.dims);
                let id =
                    u32::from_le_bytes(page[off + 8 * self.dims..off + esz].try_into().unwrap());
                entries.push((b, id));
                off += esz;
            }
            NodeView::Leaf { entries }
        } else {
            let mut entries = Vec::with_capacity(count);
            for _ in 0..count {
                let b = Mbb::read(&page[off..], self.dims);
                let c =
                    u32::from_le_bytes(page[off + 8 * self.dims..off + esz].try_into().unwrap());
                entries.push((b, c));
                off += esz;
            }
            NodeView::Internal { entries }
        }
    }

    fn write_node(&self, pid: PageId, leaf: bool, entries: &[(Mbb, u32)]) {
        debug_assert!(entries.len() <= self.cap(), "node overflow");
        let mut page = Vec::with_capacity(self.disk.page_size());
        page.push(if leaf { 0u8 } else { 1u8 });
        page.extend_from_slice(&(entries.len() as u16).to_le_bytes());
        for (b, v) in entries {
            b.write(&mut page);
            page.extend_from_slice(&v.to_le_bytes());
        }
        page.resize(self.disk.page_size(), 0);
        self.disk.write(pid, &page);
    }

    fn node_mbb(&self, pid: PageId) -> Mbb {
        let entries = match self.read_node(pid) {
            NodeView::Leaf { entries } => entries,
            NodeView::Internal { entries } => entries,
        };
        let mut mbb = entries[0].0;
        for (b, _) in &entries[1..] {
            mbb.union_with(b);
        }
        mbb
    }

    /// Returns `(subtree mbb, split sibling)`.
    fn insert_rec(
        &mut self,
        pid: PageId,
        level: usize,
        mbb: Mbb,
        id: u32,
    ) -> (Mbb, Option<(Mbb, PageId)>) {
        if level == self.height {
            // Leaf level.
            let NodeView::Leaf { mut entries } = self.read_node(pid) else {
                unreachable!("leaf expected at level {level}");
            };
            entries.push((mbb, id));
            if entries.len() <= self.cap() {
                self.write_node(pid, true, &entries);
                (cover(&entries), None)
            } else {
                let (left, right) = quadratic_split(entries, self.cap());
                let rpid = self.alloc_page();
                self.write_node(rpid, true, &right);
                self.write_node(pid, true, &left);
                (cover(&left), Some((cover(&right), rpid)))
            }
        } else {
            let NodeView::Internal { mut entries } = self.read_node(pid) else {
                unreachable!("internal expected at level {level}");
            };
            // Least enlargement, ties by smaller area.
            let mut best = 0;
            let mut best_enl = f64::INFINITY;
            let mut best_area = f64::INFINITY;
            for (i, (b, _)) in entries.iter().enumerate() {
                let enl = b.enlargement(&mbb);
                let area = b.area();
                if enl < best_enl || (enl == best_enl && area < best_area) {
                    best = i;
                    best_enl = enl;
                    best_area = area;
                }
            }
            let (child_mbb, split) = self.insert_rec(entries[best].1, level + 1, mbb, id);
            entries[best].0 = child_mbb;
            if let Some((sb, spid)) = split {
                entries.push((sb, spid));
            }
            if entries.len() <= self.cap() {
                self.write_node(pid, false, &entries);
                (cover(&entries), None)
            } else {
                let (left, right) = quadratic_split(entries, self.cap());
                let rpid = self.alloc_page();
                self.write_node(rpid, false, &right);
                self.write_node(pid, false, &left);
                (cover(&left), Some((cover(&right), rpid)))
            }
        }
    }

    fn remove_rec(&mut self, pid: PageId, mbb: &Mbb, id: u32) -> bool {
        match self.read_node(pid) {
            NodeView::Leaf { mut entries } => {
                if let Some(pos) = entries.iter().position(|(_, eid)| *eid == id) {
                    entries.remove(pos);
                    self.write_node(pid, true, &entries);
                    true
                } else {
                    false
                }
            }
            NodeView::Internal { entries } => {
                for (b, c) in &entries {
                    if b.intersects(&mbb.lo_f64(), &mbb.hi_f64()) && self.remove_rec(*c, mbb, id) {
                        return true;
                    }
                }
                false
            }
        }
    }
}

fn cover(entries: &[(Mbb, u32)]) -> Mbb {
    let mut mbb = entries[0].0;
    for (b, _) in &entries[1..] {
        mbb.union_with(b);
    }
    mbb
}

/// A node's entry list: boxes plus child page / object ids.
type EntryList = Vec<(Mbb, u32)>;

/// Guttman's quadratic split.
fn quadratic_split(entries: EntryList, cap: usize) -> (EntryList, EntryList) {
    let min_fill = (cap * 2) / 5;
    // Pick seeds with maximal dead space.
    let (mut s1, mut s2, mut worst) = (0, 1, f64::NEG_INFINITY);
    for i in 0..entries.len() {
        for j in i + 1..entries.len() {
            let u = Mbb::union(&entries[i].0, &entries[j].0);
            let dead = u.area() - entries[i].0.area() - entries[j].0.area();
            let dead = if dead.abs() < f64::EPSILON {
                u.margin() - entries[i].0.margin() - entries[j].0.margin()
            } else {
                dead
            };
            if dead > worst {
                worst = dead;
                s1 = i;
                s2 = j;
            }
        }
    }
    let mut left = vec![entries[s1]];
    let mut right = vec![entries[s2]];
    let mut lbox = entries[s1].0;
    let mut rbox = entries[s2].0;
    let mut rest: Vec<(Mbb, u32)> = entries
        .into_iter()
        .enumerate()
        .filter_map(|(i, e)| (i != s1 && i != s2).then_some(e))
        .collect();
    while let Some(e) = rest.pop() {
        let remaining = rest.len() + 1;
        if left.len() + remaining <= min_fill {
            lbox.union_with(&e.0);
            left.push(e);
            continue;
        }
        if right.len() + remaining <= min_fill {
            rbox.union_with(&e.0);
            right.push(e);
            continue;
        }
        let dl = lbox.enlargement(&e.0);
        let dr = rbox.enlargement(&e.0);
        if dl < dr || (dl == dr && left.len() <= right.len()) {
            lbox.union_with(&e.0);
            left.push(e);
        } else {
            rbox.union_with(&e.0);
            right.push(e);
        }
    }
    (left, right)
}

/// Sort-tile-recursive partitioning into leaf groups.
fn str_partition(
    items: &mut [(Mbb, u32)],
    dim: usize,
    dims: usize,
    cap: usize,
    out: &mut Vec<Vec<(Mbb, u32)>>,
) {
    if items.len() <= cap {
        out.push(items.to_vec());
        return;
    }
    let center = |b: &Mbb, d: usize| (b.lo()[d] + b.hi()[d]) / 2.0;
    items.sort_by(|a, b| center(&a.0, dim).total_cmp(&center(&b.0, dim)));
    if dim + 1 >= dims {
        for chunk in items.chunks(cap) {
            out.push(chunk.to_vec());
        }
        return;
    }
    let n_leaves = items.len().div_ceil(cap);
    let per_dim = (n_leaves as f64)
        .powf(1.0 / (dims - dim) as f64)
        .ceil()
        .max(1.0) as usize;
    let slab = items.len().div_ceil(per_dim);
    let mut start = 0;
    while start < items.len() {
        let end = (start + slab).min(items.len());
        str_partition(&mut items[start..end], dim + 1, dims, cap, out);
        start = end;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(xs: &[f64]) -> Mbb {
        Mbb::from_point(xs)
    }

    #[test]
    fn mbb_basics() {
        let mut a = pt(&[1.0, 2.0]);
        a.union_with(&pt(&[3.0, -1.0]));
        assert!(a.intersects(&[2.0, 0.0], &[2.5, 0.5]));
        assert!(!a.intersects(&[4.0, 0.0], &[5.0, 1.0]));
        assert_eq!(a.mindist(&[5.0, 0.0]), 2.0);
        assert_eq!(a.mindist(&[2.0, 0.0]), 0.0);
    }

    #[test]
    fn outward_rounding_contains_point() {
        // A value that is not representable in f32.
        let x = 1.000000059604644e8 + 0.123456789;
        let b = pt(&[x]);
        assert!((b.lo()[0] as f64) <= x && x <= (b.hi()[0] as f64));
    }

    fn brute(points: &[Vec<f64>], lo: &[f64], hi: &[f64]) -> Vec<u32> {
        points
            .iter()
            .enumerate()
            .filter(|(_, p)| {
                p.iter().zip(lo).all(|(x, l)| x >= l) && p.iter().zip(hi).all(|(x, h)| x <= h)
            })
            .map(|(i, _)| i as u32)
            .collect()
    }

    fn gen_points(n: usize, dims: usize, seed: u64) -> Vec<Vec<f64>> {
        // Simple LCG to avoid a rand dev-dependency cycle.
        let mut s = seed | 1;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 33) as f64) / (u32::MAX as f64) * 100.0
        };
        (0..n)
            .map(|_| (0..dims).map(|_| next()).collect())
            .collect()
    }

    #[test]
    fn insert_and_search_matches_brute_force() {
        for dims in [2usize, 5] {
            let pts = gen_points(400, dims, 42);
            let mut t = RTree::new(DiskSim::new(512), dims);
            for (i, p) in pts.iter().enumerate() {
                t.insert(pt(p), i as u32);
            }
            assert_eq!(t.len(), 400);
            for (lo_v, hi_v) in [(10.0, 50.0), (0.0, 100.0), (80.0, 81.0)] {
                let lo = vec![lo_v; dims];
                let hi = vec![hi_v; dims];
                let mut got = Vec::new();
                t.search_box(&lo, &hi, |id| got.push(id));
                got.sort();
                assert_eq!(got, brute(&pts, &lo, &hi), "dims={dims} {lo_v}..{hi_v}");
            }
        }
    }

    #[test]
    fn bulk_load_matches_brute_force() {
        let dims = 3;
        let pts = gen_points(600, dims, 7);
        let items: Vec<(Mbb, u32)> = pts
            .iter()
            .enumerate()
            .map(|(i, p)| (pt(p), i as u32))
            .collect();
        let t = RTree::bulk_load(DiskSim::new(512), dims, items);
        assert_eq!(t.len(), 600);
        assert!(t.height() >= 2);
        let lo = vec![20.0; dims];
        let hi = vec![60.0; dims];
        let mut got = Vec::new();
        t.search_box(&lo, &hi, |id| got.push(id));
        got.sort();
        assert_eq!(got, brute(&pts, &lo, &hi));
    }

    #[test]
    fn bulk_load_is_better_clustered_than_inserts() {
        let dims = 2;
        let pts = gen_points(2000, dims, 3);
        let items: Vec<(Mbb, u32)> = pts
            .iter()
            .enumerate()
            .map(|(i, p)| (pt(p), i as u32))
            .collect();
        let bulk = RTree::bulk_load(DiskSim::new(512), dims, items.clone());
        let mut ins = RTree::new(DiskSim::new(512), dims);
        for (b, i) in items {
            ins.insert(b, i);
        }
        // STR packs tighter: fewer pages.
        assert!(bulk.pages_used() <= ins.pages_used());
        // Point query I/O should be no worse for the bulk tree.
        let probe = |t: &RTree| {
            t.disk().reset_counters();
            let mut hits = 0u32;
            t.search_box(&[40.0, 40.0], &[45.0, 45.0], |_| hits += 1);
            t.disk().reads()
        };
        assert!(probe(&bulk) <= probe(&ins) * 2);
    }

    #[test]
    fn remove_works() {
        let dims = 2;
        let pts = gen_points(100, dims, 9);
        let mut t = RTree::new(DiskSim::new(512), dims);
        for (i, p) in pts.iter().enumerate() {
            t.insert(pt(p), i as u32);
        }
        assert!(t.remove(&pt(&pts[13]), 13));
        assert!(!t.remove(&pt(&pts[13]), 13));
        assert_eq!(t.len(), 99);
        let mut got = Vec::new();
        t.search_box(&vec![0.0; dims], &vec![100.0; dims], |id| got.push(id));
        assert_eq!(got.len(), 99);
        assert!(!got.contains(&13));
    }

    #[test]
    fn empty_tree_cleanup() {
        let mut t = RTree::new(DiskSim::new(512), 2);
        for i in 0..50 {
            t.insert(pt(&[i as f64, 0.0]), i as u32);
        }
        for i in 0..50 {
            assert!(t.remove(&pt(&[i as f64, 0.0]), i as u32));
        }
        assert!(t.is_empty());
        assert_eq!(t.pages_used(), 0);
        t.insert(pt(&[1.0, 1.0]), 7);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn mindist_orders_nodes_sensibly() {
        // Best-first style check: mindist to a far box exceeds mindist to a
        // near box.
        let near = Mbb::union(&pt(&[0.0, 0.0]), &pt(&[1.0, 1.0]));
        let far = Mbb::union(&pt(&[10.0, 10.0]), &pt(&[11.0, 11.0]));
        let q = [0.5, 0.5];
        assert!(near.mindist(&q) < far.mindist(&q));
        assert_eq!(near.mindist(&q), 0.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Insert-built trees answer box queries exactly like a linear scan,
        /// across random dimensionalities, point sets and query boxes.
        #[test]
        fn search_matches_brute_force(
            dims in 1usize..5,
            pts in prop::collection::vec(
                prop::collection::vec(0.0f64..100.0, 4),
                1..120,
            ),
            qlo in prop::collection::vec(0.0f64..100.0, 4),
            extent in 1.0f64..60.0,
        ) {
            let pts: Vec<Vec<f64>> = pts.into_iter().map(|p| p[..dims].to_vec()).collect();
            let mut t = RTree::new(DiskSim::new(512), dims);
            for (i, p) in pts.iter().enumerate() {
                t.insert(Mbb::from_point(p), i as u32);
            }
            let lo: Vec<f64> = qlo[..dims].to_vec();
            let hi: Vec<f64> = lo.iter().map(|x| x + extent).collect();
            let mut got = Vec::new();
            t.search_box(&lo, &hi, |id| got.push(id));
            got.sort_unstable();
            let want: Vec<u32> = pts
                .iter()
                .enumerate()
                .filter(|(_, p)| {
                    p.iter().zip(&lo).all(|(x, l)| x >= l)
                        && p.iter().zip(&hi).all(|(x, h)| x <= h)
                })
                .map(|(i, _)| i as u32)
                .collect();
            // f32 storage rounds outward, so the tree may return points on
            // the boundary that exact f64 filtering excludes; the tree's
            // answer must be a superset whose extras touch the boundary.
            for w in &want {
                prop_assert!(got.contains(w), "missing {w}");
            }
            for g in &got {
                if !want.contains(g) {
                    let p = &pts[*g as usize];
                    let near = p.iter().zip(&lo).all(|(x, l)| *x >= l - 1e-3)
                        && p.iter().zip(&hi).all(|(x, h)| *x <= h + 1e-3);
                    prop_assert!(near, "false positive far from boundary");
                }
            }
        }

        /// mindist is a valid lower bound: never exceeds the true Chebyshev
        /// distance from the query to any point inside the box.
        #[test]
        fn mindist_is_lower_bound(
            a in prop::collection::vec(0.0f64..100.0, 3),
            b in prop::collection::vec(0.0f64..100.0, 3),
            q in prop::collection::vec(-50.0f64..150.0, 3),
            t in prop::collection::vec(0.0f64..1.0, 3),
        ) {
            let mut mbb = Mbb::from_point(&a);
            mbb.union_with(&Mbb::from_point(&b));
            // Any convex combination of the two corners lies in the box.
            let inside: Vec<f64> = a.iter().zip(&b).zip(&t)
                .map(|((x, y), w)| x * w + y * (1.0 - w))
                .collect();
            let cheb = inside.iter().zip(&q).map(|(x, y)| (x - y).abs())
                .fold(0.0f64, f64::max);
            prop_assert!(mbb.mindist(&q) <= cheb + 1e-3);
        }
    }
}
