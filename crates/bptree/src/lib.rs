//! A paged B+-tree over the simulated disk, with optional per-entry subtree
//! summaries (used by the SPB-tree to keep minimum bounding boxes of mapped
//! vectors in its non-leaf entries, paper §5.4).
//!
//! Design notes:
//!
//! * Every node occupies exactly one disk page; all node accesses go through
//!   [`pmi_storage::DiskSim`] so that the paper's PA metric is observable.
//! * Keys are fixed-size and totally ordered ([`Key`]); duplicate keys are
//!   allowed (distances collide), so removal is by `(key, value)` pair.
//! * Internal entries store a *lower bound* of their child's keys. Deleting
//!   a subtree minimum may leave the bound slack, which preserves search
//!   correctness (bounds only steer descent) while keeping deletion simple.
//! * [`BpTree::read_node`] exposes raw nodes so that index structures can
//!   run their own pruned traversals (depth-first MRQ / best-first MkNNQ)
//!   while still paying the same page-access costs.

mod key;

pub use key::{F64Key, Key, Val};

use pmi_storage::{DiskSim, PageId};

const NO_PAGE: PageId = PageId::MAX;

/// Computes per-entry subtree summaries (e.g. MBBs). The summary of an
/// internal entry aggregates everything stored below it.
pub trait Summarizer<K>: Clone + Send + Sync {
    /// The summary type.
    type Summary: Clone + std::fmt::Debug + Send + Sync;
    /// Encoded summary size in bytes (fixed).
    fn size(&self) -> usize;
    /// Summary of a single leaf key.
    fn leaf(&self, k: &K) -> Self::Summary;
    /// Merges `other` into `acc`.
    fn merge(&self, acc: &mut Self::Summary, other: &Self::Summary);
    /// Appends the encoding of `s` to `out` (exactly [`Self::size`] bytes).
    fn write(&self, s: &Self::Summary, out: &mut Vec<u8>);
    /// Decodes a summary from the front of `buf`.
    fn read(&self, buf: &[u8]) -> Self::Summary;
}

/// The trivial summarizer: summaries are zero-sized and carry nothing.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoSummary;

impl<K> Summarizer<K> for NoSummary {
    type Summary = ();
    fn size(&self) -> usize {
        0
    }
    fn leaf(&self, _k: &K) {}
    fn merge(&self, _acc: &mut (), _other: &()) {}
    fn write(&self, _s: &(), _out: &mut Vec<u8>) {}
    fn read(&self, _buf: &[u8]) {}
}

/// A decoded node, as exposed to custom traversals.
#[derive(Clone, Debug)]
pub enum NodeView<K, V, S> {
    /// Leaf node: sorted `(key, value)` entries plus the right-sibling link.
    Leaf {
        /// Entries in key order.
        entries: Vec<(K, V)>,
        /// Next leaf to the right, if any.
        next: Option<PageId>,
    },
    /// Internal node: `(min-key lower bound, child page, summary)` entries.
    Internal {
        /// Entries in key order.
        entries: Vec<(K, PageId, S)>,
    },
}

/// A paged B+-tree.
pub struct BpTree<K, V, S: Summarizer<K> = NoSummary> {
    disk: DiskSim,
    summarizer: S,
    root: Option<PageId>,
    height: usize,
    len: usize,
    pages_used: usize,
    free: Vec<PageId>,
    _marker: std::marker::PhantomData<(K, V)>,
}

impl<K: Key, V: Val, S: Summarizer<K>> BpTree<K, V, S> {
    /// Creates an empty tree on `disk`.
    pub fn new(disk: DiskSim, summarizer: S) -> Self {
        let t = BpTree {
            disk,
            summarizer,
            root: None,
            height: 0,
            len: 0,
            pages_used: 0,
            free: Vec::new(),
            _marker: std::marker::PhantomData,
        };
        assert!(t.leaf_cap() >= 2, "page too small for two leaf entries");
        assert!(t.int_cap() >= 2, "page too small for two internal entries");
        t
    }

    /// Bulk-loads from entries sorted by key (ties in any order).
    pub fn bulk_load(disk: DiskSim, summarizer: S, sorted: &[(K, V)]) -> Self {
        let mut t = Self::new(disk, summarizer);
        if sorted.is_empty() {
            return t;
        }
        debug_assert!(sorted.windows(2).all(|w| w[0].0 <= w[1].0));
        // Fill leaves to ~80% to leave room for inserts.
        let per_leaf = ((t.leaf_cap() * 4) / 5).max(2);
        let mut level: Vec<(K, PageId, S::Summary)> = Vec::new();
        let mut chunk_start = 0;
        let mut leaf_pids: Vec<PageId> = Vec::new();
        let mut bounds: Vec<(usize, usize)> = Vec::new();
        while chunk_start < sorted.len() {
            let end = (chunk_start + per_leaf).min(sorted.len());
            leaf_pids.push(t.alloc_page());
            bounds.push((chunk_start, end));
            chunk_start = end;
        }
        for (i, &(s0, e0)) in bounds.iter().enumerate() {
            let chunk = &sorted[s0..e0];
            let next = leaf_pids.get(i + 1).copied();
            t.write_leaf(leaf_pids[i], chunk, next);
            let s = t.leaf_summary(chunk);
            level.push((chunk[0].0, leaf_pids[i], s));
        }
        t.len = sorted.len();
        t.height = 1;
        // Build internal levels.
        let per_node = ((t.int_cap() * 4) / 5).max(2);
        while level.len() > 1 {
            let mut upper = Vec::new();
            for chunk in level.chunks(per_node) {
                let pid = t.alloc_page();
                t.write_internal(pid, chunk);
                let s = t.internal_summary(chunk);
                upper.push((chunk[0].0, pid, s));
            }
            level = upper;
            t.height += 1;
        }
        t.root = Some(level[0].1);
        t
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tree height in levels (0 when empty).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Root page, if any.
    pub fn root(&self) -> Option<PageId> {
        self.root
    }

    /// Pages currently owned by the tree.
    pub fn pages_used(&self) -> usize {
        self.pages_used
    }

    /// Bytes occupied on disk.
    pub fn disk_bytes(&self) -> u64 {
        (self.pages_used * self.disk.page_size()) as u64
    }

    /// The disk handle.
    pub fn disk(&self) -> &DiskSim {
        &self.disk
    }

    /// Reads and decodes a node (counted as a page access).
    pub fn read_node(&self, pid: PageId) -> NodeView<K, V, S::Summary> {
        let page = self.disk.read(pid);
        self.decode_node(&page)
    }

    /// Inserts an entry (duplicates allowed).
    pub fn insert(&mut self, k: K, v: V) {
        match self.root {
            None => {
                let pid = self.alloc_page();
                self.write_leaf(pid, &[(k, v)], None);
                self.root = Some(pid);
                self.height = 1;
            }
            Some(root) => {
                if let (_, Some((rk, rpid, rs))) = self.insert_rec(root, k, v) {
                    // Root split: build a new root over the two subtrees.
                    let old_min = self.subtree_min_key(root);
                    let old_summary = self.subtree_summary(root);
                    let new_root = self.alloc_page();
                    self.write_internal(new_root, &[(old_min, root, old_summary), (rk, rpid, rs)]);
                    self.root = Some(new_root);
                    self.height += 1;
                }
            }
        }
        self.len += 1;
    }

    /// Removes one entry equal to `(k, v)`. Returns whether it was found.
    pub fn remove(&mut self, k: K, v: V) -> bool {
        let Some(root) = self.root else { return false };
        let (found, _summary, now_empty) = self.remove_rec(root, k, v);
        if found {
            self.len -= 1;
            if now_empty {
                self.free_page(root);
                self.root = None;
                self.height = 0;
            } else if self.height > 1 {
                // Collapse single-child roots.
                if let NodeView::Internal { entries } = self.read_node(root) {
                    if entries.len() == 1 {
                        self.free_page(root);
                        self.root = Some(entries[0].1);
                        self.height -= 1;
                    }
                }
            }
        }
        found
    }

    /// Visits entries with keys in `[lo, hi]` in key order; the callback
    /// returns `false` to stop early.
    pub fn range<F: FnMut(K, V) -> bool>(&self, lo: K, hi: K, mut f: F) {
        let Some(mut pid) = self.root else { return };
        // Descend to the leaf that may contain `lo`.
        for _ in 1..self.height {
            match self.read_node(pid) {
                NodeView::Internal { entries } => {
                    // Last child with min-key strictly below `lo`: duplicates
                    // of `lo` may start at the end of that child.
                    let idx = entries.partition_point(|e| e.0 < lo).saturating_sub(1);
                    pid = entries[idx].1;
                }
                NodeView::Leaf { .. } => break,
            }
        }
        let mut cur = Some(pid);
        while let Some(pid) = cur {
            match self.read_node(pid) {
                NodeView::Leaf { entries, next } => {
                    for (k, v) in entries {
                        if k > hi {
                            return;
                        }
                        if k >= lo && !f(k, v) {
                            return;
                        }
                    }
                    cur = next;
                }
                NodeView::Internal { .. } => unreachable!("leaf level expected"),
            }
        }
    }

    /// Collects all entries in `[lo, hi]`.
    pub fn range_vec(&self, lo: K, hi: K) -> Vec<(K, V)> {
        let mut out = Vec::new();
        self.range(lo, hi, |k, v| {
            out.push((k, v));
            true
        });
        out
    }

    // --- internals ---------------------------------------------------------

    fn leaf_cap(&self) -> usize {
        (self.disk.page_size() - 7) / (K::SIZE + V::SIZE)
    }

    fn int_cap(&self) -> usize {
        (self.disk.page_size() - 3) / (K::SIZE + 4 + self.summarizer.size())
    }

    fn alloc_page(&mut self) -> PageId {
        self.pages_used += 1;
        self.free.pop().unwrap_or_else(|| self.disk.alloc())
    }

    fn free_page(&mut self, pid: PageId) {
        self.pages_used -= 1;
        self.free.push(pid);
    }

    fn decode_node(&self, page: &[u8]) -> NodeView<K, V, S::Summary> {
        let count = u16::from_le_bytes(page[1..3].try_into().unwrap()) as usize;
        if page[0] == 0 {
            let next = PageId::from_le_bytes(page[3..7].try_into().unwrap());
            let mut entries = Vec::with_capacity(count);
            let mut off = 7;
            for _ in 0..count {
                let k = K::read(&page[off..]);
                off += K::SIZE;
                let v = V::read(&page[off..]);
                off += V::SIZE;
                entries.push((k, v));
            }
            NodeView::Leaf {
                entries,
                next: (next != NO_PAGE).then_some(next),
            }
        } else {
            let mut entries = Vec::with_capacity(count);
            let mut off = 3;
            for _ in 0..count {
                let k = K::read(&page[off..]);
                off += K::SIZE;
                let c = PageId::from_le_bytes(page[off..off + 4].try_into().unwrap());
                off += 4;
                let s = self.summarizer.read(&page[off..]);
                off += self.summarizer.size();
                entries.push((k, c, s));
            }
            NodeView::Internal { entries }
        }
    }

    fn write_leaf(&self, pid: PageId, entries: &[(K, V)], next: Option<PageId>) {
        debug_assert!(entries.len() <= self.leaf_cap());
        let mut page = Vec::with_capacity(self.disk.page_size());
        page.push(0u8);
        page.extend_from_slice(&(entries.len() as u16).to_le_bytes());
        page.extend_from_slice(&next.unwrap_or(NO_PAGE).to_le_bytes());
        for (k, v) in entries {
            k.write(&mut page);
            v.write(&mut page);
        }
        page.resize(self.disk.page_size(), 0);
        self.disk.write(pid, &page);
    }

    fn write_internal(&self, pid: PageId, entries: &[(K, PageId, S::Summary)]) {
        debug_assert!(entries.len() <= self.int_cap());
        let mut page = Vec::with_capacity(self.disk.page_size());
        page.push(1u8);
        page.extend_from_slice(&(entries.len() as u16).to_le_bytes());
        for (k, c, s) in entries {
            k.write(&mut page);
            page.extend_from_slice(&c.to_le_bytes());
            self.summarizer.write(s, &mut page);
        }
        page.resize(self.disk.page_size(), 0);
        self.disk.write(pid, &page);
    }

    fn leaf_summary(&self, entries: &[(K, V)]) -> S::Summary {
        let mut s = self.summarizer.leaf(&entries[0].0);
        for (k, _) in &entries[1..] {
            let ks = self.summarizer.leaf(k);
            self.summarizer.merge(&mut s, &ks);
        }
        s
    }

    fn internal_summary(&self, entries: &[(K, PageId, S::Summary)]) -> S::Summary {
        let mut s = entries[0].2.clone();
        for (_, _, cs) in &entries[1..] {
            self.summarizer.merge(&mut s, cs);
        }
        s
    }

    fn subtree_min_key(&self, pid: PageId) -> K {
        match self.read_node(pid) {
            NodeView::Leaf { entries, .. } => entries[0].0,
            NodeView::Internal { entries } => entries[0].0,
        }
    }

    fn subtree_summary(&self, pid: PageId) -> S::Summary {
        match self.read_node(pid) {
            NodeView::Leaf { entries, .. } => self.leaf_summary(&entries),
            NodeView::Internal { entries } => self.internal_summary(&entries),
        }
    }

    /// Returns `(subtree summary, split)`; `split` is the new right sibling.
    #[allow(clippy::type_complexity)]
    fn insert_rec(
        &mut self,
        pid: PageId,
        k: K,
        v: V,
    ) -> (S::Summary, Option<(K, PageId, S::Summary)>) {
        match self.read_node(pid) {
            NodeView::Leaf { mut entries, next } => {
                let pos = entries.partition_point(|(ek, _)| *ek <= k);
                entries.insert(pos, (k, v));
                if entries.len() <= self.leaf_cap() {
                    self.write_leaf(pid, &entries, next);
                    (self.leaf_summary(&entries), None)
                } else {
                    let right = entries.split_off(entries.len() / 2);
                    let rpid = self.alloc_page();
                    self.write_leaf(rpid, &right, next);
                    self.write_leaf(pid, &entries, Some(rpid));
                    let rs = self.leaf_summary(&right);
                    (self.leaf_summary(&entries), Some((right[0].0, rpid, rs)))
                }
            }
            NodeView::Internal { mut entries } => {
                let mut idx = entries.partition_point(|e| e.0 <= k);
                idx = idx.saturating_sub(1);
                let (child_summary, split) = self.insert_rec(entries[idx].1, k, v);
                // Keep the lower bound tight-ish.
                if k < entries[idx].0 {
                    entries[idx].0 = k;
                }
                entries[idx].2 = child_summary;
                if let Some(se) = split {
                    entries.insert(idx + 1, se);
                }
                if entries.len() <= self.int_cap() {
                    self.write_internal(pid, &entries);
                    (self.internal_summary(&entries), None)
                } else {
                    let right = entries.split_off(entries.len() / 2);
                    let rpid = self.alloc_page();
                    self.write_internal(rpid, &right);
                    self.write_internal(pid, &entries);
                    let rs = self.internal_summary(&right);
                    (
                        self.internal_summary(&entries),
                        Some((right[0].0, rpid, rs)),
                    )
                }
            }
        }
    }

    /// Returns `(found, new summary if non-empty, subtree now empty)`.
    fn remove_rec(&mut self, pid: PageId, k: K, v: V) -> (bool, Option<S::Summary>, bool) {
        match self.read_node(pid) {
            NodeView::Leaf { mut entries, next } => {
                let Some(pos) = entries.iter().position(|(ek, ev)| *ek == k && *ev == v) else {
                    return (false, None, false);
                };
                entries.remove(pos);
                if entries.is_empty() {
                    self.write_leaf(pid, &entries, next);
                    (true, None, true)
                } else {
                    self.write_leaf(pid, &entries, next);
                    (true, Some(self.leaf_summary(&entries)), false)
                }
            }
            NodeView::Internal { mut entries } => {
                // Duplicates may spill across children: try every child whose
                // key range could contain `k`, starting from the first with
                // lower bound <= k that the next sibling does not rule out.
                let start = {
                    let mut i = entries.partition_point(|e| e.0 <= k);
                    i = i.saturating_sub(1);
                    while i > 0 && entries[i].0 == k {
                        i -= 1;
                    }
                    i
                };
                let mut found = false;
                let mut child_empty = false;
                let mut ci = start;
                while ci < entries.len() && entries[ci].0 <= k {
                    let (f, s, empty) = self.remove_rec(entries[ci].1, k, v);
                    if f {
                        found = true;
                        child_empty = empty;
                        if let Some(s) = s {
                            entries[ci].2 = s;
                        }
                        break;
                    }
                    ci += 1;
                }
                if !found {
                    return (false, None, false);
                }
                if child_empty {
                    self.free_page(entries[ci].1);
                    entries.remove(ci);
                    self.relink_leaves_if_needed();
                }
                if entries.is_empty() {
                    (true, None, true)
                } else {
                    self.write_internal(pid, &entries);
                    (true, Some(self.internal_summary(&entries)), false)
                }
            }
        }
    }

    /// After unlinking an empty leaf, left siblings still point at the freed
    /// page. Rebuild the leaf chain from the tree structure. This favours
    /// simplicity over minimal write amplification (see module docs).
    fn relink_leaves_if_needed(&mut self) {
        let Some(root) = self.root else { return };
        if self.height <= 1 {
            return;
        }
        let mut leaves = Vec::new();
        self.collect_leaves(root, &mut leaves);
        for i in 0..leaves.len() {
            let next = leaves.get(i + 1).copied();
            if let NodeView::Leaf { entries, next: old } = self.read_node(leaves[i]) {
                if old != next {
                    self.write_leaf(leaves[i], &entries, next);
                }
            }
        }
    }

    fn collect_leaves(&self, pid: PageId, out: &mut Vec<PageId>) {
        match self.read_node(pid) {
            NodeView::Leaf { .. } => out.push(pid),
            NodeView::Internal { entries } => {
                for (_, c, _) in entries {
                    self.collect_leaves(c, out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree(page: usize) -> BpTree<u64, u32> {
        BpTree::new(DiskSim::new(page), NoSummary)
    }

    #[test]
    fn empty_tree() {
        let t = tree(256);
        assert!(t.is_empty());
        assert_eq!(t.range_vec(0, u64::MAX), vec![]);
    }

    #[test]
    fn insert_and_range() {
        let mut t = tree(256);
        for i in (0..200u64).rev() {
            t.insert(i * 2, i as u32);
        }
        assert_eq!(t.len(), 200);
        let all = t.range_vec(0, u64::MAX);
        assert_eq!(all.len(), 200);
        assert!(all.windows(2).all(|w| w[0].0 <= w[1].0));
        let mid = t.range_vec(100, 120);
        assert_eq!(
            mid.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            vec![100, 102, 104, 106, 108, 110, 112, 114, 116, 118, 120]
        );
    }

    #[test]
    fn duplicate_keys() {
        let mut t = tree(256);
        for v in 0..50u32 {
            t.insert(7, v);
        }
        t.insert(6, 999);
        t.insert(8, 999);
        let hits = t.range_vec(7, 7);
        assert_eq!(hits.len(), 50);
        assert!(t.remove(7, 25));
        assert!(!t.remove(7, 25));
        assert_eq!(t.range_vec(7, 7).len(), 49);
    }

    #[test]
    fn bulk_load_matches_inserts() {
        let entries: Vec<(u64, u32)> = (0..500).map(|i| (i * 3, i as u32)).collect();
        let bulk = BpTree::bulk_load(DiskSim::new(256), NoSummary, &entries);
        assert_eq!(bulk.len(), 500);
        assert_eq!(bulk.range_vec(0, u64::MAX), entries);
        assert!(bulk.height() > 1);
    }

    #[test]
    fn remove_then_empty() {
        let mut t = tree(256);
        for i in 0..100u64 {
            t.insert(i, i as u32);
        }
        for i in 0..100u64 {
            assert!(t.remove(i, i as u32), "remove {i}");
        }
        assert!(t.is_empty());
        assert_eq!(t.root(), None);
        assert_eq!(t.range_vec(0, u64::MAX), vec![]);
        // Tree remains usable.
        t.insert(5, 5);
        assert_eq!(t.range_vec(0, u64::MAX), vec![(5, 5)]);
    }

    #[test]
    fn range_early_stop() {
        let mut t = tree(256);
        for i in 0..100u64 {
            t.insert(i, 0u32);
        }
        let mut seen = 0;
        t.range(0, u64::MAX, |_, _| {
            seen += 1;
            seen < 10
        });
        assert_eq!(seen, 10);
    }

    #[test]
    fn page_accounting() {
        let mut t = tree(256);
        for i in 0..1000u64 {
            t.insert(i, 0u32);
        }
        assert!(t.pages_used() > 4);
        assert_eq!(t.disk_bytes(), (t.pages_used() * 256) as u64);
        let pages_before = t.pages_used();
        for i in 0..1000u64 {
            t.remove(i, 0u32);
        }
        assert!(t.pages_used() < pages_before);
        assert_eq!(t.pages_used(), 0);
    }

    #[test]
    fn f64_keys() {
        let mut t: BpTree<F64Key, u32> = BpTree::new(DiskSim::new(256), NoSummary);
        let ds = [3.5, -1.0, 0.0, 2.25, -7.5, 10.0];
        for (i, d) in ds.iter().enumerate() {
            t.insert(F64Key::new(*d), i as u32);
        }
        let got = t.range_vec(F64Key::new(-2.0), F64Key::new(3.0));
        let keys: Vec<f64> = got.iter().map(|(k, _)| k.get()).collect();
        assert_eq!(keys, vec![-1.0, 0.0, 2.25]);
    }

    #[test]
    fn interleaved_ops_match_model() {
        use std::collections::BTreeSet;
        let mut t = tree(256);
        let mut model: BTreeSet<(u64, u32)> = BTreeSet::new();
        // Deterministic pseudo-random op stream.
        let mut state = 0x12345678u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 33
        };
        for _ in 0..2000 {
            let op = next() % 3;
            let k = next() % 64;
            let v = (next() % 8) as u32;
            match op {
                0 | 1 => {
                    // Model is a set; avoid duplicate (k,v) pairs so counts
                    // stay comparable.
                    if model.insert((k, v)) {
                        t.insert(k, v);
                    }
                }
                _ => {
                    let was = model.remove(&(k, v));
                    assert_eq!(t.remove(k, v), was, "remove({k},{v})");
                }
            }
        }
        let got = t.range_vec(0, u64::MAX);
        let want: Vec<(u64, u32)> = model.iter().copied().collect();
        let mut got_sorted = got.clone();
        got_sorted.sort();
        assert_eq!(got_sorted, want);
        assert_eq!(t.len(), model.len());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    #[derive(Clone, Debug)]
    enum Op {
        Insert(u64, u32),
        Remove(u64, u32),
        Range(u64, u64),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            3 => (0u64..100, 0u32..4).prop_map(|(k, v)| Op::Insert(k, v)),
            2 => (0u64..100, 0u32..4).prop_map(|(k, v)| Op::Remove(k, v)),
            1 => (0u64..100, 0u64..100).prop_map(|(a, b)| Op::Range(a.min(b), a.max(b))),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The tree behaves exactly like a sorted multiset of (key, value)
        /// pairs under arbitrary interleavings of operations, including the
        /// page-split and page-free paths (tiny pages force splits early).
        #[test]
        fn behaves_like_model(ops in prop::collection::vec(op_strategy(), 1..200)) {
            let mut tree = BpTree::<u64, u32>::new(DiskSim::new(256), NoSummary);
            let mut model: Vec<(u64, u32)> = Vec::new();
            for op in ops {
                match op {
                    Op::Insert(k, v) => {
                        tree.insert(k, v);
                        let pos = model.partition_point(|(mk, _)| *mk <= k);
                        model.insert(pos, (k, v));
                    }
                    Op::Remove(k, v) => {
                        let in_model = model.iter().position(|e| *e == (k, v));
                        let removed = tree.remove(k, v);
                        prop_assert_eq!(removed, in_model.is_some());
                        if let Some(p) = in_model {
                            model.remove(p);
                        }
                    }
                    Op::Range(lo, hi) => {
                        let mut got = tree.range_vec(lo, hi);
                        got.sort();
                        let mut want: Vec<(u64, u32)> = model
                            .iter()
                            .copied()
                            .filter(|(k, _)| *k >= lo && *k <= hi)
                            .collect();
                        want.sort();
                        prop_assert_eq!(got, want);
                    }
                }
                prop_assert_eq!(tree.len(), model.len());
            }
            let mut got = tree.range_vec(0, u64::MAX);
            got.sort();
            model.sort();
            prop_assert_eq!(got, model);
        }

        /// Bulk load over any sorted input equals the input.
        #[test]
        fn bulk_load_roundtrip(mut keys in prop::collection::vec(0u64..1000, 0..300)) {
            keys.sort();
            let entries: Vec<(u64, u32)> =
                keys.iter().enumerate().map(|(i, k)| (*k, i as u32)).collect();
            let t = BpTree::bulk_load(DiskSim::new(256), NoSummary, &entries);
            prop_assert_eq!(t.len(), entries.len());
            let got = t.range_vec(0, u64::MAX);
            prop_assert_eq!(got.len(), entries.len());
            prop_assert!(got.windows(2).all(|w| w[0].0 <= w[1].0));
        }
    }
}
