//! Fixed-size key and value encodings for B+-tree entries.

/// A fixed-size, totally ordered B+-tree key.
pub trait Key: Copy + Ord + std::fmt::Debug + Send + Sync + 'static {
    /// Encoded size in bytes.
    const SIZE: usize;
    /// Appends the encoding to `out`.
    fn write(&self, out: &mut Vec<u8>);
    /// Decodes from the front of `buf`.
    fn read(buf: &[u8]) -> Self;
}

impl Key for u64 {
    const SIZE: usize = 8;
    fn write(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn read(buf: &[u8]) -> Self {
        u64::from_le_bytes(buf[..8].try_into().unwrap())
    }
}

impl Key for u128 {
    const SIZE: usize = 16;
    fn write(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn read(buf: &[u8]) -> Self {
        u128::from_le_bytes(buf[..16].try_into().unwrap())
    }
}

impl Key for u32 {
    const SIZE: usize = 4;
    fn write(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn read(buf: &[u8]) -> Self {
        u32::from_le_bytes(buf[..4].try_into().unwrap())
    }
}

/// An order-preserving total encoding of `f64` (distances are never NaN in
/// this workspace). Used as the key type by the M-index and OmniB+-tree,
/// whose B+-trees are keyed by real-valued distances.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct F64Key(u64);

impl F64Key {
    /// Wraps a float. `NaN` is rejected.
    pub fn new(f: f64) -> Self {
        assert!(!f.is_nan(), "NaN cannot be ordered");
        let bits = f.to_bits();
        // Flip all bits for negatives, only the sign for positives: total
        // order matches numeric order.
        let mapped = if bits & 0x8000_0000_0000_0000 != 0 {
            !bits
        } else {
            bits | 0x8000_0000_0000_0000
        };
        F64Key(mapped)
    }

    /// Recovers the float.
    pub fn get(&self) -> f64 {
        let bits = if self.0 & 0x8000_0000_0000_0000 != 0 {
            self.0 & 0x7fff_ffff_ffff_ffff
        } else {
            !self.0
        };
        f64::from_bits(bits)
    }
}

impl From<f64> for F64Key {
    fn from(f: f64) -> Self {
        F64Key::new(f)
    }
}

impl Key for F64Key {
    const SIZE: usize = 8;
    fn write(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.0.to_le_bytes());
    }
    fn read(buf: &[u8]) -> Self {
        F64Key(u64::from_le_bytes(buf[..8].try_into().unwrap()))
    }
}

/// A fixed-size B+-tree value.
pub trait Val: Copy + std::fmt::Debug + PartialEq + Send + Sync + 'static {
    /// Encoded size in bytes.
    const SIZE: usize;
    /// Appends the encoding to `out`.
    fn write(&self, out: &mut Vec<u8>);
    /// Decodes from the front of `buf`.
    fn read(buf: &[u8]) -> Self;
}

impl Val for u32 {
    const SIZE: usize = 4;
    fn write(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn read(buf: &[u8]) -> Self {
        u32::from_le_bytes(buf[..4].try_into().unwrap())
    }
}

impl Val for u64 {
    const SIZE: usize = 8;
    fn write(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn read(buf: &[u8]) -> Self {
        u64::from_le_bytes(buf[..8].try_into().unwrap())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64key_order_preserving() {
        let vals = [
            f64::NEG_INFINITY,
            -1e300,
            -2.5,
            -0.0,
            0.0,
            1e-300,
            1.0,
            2.5,
            1e300,
            f64::INFINITY,
        ];
        for w in vals.windows(2) {
            assert!(
                F64Key::new(w[0]) <= F64Key::new(w[1]),
                "{} vs {}",
                w[0],
                w[1]
            );
        }
        for v in vals {
            let back = F64Key::new(v).get();
            assert!(back == v || (v == 0.0 && back == 0.0), "{v} -> {back}");
        }
    }

    #[test]
    fn key_roundtrips() {
        let mut buf = Vec::new();
        Key::write(&42u64, &mut buf);
        Key::write(&7u128, &mut buf);
        F64Key::new(-3.25).write(&mut buf);
        assert_eq!(<u64 as Key>::read(&buf), 42);
        assert_eq!(<u128 as Key>::read(&buf[8..]), 7);
        assert_eq!(F64Key::read(&buf[24..]).get(), -3.25);
    }

    #[test]
    #[should_panic]
    fn nan_rejected() {
        let _ = F64Key::new(f64::NAN);
    }
}
