//! The sharded engine: partitioning, the scoped-thread worker pool, and
//! batch serving with exact aggregate cost accounting.
//!
//! Two partitioning regimes exist (see [`PartitionPolicy`]): the original
//! round-robin split, where every query probes every shard, and pivot-space
//! routing ([`ShardedEngine::build_partitioned_with`]), where a
//! [`RoutingTable`] prunes shards per query via Lemma 1 box bounds — range
//! queries skip every shard whose bounding box cannot intersect the search
//! ball, and kNN queries probe shards best-first, skipping those whose
//! lower bound exceeds the current k-th distance. Both regimes return
//! identical answers; routing only changes how much work is paid for them,
//! which the engine accounts exactly through the `shards_probed` /
//! `shards_pruned` counters.
//!
//! Construction can adopt a shared [`SharedPivotMatrix`]
//! ([`ShardedEngine::build_with_matrix`] /
//! [`ShardedEngine::build_partitioned_with_matrix`]): each shard factory
//! receives a [`MatrixSlice`] — a row-index view of the one precomputed
//! `n × l` matrix — so shard builds stop recomputing pivot distances and
//! nothing is copied. The engine keeps the shared matrix for its unified
//! mutation path ([`ShardedEngine::apply`]): inserts compute their pivot
//! row once, push it as one shared row (global id == row id), and the
//! destination shard adopts the id; removes shrink the affected routing
//! boxes back over the surviving rows; and a [`RefreshPolicy`] re-clusters
//! the worst shard pair when live counts drift apart. Serving reuses
//! per-worker [`EngineScratch`] buffers so the batch hot loop performs no
//! transient heap allocations per query.
//!
//! # Panic policy
//!
//! No input reachable through the public API may panic this module:
//! malformed queries are rejected up front by [`ShardedEngine::serve`] as
//! [`QueryError`]s, malformed update ops surface as [`OpError`]s, and a
//! panic that *does* escape a shard (a buggy index or metric) is caught at
//! the serve boundary, turned into `QueryResult::Failed`, and counted
//! toward that shard's quarantine (see `docs/robustness.md`). The
//! `expect`s that remain state internal invariants — every worker slot is
//! claimed exactly once, scoped worker threads cannot outlive the scope,
//! partitioned builds carry one matrix slice per shard, a built engine has
//! ≥ 1 shard (`EngineError::ZeroShards` otherwise) — whose violation is an
//! engine bug, not bad input.

use crate::merge::{merge_range, TopK};
use crate::query::{Query, QueryResult};
use crate::queue::{PumpOutcome, SubmitQueue};
use crate::report::{
    BuildStats, LatencySummary, SchedStrategy, ServeReport, ShardServeStats, UpdateStats,
};
use crate::robust::{
    DegradeReason, Degraded, FaultPolicy, OpError, OpErrorKind, QuarantineState, QueryBudget,
    QueryError, ServeBudget, ShardFaultState,
};
use crate::shard::{partition_by_assignment, partition_round_robin, Partition, Shard};
use crate::update::{ApplyReport, CompactionPolicy, RefreshPolicy, UpdateBatch, UpdateOp};
use pmi_metric::fault;
use pmi_metric::lemmas::Mbb;
use pmi_metric::{
    Counters, MatrixSlice, MetricIndex, Neighbor, ObjId, PivotMatrix, QueryScratch,
    SharedPivotMatrix, StorageFootprint,
};
use pmi_obs::{
    Hist, MetricsSnapshot, QueryTrace, Registry, Span, TraceEvent, TraceKind, TracePolicy,
    TraceRing,
};
use pmi_router::{Mapper, PartitionPolicy, RoutingTable};
use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Seed for the deterministic 2-means re-split of the worst shard pair.
const RECLUSTER_SEED: u64 = 0x5245_434C; // "RECL"

/// Engine shape: how many partitions, how many worker threads, and when the
/// mutation path re-clusters.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Number of shards `P`. Clamped to at most `n` at build time so no
    /// shard is ever empty; `0` is a build error ([`EngineError::ZeroShards`]).
    pub shards: usize,
    /// Worker threads for batch serving and parallel shard builds;
    /// `0` means one per available hardware thread.
    pub threads: usize,
    /// When [`apply`](ShardedEngine::apply) re-clusters the worst shard
    /// pair (routed engines only).
    pub refresh: RefreshPolicy,
    /// When [`apply`](ShardedEngine::apply) compacts the shared pivot
    /// matrix (matrix-bearing engines only; renumbers global ids —
    /// disabled by default, see [`CompactionPolicy`]).
    pub compaction: CompactionPolicy,
    /// Seed for the engine's own partitioning decisions — the full
    /// survivor re-partition a [`compact`](ShardedEngine::compact) runs on
    /// routed engines. The `pmi` facade sets it to `BuildOptions::seed`,
    /// so a compaction reproduces exactly the clustering a fresh build
    /// over the survivors would compute.
    pub partition_seed: u64,
    /// Per-query trace capture: sample 1-in-N and/or retroactively keep
    /// slow queries (see [`TracePolicy`]). Disabled by default — the serve
    /// hot path stays untraced; swap at runtime with
    /// [`set_trace_policy`](ShardedEngine::set_trace_policy).
    pub trace: TracePolicy,
    /// Per-query / per-batch serving budgets (see [`ServeBudget`]).
    /// Unlimited by default — the serve hot path pays nothing; swap at
    /// runtime with [`set_budget`](ShardedEngine::set_budget).
    pub budget: ServeBudget,
    /// When repeated per-shard query panics quarantine a shard (see
    /// [`FaultPolicy`]; default: after 3).
    pub faults: FaultPolicy,
    /// How [`serve`](ShardedEngine::serve) schedules a batch onto the
    /// worker pool (see [`SchedPolicy`]; default: [`SchedPolicy::Auto`]).
    pub sched: SchedPolicy,
}

/// How [`serve`](ShardedEngine::serve) maps a batch of queries onto the
/// worker pool.
///
/// *Query-parallel* assigns whole queries to workers: each worker claims
/// queries from a shared cursor and fans nothing, so `P` shards cost one
/// streaming scan each and the batch scales with the query count. This is
/// the right shape whenever the batch is at least as wide as the pool.
///
/// *Shard-parallel* runs the batch serially and fans each query's probe
/// set across the pool (the single-query low-latency path of
/// [`range_query`](ShardedEngine::range_query) /
/// [`knn_query`](ShardedEngine::knn_query)). It only wins when the batch
/// is *narrower* than the pool — otherwise the per-query fan-out multiplies
/// coordination cost without adding parallelism.
///
/// `Auto` (the default) picks per batch with that cost model; the choice
/// made is reported as [`ServeReport::strategy`]. Budgeted, traced, or
/// single-threaded serving always runs query-parallel — degradation,
/// shedding, and trace capture are implemented on the per-worker claim
/// loop.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum SchedPolicy {
    /// Choose per batch: query-parallel unless the batch is narrower than
    /// the worker pool and each query plans enough rows to amortize a
    /// per-query fan-out.
    #[default]
    Auto,
    /// Always assign whole queries to workers.
    QueryParallel,
    /// Always fan each query across shards (falls back to query-parallel
    /// when budgets or tracing are active, or with a single worker or a
    /// single shard, where the fan-out cannot be honored).
    ShardParallel,
}

/// Minimum live-object count (an upper bound on the rows one query plans)
/// below which a per-query shard fan-out cannot amortize its scoped-thread
/// setup; the measured crossover sits at a few thousand rows.
const SHARD_PARALLEL_MIN_ROWS: usize = 4096;

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            shards: 4,
            threads: 0,
            refresh: RefreshPolicy::default(),
            compaction: CompactionPolicy::default(),
            partition_seed: 42,
            trace: TracePolicy::disabled(),
            budget: ServeBudget::unlimited(),
            faults: FaultPolicy::default(),
            sched: SchedPolicy::default(),
        }
    }
}

impl EngineConfig {
    /// The shard count actually built over `n` objects: `shards` clamped to
    /// `1..=max(n, 1)` (no shard is ever empty). Callers that partition
    /// externally (the pivot-space router) use the same clamp so that shard
    /// counts agree with the round-robin path.
    pub fn resolved_shards(&self, n: usize) -> usize {
        self.shards.max(1).min(n.max(1))
    }

    /// The worker thread count actually used: `threads`, or one per
    /// available hardware thread when 0.
    pub fn resolved_threads(&self) -> usize {
        resolve_threads(self.threads)
    }
}

/// Why a sharded engine could not be built.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError<E> {
    /// `EngineConfig::shards` was 0 — an engine needs at least one shard.
    ZeroShards,
    /// A shard factory failed; carries the factory's own error.
    Build(E),
}

impl<E: std::fmt::Display> std::fmt::Display for EngineError<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::ZeroShards => {
                write!(
                    f,
                    "engine requires at least one shard (EngineConfig.shards == 0)"
                )
            }
            EngineError::Build(e) => write!(f, "shard build failed: {e}"),
        }
    }
}

impl<E: std::fmt::Display + std::fmt::Debug> std::error::Error for EngineError<E> {}

fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Reusable per-worker buffers for the batch-serving hot loop: the
/// query-pivot distance vector, the shard probe plan, the candidate/result
/// staging buffers and the bounded top-k collector all persist across the
/// queries one worker executes, so after warmup the only allocation a query
/// performs is its exact-size answer.
#[derive(Default)]
pub struct EngineScratch {
    /// Index-level scratch (query-pivot distances, kNN heap).
    qs: QueryScratch,
    /// The query's mapped point in pivot space (routed engines).
    mapped: Vec<f64>,
    /// Range probe plan: shards that must be probed.
    probe: Vec<usize>,
    /// kNN probe order: `(shard, box lower bound)` best-first.
    order: Vec<(usize, f64)>,
    /// Range answer staging buffer (global ids).
    ids: Vec<ObjId>,
    /// Per-shard kNN staging buffer.
    nbrs: Vec<Neighbor>,
    /// Global top-k collector.
    topk: TopK,
    /// Per-worker observability buffers, merged once per batch.
    obs: ScratchObs,
    /// Per-worker trace ring and captured traces (inert unless a
    /// [`TracePolicy`] arms it for the batch).
    trace: ScratchTrace,
    /// Per-query degradation control: budget clocks, compdist spending,
    /// panic attribution, skip accounting. Disarmed (the default), probe
    /// loops pay one branch per probe.
    ctl: QueryCtl,
}

impl EngineScratch {
    /// Fresh, empty scratch buffers.
    pub fn new() -> Self {
        EngineScratch::default()
    }
}

/// One-in-N query sampling rate for probe-wall timing. Exact per-shard
/// probe/cost counts are always kept; only *wall-clock* attribution is
/// sampled, so the per-probe clock-read cost amortizes to well under the
/// 2% serve-overhead budget. Power of two (cheap mask).
const OBS_SAMPLE: u64 = 8;

/// Cap on raw probe-wall samples retained per (worker, shard) per batch,
/// bounding memory on very large batches.
const OBS_SAMPLE_CAP: usize = 65_536;

/// Per-worker observability state, recorded with plain (non-atomic)
/// writes on the serve path and folded into the engine's [`Registry`] and
/// the batch's [`ServeReport`] once per batch. Exact probe counts are
/// always maintained (they feed `ServeReport::per_shard` regardless of
/// the obs switch); everything timed is gated on `timing`/`sampled` —
/// both constant `false` when the `obs` feature is compiled out, so the
/// optimizer erases every clock read.
#[derive(Default)]
struct ScratchObs {
    /// Runtime obs switch, copied from the registry once per batch.
    timing: bool,
    /// Whether the in-flight query is one of the 1-in-[`OBS_SAMPLE`]
    /// timing samples.
    sampled: bool,
    /// Exact probe count per shard (always on — one plain add per probe).
    probes: Vec<u64>,
    /// Sampled probe wall per shard, summed nanoseconds.
    shard_nanos: Vec<u64>,
    /// Raw sampled probe walls per shard (for exact sample quantiles).
    shard_samples: Vec<Vec<u64>>,
    /// Sampled wall of the plan step (query mapping + shard selection).
    plan_nanos: u64,
    /// Sampled wall of the shard-probe step.
    scan_nanos: u64,
    /// Sampled wall of the merge step.
    merge_nanos: u64,
    /// How many queries this worker sampled for timing.
    sampled_queries: u64,
    /// Pivot distances paid mapping sampled+unsampled queries (timing on).
    map_dists: u64,
    /// Every query's wall (not sampled — one histogram record per query).
    query_wall: Hist,
    /// Scan-kernel tally harvested from [`QueryScratch`] at worker exit.
    kernel_rows: u64,
    /// See `kernel_rows`.
    kernel_blocks: u64,
    /// This worker's busy wall across the batch, nanoseconds.
    busy_nanos: u64,
}

impl ScratchObs {
    /// Sizes the per-shard buffers and arms the runtime switch for one
    /// batch.
    fn prepare(&mut self, shards: usize, timing: bool) {
        self.timing = timing;
        self.sampled = false;
        if self.probes.len() < shards {
            self.probes.resize(shards, 0);
        }
        if timing && self.shard_samples.len() < shards {
            self.shard_nanos.resize(shards, 0);
            self.shard_samples.resize_with(shards, Vec::new);
        }
    }

    /// Exact probe tally (always on; resilient to unprepared scratch from
    /// the public single-query paths).
    #[inline]
    fn note_probe(&mut self, s: usize) {
        if self.probes.len() <= s {
            self.probes.resize(s + 1, 0);
        }
        self.probes[s] += 1;
    }

    /// Records one sampled probe wall against shard `s`.
    fn note_probe_wall(&mut self, s: usize, nanos: u64) {
        if self.shard_samples.len() <= s {
            self.shard_nanos.resize(s + 1, 0);
            self.shard_samples.resize_with(s + 1, Vec::new);
        }
        self.shard_nanos[s] += nanos;
        self.scan_nanos += nanos;
        if self.shard_samples[s].len() < OBS_SAMPLE_CAP {
            self.shard_samples[s].push(nanos);
        }
    }

    /// Folds another worker's state into this one (report aggregation).
    fn merge(&mut self, other: ScratchObs) {
        let shards = self.probes.len().max(other.probes.len());
        if self.probes.len() < shards {
            self.probes.resize(shards, 0);
        }
        for (s, p) in other.probes.into_iter().enumerate() {
            self.probes[s] += p;
        }
        if !other.shard_samples.is_empty() {
            if self.shard_samples.len() < other.shard_samples.len() {
                self.shard_nanos.resize(other.shard_nanos.len(), 0);
                self.shard_samples
                    .resize_with(other.shard_samples.len(), Vec::new);
            }
            for (s, (ns, mut samples)) in other
                .shard_nanos
                .into_iter()
                .zip(other.shard_samples)
                .enumerate()
            {
                self.shard_nanos[s] += ns;
                self.shard_samples[s].append(&mut samples);
            }
        }
        self.plan_nanos += other.plan_nanos;
        self.scan_nanos += other.scan_nanos;
        self.merge_nanos += other.merge_nanos;
        self.sampled_queries += other.sampled_queries;
        self.map_dists += other.map_dists;
        self.query_wall.merge(&other.query_wall);
        self.kernel_rows += other.kernel_rows;
        self.kernel_blocks += other.kernel_blocks;
        self.busy_nanos += other.busy_nanos;
    }
}

/// Per-worker trace state. Untraced queries (the default policy) cost one
/// branch per serve-loop iteration and nothing on the query path itself —
/// no allocation, no atomics, no clock reads. A traced query records
/// [`TraceEvent`]s into the worker's fixed-capacity ring with plain slot
/// writes; only *capture* (the decided-to-keep path) allocates, by copying
/// the ring into an owned [`QueryTrace`].
#[derive(Default)]
struct ScratchTrace {
    /// The batch's policy, copied once per batch.
    policy: TracePolicy,
    /// Whether the policy enables any capture mode this batch.
    armed: bool,
    /// Whether the in-flight query is recording events.
    active: bool,
    /// Whether the in-flight query was chosen by 1-in-N sampling (slow
    /// capture decides retroactively at [`finish`](Self::finish)).
    sampled: bool,
    /// The per-worker event ring, reused across queries.
    ring: TraceRing,
    /// Traces this worker captured, in serve order.
    captured: Vec<QueryTrace>,
}

impl ScratchTrace {
    /// Arms (or disarms) tracing for one batch.
    fn prepare(&mut self, policy: TracePolicy) {
        self.policy = policy;
        self.armed = policy.enabled() && policy.max_captured > 0;
        self.active = false;
        self.sampled = false;
        self.captured.clear();
    }

    /// Decides whether the `served`-th query of this worker records events.
    #[inline]
    fn begin(&mut self, served: u64) {
        if !self.armed {
            return;
        }
        if self.captured.len() >= self.policy.max_captured {
            // The worker's capture budget is spent: stop recording.
            self.active = false;
            return;
        }
        self.sampled =
            self.policy.sample_every > 0 && served.is_multiple_of(self.policy.sample_every);
        // With a slow-query threshold set, every query records — the
        // keep/drop decision is made after the wall is known.
        self.active = self.sampled || self.policy.slow_query_nanos > 0;
        if self.active {
            self.ring.clear();
        }
    }

    /// Concludes the in-flight query: captures the ring if the query was
    /// sampled or its wall met the slow-query threshold.
    fn finish(&mut self, query: usize, kind: TraceKind, wall_nanos: u64) {
        if !self.active {
            return;
        }
        self.active = false;
        let slow = self.policy.slow_query_nanos > 0 && wall_nanos >= self.policy.slow_query_nanos;
        if !(self.sampled || slow) {
            return;
        }
        self.captured.push(QueryTrace {
            query,
            kind,
            wall_nanos,
            sampled: self.sampled,
            slow,
            dropped_events: self.ring.dropped(),
            events: self.ring.events().copied().collect(),
        });
    }
}

/// Per-query degradation control, living in [`EngineScratch`] so the
/// `range_with`/`knn_with` signatures stay put: `begin` arms it from the
/// batch's [`QueryBudget`] and the engine's quarantine fast-path bit,
/// probe loops consult [`allow_probe`](Self::allow_probe) before each
/// shard, and `execute_with` harvests the outcome via
/// [`take_degraded`](Self::take_degraded). With budgets off and nothing
/// quarantined the whole structure costs one branch per probe.
///
/// `probing` is written unconditionally (one plain store per probe) so a
/// panic caught by `serve` can attribute itself to the shard that was
/// being probed.
/// A deadline check that finds at least this much time remaining grants
/// [`DEADLINE_SKIP`] clock-free probe-boundary checks.
const DEADLINE_SLACK_NANOS: u64 = 10_000_000;
/// Clock reads skipped per slack grant (worst case: a degradation is
/// noticed up to this many probe boundaries late, only when the previous
/// read was ≥ 10 ms ahead of the deadline).
const DEADLINE_SKIP: u32 = 3;

#[derive(Default)]
struct QueryCtl {
    /// The batch's per-query budget, set once per batch by `serve`
    /// (unlimited for direct `execute_with` callers).
    batch_budget: QueryBudget,
    /// Whether any budget or quarantine is active for this query.
    armed: bool,
    /// The per-query budget (meaningful only when `armed`).
    budget: QueryBudget,
    /// Precomputed wall deadline for the in-flight query.
    deadline: Option<Instant>,
    /// Distance computations this query has spent (per-probe shard-counter
    /// deltas; exact single-threaded, conservative under concurrent
    /// serving of the same shard).
    spent: u64,
    /// Remaining probe-boundary deadline checks allowed to skip the clock
    /// read. Granted in blocks of [`DEADLINE_SKIP`] whenever a real read
    /// shows at least [`DEADLINE_SLACK_NANOS`] to spare, so a far-off
    /// deadline costs ~one clock read per few probes instead of one per
    /// probe; a query's first check always reads, so tight deadlines
    /// (including already-blown ones) degrade exactly as before.
    clock_skips: u32,
    /// The shard currently being probed (panic attribution).
    probing: Option<u32>,
    /// Planned probes skipped so far for this query.
    skipped: u32,
    /// Why the first skip happened.
    reason: Option<DegradeReason>,
}

impl QueryCtl {
    /// Arms (or disarms) the control for one query; returns whether probe
    /// loops need the guarded path.
    #[inline]
    fn begin(&mut self, budget: QueryBudget, quarantine_active: bool) -> bool {
        self.spent = 0;
        self.skipped = 0;
        self.reason = None;
        self.probing = None;
        self.clock_skips = 0;
        self.armed = budget.enabled() || quarantine_active;
        if self.armed {
            self.budget = budget;
            self.deadline = (budget.wall_nanos > 0)
                .then(|| Instant::now() + Duration::from_nanos(budget.wall_nanos));
        } else {
            self.deadline = None;
        }
        self.armed
    }

    /// Budget check at a shard-probe boundary: `true` to probe, `false` to
    /// skip the remaining plan. Only called on the guarded path.
    #[inline]
    fn allow_probe(&mut self) -> bool {
        if self.reason == Some(DegradeReason::Deadline)
            || self.reason == Some(DegradeReason::CompdistCap)
        {
            // Already over budget: skip the rest of the plan outright.
            self.skipped += 1;
            return false;
        }
        if self.budget.compdists > 0 && self.spent >= self.budget.compdists {
            self.skip(DegradeReason::CompdistCap);
            return false;
        }
        if let Some(d) = self.deadline {
            if self.clock_skips > 0 {
                // The last read had DEADLINE_SLACK_NANOS to spare; probes
                // are checked at boundaries only anyway (an in-flight probe
                // can never be cancelled), so a paced check weakens nothing
                // the contract promises.
                self.clock_skips -= 1;
            } else {
                let now = Instant::now();
                if now >= d {
                    self.skip(DegradeReason::Deadline);
                    return false;
                }
                if d - now >= Duration::from_nanos(DEADLINE_SLACK_NANOS) {
                    self.clock_skips = DEADLINE_SKIP;
                }
            }
        }
        true
    }

    /// Records one skipped probe.
    #[inline]
    fn skip(&mut self, reason: DegradeReason) {
        self.skipped += 1;
        self.reason.get_or_insert(reason);
    }

    /// Concludes the query: the degradation marker if any probe was
    /// skipped.
    #[inline]
    fn take_degraded(&mut self) -> Option<Degraded> {
        self.probing = None;
        if self.skipped == 0 {
            return None;
        }
        let d = Degraded {
            shards_skipped: self.skipped,
            reason: self.reason.unwrap_or(DegradeReason::Deadline),
        };
        self.skipped = 0;
        self.reason = None;
        Some(d)
    }
}

/// A lap timer that reads the monotonic clock only when armed: `lap()`
/// returns the nanoseconds since the previous lap (or construction) and
/// re-arms, so a sampled query pays exactly one clock read per measured
/// segment. Disarmed (`ObsClock::start(false)`, the non-sampled and
/// obs-off paths), every call is a constant 0 the optimizer folds away.
struct ObsClock(Option<Instant>);

impl ObsClock {
    #[inline]
    fn start(armed: bool) -> Self {
        ObsClock(if armed { Some(Instant::now()) } else { None })
    }

    #[inline]
    fn lap(&mut self) -> u64 {
        match &mut self.0 {
            Some(t) => {
                let now = Instant::now();
                let d = now.duration_since(*t).as_nanos() as u64;
                *t = now;
                d
            }
            None => 0,
        }
    }
}

/// Nearest-rank quantile over an already-sorted sample set (seconds).
fn sample_quantile(sorted_nanos: &[u64], q: f64) -> f64 {
    if sorted_nanos.is_empty() {
        return 0.0;
    }
    let n = sorted_nanos.len();
    let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
    sorted_nanos[rank - 1] as f64 * 1e-9
}

/// One partition awaiting its index, plus its optional adopted slice of
/// the shared pivot-distance matrix.
type MatrixPart<O> = (Partition<O>, Option<MatrixSlice>);

/// The live members of shard `s` as `(local slot, global id)` pairs: walks
/// the shard's own slot table and keeps only the slots the locator still
/// maps to this shard (a slot keeps its last global id after a removal or
/// a re-cluster move), so box maintenance touches one shard's slots
/// instead of the whole dataset.
fn live_members<'a, O>(
    shard: &'a Shard<O>,
    s: usize,
    locator: &'a HashMap<ObjId, (u32, ObjId)>,
) -> impl Iterator<Item = (ObjId, ObjId)> + 'a {
    shard
        .global_ids()
        .iter()
        .enumerate()
        .filter(move |&(local, gid)| locator.get(gid) == Some(&(s as u32, local as ObjId)))
        .map(|(local, &gid)| (local as ObjId, gid))
}

/// The answers plus the measurement of one served batch.
#[derive(Debug)]
pub struct BatchOutcome {
    /// Per-query merged results, in batch order.
    pub results: Vec<QueryResult>,
    /// Throughput / latency / cost measurement.
    pub report: ServeReport,
}

/// One immutable published version of the engine's serving state: the
/// shard handles, the routing table, and the epoch that names it.
///
/// Readers load the current snapshot once per batch (one `Arc` clone under
/// a nanosecond lock) and serve the whole batch against it, so a
/// concurrently committing [`apply`](ShardedEngine::apply) can never tear a
/// batch: every answer is byte-identical to serving against some quiesced
/// prefix of the update stream. Shards shared between consecutive
/// snapshots are the *same* `Arc` — `apply` forks only the shards a batch
/// touches (copy-on-write), so publication cost scales with the write set,
/// not the engine.
pub struct EngineSnapshot<O> {
    /// Publication epoch: 0 for the freshly built engine, +1 per commit.
    epoch: u64,
    /// The shard set of this version.
    shards: Vec<Arc<Shard<O>>>,
    /// The routing table of this version; `None` for round-robin engines.
    router: Option<Arc<RoutingTable<O>>>,
}

impl<O> EngineSnapshot<O> {
    /// Publication epoch of this snapshot.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Live objects in this snapshot.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// Whether this snapshot holds no objects.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The reader-shared half of the engine: everything batch serving needs
/// behind `&self`. The writer half ([`ShardedEngine`]) owns the mutable
/// bookkeeping (locator, shared matrix, policies) and publishes new
/// [`EngineSnapshot`]s into `snap`; readers — [`EngineReader`] handles and
/// the engine's own serve wrappers — load the snapshot once per batch and
/// never observe a half-applied update.
struct EngineCore<O> {
    threads: usize,
    /// The current published snapshot. The mutex guards a single `Arc`
    /// clone/store — held for nanoseconds, never across a probe.
    snap: Mutex<Arc<EngineSnapshot<O>>>,
    /// Exact count of shard probes executed (a query touching 3 of 8
    /// shards adds 3).
    probed: AtomicU64,
    /// Exact count of shard probes avoided by routing (the same query adds
    /// 5 here).
    pruned: AtomicU64,
    /// The engine's metrics registry: build/serve/apply/compact phases,
    /// latency histograms, counters. Zero-sized and inert when the `obs`
    /// feature is compiled out; runtime-toggleable via
    /// [`set_obs_enabled`](ShardedEngine::set_obs_enabled) otherwise.
    obs: Registry,
    /// The per-query trace capture policy, read once per batch (the mutex
    /// never sits on the query path).
    trace: Mutex<TracePolicy>,
    /// Serving budgets, read once per batch (same discipline as `trace`).
    budget: Mutex<ServeBudget>,
    /// How `serve` schedules batches onto workers, read once per batch.
    sched: Mutex<SchedPolicy>,
    /// When repeated per-shard panics quarantine a shard.
    faults: FaultPolicy,
    /// Per-shard panic counts and quarantine flags.
    quarantine: QuarantineState,
    /// Optional query/insert object validator (e.g. finite-coords for
    /// vector engines); rejected objects fail per-item, never the batch.
    validator: Mutex<Option<Validator<O>>>,
    /// Stats mirrors for reports, synced by the writer at each commit.
    build: Mutex<BuildStats>,
    updates: Mutex<UpdateStats>,
    /// Live [`EngineReader`] handles (diagnostic gauge only).
    readers: AtomicUsize,
}

impl<O> EngineCore<O> {
    /// The current published snapshot (one `Arc` clone).
    fn snapshot(&self) -> Arc<EngineSnapshot<O>> {
        Arc::clone(&self.snap.lock().unwrap_or_else(|e| e.into_inner()))
    }

    fn trace_policy(&self) -> TracePolicy {
        *self.trace.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn serve_budget(&self) -> ServeBudget {
        *self.budget.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn validator(&self) -> Option<Validator<O>> {
        self.validator
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }
}

/// A cloneable serving handle for always-on operation: every call loads
/// the engine's current published [`EngineSnapshot`] and serves entirely
/// against it, so reader threads keep answering — each batch internally
/// consistent — while a writer thread commits [`apply`] batches off to the
/// side (MVCC).
///
/// Obtained from [`ShardedEngine::reader`], which returns `None` for
/// engines whose shard kind cannot fork (where `apply` mutates in place
/// and concurrent serving would race).
///
/// [`apply`]: ShardedEngine::apply
pub struct EngineReader<O> {
    core: Arc<EngineCore<O>>,
}

impl<O> Clone for EngineReader<O> {
    fn clone(&self) -> Self {
        self.core.readers.fetch_add(1, Ordering::Relaxed);
        EngineReader {
            core: Arc::clone(&self.core),
        }
    }
}

impl<O> Drop for EngineReader<O> {
    fn drop(&mut self) {
        self.core.readers.fetch_sub(1, Ordering::Relaxed);
    }
}

impl<O> EngineReader<O> {
    /// Epoch of the snapshot a batch served right now would see.
    pub fn epoch(&self) -> u64 {
        self.core.snapshot().epoch
    }

    /// Live objects in the current snapshot.
    pub fn len(&self) -> usize {
        self.core.snapshot().len()
    }

    /// Whether the current snapshot holds no objects.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Executes one query against the current snapshot.
    pub fn execute(&self, query: &Query<O>) -> QueryResult {
        let snap = self.core.snapshot();
        self.core
            .execute_with(&snap, query, &mut EngineScratch::new())
    }
}

impl<O: Send + Sync> EngineReader<O> {
    /// Serves a batch against the current snapshot. Identical semantics to
    /// [`ShardedEngine::serve`]; safe to call from any number of threads
    /// concurrently with a writer applying updates.
    pub fn serve(&self, batch: &[Query<O>]) -> BatchOutcome {
        let snap = self.core.snapshot();
        self.core.serve(&snap, batch)
    }

    /// Exact `MRQ(q, radius)` over the current snapshot.
    pub fn range_query(&self, q: &O, radius: f64) -> Vec<ObjId> {
        let snap = self.core.snapshot();
        self.core.range_query(&snap, q, radius)
    }

    /// Exact `MkNNQ(q, k)` over the current snapshot.
    pub fn knn_query(&self, q: &O, k: usize) -> Vec<Neighbor> {
        let snap = self.core.snapshot();
        self.core.knn_query(&snap, q, k)
    }

    /// Pops one pending batch from `queue` and serves it against the
    /// current snapshot (see [`ShardedEngine::pump`]).
    pub fn pump(&self, queue: &SubmitQueue<O>) -> PumpOutcome<O> {
        let snap = self.core.snapshot();
        self.core.pump(&snap, queue)
    }
}

/// A dataset sharded across `P` independent [`MetricIndex`]es, serving
/// batches of mixed range / kNN queries concurrently.
///
/// Under round-robin partitioning every query probes every shard (shards
/// partition the data, so all hold candidates). Under pivot-space
/// partitioning a [`RoutingTable`] summarizes each shard as a bounding box
/// in pivot space and queries skip every shard those summaries prove
/// answer-free (Lemma 1). Either way, per-shard partial answers merge into
/// one global answer — a sorted union for range queries, a bounded-heap
/// top-k for kNN — and because pruning is conservative and each shard's own
/// query processing is exact, the merged answers are identical to a single
/// unsharded index over the same data (ties at the k-th distance excepted,
/// as the trait allows either).
///
/// # Concurrency model (MVCC snapshots)
///
/// Serving state lives in immutable [`EngineSnapshot`]s published behind an
/// atomic slot. [`apply`](Self::apply) is a transaction: it forks the
/// shards the batch touches, stages every mutation off to the side, and
/// commits with a single snapshot swap — readers obtained via
/// [`reader`](Self::reader) keep serving the previous snapshot mid-apply
/// and pick up the new one at their next batch. Retired snapshots are
/// reclaimed once the last in-flight batch drops them. For shard kinds
/// that cannot fork, `reader()` returns `None` and `apply` falls back to
/// exclusive in-place mutation (safe: `&mut self` proves no concurrent
/// reader exists).
pub struct ShardedEngine<O> {
    /// Reader-shared serving state (snapshot slot, policies, metrics).
    core: Arc<EngineCore<O>>,
    /// Writer mirror of the published shard set — the same `Arc`s as the
    /// current snapshot's. `apply` forks the entries it touches.
    shards: Vec<Arc<Shard<O>>>,
    /// Writer mirror of the published routing table.
    router: Option<Arc<RoutingTable<O>>>,
    /// Whether every shard can fork: copy-on-write apply, reader handles
    /// available. Non-forkable kinds take the exclusive in-place path.
    cow: bool,
    /// Publication epoch of the current snapshot.
    epoch: u64,
    /// Retired snapshots not yet reclaimed (still pinned by in-flight
    /// reader batches). Swept at each publish: a snapshot whose only owner
    /// is this list is dropped.
    retired: Vec<Arc<EngineSnapshot<O>>>,
    /// The shared pivot-distance matrix the router and the shards adopted;
    /// present for matrix builds. The mutation path pushes exactly one row
    /// per insert, so **global id == shared row id** for the engine's
    /// lifetime — which is what lets removes recompute routing boxes and
    /// re-clustering move objects without recomputing any distance.
    matrix: Option<SharedPivotMatrix>,
    /// Maps objects into pivot space for the mutation path of
    /// matrix-bearing round-robin engines (routed engines map through the
    /// router instead).
    insert_mapper: Option<Mapper<O>>,
    /// When [`apply`](Self::apply) re-clusters the worst shard pair.
    refresh: RefreshPolicy,
    /// When [`apply`](Self::apply) compacts the shared matrix.
    compaction: CompactionPolicy,
    /// Seed for the survivor re-partition at compaction.
    partition_seed: u64,
    /// Global id → (shard, local id) for live objects.
    locator: HashMap<ObjId, (u32, ObjId)>,
    next_id: ObjId,
    /// Construction cost (per-shard builds; the facade adds the shared
    /// matrix cost through [`set_build_stats`](Self::set_build_stats)).
    build_stats: BuildStats,
    /// Lifetime mutation totals (copied into every [`ServeReport`]).
    update_stats: UpdateStats,
}

/// A shared per-item object validator (see
/// [`set_query_validator`](ShardedEngine::set_query_validator)).
type Validator<O> = Arc<dyn Fn(&O) -> bool + Send + Sync>;

/// One in-flight apply transaction: the staged next version of the
/// engine's serving state, built off to the side and either committed with
/// a single snapshot publish or dropped whole (all-or-nothing).
struct ApplyTxn<O> {
    /// Staged shard set. On the copy-on-write path entries start as the
    /// published `Arc`s and are forked on first touch; on the exclusive
    /// path they are the engine's own (uniquely owned) shards, moved in.
    shards: Vec<Arc<Shard<O>>>,
    /// Which entries this transaction has made uniquely its own.
    touched: Vec<bool>,
    cow: bool,
    /// Staged routing table (a copy-on-write clone: shared mapper, own
    /// boxes).
    router: Option<RoutingTable<O>>,
    locator: HashMap<ObjId, (u32, ObjId)>,
    next_id: ObjId,
    /// Pivot rows staged (not yet published) by this batch, keyed by
    /// global id — lets rebox and recluster read this batch's own inserts
    /// before the matrix publishes at commit.
    staged: HashMap<ObjId, Vec<f64>>,
    /// Staged lifetime totals (committed into the engine's stats).
    stats: UpdateStats,
    report: ApplyReport,
    /// Shards whose routing box must be recomputed at the end.
    dirty: Vec<bool>,
}

impl<O> ApplyTxn<O> {
    /// Mutable access to staged shard `s`, forking it first if the
    /// published version is still shared (copy-on-write).
    fn shard_mut(&mut self, s: usize) -> &mut Shard<O> {
        if self.cow && !self.touched[s] {
            let fork = self.shards[s]
                .fork()
                .expect("copy-on-write engines hold forkable shards");
            self.shards[s] = Arc::new(fork);
        }
        self.touched[s] = true;
        Arc::get_mut(&mut self.shards[s]).expect("transaction shard is uniquely owned")
    }
}

impl<O> ShardedEngine<O> {
    /// Builds an engine by partitioning `objects` round-robin into
    /// `cfg.shards` parts and handing each part to `factory`, which returns
    /// the shard's index (the `pmi` facade passes `builder::build_index`
    /// here). Shard builds run in parallel on scoped threads when more than
    /// one worker thread is configured — the paper's §6.2 observation that
    /// per-object pivot distances parallelize trivially.
    ///
    /// The factory receives `(shard_number, partition)` and must insert the
    /// partition in order, so that local id `i` is the `i`-th object of the
    /// partition (every index in this workspace does).
    pub fn build_with<E, F>(
        objects: Vec<O>,
        cfg: &EngineConfig,
        factory: F,
    ) -> Result<Self, EngineError<E>>
    where
        O: Send,
        E: Send,
        F: Fn(usize, Vec<O>) -> Result<Box<dyn MetricIndex<O>>, E> + Sync,
    {
        if cfg.shards == 0 {
            return Err(EngineError::ZeroShards);
        }
        let n = objects.len();
        let parts = partition_round_robin(objects, cfg.resolved_shards(n));
        let parts = parts.into_iter().map(|p| (p, None)).collect();
        Self::build_parts(parts, None, None, None, cfg, |s, objs, _| factory(s, objs))
    }

    /// [`build_with`](Self::build_with) over a [`SharedPivotMatrix`]: each
    /// shard factory receives a [`MatrixSlice`] — its partition's row-index
    /// view of the one shared matrix (row `i` of the matrix belongs to
    /// `objects[i]`) — so shard builds adopt pivot distances instead of
    /// recomputing them, without copying a single row. `mapper` maps new
    /// objects into pivot space for the mutation path, which pushes one
    /// shared row per insert that the destination shard adopts by id.
    pub fn build_with_matrix<E, F>(
        objects: Vec<O>,
        matrix: SharedPivotMatrix,
        mapper: Mapper<O>,
        cfg: &EngineConfig,
        factory: F,
    ) -> Result<Self, EngineError<E>>
    where
        O: Send,
        E: Send,
        F: Fn(usize, Vec<O>, MatrixSlice) -> Result<Box<dyn MetricIndex<O>>, E> + Sync,
    {
        if cfg.shards == 0 {
            return Err(EngineError::ZeroShards);
        }
        let n = objects.len();
        assert_eq!(matrix.rows(), n, "one matrix row per object");
        let parts = partition_round_robin(objects, cfg.resolved_shards(n));
        let parts = parts
            .into_iter()
            .map(|(objs, gids)| {
                let slice = MatrixSlice::new(matrix.clone(), gids.clone());
                ((objs, gids), Some(slice))
            })
            .collect();
        Self::build_parts(
            parts,
            None,
            Some(matrix),
            Some(mapper),
            cfg,
            |s, objs, m| {
                factory(
                    s,
                    objs,
                    m.expect("every partition carries its matrix slice"),
                )
            },
        )
    }

    /// Builds an engine from an explicit per-object shard assignment with
    /// **no** routing table: every query probes every shard, like
    /// [`build_with`](Self::build_with), but the caller controls membership
    /// — e.g. reproducing another engine's final shard layout for parity
    /// testing or migration. `assignment[i]` must be `< shards`.
    pub fn build_assigned_with<E, F>(
        objects: Vec<O>,
        assignment: &[usize],
        shards: usize,
        cfg: &EngineConfig,
        factory: F,
    ) -> Result<Self, EngineError<E>>
    where
        O: Send,
        E: Send,
        F: Fn(usize, Vec<O>) -> Result<Box<dyn MetricIndex<O>>, E> + Sync,
    {
        if cfg.shards == 0 || shards == 0 {
            return Err(EngineError::ZeroShards);
        }
        let parts = partition_by_assignment(objects, assignment, shards);
        let parts = parts.into_iter().map(|p| (p, None)).collect();
        Self::build_parts(parts, None, None, None, cfg, |s, objs, _| factory(s, objs))
    }

    /// Builds a *routed* engine from an explicit per-object shard
    /// assignment (the pivot-space clustering of `pmi-router`) plus the
    /// matching [`RoutingTable`]. The shard count is the router's
    /// `num_shards()`; `assignment[i]` must be a valid shard for object
    /// `i`, and every object's mapped point must lie inside its shard's
    /// box (`RoutingTable::from_assignment` guarantees both).
    pub fn build_partitioned_with<E, F>(
        objects: Vec<O>,
        assignment: &[usize],
        router: RoutingTable<O>,
        cfg: &EngineConfig,
        factory: F,
    ) -> Result<Self, EngineError<E>>
    where
        O: Send,
        E: Send,
        F: Fn(usize, Vec<O>) -> Result<Box<dyn MetricIndex<O>>, E> + Sync,
    {
        if cfg.shards == 0 || router.num_shards() == 0 {
            return Err(EngineError::ZeroShards);
        }
        let parts = partition_by_assignment(objects, assignment, router.num_shards());
        let parts = parts.into_iter().map(|p| (p, None)).collect();
        Self::build_parts(parts, Some(router), None, None, cfg, |s, objs, _| {
            factory(s, objs)
        })
    }

    /// [`build_partitioned_with`](Self::build_partitioned_with) over a
    /// [`SharedPivotMatrix`]: the matrix that produced the clustering is
    /// viewed per shard (a [`MatrixSlice`] row-index indirection, no
    /// copying) and handed to each factory, closing the loop of "compute
    /// the pivot-space mapping once, route with it, *and* seed every
    /// shard's pivot table from it". The engine keeps the matrix: the
    /// mutation path pushes one row per routed insert and removes shrink
    /// routing boxes from the surviving rows.
    pub fn build_partitioned_with_matrix<E, F>(
        objects: Vec<O>,
        assignment: &[usize],
        router: RoutingTable<O>,
        matrix: SharedPivotMatrix,
        cfg: &EngineConfig,
        factory: F,
    ) -> Result<Self, EngineError<E>>
    where
        O: Send,
        E: Send,
        F: Fn(usize, Vec<O>, MatrixSlice) -> Result<Box<dyn MetricIndex<O>>, E> + Sync,
    {
        if cfg.shards == 0 || router.num_shards() == 0 {
            return Err(EngineError::ZeroShards);
        }
        assert_eq!(matrix.rows(), objects.len(), "one matrix row per object");
        let parts = partition_by_assignment(objects, assignment, router.num_shards());
        let parts = parts
            .into_iter()
            .map(|(objs, gids)| {
                let slice = MatrixSlice::new(matrix.clone(), gids.clone());
                ((objs, gids), Some(slice))
            })
            .collect();
        Self::build_parts(
            parts,
            Some(router),
            Some(matrix),
            None,
            cfg,
            |s, objs, m| {
                factory(
                    s,
                    objs,
                    m.expect("every partition carries its matrix slice"),
                )
            },
        )
    }

    /// Shared build tail: indexes every partition (in parallel when
    /// configured), wires the locator, attaches the optional router, and
    /// records [`BuildStats`] (wall-clock plus the exact per-shard
    /// construction compdists).
    fn build_parts<E, F>(
        parts: Vec<MatrixPart<O>>,
        router: Option<RoutingTable<O>>,
        matrix: Option<SharedPivotMatrix>,
        insert_mapper: Option<Mapper<O>>,
        cfg: &EngineConfig,
        factory: F,
    ) -> Result<Self, EngineError<E>>
    where
        O: Send,
        E: Send,
        F: Fn(usize, Vec<O>, Option<MatrixSlice>) -> Result<Box<dyn MetricIndex<O>>, E> + Sync,
    {
        let t0 = Instant::now();
        let num_shards = parts.len();
        let n: usize = parts.iter().map(|((objs, _), _)| objs.len()).sum();
        let threads = resolve_threads(cfg.threads);
        let obs = Registry::new();
        // Per-shard build wall: one clock pair per shard build — vanishes
        // entirely when the obs feature is compiled out.
        let timing = obs.is_enabled();
        let mut shard_wall = Hist::new();
        let mut shards_nanos: u64 = 0;
        let built: Vec<Result<Shard<O>, E>> = if threads <= 1 || num_shards == 1 {
            parts
                .into_iter()
                .enumerate()
                .map(|(s, ((objs, gids), m))| {
                    let b0 = timing.then(Instant::now);
                    let r = factory(s, objs, m).map(|idx| Shard::new(idx, gids));
                    if let Some(t) = b0 {
                        let nanos = t.elapsed().as_nanos() as u64;
                        shard_wall.record(nanos);
                        shards_nanos += nanos;
                    }
                    r
                })
                .collect()
        } else {
            // At most `threads` concurrent builders: distribute the shard
            // slots round-robin across worker buckets.
            let factory = &factory;
            let workers = threads.min(num_shards);
            let mut buckets: Vec<Vec<(usize, MatrixPart<O>)>> =
                (0..workers).map(|_| Vec::new()).collect();
            for (s, part) in parts.into_iter().enumerate() {
                buckets[s % workers].push((s, part));
            }
            let mut slots: Vec<Option<Result<Shard<O>, E>>> =
                (0..num_shards).map(|_| None).collect();
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = buckets
                    .into_iter()
                    .map(|bucket| {
                        scope.spawn(move |_| {
                            bucket
                                .into_iter()
                                .map(|(s, ((objs, gids), m))| {
                                    let b0 = timing.then(Instant::now);
                                    let r = factory(s, objs, m).map(|idx| Shard::new(idx, gids));
                                    let nanos =
                                        b0.map(|t| t.elapsed().as_nanos() as u64).unwrap_or(0);
                                    (s, r, nanos)
                                })
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                for h in handles {
                    for (s, r, nanos) in h.join().expect("shard build thread panicked") {
                        if timing {
                            shard_wall.record(nanos);
                            shards_nanos += nanos;
                        }
                        slots[s] = Some(r);
                    }
                }
            })
            .expect("shard build scope panicked");
            slots
                .into_iter()
                .map(|r| r.expect("every shard slot built exactly once"))
                .collect()
        };

        let mut shards = Vec::with_capacity(num_shards);
        for b in built {
            shards.push(b.map_err(EngineError::Build)?);
        }

        let mut locator = HashMap::with_capacity(n);
        for (s, shard) in shards.iter().enumerate() {
            for local in 0..shard.len() {
                locator.insert(shard.global_id(local as ObjId), (s as u32, local as ObjId));
            }
        }

        let build_stats = BuildStats {
            build_compdists: shards.iter().map(|s| s.counters().compdists).sum(),
            build_wall_secs: t0.elapsed().as_secs_f64(),
        };
        if timing {
            obs.phase_add(
                "build",
                1,
                t0.elapsed().as_nanos() as u64,
                &[("objects", n as u64), ("shards", num_shards as u64)],
            );
            obs.phase_add(
                "build.shards",
                num_shards as u64,
                shards_nanos,
                &[("compdists", build_stats.build_compdists)],
            );
            obs.hist_merge("build.shard_wall", &shard_wall);
            obs.gauge_set("engine.shards", num_shards as u64);
            obs.gauge_set("engine.live_objects", n as u64);
        }

        let shards: Vec<Arc<Shard<O>>> = shards.into_iter().map(Arc::new).collect();
        let cow = shards.iter().all(|s| s.forkable());
        let router = router.map(Arc::new);
        let snap = Arc::new(EngineSnapshot {
            epoch: 0,
            shards: shards.clone(),
            router: router.clone(),
        });
        obs.gauge_set("engine.snapshot_epoch", 0);
        let core = Arc::new(EngineCore {
            threads,
            snap: Mutex::new(snap),
            probed: AtomicU64::new(0),
            pruned: AtomicU64::new(0),
            obs,
            trace: Mutex::new(cfg.trace),
            budget: Mutex::new(cfg.budget),
            sched: Mutex::new(cfg.sched),
            faults: cfg.faults,
            quarantine: QuarantineState::new(num_shards),
            validator: Mutex::new(None),
            build: Mutex::new(build_stats),
            updates: Mutex::new(UpdateStats::default()),
            readers: AtomicUsize::new(0),
        });
        Ok(ShardedEngine {
            core,
            shards,
            router,
            cow,
            epoch: 0,
            retired: Vec::new(),
            matrix,
            insert_mapper,
            refresh: cfg.refresh,
            compaction: cfg.compaction,
            partition_seed: cfg.partition_seed,
            locator,
            next_id: n as ObjId,
            build_stats,
            update_stats: UpdateStats::default(),
        })
    }

    /// Total live objects across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// Whether the engine holds no objects.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of shards `P`.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Resolved worker thread count.
    pub fn threads(&self) -> usize {
        self.core.threads
    }

    /// The current shard handles, for inspection. These are the same
    /// `Arc`s the published snapshot holds; [`apply`](Self::apply)
    /// replaces the touched entries at its next commit.
    pub fn shards(&self) -> &[Arc<Shard<O>>] {
        &self.shards
    }

    /// Construction cost of this engine. The engine itself records the
    /// per-shard build compdists and wall-clock; constructors that also pay
    /// for a shared pivot matrix (the `pmi` facade) add that through
    /// [`set_build_stats`](Self::set_build_stats).
    pub fn build_stats(&self) -> BuildStats {
        self.build_stats
    }

    /// Replaces the recorded build cost, for callers that layer extra
    /// construction work (shared matrix, pivot selection) on top of the
    /// engine build proper. The new stats appear in every subsequent
    /// [`ServeReport`], including batches served by concurrent readers.
    pub fn set_build_stats(&mut self, stats: BuildStats) {
        self.build_stats = stats;
        *self.core.build.lock().unwrap_or_else(|e| e.into_inner()) = stats;
    }

    /// Which partitioning regime this engine runs: `PivotSpace` when a
    /// routing table is attached, `RoundRobin` otherwise.
    pub fn policy(&self) -> PartitionPolicy {
        if self.router.is_some() {
            PartitionPolicy::PivotSpace
        } else {
            PartitionPolicy::RoundRobin
        }
    }

    /// The routing table, when pivot-space partitioned.
    pub fn routing(&self) -> Option<&RoutingTable<O>> {
        self.router.as_deref()
    }

    /// Publication epoch of the current snapshot: 0 at build, +1 per
    /// committed [`apply`](Self::apply) / [`compact`](Self::compact).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether this engine supports concurrent snapshot readers — true
    /// when every shard kind can fork (copy-on-write apply). See
    /// [`reader`](Self::reader).
    pub fn supports_readers(&self) -> bool {
        self.cow
    }

    /// A cloneable, thread-safe serving handle over the engine's published
    /// snapshots, or `None` when a shard kind cannot fork (then `apply`
    /// mutates in place and concurrent serving would race it).
    ///
    /// Readers stay valid across any number of `apply` / `compact` calls;
    /// each batch they serve sees exactly one published snapshot.
    pub fn reader(&self) -> Option<EngineReader<O>> {
        if !self.cow {
            return None;
        }
        self.core.readers.fetch_add(1, Ordering::Relaxed);
        Some(EngineReader {
            core: Arc::clone(&self.core),
        })
    }

    /// Retired snapshots still pinned by in-flight reader batches
    /// (diagnostic; swept at each publish).
    pub fn retired_snapshots(&self) -> usize {
        self.retired.len()
    }

    /// Exact `(shards_probed, shards_pruned)` totals since construction or
    /// the last [`reset_counters`](Self::reset_counters): every query adds
    /// its probed shard count to the first and its routed-away shard count
    /// to the second (round-robin engines always add `(P, 0)`).
    pub fn probe_counts(&self) -> (u64, u64) {
        (
            self.core.probed.load(Ordering::Relaxed),
            self.core.pruned.load(Ordering::Relaxed),
        )
    }

    /// Aggregate cost counters: the exact sum of every shard's atomic
    /// counters.
    pub fn counters(&self) -> Counters {
        self.shards
            .iter()
            .fold(Counters::default(), |acc, s| acc + s.counters())
    }

    /// Per-shard counter snapshots, in shard order.
    pub fn shard_counters(&self) -> Vec<Counters> {
        self.shards.iter().map(|s| s.counters()).collect()
    }

    /// The engine's metrics registry — phase walls, counters, histograms
    /// for build/serve/apply/compact. Hand it to [`pmi_obs::Span`] or
    /// record custom metrics against the same snapshot.
    pub fn obs(&self) -> &Registry {
        &self.core.obs
    }

    /// Snapshot of everything the registry has recorded so far. With the
    /// `obs` feature compiled out this is the empty snapshot (`enabled:
    /// false`) — callers need no cfg of their own.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.core.obs.snapshot()
    }

    /// Flips the runtime observability switch. Off (or compiled out), the
    /// serve path performs no clock reads and records nothing; results
    /// and the exact cost counters are identical either way.
    pub fn set_obs_enabled(&self, on: bool) {
        self.core.obs.set_enabled(on);
    }

    /// The current per-query trace capture policy.
    pub fn trace_policy(&self) -> TracePolicy {
        // A panic while holding this lock (a panicking traced query) must
        // not wedge the engine: the data is a Copy policy, always valid.
        self.core.trace_policy()
    }

    /// Swaps the per-query trace capture policy at runtime (takes effect
    /// for the next [`serve`](Self::serve) batch — the policy is read once
    /// per batch, never on the query path). Pass
    /// [`TracePolicy::disabled`] to return the serve loop to its untraced
    /// form; results and exact counters are identical either way.
    pub fn set_trace_policy(&self, policy: TracePolicy) {
        *self.core.trace.lock().unwrap_or_else(|e| e.into_inner()) = policy;
    }

    /// The current serving budgets.
    pub fn serve_budget(&self) -> ServeBudget {
        self.core.serve_budget()
    }

    /// Swaps the serving budgets at runtime (takes effect for the next
    /// [`serve`](Self::serve) batch — budgets are read once per batch,
    /// never on the query path). Pass [`ServeBudget::unlimited`] to return
    /// the serve loop to its unbudgeted form.
    pub fn set_budget(&self, budget: ServeBudget) {
        *self.core.budget.lock().unwrap_or_else(|e| e.into_inner()) = budget;
    }

    /// The engine's shard quarantine policy.
    pub fn fault_policy(&self) -> FaultPolicy {
        self.core.faults
    }

    /// The configured batch scheduling policy (see [`SchedPolicy`]).
    pub fn sched_policy(&self) -> SchedPolicy {
        *self.core.sched.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Replaces the batch scheduling policy (takes effect for the next
    /// [`serve`](Self::serve) batch). Lets an A/B comparison reuse one
    /// built engine instead of rebuilding per policy.
    pub fn set_sched(&mut self, sched: SchedPolicy) {
        *self.core.sched.lock().unwrap_or_else(|e| e.into_inner()) = sched;
    }

    /// Installs a query/insert object validator: objects it rejects fail
    /// per-item ([`QueryError::InvalidObject`] on serve,
    /// [`OpErrorKind::InvalidObject`](crate::OpErrorKind) on apply)
    /// instead of reaching the shards. The facade's vector builder installs
    /// a finite-coordinates check here.
    pub fn set_query_validator(&mut self, validator: impl Fn(&O) -> bool + Send + Sync + 'static) {
        *self
            .core
            .validator
            .lock()
            .unwrap_or_else(|e| e.into_inner()) = Some(Arc::new(validator));
    }

    /// Per-shard panic/quarantine state, in shard order.
    pub fn fault_states(&self) -> Vec<ShardFaultState> {
        self.core.quarantine.snapshot()
    }

    /// Currently quarantined shards, in shard order.
    pub fn quarantined_shards(&self) -> Vec<usize> {
        self.core
            .quarantine
            .snapshot()
            .into_iter()
            .filter(|s| s.quarantined)
            .map(|s| s.shard)
            .collect()
    }

    /// Clears all quarantine flags and panic counts, returning the number
    /// of shards that were quarantined. Call after fixing (or rebuilding)
    /// whatever made a shard panic; planning immediately resumes probing
    /// every shard. Quarantine state lives beside the snapshot slot, not
    /// inside snapshots, so healing takes effect for the next served batch
    /// — on every reader — without waiting for a publish.
    pub fn heal(&self) -> usize {
        let cleared = self.core.quarantine.heal();
        self.core.obs.gauge_set("engine.quarantined_shards", 0);
        cleared
    }

    /// Resets every shard's counters and the engine's probe counters.
    pub fn reset_counters(&self) {
        for s in &self.shards {
            s.reset_counters();
        }
        self.core.probed.store(0, Ordering::Relaxed);
        self.core.pruned.store(0, Ordering::Relaxed);
    }

    /// Aggregate storage footprint.
    pub fn storage(&self) -> StorageFootprint {
        self.shards
            .iter()
            .fold(StorageFootprint::default(), |acc, s| acc + s.storage())
    }

    /// Configures the page cache on every shard (the paper's 128 KB MkNNQ
    /// cache, applied per shard).
    pub fn set_page_cache(&self, bytes: usize) {
        for s in &self.shards {
            s.set_page_cache(bytes);
        }
    }

    /// Inserts an object, returning its global id — sugar for a one-op
    /// [`apply`](Self::apply) batch. There is exactly one mutation route:
    /// the same transaction stages the pivot row, the destination shard
    /// adopts it by id, the routing box grows to cover it, and the new
    /// snapshot publishes before returning.
    ///
    /// # Panics
    ///
    /// If a validator installed via
    /// [`set_query_validator`](Self::set_query_validator) rejects the
    /// object (use `apply` to observe per-op errors instead).
    pub fn insert(&mut self, o: O) -> ObjId
    where
        O: Clone,
    {
        let mut batch = UpdateBatch::new();
        batch.insert(o);
        let report = self.apply(&batch);
        match report.inserted_ids.first() {
            Some(&gid) => gid,
            None => panic!("insert rejected: {:?}", report.op_errors),
        }
    }

    /// Removes an object by global id; returns whether it was present.
    /// Sugar for a one-op [`apply`](Self::apply) batch, so it shares the
    /// full transactional path — on routed matrix engines the shard's box
    /// shrinks back to the surviving members, preserving pruning power.
    pub fn remove(&mut self, id: ObjId) -> bool
    where
        O: Clone,
    {
        let mut batch = UpdateBatch::new();
        batch.remove(id);
        self.apply(&batch).removes == 1
    }

    /// Lifetime totals of the mutation path.
    pub fn update_stats(&self) -> UpdateStats {
        self.update_stats
    }

    /// Shard and shard-local slot of a live object.
    pub fn locate(&self, id: ObjId) -> Option<(usize, ObjId)> {
        self.locator.get(&id).map(|&(s, local)| (s as usize, local))
    }

    /// Applies an ordered batch of inserts and removes through the same
    /// layered path queries use, returning exact accounting.
    ///
    /// * **Inserts** are routed via the routing table (nearest box lower
    ///   bound, smallest shard among ties; round-robin engines pick the
    ///   smallest shard). The object's pivot row is computed **once**,
    ///   pushed into the shared [`SharedPivotMatrix`], and adopted by the
    ///   destination shard by row id — matrix-adopting kinds (LAESA, CPT,
    ///   FQA) pay zero shard-side remap distances.
    /// * **Removes** tombstone the object; after the last op every
    ///   affected shard's routing box is recomputed from its surviving
    ///   members' matrix rows in one pass ([`RoutingTable::shrink`]), so
    ///   pruning does not decay under churn.
    /// * If the batch leaves live counts imbalanced past the
    ///   [`RefreshPolicy`], the worst shard pair is incrementally
    ///   re-clustered: a deterministic 2-means re-split over the members'
    ///   mapped rows, moving only the objects that change side (their
    ///   matrix rows and global ids are preserved; the locator and the
    ///   shards' adopted slices are fixed up).
    ///
    /// Routed answers after any sequence of `apply` calls are identical to
    /// a from-scratch rebuild over the surviving objects — box maintenance
    /// is exact and shard membership never affects correctness.
    ///
    /// Box shrinking and re-clustering need the engine's shared matrix
    /// (any matrix build path — the `pmi` facade always provides it). On
    /// an engine built without one (e.g. [`build_partitioned_with`]
    /// (Self::build_partitioned_with)), `apply` still applies every op
    /// correctly but keeps conservative boxes: `reboxed_shards` and
    /// `reclusters` report 0.
    ///
    /// # Transaction semantics
    ///
    /// The whole batch stages off to the side — forked copies of the
    /// touched shards, a copy-on-write routing table, staged matrix rows —
    /// and commits by publishing one new [`EngineSnapshot`]. Concurrent
    /// [`EngineReader`]s never observe a half-applied batch: a batch
    /// serves either entirely before or entirely after the swap.
    ///
    /// On forkable (copy-on-write) engines `apply` is additionally
    /// **all-or-nothing**: a panic anywhere in staging (a poisoned op, an
    /// injected fault at `engine.apply.stage` / `engine.recluster` /
    /// `engine.apply.publish`) is caught, the staged state is discarded,
    /// and the report comes back with [`aborted`](ApplyReport::aborted)
    /// set — the engine keeps serving the last published snapshot and the
    /// same batch can be retried. On non-forkable kinds the staging panic
    /// propagates (pre-MVCC behavior).
    pub fn apply(&mut self, batch: &UpdateBatch<O>) -> ApplyReport
    where
        O: Clone,
    {
        let t0 = Instant::now();
        let span = Span::enter("apply");
        let mut clock = ObsClock::start(self.core.obs.is_enabled());
        let shard_cd0 = self.counters().compdists;
        let map_cd0 = self.update_stats.map_compdists;
        let validator = self.core.validator();
        let mut txn = self.begin_txn();
        let staged = if txn.cow {
            catch_unwind(AssertUnwindSafe(|| {
                self.stage_batch(batch, validator.as_ref(), &mut txn, &mut clock)
            }))
            .is_ok()
        } else {
            self.stage_batch(batch, validator.as_ref(), &mut txn, &mut clock);
            true
        };
        if !staged {
            // Abort: drop the forked shards and staged rows whole. Nothing
            // was published, so serving (including concurrent readers)
            // continues on the last snapshot, and retrying the batch
            // re-stages it from scratch with the same ids.
            drop(txn);
            if let Some(mx) = &self.matrix {
                mx.discard_staged();
            }
            self.core.obs.counter_add("apply.aborts", 1);
            let mut report = ApplyReport {
                aborted: true,
                ..ApplyReport::default()
            };
            report.wall_secs = t0.elapsed().as_secs_f64();
            span.finish_with(&self.core.obs, &[("aborted", 1)]);
            return report;
        }
        let mut report = std::mem::take(&mut txn.report);
        self.commit_txn(txn);
        let compacted = self.maybe_compact();
        report.compactions = usize::from(compacted > 0);
        report.compacted_rows = compacted as u64;
        self.core.obs.phase_add(
            "apply.compact",
            report.compactions as u64,
            clock.lap(),
            &[("compacted_rows", report.compacted_rows)],
        );
        report.map_compdists = self.update_stats.map_compdists - map_cd0;
        report.shard_compdists = self.counters().compdists - shard_cd0;
        report.wall_secs = t0.elapsed().as_secs_f64();
        span.finish_with(
            &self.core.obs,
            &[
                ("map_compdists", report.map_compdists),
                ("shard_compdists", report.shard_compdists),
            ],
        );
        self.core
            .obs
            .gauge_set("engine.live_objects", self.len() as u64);
        report
    }

    /// Opens an apply transaction over the current state.
    ///
    /// Copy-on-write engines stage against `Arc` clones of the published
    /// shards (forked on first touch) plus copies of the small bookkeeping
    /// (routing boxes, locator). Non-forkable engines take the exclusive
    /// path: the published snapshot is detached (readers cannot exist —
    /// [`reader`](Self::reader) refuses them) and the live state moves
    /// into the transaction to be mutated in place.
    fn begin_txn(&mut self) -> ApplyTxn<O> {
        let n = self.shards.len();
        if self.cow {
            ApplyTxn {
                shards: self.shards.clone(),
                touched: vec![false; n],
                cow: true,
                router: self.router.as_deref().cloned(),
                locator: self.locator.clone(),
                next_id: self.next_id,
                staged: HashMap::new(),
                stats: self.update_stats,
                report: ApplyReport::default(),
                dirty: vec![false; n],
            }
        } else {
            // Detach the published snapshot so the mirror Arcs become
            // uniquely owned, then move them into the transaction.
            self.retired.clear();
            *self.core.snap.lock().unwrap_or_else(|e| e.into_inner()) = Arc::new(EngineSnapshot {
                epoch: self.epoch,
                shards: Vec::new(),
                router: None,
            });
            debug_assert_eq!(
                self.core.readers.load(Ordering::Relaxed),
                0,
                "non-forkable engines hand out no readers"
            );
            ApplyTxn {
                shards: std::mem::take(&mut self.shards),
                touched: vec![true; n],
                cow: false,
                router: self
                    .router
                    .take()
                    .map(|rt| Arc::try_unwrap(rt).unwrap_or_else(|rt| (*rt).clone())),
                locator: std::mem::take(&mut self.locator),
                next_id: self.next_id,
                staged: HashMap::new(),
                stats: self.update_stats,
                report: ApplyReport::default(),
                dirty: vec![false; n],
            }
        }
    }

    /// Stages a whole batch into `txn`: ops, box shrinking, re-clustering.
    /// Touches no published state (the shared matrix only accumulates
    /// *staged* rows, invisible to readers) — everything it does can be
    /// discarded by dropping the transaction.
    fn stage_batch(
        &self,
        batch: &UpdateBatch<O>,
        validator: Option<&Validator<O>>,
        txn: &mut ApplyTxn<O>,
        clock: &mut ObsClock,
    ) where
        O: Clone,
    {
        let mut mapped = Vec::new();
        // Global ids this batch successfully removed, to tell a duplicate
        // remove apart from a remove of an id that was never live.
        let mut removed_here: HashSet<ObjId> = HashSet::new();
        for (i, op) in batch.ops().iter().enumerate() {
            fault::at("engine.apply.stage", i as u64);
            match op {
                UpdateOp::Insert(o) => {
                    if let Some(v) = validator {
                        if !v(o) {
                            txn.report.op_errors.push(OpError {
                                op: i,
                                kind: OpErrorKind::InvalidObject,
                            });
                            continue;
                        }
                    }
                    let gid = self.stage_insert(txn, o.clone(), &mut mapped);
                    txn.report.inserted_ids.push(gid);
                    txn.report.inserts += 1;
                }
                UpdateOp::Remove(id) => match self.stage_remove(txn, *id) {
                    Some(s) => {
                        txn.dirty[s] = true;
                        txn.report.removes += 1;
                        removed_here.insert(*id);
                    }
                    None => {
                        txn.report.missing_removes += 1;
                        let kind = if removed_here.contains(id) {
                            OpErrorKind::DuplicateRemove(*id)
                        } else {
                            OpErrorKind::UnknownGid(*id)
                        };
                        txn.report.op_errors.push(OpError { op: i, kind });
                    }
                },
            }
        }
        self.core.obs.phase_add(
            "apply.ops",
            batch.ops().len() as u64,
            clock.lap(),
            &[
                ("inserts", txn.report.inserts as u64),
                ("removes", txn.report.removes as u64),
            ],
        );
        let dirty = std::mem::take(&mut txn.dirty);
        txn.report.reboxed_shards = self.stage_rebox(txn, &dirty);
        self.core.obs.phase_add(
            "apply.rebox",
            1,
            clock.lap(),
            &[("reboxed_shards", txn.report.reboxed_shards as u64)],
        );
        let (reclusters, moved, recluster_reboxed) = self.stage_recluster(txn);
        txn.report.reclusters = reclusters;
        txn.report.moved_objects = moved;
        txn.report.reboxed_shards += recluster_reboxed;
        txn.stats.reclusters += reclusters as u64;
        txn.stats.moved_objects += moved;
        self.core.obs.phase_add(
            "apply.recluster",
            reclusters as u64,
            clock.lap(),
            &[("moved_objects", moved)],
        );
        // The last abortable point: past here the transaction commits.
        fault::at("engine.apply.publish", 0);
    }

    /// Publishes a committed transaction: matrix rows first (staged →
    /// published, adopting shards re-pinned), then the new snapshot in a
    /// single swap.
    fn commit_txn(&mut self, mut txn: ApplyTxn<O>) {
        if let Some(mx) = &self.matrix {
            if mx.has_staged() {
                // Sole-owned shards (this transaction's forks, or every
                // shard on the exclusive path) release their cached matrix
                // snapshot so the publication appends in place, then
                // re-pin the fresh one. Shards still shared with the
                // published snapshot hold only already-published rows, so
                // their older pin stays valid — they are left alone (and
                // their pin makes the publication copy-on-write).
                for s in txn.shards.iter_mut() {
                    if let Some(sh) = Arc::get_mut(s) {
                        sh.release_rows();
                    }
                }
                mx.publish();
                for s in txn.shards.iter_mut() {
                    if let Some(sh) = Arc::get_mut(s) {
                        sh.refresh_rows();
                    }
                }
            }
        }
        self.shards = txn.shards;
        self.router = txn.router.map(Arc::new);
        self.locator = txn.locator;
        self.next_id = txn.next_id;
        self.update_stats = txn.stats;
        *self.core.updates.lock().unwrap_or_else(|e| e.into_inner()) = self.update_stats;
        self.publish_snapshot();
    }

    /// Swaps in a new snapshot of the current mirror state (epoch + 1) and
    /// sweeps retired snapshots no in-flight batch pins anymore.
    fn publish_snapshot(&mut self) {
        self.epoch += 1;
        let next = Arc::new(EngineSnapshot {
            epoch: self.epoch,
            shards: self.shards.clone(),
            router: self.router.clone(),
        });
        let old = std::mem::replace(
            &mut *self.core.snap.lock().unwrap_or_else(|e| e.into_inner()),
            next,
        );
        self.retired.push(old);
        // Epoch-based reclamation, degenerate form: a batch pins its
        // snapshot via the Arc it loaded, so strong_count == 1 proves no
        // reader can still reach it.
        self.retired.retain(|s| Arc::strong_count(s) > 1);
        self.core.obs.gauge_set("engine.snapshot_epoch", self.epoch);
        self.core
            .obs
            .gauge_set("engine.retired_snapshots", self.retired.len() as u64);
    }

    /// The one insert path: map once, stage one shared row, adopt by id.
    fn stage_insert(&self, txn: &mut ApplyTxn<O>, o: O, mapped: &mut Vec<f64>) -> ObjId {
        mapped.clear();
        match (&txn.router, &self.insert_mapper) {
            (Some(rt), _) => rt.map_into(&o, mapped),
            (None, Some(m)) => m(&o, mapped),
            (None, None) => debug_assert!(
                self.matrix.is_none(),
                "a matrix-bearing engine always has a mapper"
            ),
        }
        txn.stats.map_compdists += mapped.len() as u64;
        let si = match &txn.router {
            Some(rt) => {
                // Nearest box lower bound; ties go to the smallest shard,
                // then the lowest shard id.
                let mut best = (f64::INFINITY, usize::MAX, 0usize);
                for (s, b) in rt.boxes().iter().enumerate() {
                    let cand = (b.lower_bound(mapped), txn.shards[s].len());
                    if cand.0 < best.0 || (cand.0 == best.0 && cand.1 < best.1) {
                        best = (cand.0, cand.1, s);
                    }
                }
                best.2
            }
            None => {
                txn.shards
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, s)| s.len())
                    .expect("engine always has at least one shard")
                    .0
            }
        };
        let gid = txn.next_id;
        txn.next_id += 1;
        let local = match &self.matrix {
            Some(mx) => {
                let row = mx.stage_row(mapped);
                debug_assert_eq!(row as ObjId, gid, "global id tracks shared row id");
                txn.staged.insert(gid, mapped.clone());
                txn.shard_mut(si)
                    .insert_adopted(o, gid, row as ObjId, mapped)
            }
            None => txn.shard_mut(si).insert(o, gid),
        };
        if let Some(rt) = txn.router.as_mut() {
            rt.extend(si, mapped);
        }
        txn.locator.insert(gid, (si as u32, local));
        txn.stats.inserts += 1;
        gid
    }

    /// The one remove path: tombstone and report the affected shard.
    fn stage_remove(&self, txn: &mut ApplyTxn<O>, id: ObjId) -> Option<usize> {
        let (s, local) = txn.locator.remove(&id)?;
        if txn.shard_mut(s as usize).remove_local(local) {
            txn.stats.removes += 1;
            Some(s as usize)
        } else {
            None
        }
    }

    /// Recomputes the staged routing boxes of the flagged shards from
    /// their live members' matrix rows — published rows from the matrix
    /// snapshot, rows this batch inserted from the transaction's staging
    /// map. Work is bounded by the dirty shards' own slot tables. Returns
    /// how many boxes were recomputed (0 when the engine has no router or
    /// no matrix).
    fn stage_rebox(&self, txn: &mut ApplyTxn<O>, dirty: &[bool]) -> usize {
        if !dirty.iter().any(|&d| d) {
            return 0;
        }
        if txn.router.is_none() {
            return 0;
        }
        let Some(mx) = self.matrix.as_ref() else {
            return 0;
        };
        let m = mx.snapshot();
        let mut reboxed = 0;
        for (s, _) in dirty.iter().enumerate().filter(|&(_, &d)| d) {
            let mut b = Mbb::empty(m.width());
            for (_, gid) in live_members(&txn.shards[s], s, &txn.locator) {
                match txn.staged.get(&gid) {
                    Some(row) => b.extend(row),
                    None => b.extend(m.row(gid as usize)),
                }
            }
            let rt = txn.router.as_mut().expect("checked above");
            rt.shrink(s, b);
            reboxed += 1;
        }
        reboxed
    }

    /// Incremental re-clustering: when the live counts of the fullest and
    /// emptiest shards trip the [`RefreshPolicy`], their members are
    /// re-split by a deterministic balanced 2-means over mapped rows and
    /// only the objects that changed side move (global ids and matrix rows
    /// stay; locator and boxes are fixed up). Returns
    /// `(passes, moved, boxes recomputed)`.
    fn stage_recluster(&self, txn: &mut ApplyTxn<O>) -> (usize, u64, usize) {
        if txn.router.is_none() || txn.shards.len() < 2 {
            return (0, 0, 0);
        }
        let Some(mx) = self.matrix.clone() else {
            return (0, 0, 0);
        };
        let (mut hi, mut lo) = (0usize, 0usize);
        for (s, shard) in txn.shards.iter().enumerate() {
            if shard.len() > txn.shards[hi].len() {
                hi = s;
            }
            if shard.len() < txn.shards[lo].len() {
                lo = s;
            }
        }
        let (max_len, min_len) = (txn.shards[hi].len(), txn.shards[lo].len());
        if hi == lo || !self.refresh.triggers(max_len, min_len) {
            return (0, 0, 0);
        }
        fault::at("engine.recluster", 0);

        // The pair's live members in ascending global id order (slot
        // tables carry no order guarantee; sorting keeps the re-split
        // deterministic). Only the two shards are walked.
        let mut members: Vec<(ObjId, usize, ObjId)> = Vec::new();
        for s in [hi, lo] {
            for (local, gid) in live_members(&txn.shards[s], s, &txn.locator) {
                members.push((gid, s, local));
            }
        }
        members.sort_unstable_by_key(|&(gid, _, _)| gid);
        // Pair rows, staged-aware: a member inserted by this very batch
        // has no published row yet, so its pivot vector comes from the
        // transaction's staging map.
        let m = mx.snapshot();
        let mut pair_rows =
            PivotMatrix::with_capacity(m.width(), members.len()).with_mode(m.mode());
        for &(gid, _, _) in &members {
            match txn.staged.get(&gid) {
                Some(row) => pair_rows.push_row(row),
                None => pair_rows.push_row(m.row(gid as usize)),
            };
        }
        let split = pmi_router::assign_pivot_space(&pair_rows, 2, RECLUSTER_SEED);

        // Orient the two clusters onto (hi, lo) so the fewest objects move.
        let stays = |flip: bool| {
            members
                .iter()
                .zip(&split)
                .filter(|((_, s, _), &c)| ((c == 0) != flip) == (*s == hi))
                .count()
        };
        let flip = stays(true) > stays(false);
        let mut moved = 0u64;
        for (i, (&(gid, s, local), &c)) in members.iter().zip(&split).enumerate() {
            let target = if (c == 0) != flip { hi } else { lo };
            if target == s {
                continue;
            }
            let Some(o) = txn.shards[s].get_local(local) else {
                continue;
            };
            txn.shard_mut(s).remove_local(local);
            // The moved object keeps its row id; its distances ride along
            // from the pair's assembled rows.
            let new_local = txn
                .shard_mut(target)
                .insert_adopted(o, gid, gid, pair_rows.row(i));
            txn.locator.insert(gid, (target as u32, new_local));
            moved += 1;
        }
        let mut reboxed = 0;
        if moved > 0 {
            let mut dirty = vec![false; txn.shards.len()];
            dirty[hi] = true;
            dirty[lo] = true;
            reboxed = self.stage_rebox(txn, &dirty);
        }
        (1, moved, reboxed)
    }

    /// Runs [`compact`](Self::compact) when the dead-row fraction trips
    /// the engine's [`CompactionPolicy`]. Returns the rows dropped.
    fn maybe_compact(&mut self) -> usize {
        let Some(mx) = &self.matrix else { return 0 };
        let total = mx.snapshot().rows();
        let dead = total - self.len();
        if !self.compaction.triggers(dead, total) {
            return 0;
        }
        self.compact()
    }

    /// Compacts the shared pivot matrix under sustained churn — a **major
    /// compaction**, restoring the engine to what a from-scratch rebuild
    /// over the survivors would produce:
    ///
    /// 1. Routed engines first **re-partition** the survivors with the
    ///    same balanced k-means a fresh build runs (churn drifts shard
    ///    membership away from the balanced clustering; probing an
    ///    oversized shard costs extra kernel work on every query).
    ///    Objects that change side move through the normal adopted path —
    ///    matrix-adopting kinds compute no distances for a move.
    /// 2. Every long-tombstoned matrix row is dropped and the survivors
    ///    are renumbered **densely in ascending global-id order**
    ///    (survivor of rank `i` becomes global id — and shared row — `i`,
    ///    exactly the ids a rebuild would assign). The dense matrix is
    ///    installed as the new published snapshot, and every shard is
    ///    remapped: matrix-adopting kinds rebuild their slot tables
    ///    tombstone-free ([`MetricIndex::compact_rows`]), other kinds
    ///    keep their local tombstones and only have their live slots'
    ///    global ids rewritten.
    /// 3. Routed engines recompute every routing box from the final
    ///    membership, so pruning is exactly a fresh build's.
    ///
    /// Serving afterwards is byte-identical — results, compdists,
    /// probe/prune counts — to a rebuild over the survivors with this
    /// membership. **Renumbers global ids**: ids returned by earlier
    /// inserts are invalidated, exactly as a rebuild would. Returns the
    /// number of dead rows dropped (0 on an engine without a shared
    /// matrix, or with nothing dead).
    pub fn compact(&mut self) -> usize {
        let Some(mx) = self.matrix.clone() else {
            return 0;
        };
        debug_assert!(
            !mx.has_staged(),
            "apply publishes at commit; nothing is staged between batches"
        );
        let snap = mx.snapshot();
        let dead = snap.rows() - self.len();
        if dead == 0 {
            return 0;
        }
        // The no-op early returns above record nothing: a `compact` phase
        // in the snapshot always means rows actually moved.
        //
        // Compaction runs as its own transaction and publishes one new
        // engine snapshot at the end. In-flight reader batches keep their
        // old snapshot, whose shards pin the *old* matrix generation — the
        // dense replacement below installs a new `Arc`, so old-id serving
        // stays consistent until the last pinned batch drains.
        let span = Span::enter("compact");
        let mut txn = self.begin_txn();
        // Survivors in ascending (old) global-id order; their rank is the
        // new global id == new shared row id.
        let mut survivors: Vec<ObjId> = txn.locator.keys().copied().collect();
        survivors.sort_unstable();

        // (1) Full re-partition of the survivors on routed engines. The
        // movement tombstones this leaves behind are folded away by the
        // dense rebuild below.
        if txn.router.is_some() && txn.shards.len() >= 2 {
            let live_rows = snap.select(&survivors);
            let assignment =
                pmi_router::assign_pivot_space(&live_rows, txn.shards.len(), self.partition_seed);
            for (rank, &gid) in survivors.iter().enumerate() {
                let target = assignment[rank];
                let (s, local) = txn.locator[&gid];
                if s as usize == target {
                    continue;
                }
                let Some(o) = txn.shards[s as usize].get_local(local) else {
                    continue;
                };
                txn.shard_mut(s as usize).remove_local(local);
                let new_local =
                    txn.shard_mut(target)
                        .insert_adopted(o, gid, gid, live_rows.row(rank));
                txn.locator.insert(gid, (target as u32, new_local));
            }
        }

        let mut dense =
            PivotMatrix::with_capacity(snap.width(), survivors.len()).with_mode(snap.mode());
        let mut keep: Vec<Vec<ObjId>> = vec![Vec::new(); txn.shards.len()];
        let mut rows: Vec<Vec<ObjId>> = vec![Vec::new(); txn.shards.len()];
        for (new_gid, &old_gid) in survivors.iter().enumerate() {
            dense.push_row(snap.row(old_gid as usize));
            let (s, local) = txn.locator[&old_gid];
            keep[s as usize].push(local);
            rows[s as usize].push(new_gid as ObjId);
        }
        mx.replace(dense);
        let mut locator = HashMap::with_capacity(survivors.len());
        for (s, (keep, rows)) in keep.iter().zip(&rows).enumerate() {
            if txn.shard_mut(s).compact_rows(keep, rows) {
                // Dense rebuild: new local id i holds new global id rows[i].
                for (local, &gid) in rows.iter().enumerate() {
                    locator.insert(gid, (s as u32, local as ObjId));
                }
            } else {
                // Tombstones kept: local ids unchanged, global ids remapped.
                for (&local, &gid) in keep.iter().zip(rows) {
                    locator.insert(gid, (s as u32, local));
                }
            }
        }
        txn.locator = locator;
        txn.next_id = survivors.len() as ObjId;

        // (3) Tight boxes over the final membership (the staging map is
        // empty here — every surviving row is published in the dense
        // matrix under its new id).
        if txn.router.is_some() {
            let dirty = vec![true; txn.shards.len()];
            self.stage_rebox(&mut txn, &dirty);
        }
        txn.stats.compactions += 1;
        txn.stats.compacted_rows += dead as u64;
        self.commit_txn(txn);
        span.finish_with(
            &self.core.obs,
            &[
                ("compacted_rows", dead as u64),
                ("survivors", survivors.len() as u64),
            ],
        );
        self.core
            .obs
            .gauge_set("engine.live_objects", self.len() as u64);
        dead
    }

    /// Fetches a copy of a live object by global id.
    pub fn get(&self, id: ObjId) -> Option<O> {
        let (s, local) = *self.locator.get(&id)?;
        self.shards[s as usize].get_local(local)
    }

    /// Answers one query by probing shards serially on the calling thread
    /// (the per-worker path of [`serve`](Self::serve)).
    pub fn execute(&self, query: &Query<O>) -> QueryResult {
        self.execute_with(query, &mut EngineScratch::new())
    }

    /// [`execute`](Self::execute) with caller-owned scratch buffers — the
    /// batch-serving hot path. After warmup the only per-query allocation
    /// is the exact-size answer itself.
    ///
    /// Degradation flows through the scratch: [`serve`](Self::serve) arms
    /// the per-query budget once per batch; direct callers run unbudgeted
    /// (budgets are a serve-path contract) but still route around
    /// quarantined shards, so a degraded answer comes back as
    /// `PartialRange`/`PartialKnn` here too.
    pub fn execute_with(&self, query: &Query<O>, scratch: &mut EngineScratch) -> QueryResult {
        let snap = self.core.snapshot();
        self.core.execute_with(&snap, query, scratch)
    }
}

impl<O> EngineCore<O> {
    #[inline]
    fn note_probes(&self, probed: usize, pruned: usize) {
        self.probed.fetch_add(probed as u64, Ordering::Relaxed);
        self.pruned.fetch_add(pruned as u64, Ordering::Relaxed);
    }

    /// Serial one-query path over one snapshot (see
    /// [`ShardedEngine::execute_with`]).
    fn execute_with(
        &self,
        snap: &EngineSnapshot<O>,
        query: &Query<O>,
        scratch: &mut EngineScratch,
    ) -> QueryResult {
        let budget = scratch.ctl.batch_budget;
        scratch.ctl.begin(budget, self.quarantine.any());
        match query {
            Query::Range { q, radius } => {
                let ids = self.range_with(snap, q, *radius, scratch);
                match scratch.ctl.take_degraded() {
                    Some(d) => QueryResult::PartialRange(ids, d),
                    None => QueryResult::Range(ids),
                }
            }
            Query::Knn { q, k } => {
                let nbrs = self.knn_with(snap, q, *k, scratch);
                match scratch.ctl.take_degraded() {
                    Some(d) => QueryResult::PartialKnn(nbrs, d),
                    None => QueryResult::Knn(nbrs),
                }
            }
        }
    }

    /// Plans and probes `MRQ(q, r)` serially through scratch buffers.
    fn range_with(
        &self,
        snap: &EngineSnapshot<O>,
        q: &O,
        radius: f64,
        scratch: &mut EngineScratch,
    ) -> Vec<ObjId> {
        let EngineScratch {
            qs,
            mapped,
            probe,
            ids,
            obs,
            trace,
            ctl,
            ..
        } = scratch;
        // Sampled queries pay one extra clock read per phase boundary; the
        // rest see only the plain per-shard probe tally. Traced queries
        // (trace.active) run their own lap timer and per-probe counter
        // snapshots — neither exists on the untraced path.
        let mut clock = ObsClock::start(obs.sampled);
        let mut tclock = ObsClock::start(trace.active);
        match &snap.router {
            Some(rt) => {
                rt.map_into(q, mapped);
                rt.range_plan_into(mapped, radius, probe);
                if obs.timing {
                    obs.map_dists += mapped.len() as u64;
                }
            }
            None => {
                probe.clear();
                probe.extend(0..snap.shards.len());
            }
        }
        obs.plan_nanos += clock.lap();
        if trace.active {
            // Per-shard plan verdicts: range planning keeps shard order, so
            // the probe rank is the position in the (ascending) probe set.
            match &snap.router {
                Some(rt) => {
                    let mut next = probe.iter().peekable();
                    let mut rank = 0u32;
                    for (s, b) in rt.boxes().iter().enumerate() {
                        let probed = next.peek() == Some(&&s);
                        let order = if probed {
                            next.next();
                            rank += 1;
                            rank - 1
                        } else {
                            u32::MAX
                        };
                        trace.ring.push(TraceEvent::Plan {
                            shard: s as u32,
                            lower_bound: b.lower_bound(mapped),
                            probed,
                            order,
                        });
                    }
                }
                None => {
                    for s in 0..snap.shards.len() {
                        trace.ring.push(TraceEvent::Plan {
                            shard: s as u32,
                            lower_bound: 0.0,
                            probed: true,
                            order: s as u32,
                        });
                    }
                }
            }
            trace.ring.push(TraceEvent::PlanDone {
                shards: snap.shards.len() as u32,
                probed: probe.len() as u32,
                pruned: (snap.shards.len() - probe.len()) as u32,
                map_dists: mapped.len() as u64,
                nanos: tclock.lap(),
            });
        }
        ids.clear();
        let guarded = ctl.armed;
        let mut executed = 0usize;
        for &s in probe.iter() {
            if guarded {
                if self.quarantine.is_quarantined(s) {
                    ctl.skip(DegradeReason::Quarantined);
                    continue;
                }
                if !ctl.allow_probe() {
                    continue;
                }
            }
            // Unconditional plain store: a panic caught by `serve` reads
            // this to attribute itself to the shard under probe.
            ctl.probing = Some(s as u32);
            fault::at("engine.probe", s as u64);
            executed += 1;
            obs.note_probe(s);
            let cd0 = (guarded && ctl.budget.caps_compdists())
                .then(|| snap.shards[s].counters().compdists);
            let tsnap = trace
                .active
                .then(|| (snap.shards[s].counters(), qs.kernel_rows, qs.kernel_blocks));
            snap.shards[s].range_global_into(q, radius, qs, ids);
            if let Some(c0) = cd0 {
                ctl.spent += snap.shards[s].counters().compdists.saturating_sub(c0);
            }
            if obs.sampled {
                obs.note_probe_wall(s, clock.lap());
            }
            if let Some((c0, kr0, kb0)) = tsnap {
                let d = snap.shards[s].counters().since(&c0);
                let kernel_rows = qs.kernel_rows - kr0;
                trace.ring.push(TraceEvent::Scan {
                    shard: s as u32,
                    dists: d.compdists,
                    page_accesses: d.page_accesses(),
                    kernel_rows,
                    kernel_blocks: qs.kernel_blocks - kb0,
                    // The survivor buffer belongs to kernel scans; a tree
                    // shard leaves it untouched from the previous probe.
                    survivors: if kernel_rows > 0 {
                        qs.survivors.len() as u64
                    } else {
                        0
                    },
                    nanos: tclock.lap(),
                });
            }
        }
        // Skipped probes count as neither probed nor pruned: the plan
        // wanted them, the budget (or quarantine) withheld them.
        self.note_probes(executed, snap.shards.len() - probe.len());
        // Shards are disjoint partitions: the union is concatenation plus
        // one sort for determinism.
        ids.sort_unstable();
        let out = ids.clone();
        obs.merge_nanos += clock.lap();
        if trace.active {
            trace.ring.push(TraceEvent::Merge {
                results: out.len() as u64,
                nanos: tclock.lap(),
            });
        }
        out
    }

    /// Probes `MkNNQ(q, k)` serially into the scratch's bounded top-k
    /// collector. Routed engines go best-first by box lower bound and skip
    /// every shard whose bound exceeds the current k-th distance (strictly
    /// — an equal bound could still hide an id-tie winner).
    fn knn_with(
        &self,
        snap: &EngineSnapshot<O>,
        q: &O,
        k: usize,
        scratch: &mut EngineScratch,
    ) -> Vec<Neighbor> {
        let EngineScratch {
            qs,
            mapped,
            order,
            nbrs,
            topk,
            obs,
            trace,
            ctl,
            ..
        } = scratch;
        topk.reset(k);
        let guarded = ctl.armed;
        let mut clock = ObsClock::start(obs.sampled);
        let mut tclock = ObsClock::start(trace.active);
        match &snap.router {
            Some(rt) => {
                rt.map_into(q, mapped);
                rt.knn_order_into(mapped, order);
                if obs.timing {
                    obs.map_dists += mapped.len() as u64;
                }
                obs.plan_nanos += clock.lap();
                let plan_nanos = tclock.lap();
                let (mut probed, mut pruned) = (0usize, 0usize);
                for (rank, &(s, lb)) in order.iter().enumerate() {
                    if lb > topk.threshold() {
                        pruned += 1;
                        if trace.active {
                            // Best-first order: the rank is both the plan
                            // position and the point where pruning struck.
                            trace.ring.push(TraceEvent::Plan {
                                shard: s as u32,
                                lower_bound: lb,
                                probed: false,
                                order: rank as u32,
                            });
                        }
                        continue;
                    }
                    if guarded {
                        if self.quarantine.is_quarantined(s) {
                            ctl.skip(DegradeReason::Quarantined);
                            continue;
                        }
                        if !ctl.allow_probe() {
                            continue;
                        }
                    }
                    ctl.probing = Some(s as u32);
                    fault::at("engine.probe", s as u64);
                    probed += 1;
                    obs.note_probe(s);
                    let cd0 = (guarded && ctl.budget.caps_compdists())
                        .then(|| snap.shards[s].counters().compdists);
                    let tsnap = trace.active.then(|| {
                        trace.ring.push(TraceEvent::Plan {
                            shard: s as u32,
                            lower_bound: lb,
                            probed: true,
                            order: rank as u32,
                        });
                        (snap.shards[s].counters(), qs.kernel_rows, qs.kernel_blocks)
                    });
                    // Seed the shard scan with the running threshold:
                    // shards are probed in sequence here, so candidates
                    // the merge would reject are never even verified.
                    let seed = topk.threshold();
                    snap.shards[s].knn_into_with(q, k, seed, qs, nbrs, topk);
                    if let Some(c0) = cd0 {
                        ctl.spent += snap.shards[s].counters().compdists.saturating_sub(c0);
                    }
                    if obs.sampled {
                        obs.note_probe_wall(s, clock.lap());
                    }
                    if let Some((c0, kr0, kb0)) = tsnap {
                        let d = snap.shards[s].counters().since(&c0);
                        trace.ring.push(TraceEvent::Scan {
                            shard: s as u32,
                            dists: d.compdists,
                            page_accesses: d.page_accesses(),
                            kernel_rows: qs.kernel_rows - kr0,
                            kernel_blocks: qs.kernel_blocks - kb0,
                            // kNN scans verify through the heap, not the
                            // range survivor buffer.
                            survivors: 0,
                            nanos: tclock.lap(),
                        });
                    }
                }
                if trace.active {
                    trace.ring.push(TraceEvent::PlanDone {
                        shards: order.len() as u32,
                        probed: probed as u32,
                        pruned: pruned as u32,
                        map_dists: mapped.len() as u64,
                        nanos: plan_nanos,
                    });
                }
                self.note_probes(probed, pruned);
            }
            None => {
                obs.plan_nanos += clock.lap();
                if trace.active {
                    trace.ring.push(TraceEvent::PlanDone {
                        shards: snap.shards.len() as u32,
                        probed: snap.shards.len() as u32,
                        pruned: 0,
                        map_dists: 0,
                        nanos: tclock.lap(),
                    });
                }
                let mut probed = 0usize;
                for (s, shard) in snap.shards.iter().enumerate() {
                    if guarded {
                        if self.quarantine.is_quarantined(s) {
                            ctl.skip(DegradeReason::Quarantined);
                            continue;
                        }
                        if !ctl.allow_probe() {
                            continue;
                        }
                    }
                    ctl.probing = Some(s as u32);
                    fault::at("engine.probe", s as u64);
                    probed += 1;
                    obs.note_probe(s);
                    let cd0 = (guarded && ctl.budget.caps_compdists())
                        .then(|| snap.shards[s].counters().compdists);
                    let tsnap = trace.active.then(|| {
                        trace.ring.push(TraceEvent::Plan {
                            shard: s as u32,
                            lower_bound: 0.0,
                            probed: true,
                            order: s as u32,
                        });
                        (snap.shards[s].counters(), qs.kernel_rows, qs.kernel_blocks)
                    });
                    let seed = topk.threshold();
                    shard.knn_into_with(q, k, seed, qs, nbrs, topk);
                    if let Some(c0) = cd0 {
                        ctl.spent += snap.shards[s].counters().compdists.saturating_sub(c0);
                    }
                    if obs.sampled {
                        obs.note_probe_wall(s, clock.lap());
                    }
                    if let Some((c0, kr0, kb0)) = tsnap {
                        let d = snap.shards[s].counters().since(&c0);
                        trace.ring.push(TraceEvent::Scan {
                            shard: s as u32,
                            dists: d.compdists,
                            page_accesses: d.page_accesses(),
                            kernel_rows: qs.kernel_rows - kr0,
                            kernel_blocks: qs.kernel_blocks - kb0,
                            survivors: 0,
                            nanos: tclock.lap(),
                        });
                    }
                }
                self.note_probes(probed, 0);
            }
        }
        let out = topk.drain_sorted();
        obs.merge_nanos += clock.lap();
        if trace.active {
            trace.ring.push(TraceEvent::Merge {
                results: out.len() as u64,
                nanos: tclock.lap(),
            });
        }
        out
    }

    /// The shards `MRQ(q, r)` must probe: all of them for round-robin
    /// engines, the router's Lemma 1 survivors otherwise. Also records the
    /// probe/prune counts. (Allocating planner for the parallel
    /// single-query path; batch serving plans through [`EngineScratch`].)
    fn range_probe_set(&self, snap: &EngineSnapshot<O>, q: &O, radius: f64) -> Vec<usize> {
        let mut probe = Vec::new();
        match &snap.router {
            Some(rt) => {
                let mut qd = Vec::new();
                rt.map_into(q, &mut qd);
                rt.range_plan_into(&qd, radius, &mut probe);
            }
            None => probe.extend(0..snap.shards.len()),
        }
        let pruned = snap.shards.len() - probe.len();
        if self.quarantine.any() {
            // Quarantine skips count as neither probed nor pruned.
            probe.retain(|&s| !self.quarantine.is_quarantined(s));
        }
        self.note_probes(probe.len(), pruned);
        probe
    }

    /// Probes the given shards serially and merges the range union.
    fn range_over(
        &self,
        snap: &EngineSnapshot<O>,
        probe: &[usize],
        q: &O,
        radius: f64,
    ) -> Vec<ObjId> {
        merge_range(
            probe
                .iter()
                .map(|&s| snap.shards[s].range_global(q, radius))
                .collect(),
        )
    }
}

impl<O: Send + Sync> EngineCore<O> {
    /// Metric range query `MRQ(q, r)`, fanned across the shards the planner
    /// selects on at most `threads` scoped worker threads (the low-latency
    /// path for a single query). Returns global ids sorted ascending.
    fn range_query(&self, snap: &EngineSnapshot<O>, q: &O, radius: f64) -> Vec<ObjId> {
        let probe = self.range_probe_set(snap, q, radius);
        if probe.len() <= 1 || self.threads <= 1 {
            return self.range_over(snap, &probe, q, radius);
        }
        let chunk = probe.len().div_ceil(self.threads);
        let partials: Vec<Vec<ObjId>> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = probe
                .chunks(chunk)
                .map(|group| {
                    scope.spawn(move |_| {
                        group
                            .iter()
                            .map(|&s| snap.shards[s].range_global(q, radius))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("range worker panicked"))
                .collect()
        })
        .expect("range scope panicked");
        merge_range(partials)
    }

    /// Metric kNN query `MkNNQ(q, k)`. Round-robin engines fan the query
    /// across all shards on scoped worker threads and merge through a
    /// bounded binary heap; routed engines probe best-first on the calling
    /// thread instead, because each probe tightens the cutoff that prunes
    /// the shards after it (batch serving still parallelizes across
    /// queries). Sorted ascending by `(distance, global id)`.
    fn knn_query(&self, snap: &EngineSnapshot<O>, q: &O, k: usize) -> Vec<Neighbor> {
        if snap.router.is_some() || snap.shards.len() == 1 || self.threads <= 1 {
            let mut scratch = EngineScratch::new();
            // Arm the quarantine guard (no budget — single-query calls are
            // unbudgeted by contract) so planning routes around
            // quarantined shards here too.
            scratch
                .ctl
                .begin(QueryBudget::unlimited(), self.quarantine.any());
            return self.knn_with(snap, q, k, &mut scratch);
        }
        let live: Vec<&Arc<Shard<O>>> = if self.quarantine.any() {
            snap.shards
                .iter()
                .enumerate()
                .filter(|(s, _)| !self.quarantine.is_quarantined(*s))
                .map(|(_, sh)| sh)
                .collect()
        } else {
            snap.shards.iter().collect()
        };
        self.note_probes(live.len(), 0);
        let chunk = live.len().max(1).div_ceil(self.threads);
        let partials: Vec<Vec<Neighbor>> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = live
                .chunks(chunk)
                .map(|group| {
                    scope.spawn(move |_| {
                        // Each worker pre-merges its shard group, so at most
                        // k candidates per group reach the global merge.
                        let mut topk = TopK::new(k);
                        for s in group {
                            s.knn_into(q, k, &mut topk);
                        }
                        topk.into_sorted()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("knn worker panicked"))
                .collect()
        })
        .expect("knn scope panicked");
        let mut topk = TopK::new(k);
        for p in partials {
            topk.offer_all(p);
        }
        topk.into_sorted()
    }

    /// Up-front validation of one query: the typed error a malformed query
    /// fails with, decided before any shard is touched. Index-level k=0
    /// stays an empty answer (the trait contract); the serve boundary
    /// rejects it so callers notice the likely bug.
    fn validate(&self, validator: Option<&Validator<O>>, query: &Query<O>) -> Option<QueryError> {
        let q = match query {
            Query::Range { q, radius } => {
                if radius.is_nan() {
                    return Some(QueryError::NanRadius);
                }
                if *radius < 0.0 {
                    return Some(QueryError::NegativeRadius);
                }
                q
            }
            Query::Knn { q, k } => {
                if *k == 0 {
                    return Some(QueryError::ZeroK);
                }
                q
            }
        };
        match validator {
            Some(v) if !v(q) => Some(QueryError::InvalidObject),
            _ => None,
        }
    }

    /// Picks the scheduling strategy for one batch (see [`SchedPolicy`]).
    ///
    /// Budgeted, traced, single-worker, and single-shard serving always
    /// run query-parallel: degradation, shedding, and trace capture live
    /// on the per-worker claim loop, and a 1-thread or 1-shard engine has
    /// nothing to fan a query across. Past those guards the configured
    /// policy wins; `Auto` goes query-parallel whenever the batch can
    /// saturate the pool with whole queries (`batch >= threads`) — the
    /// cheapest parallelism there is — and otherwise fans each query
    /// across shards, provided a query plans enough rows
    /// ([`SHARD_PARALLEL_MIN_ROWS`]) to amortize the per-query
    /// scoped-thread setup.
    fn choose_strategy(
        &self,
        snap: &EngineSnapshot<O>,
        batch_len: usize,
        budget: &ServeBudget,
        tpolicy: &TracePolicy,
    ) -> SchedStrategy {
        if self.threads <= 1 || snap.shards.len() <= 1 || budget.enabled() || tpolicy.enabled() {
            return SchedStrategy::QueryParallel;
        }
        let sched = *self.sched.lock().unwrap_or_else(|e| e.into_inner());
        match sched {
            SchedPolicy::QueryParallel => SchedStrategy::QueryParallel,
            SchedPolicy::ShardParallel => SchedStrategy::ShardParallel,
            SchedPolicy::Auto => {
                if batch_len >= self.threads || snap.len() < SHARD_PARALLEL_MIN_ROWS {
                    SchedStrategy::QueryParallel
                } else {
                    SchedStrategy::ShardParallel
                }
            }
        }
    }

    /// Serves a batch of mixed queries on the worker pool. Under
    /// query-parallel scheduling (the default; see [`SchedPolicy`]) each
    /// worker claims queries from a shared atomic cursor, executes them
    /// against the shards the planner selects through its own reused
    /// [`EngineScratch`], merges, and records the per-query latency from a
    /// monotonic clock. Under shard-parallel scheduling the batch runs
    /// serially and each query fans its probe set across the pool (the
    /// single-query low-latency path). Returns the merged answers in batch
    /// order plus a [`ServeReport`] that names the strategy used.
    ///
    /// The report's `cost` is the delta of the aggregate counters across
    /// the batch — exact for everything this engine's shards executed in
    /// the batch window, because every shard counts atomically; the same
    /// holds for `shards_probed` / `shards_pruned`. If the caller runs
    /// *other* queries on the same engine concurrently with this batch
    /// (another `serve`, or single-query calls from another thread), their
    /// cost lands in the same window and is included; serve one batch at a
    /// time for per-batch attribution.
    ///
    /// This is also the failure boundary (`docs/robustness.md`): malformed
    /// queries come back `Failed` with a typed [`QueryError`], budgets
    /// degrade or shed per item rather than erroring, and a panicking
    /// query is contained here while the rest of the batch completes.
    fn serve(&self, snap: &EngineSnapshot<O>, batch: &[Query<O>]) -> BatchOutcome {
        let workers = self.threads.min(batch.len()).max(1);
        let shard_before: Vec<Counters> = snap.shards.iter().map(|s| s.counters()).collect();
        let before = shard_before
            .iter()
            .fold(Counters::default(), |acc, c| acc + *c);
        let (probed0, pruned0) = (
            self.probed.load(Ordering::Relaxed),
            self.pruned.load(Ordering::Relaxed),
        );
        // One registry read per batch: the runtime switch never sits on the
        // per-query path. Same for the trace policy, the serving budgets,
        // and the query validator — one mutex lock each here, then a
        // per-worker copy (the batch sees one consistent policy even if a
        // setter races it).
        let timing = self.obs.is_enabled();
        let tpolicy = self.trace_policy();
        let budget = self.serve_budget();
        let validator = self.validator();
        let strategy = self.choose_strategy(snap, batch.len(), &budget, &tpolicy);
        // Worker threads the batch actually occupies, for the report and
        // the idle estimate: the claim-loop pool under query-parallel, the
        // per-query fan-out width under shard-parallel.
        let pool = match strategy {
            SchedStrategy::ShardParallel => self.threads.max(1),
            SchedStrategy::QueryParallel => workers,
        };
        let cursor = AtomicUsize::new(0);
        let t0 = Instant::now();
        // Batch-level admission deadline: once blown, still-unclaimed
        // queries are shed without executing.
        let batch_deadline = (budget.batch_wall_nanos > 0)
            .then(|| t0 + Duration::from_nanos(budget.batch_wall_nanos));

        // Each worker claims queries from the shared cursor and returns its
        // answered slice plus its private observability state (probe
        // tallies, sampled walls, kernel tally) — plain writes only, folded
        // after the scope joins.
        let run_worker = || {
            let b0 = timing.then(Instant::now);
            let mut scratch = EngineScratch::new();
            scratch.obs.prepare(snap.shards.len(), timing);
            scratch.trace.prepare(tpolicy);
            scratch.ctl.batch_budget = budget.query;
            let mut local = Vec::new();
            let mut served = 0u64;
            loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= batch.len() {
                    break;
                }
                // Admission control: a blown batch deadline sheds every
                // not-yet-claimed query outright.
                if let Some(d) = batch_deadline {
                    if Instant::now() >= d {
                        local.push((i, QueryResult::Shed, 0));
                        continue;
                    }
                }
                // Malformed queries fail per-item before touching a shard.
                if let Some(e) = self.validate(validator.as_ref(), &batch[i]) {
                    local.push((i, QueryResult::Failed(e), 0));
                    continue;
                }
                // 1-in-OBS_SAMPLE queries pay the per-segment clock reads;
                // every query still lands in the latency histogram.
                scratch.obs.sampled = timing && served.is_multiple_of(OBS_SAMPLE);
                scratch.trace.begin(served);
                served += 1;
                let q0 = Instant::now();
                // Panic isolation: a panicking query is contained here —
                // the scratch buffers are per-query (each query resets the
                // state it reads), so the worker keeps serving.
                let res = catch_unwind(AssertUnwindSafe(|| {
                    self.execute_with(snap, &batch[i], &mut scratch)
                }))
                .unwrap_or_else(|_| {
                    let shard = scratch.ctl.probing.take();
                    // A mid-probe panic leaves the trace ring half-written:
                    // drop the in-flight recording, keep earlier captures.
                    scratch.trace.active = false;
                    if let Some(s) = shard {
                        if self.quarantine.note_panic(s as usize, self.faults) {
                            self.obs.counter_add("serve.quarantines", 1);
                        }
                    }
                    QueryResult::Failed(QueryError::Panicked { shard })
                });
                let ns = q0.elapsed().as_nanos() as u64;
                if timing {
                    scratch.obs.query_wall.record(ns);
                    scratch.obs.sampled_queries += scratch.obs.sampled as u64;
                }
                if scratch.trace.active {
                    let kind = match &batch[i] {
                        Query::Range { radius, .. } => TraceKind::Range { radius: *radius },
                        Query::Knn { k, .. } => TraceKind::Knn { k: *k },
                    };
                    scratch.trace.finish(i, kind, ns);
                }
                local.push((i, res, ns));
            }
            let (kernel_rows, kernel_blocks) = scratch.qs.take_kernel_tally();
            let mut obs = std::mem::take(&mut scratch.obs);
            if timing {
                obs.kernel_rows += kernel_rows;
                obs.kernel_blocks += kernel_blocks;
                if let Some(t) = b0 {
                    obs.busy_nanos = t.elapsed().as_nanos() as u64;
                }
            }
            (local, obs, std::mem::take(&mut scratch.trace.captured))
        };

        // Shard-parallel: the batch runs serially on this thread and each
        // query fans its probe set across the pool through the
        // single-query paths. Budgets and tracing are off by construction
        // of the strategy, so the claim-loop machinery (degradation,
        // per-segment sampling, capture) is not needed; validation,
        // batch-deadline shedding, and panic isolation still apply. A
        // panic inside the fan-out surfaces here without a shard
        // attribution (the scoped workers' probes are not tracked
        // per-shard on this path).
        let run_fanned = || {
            let b0 = timing.then(Instant::now);
            let mut obs = ScratchObs::default();
            obs.prepare(snap.shards.len(), timing);
            let mut local = Vec::with_capacity(batch.len());
            for (i, query) in batch.iter().enumerate() {
                if let Some(d) = batch_deadline {
                    if Instant::now() >= d {
                        local.push((i, QueryResult::Shed, 0));
                        continue;
                    }
                }
                if let Some(e) = self.validate(validator.as_ref(), query) {
                    local.push((i, QueryResult::Failed(e), 0));
                    continue;
                }
                let q0 = Instant::now();
                let res = catch_unwind(AssertUnwindSafe(|| match query {
                    Query::Range { q, radius } => {
                        QueryResult::Range(self.range_query(snap, q, *radius))
                    }
                    Query::Knn { q, k } => QueryResult::Knn(self.knn_query(snap, q, *k)),
                }))
                .unwrap_or(QueryResult::Failed(QueryError::Panicked { shard: None }));
                let ns = q0.elapsed().as_nanos() as u64;
                if timing {
                    obs.query_wall.record(ns);
                }
                local.push((i, res, ns));
            }
            if timing {
                if let Some(t) = b0 {
                    obs.busy_nanos = t.elapsed().as_nanos() as u64;
                }
            }
            (local, obs, Vec::new())
        };

        type WorkerOut = (Vec<(usize, QueryResult, u64)>, ScratchObs, Vec<QueryTrace>);
        let collected: Vec<WorkerOut> = if strategy == SchedStrategy::ShardParallel {
            vec![run_fanned()]
        } else if workers <= 1 {
            vec![run_worker()]
        } else {
            crossbeam::thread::scope(|scope| {
                let run_worker = &run_worker;
                let handles: Vec<_> = (0..workers)
                    .map(|_| scope.spawn(move |_| run_worker()))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("serve worker panicked"))
                    .collect()
            })
            .expect("serve scope panicked")
        };

        let wall_nanos = t0.elapsed().as_nanos() as u64;
        let wall_secs = wall_nanos as f64 / 1e9;
        let shard_after: Vec<Counters> = snap.shards.iter().map(|s| s.counters()).collect();
        let cost = shard_after
            .iter()
            .fold(Counters::default(), |acc, c| acc + *c)
            .since(&before);
        let (probed1, pruned1) = (
            self.probed.load(Ordering::Relaxed),
            self.pruned.load(Ordering::Relaxed),
        );

        let mut results: Vec<Option<QueryResult>> = (0..batch.len()).map(|_| None).collect();
        let mut nanos = Vec::with_capacity(if timing { 0 } else { batch.len() });
        let mut total_results = 0usize;
        let (mut degraded, mut shed, mut failed) = (0usize, 0usize, 0usize);
        let mut agg = ScratchObs::default();
        let mut traces: Vec<QueryTrace> = Vec::new();
        for (local, wobs, wtraces) in collected {
            for (i, res, ns) in local {
                total_results += res.len();
                let executed = match &res {
                    QueryResult::PartialRange(..) | QueryResult::PartialKnn(..) => {
                        degraded += 1;
                        true
                    }
                    QueryResult::Shed => {
                        shed += 1;
                        false
                    }
                    QueryResult::Failed(e) => {
                        failed += 1;
                        // Validation rejections never ran; contained
                        // panics did and carry a real wall.
                        matches!(e, QueryError::Panicked { .. })
                    }
                    _ => true,
                };
                if !timing && executed {
                    nanos.push(ns);
                }
                results[i] = Some(res);
            }
            agg.merge(wobs);
            traces.extend(wtraces);
        }
        // Batch order; the cap is per batch (each worker already respected
        // it individually, the merge enforces it globally).
        traces.sort_by_key(|t| t.query);
        traces.truncate(tpolicy.max_captured);
        let results: Vec<QueryResult> = results
            .into_iter()
            .map(|r| r.expect("every batch slot served exactly once"))
            .collect();

        // Per-shard breakdown: probe counts and counter deltas are exact
        // regardless of the obs switch; the wall columns come from the
        // 1-in-OBS_SAMPLE timed queries (sums extrapolated, quantiles taken
        // over the raw samples) and stay zero with obs off.
        let per_shard: Vec<ShardServeStats> = (0..snap.shards.len())
            .map(|s| {
                let delta = shard_after[s].since(&shard_before[s]);
                let (wall_secs, p50_secs, p99_secs) = if timing {
                    let (p50, p99) = match agg.shard_samples.get_mut(s) {
                        Some(v) if !v.is_empty() => {
                            v.sort_unstable();
                            (sample_quantile(v, 0.50), sample_quantile(v, 0.99))
                        }
                        _ => (0.0, 0.0),
                    };
                    let sum = agg.shard_nanos.get(s).copied().unwrap_or(0);
                    ((sum * OBS_SAMPLE) as f64 / 1e9, p50, p99)
                } else {
                    (0.0, 0.0, 0.0)
                };
                ShardServeStats {
                    shard: s,
                    probes: agg.probes.get(s).copied().unwrap_or(0),
                    compdists: delta.compdists,
                    page_accesses: delta.page_accesses(),
                    wall_secs,
                    p50_secs,
                    p99_secs,
                }
            })
            .collect();

        let latency = if timing && !agg.query_wall.is_empty() {
            LatencySummary::from_hist(&agg.query_wall)
        } else {
            LatencySummary::from_nanos(nanos)
        };

        if timing {
            // Phase walls for plan/scan/merge cover the sampled queries
            // only; extrapolate by the sampling stride so they read as
            // batch-level estimates next to the exact `serve` wall.
            let idle_nanos = (wall_nanos * pool as u64).saturating_sub(agg.busy_nanos);
            self.obs.phase_add(
                "serve",
                1,
                wall_nanos,
                &[
                    ("queries", batch.len() as u64),
                    ("results", total_results as u64),
                    ("workers", pool as u64),
                    ("shards_probed", probed1 - probed0),
                    ("shards_pruned", pruned1 - pruned0),
                    ("compdists", cost.compdists),
                    ("idle_nanos", idle_nanos),
                ],
            );
            self.obs.phase_add(
                "serve.plan",
                batch.len() as u64,
                agg.plan_nanos * OBS_SAMPLE,
                &[("map_dists", agg.map_dists)],
            );
            self.obs.phase_add(
                "serve.scan",
                agg.probes.iter().sum(),
                agg.scan_nanos * OBS_SAMPLE,
                &[
                    ("kernel_rows", agg.kernel_rows),
                    ("kernel_blocks", agg.kernel_blocks),
                    ("compdists", cost.compdists),
                    ("page_accesses", cost.page_accesses()),
                ],
            );
            self.obs.phase_add(
                "serve.merge",
                batch.len() as u64,
                agg.merge_nanos * OBS_SAMPLE,
                &[],
            );
            self.obs.hist_merge("serve.query_wall", &agg.query_wall);
            self.obs
                .counter_add("serve.sampled_queries", agg.sampled_queries);
        }
        // Robustness counters (the registry gates on its runtime switch
        // and skips zero adds internally).
        self.obs.counter_add("serve.degraded", degraded as u64);
        self.obs.counter_add("serve.shed", shed as u64);
        self.obs.counter_add("serve.failed", failed as u64);
        self.obs.gauge_set(
            "engine.quarantined_shards",
            self.quarantine.quarantined_count() as u64,
        );

        let range_queries = batch.iter().filter(|q| q.is_range()).count();
        let report = ServeReport {
            queries: batch.len(),
            strategy,
            range_queries,
            knn_queries: batch.len() - range_queries,
            total_results,
            degraded,
            shed,
            failed,
            shards: snap.shards.len(),
            threads: pool,
            epoch: snap.epoch,
            wall_secs,
            qps: if wall_secs > 0.0 {
                batch.len() as f64 / wall_secs
            } else {
                0.0
            },
            latency,
            cost,
            shards_probed: probed1 - probed0,
            shards_pruned: pruned1 - pruned0,
            build: *self.build.lock().unwrap_or_else(|e| e.into_inner()),
            updates: *self.updates.lock().unwrap_or_else(|e| e.into_inner()),
            per_shard,
            traces,
        };
        BatchOutcome { results, report }
    }

    /// Drains one queued batch from `queue` through this core (see
    /// [`SubmitQueue`]): pops the oldest admitted batch, sheds it whole if
    /// its queue-wall deadline is blown, otherwise serves it against the
    /// snapshot the caller resolved. Queue depth and outcome counters land
    /// in the engine registry.
    fn pump(&self, snap: &EngineSnapshot<O>, queue: &SubmitQueue<O>) -> PumpOutcome<O> {
        let outcome = queue.pump_one(|batch| self.serve(snap, batch));
        let stats = queue.stats();
        self.obs.gauge_set("engine.queue_depth", stats.depth as u64);
        self.obs.gauge_set("queue.submitted", stats.submitted);
        self.obs.gauge_set("queue.rejected", stats.rejected);
        match &outcome {
            PumpOutcome::Served { .. } => self.obs.counter_add("queue.served", 1),
            PumpOutcome::Shed { .. } => self.obs.counter_add("queue.shed", 1),
            PumpOutcome::Idle => {}
        }
        outcome
    }
}

impl<O: Send + Sync> ShardedEngine<O> {
    /// Serves a batch against the engine's current snapshot. See
    /// [`EngineReader::serve`] for the concurrent form; both run the same
    /// core against one atomically-loaded [`EngineSnapshot`].
    pub fn serve(&self, batch: &[Query<O>]) -> BatchOutcome {
        let snap = self.core.snapshot();
        self.core.serve(&snap, batch)
    }

    /// Metric range query `MRQ(q, r)` against the current snapshot. See
    /// [`EngineCore`]'s fan-out notes on the serving paths.
    pub fn range_query(&self, q: &O, radius: f64) -> Vec<ObjId> {
        let snap = self.core.snapshot();
        self.core.range_query(&snap, q, radius)
    }

    /// Metric kNN query `MkNNQ(q, k)` against the current snapshot.
    pub fn knn_query(&self, q: &O, k: usize) -> Vec<Neighbor> {
        let snap = self.core.snapshot();
        self.core.knn_query(&snap, q, k)
    }

    /// Drains one queued batch from `queue` against the current snapshot
    /// (admission control: see [`SubmitQueue`]).
    pub fn pump(&self, queue: &SubmitQueue<O>) -> PumpOutcome<O> {
        let snap = self.core.snapshot();
        self.core.pump(&snap, queue)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmi_metric::{BruteForce, Metric, PivotMatrix, L2};

    fn grid(n: usize) -> Vec<Vec<f32>> {
        (0..n)
            .map(|i| vec![(i % 37) as f32, (i / 37) as f32])
            .collect()
    }

    fn brute_factory(part: Vec<Vec<f32>>) -> Result<Box<dyn MetricIndex<Vec<f32>>>, &'static str> {
        Ok(Box::new(BruteForce::new(part, L2)))
    }

    fn engine(n: usize, shards: usize, threads: usize) -> ShardedEngine<Vec<f32>> {
        ShardedEngine::build_with(
            grid(n),
            &EngineConfig {
                shards,
                threads,
                ..EngineConfig::default()
            },
            |_, part| brute_factory(part),
        )
        .unwrap()
    }

    /// A routed engine over two well-separated 1-d clusters, one pivot at
    /// the origin (mapping = |x|).
    fn routed_two_clusters() -> (Vec<Vec<f32>>, ShardedEngine<Vec<f32>>) {
        let objects: Vec<Vec<f32>> = (0..20)
            .map(|i| {
                if i % 2 == 0 {
                    vec![(i / 2) as f32] // cluster A: 0..10
                } else {
                    vec![100.0 + (i / 2) as f32] // cluster B: 100..110
                }
            })
            .collect();
        let pivot = vec![0.0f32];
        let mapper = move |o: &Vec<f32>, out: &mut Vec<f64>| {
            out.push(L2.dist(o.as_slice(), pivot.as_slice()))
        };
        let mapped = PivotMatrix::from_rows(
            1,
            objects
                .iter()
                .map(|o| [L2.dist(o.as_slice(), [0.0f32].as_slice())]),
        );
        let assignment: Vec<usize> = objects.iter().map(|o| usize::from(o[0] >= 50.0)).collect();
        let router = RoutingTable::from_assignment(mapper, 1, &mapped, &assignment, 2);
        let e = ShardedEngine::build_partitioned_with(
            objects.clone(),
            &assignment,
            router,
            &EngineConfig {
                shards: 2,
                threads: 1,
                ..EngineConfig::default()
            },
            |_, part| brute_factory(part),
        )
        .unwrap();
        (objects, e)
    }

    #[test]
    fn sharded_matches_unsharded() {
        let objects = grid(300);
        let single = BruteForce::new(objects.clone(), L2);
        for shards in [1usize, 2, 4, 7] {
            let e = engine(300, shards, 2);
            assert_eq!(e.len(), 300);
            assert_eq!(e.num_shards(), shards);
            assert_eq!(e.policy(), PartitionPolicy::RoundRobin);
            for qi in [0usize, 17, 299] {
                let mut want = single.range_query(&objects[qi], 5.0);
                want.sort_unstable();
                assert_eq!(e.range_query(&objects[qi], 5.0), want, "P={shards}");
                let want_k = single.knn_query(&objects[qi], 12);
                let got_k = e.knn_query(&objects[qi], 12);
                assert_eq!(got_k.len(), want_k.len());
                for (g, w) in got_k.iter().zip(&want_k) {
                    assert_eq!(g.id, w.id, "P={shards} qi={qi}");
                    assert!((g.dist - w.dist).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn matrix_build_matches_plain_build() {
        // A matrix-adopting factory must see exactly its shard's rows of
        // the shared matrix, viewed in partition order.
        let objects = grid(60);
        let matrix = SharedPivotMatrix::new(PivotMatrix::from_rows(
            2,
            objects.iter().map(|o| [o[0] as f64, o[1] as f64]),
        ));
        let cfg = EngineConfig {
            shards: 4,
            threads: 2,
            ..EngineConfig::default()
        };
        let mapper: Mapper<Vec<f32>> =
            Box::new(|o: &Vec<f32>, out: &mut Vec<f64>| out.extend([o[0] as f64, o[1] as f64]));
        let e = ShardedEngine::build_with_matrix(
            objects.clone(),
            matrix,
            mapper,
            &cfg,
            |_, part, m| {
                assert_eq!(m.len(), part.len());
                assert_eq!(m.width(), 2);
                for (i, o) in part.iter().enumerate() {
                    assert_eq!(m.row(i), &[o[0] as f64, o[1] as f64], "adopted slice");
                }
                brute_factory(part)
            },
        )
        .unwrap();
        let plain = engine(60, 4, 2);
        for qi in [0usize, 30, 59] {
            assert_eq!(
                e.range_query(&objects[qi], 4.0),
                plain.range_query(&objects[qi], 4.0)
            );
        }
    }

    #[test]
    fn apply_batches_update_through_the_shared_path() {
        // A matrix-bearing round-robin engine: inserts push one shared row
        // each (gid == row id), removes tombstone, counters stay exact.
        let objects = grid(30);
        let matrix = SharedPivotMatrix::new(PivotMatrix::from_rows(
            2,
            objects.iter().map(|o| [o[0] as f64, o[1] as f64]),
        ));
        let mapper: Mapper<Vec<f32>> =
            Box::new(|o: &Vec<f32>, out: &mut Vec<f64>| out.extend([o[0] as f64, o[1] as f64]));
        let shared = matrix.clone();
        let mut e = ShardedEngine::build_with_matrix(
            objects.clone(),
            matrix,
            mapper,
            &EngineConfig {
                shards: 3,
                threads: 1,
                ..EngineConfig::default()
            },
            |_, part, _| brute_factory(part),
        )
        .unwrap();
        let mut batch = UpdateBatch::new();
        batch
            .insert(vec![100.0f32, 100.0])
            .remove(7)
            .insert(vec![200.0f32, 200.0])
            .remove(7) // already gone: counted as missing
            .remove(9999); // never existed
        let report = e.apply(&batch);
        assert_eq!(report.inserts, 2);
        assert_eq!(report.removes, 1);
        assert_eq!(report.missing_removes, 2);
        assert_eq!(report.inserted_ids, vec![30, 31]);
        assert_eq!(report.map_compdists, 4, "one 2-wide row per insert");
        assert_eq!(report.shard_compdists, 0, "BruteForce inserts are free");
        assert_eq!(report.reboxed_shards, 0, "no router, nothing to shrink");
        assert_eq!(shared.rows(), 32, "one pushed row per insert");
        assert_eq!(e.len(), 31);
        assert_eq!(e.locate(30), Some((e.locate(30).unwrap().0, 10)));
        assert_eq!(
            e.range_query(&vec![100.0f32, 100.0], 0.5),
            vec![30],
            "inserted object is served"
        );
        assert!(e.range_query(&objects[7], 0.25).is_empty(), "removed");
        let stats = e.update_stats();
        assert_eq!((stats.inserts, stats.removes), (2, 1));
        // The serve report carries the cumulative update totals.
        let out = e.serve(&[Query::range(vec![0.0f32, 0.0], 1.0)]);
        assert_eq!(out.report.updates, stats);
    }

    #[test]
    fn apply_shrinks_boxes_and_restores_pruning() {
        let (objects, mut e) = routed_two_clusters();
        // Stale-path baseline: without a shared matrix apply cannot
        // recompute box extents, so cluster B's box stays at its build
        // extent and a query there still probes shard 1.
        let b_ids: Vec<ObjId> = (0..20).filter(|i| i % 2 == 1).collect();
        let mut batch = UpdateBatch::new();
        for &id in &b_ids[..b_ids.len() - 1] {
            batch.remove(id);
        }
        // routed_two_clusters has no matrix, so apply cannot shrink there —
        // rebuild the same engine with the matrix attached.
        let pivot = vec![0.0f32];
        let mapper = move |o: &Vec<f32>, out: &mut Vec<f64>| {
            out.push(L2.dist(o.as_slice(), pivot.as_slice()))
        };
        let mapped = PivotMatrix::from_rows(
            1,
            objects
                .iter()
                .map(|o| [L2.dist(o.as_slice(), [0.0f32].as_slice())]),
        );
        let assignment: Vec<usize> = objects.iter().map(|o| usize::from(o[0] >= 50.0)).collect();
        let router = RoutingTable::from_assignment(mapper, 1, &mapped, &assignment, 2);
        let mut shrunk = ShardedEngine::build_partitioned_with_matrix(
            objects.clone(),
            &assignment,
            router,
            SharedPivotMatrix::new(mapped),
            &EngineConfig {
                shards: 2,
                threads: 1,
                refresh: RefreshPolicy::disabled(),
                ..EngineConfig::default()
            },
            |_, part, _| brute_factory(part),
        )
        .unwrap();

        // Stale path: legacy removes on the matrix-free engine.
        for &id in &b_ids[..b_ids.len() - 1] {
            assert!(e.remove(id));
        }
        // Maintained path: the same removes through apply.
        let report = shrunk.apply(&batch);
        assert_eq!(report.removes, b_ids.len() - 1);
        assert_eq!(report.reboxed_shards, 1, "only shard 1 lost members");

        // Query around the removed members: the stale box still matches,
        // the shrunk box prunes.
        let q = vec![102.0f32]; // cluster B's low end, removed above
        e.reset_counters();
        let stale_hits = e.range_query(&q, 1.0);
        let (stale_probed, _) = e.probe_counts();
        shrunk.reset_counters();
        let shrunk_hits = shrunk.range_query(&q, 1.0);
        let (shrunk_probed, shrunk_pruned) = shrunk.probe_counts();
        assert_eq!(stale_hits, shrunk_hits, "identical answers either way");
        assert_eq!(stale_probed, 1, "stale box still probes shard 1");
        assert_eq!((shrunk_probed, shrunk_pruned), (0, 2), "shrunk box prunes");
        // The survivor is still found through the shrunk box.
        let survivor = objects[b_ids[b_ids.len() - 1] as usize].clone();
        assert_eq!(
            shrunk.range_query(&survivor, 0.5),
            vec![b_ids[b_ids.len() - 1]]
        );
    }

    #[test]
    fn recluster_rebalances_worst_pair_and_keeps_answers() {
        // Start from two tight clusters, then grow cluster A only: the
        // imbalance trips RefreshPolicy and the pair is re-split.
        let (objects, _) = routed_two_clusters();
        let pivot = vec![0.0f32];
        let mapper = move |o: &Vec<f32>, out: &mut Vec<f64>| {
            out.push(L2.dist(o.as_slice(), pivot.as_slice()))
        };
        let mapped = PivotMatrix::from_rows(
            1,
            objects
                .iter()
                .map(|o| [L2.dist(o.as_slice(), [0.0f32].as_slice())]),
        );
        let assignment: Vec<usize> = objects.iter().map(|o| usize::from(o[0] >= 50.0)).collect();
        let router = RoutingTable::from_assignment(mapper, 1, &mapped, &assignment, 2);
        let mut e = ShardedEngine::build_partitioned_with_matrix(
            objects.clone(),
            &assignment,
            router,
            SharedPivotMatrix::new(mapped),
            &EngineConfig {
                shards: 2,
                threads: 1,
                refresh: RefreshPolicy {
                    max_imbalance: 2.0,
                    min_objects: 10,
                },
                ..EngineConfig::default()
            },
            |_, part, _| brute_factory(part),
        )
        .unwrap();
        // 40 inserts spread across cluster A's neighborhood: all route to
        // shard 0, leaving 50 vs 10.
        let mut batch = UpdateBatch::new();
        for i in 0..40 {
            batch.insert(vec![(i % 12) as f32]);
        }
        let report = e.apply(&batch);
        assert_eq!(report.inserts, 40);
        assert_eq!(report.reclusters, 1, "imbalance trips the policy");
        assert!(report.moved_objects > 0, "the re-split moved objects");
        let lens: Vec<usize> = e.shards().iter().map(|s| s.len()).collect();
        let (max, min) = (*lens.iter().max().unwrap(), *lens.iter().min().unwrap());
        assert!(
            (max as f64) <= 2.0 * min.max(1) as f64,
            "rebalanced under the threshold: {lens:?}"
        );
        // Every object is still served exactly once, with exact answers.
        let single: Vec<Vec<f32>> = (0..e.next_id).filter_map(|gid| e.get(gid)).collect();
        assert_eq!(single.len(), e.len());
        let oracle = BruteForce::new(single, L2);
        for q in [vec![3.0f32], vec![105.0f32], vec![11.0f32]] {
            let got = e.knn_query(&q, 5);
            let want = oracle.knn_query(&q, 5);
            for (g, w) in got.iter().zip(&want) {
                assert!((g.dist - w.dist).abs() < 1e-12, "post-recluster kNN");
            }
            assert_eq!(
                e.range_query(&q, 2.0).len(),
                oracle.range_query(&q, 2.0).len(),
                "post-recluster MRQ"
            );
        }
        let stats = e.update_stats();
        assert_eq!(stats.reclusters, 1);
        assert_eq!(stats.moved_objects, report.moved_objects);
    }

    #[test]
    fn compaction_renumbers_and_keeps_serving_exact() {
        // Matrix-bearing round-robin engine over BruteForce shards (the
        // non-adopting fallback: tombstones stay local, gids remap).
        let objects = grid(40);
        let matrix = SharedPivotMatrix::new(PivotMatrix::from_rows(
            2,
            objects.iter().map(|o| [o[0] as f64, o[1] as f64]),
        ));
        let mapper: Mapper<Vec<f32>> =
            Box::new(|o: &Vec<f32>, out: &mut Vec<f64>| out.extend([o[0] as f64, o[1] as f64]));
        let mut e = ShardedEngine::build_with_matrix(
            objects.clone(),
            matrix.clone(),
            mapper,
            &EngineConfig {
                shards: 3,
                threads: 1,
                ..EngineConfig::default()
            },
            |_, part, _| brute_factory(part),
        )
        .unwrap();
        let mut batch = UpdateBatch::new();
        for id in [1u32, 5, 9, 13, 17, 21] {
            batch.remove(id);
        }
        batch.insert(vec![500.0f32, 500.0]);
        let r = e.apply(&batch);
        assert_eq!((r.removes, r.inserts), (6, 1));
        assert_eq!(r.compactions, 0, "default policy never compacts");
        assert_eq!(matrix.rows(), 41, "tombstoned rows still in the matrix");

        // Survivors in ascending old-gid order are the expected new order.
        let survivors: Vec<Vec<f32>> = (0..41u32).filter_map(|g| e.get(g)).collect();
        let dropped = e.compact();
        assert_eq!(dropped, 6, "one dead row per remove");
        assert_eq!(matrix.rows(), 35, "matrix is dense again");
        assert_eq!(e.len(), 35);
        let stats = e.update_stats();
        assert_eq!((stats.compactions, stats.compacted_rows), (1, 6));
        // Ids are now dense 0..35 and every survivor is served under its
        // rank, identical to a fresh engine over the survivors.
        for (new_gid, o) in survivors.iter().enumerate() {
            assert_eq!(e.get(new_gid as u32).as_ref(), Some(o));
            assert_eq!(e.range_query(o, 0.0), vec![new_gid as u32]);
        }
        assert_eq!(e.get(35), None);
        // The next insert takes the next dense id and serving stays exact.
        let gid = e.insert(vec![600.0f32, 600.0]);
        assert_eq!(gid, 35);
        assert_eq!(matrix.rows(), 36);
        assert_eq!(e.range_query(&vec![600.0f32, 600.0], 0.5), vec![35]);
        // compact with nothing dead is a no-op.
        assert_eq!(e.compact(), 0);
    }

    #[test]
    fn compaction_policy_triggers_inside_apply() {
        let objects = grid(32);
        let matrix = SharedPivotMatrix::new(PivotMatrix::from_rows(
            2,
            objects.iter().map(|o| [o[0] as f64, o[1] as f64]),
        ));
        let mapper: Mapper<Vec<f32>> =
            Box::new(|o: &Vec<f32>, out: &mut Vec<f64>| out.extend([o[0] as f64, o[1] as f64]));
        let mut e = ShardedEngine::build_with_matrix(
            objects.clone(),
            matrix.clone(),
            mapper,
            &EngineConfig {
                shards: 2,
                threads: 1,
                compaction: CompactionPolicy {
                    max_dead_fraction: 0.25,
                    min_dead_rows: 4,
                },
                ..EngineConfig::default()
            },
            |_, part, _| brute_factory(part),
        )
        .unwrap();
        let mut batch = UpdateBatch::new();
        for id in 0..12u32 {
            batch.remove(id);
        }
        let r = e.apply(&batch);
        assert_eq!(r.removes, 12);
        assert_eq!(r.compactions, 1, "12/32 dead trips the 25% policy");
        assert_eq!(r.compacted_rows, 12);
        assert_eq!(matrix.rows(), 20);
        assert_eq!(e.len(), 20);
        assert_eq!(e.range_query(&e.get(0).unwrap(), 0.0), vec![0]);
    }

    #[test]
    fn build_stats_record_shard_construction() {
        let e = engine(100, 4, 2);
        let stats = e.build_stats();
        // BruteForce construction computes no distances but the stats must
        // exist and carry a wall-clock.
        assert_eq!(stats.build_compdists, 0);
        assert!(stats.build_wall_secs >= 0.0);
        // Serve copies the stats into the report.
        let out = e.serve(&[Query::range(vec![0.0f32, 0.0], 1.0)]);
        assert_eq!(out.report.build, stats);
    }

    #[test]
    fn zero_shards_is_an_error() {
        let r: Result<ShardedEngine<Vec<f32>>, EngineError<&str>> = ShardedEngine::build_with(
            grid(10),
            &EngineConfig {
                shards: 0,
                threads: 1,
                ..EngineConfig::default()
            },
            |_, part| brute_factory(part),
        );
        assert_eq!(r.err(), Some(EngineError::ZeroShards));
        let msg = format!("{}", EngineError::<&str>::ZeroShards);
        assert!(msg.contains("at least one shard"));
    }

    #[test]
    fn routed_engine_prunes_and_stays_exact() {
        let (objects, e) = routed_two_clusters();
        assert_eq!(e.policy(), PartitionPolicy::PivotSpace);
        let single = BruteForce::new(objects.clone(), L2);

        // Selective range query inside cluster A: shard 1 is pruned.
        let q = vec![3.0f32];
        let mut want = single.range_query(&q, 2.5);
        want.sort_unstable();
        assert_eq!(e.range_query(&q, 2.5), want);
        let (probed, pruned) = e.probe_counts();
        assert_eq!((probed, pruned), (1, 1), "one shard probed, one pruned");

        // kNN inside cluster A: best-first probes shard 0, whose 3 answers
        // (all within distance <= 3) prune shard 1 (lower bound ~90).
        e.reset_counters();
        let got = e.knn_query(&q, 3);
        let want_k = single.knn_query(&q, 3);
        assert_eq!(got.len(), 3);
        for (g, w) in got.iter().zip(&want_k) {
            assert_eq!(g.id, w.id);
            assert!((g.dist - w.dist).abs() < 1e-12);
        }
        let (probed, pruned) = e.probe_counts();
        assert_eq!((probed, pruned), (1, 1));

        // A huge radius must probe both shards and still be exact.
        e.reset_counters();
        let mut want_all = single.range_query(&q, 1000.0);
        want_all.sort_unstable();
        assert_eq!(e.range_query(&q, 1000.0), want_all);
        assert_eq!(e.probe_counts(), (2, 0));

        // Serve reports the probe/prune aggregate exactly.
        e.reset_counters();
        let batch = vec![
            Query::range(vec![3.0f32], 2.5),
            Query::range(vec![105.0f32], 2.5),
            Query::knn(vec![3.0f32], 3),
        ];
        let out = e.serve(&batch);
        assert_eq!(out.report.shards_probed, 3);
        assert_eq!(out.report.shards_pruned, 3);
        assert_eq!(
            out.report.shards_probed + out.report.shards_pruned,
            (batch.len() * e.num_shards()) as u64
        );
    }

    #[test]
    fn scratch_reuse_matches_fresh_execution() {
        let (objects, e) = routed_two_clusters();
        let mut scratch = EngineScratch::new();
        // Interleave query types so every buffer is reused dirty.
        for qi in [0usize, 11, 4, 19] {
            let range = Query::range(objects[qi].clone(), 3.0);
            let knn = Query::knn(objects[qi].clone(), 4);
            assert_eq!(e.execute_with(&range, &mut scratch), e.execute(&range));
            assert_eq!(e.execute_with(&knn, &mut scratch), e.execute(&knn));
        }
    }

    #[test]
    fn routed_insert_routes_and_extends() {
        let (_, mut e) = routed_two_clusters();
        // New object near cluster B must land in shard 1 and widen its box.
        let gid = e.insert(vec![120.0f32]);
        assert_eq!(e.get(gid), Some(vec![120.0f32]));
        e.reset_counters();
        let hits = e.range_query(&vec![120.0f32], 1.0);
        assert_eq!(hits, vec![gid]);
        let (probed, pruned) = e.probe_counts();
        assert_eq!((probed, pruned), (1, 1), "cluster A shard still pruned");
    }

    #[test]
    fn round_robin_counts_all_probes() {
        let e = engine(100, 4, 1);
        e.reset_counters();
        let out = e.serve(&[
            Query::range(vec![0.0f32, 0.0], 2.0),
            Query::knn(vec![1.0f32, 1.0], 3),
        ]);
        assert_eq!(out.report.shards_probed, 8, "2 queries x 4 shards");
        assert_eq!(out.report.shards_pruned, 0);
    }

    #[test]
    fn serve_returns_batch_order_and_exact_counts() {
        let objects = grid(200);
        let e = engine(200, 4, 3);
        e.reset_counters();
        let batch: Vec<Query<Vec<f32>>> = (0..50)
            .map(|i| {
                if i % 2 == 0 {
                    Query::range(objects[i].clone(), 3.0)
                } else {
                    Query::knn(objects[i].clone(), 5)
                }
            })
            .collect();
        let out = e.serve(&batch);
        assert_eq!(out.results.len(), 50);
        assert_eq!(out.report.queries, 50);
        assert_eq!(out.report.range_queries, 25);
        assert_eq!(out.report.knn_queries, 25);
        // Brute force computes n distances per query per shard; the whole
        // dataset is scanned for every query regardless of sharding.
        assert_eq!(out.report.cost.compdists, 50 * 200);
        // Aggregate equals the sum of shard counters.
        let sum: u64 = e.shard_counters().iter().map(|c| c.compdists).sum();
        assert_eq!(e.counters().compdists, sum);
        assert_eq!(sum, 50 * 200);
        // kNN answers carry k neighbors each.
        for (i, r) in out.results.iter().enumerate() {
            match r {
                QueryResult::Range(ids) => {
                    assert!(ids.windows(2).all(|w| w[0] < w[1]), "sorted unique");
                    assert!(ids.contains(&(i as u32)), "query object is a hit");
                }
                QueryResult::Knn(ns) => {
                    assert_eq!(ns.len(), 5);
                    assert_eq!(ns[0].id, i as u32);
                    assert!(ns.windows(2).all(|w| w[0] <= w[1]));
                }
                other => panic!("unbudgeted healthy serve degraded: {other:?}"),
            }
        }
        assert!(out.report.qps > 0.0);
        assert!(out.report.latency.max_secs >= out.report.latency.p50_secs);
    }

    #[test]
    fn updates_preserve_global_ids() {
        let mut e = engine(20, 3, 1);
        let o = e.get(7).expect("live object");
        assert!(e.remove(7));
        assert!(!e.remove(7));
        assert_eq!(e.len(), 19);
        assert!(!e.range_query(&o, 0.0).contains(&7));
        let gid = e.insert(o.clone());
        assert_eq!(gid, 20);
        assert!(e.range_query(&o, 0.0).contains(&gid));
        assert_eq!(e.get(gid), Some(o));
    }

    #[test]
    fn shard_clamp_and_empty_batch() {
        let e = engine(3, 8, 2);
        assert_eq!(e.num_shards(), 3, "shards clamp to n");
        let out = e.serve(&[]);
        assert_eq!(out.results.len(), 0);
        assert_eq!(out.report.queries, 0);
        assert_eq!(out.report.latency, LatencySummary::default());
    }

    #[test]
    fn build_error_propagates() {
        let r: Result<ShardedEngine<Vec<f32>>, EngineError<&str>> = ShardedEngine::build_with(
            grid(10),
            &EngineConfig {
                shards: 2,
                threads: 1,
                ..EngineConfig::default()
            },
            |s, part| {
                if s == 1 {
                    Err("nope")
                } else {
                    brute_factory(part)
                }
            },
        );
        assert_eq!(r.err(), Some(EngineError::Build("nope")));
    }

    #[test]
    fn untraced_serve_captures_nothing() {
        let (objects, e) = routed_two_clusters();
        assert_eq!(e.trace_policy(), TracePolicy::disabled());
        let out = e.serve(&[Query::Range {
            q: objects[0].clone(),
            radius: 2.0,
        }]);
        assert!(out.report.traces.is_empty());
    }

    #[test]
    fn trace_every_query_sums_exactly_to_report() {
        // One worker thread: per-probe counter deltas cannot interleave, so
        // summing the per-trace counters must reproduce the report totals.
        let (objects, e) = routed_two_clusters();
        e.set_trace_policy(TracePolicy::sample(1).with_max_captured(usize::MAX));
        let batch: Vec<Query<Vec<f32>>> = (0..10)
            .map(|i| {
                if i % 2 == 0 {
                    Query::Range {
                        q: objects[i].clone(),
                        radius: 2.0,
                    }
                } else {
                    Query::Knn {
                        q: objects[i].clone(),
                        k: 3,
                    }
                }
            })
            .collect();
        let out = e.serve(&batch);
        let r = &out.report;
        assert_eq!(r.traces.len(), batch.len(), "every query captured");
        for (i, t) in r.traces.iter().enumerate() {
            assert_eq!(t.query, i, "batch order");
            assert!(t.sampled && !t.slow);
        }
        let probed: u64 = r.traces.iter().map(|t| t.shards_probed()).sum();
        let pruned: u64 = r.traces.iter().map(|t| t.shards_pruned()).sum();
        let dists: u64 = r.traces.iter().map(|t| t.compdists()).sum();
        let pages: u64 = r.traces.iter().map(|t| t.page_accesses()).sum();
        let results: u64 = r.traces.iter().map(|t| t.results()).sum();
        assert_eq!(probed, r.shards_probed);
        assert_eq!(pruned, r.shards_pruned);
        assert_eq!(dists, r.cost.compdists);
        assert_eq!(pages, r.cost.page_accesses());
        assert_eq!(results, r.total_results as u64);
        // The two clusters are far apart, so routing pruned something and
        // the explain output shows both verdicts.
        assert!(pruned > 0, "two-cluster routing must prune");
        let rendered = r.traces[0].explain();
        assert!(rendered.contains("probe #0"), "{rendered}");
        assert!(rendered.contains("pruned"), "{rendered}");
    }

    #[test]
    fn slow_query_capture_is_retroactive() {
        let (objects, e) = routed_two_clusters();
        // 1ns threshold: every query qualifies once its wall is known —
        // without being a 1-in-N sample.
        e.set_trace_policy(TracePolicy {
            sample_every: 0,
            slow_query_nanos: 1,
            max_captured: 3,
        });
        let batch: Vec<Query<Vec<f32>>> = (0..8)
            .map(|i| Query::Knn {
                q: objects[i].clone(),
                k: 2,
            })
            .collect();
        let out = e.serve(&batch);
        assert_eq!(out.report.traces.len(), 3, "cap respected");
        for t in &out.report.traces {
            assert!(t.slow && !t.sampled);
            assert!(t.wall_nanos >= 1);
            assert!(t.explain().contains("[slow]"));
        }
        // An impossible threshold captures nothing.
        e.set_trace_policy(TracePolicy {
            sample_every: 0,
            slow_query_nanos: u64::MAX,
            max_captured: 3,
        });
        assert!(e.serve(&batch).report.traces.is_empty());
    }

    #[test]
    fn tracing_changes_no_results() {
        let (objects, e) = routed_two_clusters();
        let batch: Vec<Query<Vec<f32>>> = (0..12)
            .map(|i| {
                if i % 3 == 0 {
                    Query::Range {
                        q: objects[i].clone(),
                        radius: 3.0,
                    }
                } else {
                    Query::Knn {
                        q: objects[i].clone(),
                        k: 4,
                    }
                }
            })
            .collect();
        let plain = e.serve(&batch);
        e.set_trace_policy(TracePolicy::sample(1));
        let traced = e.serve(&batch);
        assert_eq!(plain.results, traced.results);
        assert_eq!(plain.report.shards_probed, traced.report.shards_probed);
        assert_eq!(plain.report.shards_pruned, traced.report.shards_pruned);
        assert_eq!(plain.report.cost, traced.report.cost);
        assert_eq!(
            traced.report.traces.len(),
            TracePolicy::disabled().max_captured
        );
    }

    #[test]
    fn round_robin_traces_probe_every_shard() {
        let e = engine(40, 4, 1);
        e.set_trace_policy(TracePolicy::sample(1).with_max_captured(16));
        let q = grid(40)[7].clone();
        let out = e.serve(&[
            Query::Range {
                q: q.clone(),
                radius: 2.0,
            },
            Query::Knn { q, k: 5 },
        ]);
        assert_eq!(out.report.traces.len(), 2);
        for t in &out.report.traces {
            assert_eq!(t.shards_probed(), 4, "round-robin probes all shards");
            assert_eq!(t.shards_pruned(), 0);
            assert!(t.explain().contains("probed 4/4 shards"));
        }
    }

    use crate::robust::Completeness;

    /// Runs `f` with a panic hook that swallows the intentional
    /// ("injected") panics these tests contain, so the suite's output
    /// stays readable. Serialized: the hook is process-global.
    fn silent_panics<T>(f: impl FnOnce() -> T) -> T {
        static HOOK: Mutex<()> = Mutex::new(());
        let _g = HOOK.lock().unwrap_or_else(|e| e.into_inner());
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .map(|s| s.contains("injected"))
                .or_else(|| {
                    info.payload()
                        .downcast_ref::<&str>()
                        .map(|s| s.contains("injected"))
                })
                .unwrap_or(false);
            if !injected {
                eprintln!("{info}");
            }
        }));
        let out = f();
        std::panic::set_hook(prev);
        out
    }

    /// A shard index whose query paths always panic — the tier-1 stand-in
    /// for a faulty distance function (the feature-gated chaos suite
    /// drives the same machinery through `pmi_metric::fault`).
    struct PanickyIndex {
        inner: Box<dyn MetricIndex<Vec<f32>>>,
    }

    impl MetricIndex<Vec<f32>> for PanickyIndex {
        fn name(&self) -> &str {
            "panicky"
        }
        fn len(&self) -> usize {
            self.inner.len()
        }
        fn range_query(&self, _q: &Vec<f32>, _r: f64) -> Vec<ObjId> {
            panic!("injected: shard range panic")
        }
        fn knn_query(&self, _q: &Vec<f32>, _k: usize) -> Vec<Neighbor> {
            panic!("injected: shard knn panic")
        }
        fn insert(&mut self, o: Vec<f32>) -> ObjId {
            self.inner.insert(o)
        }
        fn remove(&mut self, id: ObjId) -> bool {
            self.inner.remove(id)
        }
        fn get(&self, id: ObjId) -> Option<Vec<f32>> {
            self.inner.get(id)
        }
        fn storage(&self) -> StorageFootprint {
            self.inner.storage()
        }
        fn counters(&self) -> Counters {
            self.inner.counters()
        }
        fn reset_counters(&self) {
            self.inner.reset_counters()
        }
    }

    /// 4-shard round-robin engine whose shard 1 panics on every query.
    fn panicky_engine(
        faults: FaultPolicy,
        threads: usize,
    ) -> (Vec<Vec<f32>>, ShardedEngine<Vec<f32>>) {
        let objects = grid(40);
        let e = ShardedEngine::build_with(
            objects.clone(),
            &EngineConfig {
                shards: 4,
                threads,
                faults,
                ..EngineConfig::default()
            },
            |s, part| {
                let inner = Box::new(BruteForce::new(part, L2)) as Box<dyn MetricIndex<_>>;
                Ok::<_, String>(if s == 1 {
                    Box::new(PanickyIndex { inner }) as Box<dyn MetricIndex<_>>
                } else {
                    inner
                })
            },
        )
        .unwrap();
        (objects, e)
    }

    #[test]
    fn panicking_shard_is_contained_then_quarantined_then_healed() {
        silent_panics(|| {
            let (objects, e) = panicky_engine(
                FaultPolicy {
                    quarantine_after: 2,
                },
                1,
            );
            let batch: Vec<_> = (0..6)
                .map(|i| Query::range(objects[i].clone(), 1.0))
                .collect();
            let out = e.serve(&batch);
            // threads:1 ⇒ deterministic claim order. Queries 0 and 1 panic
            // probing shard 1 and are contained; the second panic trips the
            // quarantine, so queries 2.. route around the shard and come
            // back Partial. The batch as a whole completes.
            assert_eq!(out.results.len(), 6);
            for r in &out.results[..2] {
                assert_eq!(
                    *r,
                    QueryResult::Failed(QueryError::Panicked { shard: Some(1) })
                );
            }
            for r in &out.results[2..] {
                match r {
                    QueryResult::PartialRange(_, d) => {
                        assert_eq!(d.shards_skipped, 1);
                        assert_eq!(d.reason, DegradeReason::Quarantined);
                    }
                    other => panic!("expected Partial after quarantine, got {other:?}"),
                }
            }
            assert_eq!(out.report.failed, 2);
            assert_eq!(out.report.degraded, 4);
            assert_eq!(e.quarantined_shards(), vec![1]);
            let states = e.fault_states();
            assert_eq!(states[1].panics, 2);
            assert!(states[1].quarantined);
            assert!(!states[0].quarantined && !states[2].quarantined);
            // Single-query paths route around the quarantined shard too.
            let ids = e.range_query(&objects[0], 1.0);
            assert!(matches!(
                e.execute(&Query::range(objects[0].clone(), 1.0)),
                QueryResult::PartialRange(ref p, _) if *p == ids
            ));
            let _ = e.knn_query(&objects[0], 3);
            // heal() clears the state and planning probes everything again
            // (so the faulty shard panics anew).
            assert_eq!(e.heal(), 1);
            assert!(e.quarantined_shards().is_empty());
            assert_eq!(e.fault_states()[1].panics, 0);
            let out2 = e.serve(&batch[..1]);
            assert_eq!(
                out2.results[0],
                QueryResult::Failed(QueryError::Panicked { shard: Some(1) })
            );
        });
    }

    #[test]
    fn malformed_queries_fail_per_item() {
        let objects = grid(50);
        let mut e = engine(50, 2, 1);
        e.set_query_validator(|o: &Vec<f32>| o.iter().all(|c| c.is_finite()));
        let valid = Query::range(objects[3].clone(), 2.0);
        let batch = vec![
            Query::range(objects[0].clone(), f64::NAN),
            Query::range(objects[1].clone(), -1.0),
            Query::knn(objects[2].clone(), 0),
            Query::knn(vec![f32::NAN, 0.0], 3),
            valid.clone(),
        ];
        let out = e.serve(&batch);
        assert_eq!(out.results[0], QueryResult::Failed(QueryError::NanRadius));
        assert_eq!(
            out.results[1],
            QueryResult::Failed(QueryError::NegativeRadius)
        );
        assert_eq!(out.results[2], QueryResult::Failed(QueryError::ZeroK));
        assert_eq!(
            out.results[3],
            QueryResult::Failed(QueryError::InvalidObject)
        );
        assert_eq!(out.report.failed, 4);
        assert_eq!(out.report.degraded + out.report.shed, 0);
        // The valid query is identical to a malformed-free serve.
        let clean = e.serve(std::slice::from_ref(&valid));
        assert_eq!(out.results[4], clean.results[0]);
        // +∞ radius stays a *valid* radius: everything matches.
        let all = e.serve(&[Query::range(objects[0].clone(), f64::INFINITY)]);
        assert_eq!(all.results[0].len(), 50);
        // Completeness/error accessors.
        assert_eq!(out.results[0].completeness(), Completeness::Failed);
        assert_eq!(out.results[0].error(), Some(QueryError::NanRadius));
        assert_eq!(clean.results[0].completeness(), Completeness::Exact);
        assert_eq!(clean.results[0].error(), None);
    }

    #[test]
    fn compdist_cap_degrades_to_partial_subset() {
        let objects = grid(200);
        let e = engine(200, 4, 1);
        let batch: Vec<_> = (0..10)
            .map(|i| Query::range(objects[i].clone(), 3.0))
            .collect();
        let exact = e.serve(&batch);
        e.set_budget(ServeBudget {
            query: QueryBudget {
                wall_nanos: 0,
                compdists: 1,
            },
            batch_wall_nanos: 0,
        });
        assert!(e.serve_budget().enabled());
        let capped = e.serve(&batch);
        assert_eq!(capped.report.degraded, 10);
        for (p, x) in capped.results.iter().zip(&exact.results) {
            let QueryResult::PartialRange(ids, d) = p else {
                panic!("expected PartialRange, got {p:?}");
            };
            assert_eq!(d.reason, DegradeReason::CompdistCap);
            assert_eq!(d.shards_skipped, 3, "the first probe spends past the cap");
            let exact_ids = x.as_range().unwrap();
            assert!(
                ids.iter().all(|id| exact_ids.contains(id)),
                "partial range ⊆ exact"
            );
            assert_eq!(
                p.completeness(),
                Completeness::Partial {
                    shards_skipped: 3,
                    reason: DegradeReason::CompdistCap
                }
            );
        }
        // A budget that never binds is exact — and swapping back to
        // unlimited at runtime restores the unguarded path.
        e.set_budget(ServeBudget {
            query: QueryBudget {
                wall_nanos: 0,
                compdists: u64::MAX,
            },
            batch_wall_nanos: 0,
        });
        let huge = e.serve(&batch);
        assert_eq!(huge.results, exact.results);
        assert_eq!(huge.report.degraded, 0);
        e.set_budget(ServeBudget::unlimited());
        assert_eq!(e.serve(&batch).results, exact.results);
    }

    #[test]
    fn deadlines_degrade_and_batch_deadline_sheds() {
        let objects = grid(100);
        let e = engine(100, 4, 1);
        let batch: Vec<_> = (0..8)
            .map(|i| Query::range(objects[i].clone(), 2.0))
            .collect();
        // A 1 ns per-query deadline is blown before the first probe: every
        // query degrades to an empty partial answer (still not an error).
        e.set_budget(ServeBudget {
            query: QueryBudget {
                wall_nanos: 1,
                compdists: 0,
            },
            batch_wall_nanos: 0,
        });
        let out = e.serve(&batch);
        assert_eq!(out.report.degraded, 8);
        for r in &out.results {
            let QueryResult::PartialRange(ids, d) = r else {
                panic!("expected PartialRange, got {r:?}");
            };
            assert!(ids.is_empty());
            assert_eq!(d.reason, DegradeReason::Deadline);
            assert_eq!(d.shards_skipped, 4);
        }
        // A 1 ns *batch* deadline sheds every query without executing it.
        e.set_budget(ServeBudget {
            query: QueryBudget::unlimited(),
            batch_wall_nanos: 1,
        });
        let out = e.serve(&batch);
        assert_eq!(out.report.shed, 8);
        assert!(out.results.iter().all(|r| *r == QueryResult::Shed));
        assert_eq!(out.report.cost.compdists, 0, "no shard was touched");
        assert_eq!(out.results[0].completeness(), Completeness::Shed);
        assert_eq!(out.results[0].len(), 0);
    }

    #[test]
    fn apply_reports_per_op_errors() {
        let mut e = engine(20, 2, 1);
        e.set_query_validator(|o: &Vec<f32>| o.iter().all(|c| c.is_finite()));
        let mut b = UpdateBatch::new();
        b.insert(vec![1.0, 1.0]) // op 0: fine
            .insert(vec![f32::NAN, 0.0]) // op 1: rejected by the validator
            .remove(3) // op 2: fine
            .remove(3) // op 3: duplicate remove
            .remove(999); // op 4: never existed
        let r = e.apply(&b);
        assert_eq!(r.inserts, 1);
        assert_eq!(r.removes, 1);
        assert_eq!(
            r.missing_removes, 2,
            "counts duplicate + unknown, as before"
        );
        assert_eq!(
            r.op_errors,
            vec![
                OpError {
                    op: 1,
                    kind: OpErrorKind::InvalidObject
                },
                OpError {
                    op: 3,
                    kind: OpErrorKind::DuplicateRemove(3)
                },
                OpError {
                    op: 4,
                    kind: OpErrorKind::UnknownGid(999)
                },
            ]
        );
        assert_eq!(e.len(), 20);
        assert!(format!("{r}").contains("op errors: 3"));
        // An all-valid batch reports no errors.
        let mut ok = UpdateBatch::new();
        ok.insert(vec![2.0, 2.0]).remove(5);
        assert!(e.apply(&ok).op_errors.is_empty());
    }

    #[test]
    fn auto_scheduling_follows_the_cost_model() {
        let one = &[Query::range(vec![0.0f32, 0.0], 1.0)];

        // Small engine: a per-query fan-out can't amortize its setup, so
        // Auto stays query-parallel even for a narrow batch on a wide pool.
        let e = engine(40, 4, 4);
        assert_eq!(e.serve(one).report.strategy, SchedStrategy::QueryParallel);

        // Large engine + batch narrower than the pool: Auto fans out.
        let e = engine(SHARD_PARALLEL_MIN_ROWS, 4, 4);
        let out = e.serve(one);
        assert_eq!(out.report.strategy, SchedStrategy::ShardParallel);
        assert_eq!(out.report.threads, 4, "reports the fan-out width");
        assert!(format!("{}", out.report).contains("shard-parallel scheduling"));

        // Same engine, batch at least as wide as the pool: whole queries
        // saturate the workers — query-parallel again.
        let wide: Vec<_> = (0..4).map(|_| one[0].clone()).collect();
        assert_eq!(e.serve(&wide).report.strategy, SchedStrategy::QueryParallel);

        // Budgets pin the claim loop regardless of size or batch shape.
        e.set_budget(ServeBudget {
            query: QueryBudget {
                wall_nanos: u64::MAX / 4,
                compdists: 0,
            },
            batch_wall_nanos: 0,
        });
        assert_eq!(e.serve(one).report.strategy, SchedStrategy::QueryParallel);
        e.set_budget(ServeBudget::unlimited());
        assert_eq!(e.serve(one).report.strategy, SchedStrategy::ShardParallel);

        // Forcing the policy overrides the size heuristic but never the
        // feasibility guards (one worker / one shard serve query-parallel).
        let mut small = engine(40, 4, 4);
        small.set_sched(SchedPolicy::ShardParallel);
        assert_eq!(small.sched_policy(), SchedPolicy::ShardParallel);
        assert_eq!(
            small.serve(one).report.strategy,
            SchedStrategy::ShardParallel
        );
        let mut serial = engine(40, 4, 1);
        serial.set_sched(SchedPolicy::ShardParallel);
        assert_eq!(
            serial.serve(one).report.strategy,
            SchedStrategy::QueryParallel
        );
        let mut fused = engine(40, 1, 4);
        fused.set_sched(SchedPolicy::ShardParallel);
        assert_eq!(
            fused.serve(one).report.strategy,
            SchedStrategy::QueryParallel
        );
    }

    #[test]
    fn both_strategies_serve_identical_answers() {
        let objects = grid(60);
        let batch: Vec<Query<Vec<f32>>> = (0..12)
            .map(|i| {
                if i % 2 == 0 {
                    Query::range(objects[i * 3].clone(), 3.0)
                } else {
                    Query::knn(objects[i * 3].clone(), 5)
                }
            })
            .collect();
        let mut e = engine(60, 3, 2);
        e.set_sched(SchedPolicy::QueryParallel);
        let qp = e.serve(&batch);
        e.set_sched(SchedPolicy::ShardParallel);
        let sp = e.serve(&batch);
        assert_eq!(qp.report.strategy, SchedStrategy::QueryParallel);
        assert_eq!(sp.report.strategy, SchedStrategy::ShardParallel);
        assert_eq!(qp.results, sp.results);
        assert_eq!(sp.report.failed, 0);
        assert_eq!(sp.report.shed, 0);
        // Both paths validate: a malformed query fails per-item on the
        // fanned path too.
        let bad = e.serve(&[Query::range(objects[0].clone(), -1.0)]);
        assert_eq!(
            bad.results[0],
            QueryResult::Failed(QueryError::NegativeRadius)
        );
    }
}
