//! The sharded engine: partitioning, the scoped-thread worker pool, and
//! batch serving with exact aggregate cost accounting.

use crate::merge::{merge_range, TopK};
use crate::query::{Query, QueryResult};
use crate::report::{LatencySummary, ServeReport};
use crate::shard::{partition_round_robin, Partition, Shard};
use pmi_metric::{Counters, MetricIndex, Neighbor, ObjId, StorageFootprint};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Engine shape: how many partitions and how many worker threads.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Number of shards `P`. Clamped to `1..=n` at build time so no shard
    /// is ever empty.
    pub shards: usize,
    /// Worker threads for batch serving and parallel shard builds;
    /// `0` means one per available hardware thread.
    pub threads: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            shards: 4,
            threads: 0,
        }
    }
}

fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// The answers plus the measurement of one served batch.
#[derive(Debug)]
pub struct BatchOutcome {
    /// Per-query merged results, in batch order.
    pub results: Vec<QueryResult>,
    /// Throughput / latency / cost measurement.
    pub report: ServeReport,
}

/// A dataset sharded across `P` independent [`MetricIndex`]es, serving
/// batches of mixed range / kNN queries concurrently.
///
/// Every query probes every shard (shards partition the data, so all hold
/// candidates); per-shard partial answers merge into one global answer —
/// a sorted union for range queries, a bounded-heap top-k for kNN. Because
/// shards are disjoint and each shard's own query processing is exact, the
/// merged answers are identical to a single unsharded index over the same
/// data (ties at the k-th distance excepted, as the trait allows either).
pub struct ShardedEngine<O> {
    shards: Vec<Shard<O>>,
    threads: usize,
    /// Global id → (shard, local id) for live objects.
    locator: HashMap<ObjId, (u32, ObjId)>,
    next_id: ObjId,
}

impl<O> ShardedEngine<O> {
    /// Builds an engine by partitioning `objects` round-robin into
    /// `cfg.shards` parts and handing each part to `factory`, which returns
    /// the shard's index (the `pmi` facade passes `builder::build_index`
    /// here). Shard builds run in parallel on scoped threads when more than
    /// one worker thread is configured — the paper's §6.2 observation that
    /// per-object pivot distances parallelize trivially.
    ///
    /// The factory receives `(shard_number, partition)` and must insert the
    /// partition in order, so that local id `i` is the `i`-th object of the
    /// partition (every index in this workspace does).
    pub fn build_with<E, F>(objects: Vec<O>, cfg: &EngineConfig, factory: F) -> Result<Self, E>
    where
        O: Send,
        E: Send,
        F: Fn(usize, Vec<O>) -> Result<Box<dyn MetricIndex<O>>, E> + Sync,
    {
        let n = objects.len();
        let num_shards = cfg.shards.max(1).min(n.max(1));
        let threads = resolve_threads(cfg.threads);
        let parts = partition_round_robin(objects, num_shards);

        let built: Vec<Result<Shard<O>, E>> = if threads <= 1 || num_shards == 1 {
            parts
                .into_iter()
                .enumerate()
                .map(|(s, (objs, gids))| factory(s, objs).map(|idx| Shard::new(idx, gids)))
                .collect()
        } else {
            // At most `threads` concurrent builders: distribute the shard
            // slots round-robin across worker buckets.
            let factory = &factory;
            let workers = threads.min(num_shards);
            let mut buckets: Vec<Vec<(usize, Partition<O>)>> =
                (0..workers).map(|_| Vec::new()).collect();
            for (s, part) in parts.into_iter().enumerate() {
                buckets[s % workers].push((s, part));
            }
            let mut slots: Vec<Option<Result<Shard<O>, E>>> =
                (0..num_shards).map(|_| None).collect();
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = buckets
                    .into_iter()
                    .map(|bucket| {
                        scope.spawn(move |_| {
                            bucket
                                .into_iter()
                                .map(|(s, (objs, gids))| {
                                    (s, factory(s, objs).map(|idx| Shard::new(idx, gids)))
                                })
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                for h in handles {
                    for (s, r) in h.join().expect("shard build thread panicked") {
                        slots[s] = Some(r);
                    }
                }
            })
            .expect("shard build scope panicked");
            slots
                .into_iter()
                .map(|r| r.expect("every shard slot built exactly once"))
                .collect()
        };

        let mut shards = Vec::with_capacity(num_shards);
        for b in built {
            shards.push(b?);
        }

        let mut locator = HashMap::with_capacity(n);
        for (s, shard) in shards.iter().enumerate() {
            for local in 0..shard.len() {
                locator.insert(shard.global_id(local as ObjId), (s as u32, local as ObjId));
            }
        }

        Ok(ShardedEngine {
            shards,
            threads,
            locator,
            next_id: n as ObjId,
        })
    }

    /// Total live objects across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// Whether the engine holds no objects.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of shards `P`.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Resolved worker thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The shards, for inspection.
    pub fn shards(&self) -> &[Shard<O>] {
        &self.shards
    }

    /// Aggregate cost counters: the exact sum of every shard's atomic
    /// counters.
    pub fn counters(&self) -> Counters {
        self.shards
            .iter()
            .fold(Counters::default(), |acc, s| acc + s.counters())
    }

    /// Per-shard counter snapshots, in shard order.
    pub fn shard_counters(&self) -> Vec<Counters> {
        self.shards.iter().map(|s| s.counters()).collect()
    }

    /// Resets every shard's counters.
    pub fn reset_counters(&self) {
        for s in &self.shards {
            s.reset_counters();
        }
    }

    /// Aggregate storage footprint.
    pub fn storage(&self) -> StorageFootprint {
        self.shards
            .iter()
            .fold(StorageFootprint::default(), |acc, s| acc + s.storage())
    }

    /// Configures the page cache on every shard (the paper's 128 KB MkNNQ
    /// cache, applied per shard).
    pub fn set_page_cache(&self, bytes: usize) {
        for s in &self.shards {
            s.set_page_cache(bytes);
        }
    }

    /// Inserts an object into the currently smallest shard, returning its
    /// global id.
    pub fn insert(&mut self, o: O) -> ObjId {
        let (si, _) = self
            .shards
            .iter()
            .enumerate()
            .min_by_key(|(_, s)| s.len())
            .expect("engine always has at least one shard");
        let gid = self.next_id;
        self.next_id += 1;
        let local = self.shards[si].insert(o, gid);
        self.locator.insert(gid, (si as u32, local));
        gid
    }

    /// Removes an object by global id; returns whether it was present.
    pub fn remove(&mut self, id: ObjId) -> bool {
        match self.locator.remove(&id) {
            Some((s, local)) => self.shards[s as usize].remove_local(local),
            None => false,
        }
    }

    /// Fetches a copy of a live object by global id.
    pub fn get(&self, id: ObjId) -> Option<O> {
        let (s, local) = *self.locator.get(&id)?;
        self.shards[s as usize].get_local(local)
    }

    /// Answers one query by probing shards serially on the calling thread
    /// (the per-worker path of [`serve`](Self::serve)).
    pub fn execute(&self, query: &Query<O>) -> QueryResult {
        match query {
            Query::Range { q, radius } => QueryResult::Range(self.range_serial(q, *radius)),
            Query::Knn { q, k } => QueryResult::Knn(self.knn_serial(q, *k).into_sorted()),
        }
    }

    /// Probes every shard serially and merges the range union.
    fn range_serial(&self, q: &O, radius: f64) -> Vec<ObjId> {
        merge_range(
            self.shards
                .iter()
                .map(|s| s.range_global(q, radius))
                .collect(),
        )
    }

    /// Probes every shard serially into one bounded top-k collector.
    fn knn_serial(&self, q: &O, k: usize) -> TopK {
        let mut topk = TopK::new(k);
        for s in &self.shards {
            s.knn_into(q, k, &mut topk);
        }
        topk
    }
}

impl<O: Send + Sync> ShardedEngine<O> {
    /// Metric range query `MRQ(q, r)`, fanned across the shards on at most
    /// `threads` scoped worker threads (the low-latency path for a single
    /// query). Returns global ids sorted ascending.
    pub fn range_query(&self, q: &O, radius: f64) -> Vec<ObjId> {
        if self.shards.len() == 1 || self.threads <= 1 {
            return self.range_serial(q, radius);
        }
        let chunk = self.shards.len().div_ceil(self.threads);
        let partials: Vec<Vec<ObjId>> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .chunks(chunk)
                .map(|group| {
                    scope.spawn(move |_| {
                        group
                            .iter()
                            .map(|s| s.range_global(q, radius))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("range worker panicked"))
                .collect()
        })
        .expect("range scope panicked");
        merge_range(partials)
    }

    /// Metric kNN query `MkNNQ(q, k)`, fanned across the shards on at most
    /// `threads` scoped worker threads, merged through a bounded binary
    /// heap. Sorted ascending by `(distance, global id)`.
    pub fn knn_query(&self, q: &O, k: usize) -> Vec<Neighbor> {
        if self.shards.len() == 1 || self.threads <= 1 {
            return self.knn_serial(q, k).into_sorted();
        }
        let chunk = self.shards.len().div_ceil(self.threads);
        let partials: Vec<Vec<Neighbor>> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .chunks(chunk)
                .map(|group| {
                    scope.spawn(move |_| {
                        // Each worker pre-merges its shard group, so at most
                        // k candidates per group reach the global merge.
                        let mut topk = TopK::new(k);
                        for s in group {
                            s.knn_into(q, k, &mut topk);
                        }
                        topk.into_sorted()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("knn worker panicked"))
                .collect()
        })
        .expect("knn scope panicked");
        let mut topk = TopK::new(k);
        for p in partials {
            topk.offer_all(p);
        }
        topk.into_sorted()
    }

    /// Serves a batch of mixed queries on the worker pool: each worker
    /// claims queries from a shared atomic cursor, executes them against
    /// every shard, merges, and records the per-query latency from a
    /// monotonic clock. Returns the merged answers in batch order plus a
    /// [`ServeReport`].
    ///
    /// The report's `cost` is the delta of the aggregate counters across
    /// the batch — exact for everything this engine's shards executed in
    /// the batch window, because every shard counts atomically. If the
    /// caller runs *other* queries on the same engine concurrently with
    /// this batch (another `serve`, or single-query calls from another
    /// thread), their cost lands in the same window and is included;
    /// serve one batch at a time for per-batch attribution.
    pub fn serve(&self, batch: &[Query<O>]) -> BatchOutcome {
        let workers = self.threads.min(batch.len()).max(1);
        let before = self.counters();
        let cursor = AtomicUsize::new(0);
        let t0 = Instant::now();

        let collected: Vec<Vec<(usize, QueryResult, u64)>> = if workers <= 1 {
            vec![batch
                .iter()
                .enumerate()
                .map(|(i, q)| {
                    let q0 = Instant::now();
                    let res = self.execute(q);
                    (i, res, q0.elapsed().as_nanos() as u64)
                })
                .collect()]
        } else {
            crossbeam::thread::scope(|scope| {
                let cursor = &cursor;
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        scope.spawn(move |_| {
                            let mut local = Vec::new();
                            loop {
                                let i = cursor.fetch_add(1, Ordering::Relaxed);
                                if i >= batch.len() {
                                    break;
                                }
                                let q0 = Instant::now();
                                let res = self.execute(&batch[i]);
                                local.push((i, res, q0.elapsed().as_nanos() as u64));
                            }
                            local
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("serve worker panicked"))
                    .collect()
            })
            .expect("serve scope panicked")
        };

        let wall_secs = t0.elapsed().as_secs_f64();
        let cost = self.counters().since(&before);

        let mut results: Vec<Option<QueryResult>> = (0..batch.len()).map(|_| None).collect();
        let mut nanos = Vec::with_capacity(batch.len());
        let mut total_results = 0usize;
        for (i, res, ns) in collected.into_iter().flatten() {
            total_results += res.len();
            nanos.push(ns);
            results[i] = Some(res);
        }
        let results: Vec<QueryResult> = results
            .into_iter()
            .map(|r| r.expect("every batch slot served exactly once"))
            .collect();

        let range_queries = batch.iter().filter(|q| q.is_range()).count();
        let report = ServeReport {
            queries: batch.len(),
            range_queries,
            knn_queries: batch.len() - range_queries,
            total_results,
            shards: self.shards.len(),
            threads: workers,
            wall_secs,
            qps: if wall_secs > 0.0 {
                batch.len() as f64 / wall_secs
            } else {
                0.0
            },
            latency: LatencySummary::from_nanos(nanos),
            cost,
        };
        BatchOutcome { results, report }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmi_metric::{BruteForce, L2};

    fn grid(n: usize) -> Vec<Vec<f32>> {
        (0..n)
            .map(|i| vec![(i % 37) as f32, (i / 37) as f32])
            .collect()
    }

    fn brute_factory(part: Vec<Vec<f32>>) -> Result<Box<dyn MetricIndex<Vec<f32>>>, &'static str> {
        Ok(Box::new(BruteForce::new(part, L2)))
    }

    fn engine(n: usize, shards: usize, threads: usize) -> ShardedEngine<Vec<f32>> {
        ShardedEngine::build_with(grid(n), &EngineConfig { shards, threads }, |_, part| {
            brute_factory(part)
        })
        .unwrap()
    }

    #[test]
    fn sharded_matches_unsharded() {
        let objects = grid(300);
        let single = BruteForce::new(objects.clone(), L2);
        for shards in [1usize, 2, 4, 7] {
            let e = engine(300, shards, 2);
            assert_eq!(e.len(), 300);
            assert_eq!(e.num_shards(), shards);
            for qi in [0usize, 17, 299] {
                let mut want = single.range_query(&objects[qi], 5.0);
                want.sort_unstable();
                assert_eq!(e.range_query(&objects[qi], 5.0), want, "P={shards}");
                let want_k = single.knn_query(&objects[qi], 12);
                let got_k = e.knn_query(&objects[qi], 12);
                assert_eq!(got_k.len(), want_k.len());
                for (g, w) in got_k.iter().zip(&want_k) {
                    assert_eq!(g.id, w.id, "P={shards} qi={qi}");
                    assert!((g.dist - w.dist).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn serve_returns_batch_order_and_exact_counts() {
        let objects = grid(200);
        let e = engine(200, 4, 3);
        e.reset_counters();
        let batch: Vec<Query<Vec<f32>>> = (0..50)
            .map(|i| {
                if i % 2 == 0 {
                    Query::range(objects[i].clone(), 3.0)
                } else {
                    Query::knn(objects[i].clone(), 5)
                }
            })
            .collect();
        let out = e.serve(&batch);
        assert_eq!(out.results.len(), 50);
        assert_eq!(out.report.queries, 50);
        assert_eq!(out.report.range_queries, 25);
        assert_eq!(out.report.knn_queries, 25);
        // Brute force computes n distances per query per shard; the whole
        // dataset is scanned for every query regardless of sharding.
        assert_eq!(out.report.cost.compdists, 50 * 200);
        // Aggregate equals the sum of shard counters.
        let sum: u64 = e.shard_counters().iter().map(|c| c.compdists).sum();
        assert_eq!(e.counters().compdists, sum);
        assert_eq!(sum, 50 * 200);
        // kNN answers carry k neighbors each.
        for (i, r) in out.results.iter().enumerate() {
            match r {
                QueryResult::Range(ids) => {
                    assert!(ids.windows(2).all(|w| w[0] < w[1]), "sorted unique");
                    assert!(ids.contains(&(i as u32)), "query object is a hit");
                }
                QueryResult::Knn(ns) => {
                    assert_eq!(ns.len(), 5);
                    assert_eq!(ns[0].id, i as u32);
                    assert!(ns.windows(2).all(|w| w[0] <= w[1]));
                }
            }
        }
        assert!(out.report.qps > 0.0);
        assert!(out.report.latency.max_secs >= out.report.latency.p50_secs);
    }

    #[test]
    fn updates_preserve_global_ids() {
        let mut e = engine(20, 3, 1);
        let o = e.get(7).expect("live object");
        assert!(e.remove(7));
        assert!(!e.remove(7));
        assert_eq!(e.len(), 19);
        assert!(!e.range_query(&o, 0.0).contains(&7));
        let gid = e.insert(o.clone());
        assert_eq!(gid, 20);
        assert!(e.range_query(&o, 0.0).contains(&gid));
        assert_eq!(e.get(gid), Some(o));
    }

    #[test]
    fn shard_clamp_and_empty_batch() {
        let e = engine(3, 8, 2);
        assert_eq!(e.num_shards(), 3, "shards clamp to n");
        let out = e.serve(&[]);
        assert_eq!(out.results.len(), 0);
        assert_eq!(out.report.queries, 0);
        assert_eq!(out.report.latency, LatencySummary::default());
    }

    #[test]
    fn build_error_propagates() {
        let r: Result<ShardedEngine<Vec<f32>>, &str> = ShardedEngine::build_with(
            grid(10),
            &EngineConfig {
                shards: 2,
                threads: 1,
            },
            |s, part| {
                if s == 1 {
                    Err("nope")
                } else {
                    brute_factory(part)
                }
            },
        );
        assert_eq!(r.err(), Some("nope"));
    }
}
