//! Failure containment for the serving tier: query/batch budgets with
//! graceful degradation, the typed query/op error taxonomy, and shard
//! quarantine state.
//!
//! The contract (see `docs/robustness.md` for the full write-up):
//!
//! * **Budgets degrade, they don't error.** A query that exceeds its
//!   [`QueryBudget`] returns whatever it had already collected, tagged
//!   [`Completeness::Partial`] with the shards it skipped and why. A batch
//!   past its [`ServeBudget::batch_wall_nanos`] deadline *sheds* the
//!   not-yet-started remainder ([`Completeness::Shed`]) — admission
//!   control, not cancellation of in-flight work.
//! * **Malformed input fails the item, never the batch.** Validation runs
//!   before execution and yields a typed [`QueryError`] (queries) or
//!   [`OpError`] (mutations) for exactly the offending item.
//! * **Panics are contained.** A panicking query becomes
//!   `QueryResult::Failed(QueryError::Panicked { .. })` while the rest of
//!   the batch completes; repeated panics attributed to one shard
//!   quarantine it per [`FaultPolicy`] — the planner then routes around it
//!   (results become `Partial` with [`DegradeReason::Quarantined`]) until
//!   [`heal`](crate::ShardedEngine::heal) is called.

use pmi_metric::ObjId;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

/// Per-query execution budget, checked at shard-probe boundaries (never
/// mid-probe). `0` means unlimited for either field; a fully-zero budget
/// costs the serve path nothing beyond one branch per probe.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryBudget {
    /// Wall-clock deadline per query, nanoseconds (`0` = unlimited).
    /// Exceeded ⇒ remaining shard probes are skipped and the result is
    /// tagged `Partial { reason: Deadline }`.
    pub wall_nanos: u64,
    /// Distance-computation cap per query (`0` = unlimited). Spending is
    /// accounted per probed shard from the shard's own exact counters, so
    /// under concurrent serving of the *same* shard the attribution is
    /// conservative (a query may be degraded slightly early, never late).
    pub compdists: u64,
}

impl QueryBudget {
    /// No limits — the default.
    pub fn unlimited() -> Self {
        QueryBudget::default()
    }

    /// Whether any limit is set.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.wall_nanos > 0 || self.compdists > 0
    }

    /// Whether the compdist cap can ever bind. `0` disables it, and a
    /// `u64::MAX` cap is unreachable by any real query — the probe loop
    /// skips the per-probe shard-counter snapshots for both, so arming a
    /// wall-only budget costs one clock read per probe and nothing more.
    #[inline]
    pub fn caps_compdists(&self) -> bool {
        self.compdists > 0 && self.compdists < u64::MAX
    }
}

/// Budgets for one [`serve`](crate::ShardedEngine::serve) call: a per-query
/// budget plus a batch-level admission deadline.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeBudget {
    /// Applied to every query of the batch.
    pub query: QueryBudget,
    /// Batch admission deadline, nanoseconds from batch start (`0` =
    /// unlimited). Once blown, queries not yet claimed by a worker are
    /// shed outright ([`Completeness::Shed`]) without executing.
    pub batch_wall_nanos: u64,
}

impl ServeBudget {
    /// No limits — the default.
    pub fn unlimited() -> Self {
        ServeBudget::default()
    }

    /// Whether any limit is set.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.query.enabled() || self.batch_wall_nanos > 0
    }
}

/// When repeated per-shard panics quarantine the shard.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPolicy {
    /// Quarantine a shard once this many query panics have been attributed
    /// to it (`0` = never quarantine). Quarantined shards are skipped by
    /// every query plan — results touching them degrade to `Partial` —
    /// until [`heal`](crate::ShardedEngine::heal) clears the state.
    pub quarantine_after: u32,
}

impl Default for FaultPolicy {
    fn default() -> Self {
        FaultPolicy {
            quarantine_after: 3,
        }
    }
}

/// Why a query's shard probes were cut short.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DegradeReason {
    /// The per-query wall deadline passed.
    Deadline,
    /// The per-query distance-computation cap was exceeded.
    CompdistCap,
    /// A planned shard is quarantined after repeated panics.
    Quarantined,
}

/// How a partial result came to be partial.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Degraded {
    /// Planned shard probes that were skipped.
    pub shards_skipped: u32,
    /// The first reason a probe was skipped (later skips may differ; the
    /// count covers all of them).
    pub reason: DegradeReason,
}

/// Result completeness marker — how much of the exact answer a
/// [`QueryResult`](crate::QueryResult) carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Completeness {
    /// Every planned shard was probed: the exact answer.
    Exact,
    /// Some planned shards were skipped: a best-effort subset of the
    /// probes ran (range results are a subset of the exact answer; kNN
    /// results are the exact top-k of the probed shards only).
    Partial {
        /// Planned shard probes that were skipped.
        shards_skipped: u32,
        /// Why the first skip happened.
        reason: DegradeReason,
    },
    /// The query was never executed: the batch deadline was already blown
    /// when a worker claimed it.
    Shed,
    /// The query failed validation or panicked; see the result's
    /// [`QueryError`].
    Failed,
}

/// Why a query produced no (valid) answer. Every variant is a plain tag —
/// no float payloads — so results carrying errors stay `Eq`-comparable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryError {
    /// Range radius was NaN.
    NanRadius,
    /// Range radius was negative.
    NegativeRadius,
    /// kNN `k` was 0 (an empty answer by definition — rejected at the
    /// serve boundary so callers notice the likely bug).
    ZeroK,
    /// The query object failed the engine's validator (e.g. non-finite
    /// coordinates on a vector engine).
    InvalidObject,
    /// The query panicked mid-execution and was contained; `shard` is the
    /// shard being probed when the panic struck, if one was.
    Panicked {
        /// Shard under probe at the time of the panic.
        shard: Option<u32>,
    },
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::NanRadius => write!(f, "range radius is NaN"),
            QueryError::NegativeRadius => write!(f, "range radius is negative"),
            QueryError::ZeroK => write!(f, "kNN k is 0"),
            QueryError::InvalidObject => write!(f, "query object failed validation"),
            QueryError::Panicked { shard: Some(s) } => {
                write!(f, "query panicked while probing shard {s}")
            }
            QueryError::Panicked { shard: None } => write!(f, "query panicked"),
        }
    }
}

impl std::error::Error for QueryError {}

/// What went wrong with one op of an
/// [`UpdateBatch`](crate::UpdateBatch) (the op index is 0-based batch
/// order).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OpError {
    /// Index of the offending op within the batch.
    pub op: usize,
    /// What was wrong with it.
    pub kind: OpErrorKind,
}

/// The mutation-side error taxonomy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpErrorKind {
    /// Remove of a global id that is not live and was not removed earlier
    /// in this batch.
    UnknownGid(ObjId),
    /// Remove of a global id already removed earlier in the same batch.
    DuplicateRemove(ObjId),
    /// Insert of an object that failed the engine's validator.
    InvalidObject,
}

impl std::fmt::Display for OpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.kind {
            OpErrorKind::UnknownGid(id) => {
                write!(f, "op {}: remove of unknown global id {id}", self.op)
            }
            OpErrorKind::DuplicateRemove(id) => {
                write!(f, "op {}: duplicate remove of global id {id}", self.op)
            }
            OpErrorKind::InvalidObject => {
                write!(f, "op {}: insert object failed validation", self.op)
            }
        }
    }
}

/// One shard's panic/quarantine state, as reported by
/// [`fault_states`](crate::ShardedEngine::fault_states).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardFaultState {
    /// Shard number.
    pub shard: usize,
    /// Query panics attributed to this shard since build or the last
    /// [`heal`](crate::ShardedEngine::heal).
    pub panics: u32,
    /// Whether the shard is currently quarantined (skipped by planning).
    pub quarantined: bool,
}

/// Engine-internal quarantine bookkeeping: lock-free per-shard panic
/// counts and flags, plus an `any` fast-path bit so the unfaulted serve
/// path pays one relaxed load per query.
pub(crate) struct QuarantineState {
    panics: Vec<AtomicU32>,
    flags: Vec<AtomicBool>,
    any: AtomicBool,
}

impl QuarantineState {
    pub(crate) fn new(shards: usize) -> Self {
        QuarantineState {
            panics: (0..shards).map(|_| AtomicU32::new(0)).collect(),
            flags: (0..shards).map(|_| AtomicBool::new(false)).collect(),
            any: AtomicBool::new(false),
        }
    }

    /// Whether any shard is quarantined (one relaxed load — the per-query
    /// fast path).
    #[inline]
    pub(crate) fn any(&self) -> bool {
        self.any.load(Ordering::Relaxed)
    }

    /// Whether shard `s` is quarantined.
    #[inline]
    pub(crate) fn is_quarantined(&self, s: usize) -> bool {
        self.flags.get(s).is_some_and(|f| f.load(Ordering::Relaxed))
    }

    /// Attributes one panic to shard `s`; returns whether this crossed the
    /// policy threshold and newly quarantined the shard.
    pub(crate) fn note_panic(&self, s: usize, policy: FaultPolicy) -> bool {
        let Some(count) = self.panics.get(s) else {
            return false;
        };
        let n = count.fetch_add(1, Ordering::Relaxed) + 1;
        if policy.quarantine_after == 0 || n < policy.quarantine_after {
            return false;
        }
        let newly = !self.flags[s].swap(true, Ordering::Relaxed);
        self.any.store(true, Ordering::Relaxed);
        newly
    }

    /// Clears all panic counts and quarantine flags; returns how many
    /// shards were quarantined.
    pub(crate) fn heal(&self) -> usize {
        let mut cleared = 0;
        for (count, flag) in self.panics.iter().zip(&self.flags) {
            count.store(0, Ordering::Relaxed);
            cleared += usize::from(flag.swap(false, Ordering::Relaxed));
        }
        self.any.store(false, Ordering::Relaxed);
        cleared
    }

    /// Number of currently quarantined shards.
    pub(crate) fn quarantined_count(&self) -> usize {
        self.flags
            .iter()
            .filter(|f| f.load(Ordering::Relaxed))
            .count()
    }

    /// Per-shard snapshot, in shard order.
    pub(crate) fn snapshot(&self) -> Vec<ShardFaultState> {
        self.panics
            .iter()
            .zip(&self.flags)
            .enumerate()
            .map(|(shard, (count, flag))| ShardFaultState {
                shard,
                panics: count.load(Ordering::Relaxed),
                quarantined: flag.load(Ordering::Relaxed),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budgets_default_unlimited() {
        assert!(!QueryBudget::default().enabled());
        assert!(!ServeBudget::default().enabled());
        assert_eq!(QueryBudget::unlimited(), QueryBudget::default());
        assert!(QueryBudget {
            wall_nanos: 1,
            compdists: 0
        }
        .enabled());
        assert!(ServeBudget {
            query: QueryBudget::unlimited(),
            batch_wall_nanos: 5
        }
        .enabled());
    }

    #[test]
    fn quarantine_trips_at_policy_threshold() {
        let q = QuarantineState::new(3);
        let policy = FaultPolicy {
            quarantine_after: 2,
        };
        assert!(!q.any());
        assert!(!q.note_panic(1, policy), "first panic is under threshold");
        assert!(!q.any());
        assert!(q.note_panic(1, policy), "second panic quarantines");
        assert!(q.any() && q.is_quarantined(1));
        assert!(!q.note_panic(1, policy), "already quarantined: not newly");
        assert!(!q.is_quarantined(0) && !q.is_quarantined(2));
        let snap = q.snapshot();
        assert_eq!(snap[1].panics, 3);
        assert!(snap[1].quarantined);
        assert_eq!(q.quarantined_count(), 1);
        assert_eq!(q.heal(), 1);
        assert!(!q.any() && !q.is_quarantined(1));
        assert_eq!(q.snapshot()[1].panics, 0);
    }

    #[test]
    fn disabled_policy_never_quarantines() {
        let q = QuarantineState::new(2);
        let policy = FaultPolicy {
            quarantine_after: 0,
        };
        for _ in 0..100 {
            assert!(!q.note_panic(0, policy));
        }
        assert!(!q.any());
        assert_eq!(q.snapshot()[0].panics, 100, "panics still counted");
        // Out-of-range shard attribution is ignored, not a panic.
        assert!(!q.note_panic(99, FaultPolicy::default()));
    }

    #[test]
    fn errors_display() {
        assert_eq!(QueryError::NanRadius.to_string(), "range radius is NaN");
        assert!(QueryError::Panicked { shard: Some(2) }
            .to_string()
            .contains("shard 2"));
        assert!(QueryError::Panicked { shard: None }
            .to_string()
            .contains("panicked"));
        let e = OpError {
            op: 4,
            kind: OpErrorKind::DuplicateRemove(17),
        };
        assert!(e.to_string().contains("op 4") && e.to_string().contains("17"));
        assert!(OpError {
            op: 0,
            kind: OpErrorKind::UnknownGid(9)
        }
        .to_string()
        .contains("unknown"));
        assert!(OpError {
            op: 1,
            kind: OpErrorKind::InvalidObject
        }
        .to_string()
        .contains("validation"));
    }
}
