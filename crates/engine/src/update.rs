//! The engine's unified mutation path: batched updates
//! ([`UpdateBatch`] → [`ShardedEngine::apply`](crate::ShardedEngine::apply)),
//! their exact accounting ([`ApplyReport`]), and the re-clustering trigger
//! ([`RefreshPolicy`]).
//!
//! Inserts and removes flow through the same layered fast path queries use:
//! an insert is routed via the [`RoutingTable`](pmi_router::RoutingTable),
//! its pivot row is computed **once** and pushed into the engine's shared
//! [`SharedPivotMatrix`](pmi_metric::SharedPivotMatrix), and the
//! destination shard adopts the row by id
//! ([`MetricIndex::insert_adopted`](pmi_metric::MetricIndex::insert_adopted))
//! — no per-shard remap. Removes recompute the affected shards' routing
//! boxes from the surviving members' rows, and a batch that leaves the
//! shards too imbalanced triggers an incremental re-clustering of the worst
//! shard pair.

use crate::robust::OpError;
use pmi_metric::ObjId;

/// One mutation of an [`UpdateBatch`].
#[derive(Clone, Debug)]
pub enum UpdateOp<O> {
    /// Insert an object; it receives the next global id.
    Insert(O),
    /// Remove the object with this global id (a miss is counted, not an
    /// error — the object may have been removed earlier in the batch).
    Remove(ObjId),
}

/// An ordered batch of inserts and removes, applied atomically with respect
/// to box maintenance: boxes are grown per insert, shrunk once per affected
/// shard after the last remove, and the re-cluster check runs once at the
/// end.
#[derive(Clone, Debug, Default)]
pub struct UpdateBatch<O> {
    ops: Vec<UpdateOp<O>>,
}

impl<O> UpdateBatch<O> {
    /// An empty batch.
    pub fn new() -> Self {
        UpdateBatch { ops: Vec::new() }
    }

    /// Queues an insert.
    pub fn insert(&mut self, o: O) -> &mut Self {
        self.ops.push(UpdateOp::Insert(o));
        self
    }

    /// Queues a remove by global id.
    pub fn remove(&mut self, id: ObjId) -> &mut Self {
        self.ops.push(UpdateOp::Remove(id));
        self
    }

    /// Number of queued operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the batch queues nothing.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The queued operations, in application order.
    pub fn ops(&self) -> &[UpdateOp<O>] {
        &self.ops
    }
}

impl<O> FromIterator<UpdateOp<O>> for UpdateBatch<O> {
    fn from_iter<T: IntoIterator<Item = UpdateOp<O>>>(iter: T) -> Self {
        UpdateBatch {
            ops: iter.into_iter().collect(),
        }
    }
}

/// When `apply` re-clusters: after a batch, if the fullest shard holds more
/// than `max_imbalance ×` the emptiest shard's live objects (and the pair
/// is big enough to matter), the worst pair is re-split by 2-means over the
/// members' mapped rows — an incremental rebalance instead of a full
/// rebuild. Only routed (pivot-space) engines re-cluster; round-robin
/// engines keep balance by construction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RefreshPolicy {
    /// Trigger threshold: re-cluster when `max_len > max_imbalance *
    /// max(min_len, 1)`. `f64::INFINITY` disables re-clustering.
    pub max_imbalance: f64,
    /// The worst pair must hold at least this many live objects combined;
    /// below it, imbalance is noise and re-clustering is skipped.
    pub min_objects: usize,
}

impl RefreshPolicy {
    /// Never re-cluster.
    pub fn disabled() -> Self {
        RefreshPolicy {
            max_imbalance: f64::INFINITY,
            min_objects: usize::MAX,
        }
    }

    /// Whether a `(max, min)` live-count pair trips the trigger.
    pub fn triggers(&self, max_len: usize, min_len: usize) -> bool {
        max_len + min_len >= self.min_objects
            && (max_len as f64) > self.max_imbalance * min_len.max(1) as f64
    }
}

impl Default for RefreshPolicy {
    fn default() -> Self {
        RefreshPolicy {
            max_imbalance: 3.0,
            min_objects: 64,
        }
    }
}

/// When `apply` compacts the shared pivot matrix: after a batch, if the
/// fraction of dead (tombstoned) rows among all matrix rows exceeds
/// `max_dead_fraction` (and there are at least `min_dead_rows` of them),
/// the engine drops the dead rows, renumbers the survivors densely, and
/// remaps every adopting shard plus its own id tables — see
/// [`ShardedEngine::compact`](crate::ShardedEngine::compact). Serving after
/// a compaction is byte-identical to a from-scratch rebuild over the
/// survivors (with the rebuild's dense ids), which is exactly what closes
/// the post-churn QPS gap: tombstoned rows stop costing lower-bound
/// arithmetic and cache space.
///
/// **Compaction renumbers global ids** (survivor rank order), invalidating
/// ids the caller holds from before — the same contract as rebuilding. The
/// default is therefore *disabled*; opt in via `EngineConfig.compaction`
/// or call `compact()` explicitly.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CompactionPolicy {
    /// Trigger threshold: compact when
    /// `dead_rows > max_dead_fraction * total_rows`.
    pub max_dead_fraction: f64,
    /// Minimum dead rows before compaction is worth a matrix rewrite.
    pub min_dead_rows: usize,
}

impl CompactionPolicy {
    /// Never compact automatically (the default; `compact()` stays
    /// available as an explicit call).
    pub fn disabled() -> Self {
        CompactionPolicy {
            max_dead_fraction: f64::INFINITY,
            min_dead_rows: usize::MAX,
        }
    }

    /// Compact when more than `fraction` of the matrix rows are dead
    /// (with a small absolute floor so tiny engines don't thrash).
    pub fn at_dead_fraction(fraction: f64) -> Self {
        CompactionPolicy {
            max_dead_fraction: fraction,
            min_dead_rows: 256,
        }
    }

    /// Whether a `(dead, total)` row count pair trips the trigger.
    pub fn triggers(&self, dead_rows: usize, total_rows: usize) -> bool {
        dead_rows >= self.min_dead_rows
            && dead_rows as f64 > self.max_dead_fraction * total_rows as f64
    }
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        CompactionPolicy::disabled()
    }
}

/// What one [`apply`](crate::ShardedEngine::apply) did and what it cost —
/// every counter is exact.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ApplyReport {
    /// Inserts applied.
    pub inserts: usize,
    /// Removes applied (the id was live).
    pub removes: usize,
    /// Removes whose id was absent (already removed or never existed).
    pub missing_removes: usize,
    /// Global ids assigned to the batch's inserts, in op order.
    pub inserted_ids: Vec<ObjId>,
    /// Distance computations spent mapping inserts into pivot space —
    /// exactly one `l`-wide matrix row per mapped insert, the whole point
    /// of the unified path (the old route re-mapped once more per shard).
    pub map_compdists: u64,
    /// Distance computations the shards themselves spent during the apply
    /// (auxiliary structures only: matrix-adopting kinds pay 0 here; e.g.
    /// CPT still pays its M-tree clustering, and fallback kinds their own
    /// insert cost). Exact delta of the aggregate shard counters.
    pub shard_compdists: u64,
    /// Shards whose routing box was recomputed from surviving members.
    pub reboxed_shards: usize,
    /// Re-clustering passes run (0 or 1 per apply).
    pub reclusters: usize,
    /// Objects moved between shards by re-clustering.
    pub moved_objects: u64,
    /// Matrix compactions run (0 or 1 per apply; see [`CompactionPolicy`]).
    pub compactions: usize,
    /// Dead matrix rows dropped by compaction.
    pub compacted_rows: u64,
    /// Wall-clock duration of the apply, seconds.
    pub wall_secs: f64,
    /// Whether the apply aborted: a fault (panic) inside the staging
    /// transaction discarded every staged mutation and the engine still
    /// publishes the pre-apply snapshot — no op landed, concurrent serving
    /// never saw intermediate state, and the same batch can be retried.
    /// All counts above are zero when set.
    pub aborted: bool,
    /// Per-op errors, in op order: validator-rejected inserts, removes of
    /// unknown ids, and duplicate removes. The batch still applies every
    /// valid op — these classify what was skipped or missed
    /// (`missing_removes` keeps counting unknown + duplicate removes
    /// together, as before).
    pub op_errors: Vec<OpError>,
}

impl std::fmt::Display for ApplyReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.aborted {
            return write!(
                f,
                "apply ABORTED after {:.4}s (staged state discarded, nothing published)",
                self.wall_secs
            );
        }
        writeln!(
            f,
            "applied {} insert(s), {} remove(s) ({} missing) in {:.4}s",
            self.inserts, self.removes, self.missing_removes, self.wall_secs
        )?;
        writeln!(
            f,
            "  cost: {} map compdists ({} per routed insert), {} shard compdists",
            self.map_compdists,
            if self.inserts > 0 {
                self.map_compdists / self.inserts as u64
            } else {
                0
            },
            self.shard_compdists
        )?;
        write!(
            f,
            "  routing: {} box(es) shrunk, {} re-cluster(s) moving {} object(s), \
             {} compaction(s) dropping {} row(s)",
            self.reboxed_shards,
            self.reclusters,
            self.moved_objects,
            self.compactions,
            self.compacted_rows
        )?;
        if !self.op_errors.is_empty() {
            write!(f, "\n  op errors: {}", self.op_errors.len())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_builder_orders_ops() {
        let mut b = UpdateBatch::new();
        assert!(b.is_empty());
        b.insert(vec![1.0f32]).remove(3).insert(vec![2.0f32]);
        assert_eq!(b.len(), 3);
        assert!(matches!(b.ops()[0], UpdateOp::Insert(_)));
        assert!(matches!(b.ops()[1], UpdateOp::Remove(3)));
        let collected: UpdateBatch<Vec<f32>> = [UpdateOp::Remove(1), UpdateOp::Remove(2)]
            .into_iter()
            .collect();
        assert_eq!(collected.len(), 2);
    }

    #[test]
    fn compaction_policy_triggers() {
        let p = CompactionPolicy {
            max_dead_fraction: 0.25,
            min_dead_rows: 100,
        };
        assert!(p.triggers(300, 1000), "30% dead over the floor");
        assert!(!p.triggers(200, 1000), "20% is under the threshold");
        assert!(!p.triggers(50, 100), "too few dead rows to matter");
        assert!(!CompactionPolicy::disabled().triggers(1_000_000, 1_000_001));
        assert!(CompactionPolicy::at_dead_fraction(0.3).triggers(400, 1000));
        assert!(!CompactionPolicy::at_dead_fraction(0.3).triggers(100, 200));
        assert_eq!(CompactionPolicy::default(), CompactionPolicy::disabled());
    }

    #[test]
    fn refresh_policy_triggers() {
        let p = RefreshPolicy {
            max_imbalance: 2.0,
            min_objects: 10,
        };
        assert!(p.triggers(30, 5), "6x imbalance over the floor");
        assert!(!p.triggers(30, 20), "1.5x is under the threshold");
        assert!(!p.triggers(6, 2), "too small to matter");
        assert!(p.triggers(12, 0), "empty shard counts as 1");
        assert!(!RefreshPolicy::disabled().triggers(1_000_000, 0));
        assert!(RefreshPolicy::default().triggers(400, 100));
    }

    #[test]
    fn report_displays() {
        let r = ApplyReport {
            inserts: 4,
            removes: 2,
            missing_removes: 1,
            map_compdists: 20,
            reboxed_shards: 2,
            reclusters: 1,
            moved_objects: 7,
            ..ApplyReport::default()
        };
        let s = format!("{r}");
        assert!(s.contains("4 insert(s)"));
        assert!(s.contains("(1 missing)"));
        assert!(s.contains("5 per routed insert"));
        assert!(s.contains("2 box(es) shrunk"));
        assert!(s.contains("moving 7 object(s)"));
    }
}
