//! Batch query and result types.

use pmi_metric::{Neighbor, ObjId};

/// One query of a served batch: either of the paper's two query types
/// (Definitions 1 and 2), carrying its own query object.
#[derive(Clone, Debug)]
pub enum Query<O> {
    /// Metric range query `MRQ(q, r)`.
    Range {
        /// Query object.
        q: O,
        /// Search radius.
        radius: f64,
    },
    /// Metric k-nearest-neighbor query `MkNNQ(q, k)`.
    Knn {
        /// Query object.
        q: O,
        /// Number of neighbors.
        k: usize,
    },
}

impl<O> Query<O> {
    /// A range query.
    pub fn range(q: O, radius: f64) -> Self {
        Query::Range { q, radius }
    }

    /// A kNN query.
    pub fn knn(q: O, k: usize) -> Self {
        Query::Knn { q, k }
    }

    /// Whether this is a range query.
    pub fn is_range(&self) -> bool {
        matches!(self, Query::Range { .. })
    }
}

/// The merged, global answer to one [`Query`]. All ids are global dataset
/// ids (positions in the engine's build input), not shard-local ids.
#[derive(Clone, Debug, PartialEq)]
pub enum QueryResult {
    /// Range answer: global ids sorted ascending.
    Range(Vec<ObjId>),
    /// kNN answer: sorted by `(distance, global id)` ascending.
    Knn(Vec<Neighbor>),
}

impl QueryResult {
    /// Number of result objects.
    pub fn len(&self) -> usize {
        match self {
            QueryResult::Range(v) => v.len(),
            QueryResult::Knn(v) => v.len(),
        }
    }

    /// Whether the result set is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The range ids, if this is a range result.
    pub fn as_range(&self) -> Option<&[ObjId]> {
        match self {
            QueryResult::Range(v) => Some(v),
            QueryResult::Knn(_) => None,
        }
    }

    /// The neighbors, if this is a kNN result.
    pub fn as_knn(&self) -> Option<&[Neighbor]> {
        match self {
            QueryResult::Range(_) => None,
            QueryResult::Knn(v) => Some(v),
        }
    }
}
