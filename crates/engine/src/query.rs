//! Batch query and result types.

use crate::robust::{Completeness, Degraded, QueryError};
use pmi_metric::{Neighbor, ObjId};

/// One query of a served batch: either of the paper's two query types
/// (Definitions 1 and 2), carrying its own query object.
#[derive(Clone, Debug)]
pub enum Query<O> {
    /// Metric range query `MRQ(q, r)`.
    Range {
        /// Query object.
        q: O,
        /// Search radius.
        radius: f64,
    },
    /// Metric k-nearest-neighbor query `MkNNQ(q, k)`.
    Knn {
        /// Query object.
        q: O,
        /// Number of neighbors.
        k: usize,
    },
}

impl<O> Query<O> {
    /// A range query.
    pub fn range(q: O, radius: f64) -> Self {
        Query::Range { q, radius }
    }

    /// A kNN query.
    pub fn knn(q: O, k: usize) -> Self {
        Query::Knn { q, k }
    }

    /// Whether this is a range query.
    pub fn is_range(&self) -> bool {
        matches!(self, Query::Range { .. })
    }
}

/// The merged, global answer to one [`Query`]. All ids are global dataset
/// ids (positions in the engine's build input), not shard-local ids.
///
/// `Range`/`Knn` are the exact answers; the remaining variants are the
/// failure-containment outcomes (`docs/robustness.md`): `Partial*` carry a
/// best-effort answer plus why it was cut short, `Shed` marks a query the
/// batch deadline kept from running at all, and `Failed` carries the typed
/// [`QueryError`] for a query that was malformed or panicked.
#[derive(Clone, Debug, PartialEq)]
pub enum QueryResult {
    /// Range answer: global ids sorted ascending.
    Range(Vec<ObjId>),
    /// kNN answer: sorted by `(distance, global id)` ascending.
    Knn(Vec<Neighbor>),
    /// Degraded range answer — a subset of the exact answer (skipping
    /// shards can only drop hits, never invent them).
    PartialRange(Vec<ObjId>, Degraded),
    /// Degraded kNN answer — the exact top-k of the probed shards only
    /// (NOT necessarily a subset of the exact global top-k).
    PartialKnn(Vec<Neighbor>, Degraded),
    /// Never executed: the batch deadline was blown before a worker
    /// claimed this query.
    Shed,
    /// Rejected by validation or contained after a panic.
    Failed(QueryError),
}

impl QueryResult {
    /// Number of result objects (0 for `Shed`/`Failed`).
    pub fn len(&self) -> usize {
        match self {
            QueryResult::Range(v) | QueryResult::PartialRange(v, _) => v.len(),
            QueryResult::Knn(v) | QueryResult::PartialKnn(v, _) => v.len(),
            QueryResult::Shed | QueryResult::Failed(_) => 0,
        }
    }

    /// Whether the result set is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The range ids, if this is an (exact or partial) range result.
    pub fn as_range(&self) -> Option<&[ObjId]> {
        match self {
            QueryResult::Range(v) | QueryResult::PartialRange(v, _) => Some(v),
            _ => None,
        }
    }

    /// The neighbors, if this is an (exact or partial) kNN result.
    pub fn as_knn(&self) -> Option<&[Neighbor]> {
        match self {
            QueryResult::Knn(v) | QueryResult::PartialKnn(v, _) => Some(v),
            _ => None,
        }
    }

    /// How complete this result is relative to the exact answer.
    pub fn completeness(&self) -> Completeness {
        match self {
            QueryResult::Range(_) | QueryResult::Knn(_) => Completeness::Exact,
            QueryResult::PartialRange(_, d) | QueryResult::PartialKnn(_, d) => {
                Completeness::Partial {
                    shards_skipped: d.shards_skipped,
                    reason: d.reason,
                }
            }
            QueryResult::Shed => Completeness::Shed,
            QueryResult::Failed(_) => Completeness::Failed,
        }
    }

    /// The error, if this query failed.
    pub fn error(&self) -> Option<QueryError> {
        match self {
            QueryResult::Failed(e) => Some(*e),
            _ => None,
        }
    }
}
