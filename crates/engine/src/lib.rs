//! `pmi-engine` — a sharded, concurrent batch query-serving engine over
//! pivot-based metric indexes.
//!
//! The paper (§6.2) observes that pivot-distance work parallelizes
//! naturally because objects are independent of each other. This crate
//! extends that observation from index *construction* to query *serving*:
//!
//! * [`ShardedEngine`] partitions a dataset across `P` independent shards,
//!   each backed by any [`MetricIndex`] implementation (a shard factory
//!   closure decides which — the `pmi` facade wires its `builder` module
//!   in, so every index of the paper can serve). Partitioning is either
//!   round-robin ([`ShardedEngine::build_with`]) or pivot-space routed
//!   ([`ShardedEngine::build_partitioned_with`], policy
//!   [`PartitionPolicy::PivotSpace`] from `pmi-router`), where a
//!   [`RoutingTable`] of per-shard pivot-space bounding boxes lets queries
//!   *skip* shards: Lemma 1 box pruning for range queries, best-first
//!   probing with a tightening cutoff for kNN. Skips are counted exactly
//!   in every [`ServeReport`] (`shards_probed` / `shards_pruned`),
//! * batches of mixed range / kNN queries ([`Query`]) execute on a
//!   crossbeam scoped-thread worker pool ([`ShardedEngine::serve`]), with
//!   per-shard partial results merged per query — a set union for range
//!   queries, a bounded binary heap ([`merge::TopK`]) for the global top-k,
//! * the paper's cost model aggregates exactly: every shard counts
//!   `compdists` and page accesses through atomic counters, and the engine
//!   sums the per-shard [`Counters`] snapshots,
//! * every served batch produces a [`ServeReport`] — throughput,
//!   monotonic-clock latency percentiles, and aggregate counters — so
//!   benches and examples can measure QPS directly,
//! * mutations flow through the same layered path as queries
//!   ([`ShardedEngine::apply`] over an [`UpdateBatch`]): inserts are routed
//!   via the routing table and push **one** pivot row into the engine's
//!   shared matrix (the destination shard adopts it by id — no remap),
//!   removes shrink the affected routing boxes back to the surviving
//!   members, and a [`RefreshPolicy`] re-clusters the worst shard pair
//!   when a batch leaves the shards imbalanced. Every [`ApplyReport`]
//!   counter is exact.
//!
//! Shard-level parallelism is also available per query:
//! [`ShardedEngine::range_query`] and [`ShardedEngine::knn_query`] fan a
//! single query across all shards on scoped threads and merge, which is the
//! low-latency path for one-off queries.
//!
//! # Example
//!
//! ```
//! use pmi_engine::{EngineConfig, Query, ShardedEngine};
//! use pmi_metric::{BruteForce, MetricIndex, L2};
//!
//! let objects: Vec<Vec<f32>> = (0..1000)
//!     .map(|i| vec![(i % 97) as f32, (i % 31) as f32])
//!     .collect();
//! let cfg = EngineConfig { shards: 4, threads: 2, ..EngineConfig::default() };
//! let engine = ShardedEngine::build_with(objects.clone(), &cfg, |_, part| {
//!     Ok::<_, String>(Box::new(BruteForce::new(part, L2)) as Box<dyn MetricIndex<_>>)
//! })
//! .unwrap();
//!
//! let batch = vec![
//!     Query::range(objects[0].clone(), 5.0),
//!     Query::knn(objects[1].clone(), 10),
//! ];
//! let outcome = engine.serve(&batch);
//! assert_eq!(outcome.results.len(), 2);
//! assert!(outcome.report.cost.compdists > 0);
//! ```

pub mod engine;
pub mod merge;
pub mod query;
pub mod queue;
pub mod report;
pub mod robust;
pub mod shard;
pub mod update;

pub use engine::{
    BatchOutcome, EngineConfig, EngineError, EngineReader, EngineScratch, EngineSnapshot,
    SchedPolicy, ShardedEngine,
};
pub use merge::TopK;
pub use pmi_obs::{QueryTrace, TraceEvent, TraceKind, TracePolicy};
pub use pmi_router::{PartitionPolicy, RoutingTable};
pub use query::{Query, QueryResult};
pub use queue::{AdmissionPolicy, PumpOutcome, QueueStats, SubmitOutcome, SubmitQueue};
pub use report::{
    BuildStats, LatencySummary, SchedStrategy, ServeReport, ShardServeStats, UpdateStats,
};
pub use robust::{
    Completeness, DegradeReason, Degraded, FaultPolicy, OpError, OpErrorKind, QueryBudget,
    QueryError, ServeBudget, ShardFaultState,
};
pub use shard::Shard;
pub use update::{ApplyReport, CompactionPolicy, RefreshPolicy, UpdateBatch, UpdateOp};
