//! Global top-k merging via a bounded binary heap.

use pmi_metric::Neighbor;
use std::collections::BinaryHeap;

/// A bounded max-heap keeping the `k` smallest [`Neighbor`]s seen so far —
/// exactly the structure the paper's best-first MkNNQ traversals maintain,
/// reused here to merge per-shard top-k lists into the global top-k.
///
/// Ordering follows [`Neighbor`]'s total order `(distance, id)`, so merges
/// are deterministic even across equal distances.
#[derive(Debug, Default)]
pub struct TopK {
    k: usize,
    heap: BinaryHeap<Neighbor>,
}

impl TopK {
    /// An empty collector for the `k` nearest. `k = 0` collects nothing.
    pub fn new(k: usize) -> Self {
        TopK {
            k,
            heap: BinaryHeap::with_capacity(k.saturating_add(1).min(4096)),
        }
    }

    /// Offers a candidate, evicting the current worst if over capacity.
    #[inline]
    pub fn offer(&mut self, n: Neighbor) {
        if self.k == 0 {
            return;
        }
        if self.heap.len() < self.k {
            self.heap.push(n);
        } else if let Some(worst) = self.heap.peek() {
            if n < *worst {
                self.heap.push(n);
                self.heap.pop();
            }
        }
    }

    /// Offers every neighbor of a per-shard partial result.
    pub fn offer_all(&mut self, partial: impl IntoIterator<Item = Neighbor>) {
        for n in partial {
            self.offer(n);
        }
    }

    /// Current pruning threshold: the k-th best distance, or `+∞` while the
    /// heap is not yet full.
    pub fn threshold(&self) -> f64 {
        if self.heap.len() < self.k {
            f64::INFINITY
        } else {
            self.heap.peek().map_or(f64::INFINITY, |n| n.dist)
        }
    }

    /// Number of collected neighbors.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether nothing has been collected.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The collected neighbors sorted ascending by `(distance, id)`.
    pub fn into_sorted(self) -> Vec<Neighbor> {
        let mut v = self.heap.into_vec();
        v.sort_unstable();
        v
    }

    /// Re-arms the collector for a new query with bound `k`, keeping the
    /// heap's allocation — the reuse hook for the batch-serving hot loop.
    pub fn reset(&mut self, k: usize) {
        self.k = k;
        self.heap.clear();
    }

    /// Drains the collected neighbors into a fresh exact-size vector sorted
    /// ascending by `(distance, id)`, leaving the collector empty (capacity
    /// intact) for reuse. The only allocation is the returned answer.
    pub fn drain_sorted(&mut self) -> Vec<Neighbor> {
        let mut v = Vec::with_capacity(self.heap.len());
        while let Some(n) = self.heap.pop() {
            v.push(n);
        }
        v.reverse();
        v
    }
}

/// Merges per-shard range answers (already mapped to global ids) into one
/// sorted union. Shards are disjoint partitions, so this is concatenation
/// plus a sort for determinism.
pub fn merge_range(partials: Vec<Vec<pmi_metric::ObjId>>) -> Vec<pmi_metric::ObjId> {
    let mut out: Vec<pmi_metric::ObjId> = partials.into_iter().flatten().collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(id: u32, d: f64) -> Neighbor {
        Neighbor::new(id, d)
    }

    #[test]
    fn keeps_k_smallest() {
        let mut t = TopK::new(3);
        t.offer_all([n(0, 5.0), n(1, 1.0), n(2, 4.0), n(3, 2.0), n(4, 3.0)]);
        let got = t.into_sorted();
        assert_eq!(got.iter().map(|x| x.id).collect::<Vec<_>>(), vec![1, 3, 4]);
    }

    #[test]
    fn threshold_tracks_kth() {
        let mut t = TopK::new(2);
        assert_eq!(t.threshold(), f64::INFINITY);
        t.offer(n(0, 7.0));
        assert_eq!(t.threshold(), f64::INFINITY);
        t.offer(n(1, 3.0));
        assert_eq!(t.threshold(), 7.0);
        t.offer(n(2, 1.0));
        assert_eq!(t.threshold(), 3.0);
    }

    #[test]
    fn ties_break_by_id() {
        let mut t = TopK::new(2);
        t.offer_all([n(9, 1.0), n(3, 1.0), n(5, 1.0)]);
        let got = t.into_sorted();
        assert_eq!(got.iter().map(|x| x.id).collect::<Vec<_>>(), vec![3, 5]);
    }

    #[test]
    fn zero_k_collects_nothing() {
        let mut t = TopK::new(0);
        t.offer(n(1, 1.0));
        assert!(t.is_empty());
        assert!(t.into_sorted().is_empty());
    }

    #[test]
    fn merge_range_unions_sorted() {
        let merged = merge_range(vec![vec![7, 1], vec![], vec![4, 2]]);
        assert_eq!(merged, vec![1, 2, 4, 7]);
    }

    #[test]
    fn reset_and_drain_reuse_the_collector() {
        let mut t = TopK::new(2);
        t.offer_all([n(0, 5.0), n(1, 1.0), n(2, 3.0)]);
        let first = t.drain_sorted();
        assert_eq!(first.iter().map(|x| x.id).collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(first.capacity(), first.len(), "exact-size answer");
        assert!(t.is_empty());
        t.reset(1);
        t.offer_all([n(7, 9.0), n(8, 2.0)]);
        assert_eq!(t.drain_sorted()[0].id, 8);
    }
}
