//! One partition of a sharded dataset: an index plus the local→global id
//! mapping.

use crate::merge::TopK;
use pmi_metric::{Counters, MetricIndex, Neighbor, ObjId, QueryScratch, StorageFootprint};

/// One shard: any [`MetricIndex`] over a disjoint partition of the dataset,
/// plus the mapping from the index's local object ids back to global
/// dataset ids.
///
/// Local ids are whatever the wrapped index assigned at insertion time
/// (positions in its object table); the shard records the global id for
/// each local slot so merged answers always speak global ids.
pub struct Shard<O> {
    index: Box<dyn MetricIndex<O>>,
    /// Local id → global id. Slots keep their last value after a removal;
    /// they are overwritten if the index reuses the local id.
    global_ids: Vec<ObjId>,
}

impl<O> Shard<O> {
    /// Wraps a freshly built index whose insertion order matched
    /// `global_ids` (i.e. local id `i` holds the object with global id
    /// `global_ids[i]`).
    pub fn new(index: Box<dyn MetricIndex<O>>, global_ids: Vec<ObjId>) -> Self {
        debug_assert_eq!(index.len(), global_ids.len());
        Shard { index, global_ids }
    }

    /// Number of live objects in this shard.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the shard is empty.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// The wrapped index (for name / storage inspection).
    pub fn index(&self) -> &dyn MetricIndex<O> {
        self.index.as_ref()
    }

    /// Translates a local id to its global id.
    #[inline]
    pub fn global_id(&self, local: ObjId) -> ObjId {
        self.global_ids[local as usize]
    }

    /// The full local→global slot table, **including stale slots**: a slot
    /// keeps its last global id after a removal, so only the engine's
    /// locator can say whether slot `i` still speaks for a live member of
    /// this shard. Lets the engine walk one shard's members without
    /// scanning the whole dataset.
    pub fn global_ids(&self) -> &[ObjId] {
        &self.global_ids
    }

    /// Range query answered in global ids (unsorted).
    pub fn range_global(&self, q: &O, radius: f64) -> Vec<ObjId> {
        let mut out = Vec::new();
        self.range_global_into(q, radius, &mut QueryScratch::new(), &mut out);
        out
    }

    /// [`range_global`](Self::range_global) for the batch hot loop: appends
    /// global-id answers to `out`, all transient state in `scratch`.
    pub fn range_global_into(
        &self,
        q: &O,
        radius: f64,
        scratch: &mut QueryScratch,
        out: &mut Vec<ObjId>,
    ) {
        let start = out.len();
        self.index.range_query_into(q, radius, scratch, out);
        for id in &mut out[start..] {
            *id = self.global_ids[*id as usize];
        }
    }

    /// Local top-k offered into a global [`TopK`] collector.
    pub fn knn_into(&self, q: &O, k: usize, topk: &mut TopK) {
        let mut tmp = Vec::new();
        self.knn_into_with(
            q,
            k,
            f64::INFINITY,
            &mut QueryScratch::new(),
            &mut tmp,
            topk,
        );
    }

    /// [`knn_into`](Self::knn_into) for the batch hot loop: the shard's
    /// local top-k lands in the reused `tmp` buffer and is offered into
    /// `topk` under global ids. `seed` is the collector's threshold
    /// *before* this shard is probed
    /// ([`TopK::threshold`](crate::merge::TopK::threshold)) — when the
    /// caller probes shards in sequence, passing it lets the index skip
    /// (and never verify) candidates the merge would reject anyway, with
    /// byte-identical merged results (see
    /// [`MetricIndex::knn_query_into_seeded`]). Pass `f64::INFINITY` to
    /// run unseeded (e.g. when shards are probed concurrently).
    pub fn knn_into_with(
        &self,
        q: &O,
        k: usize,
        seed: f64,
        scratch: &mut QueryScratch,
        tmp: &mut Vec<Neighbor>,
        topk: &mut TopK,
    ) {
        tmp.clear();
        self.index.knn_query_into_seeded(q, k, seed, scratch, tmp);
        for n in tmp.drain(..) {
            topk.offer(Neighbor::new(self.global_id(n.id), n.dist));
        }
    }

    /// Inserts an object carrying a global id; records the mapping.
    pub fn insert(&mut self, o: O, global: ObjId) -> ObjId {
        let local = self.index.insert(o);
        self.note_mapping(local, global);
        local
    }

    /// Inserts an object whose pivot row the engine already staged in the
    /// shared matrix at shared row `row` (distances in `row_data`):
    /// matrix-adopting indexes take the row by id (no remap); everything
    /// else falls back to a plain [`insert`](Self::insert).
    pub fn insert_adopted(&mut self, o: O, global: ObjId, row: ObjId, row_data: &[f64]) -> ObjId {
        match self.index.insert_adopted(o, row, row_data) {
            Ok(local) => {
                self.note_mapping(local, global);
                local
            }
            Err(o) => self.insert(o, global),
        }
    }

    /// Re-fetches the wrapped index's adopted matrix snapshot after the
    /// engine published staged rows (no-op for non-adopting kinds).
    pub fn refresh_rows(&mut self) {
        self.index.refresh_rows();
    }

    /// Releases the wrapped index's snapshot ahead of a publication so the
    /// publish can append in place (no-op for non-adopting kinds).
    pub fn release_rows(&mut self) {
        self.index.release_rows();
    }

    /// Engine-level compaction of the wrapped index: `keep` are the old
    /// local ids of this shard's survivors (ascending global id), `rows`
    /// their row ids in the freshly compacted shared matrix — which are
    /// also their new global ids, so a successful compaction replaces the
    /// local→global table wholesale. Returns whether the index compacted
    /// (non-adopting kinds keep their tombstones; only the live slots'
    /// global ids are remapped then).
    pub fn compact_rows(&mut self, keep: &[ObjId], rows: &[ObjId]) -> bool {
        if self.index.compact_rows(keep, rows) {
            self.global_ids = rows.to_vec();
            true
        } else {
            for (&local, &gid) in keep.iter().zip(rows) {
                self.global_ids[local as usize] = gid;
            }
            false
        }
    }

    fn note_mapping(&mut self, local: ObjId, global: ObjId) {
        let slot = local as usize;
        if slot == self.global_ids.len() {
            self.global_ids.push(global);
        } else if slot < self.global_ids.len() {
            self.global_ids[slot] = global;
        } else {
            self.global_ids.resize(slot + 1, ObjId::MAX);
            self.global_ids[slot] = global;
        }
    }

    /// Removes by local id.
    pub fn remove_local(&mut self, local: ObjId) -> bool {
        self.index.remove(local)
    }

    /// Fetches a copy of a live object by local id.
    pub fn get_local(&self, local: ObjId) -> Option<O> {
        self.index.get(local)
    }

    /// Cost counter snapshot of the wrapped index.
    pub fn counters(&self) -> Counters {
        self.index.counters()
    }

    /// Resets the wrapped index's counters.
    pub fn reset_counters(&self) {
        self.index.reset_counters()
    }

    /// Storage footprint of the wrapped index.
    pub fn storage(&self) -> StorageFootprint {
        self.index.storage()
    }

    /// Forwards the page-cache knob to the wrapped index.
    pub fn set_page_cache(&self, bytes: usize) {
        self.index.set_page_cache(bytes)
    }

    /// Whether [`fork`](Self::fork) is supported by the wrapped index —
    /// the gate for the engine's copy-on-write apply transaction and for
    /// vending concurrent readers.
    pub fn forkable(&self) -> bool {
        self.index.forkable()
    }

    /// A deep, independent copy of this shard for copy-on-write mutation
    /// (see [`MetricIndex::fork`]): byte-identical answers at fork time, a
    /// **shared** distance counter, and an independently mutable slot
    /// table. `None` when the wrapped index kind does not support forking.
    pub fn fork(&self) -> Option<Shard<O>> {
        Some(Shard {
            index: self.index.fork()?,
            global_ids: self.global_ids.clone(),
        })
    }
}

/// One partition awaiting its index: the objects plus their global ids.
pub type Partition<O> = (Vec<O>, Vec<ObjId>);

/// Splits `objects` into `shards` balanced, geometry-agnostic partitions
/// (the "round-robin" baseline policy), returning each partition together
/// with the global ids of its objects (the positions in the input vector).
pub fn partition_round_robin<O>(objects: Vec<O>, shards: usize) -> Vec<Partition<O>> {
    let shards = shards.max(1);
    let n = objects.len();
    // Balanced *contiguous* runs rather than a stride: shard s takes the
    // next ⌈n/P⌉-or-⌊n/P⌋ ids in order. The split is just as
    // geometry-agnostic as a stride, but consecutive global ids keep every
    // shard's matrix slice one consecutive run, so the Lemma 1 kernel
    // streams contiguous storage instead of gathering rows strided P·l
    // apart — a stride makes each shard's scan touch one cache line per
    // row across the *whole* shared matrix, multiplying a batch's line
    // traffic by the shard count. (Compaction renumbers survivors in
    // global-id order, so contiguity also survives churn+compact.)
    let mut parts: Vec<Partition<O>> = Vec::with_capacity(shards);
    let mut next = 0usize;
    let mut iter = objects.into_iter();
    for s in 0..shards {
        let take = n / shards + usize::from(s < n % shards);
        let mut objs = Vec::with_capacity(take);
        let mut ids = Vec::with_capacity(take);
        for _ in 0..take {
            objs.push(iter.next().expect("sizes sum to n"));
            ids.push(next as ObjId);
            next += 1;
        }
        parts.push((objs, ids));
    }
    parts
}

/// Splits `objects` into `shards` partitions according to an explicit
/// per-object shard assignment (the router's pivot-space clustering),
/// preserving input order within each partition so global ids stay the
/// positions in the input vector.
pub fn partition_by_assignment<O>(
    objects: Vec<O>,
    assignment: &[usize],
    shards: usize,
) -> Vec<Partition<O>> {
    assert_eq!(
        objects.len(),
        assignment.len(),
        "one shard assignment per object"
    );
    let shards = shards.max(1);
    let mut parts: Vec<Partition<O>> = (0..shards).map(|_| (Vec::new(), Vec::new())).collect();
    for (i, o) in objects.into_iter().enumerate() {
        let s = assignment[i];
        parts[s].0.push(o);
        parts[s].1.push(i as ObjId);
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmi_metric::{BruteForce, L2};

    #[test]
    fn assignment_partitioning_preserves_order() {
        let objects: Vec<Vec<f32>> = (0..6).map(|i| vec![i as f32]).collect();
        let parts = partition_by_assignment(objects, &[1, 0, 1, 1, 0, 2], 3);
        assert_eq!(parts[0].1, vec![1, 4]);
        assert_eq!(parts[1].1, vec![0, 2, 3]);
        assert_eq!(parts[2].1, vec![5]);
        assert_eq!(parts[1].0[1], vec![2.0f32]);
    }

    #[test]
    fn round_robin_covers_everything_disjointly() {
        let objects: Vec<Vec<f32>> = (0..10).map(|i| vec![i as f32]).collect();
        let parts = partition_round_robin(objects, 3);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0].1, vec![0, 1, 2, 3]);
        assert_eq!(parts[1].1, vec![4, 5, 6]);
        assert_eq!(parts[2].1, vec![7, 8, 9]);
        // Contiguous runs: each shard's ids are consecutive, so its matrix
        // slice takes the streaming (no-gather) kernel path.
        for (_, ids) in &parts {
            assert!(ids.windows(2).all(|w| w[1] == w[0] + 1));
        }
        let mut all: Vec<u32> = parts.iter().flat_map(|(_, ids)| ids.clone()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn more_shards_than_objects() {
        let objects: Vec<Vec<f32>> = (0..2).map(|i| vec![i as f32]).collect();
        let parts = partition_round_robin(objects, 5);
        assert_eq!(parts.len(), 5);
        assert_eq!(parts.iter().map(|(o, _)| o.len()).sum::<usize>(), 2);
    }

    #[test]
    fn shard_speaks_global_ids() {
        // Shard holds objects with global ids 4, 9, 14.
        let objs = vec![vec![0.0f32], vec![10.0], vec![20.0]];
        let idx = Box::new(BruteForce::new(objs.clone(), L2));
        let shard = Shard::new(idx as Box<dyn MetricIndex<_>>, vec![4, 9, 14]);
        let mut hits = shard.range_global(&vec![0.0f32], 10.5);
        hits.sort_unstable();
        assert_eq!(hits, vec![4, 9]);
        let mut topk = TopK::new(2);
        shard.knn_into(&vec![21.0f32], 2, &mut topk);
        let got = topk.into_sorted();
        assert_eq!(got[0].id, 14);
        assert_eq!(got[1].id, 9);
    }

    #[test]
    fn insert_extends_mapping() {
        let idx = Box::new(BruteForce::new(vec![vec![0.0f32]], L2));
        let mut shard = Shard::new(idx as Box<dyn MetricIndex<_>>, vec![7]);
        shard.insert(vec![5.0f32], 42);
        assert_eq!(shard.len(), 2);
        let mut hits = shard.range_global(&vec![5.0f32], 0.1);
        hits.sort_unstable();
        assert_eq!(hits, vec![42]);
    }
}
