//! Standing submit queue with admission control: the always-on serving
//! front door.
//!
//! Callers [`submit`](SubmitQueue::submit) query batches; a serving loop
//! (any thread holding the engine or an
//! [`EngineReader`](crate::engine::EngineReader)) drains them with
//! [`pump`](crate::engine::ShardedEngine::pump). Admission control is
//! two-sided:
//!
//! * **Bounded depth** — a submit against a full queue is rejected
//!   immediately ([`SubmitOutcome::Rejected`]), pushing backpressure to the
//!   caller instead of letting latency grow without bound.
//! * **Queue-wall deadline** — a batch that waited longer than
//!   [`AdmissionPolicy::queue_wall_nanos`] before a pump reached it is shed
//!   whole ([`PumpOutcome::Shed`]) without executing: under overload it is
//!   better to fail fast than to serve answers nobody is waiting for.
//!
//! The queue is engine-agnostic plumbing: it never touches shards and holds
//! no snapshot, so submissions stay valid across any number of concurrent
//! [`apply`](crate::engine::ShardedEngine::apply) commits — each pump
//! serves against whatever snapshot is current at drain time.

use crate::engine::BatchOutcome;
use crate::query::Query;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Admission limits for a [`SubmitQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionPolicy {
    /// Maximum queued (not yet pumped) batches; a submit beyond this is
    /// rejected. `0` means unbounded.
    pub max_depth: usize,
    /// Maximum nanoseconds a batch may wait in the queue before a pump
    /// sheds it unserved. `0` disables deadline shedding.
    pub queue_wall_nanos: u64,
}

impl AdmissionPolicy {
    /// No depth bound, no deadline: every submission is admitted and
    /// eventually served.
    pub fn unbounded() -> Self {
        AdmissionPolicy {
            max_depth: 0,
            queue_wall_nanos: 0,
        }
    }
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        Self::unbounded()
    }
}

/// One admitted batch waiting for a pump.
struct Pending<O> {
    ticket: u64,
    queries: Vec<Query<O>>,
    enqueued: Instant,
}

/// What happened to a [`submit`](SubmitQueue::submit).
#[derive(Debug)]
pub enum SubmitOutcome {
    /// Admitted; `ticket` identifies the batch in the matching
    /// [`PumpOutcome`], `depth` is the queue depth after admission.
    Enqueued { ticket: u64, depth: usize },
    /// The queue was at `max_depth`; the batch was not admitted. `depth` is
    /// the depth the caller collided with — backpressure: retry later or
    /// shed upstream.
    Rejected { depth: usize },
}

/// What one [`pump`](crate::engine::ShardedEngine::pump) did.
pub enum PumpOutcome<O> {
    /// The oldest batch was served; `outcome` is its full serve result
    /// (boxed: a `BatchOutcome` is large next to the other variants).
    Served {
        ticket: u64,
        outcome: Box<BatchOutcome>,
    },
    /// The oldest batch blew its queue-wall deadline and was shed without
    /// executing; the queries come back so the caller can retry or log.
    Shed { ticket: u64, queries: Vec<Query<O>> },
    /// The queue was empty.
    Idle,
}

/// Point-in-time queue statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueueStats {
    /// Batches currently waiting.
    pub depth: usize,
    /// Total batches ever admitted.
    pub submitted: u64,
    /// Total submissions rejected at admission (full queue).
    pub rejected: u64,
    /// Total batches served by pumps.
    pub served: u64,
    /// Total batches shed by pumps (deadline blown in queue).
    pub shed: u64,
}

/// A standing multi-producer submit queue with admission control (see the
/// module docs). All methods take `&self`: any number of submitter threads
/// may race any number of pumping threads.
pub struct SubmitQueue<O> {
    policy: AdmissionPolicy,
    pending: Mutex<VecDeque<Pending<O>>>,
    next_ticket: AtomicU64,
    submitted: AtomicU64,
    rejected: AtomicU64,
    served: AtomicU64,
    shed: AtomicU64,
}

impl<O> SubmitQueue<O> {
    /// An empty queue under `policy`.
    pub fn new(policy: AdmissionPolicy) -> Self {
        SubmitQueue {
            policy,
            pending: Mutex::new(VecDeque::new()),
            next_ticket: AtomicU64::new(0),
            submitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            served: AtomicU64::new(0),
            shed: AtomicU64::new(0),
        }
    }

    /// The policy this queue admits under.
    pub fn policy(&self) -> AdmissionPolicy {
        self.policy
    }

    /// Offers one batch for serving. Admission is decided immediately:
    /// a full queue rejects (never blocks).
    pub fn submit(&self, queries: Vec<Query<O>>) -> SubmitOutcome {
        let mut q = self.pending.lock().unwrap_or_else(|e| e.into_inner());
        if self.policy.max_depth > 0 && q.len() >= self.policy.max_depth {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return SubmitOutcome::Rejected { depth: q.len() };
        }
        let ticket = self.next_ticket.fetch_add(1, Ordering::Relaxed);
        q.push_back(Pending {
            ticket,
            queries,
            enqueued: Instant::now(),
        });
        self.submitted.fetch_add(1, Ordering::Relaxed);
        SubmitOutcome::Enqueued {
            ticket,
            depth: q.len(),
        }
    }

    /// Batches currently waiting.
    pub fn depth(&self) -> usize {
        self.pending.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Point-in-time statistics (each field individually consistent).
    pub fn stats(&self) -> QueueStats {
        QueueStats {
            depth: self.depth(),
            submitted: self.submitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            served: self.served.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
        }
    }

    /// Pops the oldest batch and either sheds it (deadline blown in queue)
    /// or runs it through `serve`. The lock is dropped before `serve` runs,
    /// so submitters never wait on serving.
    pub fn pump_one(&self, serve: impl FnOnce(&[Query<O>]) -> BatchOutcome) -> PumpOutcome<O> {
        let popped = {
            let mut q = self.pending.lock().unwrap_or_else(|e| e.into_inner());
            q.pop_front()
        };
        let Some(p) = popped else {
            return PumpOutcome::Idle;
        };
        if self.policy.queue_wall_nanos > 0
            && p.enqueued.elapsed() >= Duration::from_nanos(self.policy.queue_wall_nanos)
        {
            self.shed.fetch_add(1, Ordering::Relaxed);
            return PumpOutcome::Shed {
                ticket: p.ticket,
                queries: p.queries,
            };
        }
        let outcome = serve(&p.queries);
        self.served.fetch_add(1, Ordering::Relaxed);
        PumpOutcome::Served {
            ticket: p.ticket,
            outcome: Box::new(outcome),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(n: usize) -> Vec<Query<Vec<f32>>> {
        (0..n).map(|_| Query::range(vec![0.0f32], 1.0)).collect()
    }

    fn fake_serve(queries: &[Query<Vec<f32>>]) -> BatchOutcome {
        BatchOutcome {
            results: queries
                .iter()
                .map(|_| crate::query::QueryResult::Range(Vec::new()))
                .collect(),
            report: Default::default(),
        }
    }

    #[test]
    fn fifo_order_and_tickets() {
        let q: SubmitQueue<Vec<f32>> = SubmitQueue::new(AdmissionPolicy::unbounded());
        let t0 = match q.submit(batch(1)) {
            SubmitOutcome::Enqueued { ticket, depth } => {
                assert_eq!(depth, 1);
                ticket
            }
            SubmitOutcome::Rejected { .. } => panic!("unbounded queue rejected"),
        };
        q.submit(batch(2));
        match q.pump_one(fake_serve) {
            PumpOutcome::Served { ticket, outcome } => {
                assert_eq!(ticket, t0);
                assert_eq!(outcome.results.len(), 1);
            }
            _ => panic!("expected the first batch served"),
        }
        assert_eq!(q.depth(), 1);
        assert!(matches!(q.pump_one(fake_serve), PumpOutcome::Served { .. }));
        assert!(matches!(q.pump_one(fake_serve), PumpOutcome::Idle));
        let s = q.stats();
        assert_eq!((s.submitted, s.served, s.shed, s.rejected), (2, 2, 0, 0));
    }

    #[test]
    fn full_queue_rejects_with_backpressure() {
        let q: SubmitQueue<Vec<f32>> = SubmitQueue::new(AdmissionPolicy {
            max_depth: 2,
            queue_wall_nanos: 0,
        });
        assert!(matches!(q.submit(batch(1)), SubmitOutcome::Enqueued { .. }));
        assert!(matches!(q.submit(batch(1)), SubmitOutcome::Enqueued { .. }));
        assert!(matches!(
            q.submit(batch(1)),
            SubmitOutcome::Rejected { depth: 2 }
        ));
        assert_eq!(q.stats().rejected, 1);
        // Draining one batch frees a slot.
        q.pump_one(fake_serve);
        assert!(matches!(q.submit(batch(1)), SubmitOutcome::Enqueued { .. }));
    }

    #[test]
    fn stale_batch_is_shed_with_queries_returned() {
        let q: SubmitQueue<Vec<f32>> = SubmitQueue::new(AdmissionPolicy {
            max_depth: 0,
            queue_wall_nanos: 1, // everything is stale by pump time
        });
        q.submit(batch(3));
        std::thread::sleep(Duration::from_millis(2));
        match q.pump_one(fake_serve) {
            PumpOutcome::Shed { queries, .. } => assert_eq!(queries.len(), 3),
            _ => panic!("expected the stale batch shed"),
        }
        assert_eq!(q.stats().shed, 1);
    }
}
