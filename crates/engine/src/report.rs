//! Serving metrics: throughput, latency percentiles, aggregate cost.

use pmi_metric::Counters;
use pmi_obs::{Hist, QueryTrace};

/// Latency distribution of a served batch, from a monotonic clock
/// (`std::time::Instant`), in seconds.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LatencySummary {
    /// Arithmetic mean.
    pub mean_secs: f64,
    /// Best observed latency.
    pub min_secs: f64,
    /// Median (50th percentile).
    pub p50_secs: f64,
    /// 90th percentile.
    pub p90_secs: f64,
    /// 99th percentile.
    pub p99_secs: f64,
    /// 99.9th percentile — the tail the MVCC work will be judged on.
    pub p999_secs: f64,
    /// Worst observed latency.
    pub max_secs: f64,
}

impl LatencySummary {
    /// Summarizes per-query latencies given in nanoseconds. Uses the
    /// nearest-rank method; an empty input yields all zeros. This is the
    /// sort-based exact path used when observability is off; with it on,
    /// the engine summarizes the merged per-worker histogram via
    /// [`LatencySummary::from_hist`] and never sorts.
    pub fn from_nanos(mut nanos: Vec<u64>) -> Self {
        if nanos.is_empty() {
            return LatencySummary::default();
        }
        nanos.sort_unstable();
        let n = nanos.len();
        let pick = |p: f64| -> f64 {
            let rank = ((p * n as f64).ceil() as usize).clamp(1, n);
            nanos[rank - 1] as f64 * 1e-9
        };
        let sum: u128 = nanos.iter().map(|&x| x as u128).sum();
        LatencySummary {
            mean_secs: sum as f64 * 1e-9 / n as f64,
            min_secs: nanos[0] as f64 * 1e-9,
            p50_secs: pick(0.50),
            p90_secs: pick(0.90),
            p99_secs: pick(0.99),
            p999_secs: pick(0.999),
            max_secs: nanos[n - 1] as f64 * 1e-9,
        }
    }

    /// Summarizes a latency histogram without sorting anything: mean, min,
    /// and max are exact; percentiles carry the histogram's sub-bucket
    /// resolution (< 1/32 relative error). An empty histogram yields all
    /// zeros.
    pub fn from_hist(h: &Hist) -> Self {
        if h.is_empty() {
            return LatencySummary::default();
        }
        LatencySummary {
            mean_secs: h.mean_secs(),
            min_secs: h.min_secs(),
            p50_secs: h.quantile(0.50),
            p90_secs: h.quantile(0.90),
            p99_secs: h.quantile(0.99),
            p999_secs: h.quantile(0.999),
            max_secs: h.max_secs(),
        }
    }
}

/// Per-shard serving breakdown for one batch: exact probe and cost
/// accounting always, probe-wall timing when observability is enabled
/// (zeros otherwise). This is what makes shard skew — the P=8 round-robin
/// straggler — visible in a [`ServeReport`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ShardServeStats {
    /// Shard index.
    pub shard: usize,
    /// Exact probes this shard served in the batch.
    pub probes: u64,
    /// Exact distance computations the probes cost (per-shard atomic
    /// counter delta).
    pub compdists: u64,
    /// Exact page accesses (reads + writes) the probes cost.
    pub page_accesses: u64,
    /// Total probe wall-clock attributed to this shard, seconds
    /// (0 with observability off).
    pub wall_secs: f64,
    /// Median probe wall (0 with observability off).
    pub p50_secs: f64,
    /// 99th-percentile probe wall (0 with observability off).
    pub p99_secs: f64,
}

/// What building a [`ShardedEngine`](crate::ShardedEngine) cost: exact
/// distance computations and wall-clock. The engine records the per-shard
/// construction cost itself; the `pmi` facade adds the shared
/// pivot-distance matrix cost on top, so the ~2× build-distance saving of
/// the shared-matrix path is visible and regression-testable.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BuildStats {
    /// Distance computations spent building the engine: the shared pivot
    /// matrix (computed once) plus every shard's own construction cost.
    pub build_compdists: u64,
    /// Wall-clock duration of the whole build, seconds.
    pub build_wall_secs: f64,
}

/// Lifetime totals of the engine's unified mutation path
/// ([`ShardedEngine::apply`](crate::ShardedEngine::apply) and the
/// single-op wrappers), copied into every [`ServeReport`] so serving
/// dashboards see the churn the engine has absorbed. Every counter is
/// exact; none is reset by [`reset_counters`](crate::ShardedEngine::reset_counters).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UpdateStats {
    /// Objects inserted since construction.
    pub inserts: u64,
    /// Objects removed since construction.
    pub removes: u64,
    /// Distance computations spent mapping inserts into pivot space
    /// (exactly one `l`-wide matrix row per mapped insert).
    pub map_compdists: u64,
    /// Objects moved between shards by incremental re-clustering.
    pub moved_objects: u64,
    /// Re-clustering passes run.
    pub reclusters: u64,
    /// Shared-matrix compactions run (dead rows dropped, ids renumbered).
    pub compactions: u64,
    /// Dead matrix rows dropped by compaction in total.
    pub compacted_rows: u64,
}

/// How a [`serve`](crate::ShardedEngine::serve) batch was scheduled onto
/// the worker pool — chosen per batch by a cost model (or pinned by
/// [`SchedPolicy`](crate::SchedPolicy)).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum SchedStrategy {
    /// Workers claim whole queries; each worker probes all of its query's
    /// planned shards itself. The default: with enough queries to go
    /// around it keeps every worker busy with zero cross-thread merge.
    #[default]
    QueryParallel,
    /// Each query's planned shard probes fan out across the worker pool
    /// (one query at a time). Wins only when the batch is smaller than the
    /// pool and per-query work is large enough to amortize the fan-out.
    ShardParallel,
}

impl SchedStrategy {
    /// Human-readable label (`"query-parallel"` / `"shard-parallel"`).
    pub fn label(&self) -> &'static str {
        match self {
            SchedStrategy::QueryParallel => "query-parallel",
            SchedStrategy::ShardParallel => "shard-parallel",
        }
    }
}

/// What a call to [`ShardedEngine::serve`](crate::ShardedEngine::serve)
/// measured: batch shape, wall-clock throughput, latency percentiles, and
/// the paper's cost metrics aggregated across every shard.
#[derive(Clone, Debug, Default)]
pub struct ServeReport {
    /// Total queries in the batch.
    pub queries: usize,
    /// How the batch was scheduled onto workers (see [`SchedStrategy`]).
    pub strategy: SchedStrategy,
    /// How many were range queries.
    pub range_queries: usize,
    /// How many were kNN queries.
    pub knn_queries: usize,
    /// Total result objects returned across the batch.
    pub total_results: usize,
    /// Queries that returned a partial (degraded) answer — a budget cut
    /// their shard probes short or a quarantined shard was routed around.
    pub degraded: usize,
    /// Queries shed by batch-level admission control without executing.
    pub shed: usize,
    /// Queries that failed validation or panicked (see each
    /// `QueryResult::Failed` for the typed error).
    pub failed: usize,
    /// Number of shards in the engine (actual probes are in
    /// `shards_probed` — routed queries touch a subset).
    pub shards: usize,
    /// Worker threads used.
    pub threads: usize,
    /// Publication epoch of the [`EngineSnapshot`](crate::EngineSnapshot)
    /// the whole batch was served against — every query in a batch sees one
    /// consistent snapshot, so two batches reporting the same epoch saw
    /// byte-identical engine state.
    pub epoch: u64,
    /// Wall-clock duration of the whole batch, seconds.
    pub wall_secs: f64,
    /// Queries per second (`queries / wall_secs`).
    pub qps: f64,
    /// Per-query latency distribution.
    pub latency: LatencySummary,
    /// Aggregate cost of the batch: the sum over shards of the per-shard
    /// counter deltas (`compdists`, page reads/writes). Exact — every shard
    /// counts through atomic counters.
    pub cost: Counters,
    /// Exact number of shard probes executed across the batch (a query
    /// touching 3 of 8 shards adds 3). Round-robin engines always probe
    /// `queries × shards`.
    pub shards_probed: u64,
    /// Exact number of shard probes avoided by pivot-space routing across
    /// the batch (the same query adds 5). Always 0 for round-robin engines.
    pub shards_pruned: u64,
    /// Construction cost of the serving engine (copied from
    /// [`ShardedEngine::build_stats`](crate::ShardedEngine::build_stats),
    /// identical across batches).
    pub build: BuildStats,
    /// Cumulative mutation totals (copied from
    /// [`ShardedEngine::update_stats`](crate::ShardedEngine::update_stats)
    /// at serve time).
    pub updates: UpdateStats,
    /// Per-shard breakdown of the batch, indexed by shard. Probe and cost
    /// counts are exact regardless of the observability switch; the wall
    /// fields need it on.
    pub per_shard: Vec<ShardServeStats>,
    /// Per-query traces captured under the engine's
    /// [`TracePolicy`](pmi_obs::TracePolicy), in batch order — empty with
    /// the default (disabled) policy. Render one with
    /// [`QueryTrace::explain`].
    pub traces: Vec<QueryTrace>,
}

impl ServeReport {
    /// Fraction of shard-probe candidates the router skipped
    /// (`pruned / (probed + pruned)`); 0 when nothing was counted.
    pub fn prune_rate(&self) -> f64 {
        let total = self.shards_probed + self.shards_pruned;
        if total == 0 {
            0.0
        } else {
            self.shards_pruned as f64 / total as f64
        }
    }
}

impl std::fmt::Display for ServeReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} queries ({} range, {} kNN) on {} shard(s) x {} thread(s), {} scheduling, snapshot epoch {}",
            self.queries,
            self.range_queries,
            self.knn_queries,
            self.shards,
            self.threads,
            self.strategy.label(),
            self.epoch
        )?;
        writeln!(
            f,
            "  wall {:.4}s  throughput {:.0} q/s  results {}",
            self.wall_secs, self.qps, self.total_results
        )?;
        writeln!(
            f,
            "  latency mean {:.1}us  min {:.1}us  p50 {:.1}us  p90 {:.1}us  p99 {:.1}us  p999 {:.1}us  max {:.1}us",
            self.latency.mean_secs * 1e6,
            self.latency.min_secs * 1e6,
            self.latency.p50_secs * 1e6,
            self.latency.p90_secs * 1e6,
            self.latency.p99_secs * 1e6,
            self.latency.p999_secs * 1e6,
            self.latency.max_secs * 1e6
        )?;
        for s in &self.per_shard {
            writeln!(
                f,
                "  shard {}: {} probes  {} compdists  {} page accesses  wall {:.4}s  p50 {:.1}us  p99 {:.1}us",
                s.shard,
                s.probes,
                s.compdists,
                s.page_accesses,
                s.wall_secs,
                s.p50_secs * 1e6,
                s.p99_secs * 1e6
            )?;
        }
        writeln!(
            f,
            "  routing: {} shard probes, {} pruned ({:.1}% skipped)",
            self.shards_probed,
            self.shards_pruned,
            self.prune_rate() * 100.0
        )?;
        writeln!(
            f,
            "  cost: {} compdists, {} page accesses",
            self.cost.compdists,
            self.cost.page_accesses()
        )?;
        writeln!(
            f,
            "  build: {} compdists in {:.3}s",
            self.build.build_compdists, self.build.build_wall_secs
        )?;
        write!(
            f,
            "  updates: {} inserted, {} removed, {} moved by {} re-cluster(s)",
            self.updates.inserts,
            self.updates.removes,
            self.updates.moved_objects,
            self.updates.reclusters
        )?;
        if self.degraded + self.shed + self.failed > 0 {
            write!(
                f,
                "\n  robustness: {} degraded, {} shed, {} failed",
                self.degraded, self.shed, self.failed
            )?;
        }
        if !self.traces.is_empty() {
            write!(f, "\n  traces: {} captured", self.traces.len())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_latencies_are_zero() {
        let s = LatencySummary::from_nanos(Vec::new());
        assert_eq!(s, LatencySummary::default());
    }

    #[test]
    fn percentiles_nearest_rank() {
        // 1..=100 microseconds.
        let nanos: Vec<u64> = (1..=100).map(|i| i * 1_000).collect();
        let s = LatencySummary::from_nanos(nanos);
        assert!((s.p50_secs - 50e-6).abs() < 1e-12);
        assert!((s.p90_secs - 90e-6).abs() < 1e-12);
        assert!((s.p99_secs - 99e-6).abs() < 1e-12);
        assert!((s.max_secs - 100e-6).abs() < 1e-12);
        assert!((s.mean_secs - 50.5e-6).abs() < 1e-12);
    }

    #[test]
    fn single_sample() {
        // n=1: every rank clamps to the only sample.
        let s = LatencySummary::from_nanos(vec![2_000]);
        assert!((s.mean_secs - 2e-6).abs() < 1e-12);
        assert!((s.min_secs - 2e-6).abs() < 1e-12);
        assert!((s.p50_secs - 2e-6).abs() < 1e-12);
        assert!((s.p99_secs - 2e-6).abs() < 1e-12);
        assert!((s.p999_secs - 2e-6).abs() < 1e-12);
        assert!((s.max_secs - 2e-6).abs() < 1e-12);
    }

    #[test]
    fn all_equal_ties() {
        let s = LatencySummary::from_nanos(vec![5_000; 97]);
        for v in [
            s.mean_secs,
            s.min_secs,
            s.p50_secs,
            s.p90_secs,
            s.p99_secs,
            s.p999_secs,
            s.max_secs,
        ] {
            assert!((v - 5e-6).abs() < 1e-12);
        }
    }

    #[test]
    fn mean_survives_u64_scale_sums() {
        // Two samples near u64::MAX would wrap a u64 accumulator; the u128
        // sum keeps the mean exact.
        let big = u64::MAX - 1;
        let s = LatencySummary::from_nanos(vec![big, big]);
        assert!((s.mean_secs - big as f64 * 1e-9).abs() / s.mean_secs < 1e-12);
        assert_eq!(s.min_secs, s.max_secs);
    }

    #[test]
    fn p999_separates_the_tail() {
        // 999 fast samples and one slow one: p99 stays fast, p999 finds it.
        let mut nanos = vec![1_000u64; 999];
        nanos.push(1_000_000);
        let s = LatencySummary::from_nanos(nanos);
        assert!((s.p99_secs - 1e-6).abs() < 1e-12);
        assert!((s.p999_secs - 1e-6).abs() < 1e-12, "rank 999 is still fast");
        assert!((s.max_secs - 1e-3).abs() < 1e-12);
        // With 1000 slow-tail samples in 10_000, p999 crosses into the tail.
        let mut nanos = vec![1_000u64; 9_000];
        nanos.extend(std::iter::repeat_n(1_000_000, 1_000));
        let s = LatencySummary::from_nanos(nanos);
        assert!((s.p999_secs - 1e-3).abs() < 1e-12);
    }

    #[test]
    fn from_hist_matches_from_nanos_envelope() {
        let mut h = pmi_obs::Hist::new();
        let nanos: Vec<u64> = (1..=1000).map(|i| i * 997).collect();
        for &v in &nanos {
            h.record(v);
        }
        let exact = LatencySummary::from_nanos(nanos);
        let approx = LatencySummary::from_hist(&h);
        // Exact side fields agree exactly; quantiles within sub-bucket error.
        assert!((approx.mean_secs - exact.mean_secs).abs() < 1e-15);
        assert_eq!(approx.min_secs, exact.min_secs);
        assert_eq!(approx.max_secs, exact.max_secs);
        for (a, e) in [
            (approx.p50_secs, exact.p50_secs),
            (approx.p90_secs, exact.p90_secs),
            (approx.p99_secs, exact.p99_secs),
            (approx.p999_secs, exact.p999_secs),
        ] {
            assert!((a - e).abs() / e < 1.0 / 32.0, "approx {a} vs exact {e}");
        }
        assert_eq!(
            LatencySummary::from_hist(&pmi_obs::Hist::new()),
            LatencySummary::default()
        );
    }

    #[test]
    fn report_displays() {
        let r = ServeReport {
            queries: 10,
            range_queries: 4,
            knn_queries: 6,
            shards: 2,
            threads: 3,
            wall_secs: 0.5,
            qps: 20.0,
            shards_probed: 15,
            shards_pruned: 5,
            ..ServeReport::default()
        };
        let s = format!("{r}");
        assert!(s.contains("10 queries"));
        assert!(s.contains("2 shard"));
        assert!(s.contains("15 shard probes"));
        assert!(s.contains("5 pruned"));
        assert!(s.contains("25.0% skipped"));
        // The robustness line only appears when something went wrong.
        assert!(!s.contains("robustness:"));
        let r = ServeReport {
            degraded: 2,
            shed: 1,
            failed: 3,
            ..ServeReport::default()
        };
        assert!(format!("{r}").contains("robustness: 2 degraded, 1 shed, 3 failed"));
    }

    #[test]
    fn prune_rate_handles_zero() {
        assert_eq!(ServeReport::default().prune_rate(), 0.0);
        let r = ServeReport {
            shards_probed: 3,
            shards_pruned: 1,
            ..ServeReport::default()
        };
        assert!((r.prune_rate() - 0.25).abs() < 1e-12);
    }
}
