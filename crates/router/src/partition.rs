//! Balanced pivot-space partitioning.
//!
//! Objects are assigned to shards by clustering their pivot-distance
//! vectors — the rows of the shared [`PivotMatrix`] — with a k-means-style
//! loop in pivot space whose assignment step is *balanced* (no shard exceeds
//! `ceil(n / P)` objects and none is left empty), so routing quality never
//! comes at the price of a hot shard. Degenerate inputs — one shard, no
//! pivots, fewer objects than shards, or a dataset whose mapped points are
//! all identical — fall back to the engine's original round-robin
//! assignment, which is always valid.

use pmi_metric::PivotMatrix;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Assignment iterations; balanced k-means converges fast and the result
/// only steers routing quality, never correctness.
const MAX_ITERS: usize = 8;

/// The engine's original policy: object `i` to shard `i % shards`.
pub fn assign_round_robin(n: usize, shards: usize) -> Vec<usize> {
    let shards = shards.max(1);
    (0..n).map(|i| i % shards).collect()
}

#[inline]
fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Clusters the rows of `mapped` (one pivot-distance vector per object)
/// into `shards` balanced groups and returns the shard of each object.
///
/// Centroids are seeded farthest-first (deterministic per `seed`), then a
/// few rounds of: balanced nearest-centroid assignment, centroid
/// recomputation. The assignment step guarantees every shard gets at least
/// one object and at most `ceil(n / shards)`, so shards stay within one
/// object of perfectly balanced. Falls back to round-robin when clustering
/// cannot help (see module docs). Runs in `O(iters · n · shards)` time and
/// `O(n · shards)` memory; the scan over mapped points is a sequential pass
/// over the flat matrix.
pub fn assign_pivot_space(mapped: &PivotMatrix, shards: usize, seed: u64) -> Vec<usize> {
    let n = mapped.rows();
    let p = shards.max(1).min(n.max(1));
    let dim = mapped.width();
    if p <= 1 || dim == 0 || n <= p {
        return assign_round_robin(n, p);
    }

    // Farthest-first (maximin) seeding: spreads centroids across the mapped
    // point cloud, deterministic given the seed.
    let mut rng = StdRng::seed_from_u64(seed ^ 0x524f_5554); // "ROUT"
    let mut centroids: Vec<Vec<f64>> = vec![mapped.row(rng.random_range(0..n)).to_vec()];
    let mut nearest = vec![f64::INFINITY; n];
    while centroids.len() < p {
        let newest = centroids.last().expect("at least one centroid");
        let (mut far, mut far_d) = (0usize, -1.0f64);
        for (i, m) in mapped.iter_rows() {
            let d = sq_dist(m, newest).min(nearest[i]);
            nearest[i] = d;
            if d > far_d {
                far_d = d;
                far = i;
            }
        }
        if far_d <= 0.0 {
            // Every mapped point coincides with a centroid: the pivot space
            // carries no routing signal, so balance is all that matters.
            return assign_round_robin(n, p);
        }
        centroids.push(mapped.row(far).to_vec());
    }

    let cap = n.div_ceil(p);
    let mut assignment = vec![usize::MAX; n];
    for _ in 0..MAX_ITERS {
        let next = balanced_assign(mapped, &centroids, cap);
        if next == assignment {
            break;
        }
        assignment = next;
        // Standard k-means centroid update over the new groups.
        let mut sums = vec![vec![0.0f64; dim]; p];
        let mut counts = vec![0usize; p];
        for ((_, m), &s) in mapped.iter_rows().zip(&assignment) {
            counts[s] += 1;
            for (acc, x) in sums[s].iter_mut().zip(m) {
                *acc += x;
            }
        }
        for s in 0..p {
            if counts[s] > 0 {
                for x in &mut sums[s] {
                    *x /= counts[s] as f64;
                }
                centroids[s] = std::mem::take(&mut sums[s]);
            }
        }
    }
    assignment
}

/// Nearest-centroid assignment under a per-shard capacity: first every
/// centroid claims its single nearest unassigned point (no shard left
/// empty), then the remaining points are taken in globally ascending
/// (distance, point, centroid) order, skipping full shards. Total capacity
/// `p · cap >= n` guarantees every point lands somewhere.
///
/// The global order is realized **lazily**: each point keeps its own
/// centroid preference list sorted ascending, and a binary heap holds one
/// candidate pair per unassigned point — popping the heap yields exactly
/// the pairs a full `sort` of all `n · p` pairs would visit, in the same
/// order (a point's pairs enter the heap in its own ascending order, which
/// is consistent with the global order; shard fullness only ever grows).
/// This replaced an eager build-and-sort of all `n · p` pairs per k-means
/// iteration — the superlinear-in-`P` term behind the pivot-space build
/// wall at `P = 8` — with `O(n · p)` list setup plus one heap op per
/// assignment (and per skip of a full shard), while producing the
/// **identical** assignment (unit-tested against the reference below).
///
/// Distances are compared as raw `f64` bits: squared distances are
/// non-negative, where bit order equals numeric order, so the tuple key
/// `(bits, point, centroid)` reproduces the reference
/// `total_cmp`-then-id order exactly.
fn balanced_assign(mapped: &PivotMatrix, centroids: &[Vec<f64>], cap: usize) -> Vec<usize> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let n = mapped.rows();
    let p = centroids.len();
    let mut assignment = vec![usize::MAX; n];
    let mut counts = vec![0usize; p];

    for (s, c) in centroids.iter().enumerate() {
        let mut pick = None;
        let mut pick_d = f64::INFINITY;
        for (i, m) in mapped.iter_rows() {
            if assignment[i] == usize::MAX {
                let d = sq_dist(m, c);
                if d < pick_d {
                    pick_d = d;
                    pick = Some(i);
                }
            }
        }
        if let Some(i) = pick {
            assignment[i] = s;
            counts[s] += 1;
        }
    }

    // Per-point preference lists over the centroids, ascending by
    // (distance bits, centroid id); `cursor[j]` is the next untried
    // preference of the j-th unassigned point.
    let mut points: Vec<u32> = Vec::new();
    let mut prefs: Vec<(u64, u32)> = Vec::new();
    for (i, m) in mapped.iter_rows() {
        if assignment[i] != usize::MAX {
            continue;
        }
        let start = prefs.len();
        prefs.extend(
            centroids
                .iter()
                .enumerate()
                .map(|(s, c)| (sq_dist(m, c).to_bits(), s as u32)),
        );
        prefs[start..].sort_unstable();
        points.push(i as u32);
    }
    let pref_of = |j: usize, rank: usize| prefs[j * p + rank];

    let mut cursor = vec![0usize; points.len()];
    let mut heap: BinaryHeap<Reverse<(u64, u32, u32)>> = BinaryHeap::with_capacity(points.len());
    let mut list_of = vec![0u32; n];
    for (j, &i) in points.iter().enumerate() {
        let (d, s) = pref_of(j, 0);
        // The heap key carries the point id (global tie order); `list_of`
        // maps it back to its preference list on pop.
        heap.push(Reverse((d, i, s)));
        list_of[i as usize] = j as u32;
    }
    while let Some(Reverse((_, i, s))) = heap.pop() {
        let j = list_of[i as usize] as usize;
        if counts[s as usize] < cap {
            assignment[i as usize] = s as usize;
            counts[s as usize] += 1;
        } else {
            // Shard full: advance this point to its next preference. A
            // non-full shard always exists among the untried ones because
            // total capacity covers every point.
            cursor[j] += 1;
            let (d, s) = pref_of(j, cursor[j]);
            heap.push(Reverse((d, i, s)));
        }
    }
    debug_assert!(assignment.iter().all(|&s| s < p));
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(per: usize, centers: &[(f64, f64)]) -> PivotMatrix {
        // Tiny deterministic jitter, no RNG needed.
        let mut out = PivotMatrix::new(2);
        for &(cx, cy) in centers {
            for i in 0..per {
                let dx = (i % 5) as f64 * 0.01;
                let dy = (i % 7) as f64 * 0.01;
                out.push_row(&[cx + dx, cy + dy]);
            }
        }
        out
    }

    #[test]
    fn round_robin_fallbacks() {
        assert_eq!(assign_round_robin(5, 2), vec![0, 1, 0, 1, 0]);
        // One shard.
        assert_eq!(
            assign_pivot_space(&blobs(4, &[(0.0, 0.0)]), 1, 7),
            vec![0; 4]
        );
        // Zero-dimensional mapped points (no pivots).
        let mut flat = PivotMatrix::new(0);
        for _ in 0..3 {
            flat.push_row(&[]);
        }
        assert_eq!(assign_pivot_space(&flat, 2, 7), vec![0, 1, 0]);
        // All mapped points identical.
        let same = PivotMatrix::from_rows(2, vec![[3.0, 3.0]; 6]);
        assert_eq!(assign_pivot_space(&same, 3, 7), vec![0, 1, 2, 0, 1, 2]);
        // Fewer objects than shards.
        assert_eq!(
            assign_pivot_space(&blobs(2, &[(0.0, 0.0)]), 5, 7),
            vec![0, 1]
        );
    }

    #[test]
    fn balanced_and_total() {
        let pts = blobs(10, &[(0.0, 0.0), (100.0, 0.0), (0.0, 100.0)]);
        let a = assign_pivot_space(&pts, 3, 42);
        assert_eq!(a.len(), 30);
        let mut counts = [0usize; 3];
        for &s in &a {
            counts[s] += 1;
        }
        let cap = 30usize.div_ceil(3);
        for (s, &c) in counts.iter().enumerate() {
            assert!(c >= 1, "shard {s} empty");
            assert!(c <= cap, "shard {s} over capacity: {c} > {cap}");
        }
    }

    #[test]
    fn separated_blobs_land_in_distinct_shards() {
        let pts = blobs(
            8,
            &[(0.0, 0.0), (1000.0, 0.0), (0.0, 1000.0), (1000.0, 1000.0)],
        );
        let a = assign_pivot_space(&pts, 4, 1);
        // Each blob of 8 points must map to a single shard (capacity is
        // exactly 8, and the blobs are far apart).
        for blob in 0..4 {
            let first = a[blob * 8];
            for j in 0..8 {
                assert_eq!(a[blob * 8 + j], first, "blob {blob} split");
            }
        }
        // And the four blobs use four distinct shards.
        let mut used: Vec<usize> = (0..4).map(|b| a[b * 8]).collect();
        used.sort_unstable();
        used.dedup();
        assert_eq!(used.len(), 4);
    }

    #[test]
    fn deterministic_per_seed() {
        let pts = blobs(6, &[(0.0, 0.0), (50.0, 50.0)]);
        assert_eq!(
            assign_pivot_space(&pts, 2, 9),
            assign_pivot_space(&pts, 2, 9)
        );
    }

    /// The eager reference the lazy-heap assignment replaced: build every
    /// `(distance, point, centroid)` pair, sort, scan. Kept only to prove
    /// the fast path produces the identical assignment.
    fn balanced_assign_reference(
        mapped: &PivotMatrix,
        centroids: &[Vec<f64>],
        cap: usize,
    ) -> Vec<usize> {
        let n = mapped.rows();
        let p = centroids.len();
        let mut assignment = vec![usize::MAX; n];
        let mut counts = vec![0usize; p];
        for (s, c) in centroids.iter().enumerate() {
            let mut pick = None;
            let mut pick_d = f64::INFINITY;
            for (i, m) in mapped.iter_rows() {
                if assignment[i] == usize::MAX {
                    let d = sq_dist(m, c);
                    if d < pick_d {
                        pick_d = d;
                        pick = Some(i);
                    }
                }
            }
            if let Some(i) = pick {
                assignment[i] = s;
                counts[s] += 1;
            }
        }
        let mut pairs: Vec<(f64, u32, u32)> = Vec::new();
        for (i, m) in mapped.iter_rows() {
            if assignment[i] == usize::MAX {
                for (s, c) in centroids.iter().enumerate() {
                    pairs.push((sq_dist(m, c), i as u32, s as u32));
                }
            }
        }
        pairs.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
        for (_, i, s) in pairs {
            let (i, s) = (i as usize, s as usize);
            if assignment[i] == usize::MAX && counts[s] < cap {
                assignment[i] = s;
                counts[s] += 1;
            }
        }
        assignment
    }

    #[test]
    fn lazy_heap_assignment_equals_sorted_reference() {
        // Mixed shapes, including heavy capacity pressure (all points near
        // one centroid), duplicate points (distance ties broken by ids),
        // and p not dividing n.
        let cases: Vec<(PivotMatrix, usize)> = vec![
            (blobs(10, &[(0.0, 0.0), (100.0, 0.0), (0.0, 100.0)]), 3),
            (blobs(23, &[(1.0, 1.0), (1.5, 1.2)]), 4),
            (PivotMatrix::from_rows(2, vec![[5.0, 5.0]; 17]), 5),
            (
                PivotMatrix::from_rows(2, (0..40).map(|i| [(i % 7) as f64, (i % 11) as f64])),
                6,
            ),
        ];
        for (mapped, p) in cases {
            let n = mapped.rows();
            let cap = n.div_ceil(p);
            // Centroids straight from farthest-first over the data, like
            // the real loop would produce.
            let centroids: Vec<Vec<f64>> =
                (0..p).map(|s| mapped.row((s * n) / p).to_vec()).collect();
            let fast = balanced_assign(&mapped, &centroids, cap);
            let slow = balanced_assign_reference(&mapped, &centroids, cap);
            assert_eq!(fast, slow, "n={n} p={p}");
        }
    }
}
