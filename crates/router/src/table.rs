//! The routing table: per-shard pivot-space summaries plus the query
//! planner that decides which shards a query must probe.

use pmi_metric::lemmas::Mbb;
use pmi_metric::PivotMatrix;
use std::sync::Arc;

/// Boxed pivot-space mapper: appends `(d(o, p_1), …, d(o, p_l))` to the
/// caller's buffer. The write-into shape keeps the serving hot loop free of
/// per-query allocations — workers reuse one buffer across a whole batch.
pub type Mapper<O> = Box<dyn Fn(&O, &mut Vec<f64>) + Send + Sync>;

/// The shared form the table stores: cloning a [`RoutingTable`] shares the
/// mapper and copies only the boxes (copy-on-write rebox — the engine's
/// apply transaction clones the table, mutates the clone's boxes, and
/// publishes it with the next engine snapshot).
type SharedMapper<O> = Arc<dyn Fn(&O, &mut Vec<f64>) + Send + Sync>;

/// Per-shard routing state for a pivot-space-partitioned engine: a mapper
/// from objects into pivot space (`o ↦ (d(o, p_1), …, d(o, p_l))`) and one
/// minimum bounding box per shard over its members' mapped points.
///
/// Planning is a conservative application of Lemma 1 at shard granularity,
/// so a routed engine returns exactly what probing every shard would:
///
/// * [`range_plan_into`](Self::range_plan_into) keeps only the shards whose
///   box intersects the query's search box (`lemma1_box_prunable` on the
///   rest);
/// * [`knn_order_into`](Self::knn_order_into) sorts shards by ascending box
///   lower bound, letting the engine probe best-first and stop paying for
///   shards whose bound exceeds the current k-th distance.
///
/// All planning entry points are write-into (the serving hot loop reuses
/// one buffer per worker); the old allocating wrappers are gone.
///
/// Boxes are maintained exactly through the engine's mutation path: grown
/// on insert ([`extend`](Self::extend)) and recomputed from the surviving
/// members' mapped points on remove ([`shrink`](Self::shrink) /
/// [`rebox_from_rows`](Self::rebox_from_rows)), so pruning power does not
/// decay under churn — there is exactly one mutation route (the engine's
/// transactional `apply`), so published boxes are never stale.
///
/// Cloning shares the mapper (an `Arc`) and deep-copies only the boxes:
/// the table is immutable once published inside an engine snapshot, and
/// the apply transaction reboxes a copy-on-write clone off to the side.
pub struct RoutingTable<O> {
    mapper: SharedMapper<O>,
    boxes: Vec<Mbb>,
}

impl<O> Clone for RoutingTable<O> {
    fn clone(&self) -> Self {
        RoutingTable {
            mapper: Arc::clone(&self.mapper),
            boxes: self.boxes.clone(),
        }
    }
}

impl<O> RoutingTable<O> {
    /// Wraps a mapper and pre-computed per-shard boxes.
    ///
    /// Correctness contract: `mapper` must append the pivot-distance vector
    /// of its argument under the *same* pivots and metric that produced the
    /// boxes, and every object in shard `s` must have its mapped point
    /// inside `boxes[s]`.
    pub fn new(
        mapper: impl Fn(&O, &mut Vec<f64>) + Send + Sync + 'static,
        boxes: Vec<Mbb>,
    ) -> Self {
        RoutingTable {
            mapper: Arc::new(mapper),
            boxes,
        }
    }

    /// Builds the table from a partitioning: row `i` of `mapped` (the
    /// shared pivot-distance matrix) is object `i`'s pivot-distance vector,
    /// `assignment[i]` its shard.
    pub fn from_assignment(
        mapper: impl Fn(&O, &mut Vec<f64>) + Send + Sync + 'static,
        dim: usize,
        mapped: &PivotMatrix,
        assignment: &[usize],
        shards: usize,
    ) -> Self {
        debug_assert_eq!(mapped.rows(), assignment.len());
        debug_assert_eq!(mapped.width(), dim);
        let mut boxes = vec![Mbb::empty(dim); shards];
        for ((_, m), &s) in mapped.iter_rows().zip(assignment) {
            boxes[s].extend(m);
        }
        Self::new(mapper, boxes)
    }

    /// Number of shards the table routes over.
    pub fn num_shards(&self) -> usize {
        self.boxes.len()
    }

    /// The per-shard boxes, for inspection.
    pub fn boxes(&self) -> &[Mbb] {
        &self.boxes
    }

    /// Maps a query object into pivot space (`l` distance computations)
    /// into a reused buffer: clears `out`, then appends the mapped point.
    /// The batch-serving hot path.
    pub fn map_into(&self, q: &O, out: &mut Vec<f64>) {
        out.clear();
        (self.mapper)(q, out);
    }

    /// Shards that `MRQ(q, r)` must probe, written into a reused buffer
    /// (cleared first): every shard whose box is not prunable by Lemma 1,
    /// ascending shard order.
    pub fn range_plan_into(&self, q_dists: &[f64], r: f64, out: &mut Vec<usize>) {
        out.clear();
        out.extend((0..self.boxes.len()).filter(|&s| !self.boxes[s].prunable(q_dists, r)));
    }

    /// All shards ordered best-first for `MkNNQ(q, k)`, written into a
    /// reused buffer (cleared first): ascending box lower bound (`MINDIST`
    /// in pivot space), ties by shard id. The engine probes in this order
    /// and skips every shard whose bound exceeds the current k-th distance.
    pub fn knn_order_into(&self, q_dists: &[f64], out: &mut Vec<(usize, f64)>) {
        out.clear();
        out.extend(
            self.boxes
                .iter()
                .enumerate()
                .map(|(s, b)| (s, b.lower_bound(q_dists))),
        );
        out.sort_unstable_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    }

    /// Grows shard `s`'s box to cover a newly inserted object's mapped
    /// point.
    pub fn extend(&mut self, s: usize, point: &[f64]) {
        self.boxes[s].extend(point);
    }

    /// Replaces shard `s`'s box with an exactly recomputed one — the
    /// engine's remove path shrinks stale boxes back to the minimum box
    /// over the shard's surviving members (it recomputes several shards'
    /// boxes in one pass over its locator and installs each here).
    ///
    /// Correctness contract: `to` must cover every live member's mapped
    /// point; passing the tight box restores full pruning power.
    pub fn shrink(&mut self, s: usize, to: Mbb) {
        debug_assert_eq!(to.dim(), self.boxes[s].dim());
        self.boxes[s] = to;
    }

    /// Recomputes shard `s`'s box from its live members' mapped points (an
    /// empty iterator leaves the always-prunable empty box). The one-shard
    /// form of [`shrink`](Self::shrink).
    pub fn rebox_from_rows<'a>(&mut self, s: usize, rows: impl IntoIterator<Item = &'a [f64]>) {
        let dim = self.boxes[s].dim();
        self.shrink(s, Mbb::from_points(dim, rows));
    }
}

impl<O> std::fmt::Debug for RoutingTable<O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RoutingTable")
            .field("shards", &self.boxes.len())
            .field("boxes", &self.boxes)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 1-d objects, one pivot at the origin: mapping is |x|.
    fn table(points: &[(f64, usize)], shards: usize) -> RoutingTable<f64> {
        let mapped = PivotMatrix::from_rows(1, points.iter().map(|&(x, _)| [x.abs()]));
        let assignment: Vec<usize> = points.iter().map(|&(_, s)| s).collect();
        RoutingTable::from_assignment(
            |q: &f64, out: &mut Vec<f64>| out.push(q.abs()),
            1,
            &mapped,
            &assignment,
            shards,
        )
    }

    fn range_plan(t: &RoutingTable<f64>, q: &[f64], r: f64) -> Vec<usize> {
        let mut out = Vec::new();
        t.range_plan_into(q, r, &mut out);
        out
    }

    fn knn_order(t: &RoutingTable<f64>, q: &[f64]) -> Vec<(usize, f64)> {
        let mut out = Vec::new();
        t.knn_order_into(q, &mut out);
        out
    }

    #[test]
    fn range_plan_prunes_disjoint_boxes() {
        // Shard 0 covers |x| in [1, 2], shard 1 covers [10, 12].
        let t = table(&[(1.0, 0), (2.0, 0), (10.0, 1), (12.0, 1)], 2);
        // Query at x = 1.5 (mapped 1.5), r = 1: shard 1's box is 8.5 away.
        assert_eq!(range_plan(&t, &[1.5], 1.0), vec![0]);
        // Large radius reaches both.
        assert_eq!(range_plan(&t, &[1.5], 9.0), vec![0, 1]);
        // A query between the boxes with a tiny radius reaches neither.
        assert!(range_plan(&t, &[5.0], 0.5).is_empty());
        // The buffer is cleared and reused.
        let mut buf = vec![42usize];
        t.range_plan_into(&[1.5], 9.0, &mut buf);
        assert_eq!(buf, vec![0, 1]);
    }

    #[test]
    fn map_into_reuses_buffer() {
        let t = table(&[(1.0, 0), (-2.0, 1)], 2);
        let mut buf = vec![99.0];
        t.map_into(&-3.5, &mut buf);
        assert_eq!(buf, vec![3.5]);
    }

    #[test]
    fn knn_order_is_best_first() {
        let t = table(&[(1.0, 0), (2.0, 0), (10.0, 1), (12.0, 1), (5.0, 2)], 3);
        let order = knn_order(&t, &[11.0]);
        // Shard 1's box contains 11 (bound 0), shard 2 is 6 away, shard 0 is 9.
        assert_eq!(order[0], (1, 0.0));
        assert_eq!(order[1], (2, 6.0));
        assert_eq!(order[2], (0, 9.0));
    }

    #[test]
    fn empty_shard_box_always_prunes() {
        // Shard 1 never receives a point.
        let t = table(&[(1.0, 0), (2.0, 0)], 2);
        assert_eq!(range_plan(&t, &[1.0], 1e9), vec![0]);
        let order = knn_order(&t, &[1.0]);
        assert_eq!(order[1], (1, f64::INFINITY));
    }

    #[test]
    fn extend_grows_the_target_box() {
        let mut t = table(&[(1.0, 0), (2.0, 0), (10.0, 1)], 2);
        assert_eq!(range_plan(&t, &[5.0], 1.0), Vec::<usize>::new());
        t.extend(0, &[5.0]);
        assert_eq!(range_plan(&t, &[5.0], 1.0), vec![0]);
        assert_eq!(t.boxes()[0].lower_bound(&[5.0]), 0.0);
        assert_eq!(t.boxes()[1].lower_bound(&[5.0]), 5.0);
    }

    #[test]
    fn shrink_and_rebox_restore_pruning() {
        // Shard 0 holds |x| in {1, 2, 9}; removing the 9 leaves the box
        // stale at [1, 9] until it is recomputed from the survivors.
        let mut t = table(&[(1.0, 0), (2.0, 0), (9.0, 0), (30.0, 1)], 2);
        assert_eq!(
            range_plan(&t, &[8.0], 0.5),
            vec![0],
            "stale box still matches near the removed member"
        );
        t.rebox_from_rows(0, [[1.0].as_slice(), [2.0].as_slice()]);
        assert_eq!(
            range_plan(&t, &[8.0], 0.5),
            Vec::<usize>::new(),
            "recomputed box prunes the query again"
        );
        assert_eq!(range_plan(&t, &[1.5], 0.5), vec![0], "members still found");
        // shrink() installs a caller-built box; an empty one (the shard
        // lost its last member) is always pruned.
        t.shrink(0, Mbb::empty(1));
        assert_eq!(range_plan(&t, &[1.5], 1e9), vec![1]);
        assert_eq!(knn_order(&t, &[1.5])[1], (0, f64::INFINITY));
    }
}
