//! `pmi-router` — pivot-space routing-aware sharding for the serving
//! engine.
//!
//! The engine's original round-robin partitioning spreads every metric
//! region across all `P` shards, so every query must probe every shard.
//! The paper's whole contribution (§2.3, Lemmas 1–4) is that pivot-distance
//! bounds let an index *skip* work; this crate lifts that from objects to
//! shards:
//!
//! * [`partition::assign_pivot_space`] clusters the dataset's
//!   pivot-distance vectors (balanced k-means-style in pivot space, with a
//!   round-robin fallback for degenerate inputs), so each shard holds a
//!   compact region of the pivot space,
//! * [`RoutingTable`] summarizes each shard as a minimum bounding box
//!   ([`pmi_metric::lemmas::Mbb`]) over its mapped points, and plans
//!   queries against the summaries:
//!   - **range**: a shard whose box satisfies `lemma1_box_prunable` cannot
//!     hold any answer and is skipped outright
//!     ([`RoutingTable::range_plan_into`]),
//!   - **kNN**: shards are ordered best-first by the box lower bound
//!     ([`RoutingTable::knn_order_into`]); the engine probes in that order
//!     and skips every shard whose lower bound exceeds the current k-th
//!     distance as the global heap tightens.
//!
//! Boxes stay exact under churn: the engine's mutation path grows a box on
//! insert ([`RoutingTable::extend`]) and recomputes it from the surviving
//! members on remove ([`RoutingTable::shrink`] /
//! [`RoutingTable::rebox_from_rows`]).
//!
//! Both decisions are conservative applications of Lemma 1, so routed
//! answers are *identical* to probing every shard — pruning only ever
//! removes shards that provably contain no answers.
//!
//! The engine stores a [`RoutingTable`] when built with
//! [`PartitionPolicy::PivotSpace`]; the table maps query objects into
//! pivot space through a boxed closure so the engine itself stays
//! metric-agnostic.

pub mod partition;
pub mod table;

pub use partition::{assign_pivot_space, assign_round_robin};
pub use table::{Mapper, RoutingTable};

/// How a sharded engine partitions its dataset across shards.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum PartitionPolicy {
    /// Object `i` goes to shard `i mod P`: perfectly balanced, but every
    /// query must probe all `P` shards.
    #[default]
    RoundRobin,
    /// Objects are clustered by their pivot-distance vectors so that each
    /// shard covers a compact pivot-space region; queries then prune shards
    /// via Lemma 1 box bounds and probe the rest best-first.
    PivotSpace,
}

impl PartitionPolicy {
    /// Short display name, used by benches and reports.
    pub fn label(&self) -> &'static str {
        match self {
            PartitionPolicy::RoundRobin => "round-robin",
            PartitionPolicy::PivotSpace => "pivot-space",
        }
    }
}
