//! M-index and M-index* (paper §5.3).
//!
//! The M-index generalizes iDistance to metric spaces: every object is
//! assigned to the cluster of its nearest pivot (generalized hyperplane
//! partitioning) and mapped to the real key
//! `key(o) = code(cluster) · d⁺ + d(p_nearest, o)`, indexed by a B+-tree.
//! Objects live in a RAF *together with all their pre-computed pivot
//! distances*. A dynamic in-memory cluster tree splits any cluster that
//! exceeds `maxnum` objects using the next-nearest pivots (Fig. 12d).
//!
//! **M-index\*** is the paper's enhancement: clusters additionally carry a
//! minimum bounding box over their members' mapped vectors, enabling
//! Lemma 1 on whole clusters, Lemma 4 validation of candidates, and a
//! single best-first MkNNQ pass instead of repeated range queries — the
//! difference Figure 15 measures.

use pmi_bptree::{BpTree, F64Key, NoSummary};
use pmi_metric::object::{decode_f64s, encode_f64s};
use pmi_metric::{
    lemmas, Counters, CountingMetric, EncodeObject, Metric, MetricIndex, Neighbor, ObjId,
    StorageFootprint,
};
use pmi_storage::{DiskSim, Raf};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct MIndexConfig {
    /// Upper bound on any distance in the space (`d⁺`).
    pub d_plus: f64,
    /// Cluster split threshold (the paper sets 1,600; scale it with the
    /// dataset so the dynamic cluster tree is exercised).
    pub maxnum: usize,
    /// Enable the M-index* enhancements (MBBs + validation + best-first).
    pub starred: bool,
}

impl Default for MIndexConfig {
    fn default() -> Self {
        MIndexConfig {
            d_plus: 1e6,
            maxnum: 1600,
            starred: false,
        }
    }
}

struct Cluster {
    /// Pivot indices on the path from the root (first = nearest pivot).
    path: Vec<u16>,
    /// Leaf code; the B+-tree key space of this cluster is
    /// `[code · d⁺, (code + 1) · d⁺)`.
    code: u64,
    minkey: f64,
    maxkey: f64,
    /// Member ids (leaf clusters only).
    ids: Vec<u32>,
    /// Children indexed by pivot, present after a split.
    children: Option<Vec<Option<Box<Cluster>>>>,
    /// M-index*: bounding box over members' mapped vectors.
    mbb_lo: Vec<f64>,
    mbb_hi: Vec<f64>,
}

impl Cluster {
    fn leaf(path: Vec<u16>, code: u64, l: usize) -> Self {
        Cluster {
            path,
            code,
            minkey: f64::INFINITY,
            maxkey: f64::NEG_INFINITY,
            ids: Vec::new(),
            children: None,
            mbb_lo: vec![f64::INFINITY; l],
            mbb_hi: vec![f64::NEG_INFINITY; l],
        }
    }
}

/// M-index / M-index* over a B+-tree and a RAF.
pub struct MIndex<O, M> {
    metric: CountingMetric<M>,
    pivots: Vec<O>,
    cfg: MIndexConfig,
    btree: BpTree<F64Key, u32>,
    raf: Raf,
    /// Root clusters, one per pivot.
    roots: Vec<Option<Box<Cluster>>>,
    next_code: u64,
    live: usize,
    next_id: u32,
}

impl<O, M> MIndex<O, M>
where
    O: Clone + EncodeObject + Send + Sync + 'static,
    M: Metric<O>,
{
    /// Builds the index; `cfg.starred` selects M-index*.
    pub fn build(
        objects: Vec<O>,
        metric: M,
        pivots: Vec<O>,
        disk: DiskSim,
        cfg: MIndexConfig,
    ) -> Self {
        assert!(pivots.len() >= 2, "hyperplane partitioning needs 2+ pivots");
        let l = pivots.len();
        let mut idx = MIndex {
            metric: CountingMetric::new(metric),
            pivots,
            cfg,
            btree: BpTree::new(disk.clone(), NoSummary),
            raf: Raf::new(disk.clone()),
            roots: (0..l).map(|_| None).collect(),
            next_code: 0,
            live: 0,
            next_id: 0,
        };
        // Bulk construction: cluster entirely in memory (rows are at hand),
        // then write the RAF once and bulk-load the B+-tree — the reason the
        // paper's Table 4 shows the M-index near the top on construction PA.
        let rows: Vec<Vec<f64>> = objects
            .iter()
            .map(|o| idx.pivots.iter().map(|p| idx.metric.dist(o, p)).collect())
            .collect();
        for (i, row) in rows.iter().enumerate() {
            idx.bulk_assign(i as u32, row, &rows);
        }
        let mut entries: Vec<(F64Key, u32)> = Vec::with_capacity(objects.len());
        let mut stack: Vec<&Cluster> = idx.roots.iter().flatten().map(|b| &**b).collect();
        while let Some(c) = stack.pop() {
            match &c.children {
                Some(ch) => stack.extend(ch.iter().flatten().map(|b| &**b)),
                None => {
                    for &id in &c.ids {
                        let key = F64Key::new(
                            c.code as f64 * idx.cfg.d_plus + rows[id as usize][c.path[0] as usize],
                        );
                        entries.push((key, id));
                    }
                }
            }
        }
        entries.sort();
        idx.btree = BpTree::bulk_load(disk, NoSummary, &entries);
        for (i, o) in objects.iter().enumerate() {
            idx.raf.append(i as u64, &Self::record(o, &rows[i]));
        }
        idx.live = objects.len();
        idx.next_id = objects.len() as u32;
        idx
    }

    /// In-memory cluster assignment used by the bulk build: no B+-tree or
    /// RAF traffic; splits re-partition using the row table.
    fn bulk_assign(&mut self, id: u32, row: &[f64], rows: &[Vec<f64>]) {
        let l = self.pivots.len();
        let (cur, taken) = Self::descend_mut_inner(&mut self.roots, row, &mut self.next_code, l);
        cur.ids.push(id);
        let key = cur.code as f64 * self.cfg.d_plus + row[cur.path[0] as usize];
        cur.minkey = cur.minkey.min(key);
        cur.maxkey = cur.maxkey.max(key);
        for (i, d) in row.iter().enumerate() {
            cur.mbb_lo[i] = cur.mbb_lo[i].min(*d);
            cur.mbb_hi[i] = cur.mbb_hi[i].max(*d);
        }
        if cur.ids.len() > self.cfg.maxnum && cur.path.len() < l {
            // Split in memory.
            let (ids, path) = {
                let c = self.cluster_at_mut(&taken).expect("cluster");
                (std::mem::take(&mut c.ids), c.path.clone())
            };
            let mut children: Vec<Option<Box<Cluster>>> = (0..l).map(|_| None).collect();
            for mid in ids {
                let mrow = &rows[mid as usize];
                let nxt = Self::next_pivot(mrow, &path);
                let child = children[nxt as usize].get_or_insert_with(|| {
                    let mut p = path.clone();
                    p.push(nxt);
                    let code = self.next_code;
                    self.next_code += 1;
                    Box::new(Cluster::leaf(p, code, l))
                });
                let key = child.code as f64 * self.cfg.d_plus + mrow[path[0] as usize];
                child.ids.push(mid);
                child.minkey = child.minkey.min(key);
                child.maxkey = child.maxkey.max(key);
                for (i, d) in mrow.iter().enumerate() {
                    child.mbb_lo[i] = child.mbb_lo[i].min(*d);
                    child.mbb_hi[i] = child.mbb_hi[i].max(*d);
                }
            }
            let c = self.cluster_at_mut(&taken).expect("cluster");
            c.children = Some(children);
        }
    }

    fn map(&self, q: &O) -> Vec<f64> {
        self.pivots.iter().map(|p| self.metric.dist(q, p)).collect()
    }

    /// Nearest pivot among those not on `path`.
    fn next_pivot(row: &[f64], path: &[u16]) -> u16 {
        let mut best = u16::MAX;
        let mut best_d = f64::INFINITY;
        for (i, d) in row.iter().enumerate() {
            if path.contains(&(i as u16)) {
                continue;
            }
            if *d < best_d {
                best_d = *d;
                best = i as u16;
            }
        }
        best
    }

    fn record(o: &O, row: &[f64]) -> Vec<u8> {
        let mut rec = o.encode();
        encode_f64s(row, &mut rec);
        rec
    }

    fn read_record(&self, id: u32) -> Option<(O, Vec<f64>)> {
        let bytes = self.raf.read(id as u64)?;
        let (o, used) = O::decode_from(&bytes);
        let (row, _) = decode_f64s(&bytes[used..]);
        Some((o, row))
    }

    fn key(&self, code: u64, d_nearest: f64) -> F64Key {
        F64Key::new(code as f64 * self.cfg.d_plus + d_nearest)
    }

    fn cluster_at_mut(&mut self, taken: &[u16]) -> Option<&mut Cluster> {
        let mut cur = self.roots[taken[0] as usize].as_deref_mut()?;
        for &p in &taken[1..] {
            cur = cur.children.as_mut()?[p as usize].as_deref_mut()?;
        }
        Some(cur)
    }

    fn insert_with_row(&mut self, id: u32, o: &O, row: &[f64]) {
        let l = self.pivots.len();
        let maxnum = self.cfg.maxnum;
        let d_plus = self.cfg.d_plus;
        // Phase 1: cluster-tree bookkeeping (scoped borrow of the tree).
        let (key, taken, needs_split) = {
            let (cur, taken) =
                Self::descend_mut_inner(&mut self.roots, row, &mut self.next_code, l);
            let d_nearest = row[cur.path[0] as usize];
            let key = F64Key::new(cur.code as f64 * d_plus + d_nearest);
            cur.ids.push(id);
            cur.minkey = cur.minkey.min(key.get());
            cur.maxkey = cur.maxkey.max(key.get());
            for (i, d) in row.iter().enumerate() {
                cur.mbb_lo[i] = cur.mbb_lo[i].min(*d);
                cur.mbb_hi[i] = cur.mbb_hi[i].max(*d);
            }
            let needs_split = cur.ids.len() > maxnum && cur.path.len() < l;
            (key, taken, needs_split)
        };
        // Phase 2: disk structures.
        self.btree.insert(key, id);
        self.raf.append(id as u64, &Self::record(o, row));
        self.live += 1;
        // Phase 3: split the overflowing leaf, if any.
        if needs_split {
            self.split_cluster(&taken);
        }
    }

    /// Free-function-style descent so the cluster-tree borrow does not
    /// capture `self` (the code counter is threaded explicitly).
    fn descend_mut_inner<'a>(
        roots: &'a mut [Option<Box<Cluster>>],
        row: &[f64],
        next_code: &mut u64,
        l: usize,
    ) -> (&'a mut Cluster, Vec<u16>) {
        let first = Self::next_pivot(row, &[]);
        let mut taken = vec![first];
        if roots[first as usize].is_none() {
            let code = *next_code;
            *next_code += 1;
            roots[first as usize] = Some(Box::new(Cluster::leaf(vec![first], code, l)));
        }
        let mut cur: &mut Cluster = roots[first as usize].as_mut().unwrap();
        loop {
            // Keep the MBB current on every cluster along the path —
            // internal clusters must cover members inserted after their
            // split, or Lemma 1 would prune them incorrectly.
            for (i, d) in row.iter().enumerate() {
                cur.mbb_lo[i] = cur.mbb_lo[i].min(*d);
                cur.mbb_hi[i] = cur.mbb_hi[i].max(*d);
            }
            if cur.children.is_none() {
                return (cur, taken);
            }
            let nxt = Self::next_pivot(row, &cur.path);
            taken.push(nxt);
            let mut path = cur.path.clone();
            path.push(nxt);
            let children = cur.children.as_mut().unwrap();
            if children[nxt as usize].is_none() {
                let code = *next_code;
                *next_code += 1;
                children[nxt as usize] = Some(Box::new(Cluster::leaf(path, code, l)));
            }
            cur = children[nxt as usize].as_mut().unwrap();
        }
    }

    /// Splits an overflowing leaf cluster (located by its descent path) by
    /// the next-nearest pivot (paper Fig. 12d). Members are re-keyed in the
    /// B+-tree, which costs page accesses — the dynamic-maintenance price
    /// of the M-index.
    fn split_cluster(&mut self, taken: &[u16]) {
        let l = self.pivots.len();
        // Take the members and cluster identity out.
        let (ids, path, code) = {
            let c = self.cluster_at_mut(taken).expect("cluster exists");
            (std::mem::take(&mut c.ids), c.path.clone(), c.code)
        };
        // Read member rows and group by the next-nearest pivot.
        let mut groups: HashMap<u16, Vec<(u32, Vec<f64>)>> = HashMap::new();
        for id in ids {
            let (_, row) = self.read_record(id).expect("member in RAF");
            let nxt = Self::next_pivot(&row, &path);
            groups.entry(nxt).or_default().push((id, row));
        }
        // Build children, re-keying members in the B+-tree.
        let mut children: Vec<Option<Box<Cluster>>> = (0..l).map(|_| None).collect();
        for (nxt, members) in groups {
            let child_code = self.next_code;
            self.next_code += 1;
            let mut child_path = path.clone();
            child_path.push(nxt);
            let mut child = Box::new(Cluster::leaf(child_path, child_code, l));
            for (id, row) in members {
                let d_nearest = row[path[0] as usize];
                let old_key = self.key(code, d_nearest);
                let new_key = self.key(child_code, d_nearest);
                assert!(self.btree.remove(old_key, id), "re-key: old key present");
                self.btree.insert(new_key, id);
                child.ids.push(id);
                child.minkey = child.minkey.min(new_key.get());
                child.maxkey = child.maxkey.max(new_key.get());
                for (i, d) in row.iter().enumerate() {
                    child.mbb_lo[i] = child.mbb_lo[i].min(*d);
                    child.mbb_hi[i] = child.mbb_hi[i].max(*d);
                }
            }
            children[nxt as usize] = Some(child);
        }
        let c = self.cluster_at_mut(taken).expect("cluster exists");
        c.children = Some(children);
    }

    /// Collects qualifying leaf clusters for radius `r` (Lemma 3 +, for
    /// M-index*, Lemma 1 on the cluster MBB).
    fn qualifying_leaves<'a>(&'a self, qd: &[f64], r: f64) -> Vec<&'a Cluster> {
        let mut out = Vec::new();
        let mut stack: Vec<&Cluster> = self.roots.iter().flatten().map(|b| &**b).collect();
        while let Some(c) = stack.pop() {
            // Lemma 3 on the last pivot of the path versus its competitors.
            let level_pivots: &[u16] = &c.path[..c.path.len() - 1];
            let own = *c.path.last().unwrap() as usize;
            let min_other = qd
                .iter()
                .enumerate()
                .filter(|(i, _)| !level_pivots.contains(&(*i as u16)))
                .map(|(_, d)| *d)
                .fold(f64::INFINITY, f64::min);
            if lemmas::lemma3_prunable(qd[own], min_other, r) {
                continue;
            }
            if self.cfg.starred
                && c.mbb_lo[0].is_finite()
                && lemmas::lemma1_box_prunable(qd, &c.mbb_lo, &c.mbb_hi, r)
            {
                continue;
            }
            match &c.children {
                Some(children) => stack.extend(children.iter().flatten().map(|b| &**b)),
                None => {
                    if !c.ids.is_empty() {
                        out.push(c);
                    }
                }
            }
        }
        out
    }

    /// Scans one leaf cluster's qualifying B+-tree key range; candidates are
    /// verified against the RAF records. Validated objects (Lemma 4,
    /// M-index* only) skip the distance computation. `cache` memoizes
    /// distances across the repeated rounds of the non-star MkNNQ.
    fn scan_leaf(
        &self,
        c: &Cluster,
        q: &O,
        qd: &[f64],
        r: f64,
        cache: Option<&mut HashMap<u32, f64>>,
        out: &mut Vec<(u32, f64)>,
    ) {
        let nearest = c.path[0] as usize;
        let base = c.code as f64 * self.cfg.d_plus;
        let lo = F64Key::new((base + (qd[nearest] - r).max(0.0)).max(c.minkey));
        let hi = F64Key::new((base + qd[nearest] + r).min(c.maxkey));
        if lo > hi {
            return;
        }
        let mut ids = Vec::new();
        self.btree.range(lo, hi, |_, id| {
            ids.push(id);
            true
        });
        let mut cache = cache;
        for id in ids {
            if let Some(cache) = cache.as_deref_mut() {
                if let Some(d) = cache.get(&id) {
                    if *d <= r {
                        out.push((id, *d));
                    }
                    continue;
                }
            }
            let (o, row) = self.read_record(id).expect("record in RAF");
            if lemmas::lemma1_prunable(qd, &row, r) {
                continue;
            }
            if self.cfg.starred && lemmas::lemma4_validated(qd, &row, r) {
                // Validated: answer without computing d(q, o). Report the
                // cheap upper bound as the distance surrogate.
                let ub = lemmas::pivot_upper_bound(qd, &row);
                out.push((id, ub.min(r)));
                continue;
            }
            let d = self.metric.dist(q, &o);
            if let Some(cache) = cache.as_deref_mut() {
                cache.insert(id, d);
            }
            if d <= r {
                out.push((id, d));
            }
        }
    }

    fn range_with_cache(
        &self,
        q: &O,
        qd: &[f64],
        r: f64,
        mut cache: Option<&mut HashMap<u32, f64>>,
    ) -> Vec<(u32, f64)> {
        let mut out = Vec::new();
        for c in self.qualifying_leaves(qd, r) {
            self.scan_leaf(c, q, qd, r, cache.as_deref_mut(), &mut out);
        }
        out
    }

    /// The instrumented metric.
    pub fn metric(&self) -> &CountingMetric<M> {
        &self.metric
    }

    /// Number of leaf clusters (diagnostics).
    pub fn leaf_cluster_count(&self) -> usize {
        let mut n = 0;
        let mut stack: Vec<&Cluster> = self.roots.iter().flatten().map(|b| &**b).collect();
        while let Some(c) = stack.pop() {
            match &c.children {
                Some(ch) => stack.extend(ch.iter().flatten().map(|b| &**b)),
                None => n += 1,
            }
        }
        n
    }

    /// The shared disk (for cache configuration).
    pub fn disk(&self) -> &DiskSim {
        self.raf.disk()
    }
}

impl<O, M> MetricIndex<O> for MIndex<O, M>
where
    O: Clone + EncodeObject + Send + Sync + 'static,
    M: Metric<O>,
{
    fn name(&self) -> &str {
        if self.cfg.starred {
            "M-index*"
        } else {
            "M-index"
        }
    }

    fn len(&self) -> usize {
        self.live
    }

    fn range_query(&self, q: &O, r: f64) -> Vec<ObjId> {
        let qd = self.map(q);
        self.range_with_cache(q, &qd, r, None)
            .into_iter()
            .map(|(id, _)| id)
            .collect()
    }

    fn knn_query(&self, q: &O, k: usize) -> Vec<Neighbor> {
        if k == 0 || self.live == 0 {
            return Vec::new();
        }
        let qd = self.map(q);
        if !self.cfg.starred {
            // M-index MkNNQ: range queries with an incrementally growing
            // radius, re-traversing the index each round (§5.3) — the
            // redundant PA/CPU that Fig. 15 shows. A distance cache keeps
            // compdists comparable between rounds.
            let mut cache: HashMap<u32, f64> = HashMap::new();
            let mut r = self.cfg.d_plus / 256.0;
            loop {
                let mut hits = self.range_with_cache(q, &qd, r, Some(&mut cache));
                if hits.len() >= k || r >= self.cfg.d_plus {
                    hits.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
                    hits.truncate(k);
                    return hits
                        .into_iter()
                        .map(|(id, d)| Neighbor::new(id, d))
                        .collect();
                }
                r *= 2.0;
            }
        }
        // M-index*: single best-first pass over leaf clusters ordered by
        // their Lemma 1 MBB lower bound (plus the hyperplane bound).
        let mut leaves: Vec<&Cluster> = Vec::new();
        let mut stack: Vec<&Cluster> = self.roots.iter().flatten().map(|b| &**b).collect();
        while let Some(c) = stack.pop() {
            match &c.children {
                Some(ch) => stack.extend(ch.iter().flatten().map(|b| &**b)),
                None => {
                    if !c.ids.is_empty() {
                        leaves.push(c);
                    }
                }
            }
        }
        let min_qd = qd.iter().copied().fold(f64::INFINITY, f64::min);
        let mut pq: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
        for (i, c) in leaves.iter().enumerate() {
            let lb_mbb = lemmas::mbb_lower_bound(&qd, &c.mbb_lo, &c.mbb_hi);
            let lb_hp = lemmas::hyperplane_lower_bound(qd[c.path[0] as usize], min_qd);
            pq.push(Reverse((lb_mbb.max(lb_hp).to_bits(), i)));
        }
        let mut result: BinaryHeap<Neighbor> = BinaryHeap::new();
        let radius = |res: &BinaryHeap<Neighbor>| {
            if res.len() < k {
                f64::INFINITY
            } else {
                res.peek().unwrap().dist
            }
        };
        while let Some(Reverse((lb_bits, i))) = pq.pop() {
            let r = radius(&result);
            if f64::from_bits(lb_bits) > r {
                break;
            }
            // Scan the cluster's qualifying key range, shrinking the radius
            // as neighbors are found. Lemma 4 is not used here: kNN needs
            // exact distances to rank candidates.
            let c = leaves[i];
            let nearest = c.path[0] as usize;
            let base = c.code as f64 * self.cfg.d_plus;
            let scan_r = if r.is_finite() { r } else { self.cfg.d_plus };
            let lo = F64Key::new((base + (qd[nearest] - scan_r).max(0.0)).max(c.minkey));
            let hi = F64Key::new((base + qd[nearest] + scan_r).min(c.maxkey));
            if lo > hi {
                continue;
            }
            let mut ids = Vec::new();
            self.btree.range(lo, hi, |_, id| {
                ids.push(id);
                true
            });
            for id in ids {
                let cur = radius(&result);
                let (o, row) = self.read_record(id).expect("record in RAF");
                if cur.is_finite() && lemmas::lemma1_prunable(&qd, &row, cur) {
                    continue;
                }
                let d = self.metric.dist(q, &o);
                if d < radius(&result) || result.len() < k {
                    result.push(Neighbor::new(id, d));
                    if result.len() > k {
                        result.pop();
                    }
                }
            }
        }
        let mut v = result.into_sorted_vec();
        v.truncate(k);
        v
    }

    fn insert(&mut self, o: O) -> ObjId {
        let id = self.next_id;
        self.next_id += 1;
        let row = self.map(&o);
        self.insert_with_row(id, &o, &row);
        id
    }

    fn remove(&mut self, id: ObjId) -> bool {
        let Some((_, row)) = self.read_record(id) else {
            return false;
        };
        // Locate the leaf cluster by the same descent the insert used.
        let first = Self::next_pivot(&row, &[]);
        let mut cur = match self.roots[first as usize].as_mut() {
            Some(c) => c,
            None => return false,
        };
        loop {
            if cur.children.is_some() {
                let nxt = Self::next_pivot(&row, &cur.path);
                let children = cur.children.as_mut().unwrap();
                match children[nxt as usize].as_mut() {
                    Some(c) => cur = c,
                    None => return false,
                }
            } else {
                break;
            }
        }
        let Some(pos) = cur.ids.iter().position(|&x| x == id) else {
            return false;
        };
        cur.ids.swap_remove(pos);
        let key = F64Key::new(cur.code as f64 * self.cfg.d_plus + row[cur.path[0] as usize]);
        assert!(self.btree.remove(key, id), "B+-tree desync");
        self.raf.remove(id as u64);
        self.live -= 1;
        true
    }

    fn get(&self, id: ObjId) -> Option<O> {
        self.read_record(id).map(|(o, _)| o)
    }

    fn storage(&self) -> StorageFootprint {
        let pivots: u64 = self.pivots.iter().map(|p| p.encoded_len() as u64).sum();
        // Cluster-tree bookkeeping lives in memory.
        let mut mem = pivots;
        let mut stack: Vec<&Cluster> = self.roots.iter().flatten().map(|b| &**b).collect();
        while let Some(c) = stack.pop() {
            mem += (c.path.len() * 2 + 8 * 4 + c.mbb_lo.len() * 16 + c.ids.len() * 4) as u64;
            if let Some(ch) = &c.children {
                stack.extend(ch.iter().flatten().map(|b| &**b));
            }
        }
        StorageFootprint {
            mem_bytes: mem,
            disk_bytes: self.btree.disk_bytes() + self.raf.disk_bytes(),
        }
    }

    fn counters(&self) -> Counters {
        Counters {
            compdists: self.metric.count(),
            page_reads: self.raf.disk().reads(),
            page_writes: self.raf.disk().writes(),
        }
    }

    fn reset_counters(&self) {
        self.metric.reset();
        self.raf.disk().reset_counters();
    }

    fn set_page_cache(&self, bytes: usize) {
        self.raf.disk().set_cache_bytes(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmi_metric::datasets;
    use pmi_metric::{BruteForce, L2};
    use pmi_pivots::select_hfi;

    fn build(n: usize, starred: bool, maxnum: usize) -> (Vec<Vec<f32>>, MIndex<Vec<f32>, L2>) {
        let pts = datasets::la(n, 91);
        let pv: Vec<Vec<f32>> = select_hfi(&pts, &L2, 5, 91)
            .into_iter()
            .map(|i| pts[i].clone())
            .collect();
        let idx = MIndex::build(
            pts.clone(),
            L2,
            pv,
            DiskSim::new(1024),
            MIndexConfig {
                d_plus: 14143.0,
                maxnum,
                starred,
            },
        );
        (pts, idx)
    }

    #[test]
    fn range_matches_brute_force() {
        for starred in [false, true] {
            let (pts, idx) = build(400, starred, 64);
            let oracle = BruteForce::new(pts.clone(), L2);
            for r in [150.0, 1100.0] {
                let mut got = idx.range_query(&pts[13], r);
                got.sort();
                let mut want = oracle.range_query(&pts[13], r);
                want.sort();
                assert_eq!(got, want, "starred={starred} r={r}");
            }
        }
    }

    #[test]
    fn knn_matches_brute_force() {
        for starred in [false, true] {
            let (pts, idx) = build(400, starred, 64);
            let oracle = BruteForce::new(pts.clone(), L2);
            for k in [1usize, 9, 30] {
                let got = idx.knn_query(&pts[222], k);
                let want = oracle.knn_query(&pts[222], k);
                assert_eq!(got.len(), want.len());
                for (g, w) in got.iter().zip(&want) {
                    assert!(
                        (g.dist - w.dist).abs() < 1e-9,
                        "starred={starred} k={k}: {} vs {}",
                        g.dist,
                        w.dist
                    );
                }
            }
        }
    }

    #[test]
    fn dynamic_cluster_tree_splits() {
        let (_, idx) = build(600, false, 32);
        assert!(
            idx.leaf_cluster_count() > 5,
            "expected multi-level cluster tree, got {} leaves",
            idx.leaf_cluster_count()
        );
    }

    #[test]
    fn starred_knn_reads_fewer_pages() {
        // Fig. 15: the M-index re-traverses per radius round; M-index*
        // makes one best-first pass.
        let (pts, plain) = build(900, false, 64);
        let (_, star) = build(900, true, 64);
        let mut pa_plain = 0;
        let mut pa_star = 0;
        for qi in (0..900).step_by(90) {
            plain.reset_counters();
            let _ = plain.knn_query(&pts[qi], 10);
            pa_plain += plain.counters().page_accesses();
            star.reset_counters();
            let _ = star.knn_query(&pts[qi], 10);
            pa_star += star.counters().page_accesses();
        }
        assert!(
            pa_star < pa_plain,
            "M-index* PA {pa_star} should beat M-index {pa_plain}"
        );
    }

    #[test]
    fn update_cycle() {
        for starred in [false, true] {
            let (pts, mut idx) = build(250, starred, 64);
            let o = idx.get(31).unwrap();
            assert!(idx.remove(31));
            assert!(!idx.remove(31));
            assert_eq!(idx.len(), 249);
            assert!(!idx.range_query(&pts[31], 0.0).contains(&31));
            let id = idx.insert(o);
            assert!(idx.range_query(&pts[31], 0.0).contains(&id));
        }
    }

    #[test]
    fn validation_saves_distance_computations() {
        // Lemma 4 only fires for generous radii; check the starred index
        // computes no more distances than the plain one at a large radius.
        let (pts, plain) = build(700, false, 64);
        let (_, star) = build(700, true, 64);
        plain.reset_counters();
        let n_plain = plain.range_query(&pts[1], 6000.0).len();
        let cd_plain = plain.counters().compdists;
        star.reset_counters();
        let n_star = star.range_query(&pts[1], 6000.0).len();
        let cd_star = star.counters().compdists;
        assert_eq!(n_plain, n_star);
        assert!(
            cd_star <= cd_plain,
            "validation should save compdists: {cd_star} vs {cd_plain}"
        );
    }
}

#[cfg(test)]
mod regression_tests {
    use super::*;
    use pmi_metric::{datasets, Metric, L2};
    use pmi_pivots::select_hfi;

    #[test]
    fn large_radius_no_missing_results() {
        let pts = datasets::la(2000, 42);
        let pv: Vec<Vec<f32>> = select_hfi(&pts, &L2, 5, 42)
            .into_iter()
            .map(|i| pts[i].clone())
            .collect();
        let idx = MIndex::build(
            pts.clone(),
            L2,
            pv.clone(),
            DiskSim::new(4096),
            MIndexConfig {
                d_plus: 14143.0,
                maxnum: 64,
                starred: true,
            },
        );
        let q = &pts[5];
        let r = 6258.105107357423;
        let got = idx.range_query(q, r);
        let want: Vec<u32> = pts
            .iter()
            .enumerate()
            .filter(|(_, o)| L2.dist(q, o) <= r)
            .map(|(i, _)| i as u32)
            .collect();
        let missing: Vec<u32> = want.iter().copied().filter(|w| !got.contains(w)).collect();
        if !missing.is_empty() {
            let id = missing[0];
            let (_, row) = idx.read_record(id).unwrap();
            let qd: Vec<f64> = pv.iter().map(|p| L2.dist(q, p)).collect();
            eprintln!("missing id {id} row {row:?} qd {qd:?}");
            // Locate its leaf cluster.
            let first = MIndex::<Vec<f32>, L2>::next_pivot(&row, &[]);
            let mut cur = idx.roots[first as usize].as_deref().unwrap();
            while let Some(ch) = &cur.children {
                let nxt = MIndex::<Vec<f32>, L2>::next_pivot(&row, &cur.path);
                cur = ch[nxt as usize].as_deref().unwrap();
            }
            eprintln!(
                "leaf path {:?} code {} minkey {} maxkey {} ids contains: {}",
                cur.path,
                cur.code,
                cur.minkey,
                cur.maxkey,
                cur.ids.contains(&id)
            );
            let own = *cur.path.last().unwrap() as usize;
            let lvl: &[u16] = &cur.path[..cur.path.len() - 1];
            let min_other = qd
                .iter()
                .enumerate()
                .filter(|(i, _)| !lvl.contains(&(*i as u16)))
                .map(|(_, d)| *d)
                .fold(f64::INFINITY, f64::min);
            eprintln!(
                "lemma3: qd[own]={} min_other={} 2r={} prunable={}",
                qd[own],
                min_other,
                2.0 * r,
                lemmas::lemma3_prunable(qd[own], min_other, r)
            );
            eprintln!(
                "mbb prune: {}",
                lemmas::lemma1_box_prunable(&qd, &cur.mbb_lo, &cur.mbb_hi, r)
            );
            let key = cur.code as f64 * idx.cfg.d_plus + row[cur.path[0] as usize];
            let base = cur.code as f64 * idx.cfg.d_plus;
            let lo = (base + (qd[cur.path[0] as usize] - r).max(0.0)).max(cur.minkey);
            let hi = (base + qd[cur.path[0] as usize] + r).min(cur.maxkey);
            eprintln!("key {key} scan range [{lo}, {hi}]");
            panic!("missing {} results", missing.len());
        }
    }
}
