//! EPT*-disk — the paper's future-work direction (§7): "extension of
//! EPT(*) to a disk-based metric index with a low construction cost is a
//! promising direction".
//!
//! This index keeps EPT*'s per-object PSA pivots but (i) stores the
//! `(pivot, distance)` rows in a paged sequential file and the objects in a
//! RAF (the Omni-family separation, §5.2), and (ii) cuts construction cost
//! by running PSA against a much smaller query sample — trading a little
//! pruning power for an order of magnitude cheaper builds, which is exactly
//! the trade the conclusion asks for.

use pmi_metric::{
    Counters, CountingMetric, EncodeObject, Metric, MetricIndex, Neighbor, ObjId, StorageFootprint,
};
use pmi_pivots::PsaSelector;
use pmi_storage::{DiskSim, PageId, Raf};
use std::collections::BinaryHeap;

/// Construction parameters for [`EptDisk`].
#[derive(Clone, Copy, Debug)]
pub struct EptDiskConfig {
    /// Pivots per object (`l`).
    pub l: usize,
    /// PSA query-sample size; small by design (low construction cost).
    pub sample: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for EptDiskConfig {
    fn default() -> Self {
        EptDiskConfig {
            l: 5,
            sample: 16,
            seed: 42,
        }
    }
}

const DEAD: u32 = u32::MAX;

/// Paged sequential file of `(id, [(pivot, dist); l])` records.
struct RowFile {
    disk: DiskSim,
    pages: Vec<PageId>,
    l: usize,
    cap: usize,
    tail_count: usize,
}

impl RowFile {
    fn new(disk: DiskSim, l: usize) -> Self {
        let cap = (disk.page_size() - 2) / Self::record_size_for(l);
        assert!(cap >= 1, "page too small for an EPT*-disk record");
        RowFile {
            disk,
            pages: Vec::new(),
            l,
            cap,
            tail_count: 0,
        }
    }

    fn record_size_for(l: usize) -> usize {
        4 + l * 10 // id + l × (u16 pivot, f64 dist)
    }

    fn record_size(&self) -> usize {
        Self::record_size_for(self.l)
    }

    fn append(&mut self, id: u32, row: &[(u16, f64)]) {
        debug_assert_eq!(row.len(), self.l);
        if self.pages.is_empty() || self.tail_count == self.cap {
            let pid = self.disk.alloc();
            self.disk.write(pid, &vec![0u8; self.disk.page_size()]);
            self.pages.push(pid);
            self.tail_count = 0;
        }
        let pid = *self.pages.last().unwrap();
        let mut page = self.disk.read(pid).to_vec();
        let mut off = 2 + self.tail_count * self.record_size();
        page[off..off + 4].copy_from_slice(&id.to_le_bytes());
        off += 4;
        for (p, d) in row {
            page[off..off + 2].copy_from_slice(&p.to_le_bytes());
            page[off + 2..off + 10].copy_from_slice(&d.to_le_bytes());
            off += 10;
        }
        self.tail_count += 1;
        page[0..2].copy_from_slice(&(self.tail_count as u16).to_le_bytes());
        self.disk.write(pid, &page);
    }

    fn scan<F: FnMut(u32, &[(u16, f64)]) -> bool>(&self, mut f: F) {
        let rs = self.record_size();
        let mut row = vec![(0u16, 0.0f64); self.l];
        for &pid in &self.pages {
            let page = self.disk.read(pid);
            let count = u16::from_le_bytes(page[0..2].try_into().unwrap()) as usize;
            for rec in 0..count {
                let mut off = 2 + rec * rs;
                let id = u32::from_le_bytes(page[off..off + 4].try_into().unwrap());
                off += 4;
                if id == DEAD {
                    continue;
                }
                for slot in row.iter_mut() {
                    slot.0 = u16::from_le_bytes(page[off..off + 2].try_into().unwrap());
                    slot.1 = f64::from_le_bytes(page[off + 2..off + 10].try_into().unwrap());
                    off += 10;
                }
                if !f(id, &row) {
                    return;
                }
            }
        }
    }

    fn remove(&mut self, id: u32) -> bool {
        let rs = self.record_size();
        for &pid in &self.pages {
            let page = self.disk.read(pid);
            let count = u16::from_le_bytes(page[0..2].try_into().unwrap()) as usize;
            for rec in 0..count {
                let off = 2 + rec * rs;
                if u32::from_le_bytes(page[off..off + 4].try_into().unwrap()) == id {
                    let mut page = page.to_vec();
                    page[off..off + 4].copy_from_slice(&DEAD.to_le_bytes());
                    self.disk.write(pid, &page);
                    return true;
                }
            }
        }
        false
    }

    fn disk_bytes(&self) -> u64 {
        (self.pages.len() * self.disk.page_size()) as u64
    }
}

/// EPT*-disk: per-object PSA pivots, rows and objects on disk.
pub struct EptDisk<O, M> {
    metric: CountingMetric<M>,
    selector: PsaSelector<O, CountingMetric<M>>,
    rows: RowFile,
    raf: Raf,
    l: usize,
    live: usize,
    next_id: u32,
}

impl<O, M> EptDisk<O, M>
where
    O: Clone + EncodeObject + Send + Sync + 'static,
    M: Metric<O> + Clone,
{
    /// Builds EPT*-disk over `objects`.
    pub fn build(objects: Vec<O>, metric: M, disk: DiskSim, cfg: EptDiskConfig) -> Self {
        let metric = CountingMetric::new(metric);
        let selector = PsaSelector::new(&objects, metric.clone(), cfg.sample, cfg.seed);
        let mut idx = EptDisk {
            metric,
            selector,
            rows: RowFile::new(disk.clone(), cfg.l),
            raf: Raf::new(disk),
            l: cfg.l,
            live: 0,
            next_id: 0,
        };
        for o in &objects {
            idx.insert(o.clone());
        }
        idx
    }

    /// Distances from `q` to every PSA candidate pivot.
    fn query_dists(&self, q: &O) -> Vec<f64> {
        self.selector
            .candidates
            .iter()
            .map(|p| self.metric.dist(q, p))
            .collect()
    }

    fn fetch(&self, id: u32) -> Option<O> {
        let bytes = self.raf.read(id as u64)?;
        Some(O::decode_from(&bytes).0)
    }

    #[inline]
    fn row_lower_bound(qd: &[f64], row: &[(u16, f64)]) -> f64 {
        let mut lb = 0.0f64;
        for (pi, d) in row {
            let x = (qd[*pi as usize] - d).abs();
            if x > lb {
                lb = x;
            }
        }
        lb
    }

    /// The instrumented metric.
    pub fn metric(&self) -> &CountingMetric<M> {
        &self.metric
    }
}

impl<O, M> MetricIndex<O> for EptDisk<O, M>
where
    O: Clone + EncodeObject + Send + Sync + 'static,
    M: Metric<O> + Clone,
{
    fn name(&self) -> &str {
        "EPT*-disk"
    }

    fn len(&self) -> usize {
        self.live
    }

    fn range_query(&self, q: &O, r: f64) -> Vec<ObjId> {
        let qd = self.query_dists(q);
        let mut out = Vec::new();
        self.rows.scan(|id, row| {
            if Self::row_lower_bound(&qd, row) <= r {
                let o = self.fetch(id).expect("object in RAF");
                if self.metric.dist(q, &o) <= r {
                    out.push(id);
                }
            }
            true
        });
        out
    }

    fn knn_query(&self, q: &O, k: usize) -> Vec<Neighbor> {
        if k == 0 {
            return Vec::new();
        }
        let qd = self.query_dists(q);
        let mut heap: BinaryHeap<Neighbor> = BinaryHeap::new();
        self.rows.scan(|id, row| {
            let radius = if heap.len() < k {
                f64::INFINITY
            } else {
                heap.peek().unwrap().dist
            };
            if !(radius.is_finite() && Self::row_lower_bound(&qd, row) > radius) {
                let o = self.fetch(id).expect("object in RAF");
                let d = self.metric.dist(q, &o);
                if d < radius || heap.len() < k {
                    heap.push(Neighbor::new(id, d));
                    if heap.len() > k {
                        heap.pop();
                    }
                }
            }
            true
        });
        let mut v = heap.into_sorted_vec();
        v.truncate(k);
        v
    }

    fn insert(&mut self, o: O) -> ObjId {
        let id = self.next_id;
        self.next_id += 1;
        let row: Vec<(u16, f64)> = self
            .selector
            .pivots_for(&o, self.l)
            .into_iter()
            .map(|(ci, d)| (ci as u16, d))
            .collect();
        debug_assert_eq!(row.len(), self.l.min(self.selector.candidates.len()));
        let mut padded = row;
        while padded.len() < self.l {
            padded.push((0, self.metric.dist(&o, &self.selector.candidates[0])));
        }
        self.rows.append(id, &padded);
        self.raf.append(id as u64, &o.encode());
        self.live += 1;
        id
    }

    fn remove(&mut self, id: ObjId) -> bool {
        if !self.rows.remove(id) {
            return false;
        }
        self.raf.remove(id as u64);
        self.live -= 1;
        true
    }

    fn get(&self, id: ObjId) -> Option<O> {
        self.fetch(id)
    }

    fn storage(&self) -> StorageFootprint {
        let pivots: u64 = self
            .selector
            .candidates
            .iter()
            .map(|p| p.encoded_len() as u64)
            .sum();
        StorageFootprint {
            mem_bytes: pivots,
            disk_bytes: self.rows.disk_bytes() + self.raf.disk_bytes(),
        }
    }

    fn counters(&self) -> Counters {
        Counters {
            compdists: self.metric.count(),
            page_reads: self.raf.disk().reads(),
            page_writes: self.raf.disk().writes(),
        }
    }

    fn reset_counters(&self) {
        self.metric.reset();
        self.raf.disk().reset_counters();
    }

    fn set_page_cache(&self, bytes: usize) {
        self.raf.disk().set_cache_bytes(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmi_metric::{datasets, BruteForce, L2};

    fn build(n: usize) -> (Vec<Vec<f32>>, EptDisk<Vec<f32>, L2>) {
        let pts = datasets::la(n, 111);
        let idx = EptDisk::build(
            pts.clone(),
            L2,
            DiskSim::new(1024),
            EptDiskConfig::default(),
        );
        (pts, idx)
    }

    #[test]
    fn range_matches_brute_force() {
        let (pts, idx) = build(350);
        let oracle = BruteForce::new(pts.clone(), L2);
        for r in [150.0, 1500.0] {
            let mut got = idx.range_query(&pts[31], r);
            got.sort();
            let mut want = oracle.range_query(&pts[31], r);
            want.sort();
            assert_eq!(got, want, "r={r}");
        }
    }

    #[test]
    fn knn_matches_brute_force() {
        let (pts, idx) = build(350);
        let oracle = BruteForce::new(pts.clone(), L2);
        let got = idx.knn_query(&pts[200], 8);
        let want = oracle.knn_query(&pts[200], 8);
        for (g, w) in got.iter().zip(&want) {
            assert!((g.dist - w.dist).abs() < 1e-9);
        }
    }

    #[test]
    fn construction_is_cheaper_than_ept_star() {
        // The future-work goal: EPT* pruning at a fraction of the build cost.
        let pts = datasets::la(400, 113);
        let disk_idx = EptDisk::build(
            pts.clone(),
            L2,
            DiskSim::new(1024),
            EptDiskConfig::default(),
        );
        let star = pmi_tables::Ept::build(
            pts.clone(),
            L2,
            pmi_tables::EptMode::Psa,
            pmi_tables::EptConfig {
                l: 5,
                m: 8,
                sample: 96,
                seed: 42,
            },
        );
        use pmi_metric::MetricIndex as _;
        let cd_disk = disk_idx.counters().compdists;
        let cd_star = star.counters().compdists;
        assert!(
            (cd_disk as f64) < cd_star as f64 * 0.6,
            "EPT*-disk build {cd_disk} should be well below EPT* {cd_star}"
        );
    }

    #[test]
    fn is_disk_resident() {
        let (pts, idx) = build(300);
        let s = idx.storage();
        assert!(s.disk_bytes > 0);
        idx.reset_counters();
        let _ = idx.range_query(&pts[0], 300.0);
        assert!(idx.counters().page_reads > 0);
    }

    #[test]
    fn update_cycle() {
        let (pts, mut idx) = build(250);
        let o = idx.get(77).unwrap();
        assert!(idx.remove(77));
        assert!(!idx.remove(77));
        let id = idx.insert(o);
        assert!(idx.range_query(&pts[77], 0.0).contains(&id));
        assert_eq!(idx.len(), 250);
    }
}
