//! The Omni-family (paper §5.2): Omni-sequential-file, OmniB+-tree and
//! OmniR-tree.
//!
//! All three store the objects in a separate random access file (to escape
//! the object-size problem of the PM-tree) and index the pivot-mapped
//! vectors with an existing structure: a sequential file, one B+-tree per
//! pivot, or an R-tree. The paper's experiments use the OmniR-tree, "the
//! best in most cases"; the other two are provided for completeness and
//! exhibit exactly the weaknesses the paper lists (unclustered scans for
//! the sequential file, redundant storage and I/O for the B+-trees).

use pmi_bptree::{BpTree, F64Key, NoSummary};
use pmi_metric::lemmas;
use pmi_metric::{
    Counters, CountingMetric, EncodeObject, Metric, MetricIndex, Neighbor, ObjId, StorageFootprint,
};
use pmi_rtree::{Mbb, NodeView, RTree};
use pmi_storage::{DiskSim, PageId, Raf};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Shared Omni plumbing: pivots + object RAF.
struct OmniBase<O, M> {
    metric: CountingMetric<M>,
    pivots: Vec<O>,
    raf: Raf,
    live: usize,
    next_id: u32,
    _marker: std::marker::PhantomData<O>,
}

impl<O, M> OmniBase<O, M>
where
    O: Clone + EncodeObject + Send + Sync + 'static,
    M: Metric<O>,
{
    fn new(metric: M, pivots: Vec<O>, disk: DiskSim) -> Self {
        OmniBase {
            metric: CountingMetric::new(metric),
            pivots,
            raf: Raf::new(disk),
            live: 0,
            next_id: 0,
            _marker: std::marker::PhantomData,
        }
    }

    fn map(&self, o: &O) -> Vec<f64> {
        self.pivots.iter().map(|p| self.metric.dist(o, p)).collect()
    }

    fn store(&mut self, id: u32, o: &O) {
        self.raf.append(id as u64, &o.encode());
    }

    fn fetch(&self, id: u32) -> Option<O> {
        let bytes = self.raf.read(id as u64)?;
        Some(O::decode_from(&bytes).0)
    }

    fn counters(&self) -> Counters {
        Counters {
            compdists: self.metric.count(),
            page_reads: self.raf.disk().reads(),
            page_writes: self.raf.disk().writes(),
        }
    }

    fn reset_counters(&self) {
        self.metric.reset();
        self.raf.disk().reset_counters();
    }
}

// ---------------------------------------------------------------------------
// Omni-sequential-file
// ---------------------------------------------------------------------------

/// A paged sequential file of `(id, mapped vector)` records.
struct SeqDistFile {
    disk: DiskSim,
    pages: Vec<PageId>,
    l: usize,
    /// Records per page.
    cap: usize,
    /// In-page record count of the last page.
    tail_count: usize,
}

const DEAD: u32 = u32::MAX;

impl SeqDistFile {
    fn new(disk: DiskSim, l: usize) -> Self {
        let cap = (disk.page_size() - 2) / (4 + 8 * l);
        assert!(cap >= 1, "page too small for a distance record");
        SeqDistFile {
            disk,
            pages: Vec::new(),
            l,
            cap,
            tail_count: 0,
        }
    }

    fn record_size(&self) -> usize {
        4 + 8 * self.l
    }

    fn append(&mut self, id: u32, row: &[f64]) {
        if self.pages.is_empty() || self.tail_count == self.cap {
            self.pages.push(self.disk.alloc());
            self.tail_count = 0;
            let empty = vec![0u8; self.disk.page_size()];
            self.disk.write(*self.pages.last().unwrap(), &empty);
        }
        let pid = *self.pages.last().unwrap();
        let mut page = self.disk.read(pid).to_vec();
        let off = 2 + self.tail_count * self.record_size();
        page[off..off + 4].copy_from_slice(&id.to_le_bytes());
        for (i, d) in row.iter().enumerate() {
            page[off + 4 + 8 * i..off + 12 + 8 * i].copy_from_slice(&d.to_le_bytes());
        }
        self.tail_count += 1;
        page[0..2].copy_from_slice(&(self.tail_count as u16).to_le_bytes());
        self.disk.write(pid, &page);
    }

    /// Scans every record; the callback returns `false` to stop.
    fn scan<F: FnMut(u32, &[f64]) -> bool>(&self, mut f: F) {
        let rs = self.record_size();
        let mut row = vec![0.0f64; self.l];
        for &pid in &self.pages {
            let page = self.disk.read(pid);
            let count = u16::from_le_bytes(page[0..2].try_into().unwrap()) as usize;
            for rec in 0..count {
                let off = 2 + rec * rs;
                let id = u32::from_le_bytes(page[off..off + 4].try_into().unwrap());
                if id == DEAD {
                    continue;
                }
                for (i, slot) in row.iter_mut().enumerate() {
                    *slot = f64::from_le_bytes(
                        page[off + 4 + 8 * i..off + 12 + 8 * i].try_into().unwrap(),
                    );
                }
                if !f(id, &row) {
                    return;
                }
            }
        }
    }

    /// Tombstones a record (scan + rewrite of one page).
    fn remove(&mut self, id: u32) -> bool {
        let rs = self.record_size();
        for &pid in &self.pages {
            let page = self.disk.read(pid);
            let count = u16::from_le_bytes(page[0..2].try_into().unwrap()) as usize;
            for rec in 0..count {
                let off = 2 + rec * rs;
                let rid = u32::from_le_bytes(page[off..off + 4].try_into().unwrap());
                if rid == id {
                    let mut page = page.to_vec();
                    page[off..off + 4].copy_from_slice(&DEAD.to_le_bytes());
                    self.disk.write(pid, &page);
                    return true;
                }
            }
        }
        false
    }

    fn disk_bytes(&self) -> u64 {
        (self.pages.len() * self.disk.page_size()) as u64
    }
}

/// Omni-sequential-file: "LAESA stored on disk" (paper §5.2 discussion).
pub struct OmniSeqFile<O, M> {
    base: OmniBase<O, M>,
    dist_file: SeqDistFile,
}

impl<O, M> OmniSeqFile<O, M>
where
    O: Clone + EncodeObject + Send + Sync + 'static,
    M: Metric<O>,
{
    /// Builds the sequential-file variant.
    pub fn build(objects: Vec<O>, metric: M, pivots: Vec<O>, disk: DiskSim) -> Self {
        let l = pivots.len();
        let mut base = OmniBase::new(metric, pivots, disk.clone());
        let mut dist_file = SeqDistFile::new(disk, l);
        for o in &objects {
            let id = base.next_id;
            base.next_id += 1;
            let row = base.map(o);
            dist_file.append(id, &row);
            base.store(id, o);
            base.live += 1;
        }
        OmniSeqFile { base, dist_file }
    }
}

impl<O, M> MetricIndex<O> for OmniSeqFile<O, M>
where
    O: Clone + EncodeObject + Send + Sync + 'static,
    M: Metric<O>,
{
    fn name(&self) -> &str {
        "Omni-seq"
    }

    fn len(&self) -> usize {
        self.base.live
    }

    fn range_query(&self, q: &O, r: f64) -> Vec<ObjId> {
        let qd = self.base.map(q);
        let mut out = Vec::new();
        self.dist_file.scan(|id, row| {
            if !lemmas::lemma1_prunable(&qd, row, r) {
                let o = self.base.fetch(id).expect("object in RAF");
                if self.base.metric.dist(q, &o) <= r {
                    out.push(id);
                }
            }
            true
        });
        out
    }

    fn knn_query(&self, q: &O, k: usize) -> Vec<Neighbor> {
        if k == 0 {
            return Vec::new();
        }
        let qd = self.base.map(q);
        let mut heap: BinaryHeap<Neighbor> = BinaryHeap::new();
        self.dist_file.scan(|id, row| {
            let radius = if heap.len() < k {
                f64::INFINITY
            } else {
                heap.peek().unwrap().dist
            };
            if !(radius.is_finite() && lemmas::lemma1_prunable(&qd, row, radius)) {
                let o = self.base.fetch(id).expect("object in RAF");
                let d = self.base.metric.dist(q, &o);
                if d < radius || heap.len() < k {
                    heap.push(Neighbor::new(id, d));
                    if heap.len() > k {
                        heap.pop();
                    }
                }
            }
            true
        });
        let mut v = heap.into_sorted_vec();
        v.truncate(k);
        v
    }

    fn insert(&mut self, o: O) -> ObjId {
        let id = self.base.next_id;
        self.base.next_id += 1;
        let row = self.base.map(&o);
        self.dist_file.append(id, &row);
        self.base.store(id, &o);
        self.base.live += 1;
        id
    }

    fn remove(&mut self, id: ObjId) -> bool {
        if !self.dist_file.remove(id) {
            return false;
        }
        self.base.raf.remove(id as u64);
        self.base.live -= 1;
        true
    }

    fn get(&self, id: ObjId) -> Option<O> {
        self.base.fetch(id)
    }

    fn storage(&self) -> StorageFootprint {
        let pivots: u64 = self
            .base
            .pivots
            .iter()
            .map(|p| p.encoded_len() as u64)
            .sum();
        StorageFootprint {
            mem_bytes: pivots,
            disk_bytes: self.dist_file.disk_bytes() + self.base.raf.disk_bytes(),
        }
    }

    fn counters(&self) -> Counters {
        self.base.counters()
    }

    fn reset_counters(&self) {
        self.base.reset_counters();
    }

    fn set_page_cache(&self, bytes: usize) {
        self.base.raf.disk().set_cache_bytes(bytes);
    }
}

// ---------------------------------------------------------------------------
// OmniB+-tree
// ---------------------------------------------------------------------------

/// OmniB+-tree: one B+-tree per pivot over that pivot's distances — the
/// "redundant storage and I/O" variant (§5.2 discussion).
pub struct OmniBPlus<O, M> {
    base: OmniBase<O, M>,
    trees: Vec<BpTree<F64Key, u32>>,
    d_plus: f64,
}

impl<O, M> OmniBPlus<O, M>
where
    O: Clone + EncodeObject + Send + Sync + 'static,
    M: Metric<O>,
{
    /// Builds the B+-tree variant. `d_plus` bounds the distance domain.
    pub fn build(objects: Vec<O>, metric: M, pivots: Vec<O>, disk: DiskSim, d_plus: f64) -> Self {
        let l = pivots.len();
        let mut base = OmniBase::new(metric, pivots, disk.clone());
        let mut trees: Vec<BpTree<F64Key, u32>> = (0..l)
            .map(|_| BpTree::new(disk.clone(), NoSummary))
            .collect();
        for o in &objects {
            let id = base.next_id;
            base.next_id += 1;
            let row = base.map(o);
            for (t, d) in trees.iter_mut().zip(&row) {
                t.insert(F64Key::new(*d), id);
            }
            base.store(id, o);
            base.live += 1;
        }
        OmniBPlus {
            base,
            trees,
            d_plus,
        }
    }

    /// Candidate ids whose mapped point lies in the Lemma 1 search box:
    /// the intersection of the per-pivot key ranges.
    fn candidates(&self, qd: &[f64], r: f64) -> Vec<u32> {
        let mut current: Option<std::collections::HashSet<u32>> = None;
        for (t, dq) in self.trees.iter().zip(qd) {
            let lo = F64Key::new((dq - r).max(0.0));
            let hi = F64Key::new(dq + r);
            let mut set = std::collections::HashSet::new();
            t.range(lo, hi, |_, id| {
                if current.as_ref().is_none_or(|c| c.contains(&id)) {
                    set.insert(id);
                }
                true
            });
            current = Some(set);
            if current.as_ref().unwrap().is_empty() {
                break;
            }
        }
        current.map(|c| c.into_iter().collect()).unwrap_or_default()
    }
}

impl<O, M> MetricIndex<O> for OmniBPlus<O, M>
where
    O: Clone + EncodeObject + Send + Sync + 'static,
    M: Metric<O>,
{
    fn name(&self) -> &str {
        "OmniB+"
    }

    fn len(&self) -> usize {
        self.base.live
    }

    fn range_query(&self, q: &O, r: f64) -> Vec<ObjId> {
        let qd = self.base.map(q);
        let mut out = Vec::new();
        for id in self.candidates(&qd, r) {
            let o = self.base.fetch(id).expect("object in RAF");
            if self.base.metric.dist(q, &o) <= r {
                out.push(id);
            }
        }
        out
    }

    fn knn_query(&self, q: &O, k: usize) -> Vec<Neighbor> {
        if k == 0 || self.base.live == 0 {
            return Vec::new();
        }
        let qd = self.base.map(q);
        // Estimate an upper-bound radius by expanding a key range around
        // the first pivot until k candidates are verified, then run one
        // exact range query (§2.1, first MkNNQ strategy).
        let mut r = self.d_plus / 1024.0;
        let mut ub = f64::INFINITY;
        loop {
            let cands = self.candidates(&qd, r);
            if cands.len() >= k || r >= self.d_plus {
                if cands.len() >= k {
                    let mut ds: Vec<f64> = cands
                        .iter()
                        .map(|&id| {
                            let o = self.base.fetch(id).expect("object");
                            self.base.metric.dist(q, &o)
                        })
                        .collect();
                    ds.sort_by(f64::total_cmp);
                    ub = ds[k - 1];
                }
                if ub.is_finite() || r >= self.d_plus {
                    break;
                }
            }
            r *= 2.0;
        }
        let r = if ub.is_finite() { ub } else { self.d_plus };
        let mut hits: Vec<Neighbor> = Vec::new();
        for id in self.candidates(&qd, r) {
            let o = self.base.fetch(id).expect("object");
            let d = self.base.metric.dist(q, &o);
            if d <= r {
                hits.push(Neighbor::new(id, d));
            }
        }
        hits.sort();
        hits.truncate(k);
        hits
    }

    fn insert(&mut self, o: O) -> ObjId {
        let id = self.base.next_id;
        self.base.next_id += 1;
        let row = self.base.map(&o);
        for (t, d) in self.trees.iter_mut().zip(&row) {
            t.insert(F64Key::new(*d), id);
        }
        self.base.store(id, &o);
        self.base.live += 1;
        id
    }

    fn remove(&mut self, id: ObjId) -> bool {
        let Some(o) = self.base.fetch(id) else {
            return false;
        };
        let row = self.base.map(&o);
        for (t, d) in self.trees.iter_mut().zip(&row) {
            assert!(t.remove(F64Key::new(*d), id), "tree/RAF desync");
        }
        self.base.raf.remove(id as u64);
        self.base.live -= 1;
        true
    }

    fn get(&self, id: ObjId) -> Option<O> {
        self.base.fetch(id)
    }

    fn storage(&self) -> StorageFootprint {
        let pivots: u64 = self
            .base
            .pivots
            .iter()
            .map(|p| p.encoded_len() as u64)
            .sum();
        let trees: u64 = self.trees.iter().map(|t| t.disk_bytes()).sum();
        StorageFootprint {
            mem_bytes: pivots,
            disk_bytes: trees + self.base.raf.disk_bytes(),
        }
    }

    fn counters(&self) -> Counters {
        self.base.counters()
    }

    fn reset_counters(&self) {
        self.base.reset_counters();
    }

    fn set_page_cache(&self, bytes: usize) {
        self.base.raf.disk().set_cache_bytes(bytes);
    }
}

// ---------------------------------------------------------------------------
// OmniR-tree
// ---------------------------------------------------------------------------

/// OmniR-tree: R-tree over the pivot-mapped vectors + object RAF (Fig. 11).
pub struct OmniRTree<O, M> {
    base: OmniBase<O, M>,
    rtree: RTree,
}

impl<O, M> OmniRTree<O, M>
where
    O: Clone + EncodeObject + Send + Sync + 'static,
    M: Metric<O>,
{
    /// Builds the OmniR-tree (STR bulk load of the mapped vectors).
    pub fn build(objects: Vec<O>, metric: M, pivots: Vec<O>, disk: DiskSim) -> Self {
        let l = pivots.len();
        let mut base = OmniBase::new(metric, pivots, disk.clone());
        let mut items: Vec<(Mbb, u32)> = Vec::with_capacity(objects.len());
        for o in &objects {
            let id = base.next_id;
            base.next_id += 1;
            let row = base.map(o);
            items.push((Mbb::from_point(&row), id));
            base.store(id, o);
            base.live += 1;
        }
        let rtree = RTree::bulk_load(disk, l, items);
        OmniRTree { base, rtree }
    }

    /// The underlying R-tree.
    pub fn rtree(&self) -> &RTree {
        &self.rtree
    }
}

impl<O, M> MetricIndex<O> for OmniRTree<O, M>
where
    O: Clone + EncodeObject + Send + Sync + 'static,
    M: Metric<O>,
{
    fn name(&self) -> &str {
        "OmniR-tree"
    }

    fn len(&self) -> usize {
        self.base.live
    }

    fn range_query(&self, q: &O, r: f64) -> Vec<ObjId> {
        let qd = self.base.map(q);
        let lo: Vec<f64> = qd.iter().map(|d| (d - r).max(0.0)).collect();
        let hi: Vec<f64> = qd.iter().map(|d| d + r).collect();
        let mut out = Vec::new();
        self.rtree.search_box(&lo, &hi, |id| {
            let o = self.base.fetch(id).expect("object in RAF");
            if self.base.metric.dist(q, &o) <= r {
                out.push(id);
            }
        });
        out
    }

    fn knn_query(&self, q: &O, k: usize) -> Vec<Neighbor> {
        if k == 0 || self.base.live == 0 {
            return Vec::new();
        }
        let qd = self.base.map(q);
        // Best-first over R-tree nodes by Chebyshev MINDIST (the Lemma 1
        // lower bound in pivot space); leaf entries are verified against
        // the RAF.
        let mut result: BinaryHeap<Neighbor> = BinaryHeap::new();
        let mut heap: BinaryHeap<Reverse<(u64, PageId)>> = BinaryHeap::new();
        if let Some(root) = self.rtree.root() {
            heap.push(Reverse((0, root)));
        }
        let radius = |res: &BinaryHeap<Neighbor>| {
            if res.len() < k {
                f64::INFINITY
            } else {
                res.peek().unwrap().dist
            }
        };
        while let Some(Reverse((lb_bits, pid))) = heap.pop() {
            if f64::from_bits(lb_bits) > radius(&result) {
                break;
            }
            match self.rtree.read_node(pid) {
                NodeView::Leaf { entries } => {
                    for (b, id) in entries {
                        let lb = b.mindist(&qd);
                        if lb > radius(&result) {
                            continue;
                        }
                        let o = self.base.fetch(id).expect("object in RAF");
                        let d = self.base.metric.dist(q, &o);
                        if d < radius(&result) || result.len() < k {
                            result.push(Neighbor::new(id, d));
                            if result.len() > k {
                                result.pop();
                            }
                        }
                    }
                }
                NodeView::Internal { entries } => {
                    for (b, child) in entries {
                        let lb = b.mindist(&qd);
                        if lb <= radius(&result) {
                            heap.push(Reverse((lb.to_bits(), child)));
                        }
                    }
                }
            }
        }
        let mut v = result.into_sorted_vec();
        v.truncate(k);
        v
    }

    fn insert(&mut self, o: O) -> ObjId {
        let id = self.base.next_id;
        self.base.next_id += 1;
        let row = self.base.map(&o);
        self.rtree.insert(Mbb::from_point(&row), id);
        self.base.store(id, &o);
        self.base.live += 1;
        id
    }

    fn remove(&mut self, id: ObjId) -> bool {
        let Some(o) = self.base.fetch(id) else {
            return false;
        };
        let row = self.base.map(&o);
        if !self.rtree.remove(&Mbb::from_point(&row), id) {
            return false;
        }
        self.base.raf.remove(id as u64);
        self.base.live -= 1;
        true
    }

    fn get(&self, id: ObjId) -> Option<O> {
        self.base.fetch(id)
    }

    fn storage(&self) -> StorageFootprint {
        let pivots: u64 = self
            .base
            .pivots
            .iter()
            .map(|p| p.encoded_len() as u64)
            .sum();
        StorageFootprint {
            mem_bytes: pivots,
            disk_bytes: self.rtree.disk_bytes() + self.base.raf.disk_bytes(),
        }
    }

    fn counters(&self) -> Counters {
        self.base.counters()
    }

    fn reset_counters(&self) {
        self.base.reset_counters();
    }

    fn set_page_cache(&self, bytes: usize) {
        self.base.raf.disk().set_cache_bytes(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmi_metric::datasets;
    use pmi_metric::{BruteForce, L2};
    use pmi_pivots::select_hfi;

    fn pivots(pts: &[Vec<f32>], l: usize) -> Vec<Vec<f32>> {
        select_hfi(pts, &L2, l, 61)
            .into_iter()
            .map(|i| pts[i].clone())
            .collect()
    }

    fn check_range<I: MetricIndex<Vec<f32>>>(idx: &I, pts: &[Vec<f32>], r: f64) {
        let oracle = BruteForce::new(pts.to_vec(), L2);
        for qi in [0usize, 99] {
            let mut got = idx.range_query(&pts[qi], r);
            got.sort();
            let mut want = oracle.range_query(&pts[qi], r);
            want.sort();
            assert_eq!(got, want, "{} q={qi} r={r}", idx.name());
        }
    }

    fn check_knn<I: MetricIndex<Vec<f32>>>(idx: &I, pts: &[Vec<f32>], k: usize) {
        let oracle = BruteForce::new(pts.to_vec(), L2);
        let got = idx.knn_query(&pts[42], k);
        let want = oracle.knn_query(&pts[42], k);
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            assert!((g.dist - w.dist).abs() < 1e-9, "{}", idx.name());
        }
    }

    #[test]
    fn seq_file_correct() {
        let pts = datasets::la(300, 71);
        let idx = OmniSeqFile::build(pts.clone(), L2, pivots(&pts, 4), DiskSim::new(1024));
        check_range(&idx, &pts, 600.0);
        check_knn(&idx, &pts, 10);
    }

    #[test]
    fn bplus_correct() {
        let pts = datasets::la(300, 72);
        let idx = OmniBPlus::build(
            pts.clone(),
            L2,
            pivots(&pts, 4),
            DiskSim::new(1024),
            14143.0,
        );
        check_range(&idx, &pts, 600.0);
        check_knn(&idx, &pts, 10);
    }

    #[test]
    fn rtree_correct() {
        let pts = datasets::la(400, 73);
        let idx = OmniRTree::build(pts.clone(), L2, pivots(&pts, 5), DiskSim::new(1024));
        check_range(&idx, &pts, 500.0);
        check_knn(&idx, &pts, 12);
    }

    #[test]
    fn rtree_clusters_better_than_seq_scan() {
        let pts = datasets::la(1200, 74);
        let pv = pivots(&pts, 5);
        let seq = OmniSeqFile::build(pts.clone(), L2, pv.clone(), DiskSim::new(1024));
        let rt = OmniRTree::build(pts.clone(), L2, pv, DiskSim::new(1024));
        seq.reset_counters();
        let _ = seq.range_query(&pts[5], 150.0);
        let seq_pa = seq.counters().page_accesses();
        rt.reset_counters();
        let _ = rt.range_query(&pts[5], 150.0);
        let rt_pa = rt.counters().page_accesses();
        assert!(
            rt_pa < seq_pa,
            "OmniR should read fewer pages: {rt_pa} vs {seq_pa}"
        );
    }

    #[test]
    fn update_cycles() {
        let pts = datasets::la(200, 75);
        let pv = pivots(&pts, 3);
        let mut seq = OmniSeqFile::build(pts.clone(), L2, pv.clone(), DiskSim::new(1024));
        let mut bp = OmniBPlus::build(pts.clone(), L2, pv.clone(), DiskSim::new(1024), 14143.0);
        let mut rt = OmniRTree::build(pts.clone(), L2, pv, DiskSim::new(1024));
        for idx in [&mut seq as &mut dyn MetricIndex<Vec<f32>>, &mut bp, &mut rt] {
            let o = idx.get(9).unwrap();
            assert!(idx.remove(9), "{}", idx.name());
            assert!(!idx.remove(9), "{}", idx.name());
            assert_eq!(idx.len(), 199);
            let id = idx.insert(o);
            assert!(
                idx.range_query(&pts[9], 0.0).contains(&id),
                "{}",
                idx.name()
            );
        }
    }

    #[test]
    fn knn_cache_reduces_page_reads() {
        let pts = datasets::la(800, 76);
        let idx = OmniRTree::build(pts.clone(), L2, pivots(&pts, 5), DiskSim::new(1024));
        // Cold.
        idx.reset_counters();
        let _ = idx.knn_query(&pts[3], 20);
        let cold = idx.counters().page_reads;
        // With the paper's 128 KB cache.
        idx.rtree().disk().set_cache_bytes(128 * 1024);
        idx.reset_counters();
        let _ = idx.knn_query(&pts[3], 20);
        let _ = idx.knn_query(&pts[3], 20);
        let warm2 = idx.counters().page_reads;
        assert!(
            warm2 < cold * 2,
            "cache should absorb repeats: {warm2} vs 2x{cold}"
        );
    }
}
