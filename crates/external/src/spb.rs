//! SPB-tree (paper §5.4): space-filling-curve + pivot-based B+-tree.
//!
//! Pivot distances are discretized to a small grid and mapped through an
//! n-dimensional Hilbert curve to a single integer, which a B+-tree
//! indexes; non-leaf entries carry the minimum bounding box of their
//! subtree's grid cells (stored as the two corner SFC values in the paper,
//! as a decoded corner pair here). Objects live in a separate RAF. The SFC
//! compresses the pre-computed distances — the storage/I-O win Table 4 and
//! Figure 16 show — at the price of discretized (weaker) pivot filtering,
//! the trade-off the paper's §5.4 discussion calls out.

use pmi_bptree::{BpTree, NodeView, Summarizer};
use pmi_metric::{
    lemmas, Counters, CountingMetric, EncodeObject, Metric, MetricIndex, Neighbor, ObjId,
    StorageFootprint,
};
use pmi_storage::sfc::Hilbert;
use pmi_storage::{DiskSim, PageId, Raf};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct SpbConfig {
    /// Upper bound on any distance (`d⁺`), defining the grid extent.
    pub d_plus: f64,
    /// Bits per pivot dimension of the SFC grid (the paper's discrete
    /// approximation; 8 bits = 256 cells per pivot).
    pub bits: u32,
}

impl Default for SpbConfig {
    fn default() -> Self {
        SpbConfig {
            d_plus: 1e6,
            bits: 8,
        }
    }
}

/// B+-tree summarizer that unions grid-cell MBBs from Hilbert keys.
#[derive(Clone)]
pub struct CellMbb {
    hilbert: Hilbert,
}

impl Summarizer<u128> for CellMbb {
    type Summary = (Vec<u32>, Vec<u32>);

    fn size(&self) -> usize {
        8 * self.hilbert.dims()
    }

    fn leaf(&self, k: &u128) -> Self::Summary {
        let c = self.hilbert.decode(*k);
        (c.clone(), c)
    }

    fn merge(&self, acc: &mut Self::Summary, other: &Self::Summary) {
        for i in 0..acc.0.len() {
            acc.0[i] = acc.0[i].min(other.0[i]);
            acc.1[i] = acc.1[i].max(other.1[i]);
        }
    }

    fn write(&self, s: &Self::Summary, out: &mut Vec<u8>) {
        for v in &s.0 {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for v in &s.1 {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }

    fn read(&self, buf: &[u8]) -> Self::Summary {
        let d = self.hilbert.dims();
        let mut lo = Vec::with_capacity(d);
        let mut hi = Vec::with_capacity(d);
        for i in 0..d {
            lo.push(u32::from_le_bytes(
                buf[4 * i..4 * i + 4].try_into().unwrap(),
            ));
        }
        for i in 0..d {
            hi.push(u32::from_le_bytes(
                buf[4 * (d + i)..4 * (d + i) + 4].try_into().unwrap(),
            ));
        }
        (lo, hi)
    }
}

/// The SPB-tree.
pub struct SpbTree<O, M> {
    metric: CountingMetric<M>,
    pivots: Vec<O>,
    cfg: SpbConfig,
    hilbert: Hilbert,
    btree: BpTree<u128, u32, CellMbb>,
    raf: Raf,
    live: usize,
    next_id: u32,
}

impl<O, M> SpbTree<O, M>
where
    O: Clone + EncodeObject + Send + Sync + 'static,
    M: Metric<O>,
{
    /// Builds an SPB-tree (bulk-loads the B+-tree in SFC order).
    pub fn build(
        objects: Vec<O>,
        metric: M,
        pivots: Vec<O>,
        disk: DiskSim,
        cfg: SpbConfig,
    ) -> Self {
        assert!(!pivots.is_empty(), "SPB-tree needs pivots");
        let hilbert = Hilbert::new(pivots.len(), cfg.bits);
        let metric = CountingMetric::new(metric);
        let mut raf = Raf::new(disk.clone());
        let mut entries: Vec<(u128, u32)> = Vec::with_capacity(objects.len());
        let mut tmp = SpbTree {
            metric,
            pivots,
            cfg,
            hilbert,
            btree: BpTree::new(disk.clone(), CellMbb { hilbert }),
            raf: Raf::new(disk.clone()),
            live: 0,
            next_id: 0,
        };
        for o in &objects {
            let id = tmp.next_id;
            tmp.next_id += 1;
            let row = tmp.map(o);
            let key = tmp.encode_row(&row);
            entries.push((key, id));
            raf.append(id as u64, &o.encode());
        }
        entries.sort_by_key(|a| a.0);
        tmp.btree = BpTree::bulk_load(
            disk,
            CellMbb {
                hilbert: tmp.hilbert,
            },
            &entries,
        );
        tmp.raf = raf;
        tmp.live = objects.len();
        tmp
    }

    fn map(&self, q: &O) -> Vec<f64> {
        self.pivots.iter().map(|p| self.metric.dist(q, p)).collect()
    }

    /// Cell side length of the discretization grid.
    fn cell(&self) -> f64 {
        self.cfg.d_plus / (self.hilbert.max_coord() as f64 + 1.0)
    }

    fn discretize(&self, d: f64) -> u32 {
        ((d / self.cell()) as u32).min(self.hilbert.max_coord())
    }

    fn encode_row(&self, row: &[f64]) -> u128 {
        let coords: Vec<u32> = row.iter().map(|d| self.discretize(*d)).collect();
        self.hilbert.encode(&coords)
    }

    /// Conservative distance interval of a cell range `[lo, hi]`: an object
    /// in cell `c` has `d(o, p) ∈ [c·w, (c+1)·w)`.
    fn cells_to_bounds(&self, lo: &[u32], hi: &[u32]) -> (Vec<f64>, Vec<f64>) {
        let w = self.cell();
        let dlo: Vec<f64> = lo.iter().map(|c| *c as f64 * w).collect();
        let dhi: Vec<f64> = hi.iter().map(|c| (*c as f64 + 1.0) * w).collect();
        (dlo, dhi)
    }

    fn fetch(&self, id: u32) -> Option<O> {
        let bytes = self.raf.read(id as u64)?;
        Some(O::decode_from(&bytes).0)
    }

    /// The instrumented metric.
    pub fn metric(&self) -> &CountingMetric<M> {
        &self.metric
    }

    /// The shared disk (for cache configuration).
    pub fn disk(&self) -> &DiskSim {
        self.raf.disk()
    }
}

impl<O, M> MetricIndex<O> for SpbTree<O, M>
where
    O: Clone + EncodeObject + Send + Sync + 'static,
    M: Metric<O>,
{
    fn name(&self) -> &str {
        "SPB-tree"
    }

    fn len(&self) -> usize {
        self.live
    }

    fn range_query(&self, q: &O, r: f64) -> Vec<ObjId> {
        let qd = self.map(q);
        let mut out = Vec::new();
        let Some(root) = self.btree.root() else {
            return out;
        };
        let mut stack = vec![root];
        while let Some(pid) = stack.pop() {
            match self.btree.read_node(pid) {
                NodeView::Internal { entries } => {
                    for (_, child, (clo, chi)) in entries {
                        let (dlo, dhi) = self.cells_to_bounds(&clo, &chi);
                        if !lemmas::lemma1_box_prunable(&qd, &dlo, &dhi, r) {
                            stack.push(child);
                        }
                    }
                }
                NodeView::Leaf { entries, .. } => {
                    for (key, id) in entries {
                        let c = self.hilbert.decode(key);
                        let (dlo, dhi) = self.cells_to_bounds(&c, &c);
                        if lemmas::lemma1_box_prunable(&qd, &dlo, &dhi, r) {
                            continue;
                        }
                        // Lemma 4 on the conservative cell upper bounds:
                        // validated objects skip the distance computation
                        // entirely (§5.4 MRQ processing).
                        if qd.iter().zip(&dhi).any(|(dq, oh)| *oh <= r - *dq) {
                            out.push(id);
                            continue;
                        }
                        let o = self.fetch(id).expect("object in RAF");
                        if self.metric.dist(q, &o) <= r {
                            out.push(id);
                        }
                    }
                }
            }
        }
        out
    }

    fn knn_query(&self, q: &O, k: usize) -> Vec<Neighbor> {
        if k == 0 || self.live == 0 {
            return Vec::new();
        }
        let qd = self.map(q);
        let mut result: BinaryHeap<Neighbor> = BinaryHeap::new();
        let mut heap: BinaryHeap<Reverse<(u64, PageId)>> = BinaryHeap::new();
        if let Some(root) = self.btree.root() {
            heap.push(Reverse((0, root)));
        }
        let radius = |res: &BinaryHeap<Neighbor>| {
            if res.len() < k {
                f64::INFINITY
            } else {
                res.peek().unwrap().dist
            }
        };
        while let Some(Reverse((lb_bits, pid))) = heap.pop() {
            if f64::from_bits(lb_bits) > radius(&result) {
                break;
            }
            match self.btree.read_node(pid) {
                NodeView::Internal { entries } => {
                    for (_, child, (clo, chi)) in entries {
                        let (dlo, dhi) = self.cells_to_bounds(&clo, &chi);
                        let lb = lemmas::mbb_lower_bound(&qd, &dlo, &dhi);
                        if lb <= radius(&result) {
                            heap.push(Reverse((lb.to_bits(), child)));
                        }
                    }
                }
                NodeView::Leaf { entries, .. } => {
                    for (key, id) in entries {
                        let c = self.hilbert.decode(key);
                        let (dlo, dhi) = self.cells_to_bounds(&c, &c);
                        let lb = lemmas::mbb_lower_bound(&qd, &dlo, &dhi);
                        if lb > radius(&result) {
                            continue;
                        }
                        let o = self.fetch(id).expect("object in RAF");
                        let d = self.metric.dist(q, &o);
                        if d < radius(&result) || result.len() < k {
                            result.push(Neighbor::new(id, d));
                            if result.len() > k {
                                result.pop();
                            }
                        }
                    }
                }
            }
        }
        let mut v = result.into_sorted_vec();
        v.truncate(k);
        v
    }

    fn insert(&mut self, o: O) -> ObjId {
        let id = self.next_id;
        self.next_id += 1;
        let row = self.map(&o);
        self.btree.insert(self.encode_row(&row), id);
        self.raf.append(id as u64, &o.encode());
        self.live += 1;
        id
    }

    fn remove(&mut self, id: ObjId) -> bool {
        let Some(o) = self.fetch(id) else {
            return false;
        };
        let row = self.map(&o);
        if !self.btree.remove(self.encode_row(&row), id) {
            return false;
        }
        self.raf.remove(id as u64);
        self.live -= 1;
        true
    }

    fn get(&self, id: ObjId) -> Option<O> {
        self.fetch(id)
    }

    fn storage(&self) -> StorageFootprint {
        let pivots: u64 = self.pivots.iter().map(|p| p.encoded_len() as u64).sum();
        StorageFootprint {
            mem_bytes: pivots,
            disk_bytes: self.btree.disk_bytes() + self.raf.disk_bytes(),
        }
    }

    fn counters(&self) -> Counters {
        Counters {
            compdists: self.metric.count(),
            page_reads: self.raf.disk().reads(),
            page_writes: self.raf.disk().writes(),
        }
    }

    fn reset_counters(&self) {
        self.metric.reset();
        self.raf.disk().reset_counters();
    }

    fn set_page_cache(&self, bytes: usize) {
        self.raf.disk().set_cache_bytes(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmi_metric::datasets;
    use pmi_metric::{BruteForce, L2};
    use pmi_pivots::select_hfi;

    fn build(n: usize, bits: u32) -> (Vec<Vec<f32>>, SpbTree<Vec<f32>, L2>) {
        let pts = datasets::la(n, 101);
        let pv: Vec<Vec<f32>> = select_hfi(&pts, &L2, 5, 101)
            .into_iter()
            .map(|i| pts[i].clone())
            .collect();
        let idx = SpbTree::build(
            pts.clone(),
            L2,
            pv,
            DiskSim::new(1024),
            SpbConfig {
                d_plus: 14143.0,
                bits,
            },
        );
        (pts, idx)
    }

    #[test]
    fn range_matches_brute_force() {
        let (pts, idx) = build(400, 8);
        let oracle = BruteForce::new(pts.clone(), L2);
        for r in [130.0, 1000.0, 5000.0] {
            let mut got = idx.range_query(&pts[19], r);
            got.sort();
            let mut want = oracle.range_query(&pts[19], r);
            want.sort();
            assert_eq!(got, want, "r={r}");
        }
    }

    #[test]
    fn knn_matches_brute_force() {
        let (pts, idx) = build(400, 8);
        let oracle = BruteForce::new(pts.clone(), L2);
        for k in [1usize, 11, 35] {
            let got = idx.knn_query(&pts[301], k);
            let want = oracle.knn_query(&pts[301], k);
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                assert!((g.dist - w.dist).abs() < 1e-9, "k={k}");
            }
        }
    }

    #[test]
    fn more_bits_prune_better() {
        // §5.4 discussion: discretization weakens pivot filtering; a finer
        // grid must not verify more objects.
        let (pts, coarse) = build(700, 3);
        let (_, fine) = build(700, 10);
        let mut cd_coarse = 0;
        let mut cd_fine = 0;
        for qi in (0..700).step_by(70) {
            coarse.reset_counters();
            let _ = coarse.range_query(&pts[qi], 300.0);
            cd_coarse += coarse.counters().compdists;
            fine.reset_counters();
            let _ = fine.range_query(&pts[qi], 300.0);
            cd_fine += fine.counters().compdists;
        }
        assert!(
            cd_fine <= cd_coarse,
            "finer grid should prune at least as well: {cd_fine} vs {cd_coarse}"
        );
    }

    #[test]
    fn compact_storage_versus_mindex_style_rows() {
        // SPB stores a 16-byte key instead of l × 8-byte rows in the index
        // and no rows in the RAF — its storage should be modest.
        let (_, idx) = build(500, 8);
        let s = idx.storage();
        assert!(s.disk_bytes > 0);
        // 500 2-d objects = ~6 KB raw; the whole structure should stay
        // within a small multiple.
        assert!(s.disk_bytes < 700 * 1024, "{}", s.disk_bytes);
    }

    #[test]
    fn update_cycle() {
        let (pts, mut idx) = build(250, 8);
        let o = idx.get(123).unwrap();
        assert!(idx.remove(123));
        assert!(!idx.remove(123));
        assert_eq!(idx.len(), 249);
        let id = idx.insert(o);
        assert!(idx.range_query(&pts[123], 0.0).contains(&id));
    }
}
