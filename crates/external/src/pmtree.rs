//! PM-tree (paper §5.1): an M-tree whose entries carry pivot "cut-region"
//! information — implemented as the pivot-augmented mode of [`MTree`].
//!
//! Leaf entries store the mapped vector next to the object; routing entries
//! store a minimum bounding box over the mapped vectors of their subtree.
//! MRQ prunes with Lemmas 1 and 2; MkNNQ is best-first. The objects live
//! inside the tree nodes (no separate RAF), which is why the PM-tree needs
//! large pages for high-dimensional data (§6.1) and suffers low page
//! utilization on Color/Words (§6.5.2).

use pmi_metric::{
    Counters, CountingMetric, EncodeObject, Metric, MetricIndex, Neighbor, ObjId, StorageFootprint,
};
use pmi_mtree::MTree;
use pmi_storage::DiskSim;

/// PM-tree: pivot-augmented M-tree.
pub struct PmTree<O, M> {
    metric: CountingMetric<M>,
    pivots: Vec<O>,
    mtree: MTree<O, CountingMetric<M>>,
    live: usize,
    next_id: u32,
}

impl<O, M> PmTree<O, M>
where
    O: Clone + EncodeObject + Send + Sync + 'static,
    M: Metric<O> + Clone,
{
    /// Builds a PM-tree over `objects` using the shared pivot set.
    pub fn build(objects: Vec<O>, metric: M, pivots: Vec<O>, disk: DiskSim) -> Self {
        let metric = CountingMetric::new(metric);
        let mut mtree = MTree::new(disk, metric.clone(), pivots.clone());
        for (i, o) in objects.iter().enumerate() {
            mtree.insert(i as u32, o);
        }
        PmTree {
            metric,
            pivots,
            mtree,
            live: objects.len(),
            next_id: objects.len() as u32,
        }
    }

    fn query_dists(&self, q: &O) -> Vec<f64> {
        self.pivots.iter().map(|p| self.metric.dist(q, p)).collect()
    }

    /// The underlying augmented M-tree.
    pub fn mtree(&self) -> &MTree<O, CountingMetric<M>> {
        &self.mtree
    }

    /// The instrumented metric.
    pub fn metric(&self) -> &CountingMetric<M> {
        &self.metric
    }
}

impl<O, M> MetricIndex<O> for PmTree<O, M>
where
    O: Clone + EncodeObject + Send + Sync + 'static,
    M: Metric<O> + Clone,
{
    fn name(&self) -> &str {
        "PM-tree"
    }

    fn len(&self) -> usize {
        self.live
    }

    fn range_query(&self, q: &O, r: f64) -> Vec<ObjId> {
        let qd = self.query_dists(q);
        self.mtree
            .range(q, r, &qd)
            .into_iter()
            .map(|(id, _)| id)
            .collect()
    }

    fn knn_query(&self, q: &O, k: usize) -> Vec<Neighbor> {
        let qd = self.query_dists(q);
        self.mtree
            .knn(q, k, &qd)
            .into_iter()
            .map(|(id, d)| Neighbor::new(id, d))
            .collect()
    }

    fn insert(&mut self, o: O) -> ObjId {
        let id = self.next_id;
        self.next_id += 1;
        self.mtree.insert(id, &o);
        self.live += 1;
        id
    }

    fn remove(&mut self, id: ObjId) -> bool {
        let Some(o) = self.mtree.fetch(id) else {
            return false;
        };
        let ok = self.mtree.remove(id, &o);
        if ok {
            self.live -= 1;
        }
        ok
    }

    fn get(&self, id: ObjId) -> Option<O> {
        self.mtree.fetch(id)
    }

    fn storage(&self) -> StorageFootprint {
        let pivots: u64 = self.pivots.iter().map(|p| p.encoded_len() as u64).sum();
        StorageFootprint {
            mem_bytes: pivots,
            disk_bytes: self.mtree.disk_bytes(),
        }
    }

    fn counters(&self) -> Counters {
        Counters {
            compdists: self.metric.count(),
            page_reads: self.mtree.disk().reads(),
            page_writes: self.mtree.disk().writes(),
        }
    }

    fn reset_counters(&self) {
        self.metric.reset();
        self.mtree.disk().reset_counters();
    }

    fn set_page_cache(&self, bytes: usize) {
        self.mtree.disk().set_cache_bytes(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmi_metric::datasets;
    use pmi_metric::{BruteForce, L2};
    use pmi_pivots::select_hfi;

    fn build(n: usize) -> (Vec<Vec<f32>>, PmTree<Vec<f32>, L2>) {
        let pts = datasets::la(n, 51);
        let pv: Vec<Vec<f32>> = select_hfi(&pts, &L2, 5, 51)
            .into_iter()
            .map(|i| pts[i].clone())
            .collect();
        let idx = PmTree::build(pts.clone(), L2, pv, DiskSim::new(2048));
        (pts, idx)
    }

    #[test]
    fn range_matches_brute_force() {
        let (pts, idx) = build(400);
        let oracle = BruteForce::new(pts.clone(), L2);
        for r in [120.0, 1000.0] {
            let mut got = idx.range_query(&pts[8], r);
            got.sort();
            let mut want = oracle.range_query(&pts[8], r);
            want.sort();
            assert_eq!(got, want, "r={r}");
        }
    }

    #[test]
    fn knn_matches_brute_force() {
        let (pts, idx) = build(400);
        let oracle = BruteForce::new(pts.clone(), L2);
        let got = idx.knn_query(&pts[120], 15);
        let want = oracle.knn_query(&pts[120], 15);
        for (g, w) in got.iter().zip(&want) {
            assert!((g.dist - w.dist).abs() < 1e-9);
        }
    }

    #[test]
    fn queries_pay_page_accesses() {
        let (pts, idx) = build(300);
        idx.reset_counters();
        let _ = idx.range_query(&pts[0], 400.0);
        assert!(idx.counters().page_reads > 0);
    }

    #[test]
    fn update_cycle() {
        let (pts, mut idx) = build(250);
        let o = idx.get(77).unwrap();
        assert!(idx.remove(77));
        assert!(!idx.remove(77));
        assert_eq!(idx.len(), 249);
        let id = idx.insert(o);
        assert!(idx.range_query(&pts[77], 0.0).contains(&id));
    }

    #[test]
    fn storage_is_disk_resident() {
        let (_, idx) = build(200);
        let s = idx.storage();
        assert!(s.disk_bytes > s.mem_bytes);
    }
}
