//! Pivot-based external (disk-resident) indexes (paper §5): the PM-tree,
//! the Omni-family, the M-index / M-index* and the SPB-tree.
//!
//! All of them pay their I/O through [`pmi_storage::DiskSim`], so the
//! paper's PA metric is directly observable, and compute distances through
//! a [`pmi_metric::CountingMetric`]. The 128 KB LRU cache of the paper's
//! MkNNQ experiments is enabled by the harness via `DiskSim::set_cache_bytes`.

mod ept_disk;
mod mindex;
mod omni;
mod pmtree;
mod spb;

pub use ept_disk::{EptDisk, EptDiskConfig};
pub use mindex::{MIndex, MIndexConfig};
pub use omni::{OmniBPlus, OmniRTree, OmniSeqFile};
pub use pmtree::PmTree;
pub use spb::{SpbConfig, SpbTree};
