//! `pmi` — Pivot-based Metric Indexing.
//!
//! A from-scratch Rust reproduction of *Pivot-based Metric Indexing*
//! (Chen, Gao, Zheng, Jensen, Yang, Yang — PVLDB 10(10), 2017): all three
//! families of pivot-based metric indexes surveyed by the paper, the two
//! enhancements it contributes (EPT*, M-index*), the substrates they need,
//! and a uniform [`MetricIndex`] interface with the paper's cost model
//! (distance computations + page accesses) built in.
//!
//! # Quick start
//!
//! ```
//! use pmi::{builder, BuildOptions, IndexKind};
//!
//! // 1. A dataset and its metric (2-d city locations under L2).
//! let objects = pmi::datasets::la(2_000, 42);
//! let metric = pmi::L2;
//!
//! // 2. Build any of the paper's indexes through one entry point.
//! let mut index = builder::build_vector_index(
//!     IndexKind::Mvpt,
//!     objects.clone(),
//!     metric,
//!     &BuildOptions::default(),
//! )
//! .unwrap();
//!
//! // 3. Metric range and k-NN queries (Definitions 1–2 of the paper).
//! let hits = index.range_query(&objects[0], 500.0);
//! let knn = index.knn_query(&objects[0], 10);
//! assert!(hits.contains(&0));
//! assert_eq!(knn[0].id, 0);
//!
//! // 4. The paper's cost metrics are tracked automatically.
//! let c = index.counters();
//! assert!(c.compdists > 0);
//! ```
//!
//! # Serving batches with the sharded engine
//!
//! The [`engine`] module (crate `pmi-engine`) turns any of the indexes into
//! a concurrent query-serving tier: the dataset is partitioned across `P`
//! shards, each backed by its own index, and batches of mixed range/kNN
//! queries execute on a scoped-thread worker pool with per-shard results
//! merged per query (set union for range, a bounded binary heap for the
//! global top-k). Cost counters aggregate exactly across shards.
//!
//! ```
//! use pmi::{
//!     build_sharded_vector_engine, BuildOptions, EngineConfig, IndexKind, PartitionPolicy, Query,
//! };
//!
//! let objects = pmi::datasets::la(2_000, 42);
//! let engine = build_sharded_vector_engine(
//!     IndexKind::Mvpt,
//!     objects.clone(),
//!     pmi::L2,
//!     &BuildOptions { d_plus: 14143.0, ..BuildOptions::default() },
//!     &EngineConfig { shards: 4, threads: 2, ..EngineConfig::default() },
//!     PartitionPolicy::RoundRobin,
//! )
//! .unwrap();
//!
//! // Submit a mixed batch; read back answers plus a ServeReport.
//! let batch = vec![
//!     Query::range(objects[0].clone(), 500.0),
//!     Query::knn(objects[1].clone(), 10),
//! ];
//! let out = engine.serve(&batch);
//! assert_eq!(out.results.len(), 2);
//! assert!(out.report.qps > 0.0);
//! assert!(out.report.cost.compdists > 0);
//! ```
//!
//! # Routing-aware sharding (`PartitionPolicy::PivotSpace`)
//!
//! Round-robin spreads every metric region across all shards, so every
//! query probes all `P` of them. [`PartitionPolicy::PivotSpace`] instead
//! clusters objects by their pivot-distance vectors (balanced k-means in
//! pivot space, via the [`router`] module / crate `pmi-router`) and keeps a
//! per-shard bounding box over the mapped points. Each query is then
//! *routed*: range queries skip every shard whose box fails the Lemma 1
//! intersection test, and kNN queries probe shards best-first by box lower
//! bound, skipping the rest once the k-th distance undercuts them. Answers
//! are identical to round-robin (pruning is conservative); the saved work
//! shows up in `ServeReport::shards_pruned`.
//!
//! ```
//! use pmi::{
//!     build_sharded_vector_engine, BuildOptions, EngineConfig, IndexKind, PartitionPolicy, Query,
//! };
//!
//! let objects = pmi::datasets::la(2_000, 42);
//! let engine = build_sharded_vector_engine(
//!     IndexKind::Mvpt,
//!     objects.clone(),
//!     pmi::L2,
//!     &BuildOptions { d_plus: 14143.0, ..BuildOptions::default() },
//!     &EngineConfig { shards: 8, threads: 2, ..EngineConfig::default() },
//!     PartitionPolicy::PivotSpace,
//! )
//! .unwrap();
//! assert_eq!(engine.policy(), PartitionPolicy::PivotSpace);
//!
//! // Selective range queries on clustered data skip most shards.
//! let batch: Vec<Query<Vec<f32>>> = (0..32)
//!     .map(|i| Query::range(objects[i * 7].clone(), 150.0))
//!     .collect();
//! let out = engine.serve(&batch);
//! assert_eq!(
//!     out.report.shards_probed + out.report.shards_pruned,
//!     32 * 8,
//!     "every query accounts for all shards"
//! );
//! assert!(out.report.shards_pruned > 0, "routing skipped shard probes");
//! ```
//!
//! # The shared pivot-distance matrix build path
//!
//! Every pivot-based index is a view over the paper's central `n × l`
//! matrix `A[i][j] = d(o_i, p_j)`. The sharded build computes that matrix
//! **once, in parallel** across the engine's worker threads
//! ([`PivotMatrix`]), clusters/routes over its rows, and hands each shard
//! a [`MatrixSlice`] — a row-index view of the one shared
//! [`SharedPivotMatrix`], nothing copied — so shared-pivot tables (LAESA,
//! CPT, FQA — [`IndexKind::adopts_pivot_matrix`]) *adopt* their distances
//! instead of recomputing them: a `PivotSpace` LAESA build computes each
//! object-pivot distance exactly once instead of twice. The exact cost is
//! recorded in [`BuildStats`] and rides along in every [`ServeReport`]:
//!
//! ```
//! use pmi::{
//!     build_sharded_vector_engine, BuildOptions, EngineConfig, IndexKind, PartitionPolicy,
//! };
//!
//! let objects = pmi::datasets::la(2_000, 42);
//! let opts = BuildOptions { d_plus: 14143.0, ..BuildOptions::default() };
//! let engine = build_sharded_vector_engine(
//!     IndexKind::Laesa,
//!     objects.clone(),
//!     pmi::L2,
//!     &opts,
//!     &EngineConfig { shards: 8, threads: 4, ..EngineConfig::default() },
//!     PartitionPolicy::PivotSpace,
//! )
//! .unwrap();
//!
//! // The matrix was computed once (n·l distances) and adopted by every
//! // shard: the shards themselves computed zero build distances.
//! assert_eq!(engine.counters().compdists, 0);
//! assert_eq!(
//!     engine.build_stats().build_compdists,
//!     (objects.len() * opts.num_pivots) as u64
//! );
//! ```
//!
//! # Live updates: `engine.apply(&batch)`
//!
//! Mutations flow through the same layered path queries use. An
//! [`UpdateBatch`] of inserts and removes is applied in order: each insert
//! is routed via the routing table, its pivot row is computed **once** and
//! pushed into the shared matrix as one row that the destination shard
//! adopts by id (so a LAESA/CPT/FQA insert costs exactly `l` distance
//! computations — no shard-side remap); removes shrink the affected
//! shards' routing boxes back to their surviving members; and when a batch
//! leaves live counts imbalanced past [`EngineConfig::refresh`]
//! ([`RefreshPolicy`]), the worst shard pair is re-clustered incrementally
//! (global ids and matrix rows are preserved — only membership moves).
//! Routed answers after any churn are byte-identical to a from-scratch
//! rebuild over the survivors; the [`ApplyReport`] accounts every step
//! exactly, and cumulative totals ride along in `ServeReport::updates`.
//!
//! Sustained churn leaves tombstoned rows in the shared matrix — dead
//! weight the scan kernel still pays lower-bound arithmetic for. A
//! [`CompactionPolicy`] (next to `refresh` on [`EngineConfig`]) lets
//! `apply` drop them once the dead fraction crosses a threshold:
//! survivors are renumbered **densely in ascending global-id order** (the
//! ids a fresh rebuild would assign — old ids are invalidated, which is
//! why the default policy is disabled), the matrix is rewritten without
//! the dead rows, and serving afterwards is byte-identical to that
//! rebuild. `engine.compact()` runs the same pass on demand.
//!
//! ```
//! use pmi::{
//!     build_sharded_vector_engine, BuildOptions, CompactionPolicy, EngineConfig, IndexKind,
//!     PartitionPolicy, RefreshPolicy, UpdateBatch,
//! };
//!
//! let objects = pmi::datasets::la(2_000, 42);
//! let opts = BuildOptions { d_plus: 14143.0, ..BuildOptions::default() };
//! let mut engine = build_sharded_vector_engine(
//!     IndexKind::Laesa,
//!     objects.clone(),
//!     pmi::L2,
//!     &opts,
//!     &EngineConfig {
//!         shards: 8,
//!         threads: 2,
//!         // Re-cluster the worst shard pair when one holds 3x another.
//!         refresh: RefreshPolicy { max_imbalance: 3.0, min_objects: 64 },
//!         // Drop tombstoned matrix rows (renumbering ids!) once more
//!         // than 30% of the rows are dead.
//!         compaction: CompactionPolicy::at_dead_fraction(0.3),
//!         ..EngineConfig::default()
//!     },
//!     PartitionPolicy::PivotSpace,
//! )
//! .unwrap();
//!
//! engine.reset_counters();
//! let mut batch = UpdateBatch::new();
//! batch.insert(objects[7].clone()).remove(3).remove(11);
//! let report = engine.apply(&batch);
//! assert_eq!(report.inserts, 1);
//! assert_eq!(report.removes, 2);
//! // One l-wide matrix row for the routed insert, zero shard-side remap.
//! assert_eq!(report.map_compdists, opts.num_pivots as u64);
//! assert_eq!(report.shard_compdists, 0);
//! assert!(report.reboxed_shards >= 1, "removes shrink boxes");
//! assert_eq!(report.compactions, 0, "2 dead rows is under every floor");
//! assert_eq!(engine.len(), 1_999);
//!
//! // Heavy churn: remove a third of the dataset, then watch apply
//! // compact the matrix back to dense (ids renumber to 0..n_live).
//! let mut churn = UpdateBatch::new();
//! for id in 100..800 {
//!     churn.remove(id);
//! }
//! let report = engine.apply(&churn);
//! assert_eq!(report.compactions, 1);
//! assert_eq!(report.compacted_rows, 702, "all dead rows dropped");
//! assert_eq!(engine.len(), 1_299);
//! ```
//!
//! Each committed batch publishes a new immutable [`EngineSnapshot`]
//! (epoch +1, visible on every `ServeReport::epoch`); on copy-on-write
//! engines `apply` is all-or-nothing ([`ApplyReport`]`::aborted`) and
//! [`EngineReader`] handles (`engine.reader()`) keep serving concurrently
//! through commits. A standing [`SubmitQueue`] with [`AdmissionPolicy`]
//! adds backpressure and deadline shedding for always-on operation. The
//! concurrency model — snapshot lifecycle, epoch-based reclamation, the
//! writer-crash contract — is documented in `docs/concurrency.md`.
//!
//! # Observability: `engine.metrics()` and the `obs` feature
//!
//! Every engine carries a lock-free-on-the-hot-path metrics registry
//! ([`obs`], crate `pmi-obs`): build/serve/apply/compact run as
//! instrumented phases (per-worker state is plain writes, folded once per
//! batch), every served query lands in a latency histogram, and each
//! [`ServeReport`] breaks the batch down per shard
//! ([`ShardServeStats`]: exact probe/compdists/page counts, sampled
//! p50/p99 probe wall) so shard skew is visible directly.
//!
//! The whole subsystem sits behind the `obs` cargo feature (on by
//! default). The contract is **zero overhead when off**: disabled at
//! compile time (`--no-default-features`) every hook is a no-op the
//! optimizer erases; disabled at runtime
//! ([`ShardedEngine::set_obs_enabled`]) the serve path performs no clock
//! reads. Either way, *results and the paper's exact cost counters are
//! byte-identical* — observability never changes what is computed, only
//! what is recorded (`tests/counters.rs` proves it).
//!
//! ```
//! use pmi::{
//!     build_sharded_vector_engine, BuildOptions, EngineConfig, IndexKind, PartitionPolicy, Query,
//! };
//!
//! let objects = pmi::datasets::la(2_000, 42);
//! let engine = build_sharded_vector_engine(
//!     IndexKind::Laesa,
//!     objects.clone(),
//!     pmi::L2,
//!     &BuildOptions { d_plus: 14143.0, ..BuildOptions::default() },
//!     &EngineConfig { shards: 4, threads: 2, ..EngineConfig::default() },
//!     PartitionPolicy::PivotSpace,
//! )
//! .unwrap();
//! let batch: Vec<Query<Vec<f32>>> = (0..64)
//!     .map(|i| Query::range(objects[i].clone(), 200.0))
//!     .collect();
//! let out = engine.serve(&batch);
//!
//! // Per-shard breakdown: exact counts, regardless of the obs switch.
//! assert_eq!(out.report.per_shard.len(), 4);
//! let probes: u64 = out.report.per_shard.iter().map(|s| s.probes).sum();
//! assert_eq!(probes, out.report.shards_probed);
//!
//! // The phase tree (build.matrix, serve.scan, ...) — populated when the
//! // `obs` feature is on, empty (and free) when compiled out.
//! let snap = engine.metrics();
//! if pmi::obs::Registry::compiled_in() {
//!     assert!(snap.phases.iter().any(|p| p.path == "serve"));
//!     println!("{}", snap.render());
//! } else {
//!     assert!(snap.phases.is_empty());
//! }
//! ```
//!
//! # Performance: f32 columns, the SIMD kernel, batch scheduling
//!
//! The Lemma 1 filter scan is bandwidth-bound, and `docs/performance.md`
//! documents the three levers that speed it up without changing a single
//! answer byte:
//!
//! * **Filter-column modes** — `BuildOptions { column_mode:`
//!   [`ColumnMode::F32`](pmi_metric::ColumnMode)` , .. }` adds an `f32`
//!   mirror of the pivot matrix and streams half the bytes per filtered
//!   row; a conservative rounding slack keeps the narrow bound
//!   admissible, so exact `f64` verification returns byte-identical
//!   results (proven in `tests/counters.rs`).
//! * **The SIMD kernel** — [`metric::simd`](pmi_metric::simd) dispatches
//!   the scan to AVX2/SSE2/portable at runtime ([`SimdTier`]); every
//!   tier is bit-identical to the scalar reference, and `PMI_SIMD`
//!   forces a tier for testing.
//! * **Batch scheduling** — [`EngineConfig::sched`] ([`SchedPolicy`])
//!   picks between query-parallel (workers claim whole queries; the
//!   throughput shape) and shard-parallel (each query fans across
//!   shards; the narrow-batch shape); `Auto` applies the cost model and
//!   [`ServeReport::strategy`] reports what ran.

pub mod builder;
pub mod serve;

pub use builder::{build_index_with_matrix, BuildError, BuildOptions, IndexKind};
pub use serve::{build_sharded_engine, build_sharded_vector_engine};

pub use pmi_engine as engine;
pub use pmi_engine::{
    AdmissionPolicy, ApplyReport, BatchOutcome, BuildStats, CompactionPolicy, Completeness,
    DegradeReason, Degraded, EngineConfig, EngineError, EngineReader, EngineScratch,
    EngineSnapshot, FaultPolicy, LatencySummary, OpError, OpErrorKind, PumpOutcome, Query,
    QueryBudget, QueryError, QueryResult, QueryTrace, QueueStats, RefreshPolicy, SchedPolicy,
    SchedStrategy, ServeBudget, ServeReport, ShardFaultState, ShardServeStats, ShardedEngine,
    SubmitOutcome, SubmitQueue, TraceEvent, TraceKind, TracePolicy, UpdateBatch, UpdateOp,
    UpdateStats,
};

pub use pmi_obs as obs;

pub use pmi_router as router;
pub use pmi_router::{PartitionPolicy, RoutingTable};

pub use pmi_metric as metric;
pub use pmi_metric::datasets;
pub use pmi_metric::fault;
pub use pmi_metric::lemmas;
pub use pmi_metric::object;
pub use pmi_metric::{
    BruteForce, ColumnMode, Counters, CountingMetric, DistanceCounter, EditDistance, EncodeObject,
    LInf, Lp, MatrixSlice, Metric, MetricIndex, Neighbor, ObjId, ObjTable, PivotMatrix,
    QueryScratch, ScanKernel, SharedPivotMatrix, SimdTier, StorageFootprint, Vector, L1, L2,
};

pub use pmi_pivots as pivots;

pub use pmi_bptree as bptree;
pub use pmi_mtree as mtree;
pub use pmi_rtree as rtree;
pub use pmi_storage as storage;

pub use pmi_external::{
    EptDisk, EptDiskConfig, MIndex, MIndexConfig, OmniBPlus, OmniRTree, OmniSeqFile, PmTree,
    SpbConfig, SpbTree,
};
pub use pmi_tables::{Aesa, Cpt, Ept, EptConfig, EptMode, Laesa};
pub use pmi_trees::{DiscreteTree, DiscreteTreeConfig, Fqa, Mvpt, MvptConfig};
