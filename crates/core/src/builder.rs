//! One entry point to build every index of the paper with consistent
//! parameters — the "equal footing" requirement of §6.1 (same HFI pivots,
//! same page sizes, same defaults).

use pmi_metric::{ColumnMode, EncodeObject, MatrixSlice, Metric, MetricIndex};
use pmi_storage::DiskSim;

/// Every index variant evaluated or surveyed by the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum IndexKind {
    /// AESA (§3.1) — full n² table; surveyed but excluded from the paper's
    /// experiments ("theoretical index").
    Aesa,
    /// LAESA (§3.1).
    Laesa,
    /// EPT with random pivot groups (§3.2).
    Ept,
    /// EPT* — EPT with PSA pivots (§3.2, Algorithm 1).
    EptStar,
    /// CPT (§3.3).
    Cpt,
    /// BKT (§4.1; discrete metrics only).
    Bkt,
    /// FQT (§4.2; discrete metrics only).
    Fqt,
    /// FQA — Fixed Queries Array (Table 1, ref \[11\]; discrete metrics only).
    Fqa,
    /// VPT (§4.3; MVPT with m = 2).
    Vpt,
    /// MVPT (§4.3; the paper fixes m = 5).
    Mvpt,
    /// PM-tree (§5.1).
    PmTree,
    /// Omni-sequential-file (§5.2).
    OmniSeq,
    /// OmniB+-tree (§5.2).
    OmniBPlus,
    /// OmniR-tree (§5.2).
    OmniR,
    /// M-index (§5.3).
    MIndex,
    /// M-index* — the paper's enhanced M-index (§5.3).
    MIndexStar,
    /// SPB-tree (§5.4).
    Spb,
}

impl IndexKind {
    /// The nine index variants the paper's Figures 16–18 plot.
    pub const FIGURE_SET: [IndexKind; 9] = [
        IndexKind::EptStar,
        IndexKind::Cpt,
        IndexKind::Bkt,
        IndexKind::Fqt,
        IndexKind::Mvpt,
        IndexKind::Spb,
        IndexKind::MIndexStar,
        IndexKind::PmTree,
        IndexKind::OmniR,
    ];

    /// Display name matching the paper's tables.
    pub fn label(&self) -> &'static str {
        match self {
            IndexKind::Aesa => "AESA",
            IndexKind::Laesa => "LAESA",
            IndexKind::Ept => "EPT",
            IndexKind::EptStar => "EPT*",
            IndexKind::Cpt => "CPT",
            IndexKind::Bkt => "BKT",
            IndexKind::Fqt => "FQT",
            IndexKind::Fqa => "FQA",
            IndexKind::Vpt => "VPT",
            IndexKind::Mvpt => "MVPT",
            IndexKind::PmTree => "PM-tree",
            IndexKind::OmniSeq => "Omni-seq",
            IndexKind::OmniBPlus => "OmniB+",
            IndexKind::OmniR => "OmniR-tree",
            IndexKind::MIndex => "M-index",
            IndexKind::MIndexStar => "M-index*",
            IndexKind::Spb => "SPB-tree",
        }
    }

    /// Whether the index only supports discrete distance functions.
    pub fn requires_discrete(&self) -> bool {
        matches!(self, IndexKind::Bkt | IndexKind::Fqt | IndexKind::Fqa)
    }

    /// Whether the index stores data on (simulated) disk.
    pub fn is_disk_based(&self) -> bool {
        matches!(
            self,
            IndexKind::Cpt
                | IndexKind::PmTree
                | IndexKind::OmniSeq
                | IndexKind::OmniBPlus
                | IndexKind::OmniR
                | IndexKind::MIndex
                | IndexKind::MIndexStar
                | IndexKind::Spb
        )
    }

    /// Whether [`build_index_with_matrix`] can *adopt* a pre-computed
    /// pivot-distance matrix over the shared pivot set for this kind,
    /// skipping the `n · l` table recomputation — and whether engine
    /// inserts can push one shared row this kind takes by id
    /// ([`MetricIndex::insert_adopted`](pmi_metric::MetricIndex::insert_adopted)).
    /// True for the shared-pivot in-memory tables (LAESA, CPT, FQA); every
    /// other kind either selects its own pivots (EPT/EPT*, BKT) or derives
    /// a different structure from the pivot distances at build time, and
    /// falls back to [`build_index`]. (The Omni family also stores
    /// caller-pivot distance tables but interleaves them with its disk
    /// layout; adoption there is an open item.)
    pub fn adopts_pivot_matrix(&self) -> bool {
        matches!(self, IndexKind::Laesa | IndexKind::Cpt | IndexKind::Fqa)
    }
}

/// Why an index could not be built.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BuildError {
    /// BKT/FQT need a discrete distance function (paper §4.1).
    RequiresDiscreteMetric(IndexKind),
    /// The M-index needs at least two pivots (hyperplane partitioning).
    NotEnoughPivots(IndexKind, usize),
    /// A sharded engine was requested with `EngineConfig::shards == 0`.
    ZeroShards,
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::RequiresDiscreteMetric(k) => {
                write!(f, "{} requires a discrete distance function", k.label())
            }
            BuildError::NotEnoughPivots(k, n) => {
                write!(f, "{} cannot be built with {n} pivot(s)", k.label())
            }
            BuildError::ZeroShards => {
                write!(f, "a sharded engine requires at least one shard")
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// Shared construction parameters (paper Table 3 defaults).
#[derive(Clone, Debug)]
pub struct BuildOptions {
    /// Number of pivots `|P|` (default 5).
    pub num_pivots: usize,
    /// Page size for disk-based indexes (default 4 KB).
    pub page_size: usize,
    /// Page size for CPT/PM-tree, which store objects inline (the paper
    /// uses 40 KB on Color and Synthetic).
    pub inline_page_size: usize,
    /// Upper bound on any distance in the space (`d⁺`, Table 2 MaxD).
    pub d_plus: f64,
    /// M-index cluster split threshold (paper: 1,600).
    pub maxnum: usize,
    /// SPB-tree SFC bits per pivot dimension.
    pub sfc_bits: u32,
    /// EPT group size `m`.
    pub ept_m: usize,
    /// EPT μ-sample / EPT* PSA sample size.
    pub ept_sample: usize,
    /// MVPT arity (paper: 5) and leaf capacity.
    pub mvpt_arity: usize,
    /// MVPT leaf capacity.
    pub mvpt_leaf_cap: usize,
    /// BKT/FQT bucket count per node.
    pub buckets: usize,
    /// BKT/FQT leaf capacity.
    pub tree_leaf_cap: usize,
    /// Seed for all randomized components.
    pub seed: u64,
    /// Filter-column precision for the pivot-matrix scan kernel
    /// ([`ColumnMode::F32`] halves the bytes the Lemma 1 filter streams;
    /// exact distances stay f64 and results are byte-identical).
    pub column_mode: ColumnMode,
}

impl Default for BuildOptions {
    fn default() -> Self {
        BuildOptions {
            num_pivots: 5,
            page_size: pmi_storage::DEFAULT_PAGE_SIZE,
            inline_page_size: pmi_storage::DEFAULT_PAGE_SIZE,
            d_plus: 1e6,
            maxnum: 1600,
            sfc_bits: 8,
            ept_m: 8,
            ept_sample: 96,
            mvpt_arity: 5,
            mvpt_leaf_cap: 16,
            buckets: 32,
            tree_leaf_cap: 8,
            seed: 42,
            column_mode: ColumnMode::F64,
        }
    }
}

/// Builds any index over any object type, using pivots selected by the
/// caller (pass the shared HFI set for the paper's setup; EPT/EPT*/BKT
/// ignore it and select their own, §6.1).
pub fn build_index<O, M>(
    kind: IndexKind,
    objects: Vec<O>,
    metric: M,
    pivots: Vec<O>,
    opts: &BuildOptions,
) -> Result<Box<dyn MetricIndex<O>>, BuildError>
where
    O: Clone + EncodeObject + Send + Sync + 'static,
    M: Metric<O> + Clone + 'static,
{
    use pmi_external::*;
    use pmi_tables::*;
    use pmi_trees::*;

    if kind.requires_discrete() && !metric.is_discrete() {
        return Err(BuildError::RequiresDiscreteMetric(kind));
    }
    let disk = DiskSim::new(match kind {
        IndexKind::Cpt | IndexKind::PmTree => opts.inline_page_size,
        _ => opts.page_size,
    });
    let ept_cfg = EptConfig {
        l: opts.num_pivots,
        m: opts.ept_m,
        sample: opts.ept_sample,
        seed: opts.seed,
    };
    Ok(match kind {
        IndexKind::Aesa => Box::new(Aesa::build(objects, metric)),
        IndexKind::Laesa => Box::new(Laesa::build_mode(objects, metric, pivots, opts.column_mode)),
        IndexKind::Ept => Box::new(Ept::build(objects, metric, EptMode::Random, ept_cfg)),
        IndexKind::EptStar => Box::new(Ept::build(objects, metric, EptMode::Psa, ept_cfg)),
        IndexKind::Cpt => Box::new(Cpt::build_mode(
            objects,
            metric,
            pivots,
            disk,
            opts.column_mode,
        )),
        IndexKind::Bkt => Box::new(DiscreteTree::bkt(
            objects,
            metric,
            DiscreteTreeConfig {
                max_distance: opts.d_plus,
                buckets: opts.buckets,
                leaf_cap: opts.tree_leaf_cap,
                max_depth: 16,
                seed: opts.seed,
            },
        )),
        IndexKind::Fqt => Box::new(DiscreteTree::fqt(
            objects,
            metric,
            pivots,
            DiscreteTreeConfig {
                max_distance: opts.d_plus,
                buckets: opts.buckets,
                leaf_cap: opts.tree_leaf_cap,
                max_depth: 16,
                seed: opts.seed,
            },
        )),
        IndexKind::Fqa => Box::new(Fqa::build(
            objects,
            metric,
            pivots,
            opts.d_plus,
            opts.buckets as u32,
        )),
        IndexKind::Vpt => Box::new(Mvpt::build(
            objects,
            metric,
            pivots,
            MvptConfig {
                arity: 2,
                leaf_cap: opts.mvpt_leaf_cap,
            },
        )),
        IndexKind::Mvpt => Box::new(Mvpt::build(
            objects,
            metric,
            pivots,
            MvptConfig {
                arity: opts.mvpt_arity,
                leaf_cap: opts.mvpt_leaf_cap,
            },
        )),
        IndexKind::PmTree => Box::new(PmTree::build(objects, metric, pivots, disk)),
        IndexKind::OmniSeq => Box::new(OmniSeqFile::build(objects, metric, pivots, disk)),
        IndexKind::OmniBPlus => {
            Box::new(OmniBPlus::build(objects, metric, pivots, disk, opts.d_plus))
        }
        IndexKind::OmniR => Box::new(OmniRTree::build(objects, metric, pivots, disk)),
        IndexKind::MIndex | IndexKind::MIndexStar => {
            if pivots.len() < 2 {
                return Err(BuildError::NotEnoughPivots(kind, pivots.len()));
            }
            Box::new(MIndex::build(
                objects,
                metric,
                pivots,
                disk,
                MIndexConfig {
                    d_plus: opts.d_plus,
                    maxnum: opts.maxnum,
                    starred: kind == IndexKind::MIndexStar,
                },
            ))
        }
        IndexKind::Spb => Box::new(SpbTree::build(
            objects,
            metric,
            pivots,
            disk,
            SpbConfig {
                d_plus: opts.d_plus,
                bits: opts.sfc_bits,
            },
        )),
    })
}

/// [`build_index`] over pre-computed pivot-distance rows (a
/// [`MatrixSlice`] of the engine's shared matrix, or an owned
/// `PivotMatrix` via `Into`): kinds whose
/// [`IndexKind::adopts_pivot_matrix`] is true (LAESA, CPT, FQA) adopt
/// `rows` (local row `i` = `objects[i]`'s distances to `pivots`) instead
/// of recomputing the `n · l` table, with byte-identical query behavior —
/// and keep the shared handle so engine inserts can push one row the index
/// takes by id. Every other kind ignores the rows and builds exactly as
/// [`build_index`] does. This is the shard factory of the sharded engine's
/// shared-matrix build path.
pub fn build_index_with_matrix<O, M>(
    kind: IndexKind,
    objects: Vec<O>,
    metric: M,
    pivots: Vec<O>,
    opts: &BuildOptions,
    rows: impl Into<MatrixSlice>,
) -> Result<Box<dyn MetricIndex<O>>, BuildError>
where
    O: Clone + EncodeObject + Send + Sync + 'static,
    M: Metric<O> + Clone + 'static,
{
    use pmi_tables::*;
    use pmi_trees::Fqa;

    match kind {
        IndexKind::Laesa => Ok(Box::new(Laesa::build_with_matrix(
            objects, metric, pivots, rows,
        ))),
        IndexKind::Cpt => {
            let disk = DiskSim::new(opts.inline_page_size);
            Ok(Box::new(Cpt::build_with_matrix(
                objects, metric, pivots, rows, disk,
            )))
        }
        IndexKind::Fqa => {
            if !metric.is_discrete() {
                return Err(BuildError::RequiresDiscreteMetric(kind));
            }
            Ok(Box::new(Fqa::build_with_matrix(
                objects,
                metric,
                pivots,
                rows,
                opts.d_plus,
                opts.buckets as u32,
            )))
        }
        _ => build_index(kind, objects, metric, pivots, opts),
    }
}

/// Convenience wrapper for vector datasets: selects HFI pivots internally.
pub fn build_vector_index<M>(
    kind: IndexKind,
    objects: Vec<Vec<f32>>,
    metric: M,
    opts: &BuildOptions,
) -> Result<Box<dyn MetricIndex<Vec<f32>>>, BuildError>
where
    M: Metric<Vec<f32>> + Clone + 'static,
{
    let ids = pmi_pivots::select_hfi(&objects, &metric, opts.num_pivots, opts.seed);
    let pivots = ids.into_iter().map(|i| objects[i].clone()).collect();
    build_index(kind, objects, metric, pivots, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmi_metric::datasets;
    use pmi_metric::{BruteForce, LInf, L2};

    #[test]
    fn builds_every_continuous_index() {
        let pts = datasets::la(150, 7);
        let opts = BuildOptions {
            d_plus: 14143.0,
            maxnum: 32,
            ..BuildOptions::default()
        };
        for kind in [
            IndexKind::Aesa,
            IndexKind::Laesa,
            IndexKind::Ept,
            IndexKind::EptStar,
            IndexKind::Cpt,
            IndexKind::Vpt,
            IndexKind::Mvpt,
            IndexKind::PmTree,
            IndexKind::OmniSeq,
            IndexKind::OmniBPlus,
            IndexKind::OmniR,
            IndexKind::MIndex,
            IndexKind::MIndexStar,
            IndexKind::Spb,
        ] {
            let idx = build_vector_index(kind, pts.clone(), L2, &opts).unwrap();
            assert_eq!(idx.len(), 150, "{}", kind.label());
            assert_eq!(idx.name(), kind.label());
        }
    }

    #[test]
    fn discrete_only_indexes_reject_continuous_metrics() {
        let pts = datasets::la(60, 7);
        let err = build_vector_index(IndexKind::Bkt, pts, L2, &BuildOptions::default());
        assert!(matches!(
            err,
            Err(BuildError::RequiresDiscreteMetric(IndexKind::Bkt))
        ));
    }

    #[test]
    fn discrete_indexes_build_on_synthetic() {
        let pts = datasets::synthetic(200, 7);
        let opts = BuildOptions {
            d_plus: 10000.0,
            ..BuildOptions::default()
        };
        for kind in [IndexKind::Bkt, IndexKind::Fqt] {
            let idx = build_vector_index(kind, pts.clone(), LInf::discrete(), &opts).unwrap();
            let oracle = BruteForce::new(pts.clone(), LInf::discrete());
            let mut got = idx.range_query(&pts[0], 1500.0);
            got.sort();
            let mut want = oracle.range_query(&pts[0], 1500.0);
            want.sort();
            assert_eq!(got, want, "{}", kind.label());
        }
    }

    #[test]
    fn mindex_needs_two_pivots() {
        let pts = datasets::la(60, 7);
        let opts = BuildOptions {
            num_pivots: 1,
            d_plus: 14143.0,
            ..BuildOptions::default()
        };
        let err = build_vector_index(IndexKind::MIndexStar, pts, L2, &opts);
        assert!(matches!(err, Err(BuildError::NotEnoughPivots(_, 1))));
    }

    #[test]
    fn figure_set_is_the_papers_nine() {
        let labels: Vec<&str> = IndexKind::FIGURE_SET.iter().map(|k| k.label()).collect();
        assert_eq!(
            labels,
            vec![
                "EPT*",
                "CPT",
                "BKT",
                "FQT",
                "MVPT",
                "SPB-tree",
                "M-index*",
                "PM-tree",
                "OmniR-tree"
            ]
        );
    }
}
