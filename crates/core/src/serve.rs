//! Convenience constructors wiring [`builder`](crate::builder) into the
//! sharded serving engine (`pmi-engine`, re-exported as [`crate::engine`]).
//!
//! The engine itself is index-agnostic — it takes a shard factory. These
//! helpers close the loop for the common case: "shard this dataset across
//! `P` partitions, each backed by `IndexKind` X built with the paper's
//! shared parameters".

use crate::builder::{build_index, BuildError, BuildOptions, IndexKind};
use pmi_engine::{EngineConfig, ShardedEngine};
use pmi_metric::{EncodeObject, Metric};

/// Builds a sharded engine whose shards are all `kind` indexes built with
/// `opts`, sharing the caller-provided pivot set (the paper's equal-footing
/// setup: pass one HFI set and every shard uses it).
pub fn build_sharded_engine<O, M>(
    kind: IndexKind,
    objects: Vec<O>,
    metric: M,
    pivots: Vec<O>,
    opts: &BuildOptions,
    cfg: &EngineConfig,
) -> Result<ShardedEngine<O>, BuildError>
where
    O: Clone + EncodeObject + Send + Sync + 'static,
    M: Metric<O> + Clone + 'static,
{
    ShardedEngine::build_with(objects, cfg, |_, part| {
        build_index(kind, part, metric.clone(), pivots.clone(), opts)
    })
}

/// Vector-dataset convenience: selects one shared HFI pivot set over the
/// *full* dataset (so shards stay on equal footing with an unsharded
/// build), then shards.
pub fn build_sharded_vector_engine<M>(
    kind: IndexKind,
    objects: Vec<Vec<f32>>,
    metric: M,
    opts: &BuildOptions,
    cfg: &EngineConfig,
) -> Result<ShardedEngine<Vec<f32>>, BuildError>
where
    M: Metric<Vec<f32>> + Clone + 'static,
{
    let ids = pmi_pivots::select_hfi(&objects, &metric, opts.num_pivots, opts.seed);
    let pivots = ids.into_iter().map(|i| objects[i].clone()).collect();
    build_sharded_engine(kind, objects, metric, pivots, opts, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmi_engine::Query;
    use pmi_metric::{datasets, BruteForce, MetricIndex, L2};

    #[test]
    fn sharded_laesa_matches_oracle() {
        let pts = datasets::la(400, 11);
        let opts = BuildOptions {
            d_plus: 14143.0,
            ..BuildOptions::default()
        };
        let engine = build_sharded_vector_engine(
            IndexKind::Laesa,
            pts.clone(),
            L2,
            &opts,
            &EngineConfig {
                shards: 4,
                threads: 2,
            },
        )
        .unwrap();
        assert_eq!(engine.len(), 400);
        let oracle = BruteForce::new(pts.clone(), L2);
        let mut want = oracle.range_query(&pts[3], 800.0);
        want.sort_unstable();
        assert_eq!(engine.range_query(&pts[3], 800.0), want);
    }

    #[test]
    fn build_errors_surface() {
        let pts = datasets::la(50, 1);
        let err = build_sharded_vector_engine(
            IndexKind::Bkt,
            pts,
            L2,
            &BuildOptions::default(),
            &EngineConfig::default(),
        );
        assert!(matches!(err, Err(BuildError::RequiresDiscreteMetric(_))));
    }

    #[test]
    fn serve_mixed_batch() {
        let pts = datasets::la(300, 5);
        let opts = BuildOptions {
            d_plus: 14143.0,
            ..BuildOptions::default()
        };
        let engine = build_sharded_vector_engine(
            IndexKind::Mvpt,
            pts.clone(),
            L2,
            &opts,
            &EngineConfig {
                shards: 3,
                threads: 2,
            },
        )
        .unwrap();
        let batch: Vec<Query<Vec<f32>>> = (0..40)
            .map(|i| {
                if i % 2 == 0 {
                    Query::range(pts[i].clone(), 500.0)
                } else {
                    Query::knn(pts[i].clone(), 10)
                }
            })
            .collect();
        engine.reset_counters();
        let out = engine.serve(&batch);
        assert_eq!(out.results.len(), 40);
        assert!(out.report.cost.compdists > 0);
        assert_eq!(
            out.report.cost.compdists,
            engine.counters().compdists,
            "batch delta equals total on fresh counters"
        );
    }
}
