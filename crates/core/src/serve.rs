//! Convenience constructors wiring [`builder`](crate::builder) into the
//! sharded serving engine (`pmi-engine`, re-exported as [`crate::engine`])
//! and the pivot-space router (`pmi-router`, re-exported as
//! [`crate::router`]).
//!
//! The engine itself is index-agnostic — it takes a shard factory. These
//! helpers close the loop for the common case: "shard this dataset across
//! `P` partitions, each backed by `IndexKind` X built with the paper's
//! shared parameters, partitioned per `PartitionPolicy`".
//!
//! # The shared pivot-distance matrix
//!
//! The paper's central object — the `n × l` matrix of object-to-pivot
//! distances — is computed **once, in parallel** across the engine's worker
//! threads ([`pmi_metric::PivotMatrix::compute`]) and then reused
//! everywhere it is needed:
//!
//! * with [`PartitionPolicy::PivotSpace`], the router clusters directly
//!   over the matrix rows (balanced k-means in pivot space) and builds its
//!   per-shard [`pmi_router::RoutingTable`] boxes from them, so each query
//!   only probes the shards whose bounding box survives Lemma 1;
//! * each shard factory receives a [`pmi_metric::MatrixSlice`] — a
//!   row-index view of the shared matrix, nothing copied — so index kinds
//!   that adopt it ([`IndexKind::adopts_pivot_matrix`]: LAESA, CPT, FQA)
//!   skip their own `n · l` recomputation entirely — a `PivotSpace` build
//!   computes each object-pivot distance exactly once instead of twice;
//! * the engine keeps the shared matrix (and, for round-robin matrix
//!   builds, a pivot-space mapper) for its unified mutation path: an
//!   `apply`-batch insert pushes exactly one row that the destination
//!   shard adopts by id, removes shrink routing boxes over the surviving
//!   rows, and the `RefreshPolicy` re-clusters the worst shard pair under
//!   imbalance.
//!
//! The exact build cost (matrix + every shard's construction) and build
//! wall-clock are recorded in the engine's
//! [`BuildStats`](pmi_engine::BuildStats) and surfaced through every
//! `ServeReport`. Query-time mapping distances (`l` per routed query)
//! remain planner overhead outside the per-shard `Counters`, as before;
//! mutation-side mapping distances are accounted exactly in each
//! [`ApplyReport`](pmi_engine::ApplyReport).

use crate::builder::{build_index, build_index_with_matrix, BuildError, BuildOptions, IndexKind};
use pmi_engine::{EngineConfig, EngineError, ShardedEngine};
use pmi_metric::{CountingMetric, EncodeObject, Metric, PivotMatrix, SharedPivotMatrix};
use pmi_router::{assign_pivot_space, PartitionPolicy, RoutingTable};
use std::time::Instant;

fn flatten<O>(
    r: Result<ShardedEngine<O>, EngineError<BuildError>>,
) -> Result<ShardedEngine<O>, BuildError> {
    r.map_err(|e| match e {
        EngineError::ZeroShards => BuildError::ZeroShards,
        EngineError::Build(b) => b,
    })
}

/// Builds a sharded engine whose shards are all `kind` indexes built with
/// `opts`, sharing the caller-provided pivot set (the paper's equal-footing
/// setup: pass one HFI set and every shard uses it). `policy` picks the
/// partitioner: round-robin, or pivot-space clustering with routed
/// (shard-pruning) query serving over the same pivots. Builds that need the
/// shared pivot-distance matrix compute it once, in parallel, and reuse it
/// for routing *and* for seeding the shards' own tables (see the module
/// docs); the engine's `build_stats()` records the exact total.
pub fn build_sharded_engine<O, M>(
    kind: IndexKind,
    objects: Vec<O>,
    metric: M,
    pivots: Vec<O>,
    opts: &BuildOptions,
    cfg: &EngineConfig,
    policy: PartitionPolicy,
) -> Result<ShardedEngine<O>, BuildError>
where
    O: Clone + EncodeObject + Send + Sync + 'static,
    M: Metric<O> + Clone + 'static,
{
    if cfg.shards == 0 {
        return Err(BuildError::ZeroShards);
    }
    let t0 = Instant::now();
    // One seed governs every partitioning decision, including the
    // survivor re-partition at compaction time.
    let cfg = &EngineConfig {
        partition_seed: opts.seed,
        ..*cfg
    };

    // The matrix pays for itself when the router clusters over it or the
    // shards adopt it; round-robin engines over self-pivoting kinds skip it.
    let needs_matrix = policy == PartitionPolicy::PivotSpace || kind.adopts_pivot_matrix();
    let m0 = Instant::now();
    let (matrix, matrix_compdists) = if needs_matrix {
        let counting = CountingMetric::new(metric.clone());
        let mut m = PivotMatrix::compute(&objects, &counting, &pivots, cfg.resolved_threads());
        if kind.adopts_pivot_matrix() {
            // The f32 mirror only pays off where the scan kernel reads it;
            // a router-only matrix (non-adopting kind) stays f64.
            m.set_mode(opts.column_mode);
        }
        let cost = counting.count();
        (m, cost)
    } else {
        (PivotMatrix::new(pivots.len()), 0)
    };
    let matrix_nanos = needs_matrix.then(|| m0.elapsed().as_nanos() as u64);

    let matrix_factory = |_s: usize, part: Vec<O>, m: pmi_metric::MatrixSlice| {
        build_index_with_matrix(kind, part, metric.clone(), pivots.clone(), opts, m)
    };
    // The pivot-space mapper, shared by the router (query planning) and
    // the engine's mutation path (insert rows): `o ↦ (d(o, p_1), …)`.
    let make_mapper = || {
        let metric = metric.clone();
        let pivots = pivots.clone();
        move |o: &O, out: &mut Vec<f64>| out.extend(pivots.iter().map(|p| metric.dist(o, p)))
    };

    let mut partition_phase: Option<(usize, u64)> = None;
    let mut engine = match policy {
        PartitionPolicy::RoundRobin if !needs_matrix => {
            flatten(ShardedEngine::build_with(objects, cfg, |_, part| {
                build_index(kind, part, metric.clone(), pivots.clone(), opts)
            }))?
        }
        PartitionPolicy::RoundRobin => flatten(ShardedEngine::build_with_matrix(
            objects,
            SharedPivotMatrix::new(matrix),
            Box::new(make_mapper()),
            cfg,
            matrix_factory,
        ))?,
        PartitionPolicy::PivotSpace => {
            let p0 = Instant::now();
            let shards = cfg.resolved_shards(objects.len());
            let assignment = assign_pivot_space(&matrix, shards, opts.seed);
            let router = RoutingTable::from_assignment(
                make_mapper(),
                pivots.len(),
                &matrix,
                &assignment,
                shards,
            );
            let partition_nanos = p0.elapsed().as_nanos() as u64;
            partition_phase = Some((shards, partition_nanos));
            // Every kind routes over the shared matrix; adopting kinds
            // (LAESA, CPT, FQA) additionally seed their tables from their
            // slice, the rest build as usual and drop it (slices are row-id
            // views, so nothing was copied for them).
            flatten(ShardedEngine::build_partitioned_with_matrix(
                objects,
                &assignment,
                router,
                SharedPivotMatrix::new(matrix),
                cfg,
                matrix_factory,
            ))?
        }
    };

    let mut stats = engine.build_stats();
    stats.build_compdists += matrix_compdists;
    stats.build_wall_secs = t0.elapsed().as_secs_f64();
    engine.set_build_stats(stats);
    // Facade-side build phases (the engine itself recorded `build` /
    // `build.shards` for the part it ran). No-ops with obs off.
    if let Some(nanos) = matrix_nanos {
        engine
            .obs()
            .phase_add("build.matrix", 1, nanos, &[("compdists", matrix_compdists)]);
    }
    if let Some((shards, nanos)) = partition_phase {
        engine
            .obs()
            .phase_add("build.partition", 1, nanos, &[("shards", shards as u64)]);
    }
    Ok(engine)
}

/// Vector-dataset convenience: selects one shared HFI pivot set over the
/// *full* dataset (so shards stay on equal footing with an unsharded
/// build), then shards per `policy`.
///
/// Vector queries additionally get an input validator: a query object with
/// a non-finite coordinate is rejected at the serve boundary as
/// [`pmi_engine::QueryError::InvalidObject`] instead of poisoning distance
/// comparisons (NaN breaks metric axioms silently). See `docs/robustness.md`.
pub fn build_sharded_vector_engine<M>(
    kind: IndexKind,
    objects: Vec<Vec<f32>>,
    metric: M,
    opts: &BuildOptions,
    cfg: &EngineConfig,
    policy: PartitionPolicy,
) -> Result<ShardedEngine<Vec<f32>>, BuildError>
where
    M: Metric<Vec<f32>> + Clone + 'static,
{
    let ids = pmi_pivots::select_hfi(&objects, &metric, opts.num_pivots, opts.seed);
    let pivots = ids.into_iter().map(|i| objects[i].clone()).collect();
    let mut engine = build_sharded_engine(kind, objects, metric, pivots, opts, cfg, policy)?;
    engine.set_query_validator(|o: &Vec<f32>| o.iter().all(|c| c.is_finite()));
    Ok(engine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmi_engine::Query;
    use pmi_metric::{datasets, BruteForce, MetricIndex, L2};

    #[test]
    fn sharded_laesa_matches_oracle() {
        let pts = datasets::la(400, 11);
        let opts = BuildOptions {
            d_plus: 14143.0,
            ..BuildOptions::default()
        };
        for policy in [PartitionPolicy::RoundRobin, PartitionPolicy::PivotSpace] {
            let engine = build_sharded_vector_engine(
                IndexKind::Laesa,
                pts.clone(),
                L2,
                &opts,
                &EngineConfig {
                    shards: 4,
                    threads: 2,
                    ..EngineConfig::default()
                },
                policy,
            )
            .unwrap();
            assert_eq!(engine.len(), 400);
            assert_eq!(engine.policy(), policy);
            let oracle = BruteForce::new(pts.clone(), L2);
            let mut want = oracle.range_query(&pts[3], 800.0);
            want.sort_unstable();
            assert_eq!(engine.range_query(&pts[3], 800.0), want);
        }
    }

    #[test]
    fn shared_matrix_build_computes_each_distance_once() {
        // LAESA adopts the shared matrix: the matrix is computed once
        // (n·l, recorded in BuildStats) and the shards compute *zero*
        // build distances — the recompute path paid n·l again there.
        let pts = datasets::la(600, 7);
        let opts = BuildOptions {
            d_plus: 14143.0,
            ..BuildOptions::default()
        };
        for policy in [PartitionPolicy::RoundRobin, PartitionPolicy::PivotSpace] {
            let engine = build_sharded_vector_engine(
                IndexKind::Laesa,
                pts.clone(),
                L2,
                &opts,
                &EngineConfig {
                    shards: 4,
                    threads: 2,
                    ..EngineConfig::default()
                },
                policy,
            )
            .unwrap();
            assert_eq!(
                engine.counters().compdists,
                0,
                "{policy:?}: shards must adopt, not recompute"
            );
            let stats = engine.build_stats();
            assert_eq!(
                stats.build_compdists,
                600 * opts.num_pivots as u64,
                "{policy:?}: matrix computed exactly once"
            );
            assert!(stats.build_wall_secs > 0.0);
        }
    }

    #[test]
    fn pivot_space_routing_prunes_on_clustered_data() {
        // LA is clustered, so selective range queries must skip shards.
        let pts = datasets::la(800, 5);
        let radius = datasets::calibrate_radius(&pts, &L2, 0.01, 5);
        let opts = BuildOptions {
            d_plus: 14143.0,
            ..BuildOptions::default()
        };
        let engine = build_sharded_vector_engine(
            IndexKind::Laesa,
            pts.clone(),
            L2,
            &opts,
            &EngineConfig {
                shards: 8,
                threads: 1,
                ..EngineConfig::default()
            },
            PartitionPolicy::PivotSpace,
        )
        .unwrap();
        engine.reset_counters();
        let batch: Vec<Query<Vec<f32>>> = (0..50)
            .map(|i| Query::range(pts[i].clone(), radius))
            .collect();
        let out = engine.serve(&batch);
        assert!(
            out.report.shards_pruned > 0,
            "selective queries on clustered data must skip shards"
        );
        assert_eq!(
            out.report.shards_probed + out.report.shards_pruned,
            50 * 8,
            "every query accounts for all 8 shards"
        );
    }

    #[test]
    fn build_errors_surface() {
        let pts = datasets::la(50, 1);
        let err = build_sharded_vector_engine(
            IndexKind::Bkt,
            pts,
            L2,
            &BuildOptions::default(),
            &EngineConfig::default(),
            PartitionPolicy::RoundRobin,
        );
        assert!(matches!(err, Err(BuildError::RequiresDiscreteMetric(_))));
    }

    #[test]
    fn zero_shards_is_a_build_error() {
        for policy in [PartitionPolicy::RoundRobin, PartitionPolicy::PivotSpace] {
            let err = build_sharded_vector_engine(
                IndexKind::Laesa,
                datasets::la(20, 1),
                L2,
                &BuildOptions::default(),
                &EngineConfig {
                    shards: 0,
                    threads: 1,
                    ..EngineConfig::default()
                },
                policy,
            );
            assert_eq!(err.err(), Some(BuildError::ZeroShards), "{policy:?}");
        }
    }

    #[test]
    fn serve_mixed_batch() {
        let pts = datasets::la(300, 5);
        let opts = BuildOptions {
            d_plus: 14143.0,
            ..BuildOptions::default()
        };
        let engine = build_sharded_vector_engine(
            IndexKind::Mvpt,
            pts.clone(),
            L2,
            &opts,
            &EngineConfig {
                shards: 3,
                threads: 2,
                ..EngineConfig::default()
            },
            PartitionPolicy::PivotSpace,
        )
        .unwrap();
        let batch: Vec<Query<Vec<f32>>> = (0..40)
            .map(|i| {
                if i % 2 == 0 {
                    Query::range(pts[i].clone(), 500.0)
                } else {
                    Query::knn(pts[i].clone(), 10)
                }
            })
            .collect();
        engine.reset_counters();
        let out = engine.serve(&batch);
        assert_eq!(out.results.len(), 40);
        assert!(out.report.cost.compdists > 0);
        assert_eq!(
            out.report.cost.compdists,
            engine.counters().compdists,
            "batch delta equals total on fresh counters"
        );
        assert!(
            out.report.build.build_compdists > 0,
            "build stats ride along in the report"
        );
    }
}
