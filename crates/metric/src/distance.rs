//! Distance functions and the instrumented [`CountingMetric`] wrapper.
//!
//! A metric space `(M, d)` requires `d` to satisfy symmetry, non-negativity,
//! identity and the triangle inequality (paper §2.1). The implementations
//! here are property-tested against those axioms.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A distance function over objects of type `O`.
///
/// Implementations must satisfy the four metric axioms; all pivot filtering
/// in this workspace (Lemmas 1–4) is only correct under the triangle
/// inequality.
pub trait Metric<O: ?Sized>: Send + Sync {
    /// Distance between `a` and `b`. Must be symmetric and non-negative.
    fn dist(&self, a: &O, b: &O) -> f64;

    /// Whether the distance domain is discrete (integer-valued). BKT and FQT
    /// are only defined for discrete metrics (paper §4.1–4.2).
    fn is_discrete(&self) -> bool {
        false
    }

    /// Human-readable name used in reports.
    fn name(&self) -> &'static str;
}

impl<O: ?Sized, M: Metric<O> + ?Sized> Metric<O> for &M {
    fn dist(&self, a: &O, b: &O) -> f64 {
        (**self).dist(a, b)
    }
    fn is_discrete(&self) -> bool {
        (**self).is_discrete()
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// L1 norm (Manhattan distance) — used by the Color dataset.
#[derive(Clone, Copy, Debug, Default)]
pub struct L1;

impl Metric<[f32]> for L1 {
    #[inline]
    fn dist(&self, a: &[f32], b: &[f32]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        let mut s = 0.0f64;
        for (x, y) in a.iter().zip(b) {
            s += (*x as f64 - *y as f64).abs();
        }
        s
    }
    fn name(&self) -> &'static str {
        "L1"
    }
}

/// L2 norm (Euclidean distance) — used by the LA dataset.
#[derive(Clone, Copy, Debug, Default)]
pub struct L2;

impl Metric<[f32]> for L2 {
    #[inline]
    fn dist(&self, a: &[f32], b: &[f32]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        let mut s = 0.0f64;
        for (x, y) in a.iter().zip(b) {
            let d = *x as f64 - *y as f64;
            s += d * d;
        }
        s.sqrt()
    }
    fn name(&self) -> &'static str {
        "L2"
    }
}

/// L∞ norm (Chebyshev distance) — used by the Synthetic dataset. On
/// integer-valued vectors this is a discrete metric, which is what the paper
/// relies on to evaluate BKT/FQT on Synthetic.
#[derive(Clone, Copy, Debug, Default)]
pub struct LInf {
    /// Marks the distance domain as discrete (paper generates Synthetic as
    /// integers so that L∞ distances are integers).
    pub discrete: bool,
}

impl LInf {
    /// An L∞ metric over integer-valued vectors (discrete domain).
    pub fn discrete() -> Self {
        LInf { discrete: true }
    }
}

impl Metric<[f32]> for LInf {
    #[inline]
    fn dist(&self, a: &[f32], b: &[f32]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        let mut m = 0.0f64;
        for (x, y) in a.iter().zip(b) {
            let d = (*x as f64 - *y as f64).abs();
            if d > m {
                m = d;
            }
        }
        m
    }
    fn is_discrete(&self) -> bool {
        self.discrete
    }
    fn name(&self) -> &'static str {
        "Linf"
    }
}

/// General Lp norm for p ≥ 1 (p < 1 does not satisfy the triangle
/// inequality and is rejected).
#[derive(Clone, Copy, Debug)]
pub struct Lp {
    p: f64,
}

impl Lp {
    /// Creates an Lp metric. Panics if `p < 1`, which would violate the
    /// triangle inequality.
    pub fn new(p: f64) -> Self {
        assert!(p >= 1.0, "Lp norm requires p >= 1 to be a metric");
        Lp { p }
    }

    /// The exponent.
    pub fn p(&self) -> f64 {
        self.p
    }
}

impl Metric<[f32]> for Lp {
    #[inline]
    fn dist(&self, a: &[f32], b: &[f32]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        let mut s = 0.0f64;
        for (x, y) in a.iter().zip(b) {
            s += (*x as f64 - *y as f64).abs().powf(self.p);
        }
        s.powf(1.0 / self.p)
    }
    fn name(&self) -> &'static str {
        "Lp"
    }
}

// `Vec<f32>` convenience impls so indexes generic over `O = Vector` work
// without explicit deref coercion.
macro_rules! impl_vec_metric {
    ($t:ty) => {
        impl Metric<Vec<f32>> for $t {
            #[inline]
            fn dist(&self, a: &Vec<f32>, b: &Vec<f32>) -> f64 {
                Metric::<[f32]>::dist(self, a.as_slice(), b.as_slice())
            }
            fn is_discrete(&self) -> bool {
                Metric::<[f32]>::is_discrete(self)
            }
            fn name(&self) -> &'static str {
                Metric::<[f32]>::name(self)
            }
        }
    };
}
impl_vec_metric!(L1);
impl_vec_metric!(L2);
impl_vec_metric!(LInf);
impl_vec_metric!(Lp);

/// Levenshtein edit distance — used by the Words dataset. Discrete.
#[derive(Clone, Copy, Debug, Default)]
pub struct EditDistance;

impl EditDistance {
    /// Classic O(|a|·|b|) dynamic program with two rolling rows.
    pub fn levenshtein(a: &str, b: &str) -> usize {
        let a: Vec<char> = a.chars().collect();
        let b: Vec<char> = b.chars().collect();
        if a.is_empty() {
            return b.len();
        }
        if b.is_empty() {
            return a.len();
        }
        let mut prev: Vec<usize> = (0..=b.len()).collect();
        let mut cur = vec![0usize; b.len() + 1];
        for (i, ca) in a.iter().enumerate() {
            cur[0] = i + 1;
            for (j, cb) in b.iter().enumerate() {
                let sub = prev[j] + usize::from(ca != cb);
                cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
            }
            std::mem::swap(&mut prev, &mut cur);
        }
        prev[b.len()]
    }
}

impl Metric<str> for EditDistance {
    #[inline]
    fn dist(&self, a: &str, b: &str) -> f64 {
        Self::levenshtein(a, b) as f64
    }
    fn is_discrete(&self) -> bool {
        true
    }
    fn name(&self) -> &'static str {
        "edit"
    }
}

impl Metric<String> for EditDistance {
    #[inline]
    fn dist(&self, a: &String, b: &String) -> f64 {
        Self::levenshtein(a, b) as f64
    }
    fn is_discrete(&self) -> bool {
        true
    }
    fn name(&self) -> &'static str {
        "edit"
    }
}

/// Shared distance-computation counter.
///
/// The paper's primary cost metric is `compdists`, the number of distance
/// computations (§6.1). Every index in this workspace performs distance
/// computations exclusively through a [`CountingMetric`], so the harness can
/// read and reset this counter around each build / query / update.
#[derive(Clone, Debug, Default)]
pub struct DistanceCounter(Arc<AtomicU64>);

impl DistanceCounter {
    /// A fresh counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets to zero.
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }

    #[inline]
    fn bump(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }
}

/// A metric wrapper that counts every distance evaluation.
///
/// Cloning shares the underlying counter, so an index and the harness can
/// observe the same `compdists` stream.
#[derive(Clone, Debug)]
pub struct CountingMetric<M> {
    inner: M,
    counter: DistanceCounter,
}

impl<M> CountingMetric<M> {
    /// Wraps `inner` with a fresh counter.
    pub fn new(inner: M) -> Self {
        CountingMetric {
            inner,
            counter: DistanceCounter::new(),
        }
    }

    /// The shared counter handle.
    pub fn counter(&self) -> DistanceCounter {
        self.counter.clone()
    }

    /// Number of distance computations so far.
    pub fn count(&self) -> u64 {
        self.counter.get()
    }

    /// Resets the counter.
    pub fn reset(&self) {
        self.counter.reset()
    }

    /// The wrapped metric.
    pub fn inner(&self) -> &M {
        &self.inner
    }
}

impl<O: ?Sized, M: Metric<O>> Metric<O> for CountingMetric<M> {
    #[inline]
    fn dist(&self, a: &O, b: &O) -> f64 {
        self.counter.bump();
        self.inner.dist(a, b)
    }
    fn is_discrete(&self) -> bool {
        self.inner.is_discrete()
    }
    fn name(&self) -> &'static str {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l2_basic() {
        let a = [0.0f32, 0.0];
        let b = [3.0f32, 4.0];
        assert_eq!(L2.dist(&a[..], &b[..]), 5.0);
    }

    #[test]
    fn l1_basic() {
        let a = [1.0f32, -2.0];
        let b = [4.0f32, 2.0];
        assert_eq!(L1.dist(&a[..], &b[..]), 7.0);
    }

    #[test]
    fn linf_basic() {
        let a = [1.0f32, -2.0];
        let b = [4.0f32, 2.0];
        assert_eq!(LInf::default().dist(&a[..], &b[..]), 4.0);
        assert!(Metric::<[f32]>::is_discrete(&LInf::discrete()));
    }

    #[test]
    fn lp_matches_l1_l2() {
        let a = [1.0f32, 2.0, 3.0];
        let b = [4.0f32, 6.0, 3.0];
        let l1 = L1.dist(&a[..], &b[..]);
        let l2 = L2.dist(&a[..], &b[..]);
        assert!((Lp::new(1.0).dist(&a[..], &b[..]) - l1).abs() < 1e-9);
        assert!((Lp::new(2.0).dist(&a[..], &b[..]) - l2).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn lp_rejects_sub_one() {
        let _ = Lp::new(0.5);
    }

    #[test]
    fn edit_distance_paper_example() {
        // §2.1: MRQ("defoliate", 1) = {"defoliates", "defoliated"}
        assert_eq!(EditDistance::levenshtein("defoliate", "defoliates"), 1);
        assert_eq!(EditDistance::levenshtein("defoliate", "defoliated"), 1);
        assert_eq!(EditDistance::levenshtein("defoliate", "defoliation"), 3);
        assert_eq!(EditDistance::levenshtein("defoliate", "defoliating"), 3);
        assert!(EditDistance::levenshtein("defoliate", "citrate") > 1);
    }

    #[test]
    fn edit_distance_edge_cases() {
        assert_eq!(EditDistance::levenshtein("", ""), 0);
        assert_eq!(EditDistance::levenshtein("", "abc"), 3);
        assert_eq!(EditDistance::levenshtein("abc", ""), 3);
        assert_eq!(EditDistance::levenshtein("abc", "abc"), 0);
        assert_eq!(EditDistance::levenshtein("kitten", "sitting"), 3);
    }

    #[test]
    fn counting_metric_counts() {
        let m = CountingMetric::new(L2);
        let a = vec![0.0f32, 0.0];
        let b = vec![1.0f32, 1.0];
        assert_eq!(m.count(), 0);
        let _ = m.dist(&a, &b);
        let _ = m.dist(&a, &b);
        assert_eq!(m.count(), 2);
        m.reset();
        assert_eq!(m.count(), 0);
        // Clones share the counter.
        let m2 = m.clone();
        let _ = m2.dist(&a, &b);
        assert_eq!(m.count(), 1);
    }
}
