//! The unified, object-safe index interface implemented by all thirteen
//! index variants, plus a brute-force reference implementation used as the
//! correctness oracle in tests.

use crate::distance::{CountingMetric, Metric};
use crate::scratch::QueryScratch;
use crate::stats::{Counters, Neighbor, ObjId, StorageFootprint};

/// A metric index over objects of type `O`, supporting the paper's two query
/// types (Definitions 1 and 2) and updates (§6.3).
///
/// `Send + Sync` are supertraits so that boxed indexes can be sharded and
/// queried concurrently by the serving engine (`pmi-engine`): all query
/// methods take `&self`, and all interior mutability in this workspace is
/// atomic (distance counters) or lock-guarded (the simulated disk), so
/// concurrent queries keep the paper's cost accounting exact.
pub trait MetricIndex<O>: Send + Sync {
    /// Index name as used in the paper's tables ("LAESA", "EPT*", ...).
    fn name(&self) -> &str;

    /// Number of live (not removed) objects.
    fn len(&self) -> usize;

    /// Whether the index is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Metric range query `MRQ(q, r)`: ids of all objects within distance
    /// `r` of `q`. Order is unspecified.
    fn range_query(&self, q: &O, r: f64) -> Vec<ObjId>;

    /// Metric k-nearest-neighbor query `MkNNQ(q, k)`, sorted by ascending
    /// distance. Returns fewer than `k` entries only when the index holds
    /// fewer than `k` objects. Ties at the k-th distance are broken
    /// arbitrarily.
    fn knn_query(&self, q: &O, k: usize) -> Vec<Neighbor>;

    /// [`range_query`](Self::range_query) variant for the batch-serving hot
    /// path: answers are *appended* to `out` and all transient state lives
    /// in `scratch`, so a worker that reuses both performs no per-query
    /// heap allocations once the buffers are warm. The default falls back
    /// to the allocating path; the flat pivot tables override it.
    fn range_query_into(&self, q: &O, r: f64, scratch: &mut QueryScratch, out: &mut Vec<ObjId>) {
        let _ = scratch;
        out.extend(self.range_query(q, r));
    }

    /// [`knn_query`](Self::knn_query) variant for the batch-serving hot
    /// path; appends the (ascending-sorted) neighbors to `out`. Same
    /// scratch-reuse contract as [`range_query_into`](Self::range_query_into).
    fn knn_query_into(&self, q: &O, k: usize, scratch: &mut QueryScratch, out: &mut Vec<Neighbor>) {
        let _ = scratch;
        out.extend(self.knn_query(q, k));
    }

    /// [`knn_query_into`](Self::knn_query_into) with a *pruning seed*: the
    /// caller already holds `k` candidates whose worst distance is `seed`
    /// (the sharded engine's running top-k threshold when probing shards in
    /// sequence), so any object with a Lemma 1 lower bound **strictly
    /// above** `seed` can be skipped without being verified — it can only
    /// lose the merge.
    ///
    /// Exactness contract: the merged results must be *identical* to the
    /// unseeded call's. This holds because a skipped object has
    /// `d(q, o) ≥ lb > seed`, and the caller's k-full merge rejects every
    /// candidate at distance strictly above its threshold (which starts at
    /// `seed` and only tightens); a skipped object's absence from this
    /// shard's local top-k can only admit *worse* local candidates, which
    /// are rejected the same way. Pass `f64::INFINITY` when no candidates
    /// are held yet — implementations must then behave exactly like
    /// [`knn_query_into`](Self::knn_query_into); the default ignores the
    /// seed entirely, which is always correct, just unpruned.
    fn knn_query_into_seeded(
        &self,
        q: &O,
        k: usize,
        seed: f64,
        scratch: &mut QueryScratch,
        out: &mut Vec<Neighbor>,
    ) {
        let _ = seed;
        self.knn_query_into(q, k, scratch, out)
    }

    /// Inserts an object, returning its id.
    fn insert(&mut self, o: O) -> ObjId;

    /// Inserts an object whose pivot-distance row already exists in the
    /// index's adopted shared matrix
    /// ([`MatrixSlice`](crate::matrix::MatrixSlice)) at shared row `row` —
    /// the sharded engine's unified mutation path, which computes each
    /// insert's pivot row exactly once, stages it in the shared
    /// [`SharedPivotMatrix`](crate::matrix::SharedPivotMatrix), and hands
    /// indexes the row *id* plus the row's distances (`row_data`, so no
    /// implementation ever needs to read a still-staged row back).
    /// Implementations adopt the row without computing any distance beyond
    /// what their auxiliary structures need (e.g. CPT's M-tree clustering).
    ///
    /// The row may still be *staged*: the engine publishes the snapshot
    /// (and calls [`refresh_rows`](Self::refresh_rows)) before any query
    /// can run. Indexes without an adopted shared matrix return `Err(o)`,
    /// handing the object back so the caller can fall back to
    /// [`insert`](Self::insert).
    fn insert_adopted(&mut self, o: O, row: ObjId, row_data: &[f64]) -> Result<ObjId, O> {
        let _ = (row, row_data);
        Err(o)
    }

    /// Re-fetches the index's adopted matrix snapshot after the engine
    /// published staged rows (see the publication rule in
    /// [`matrix`](crate::matrix)). No-op for kinds without an adopted
    /// slice.
    fn refresh_rows(&mut self) {}

    /// Releases the index's adopted matrix snapshot ahead of a
    /// publication ([`MatrixSlice::release`](crate::matrix::MatrixSlice::release)):
    /// with every slice released the shared storage is sole-owned and the
    /// publish appends in place instead of copying the matrix. The engine
    /// always pairs this with [`refresh_rows`](Self::refresh_rows) before
    /// any query can run. No-op for kinds without an adopted slice.
    fn release_rows(&mut self) {}

    /// Engine-level compaction: drops every tombstoned slot, re-adding the
    /// survivors in `keep` order (old local ids — ascending global id, the
    /// order a from-scratch rebuild would use) and adopting `rows` — the
    /// survivors' row ids in the freshly compacted shared matrix, aligned
    /// with `keep`. After a successful compaction local id `i` holds the
    /// object previously at `keep[i]` and serving is byte-identical to a
    /// rebuild over the survivors.
    ///
    /// Returns `false` (and must change nothing) for kinds without an
    /// adopted matrix slice; the engine then only remaps its own id
    /// tables and leaves the index's tombstones in place.
    fn compact_rows(&mut self, keep: &[ObjId], rows: &[ObjId]) -> bool {
        let _ = (keep, rows);
        false
    }

    /// Removes an object by id; returns whether it was present.
    fn remove(&mut self, id: ObjId) -> bool;

    /// Retrieves a copy of a live object (used by the update experiment to
    /// delete-then-reinsert, §6.3).
    fn get(&self, id: ObjId) -> Option<O>;

    /// Current storage footprint, split between memory and disk as in
    /// Table 4's `(I)` / `(D)` annotations.
    fn storage(&self) -> StorageFootprint;

    /// Snapshot of the cost counters.
    fn counters(&self) -> Counters;

    /// Resets all cost counters to zero.
    fn reset_counters(&self);

    /// Configures an LRU page cache of `bytes` capacity on the index's
    /// simulated disk (the paper's 128 KB MkNNQ cache, §6.1). No-op for
    /// in-memory indexes; 0 disables caching.
    fn set_page_cache(&self, bytes: usize) {
        let _ = bytes;
    }

    /// Whether [`fork`](Self::fork) is supported. Kinds that return `true`
    /// can participate in the engine's copy-on-write apply transaction
    /// (serve-while-apply); kinds that return `false` fall back to the
    /// exclusive in-place mutation path.
    fn forkable(&self) -> bool {
        false
    }

    /// A deep, independent copy of this index for copy-on-write mutation:
    /// the engine forks the shards an `apply` batch touches, mutates the
    /// forks off to the side, and publishes them in one snapshot swap while
    /// readers keep serving from the originals.
    ///
    /// Contract: the fork must answer every query byte-identically to the
    /// original at fork time, and must **share** the original's distance
    /// counter (a [`CountingMetric`] clone shares its
    /// [`DistanceCounter`](crate::DistanceCounter)) so engine-level
    /// `compdists` totals stay monotone across snapshot publications.
    /// Structures behind `Arc` handles (the shared pivot matrix, the
    /// simulated disk) may be shared rather than copied as long as reads
    /// stay immutable. The default returns `None` (not forkable).
    fn fork(&self) -> Option<Box<dyn MetricIndex<O>>> {
        None
    }
}

/// Brute-force linear scan; the correctness oracle for every other index.
///
/// Cloning shares the distance counter (see [`CountingMetric`]) — the
/// clone is the [`MetricIndex::fork`] of the original.
#[derive(Clone)]
pub struct BruteForce<O, M> {
    objects: Vec<Option<O>>,
    live: usize,
    metric: CountingMetric<M>,
}

impl<O, M: Metric<O>> BruteForce<O, M> {
    /// Builds the oracle over `objects`.
    pub fn new(objects: Vec<O>, metric: M) -> Self {
        BruteForce {
            live: objects.len(),
            objects: objects.into_iter().map(Some).collect(),
            metric: CountingMetric::new(metric),
        }
    }

    /// The instrumented metric (shared counter).
    pub fn metric(&self) -> &CountingMetric<M> {
        &self.metric
    }
}

impl<O, M> MetricIndex<O> for BruteForce<O, M>
where
    O: Clone + Send + Sync + 'static,
    M: Metric<O> + Clone + 'static,
{
    fn name(&self) -> &str {
        "BruteForce"
    }

    fn forkable(&self) -> bool {
        true
    }

    fn fork(&self) -> Option<Box<dyn MetricIndex<O>>> {
        Some(Box::new(self.clone()))
    }

    fn len(&self) -> usize {
        self.live
    }

    fn range_query(&self, q: &O, r: f64) -> Vec<ObjId> {
        let mut out = Vec::new();
        self.range_query_into(q, r, &mut QueryScratch::new(), &mut out);
        out
    }

    fn knn_query(&self, q: &O, k: usize) -> Vec<Neighbor> {
        let mut scratch = QueryScratch::new();
        let mut out = Vec::new();
        self.knn_query_into(q, k, &mut scratch, &mut out);
        out
    }

    fn range_query_into(&self, q: &O, r: f64, _scratch: &mut QueryScratch, out: &mut Vec<ObjId>) {
        for (i, o) in self.objects.iter().enumerate() {
            if let Some(o) = o {
                if self.metric.dist(q, o) <= r {
                    out.push(i as ObjId);
                }
            }
        }
    }

    fn knn_query_into(&self, q: &O, k: usize, scratch: &mut QueryScratch, out: &mut Vec<Neighbor>) {
        if k == 0 {
            return;
        }
        scratch.heap.clear();
        for (i, o) in self.objects.iter().enumerate() {
            let Some(o) = o else { continue };
            let n = Neighbor::new(i as ObjId, self.metric.dist(q, o));
            if scratch.heap.len() < k {
                scratch.heap.push(n);
            } else if n < *scratch.heap.peek().expect("heap is full") {
                scratch.heap.push(n);
                scratch.heap.pop();
            }
        }
        crate::scratch::drain_heap_sorted(&mut scratch.heap, out);
    }

    fn insert(&mut self, o: O) -> ObjId {
        self.live += 1;
        self.objects.push(Some(o));
        (self.objects.len() - 1) as ObjId
    }

    fn remove(&mut self, id: ObjId) -> bool {
        match self.objects.get_mut(id as usize) {
            Some(slot @ Some(_)) => {
                *slot = None;
                self.live -= 1;
                true
            }
            _ => false,
        }
    }

    fn get(&self, id: ObjId) -> Option<O> {
        self.objects.get(id as usize).and_then(|o| o.clone())
    }

    fn storage(&self) -> StorageFootprint {
        StorageFootprint::mem((self.objects.len() * std::mem::size_of::<O>()) as u64)
    }

    fn counters(&self) -> Counters {
        Counters {
            compdists: self.metric.count(),
            page_reads: 0,
            page_writes: 0,
        }
    }

    fn reset_counters(&self) {
        self.metric.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::L2;

    fn sample() -> BruteForce<Vec<f32>, L2> {
        let pts = vec![
            vec![0.0f32, 0.0],
            vec![1.0, 0.0],
            vec![0.0, 2.0],
            vec![5.0, 5.0],
        ];
        BruteForce::new(pts, L2)
    }

    #[test]
    fn range_and_knn() {
        let idx = sample();
        let q = vec![0.0f32, 0.0];
        let mut r = idx.range_query(&q, 1.5);
        r.sort();
        assert_eq!(r, vec![0, 1]);
        let knn = idx.knn_query(&q, 2);
        assert_eq!(knn[0].id, 0);
        assert_eq!(knn[1].id, 1);
        assert!(idx.counters().compdists > 0);
    }

    #[test]
    fn updates() {
        let mut idx = sample();
        assert_eq!(idx.len(), 4);
        let o = idx.get(1).unwrap();
        assert!(idx.remove(1));
        assert!(!idx.remove(1));
        assert_eq!(idx.len(), 3);
        let q = vec![0.0f32, 0.0];
        assert_eq!(idx.range_query(&q, 1.5), vec![0]);
        let id = idx.insert(o);
        assert_eq!(idx.len(), 4);
        let mut r = idx.range_query(&q, 1.5);
        r.sort();
        assert_eq!(r, vec![0, id]);
    }

    #[test]
    fn knn_smaller_than_k() {
        let idx = sample();
        let q = vec![0.0f32, 0.0];
        assert_eq!(idx.knn_query(&q, 10).len(), 4);
    }
}
