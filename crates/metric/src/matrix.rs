//! The shared pivot-distance matrix: the paper's central `n × l` object.
//!
//! Every pivot-based index is, at its core, a view over the matrix
//! `A[i][j] = d(o_i, p_j)`. Historically each index in this workspace
//! recomputed (and re-stored) its own copy as `Vec<Option<Vec<f64>>>` — one
//! heap allocation and one pointer chase per object on every Lemma 1 scan.
//! [`PivotMatrix`] stores the matrix once, flat and row-major, so that
//!
//! * it can be **built once, in parallel** ([`PivotMatrix::compute`], on the
//!   same scoped-thread worker pool as [`crate::parallel`]) and then shared
//!   by the router and every shard of a sharded engine, and
//! * Lemma 1 scanning is a branch-light sequential pass over contiguous
//!   memory ([`PivotMatrix::row`] is a plain slice).
//!
//! Removal is handled *outside* the matrix: rows of tombstoned objects stay
//! in place (ids remain row indices) and are simply never visited, because
//! liveness lives in the index's slot map ([`crate::ObjTable`] /
//! [`crate::ObjTable::iter_live_rows`]).
//!
//! For sharded engines the matrix is wrapped in a [`SharedPivotMatrix`] and
//! every shard adopts a [`MatrixSlice`] — a row-index indirection into the
//! one shared matrix instead of a contiguous permuted copy. That makes the
//! mutation path cheap and exact: inserting an object pushes **one** row
//! into the shared matrix and every interested party (router boxes, the
//! destination shard's table) adopts the row id, with no per-shard
//! recomputation and no copying.

use crate::distance::Metric;
use parking_lot::{RwLock, RwLockReadGuard};
use std::sync::Arc;

/// A flat, row-major `n × l` pivot-distance matrix with stable row ids.
///
/// Row `i` holds `(d(o_i, p_1), …, d(o_i, p_l))`. Rows are never removed —
/// indexes with tombstoned deletion keep the row and skip it via their slot
/// map — so row indices are stable object ids for the lifetime of the index.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PivotMatrix {
    /// Row-major distances; `data[i * width + j] = d(o_i, p_j)`.
    data: Vec<f64>,
    /// Number of pivots `l` (row stride). A width of 0 is allowed (no
    /// pivots): the matrix then has zero-length rows.
    width: usize,
    /// Number of rows `n` (tracked separately so `width == 0` still counts).
    rows: usize,
}

impl PivotMatrix {
    /// An empty matrix over `width` pivots.
    pub fn new(width: usize) -> Self {
        PivotMatrix {
            data: Vec::new(),
            width,
            rows: 0,
        }
    }

    /// An empty matrix with capacity reserved for `rows` rows.
    pub fn with_capacity(width: usize, rows: usize) -> Self {
        PivotMatrix {
            data: Vec::with_capacity(width * rows),
            width,
            rows: 0,
        }
    }

    /// Computes the full `objects × pivots` matrix, fanning rows across
    /// `threads` scoped worker threads (1 ⇒ serial). Deterministic: the
    /// output is identical for every thread count, and with a
    /// [`CountingMetric`](crate::CountingMetric) exactly
    /// `objects.len() * pivots.len()` evaluations are counted.
    pub fn compute<O, M>(objects: &[O], metric: &M, pivots: &[O], threads: usize) -> Self
    where
        O: Sync,
        M: Metric<O> + Sync,
    {
        let width = pivots.len();
        let rows = objects.len();
        let mut data = vec![0.0f64; width * rows];
        let threads = threads.max(1);
        if threads == 1 || rows < 2 * threads || width == 0 {
            for (slot, o) in data.chunks_mut(width.max(1)).zip(objects) {
                for (x, p) in slot.iter_mut().zip(pivots) {
                    *x = metric.dist(o, p);
                }
            }
        } else {
            let chunk = rows.div_ceil(threads);
            crossbeam::thread::scope(|s| {
                for (slot_chunk, obj_chunk) in
                    data.chunks_mut(chunk * width).zip(objects.chunks(chunk))
                {
                    s.spawn(move |_| {
                        for (slot, o) in slot_chunk.chunks_mut(width).zip(obj_chunk) {
                            for (x, p) in slot.iter_mut().zip(pivots) {
                                *x = metric.dist(o, p);
                            }
                        }
                    });
                }
            })
            .expect("matrix worker thread panicked");
        }
        PivotMatrix { data, width, rows }
    }

    /// Builds a matrix from per-object rows (each of length `width`).
    pub fn from_rows<R: AsRef<[f64]>>(width: usize, rows: impl IntoIterator<Item = R>) -> Self {
        let mut m = PivotMatrix::new(width);
        for r in rows {
            m.push_row(r.as_ref());
        }
        m
    }

    /// Number of rows `n` (including rows of tombstoned objects).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of pivots `l` (the row stride).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Whether the matrix has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Row `id` as a contiguous slice of `l` distances.
    #[inline]
    pub fn row(&self, id: usize) -> &[f64] {
        &self.data[id * self.width..(id + 1) * self.width]
    }

    /// Appends one row, returning its row id.
    pub fn push_row(&mut self, row: &[f64]) -> usize {
        assert_eq!(row.len(), self.width, "row length must equal pivot count");
        self.data.extend_from_slice(row);
        self.rows += 1;
        self.rows - 1
    }

    /// A new matrix holding the given rows of `self`, in `ids` order — the
    /// per-shard slice/permutation of the shared matrix used when a sharded
    /// engine hands each shard its part of the one precomputed matrix.
    pub fn select(&self, ids: &[u32]) -> Self {
        let mut out = PivotMatrix::with_capacity(self.width, ids.len());
        for &id in ids {
            out.data.extend_from_slice(self.row(id as usize));
        }
        out.rows = ids.len();
        out
    }

    /// The whole matrix as one flat row-major slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Iterates `(row id, row)` over every row (tombstoned or not).
    pub fn iter_rows(&self) -> impl Iterator<Item = (usize, &[f64])> {
        (0..self.rows).map(|i| (i, self.row(i)))
    }

    /// In-memory footprint of the matrix in bytes.
    pub fn mem_bytes(&self) -> u64 {
        8 * self.data.len() as u64
    }
}

/// A [`PivotMatrix`] shared between the engine, the router, and every
/// shard's pivot table, behind a reader-writer lock so the engine's
/// mutation path can *grow* it in place while adopted slices keep reading.
///
/// Cloning shares the same matrix (the handle is an `Arc`). Reads are
/// uncontended in steady state — query scans take one read guard per query;
/// the write lock is only taken by [`push_row`](Self::push_row) on the
/// (exclusive-borrow) mutation path.
///
/// Rows are append-only: removal tombstones live in the indexes' slot maps,
/// so a row id handed out by `push_row` is valid forever.
#[derive(Clone, Debug, Default)]
pub struct SharedPivotMatrix(Arc<RwLock<PivotMatrix>>);

impl SharedPivotMatrix {
    /// Wraps an already-computed matrix for sharing.
    pub fn new(matrix: PivotMatrix) -> Self {
        SharedPivotMatrix(Arc::new(RwLock::new(matrix)))
    }

    /// Read access for the duration of a query scan.
    pub fn read(&self) -> RwLockReadGuard<'_, PivotMatrix> {
        self.0.read()
    }

    /// Appends one row, returning its stable row id.
    pub fn push_row(&self, row: &[f64]) -> usize {
        self.0.write().push_row(row)
    }

    /// Current number of rows (including rows of tombstoned objects).
    pub fn rows(&self) -> usize {
        self.0.read().rows()
    }

    /// Number of pivots `l` (the row stride).
    pub fn width(&self) -> usize {
        self.0.read().width()
    }

    /// An owned copy of the current matrix (tests / diagnostics).
    pub fn snapshot(&self) -> PivotMatrix {
        self.0.read().clone()
    }
}

/// One shard's adopted view of a [`SharedPivotMatrix`]: local row `i` reads
/// shared row `index[i]`.
///
/// This replaces the contiguous permuted per-shard matrix copies: adopting
/// a partition is `O(|partition|)` row *ids* instead of `O(|partition| · l)`
/// copied distances, and — the point of the indirection — a row pushed into
/// the shared matrix by the engine's mutation path is adopted by appending
/// its id ([`adopt`](Self::adopt)), with no copy and no recomputation.
///
/// A standalone index (no engine) wraps its own freshly computed matrix via
/// [`from_owned`](Self::from_owned), becoming the sole owner of a shared
/// handle with an identity indirection; the code paths are the same.
#[derive(Clone, Debug)]
pub struct MatrixSlice {
    shared: SharedPivotMatrix,
    /// Local row id → shared row id.
    index: Vec<u32>,
}

impl MatrixSlice {
    /// Adopts the given shared rows, in `index` order (local row `i` is
    /// shared row `index[i]`).
    pub fn new(shared: SharedPivotMatrix, index: Vec<u32>) -> Self {
        debug_assert!(
            index.iter().all(|&r| (r as usize) < shared.rows()),
            "every adopted row must exist in the shared matrix"
        );
        MatrixSlice { shared, index }
    }

    /// Wraps an owned matrix as its own sole-owner slice (identity
    /// indirection) — the standalone-index construction path.
    pub fn from_owned(matrix: PivotMatrix) -> Self {
        let index = (0..matrix.rows() as u32).collect();
        MatrixSlice {
            shared: SharedPivotMatrix::new(matrix),
            index,
        }
    }

    /// The shared matrix this slice reads.
    pub fn shared(&self) -> &SharedPivotMatrix {
        &self.shared
    }

    /// Number of local rows (including rows of tombstoned slots).
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the slice has adopted no rows.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Number of pivots `l`.
    pub fn width(&self) -> usize {
        self.shared.width()
    }

    /// The shared row id behind a local row.
    pub fn shared_row_of(&self, local: usize) -> usize {
        self.index[local] as usize
    }

    /// Adopts one more shared row, returning its local row id. The row must
    /// already exist in the shared matrix (the caller pushed it).
    pub fn adopt(&mut self, shared_row: usize) -> usize {
        debug_assert!(shared_row < self.shared.rows(), "adopting a missing row");
        self.index.push(shared_row as u32);
        self.index.len() - 1
    }

    /// Locks the shared matrix for reading and returns a row accessor valid
    /// for the duration of one query scan.
    pub fn reader(&self) -> MatrixSliceReader<'_> {
        MatrixSliceReader {
            matrix: self.shared.read(),
            index: &self.index,
        }
    }

    /// This slice's share of the matrix footprint: its rows' distances plus
    /// the indirection itself.
    pub fn mem_bytes(&self) -> u64 {
        (8 * self.width() as u64 + 4) * self.index.len() as u64
    }
}

impl From<PivotMatrix> for MatrixSlice {
    fn from(matrix: PivotMatrix) -> Self {
        MatrixSlice::from_owned(matrix)
    }
}

/// A read guard over a [`MatrixSlice`]: resolves local rows through the
/// indirection into the locked shared matrix. Holds the read lock until
/// dropped, so scans resolve rows with no per-row locking.
pub struct MatrixSliceReader<'a> {
    matrix: RwLockReadGuard<'a, PivotMatrix>,
    index: &'a [u32],
}

impl MatrixSliceReader<'_> {
    /// Local row `local` as a contiguous slice of `l` distances.
    #[inline]
    pub fn row(&self, local: usize) -> &[f64] {
        self.matrix.row(self.index[local] as usize)
    }

    /// Number of local rows.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the slice has no rows.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets;
    use crate::distance::{CountingMetric, L2};

    #[test]
    fn compute_matches_serial_for_all_thread_counts() {
        let pts = datasets::la(500, 3);
        let pivots: Vec<Vec<f32>> = vec![pts[1].clone(), pts[99].clone(), pts[200].clone()];
        let serial = PivotMatrix::compute(&pts, &L2, &pivots, 1);
        assert_eq!(serial.rows(), 500);
        assert_eq!(serial.width(), 3);
        for threads in [0usize, 2, 4, 7, 64] {
            let par = PivotMatrix::compute(&pts, &L2, &pivots, threads);
            assert_eq!(par, serial, "threads={threads}");
        }
        for (i, o) in pts.iter().enumerate().step_by(97) {
            for (j, p) in pivots.iter().enumerate() {
                assert_eq!(serial.row(i)[j], L2.dist(o, p));
            }
        }
    }

    #[test]
    fn compute_counts_exactly_n_times_l() {
        let pts = datasets::la(400, 5);
        let pivots: Vec<Vec<f32>> = vec![pts[0].clone(), pts[7].clone()];
        let metric = CountingMetric::new(L2);
        let _ = PivotMatrix::compute(&pts, &metric, &pivots, 4);
        assert_eq!(metric.count(), 400 * 2);
    }

    #[test]
    fn push_select_roundtrip() {
        let mut m = PivotMatrix::new(2);
        assert!(m.is_empty());
        assert_eq!(m.push_row(&[1.0, 2.0]), 0);
        assert_eq!(m.push_row(&[3.0, 4.0]), 1);
        assert_eq!(m.push_row(&[5.0, 6.0]), 2);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        let s = m.select(&[2, 0]);
        assert_eq!(s.rows(), 2);
        assert_eq!(s.row(0), &[5.0, 6.0]);
        assert_eq!(s.row(1), &[1.0, 2.0]);
        assert_eq!(m.as_slice().len(), 6);
        assert_eq!(m.mem_bytes(), 48);
        let rows: Vec<_> = m.iter_rows().collect();
        assert_eq!(rows[2], (2, [5.0, 6.0].as_slice()));
    }

    #[test]
    fn from_rows_matches_push() {
        let m = PivotMatrix::from_rows(2, [[1.0, 2.0], [3.0, 4.0]]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.row(0), &[1.0, 2.0]);
    }

    #[test]
    fn zero_width_matrix_counts_rows() {
        let mut m = PivotMatrix::new(0);
        m.push_row(&[]);
        m.push_row(&[]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.row(1), &[] as &[f64]);
        let pts = datasets::la(10, 1);
        let c = PivotMatrix::compute(&pts, &L2, &[], 4);
        assert_eq!(c.rows(), 10);
        assert_eq!(c.width(), 0);
    }

    #[test]
    #[should_panic]
    fn push_row_rejects_wrong_width() {
        let mut m = PivotMatrix::new(2);
        m.push_row(&[1.0]);
    }

    #[test]
    fn shared_matrix_grows_under_adopted_slices() {
        let shared = SharedPivotMatrix::new(PivotMatrix::from_rows(
            2,
            [[0.0, 1.0], [2.0, 3.0], [4.0, 5.0], [6.0, 7.0]],
        ));
        // Two "shards" adopt disjoint permuted views of the same matrix.
        let mut a = MatrixSlice::new(shared.clone(), vec![3, 0]);
        let b = MatrixSlice::new(shared.clone(), vec![1, 2]);
        assert_eq!(a.len(), 2);
        assert_eq!(a.width(), 2);
        assert_eq!(a.shared_row_of(0), 3);
        {
            let r = a.reader();
            assert_eq!(r.row(0), &[6.0, 7.0]);
            assert_eq!(r.row(1), &[0.0, 1.0]);
            assert_eq!(r.len(), 2);
        }
        // The mutation path pushes one row and the target slice adopts it.
        let row_id = shared.push_row(&[8.0, 9.0]);
        assert_eq!(row_id, 4);
        let local = a.adopt(row_id);
        assert_eq!(local, 2);
        assert_eq!(a.reader().row(2), &[8.0, 9.0]);
        // The sibling slice is untouched but reads the same grown matrix.
        assert_eq!(b.len(), 2);
        assert_eq!(b.shared().rows(), 5);
        assert_eq!(b.reader().row(1), &[4.0, 5.0]);
        assert_eq!(shared.snapshot().rows(), 5);
    }

    #[test]
    fn from_owned_is_identity_indirection() {
        let m = PivotMatrix::from_rows(1, [[1.0], [2.0], [3.0]]);
        let s: MatrixSlice = m.into();
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        let r = s.reader();
        for i in 0..3 {
            assert_eq!(r.row(i), &[(i + 1) as f64]);
        }
        assert_eq!(s.mem_bytes(), 3 * (8 + 4));
    }
}
