//! The shared pivot-distance matrix: the paper's central `n × l` object.
//!
//! Every pivot-based index is, at its core, a view over the matrix
//! `A[i][j] = d(o_i, p_j)`. Historically each index in this workspace
//! recomputed (and re-stored) its own copy as `Vec<Option<Vec<f64>>>` — one
//! heap allocation and one pointer chase per object on every Lemma 1 scan.
//! [`PivotMatrix`] stores the matrix once, flat and row-major, so that
//!
//! * it can be **built once, in parallel** ([`PivotMatrix::compute`], on the
//!   same scoped-thread worker pool as [`crate::parallel`]) and then shared
//!   by the router and every shard of a sharded engine,
//! * Lemma 1 scanning is a branch-light sequential pass over contiguous
//!   memory ([`PivotMatrix::row`] is a plain slice), and
//! * the per-object lower-bound filter runs through a cache-blocked,
//!   auto-vectorizable [`ScanKernel`] instead of one function call per row.
//!
//! # The snapshot publication rule
//!
//! For sharded engines the matrix lives in a [`SharedPivotMatrix`] and every
//! shard adopts a [`MatrixSlice`] — a row-index indirection plus a cached
//! [`Arc<PivotMatrix>`] **snapshot** of the shared storage. The discipline:
//!
//! * **Readers never block.** A query scan resolves rows through the
//!   slice's cached snapshot — a plain `Arc` field, no lock, no atomic
//!   read-modify-write. The old `MatrixSliceReader` guard (one
//!   `RwLock::read` per scan) is gone; there is no lock on the serve path
//!   at all, enforced at compile time by the API shape.
//! * **Writers publish on push/compact.** Mutation goes through `&mut`
//!   paths (the engine's `apply`, a standalone index's `insert`), which
//!   first *stage* rows ([`SharedPivotMatrix::stage_row`]) and then
//!   *publish* a new snapshot ([`SharedPivotMatrix::publish`]) that the
//!   affected slices re-fetch ([`MatrixSlice::refresh`]). Staging makes a
//!   batch of inserts pay one snapshot publication, not one per row.
//!   Rust's aliasing rules guarantee no query is concurrently reading the
//!   structure that publishes, so publication is a plain `Arc` swap under
//!   the writers' mutex.
//!
//! Removal is handled *outside* the matrix: rows of tombstoned objects stay
//! in place (ids remain row indices) and are simply never verified, because
//! liveness lives in the index's slot map ([`crate::ObjTable`]). Under
//! sustained churn those dead rows still cost lower-bound arithmetic and
//! cache space, which is what [`SharedPivotMatrix::replace`]-based
//! compaction (driven by the engine's `CompactionPolicy`) reclaims: the
//! engine builds a dense matrix over the survivors, installs it as the new
//! snapshot, and remaps every slice's row ids ([`MatrixSlice::reindex`]).

use crate::distance::Metric;
use crate::simd::{self, SimdTier};
use parking_lot::Mutex;
use std::sync::Arc;

/// Storage precision of the *filter* columns the scan kernel reads.
///
/// Exact distances are always f64; the column mode only controls what the
/// Lemma 1 lower-bound kernel streams through. Under [`ColumnMode::F32`]
/// each [`MatrixSlice`] keeps **planar** (column-major) f32 copies of its
/// own rows for the kernel — half the bytes per row, twice the SIMD lanes
/// per register, and contiguous loads even for scattered shard slices —
/// and admissibility is preserved by subtracting a conservative rounding
/// slack from every computed bound (see [`PivotMatrix::f32_slack`]): a
/// bound can only get *smaller*, which costs an occasional extra exact
/// check but can never drop a true result, so serve results stay
/// byte-identical to the f64 engine.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ColumnMode {
    /// Filter columns are the exact f64 distances (the default).
    #[default]
    F64,
    /// Filter columns are per-slice planar f32 copies with slack-adjusted
    /// (admissible) lower bounds; exact distances stay f64.
    F32,
}

impl ColumnMode {
    /// Human-readable label (`"f64"` / `"f32"`).
    pub fn label(&self) -> &'static str {
        match self {
            ColumnMode::F64 => "f64",
            ColumnMode::F32 => "f32",
        }
    }
}

/// Safety factor applied on top of the worst-case f32 rounding error when
/// deriving the admissibility slack (see [`PivotMatrix::f32_slack`]).
pub const F32_SLACK_FACTOR: f64 = 4.0;

/// A flat, row-major `n × l` pivot-distance matrix with stable row ids.
///
/// Row `i` holds `(d(o_i, p_1), …, d(o_i, p_l))`. Rows are never removed —
/// indexes with tombstoned deletion keep the row and skip it via their slot
/// map — so row indices are stable object ids for the lifetime of the index
/// (until an explicit engine-level compaction renumbers them wholesale).
///
/// Under [`ColumnMode::F32`] the matrix itself stays f64-only — the f32
/// representation the kernel streams is **planar** (column-major) and
/// per-slice, owned by each [`MatrixSlice`] so every shard scans contiguous
/// columns regardless of how scattered its row indirection is. The matrix
/// tracks only the running max magnitude that sizes the admissibility
/// slack; the f64 rows remain authoritative — compaction, selection and
/// staging all operate on f64 and slices re-derive their columns.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PivotMatrix {
    /// Row-major distances; `data[i * width + j] = d(o_i, p_j)`.
    data: Vec<f64>,
    /// Running `max |data[..]|`, maintained only under [`ColumnMode::F32`]
    /// (it sizes the rounding slack).
    max_abs: f64,
    /// Which representation the lower-bound kernel reads.
    mode: ColumnMode,
    /// Number of pivots `l` (row stride). A width of 0 is allowed (no
    /// pivots): the matrix then has zero-length rows.
    width: usize,
    /// Number of rows `n` (tracked separately so `width == 0` still counts).
    rows: usize,
}

impl PivotMatrix {
    /// An empty matrix over `width` pivots.
    pub fn new(width: usize) -> Self {
        PivotMatrix {
            data: Vec::new(),
            max_abs: 0.0,
            mode: ColumnMode::F64,
            width,
            rows: 0,
        }
    }

    /// An empty matrix with capacity reserved for `rows` rows.
    pub fn with_capacity(width: usize, rows: usize) -> Self {
        PivotMatrix {
            data: Vec::with_capacity(width * rows),
            ..PivotMatrix::new(width)
        }
    }

    /// Computes the full `objects × pivots` matrix, fanning rows across
    /// `threads` scoped worker threads (1 ⇒ serial). Deterministic: the
    /// output is identical for every thread count, and with a
    /// [`CountingMetric`](crate::CountingMetric) exactly
    /// `objects.len() * pivots.len()` evaluations are counted.
    pub fn compute<O, M>(objects: &[O], metric: &M, pivots: &[O], threads: usize) -> Self
    where
        O: Sync,
        M: Metric<O> + Sync,
    {
        let width = pivots.len();
        let rows = objects.len();
        let mut data = vec![0.0f64; width * rows];
        let threads = threads.max(1);
        if threads == 1 || rows < 2 * threads || width == 0 {
            for (slot, o) in data.chunks_mut(width.max(1)).zip(objects) {
                for (x, p) in slot.iter_mut().zip(pivots) {
                    *x = metric.dist(o, p);
                }
            }
        } else {
            let chunk = rows.div_ceil(threads);
            crossbeam::thread::scope(|s| {
                for (slot_chunk, obj_chunk) in
                    data.chunks_mut(chunk * width).zip(objects.chunks(chunk))
                {
                    s.spawn(move |_| {
                        for (slot, o) in slot_chunk.chunks_mut(width).zip(obj_chunk) {
                            for (x, p) in slot.iter_mut().zip(pivots) {
                                *x = metric.dist(o, p);
                            }
                        }
                    });
                }
            })
            .expect("matrix worker thread panicked");
        }
        PivotMatrix {
            data,
            rows,
            ..PivotMatrix::new(width)
        }
    }

    /// Builds a matrix from per-object rows (each of length `width`).
    pub fn from_rows<R: AsRef<[f64]>>(width: usize, rows: impl IntoIterator<Item = R>) -> Self {
        let mut m = PivotMatrix::new(width);
        for r in rows {
            m.push_row(r.as_ref());
        }
        m
    }

    /// Which representation the lower-bound kernel reads.
    pub fn mode(&self) -> ColumnMode {
        self.mode
    }

    /// Switches the filter-column mode, (re)scanning the stored distances
    /// for the max magnitude that sizes the f32 slack. Cheap on an empty
    /// matrix; `O(n·l)` otherwise.
    pub fn with_mode(mut self, mode: ColumnMode) -> Self {
        self.set_mode(mode);
        self
    }

    /// In-place form of [`with_mode`](Self::with_mode).
    pub fn set_mode(&mut self, mode: ColumnMode) {
        self.mode = mode;
        self.max_abs = 0.0;
        self.track_max_from(0);
    }

    /// Extends the running max magnitude from `data[from..]`. No-op under
    /// [`ColumnMode::F64`] (the slack is never consulted there).
    fn track_max_from(&mut self, from: usize) {
        if self.mode != ColumnMode::F32 {
            return;
        }
        let mut mx = self.max_abs;
        for &x in &self.data[from..] {
            let a = x.abs();
            if a > mx {
                mx = a;
            }
        }
        self.max_abs = mx;
    }

    /// Appends already-flat staged rows (the [`SharedPivotMatrix::publish`]
    /// path), keeping the max magnitude in sync.
    pub(crate) fn append_flat(&mut self, staged: &mut Vec<f64>, staged_rows: usize) {
        let from = self.data.len();
        self.data.append(staged);
        self.rows += staged_rows;
        self.track_max_from(from);
    }

    /// Number of rows `n` (including rows of tombstoned objects).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of pivots `l` (the row stride).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Whether the matrix has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Row `id` as a contiguous slice of `l` distances.
    #[inline]
    pub fn row(&self, id: usize) -> &[f64] {
        &self.data[id * self.width..(id + 1) * self.width]
    }

    /// Appends one row, returning its row id.
    pub fn push_row(&mut self, row: &[f64]) -> usize {
        assert_eq!(row.len(), self.width, "row length must equal pivot count");
        let from = self.data.len();
        self.data.extend_from_slice(row);
        self.rows += 1;
        self.track_max_from(from);
        self.rows - 1
    }

    /// A new matrix holding the given rows of `self`, in `ids` order — the
    /// per-shard slice/permutation of the shared matrix used when a sharded
    /// engine hands each shard its part of the one precomputed matrix, and
    /// the dense-survivor rebuild of engine-level compaction.
    pub fn select(&self, ids: &[u32]) -> Self {
        let mut out = PivotMatrix::with_capacity(self.width, ids.len());
        for &id in ids {
            out.data.extend_from_slice(self.row(id as usize));
        }
        out.rows = ids.len();
        out.set_mode(self.mode);
        out
    }

    /// The whole matrix as one flat row-major slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Running `max |d(o_i, p_j)|` over every stored distance (0 unless the
    /// mode is [`ColumnMode::F32`], where it sizes the rounding slack).
    pub fn max_abs(&self) -> f64 {
        self.max_abs
    }

    /// The admissibility slack subtracted from every f32-computed bound for
    /// a query whose pivot distances have max magnitude `qd_max_abs`.
    ///
    /// Worst-case error of the f32 bound vs the true f64 bound
    /// `max_j |qd_j − row_j|`: rounding each operand to f32 perturbs it by
    /// at most `½·ε₃₂·|operand|`, and the f32 subtraction adds at most
    /// `½·ε₃₂` of the result's magnitude (≤ the operand magnitudes' sum),
    /// so each `|qd_j − row_j|` term is off by at most about
    /// `ε₃₂·(|qd_j| + |row_j|)`; `max` never amplifies error. Subtracting
    /// `F32_SLACK_FACTOR · ε₃₂ · (max|row| + max|qd|)` therefore guarantees
    /// the adjusted bound never exceeds the true bound — with a 4× margin —
    /// and the kernel clamps at zero (degenerate inputs such as overflow to
    /// `±∞` or `NaN` produce a zero bound, i.e. a full exact scan, never an
    /// inadmissible one).
    pub fn f32_slack(&self, qd_max_abs: f64) -> f64 {
        F32_SLACK_FACTOR * (f32::EPSILON as f64) * (self.max_abs + qd_max_abs)
    }

    /// Iterates `(row id, row)` over every row (tombstoned or not).
    pub fn iter_rows(&self) -> impl Iterator<Item = (usize, &[f64])> {
        (0..self.rows).map(|i| (i, self.row(i)))
    }

    /// In-memory footprint of the matrix in bytes (the f64 rows; under
    /// [`ColumnMode::F32`] the planar f32 columns live in the slices and
    /// are accounted by [`MatrixSlice::mem_bytes`]).
    pub fn mem_bytes(&self) -> u64 {
        8 * self.data.len() as u64
    }
}

/// The cache-blocked, branchless pivot-filter kernel: computes the Lemma 1
/// lower bound `max_j |qd_j - row_j|` for whole *blocks* of candidate rows
/// at once over the flat row-major storage, instead of one
/// [`pivot_lower_bound`](crate::lemmas::pivot_lower_bound) call per row.
///
/// Processing [`ScanKernel::LANES`] rows per step keeps that many
/// independent `max` dependency chains in flight (the scalar loop is a
/// single serial chain of `l` compare-selects per row) and lets LLVM
/// auto-vectorize the fixed-stride inner loop; there is no per-row slot
/// branch, no `Option` unwrap, and no enumeration overhead inside the
/// block. The arithmetic is *identical* to the scalar path — `|a − b|` and
/// `max` are exact and each row's reduction runs in the same pivot order —
/// so blocked results equal scalar results **bit for bit** (unit-tested
/// below), which is what lets every index route its filter through the
/// kernel without changing a single exact counter.
///
/// On x86-64 the public entry points dispatch once (cached, overridable via
/// `PMI_SIMD`) to explicit [`std::arch`] lanes — see [`crate::simd`] — with
/// this blocked code as the portable fallback. Every tier produces
/// bit-identical bounds: `|a − b|` is one correctly-rounded op, `abs` is
/// exact, and a `max` reduction over non-negative finite values is exact in
/// any association, so SIMD dispatch is invisible to results and counters
/// (tier-agreement is unit-tested per tier).
pub struct ScanKernel;

/// `max(x, +0.0)` with the exact semantics of `_mm_max_pd(x, 0)`: `+0.0`
/// for negative, `±0` and `NaN` inputs. Keeping one copy shared by the
/// portable f32 path and every SIMD remainder loop is load-bearing for
/// tier bit-identity.
#[inline(always)]
pub(crate) fn clamp_pos(x: f64) -> f64 {
    if x > 0.0 {
        x
    } else {
        0.0
    }
}

/// Widens an f32 row-max to f64 and applies the admissibility slack (the
/// one adjustment formula every f32 tier shares — see
/// [`PivotMatrix::f32_slack`]).
#[inline(always)]
pub(crate) fn adjust_f32(m: f32, slack: f64) -> f64 {
    clamp_pos(m as f64 - slack)
}

impl ScanKernel {
    /// Rows processed per unrolled step (independent max-chains in flight).
    pub const LANES: usize = 4;

    #[inline(always)]
    pub(crate) fn row_max(qd: &[f64], row: &[f64]) -> f64 {
        let mut m = 0.0f64;
        for (q, x) in qd.iter().zip(row) {
            let d = (q - x).abs();
            m = if d > m { d } else { m };
        }
        m
    }

    /// The f32 per-row reduction over planar columns: row `r` of the slice
    /// whose column `j` is `cols[j]`. Pivot order (`j` ascending) and max
    /// semantics match [`row_max`](Self::row_max), which is what keeps
    /// every f32 tier bit-identical to the scalar reference.
    #[inline(always)]
    pub(crate) fn row_max_f32_planar(qd: &[f32], cols: &[&[f32]], r: usize) -> f32 {
        let mut m = 0.0f32;
        for (q, col) in qd.iter().zip(cols) {
            let d = (q - col[r]).abs();
            m = if d > m { d } else { m };
        }
        m
    }

    /// The one 4-lane reduction both blocked entry points share: four
    /// independent `max |q - x|` chains over four rows of width `qd.len()`.
    /// Keeping a single copy is load-bearing for the exact-counter
    /// guarantee — every caller must produce bit-identical bounds.
    #[inline(always)]
    fn block_max(qd: &[f64], r0: &[f64], r1: &[f64], r2: &[f64], r3: &[f64]) -> [f64; 4] {
        let (mut m0, mut m1, mut m2, mut m3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        for ((((q, x0), x1), x2), x3) in qd.iter().zip(r0).zip(r1).zip(r2).zip(r3) {
            let d0 = (q - x0).abs();
            let d1 = (q - x1).abs();
            let d2 = (q - x2).abs();
            let d3 = (q - x3).abs();
            m0 = if d0 > m0 { d0 } else { m0 };
            m1 = if d1 > m1 { d1 } else { m1 };
            m2 = if d2 > m2 { d2 } else { m2 };
            m3 = if d3 > m3 { d3 } else { m3 };
        }
        [m0, m1, m2, m3]
    }

    /// Lower bounds for `n` contiguous rows of flat row-major storage
    /// (`rows.len() == n * qd.len()`), appended-into `out` (cleared first).
    /// Dispatches once to the best available SIMD tier (`PMI_SIMD`
    /// overridable); every tier is bit-identical.
    pub fn lower_bounds(qd: &[f64], rows: &[f64], n: usize, out: &mut Vec<f64>) {
        Self::lower_bounds_with_tier(simd::tier(), qd, rows, n, out);
    }

    /// [`lower_bounds`](Self::lower_bounds) pinned to an explicit SIMD tier
    /// (tier-agreement tests and the kernel bench; serving uses the cached
    /// [`simd::tier`] dispatch).
    pub fn lower_bounds_with_tier(
        tier: SimdTier,
        qd: &[f64],
        rows: &[f64],
        n: usize,
        out: &mut Vec<f64>,
    ) {
        let w = qd.len();
        out.clear();
        if w == 0 {
            out.resize(n, 0.0);
            return;
        }
        debug_assert_eq!(rows.len(), n * w);
        match tier {
            #[cfg(target_arch = "x86_64")]
            SimdTier::Avx2 => {
                out.resize(n, 0.0);
                // SAFETY: dispatch/pinning is gated on runtime AVX2
                // detection; slice lengths are checked above.
                unsafe { simd::x86::lb_f64_avx2(qd, rows, out) }
            }
            #[cfg(target_arch = "x86_64")]
            SimdTier::Sse2 => {
                out.resize(n, 0.0);
                // SAFETY: SSE2 is baseline on x86-64.
                unsafe { simd::x86::lb_f64_sse2(qd, rows, out) }
            }
            _ => Self::lower_bounds_portable(qd, rows, n, out),
        }
    }

    /// The portable blocked path (and the non-x86-64 implementation).
    fn lower_bounds_portable(qd: &[f64], rows: &[f64], n: usize, out: &mut Vec<f64>) {
        let w = qd.len();
        debug_assert_eq!(rows.len(), n * w);
        out.reserve(n);
        let mut blocks = rows.chunks_exact(Self::LANES * w);
        for block in &mut blocks {
            let (r0, rest) = block.split_at(w);
            let (r1, rest) = rest.split_at(w);
            let (r2, r3) = rest.split_at(w);
            out.extend_from_slice(&Self::block_max(qd, r0, r1, r2, r3));
        }
        for row in blocks.remainder().chunks_exact(w) {
            out.push(Self::row_max(qd, row));
        }
    }

    /// [`lower_bounds`](Self::lower_bounds) through a row-id indirection:
    /// entry `i` of `out` is the lower bound of `matrix` row `index[i]`.
    /// The gather variant of the kernel, used by permuted shard slices;
    /// the inner loop is still the fixed-stride blocked reduction.
    pub fn lower_bounds_indexed(
        qd: &[f64],
        matrix: &PivotMatrix,
        index: &[u32],
        out: &mut Vec<f64>,
    ) {
        Self::lower_bounds_indexed_with_tier(simd::tier(), qd, matrix, index, out);
    }

    /// [`lower_bounds_indexed`](Self::lower_bounds_indexed) pinned to an
    /// explicit SIMD tier.
    pub fn lower_bounds_indexed_with_tier(
        tier: SimdTier,
        qd: &[f64],
        matrix: &PivotMatrix,
        index: &[u32],
        out: &mut Vec<f64>,
    ) {
        let w = qd.len();
        out.clear();
        if w == 0 {
            out.resize(index.len(), 0.0);
            return;
        }
        debug_assert_eq!(matrix.width(), w);
        let data = matrix.as_slice();
        match tier {
            #[cfg(target_arch = "x86_64")]
            SimdTier::Avx2 => {
                out.resize(index.len(), 0.0);
                // SAFETY: runtime AVX2 detection; every index row is in
                // bounds by the matrix's construction invariants.
                unsafe { simd::x86::lb_f64_idx_avx2(qd, data, index, out) }
            }
            #[cfg(target_arch = "x86_64")]
            SimdTier::Sse2 => {
                out.resize(index.len(), 0.0);
                // SAFETY: SSE2 is baseline on x86-64.
                unsafe { simd::x86::lb_f64_idx_sse2(qd, data, index, out) }
            }
            _ => {
                out.reserve(index.len());
                let mut blocks = index.chunks_exact(Self::LANES);
                for ids in &mut blocks {
                    let r0 = &data[ids[0] as usize * w..ids[0] as usize * w + w];
                    let r1 = &data[ids[1] as usize * w..ids[1] as usize * w + w];
                    let r2 = &data[ids[2] as usize * w..ids[2] as usize * w + w];
                    let r3 = &data[ids[3] as usize * w..ids[3] as usize * w + w];
                    out.extend_from_slice(&Self::block_max(qd, r0, r1, r2, r3));
                }
                for &id in blocks.remainder() {
                    out.push(Self::row_max(qd, matrix.row(id as usize)));
                }
            }
        }
    }

    /// f32 filter columns: lower bounds for `n` rows of **planar**
    /// (column-major) storage — `cols[j][i]` is row `i`'s f32 distance to
    /// pivot `j` — **slack-adjusted** into admissible f64 bounds
    /// (`clamp_pos(m − slack)`, see [`PivotMatrix::f32_slack`]) so callers
    /// compare them against f64 radii/thresholds unchanged.
    ///
    /// Planar storage is what makes the f32 mode pay: every SIMD step is
    /// one contiguous load per column, for contiguous *and* scattered
    /// slices alike — there is no f32 gather path at all (each
    /// [`MatrixSlice`] owns its rows' columns in local order).
    pub fn lower_bounds_f32(qd: &[f32], cols: &[&[f32]], n: usize, slack: f64, out: &mut Vec<f64>) {
        Self::lower_bounds_f32_with_tier(simd::tier(), qd, cols, n, slack, out);
    }

    /// [`lower_bounds_f32`](Self::lower_bounds_f32) pinned to an explicit
    /// SIMD tier.
    pub fn lower_bounds_f32_with_tier(
        tier: SimdTier,
        qd: &[f32],
        cols: &[&[f32]],
        n: usize,
        slack: f64,
        out: &mut Vec<f64>,
    ) {
        let w = qd.len();
        out.clear();
        if w == 0 {
            out.resize(n, 0.0);
            return;
        }
        debug_assert_eq!(cols.len(), w);
        debug_assert!(cols.iter().all(|c| c.len() >= n));
        match tier {
            #[cfg(target_arch = "x86_64")]
            SimdTier::Avx2 => {
                out.resize(n, 0.0);
                // SAFETY: dispatch/pinning is gated on runtime AVX2
                // detection; column lengths are checked above.
                unsafe { simd::x86::lb_f32_planar_avx2(qd, cols, slack, out) }
            }
            #[cfg(target_arch = "x86_64")]
            SimdTier::Sse2 => {
                out.resize(n, 0.0);
                // SAFETY: SSE2 is baseline on x86-64.
                unsafe { simd::x86::lb_f32_planar_sse2(qd, cols, slack, out) }
            }
            _ => {
                out.reserve(n);
                let mut i = 0;
                while i + Self::LANES <= n {
                    let mut m = [0.0f32; Self::LANES];
                    for (q, col) in qd.iter().zip(cols) {
                        for (m, &x) in m.iter_mut().zip(&col[i..i + Self::LANES]) {
                            let d = (q - x).abs();
                            *m = if d > *m { d } else { *m };
                        }
                    }
                    out.extend(m.iter().map(|&m| adjust_f32(m, slack)));
                    i += Self::LANES;
                }
                for r in i..n {
                    out.push(adjust_f32(Self::row_max_f32_planar(qd, cols, r), slack));
                }
            }
        }
    }

    /// The scalar reference: one [`pivot_lower_bound`]-style reduction per
    /// row, no blocking. Exists for the bit-for-bit kernel tests and the
    /// blocked-vs-scalar throughput bench; indexes use the blocked paths.
    ///
    /// [`pivot_lower_bound`]: crate::lemmas::pivot_lower_bound
    pub fn lower_bounds_scalar(qd: &[f64], rows: &[f64], n: usize, out: &mut Vec<f64>) {
        let w = qd.len();
        out.clear();
        if w == 0 {
            out.resize(n, 0.0);
            return;
        }
        debug_assert_eq!(rows.len(), n * w);
        out.extend(rows.chunks_exact(w).map(|row| Self::row_max(qd, row)));
    }

    /// The f32 scalar reference over planar columns (slack-adjusted like
    /// every f32 path).
    pub fn lower_bounds_scalar_f32(
        qd: &[f32],
        cols: &[&[f32]],
        n: usize,
        slack: f64,
        out: &mut Vec<f64>,
    ) {
        let w = qd.len();
        out.clear();
        if w == 0 {
            out.resize(n, 0.0);
            return;
        }
        debug_assert_eq!(cols.len(), w);
        out.extend((0..n).map(|r| adjust_f32(Self::row_max_f32_planar(qd, cols, r), slack)));
    }
}

/// Writer-side state of a [`SharedPivotMatrix`]: the published snapshot
/// plus rows staged since the last publication.
#[derive(Debug, Default)]
struct Shared {
    /// The currently published snapshot. Slices hold clones of this `Arc`.
    snap: Arc<PivotMatrix>,
    /// Rows staged since the last publication, row-major.
    staged: Vec<f64>,
    staged_rows: usize,
}

/// A [`PivotMatrix`] shared between the engine, the router, and every
/// shard's pivot table, with **snapshot publication** instead of a
/// read-write lock: readers hold a plain [`Arc<PivotMatrix>`] (cloned at
/// adoption/refresh time, on the write path), so a query scan performs no
/// lock acquisition and no atomic read-modify-write — see the module docs
/// for the publication rule. The internal mutex serializes *writers* only
/// (`stage_row` / `publish` / `replace`), which all sit behind `&mut`
/// engine or index borrows anyway.
///
/// Cloning shares the same matrix (the handle is an `Arc`). Rows are
/// append-only: removal tombstones live in the indexes' slot maps, so a row
/// id handed out by `stage_row`/`push_row` is valid until an engine-level
/// compaction installs a renumbered snapshot via [`replace`](Self::replace).
#[derive(Clone, Debug, Default)]
pub struct SharedPivotMatrix(Arc<Mutex<Shared>>);

impl SharedPivotMatrix {
    /// Wraps an already-computed matrix for sharing.
    pub fn new(matrix: PivotMatrix) -> Self {
        SharedPivotMatrix(Arc::new(Mutex::new(Shared {
            snap: Arc::new(matrix),
            staged: Vec::new(),
            staged_rows: 0,
        })))
    }

    /// The currently published snapshot (staged rows not yet included).
    pub fn snapshot(&self) -> Arc<PivotMatrix> {
        self.0.lock().snap.clone()
    }

    /// An owned deep copy of the published snapshot (tests / diagnostics).
    pub fn snapshot_owned(&self) -> PivotMatrix {
        (*self.snapshot()).clone()
    }

    /// Total rows: published plus staged.
    pub fn rows(&self) -> usize {
        let g = self.0.lock();
        g.snap.rows() + g.staged_rows
    }

    /// Number of pivots `l` (the row stride).
    pub fn width(&self) -> usize {
        self.0.lock().snap.width()
    }

    /// Whether rows have been staged but not yet published.
    pub fn has_staged(&self) -> bool {
        self.0.lock().staged_rows > 0
    }

    /// Stages one row without publishing, returning its (future) stable row
    /// id. The row becomes readable only after [`publish`](Self::publish);
    /// the engine stages a whole `apply` batch and publishes once.
    pub fn stage_row(&self, row: &[f64]) -> usize {
        let mut g = self.0.lock();
        assert_eq!(
            row.len(),
            g.snap.width(),
            "row length must equal pivot count"
        );
        g.staged.extend_from_slice(row);
        g.staged_rows += 1;
        g.snap.rows() + g.staged_rows - 1
    }

    /// Stages one row and publishes immediately — the standalone-index
    /// insert path (see [`MatrixSlice::push_adopt`], which also makes the
    /// publication in-place by releasing its own snapshot first).
    pub fn push_row(&self, row: &[f64]) -> usize {
        let id = self.stage_row(row);
        self.publish();
        id
    }

    /// Publishes a new snapshot containing every staged row. When no other
    /// snapshot holders remain (a sole-owner standalone index), the rows
    /// are appended in place — amortized `O(l)` per row; otherwise one copy
    /// of the matrix is made, amortized across the whole staged batch.
    pub fn publish(&self) {
        let mut g = self.0.lock();
        if g.staged_rows == 0 {
            return;
        }
        let Shared {
            snap,
            staged,
            staged_rows,
        } = &mut *g;
        let m = Arc::make_mut(snap);
        m.append_flat(staged, *staged_rows);
        *staged_rows = 0;
    }

    /// Number of rows staged but not yet published.
    pub fn staged_rows(&self) -> usize {
        self.0.lock().staged_rows
    }

    /// Discards every staged-but-unpublished row without publishing — the
    /// abort path of the engine's crash-safe `apply` transaction. The
    /// published snapshot is untouched, and the next `stage_row` hands out
    /// the same id the first discarded row had, so an aborted batch can be
    /// re-staged verbatim.
    pub fn discard_staged(&self) {
        let mut g = self.0.lock();
        g.staged.clear();
        g.staged_rows = 0;
    }

    /// Installs `matrix` as the new published snapshot, discarding the old
    /// rows — the engine-level compaction path (the caller has already
    /// remapped every row id). Panics if rows are staged but unpublished.
    pub fn replace(&self, matrix: PivotMatrix) {
        let mut g = self.0.lock();
        assert_eq!(g.staged_rows, 0, "publish staged rows before replacing");
        g.snap = Arc::new(matrix);
    }
}

/// One shard's adopted view of a [`SharedPivotMatrix`]: local row `i` reads
/// shared row `index[i]` of the slice's cached snapshot.
///
/// The indirection makes adoption free — a partition is `O(|partition|)`
/// row *ids*, and a row pushed by the engine's mutation path is adopted by
/// appending its id ([`adopt`](Self::adopt)) — while the cached
/// [`Arc<PivotMatrix>`] snapshot makes reads free: [`row`](Self::row) and
/// [`lower_bounds_into`](Self::lower_bounds_into) touch no lock and no
/// atomic, per the module-level publication rule. The snapshot is
/// re-fetched only on the `&mut` write paths ([`refresh`](Self::refresh),
/// called by the engine after it publishes staged rows, and by
/// [`adopt`]/[`reindex`](Self::reindex) themselves when the adopted row is
/// already published).
///
/// A standalone index (no engine) wraps its own freshly computed matrix via
/// [`from_owned`](Self::from_owned), becoming the sole owner of a shared
/// handle with an identity indirection; the code paths are the same.
#[derive(Clone, Debug)]
pub struct MatrixSlice {
    shared: SharedPivotMatrix,
    /// Cached published snapshot; always covers every row in `index` by
    /// the publication rule (the engine refreshes after publishing).
    snap: Arc<PivotMatrix>,
    /// Local row id → shared row id.
    index: Vec<u32>,
    /// Whether `index` is one consecutive run (`index[i] = index[0] + i`),
    /// which lets the scan kernel run over contiguous storage with no
    /// gather. True for standalone identity slices and single-shard
    /// engines; maintained incrementally on adopt/reindex.
    consecutive: bool,
    /// Under [`ColumnMode::F32`]: this slice's rows as **planar**
    /// (column-major) f32 columns in *local* order — `cols32[j][i]` is
    /// `row(i)[j] as f32` — so the f32 kernel streams contiguous loads no
    /// matter how scattered `index` is. Empty under [`ColumnMode::F64`].
    /// Shared rows are append-only and immutable, so materialized entries
    /// never go stale; growth is tracked by `cols32_rows`.
    cols32: Vec<Vec<f32>>,
    /// How many leading local rows `cols32` has materialized. Lags
    /// `index.len()` only between adopting a still-staged row and the
    /// publication that makes it readable (no queries can run in between —
    /// the engine holds `&mut` for the whole mutation batch).
    cols32_rows: usize,
}

fn is_consecutive(index: &[u32]) -> bool {
    index.windows(2).all(|w| w[1] == w[0] + 1)
}

impl MatrixSlice {
    /// Adopts the given shared rows, in `index` order (local row `i` is
    /// shared row `index[i]`). Every row must already be published.
    pub fn new(shared: SharedPivotMatrix, index: Vec<u32>) -> Self {
        let snap = shared.snapshot();
        debug_assert!(
            index.iter().all(|&r| (r as usize) < snap.rows()),
            "every adopted row must exist in the shared matrix"
        );
        let consecutive = is_consecutive(&index);
        let mut slice = MatrixSlice {
            shared,
            snap,
            index,
            consecutive,
            cols32: Vec::new(),
            cols32_rows: 0,
        };
        slice.rebuild_cols32();
        slice
    }

    /// Wraps an owned matrix as its own sole-owner slice (identity
    /// indirection) — the standalone-index construction path.
    pub fn from_owned(matrix: PivotMatrix) -> Self {
        let index = (0..matrix.rows() as u32).collect();
        MatrixSlice::new(SharedPivotMatrix::new(matrix), index)
    }

    /// The shared matrix this slice reads.
    pub fn shared(&self) -> &SharedPivotMatrix {
        &self.shared
    }

    /// The cached published snapshot this slice resolves rows through.
    pub fn snapshot(&self) -> &Arc<PivotMatrix> {
        &self.snap
    }

    /// Number of local rows (including rows of tombstoned slots).
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the slice has adopted no rows.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Number of pivots `l`.
    pub fn width(&self) -> usize {
        self.snap.width()
    }

    /// The shared row id behind a local row.
    pub fn shared_row_of(&self, local: usize) -> usize {
        self.index[local] as usize
    }

    /// Local row `local` as a contiguous slice of `l` distances — resolved
    /// through the cached snapshot: no lock, no guard, the serve hot path.
    #[inline]
    pub fn row(&self, local: usize) -> &[f64] {
        self.snap.row(self.index[local] as usize)
    }

    /// Rebuilds the planar f32 columns from scratch (construction and the
    /// compaction reindex). No-op under [`ColumnMode::F64`].
    fn rebuild_cols32(&mut self) {
        self.cols32.clear();
        self.cols32_rows = 0;
        if self.snap.mode() != ColumnMode::F32 {
            return;
        }
        self.cols32 = (0..self.snap.width())
            .map(|_| Vec::with_capacity(self.index.len()))
            .collect();
        self.sync_cols32();
    }

    /// Extends the planar columns with every adopted row the cached
    /// snapshot can already resolve (the watermark catch-up). The rounding
    /// is the same single `as f32` the slack formula accounts for.
    fn sync_cols32(&mut self) {
        if self.snap.mode() != ColumnMode::F32 {
            return;
        }
        while self.cols32_rows < self.index.len() {
            let r = self.index[self.cols32_rows] as usize;
            if r >= self.snap.rows() {
                // Adopted but still staged; the engine publishes and
                // refreshes before any query runs.
                break;
            }
            for (col, &x) in self.cols32.iter_mut().zip(self.snap.row(r)) {
                col.push(x as f32);
            }
            self.cols32_rows += 1;
        }
    }

    /// Lemma 1 lower bounds for **all** local rows at once, through the
    /// blocked [`ScanKernel`] (f64: contiguous fast path when the
    /// indirection is one consecutive run, gather otherwise; f32: always
    /// the planar streaming path over this slice's own columns), into a
    /// reused buffer. Rows of tombstoned slots are included — computing
    /// their bound is cheaper than branching on liveness inside the
    /// kernel; the caller's slot map skips them in the verification pass.
    pub fn lower_bounds_into(&self, qd: &[f64], out: &mut Vec<f64>) {
        debug_assert_eq!(qd.len(), self.width());
        match self.snap.mode() {
            ColumnMode::F64 => {
                if self.consecutive && !self.index.is_empty() {
                    let w = self.snap.width();
                    let start = self.index[0] as usize * w;
                    let rows = &self.snap.as_slice()[start..start + self.index.len() * w];
                    ScanKernel::lower_bounds(qd, rows, self.index.len(), out);
                } else {
                    ScanKernel::lower_bounds_indexed(qd, &self.snap, &self.index, out);
                }
            }
            ColumnMode::F32 => {
                let w = self.snap.width();
                debug_assert_eq!(
                    self.cols32_rows,
                    self.index.len(),
                    "planar columns out of sync with the indirection"
                );
                // Round the query's pivot distances once per scan; the
                // admissibility slack covers this rounding plus the
                // columns' (see `PivotMatrix::f32_slack`).
                let mut qmax = 0.0f64;
                let mut qstack = [0.0f32; 64];
                let qheap: Vec<f32>;
                let qd32: &[f32] = if w <= qstack.len() {
                    for (s, q) in qstack.iter_mut().zip(qd) {
                        *s = *q as f32;
                        let a = q.abs();
                        if a > qmax {
                            qmax = a;
                        }
                    }
                    &qstack[..w]
                } else {
                    qheap = qd
                        .iter()
                        .map(|q| {
                            let a = q.abs();
                            if a > qmax {
                                qmax = a;
                            }
                            *q as f32
                        })
                        .collect();
                    &qheap
                };
                let slack = self.snap.f32_slack(qmax);
                // Column refs on the stack for the common pivot counts.
                let mut cstack: [&[f32]; 64] = [&[]; 64];
                let cheap: Vec<&[f32]>;
                let cols: &[&[f32]] = if w <= cstack.len() {
                    for (s, c) in cstack.iter_mut().zip(&self.cols32) {
                        *s = c.as_slice();
                    }
                    &cstack[..w]
                } else {
                    cheap = self.cols32.iter().map(|c| c.as_slice()).collect();
                    &cheap
                };
                ScanKernel::lower_bounds_f32(qd32, cols, self.index.len(), slack, out);
            }
        }
    }

    /// Re-fetches the published snapshot — the engine calls this (through
    /// `MetricIndex::refresh_rows`) after publishing staged rows — and
    /// catches the planar f32 columns up to any newly readable rows.
    pub fn refresh(&mut self) {
        self.snap = self.shared.snapshot();
        self.sync_cols32();
    }

    /// Drops the cached snapshot (replacing it with an empty placeholder)
    /// so that an imminent publication finds the shared storage sole-owned
    /// and appends **in place** instead of deep-copying the matrix — the
    /// engine releases every shard's slice, publishes, then refreshes
    /// them, all under its `&mut` borrow, so no query can observe the
    /// placeholder. ([`push_adopt`](Self::push_adopt) is the one-slice
    /// standalone form of the same discipline.)
    pub fn release(&mut self) {
        self.snap = Arc::new(PivotMatrix::default());
    }

    /// Adopts one more shared row, returning its local row id. The row must
    /// exist in the shared matrix, published **or staged**: adopting a
    /// still-staged row defers the snapshot refresh to the engine's
    /// publication step (no query can run in between — the engine holds
    /// `&mut` for the whole batch); adopting a published row the cached
    /// snapshot predates refreshes immediately.
    pub fn adopt(&mut self, shared_row: usize) -> usize {
        debug_assert!(shared_row < self.shared.rows(), "adopting a missing row");
        if shared_row >= self.snap.rows() {
            let published = self.shared.snapshot();
            if shared_row < published.rows() {
                self.snap = published;
            }
        }
        self.consecutive = self.consecutive
            && (self.index.is_empty() || shared_row as u32 == self.index[self.index.len() - 1] + 1);
        self.index.push(shared_row as u32);
        self.sync_cols32();
        self.index.len() - 1
    }

    /// Computes, stages, publishes and adopts one row — the standalone
    /// insert path. Releases this slice's own snapshot first so that a
    /// sole-owner publication appends in place (amortized `O(l)`); an
    /// engine-shared matrix falls back to one copy (engines batch through
    /// `stage_row` + `publish` instead).
    pub fn push_adopt(&mut self, row: &[f64]) -> usize {
        self.snap = Arc::new(PivotMatrix::default());
        let id = self.shared.push_row(row);
        self.snap = self.shared.snapshot();
        self.consecutive = self.consecutive
            && (self.index.is_empty() || id as u32 == self.index[self.index.len() - 1] + 1);
        self.index.push(id as u32);
        self.sync_cols32();
        self.index.len() - 1
    }

    /// Replaces the whole indirection and re-fetches the snapshot — the
    /// compaction path, after the engine installed a renumbered matrix via
    /// [`SharedPivotMatrix::replace`].
    pub fn reindex(&mut self, index: Vec<u32>) {
        self.snap = self.shared.snapshot();
        debug_assert!(
            index.iter().all(|&r| (r as usize) < self.snap.rows()),
            "every reindexed row must exist in the compacted matrix"
        );
        self.consecutive = is_consecutive(&index);
        self.index = index;
        self.rebuild_cols32();
    }

    /// This slice's share of the matrix footprint: its rows' distances
    /// (plus its own planar f32 columns under [`ColumnMode::F32`]) plus
    /// the indirection itself.
    pub fn mem_bytes(&self) -> u64 {
        let per_row = match self.snap.mode() {
            ColumnMode::F64 => 8 * self.width() as u64,
            ColumnMode::F32 => 12 * self.width() as u64,
        };
        (per_row + 4) * self.index.len() as u64
    }
}

impl From<PivotMatrix> for MatrixSlice {
    fn from(matrix: PivotMatrix) -> Self {
        MatrixSlice::from_owned(matrix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets;
    use crate::distance::{CountingMetric, L2};
    use crate::lemmas::pivot_lower_bound;

    #[test]
    fn compute_matches_serial_for_all_thread_counts() {
        let pts = datasets::la(500, 3);
        let pivots: Vec<Vec<f32>> = vec![pts[1].clone(), pts[99].clone(), pts[200].clone()];
        let serial = PivotMatrix::compute(&pts, &L2, &pivots, 1);
        assert_eq!(serial.rows(), 500);
        assert_eq!(serial.width(), 3);
        for threads in [0usize, 2, 4, 7, 64] {
            let par = PivotMatrix::compute(&pts, &L2, &pivots, threads);
            assert_eq!(par, serial, "threads={threads}");
        }
        for (i, o) in pts.iter().enumerate().step_by(97) {
            for (j, p) in pivots.iter().enumerate() {
                assert_eq!(serial.row(i)[j], L2.dist(o, p));
            }
        }
    }

    #[test]
    fn compute_counts_exactly_n_times_l() {
        let pts = datasets::la(400, 5);
        let pivots: Vec<Vec<f32>> = vec![pts[0].clone(), pts[7].clone()];
        let metric = CountingMetric::new(L2);
        let _ = PivotMatrix::compute(&pts, &metric, &pivots, 4);
        assert_eq!(metric.count(), 400 * 2);
    }

    #[test]
    fn push_select_roundtrip() {
        let mut m = PivotMatrix::new(2);
        assert!(m.is_empty());
        assert_eq!(m.push_row(&[1.0, 2.0]), 0);
        assert_eq!(m.push_row(&[3.0, 4.0]), 1);
        assert_eq!(m.push_row(&[5.0, 6.0]), 2);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        let s = m.select(&[2, 0]);
        assert_eq!(s.rows(), 2);
        assert_eq!(s.row(0), &[5.0, 6.0]);
        assert_eq!(s.row(1), &[1.0, 2.0]);
        assert_eq!(m.as_slice().len(), 6);
        assert_eq!(m.mem_bytes(), 48);
        let rows: Vec<_> = m.iter_rows().collect();
        assert_eq!(rows[2], (2, [5.0, 6.0].as_slice()));
    }

    #[test]
    fn from_rows_matches_push() {
        let m = PivotMatrix::from_rows(2, [[1.0, 2.0], [3.0, 4.0]]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.row(0), &[1.0, 2.0]);
    }

    #[test]
    fn zero_width_matrix_counts_rows() {
        let mut m = PivotMatrix::new(0);
        m.push_row(&[]);
        m.push_row(&[]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.row(1), &[] as &[f64]);
        let pts = datasets::la(10, 1);
        let c = PivotMatrix::compute(&pts, &L2, &[], 4);
        assert_eq!(c.rows(), 10);
        assert_eq!(c.width(), 0);
    }

    #[test]
    #[should_panic]
    fn push_row_rejects_wrong_width() {
        let mut m = PivotMatrix::new(2);
        m.push_row(&[1.0]);
    }

    // -----------------------------------------------------------------
    // ScanKernel: bit-for-bit equality with the scalar lower bound.
    // -----------------------------------------------------------------

    #[test]
    fn blocked_kernel_equals_scalar_bit_for_bit() {
        // Sizes straddling the block width, including remainders; widths
        // including degenerate 0 and 1.
        for w in [0usize, 1, 3, 5, 21] {
            for n in [0usize, 1, 3, 4, 5, 63, 64, 65, 257] {
                // Deterministic pseudo-data with negative and repeated
                // values (no RNG needed).
                let rows: Vec<f64> = (0..n * w)
                    .map(|i| ((i * 37 % 101) as f64 - 50.0) * 0.75)
                    .collect();
                let qd: Vec<f64> = (0..w).map(|j| (j * 13 % 17) as f64 - 8.0).collect();
                let mut blocked = Vec::new();
                let mut scalar = Vec::new();
                ScanKernel::lower_bounds(&qd, &rows, n, &mut blocked);
                ScanKernel::lower_bounds_scalar(&qd, &rows, n, &mut scalar);
                assert_eq!(blocked.len(), n);
                for i in 0..n {
                    assert_eq!(
                        blocked[i].to_bits(),
                        scalar[i].to_bits(),
                        "w={w} n={n} row {i}: blocked != scalar"
                    );
                    if w > 0 {
                        let want = pivot_lower_bound(&qd, &rows[i * w..(i + 1) * w]);
                        assert_eq!(blocked[i].to_bits(), want.to_bits(), "vs lemmas");
                    }
                }
                // The gather variant agrees too, under a permutation.
                if w > 0 {
                    let m = PivotMatrix::from_rows(w, rows.chunks(w.max(1)));
                    let index: Vec<u32> = (0..n as u32).rev().collect();
                    let mut gathered = Vec::new();
                    ScanKernel::lower_bounds_indexed(&qd, &m, &index, &mut gathered);
                    for (i, &id) in index.iter().enumerate() {
                        assert_eq!(gathered[i].to_bits(), scalar[id as usize].to_bits());
                    }
                }
            }
        }
    }

    #[test]
    fn every_simd_tier_matches_the_portable_reference_bit_for_bit() {
        // f64: all tiers vs the scalar reference, contiguous and gather,
        // across widths and block remainders.
        for tier in simd::available_tiers() {
            for w in [1usize, 3, 5, 8, 21] {
                for n in [1usize, 2, 3, 7, 8, 9, 63, 64, 65, 130] {
                    let rows: Vec<f64> = (0..n * w)
                        .map(|i| ((i * 37 % 101) as f64 - 50.0) * 0.75)
                        .collect();
                    let qd: Vec<f64> = (0..w).map(|j| (j * 13 % 17) as f64 - 8.0).collect();
                    let mut want = Vec::new();
                    ScanKernel::lower_bounds_scalar(&qd, &rows, n, &mut want);
                    let mut got = Vec::new();
                    ScanKernel::lower_bounds_with_tier(tier, &qd, &rows, n, &mut got);
                    assert_eq!(got.len(), n);
                    for i in 0..n {
                        assert_eq!(
                            got[i].to_bits(),
                            want[i].to_bits(),
                            "{tier:?} w={w} n={n} row {i}"
                        );
                    }
                    let m = PivotMatrix::from_rows(w, rows.chunks(w));
                    let index: Vec<u32> = (0..n as u32).rev().collect();
                    let mut gathered = Vec::new();
                    ScanKernel::lower_bounds_indexed_with_tier(
                        tier,
                        &qd,
                        &m,
                        &index,
                        &mut gathered,
                    );
                    for (i, &id) in index.iter().enumerate() {
                        assert_eq!(
                            gathered[i].to_bits(),
                            want[id as usize].to_bits(),
                            "{tier:?} gather w={w} n={n} row {i}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn f32_tiers_agree_and_stay_admissible() {
        for tier in simd::available_tiers() {
            for w in [1usize, 4, 5, 9] {
                for n in [1usize, 5, 8, 9, 16, 17, 64, 131] {
                    let rows64: Vec<f64> = (0..n * w)
                        .map(|i| ((i * 53 % 211) as f64 - 100.0) * 1.375)
                        .collect();
                    // Planar columns, rounded the same way slices round.
                    let cols_own: Vec<Vec<f32>> = (0..w)
                        .map(|j| (0..n).map(|i| rows64[i * w + j] as f32).collect())
                        .collect();
                    let cols: Vec<&[f32]> = cols_own.iter().map(|c| c.as_slice()).collect();
                    let qd64: Vec<f64> = (0..w)
                        .map(|j| ((j * 29 % 31) as f64 - 15.0) * 1.1)
                        .collect();
                    let qd32: Vec<f32> = qd64.iter().map(|&x| x as f32).collect();
                    let max_abs = rows64.iter().fold(0.0f64, |m, x| m.max(x.abs()));
                    let qmax = qd64.iter().fold(0.0f64, |m, x| m.max(x.abs()));
                    let slack = F32_SLACK_FACTOR * (f32::EPSILON as f64) * (max_abs + qmax);
                    let mut want = Vec::new();
                    ScanKernel::lower_bounds_scalar_f32(&qd32, &cols, n, slack, &mut want);
                    let mut got = Vec::new();
                    ScanKernel::lower_bounds_f32_with_tier(tier, &qd32, &cols, n, slack, &mut got);
                    assert_eq!(got.len(), n);
                    for i in 0..n {
                        assert_eq!(
                            got[i].to_bits(),
                            want[i].to_bits(),
                            "{tier:?} w={w} n={n} row {i}"
                        );
                        // Admissible: never above the true f64 bound.
                        let truth = ScanKernel::row_max(&qd64, &rows64[i * w..(i + 1) * w]);
                        assert!(
                            got[i] <= truth,
                            "{tier:?} w={w} n={n} row {i}: f32 bound {} > true {truth}",
                            got[i]
                        );
                        assert!(got[i] >= 0.0);
                    }
                }
            }
        }
    }

    #[test]
    fn f32_max_abs_tracks_every_mutation_path() {
        let m = PivotMatrix::from_rows(2, [[1.0, -8.0], [2.5, 3.0]]).with_mode(ColumnMode::F32);
        assert_eq!(m.mode(), ColumnMode::F32);
        assert_eq!(m.max_abs(), 8.0);
        assert_eq!(m.mem_bytes(), 4 * 8);

        // push_row extends the max.
        let mut m = m;
        m.push_row(&[-9.5, 0.25]);
        assert_eq!(m.max_abs(), 9.5);

        // select inherits the mode and recomputes the (tighter) max.
        let s = m.select(&[0, 1]);
        assert_eq!(s.mode(), ColumnMode::F32);
        assert_eq!(s.max_abs(), 8.0);

        // Staged publication through the shared handle tracks too.
        let shared = SharedPivotMatrix::new(m.clone());
        shared.stage_row(&[100.0, -1.0]);
        shared.publish();
        let snap = shared.snapshot();
        assert_eq!(snap.max_abs(), 100.0);

        // Dropping back to F64 resets the (unused) max.
        let back = (*snap).clone().with_mode(ColumnMode::F64);
        assert_eq!(back.max_abs(), 0.0);
        assert_eq!(back.mem_bytes(), 8 * 8);
    }

    #[test]
    fn f32_planar_columns_track_slice_mutations() {
        // A scattered slice under F32 scans its own planar columns; bounds
        // must track adopt (published and staged), push_adopt, and the
        // compaction reindex. Equality oracle: a fresh slice with the same
        // indirection (rebuilds its columns from scratch).
        let m = PivotMatrix::from_rows(2, [[0.0, 1.0], [10.0, -3.0], [4.0, 4.0], [-2.0, 7.0]])
            .with_mode(ColumnMode::F32);
        let shared = SharedPivotMatrix::new(m);
        let mut s = MatrixSlice::new(shared.clone(), vec![2, 0]);
        let qd = [3.0f64, -1.0];
        let check = |s: &MatrixSlice| {
            let fresh = MatrixSlice::new(s.shared().clone(), s.index.clone());
            let (mut got, mut want) = (Vec::new(), Vec::new());
            s.lower_bounds_into(&qd, &mut got);
            fresh.lower_bounds_into(&qd, &mut want);
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g.to_bits(), w.to_bits());
            }
        };
        check(&s);

        // Adopt an already-published row.
        s.adopt(3);
        check(&s);

        // Adopt a staged row: columns lag until publish + refresh.
        let staged = shared.stage_row(&[5.0, 5.0]);
        s.adopt(staged);
        assert_eq!(s.cols32_rows, 3, "staged row not yet materialized");
        shared.publish();
        s.refresh();
        assert_eq!(s.cols32_rows, 4);
        check(&s);

        // push_adopt (stage + publish + adopt in one step).
        s.push_adopt(&[-6.0, 2.0]);
        check(&s);

        // Compaction: renumbered matrix, wholesale rebuild.
        let dense = shared.snapshot().select(&[0, 2, 4]);
        shared.replace(dense);
        s.reindex(vec![2, 1, 0]);
        check(&s);
    }

    #[test]
    fn f32_slice_bounds_are_admissible_on_real_data() {
        let pts = datasets::la(500, 7);
        let pivots: Vec<Vec<f32>> = vec![pts[3].clone(), pts[90].clone(), pts[222].clone()];
        let m64 = PivotMatrix::compute(&pts, &L2, &pivots, 1);
        let m32 = m64.clone().with_mode(ColumnMode::F32);
        let qd: Vec<f64> = pivots.iter().map(|p| L2.dist(&pts[42], p)).collect();
        let ident = MatrixSlice::from_owned(m32.clone());
        let mut lbs = Vec::new();
        ident.lower_bounds_into(&qd, &mut lbs);
        assert_eq!(lbs.len(), 500);
        for (i, lb) in lbs.iter().enumerate() {
            let truth = pivot_lower_bound(&qd, m64.row(i));
            assert!(*lb <= truth, "row {i}: f32 bound {lb} > true {truth}");
            assert!(*lb >= 0.0);
            // And not uselessly loose: within slack of the truth.
            let slk = m32.f32_slack(qd.iter().fold(0.0f64, |a, q| a.max(q.abs())));
            assert!(truth - *lb <= 2.0 * slk + truth * 1e-6, "row {i} too loose");
        }
        // Gather path agrees with the contiguous path per row.
        let shared = SharedPivotMatrix::new(m32);
        let index: Vec<u32> = (0..500u32).map(|i| (i * 7) % 500).collect();
        let slice = MatrixSlice::new(shared, index.clone());
        let mut glbs = Vec::new();
        slice.lower_bounds_into(&qd, &mut glbs);
        for (i, &id) in index.iter().enumerate() {
            assert_eq!(glbs[i].to_bits(), lbs[id as usize].to_bits());
        }
    }

    #[test]
    fn slice_lower_bounds_match_per_row_scan() {
        let pts = datasets::la(300, 11);
        let pivots: Vec<Vec<f32>> = vec![pts[0].clone(), pts[10].clone(), pts[20].clone()];
        let matrix = PivotMatrix::compute(&pts, &L2, &pivots, 1);
        let qd: Vec<f64> = pivots.iter().map(|p| L2.dist(&pts[42], p)).collect();
        // Identity (consecutive fast path).
        let ident = MatrixSlice::from_owned(matrix.clone());
        let mut lbs = Vec::new();
        ident.lower_bounds_into(&qd, &mut lbs);
        for (i, lb) in lbs.iter().enumerate() {
            assert_eq!(
                lb.to_bits(),
                pivot_lower_bound(&qd, matrix.row(i)).to_bits()
            );
        }
        // Permuted (gather path).
        let shared = SharedPivotMatrix::new(matrix.clone());
        let index: Vec<u32> = (0..300u32).map(|i| (i * 7) % 300).collect();
        let slice = MatrixSlice::new(shared, index.clone());
        slice.lower_bounds_into(&qd, &mut lbs);
        for (i, &id) in index.iter().enumerate() {
            assert_eq!(
                lbs[i].to_bits(),
                pivot_lower_bound(&qd, matrix.row(id as usize)).to_bits()
            );
        }
    }

    // -----------------------------------------------------------------
    // Snapshot publication.
    // -----------------------------------------------------------------

    #[test]
    fn shared_matrix_grows_under_adopted_slices() {
        let shared = SharedPivotMatrix::new(PivotMatrix::from_rows(
            2,
            [[0.0, 1.0], [2.0, 3.0], [4.0, 5.0], [6.0, 7.0]],
        ));
        // Two "shards" adopt disjoint permuted views of the same matrix.
        let mut a = MatrixSlice::new(shared.clone(), vec![3, 0]);
        let b = MatrixSlice::new(shared.clone(), vec![1, 2]);
        assert_eq!(a.len(), 2);
        assert_eq!(a.width(), 2);
        assert_eq!(a.shared_row_of(0), 3);
        assert_eq!(a.row(0), &[6.0, 7.0]);
        assert_eq!(a.row(1), &[0.0, 1.0]);
        // The mutation path pushes one row (stage + publish) and the target
        // slice adopts it; the adopt refreshes the cached snapshot because
        // the row is already published.
        let row_id = shared.push_row(&[8.0, 9.0]);
        assert_eq!(row_id, 4);
        let local = a.adopt(row_id);
        assert_eq!(local, 2);
        assert_eq!(a.row(2), &[8.0, 9.0]);
        // The sibling slice still reads its own (older but sufficient)
        // snapshot; a refresh brings it to the latest.
        assert_eq!(b.len(), 2);
        assert_eq!(shared.rows(), 5);
        assert_eq!(b.row(1), &[4.0, 5.0]);
        let mut b = b;
        b.refresh();
        assert_eq!(b.snapshot().rows(), 5);
    }

    #[test]
    fn staged_rows_publish_in_one_step() {
        let shared = SharedPivotMatrix::new(PivotMatrix::from_rows(1, [[1.0], [2.0]]));
        let mut s = MatrixSlice::new(shared.clone(), vec![0, 1]);
        assert!(!shared.has_staged());
        let r2 = shared.stage_row(&[3.0]);
        let r3 = shared.stage_row(&[4.0]);
        assert_eq!((r2, r3), (2, 3));
        assert_eq!(shared.rows(), 4, "total counts staged rows");
        assert_eq!(shared.snapshot().rows(), 2, "snapshot does not");
        assert!(shared.has_staged());
        // Adopting a staged row defers the refresh (no queries can run
        // while the engine holds &mut); publish + refresh completes it.
        let local = s.adopt(r2);
        assert_eq!(local, 2);
        shared.publish();
        assert!(!shared.has_staged());
        s.refresh();
        assert_eq!(s.row(2), &[3.0]);
        assert_eq!(s.snapshot().rows(), 4);
    }

    #[test]
    fn sole_owner_publish_appends_in_place() {
        // A standalone slice's push_adopt releases its snapshot so the
        // publish mutates the sole-owner Arc without copying; observable
        // effect: the data pointer is stable across small pushes once
        // capacity exists.
        let mut s = MatrixSlice::from_owned(PivotMatrix::with_capacity(1, 16));
        for i in 0..10 {
            let local = s.push_adopt(&[i as f64]);
            assert_eq!(local, i);
            assert_eq!(s.row(i), &[i as f64]);
        }
        assert_eq!(s.len(), 10);
        assert_eq!(s.shared().rows(), 10);
    }

    #[test]
    fn replace_installs_compacted_snapshot() {
        let shared =
            SharedPivotMatrix::new(PivotMatrix::from_rows(1, [[0.0], [1.0], [2.0], [3.0]]));
        let mut s = MatrixSlice::new(shared.clone(), vec![0, 1, 2, 3]);
        // "Compact away" rows 1 and 3: survivors 0, 2 renumber to 0, 1.
        let dense = shared.snapshot().select(&[0, 2]);
        shared.replace(dense);
        s.reindex(vec![0, 1]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.row(0), &[0.0]);
        assert_eq!(s.row(1), &[2.0]);
        assert_eq!(shared.rows(), 2);
    }

    #[test]
    fn from_owned_is_identity_indirection() {
        let m = PivotMatrix::from_rows(1, [[1.0], [2.0], [3.0]]);
        let s: MatrixSlice = m.into();
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        for i in 0..3 {
            assert_eq!(s.row(i), &[(i + 1) as f64]);
        }
        assert_eq!(s.mem_bytes(), 3 * (8 + 4));
    }
}
