//! A slotted in-memory object table with tombstoned removal.
//!
//! Every in-memory index of the paper keeps "the real data" in a separate
//! object table (§4.1: "we only store the identifiers in the tree
//! structures, and store the objects in a separate table"). Ids are slot
//! positions and stay stable until removal.

use crate::stats::ObjId;

/// Slotted object storage with stable ids.
#[derive(Clone, Debug, Default)]
pub struct ObjTable<O> {
    slots: Vec<Option<O>>,
    live: usize,
}

impl<O> ObjTable<O> {
    /// Builds a table from initial objects; ids are `0..n`.
    pub fn new(objects: Vec<O>) -> Self {
        ObjTable {
            live: objects.len(),
            slots: objects.into_iter().map(Some).collect(),
        }
    }

    /// An empty table.
    pub fn empty() -> Self {
        ObjTable {
            slots: Vec::new(),
            live: 0,
        }
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no objects are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Number of slots. This **includes tombstones**: removal never shrinks
    /// the slot vector (ids are slot positions and must stay stable), so
    /// `slots() >= len()` always, with equality only while nothing has been
    /// removed. Use [`len`](Self::len) for the live count.
    pub fn slots(&self) -> usize {
        self.slots.len()
    }

    /// The object at `id`, if live.
    pub fn get(&self, id: ObjId) -> Option<&O> {
        self.slots.get(id as usize).and_then(|s| s.as_ref())
    }

    /// Appends an object, returning its id.
    pub fn push(&mut self, o: O) -> ObjId {
        self.slots.push(Some(o));
        self.live += 1;
        (self.slots.len() - 1) as ObjId
    }

    /// Tombstones `id`; returns the object if it was live.
    pub fn remove(&mut self, id: ObjId) -> Option<O> {
        let slot = self.slots.get_mut(id as usize)?;
        let o = slot.take()?;
        self.live -= 1;
        Some(o)
    }

    /// Iterates `(id, object)` over live slots in id order.
    pub fn iter(&self) -> impl Iterator<Item = (ObjId, &O)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|o| (i as ObjId, o)))
    }

    /// Drops every tombstoned slot, re-adding the live objects in `keep`
    /// order (old slot ids) so that old slot `keep[i]` becomes new slot
    /// `i` — the engine-level compaction path, where `keep` is the shard's
    /// surviving members in ascending global-id order (exactly the slot
    /// order a from-scratch rebuild over the survivors would produce).
    /// Panics if any `keep` entry is not live or a live slot is omitted.
    pub fn compact(&mut self, keep: &[ObjId]) {
        assert_eq!(
            keep.len(),
            self.live,
            "compaction must keep every live slot"
        );
        let mut old = std::mem::take(&mut self.slots);
        self.slots = keep
            .iter()
            .map(|&id| {
                Some(
                    old[id as usize]
                        .take()
                        .expect("compaction keeps only live slots"),
                )
            })
            .collect();
    }

    /// Linear lookup of an id, mimicking indexes whose deletion requires a
    /// sequential scan (paper §6.3 on LAESA/EPT*/CPT). Returns the number of
    /// slots visited and whether the id is live.
    pub fn scan_for(&self, id: ObjId) -> (usize, bool) {
        for (visited, (i, s)) in self.slots.iter().enumerate().enumerate() {
            if i as ObjId == id {
                return (visited + 1, s.is_some());
            }
        }
        (self.slots.len(), false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_remove() {
        let mut t = ObjTable::new(vec!["a", "b"]);
        assert_eq!(t.len(), 2);
        let id = t.push("c");
        assert_eq!(id, 2);
        assert_eq!(t.get(1), Some(&"b"));
        assert_eq!(t.remove(1), Some("b"));
        assert_eq!(t.remove(1), None);
        assert_eq!(t.get(1), None);
        assert_eq!(t.len(), 2);
        let ids: Vec<_> = t.iter().map(|(i, _)| i).collect();
        assert_eq!(ids, vec![0, 2]);
    }

    #[test]
    fn compact_drops_tombstones_in_keep_order() {
        let mut t = ObjTable::new(vec!["a", "b", "c", "d"]);
        t.remove(1);
        assert_eq!(t.slots(), 4, "slots() includes the tombstone");
        assert_eq!(t.len(), 3);
        // Keep order need not be slot order (post-recluster shards sort by
        // global id).
        t.compact(&[0, 3, 2]);
        assert_eq!(t.slots(), 3);
        assert_eq!(t.len(), 3);
        assert_eq!(t.get(0), Some(&"a"));
        assert_eq!(t.get(1), Some(&"d"));
        assert_eq!(t.get(2), Some(&"c"));
    }

    #[test]
    #[should_panic]
    fn compact_rejects_dead_slots() {
        let mut t = ObjTable::new(vec!["a", "b"]);
        t.remove(0);
        t.compact(&[0]);
    }

    #[test]
    fn scan_for_costs() {
        let t = ObjTable::new(vec![0, 1, 2, 3]);
        assert_eq!(t.scan_for(2), (3, true));
        assert_eq!(t.scan_for(99), (4, false));
    }
}
