//! A slotted in-memory object table with tombstoned removal.
//!
//! Every in-memory index of the paper keeps "the real data" in a separate
//! object table (§4.1: "we only store the identifiers in the tree
//! structures, and store the objects in a separate table"). Ids are slot
//! positions and stay stable until removal.

use crate::matrix::MatrixSliceReader;
use crate::stats::ObjId;

/// Slotted object storage with stable ids.
#[derive(Clone, Debug, Default)]
pub struct ObjTable<O> {
    slots: Vec<Option<O>>,
    live: usize,
}

impl<O> ObjTable<O> {
    /// Builds a table from initial objects; ids are `0..n`.
    pub fn new(objects: Vec<O>) -> Self {
        ObjTable {
            live: objects.len(),
            slots: objects.into_iter().map(Some).collect(),
        }
    }

    /// An empty table.
    pub fn empty() -> Self {
        ObjTable {
            slots: Vec::new(),
            live: 0,
        }
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no objects are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Number of slots. This **includes tombstones**: removal never shrinks
    /// the slot vector (ids are slot positions and must stay stable), so
    /// `slots() >= len()` always, with equality only while nothing has been
    /// removed. Use [`len`](Self::len) for the live count.
    pub fn slots(&self) -> usize {
        self.slots.len()
    }

    /// The object at `id`, if live.
    pub fn get(&self, id: ObjId) -> Option<&O> {
        self.slots.get(id as usize).and_then(|s| s.as_ref())
    }

    /// Appends an object, returning its id.
    pub fn push(&mut self, o: O) -> ObjId {
        self.slots.push(Some(o));
        self.live += 1;
        (self.slots.len() - 1) as ObjId
    }

    /// Tombstones `id`; returns the object if it was live.
    pub fn remove(&mut self, id: ObjId) -> Option<O> {
        let slot = self.slots.get_mut(id as usize)?;
        let o = slot.take()?;
        self.live -= 1;
        Some(o)
    }

    /// Iterates `(id, object)` over live slots in id order.
    pub fn iter(&self) -> impl Iterator<Item = (ObjId, &O)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|o| (i as ObjId, o)))
    }

    /// Iterates `(id, object, matrix row)` over live slots in id order,
    /// pairing each live object with its row of an adopted
    /// [`MatrixSlice`](crate::matrix::MatrixSlice) whose local row ids are
    /// this table's slot ids. This is the flat-matrix scan loop of the
    /// pivot tables: tombstoned slots are skipped (their matrix rows stay
    /// in place, unread), so no `Option` unwrap ever runs on the scan path,
    /// and the caller's [`MatrixSliceReader`] holds the shared matrix's
    /// read lock exactly once per scan.
    ///
    /// Panics (in the iterator) if the slice has fewer rows than this
    /// table has slots.
    pub fn iter_live_rows<'a>(
        &'a self,
        rows: &'a MatrixSliceReader<'a>,
    ) -> impl Iterator<Item = (ObjId, &'a O, &'a [f64])> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(move |(i, s)| s.as_ref().map(|o| (i as ObjId, o, rows.row(i))))
    }

    /// Linear lookup of an id, mimicking indexes whose deletion requires a
    /// sequential scan (paper §6.3 on LAESA/EPT*/CPT). Returns the number of
    /// slots visited and whether the id is live.
    pub fn scan_for(&self, id: ObjId) -> (usize, bool) {
        for (visited, (i, s)) in self.slots.iter().enumerate().enumerate() {
            if i as ObjId == id {
                return (visited + 1, s.is_some());
            }
        }
        (self.slots.len(), false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_remove() {
        let mut t = ObjTable::new(vec!["a", "b"]);
        assert_eq!(t.len(), 2);
        let id = t.push("c");
        assert_eq!(id, 2);
        assert_eq!(t.get(1), Some(&"b"));
        assert_eq!(t.remove(1), Some("b"));
        assert_eq!(t.remove(1), None);
        assert_eq!(t.get(1), None);
        assert_eq!(t.len(), 2);
        let ids: Vec<_> = t.iter().map(|(i, _)| i).collect();
        assert_eq!(ids, vec![0, 2]);
    }

    #[test]
    fn live_rows_skip_tombstones() {
        use crate::matrix::{MatrixSlice, PivotMatrix};
        let mut t = ObjTable::new(vec!["a", "b", "c"]);
        let m: MatrixSlice = PivotMatrix::from_rows(2, [[0.0, 1.0], [2.0, 3.0], [4.0, 5.0]]).into();
        t.remove(1);
        assert_eq!(t.slots(), 3, "slots() includes the tombstone");
        assert_eq!(t.len(), 2);
        let r = m.reader();
        let got: Vec<_> = t.iter_live_rows(&r).collect();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0], (0, &"a", [0.0, 1.0].as_slice()));
        assert_eq!(got[1], (2, &"c", [4.0, 5.0].as_slice()));
    }

    #[test]
    fn scan_for_costs() {
        let t = ObjTable::new(vec![0, 1, 2, 3]);
        assert_eq!(t.scan_for(2), (3, true));
        assert_eq!(t.scan_for(99), (4, false));
    }
}
