//! Synthetic dataset generators matching the paper's Table 2.
//!
//! The paper evaluates on LA (2-d locations, L2), Words (strings, edit
//! distance), Color (282-d MPEG-7 features, L1) and Synthetic (20-d integer
//! vectors, L∞). The original files are not redistributable here, so each
//! generator reproduces the published statistics — dimensionality, value
//! domain, distance measure and, most importantly, intrinsic dimensionality
//! `μ² / 2σ²`, which is what drives pivot-filter effectiveness. See
//! DESIGN.md §4 for the substitution rationale.

use crate::distance::Metric;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Dimensionality of the Color dataset (282-d MPEG-7 features).
pub const COLOR_DIM: usize = 282;
/// Dimensionality of the Synthetic dataset.
pub const SYNTHETIC_DIM: usize = 20;
/// Number of free (random) dimensions in Synthetic; the rest are linear
/// combinations of these (paper §6.1).
pub const SYNTHETIC_FREE_DIMS: usize = 5;

/// LA: clustered 2-d locations over `[0, 10000]²`, compared with L2.
///
/// Real urban location data is a mixture of dense clusters (city blocks)
/// plus a sparse background, which is what yields the paper's intrinsic
/// dimensionality of ≈ 5.4 and the skew noted in §6.5.2.
pub fn la(n: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x4c41);
    let n_clusters: usize = 64;
    let centers: Vec<(f64, f64, f64)> = (0..n_clusters)
        .map(|_| {
            (
                rng.random_range(0.0..10000.0),
                rng.random_range(0.0..10000.0),
                rng.random_range(80.0..600.0), // cluster spread
            )
        })
        .collect();
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        if rng.random::<f64>() < 0.15 {
            // Sparse background.
            out.push(vec![
                rng.random_range(0.0..10000.0) as f32,
                rng.random_range(0.0..10000.0) as f32,
            ]);
        } else {
            let (cx, cy, s) = centers[rng.random_range(0..n_clusters)];
            let x = (cx + gauss(&mut rng) * s).clamp(0.0, 10000.0);
            let y = (cy + gauss(&mut rng) * s).clamp(0.0, 10000.0);
            out.push(vec![x as f32, y as f32]);
        }
    }
    out
}

/// Words: pseudo-English words built from consonant-vowel syllables,
/// compared with edit distance. Lengths follow the short-biased distribution
/// of real word lists (maxD in the paper is 34 = longest word).
pub fn words(n: usize, seed: u64) -> Vec<String> {
    const ONSETS: &[&str] = &[
        "b", "c", "d", "f", "g", "h", "j", "k", "l", "m", "n", "p", "r", "s", "t", "v", "w", "z",
        "ch", "sh", "th", "br", "cr", "dr", "st", "tr", "pl", "gr", "",
    ];
    const VOWELS: &[&str] = &["a", "e", "i", "o", "u", "ai", "ea", "ou", "io"];
    const CODAS: &[&str] = &["", "", "n", "r", "s", "t", "l", "m", "ng", "rd", "st", "ck"];
    const SUFFIXES: &[&str] = &[
        "", "s", "ed", "ing", "ion", "ions", "er", "ers", "ly", "ness", "ment", "able", "est",
    ];
    let mut rng = StdRng::seed_from_u64(seed ^ 0x574f);
    fn syllable(rng: &mut StdRng, w: &mut String) {
        w.push_str(ONSETS[rng.random_range(0..ONSETS.len())]);
        w.push_str(VOWELS[rng.random_range(0..VOWELS.len())]);
        w.push_str(CODAS[rng.random_range(0..CODAS.len())]);
    }
    // Morphological stems: real lexicons contain families of near-identical
    // words ("defoliate(s|d)", "defoliation", ...), which is what gives word
    // lists their low intrinsic dimensionality (many small pairwise
    // distances next to large cross-family ones).
    // A small shared syllable pool: real lexicons reuse a limited phoneme
    // inventory, which makes words share substrings and spreads pairwise
    // edit distances from 1 up to the longest word — the wide spread that
    // gives word lists their very low intrinsic dimensionality (Table 2:
    // 1.2 for Moby Words).
    let mut pool: Vec<String> = Vec::with_capacity(48);
    for _ in 0..48 {
        let mut syl = String::new();
        syllable(&mut rng, &mut syl);
        pool.push(syl);
    }
    let mut seen = std::collections::HashSet::with_capacity(n * 2);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        // Heavy-tailed word lengths (many short words, compound-word tail).
        let syllables = 1 + (rng.random::<f64>().powf(6.0) * 11.0) as usize;
        let mut w = String::new();
        for _ in 0..syllables {
            // Zipf-ish pool usage: a few syllables dominate.
            let idx = ((rng.random::<f64>().powi(2)) * pool.len() as f64) as usize;
            w.push_str(&pool[idx.min(pool.len() - 1)]);
        }
        if rng.random::<f64>() < 0.5 {
            w.push_str(SUFFIXES[rng.random_range(0..SUFFIXES.len())]);
        }
        // Letter-level inflection: keeps short words distinct (the pool is
        // small) while only perturbing edit distances by 1–2.
        for _ in 0..rng.random_range(0..3) {
            let c = b'a' + rng.random_range(0..26) as u8;
            w.push(char::from(c));
        }
        w.truncate(34);
        if seen.insert(w.clone()) {
            out.push(w);
        }
    }
    out
}

/// Color: 282-d feature vectors in `[-255, 255]`, compared with L1.
///
/// Generated from a low-rank mixture (16 latent factors) so that, like real
/// MPEG-7 features, the intrinsic dimensionality (≈ 6.5 in the paper) is far
/// below the ambient 282 dimensions.
pub fn color(n: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x434f);
    let rank = 13;
    let n_mix: usize = 8;
    // Mixing matrix: rank x COLOR_DIM.
    let mix: Vec<Vec<f64>> = (0..rank)
        .map(|_| (0..COLOR_DIM).map(|_| gauss(&mut rng) * 24.0).collect())
        .collect();
    // A few mixture-component means in latent space.
    let means: Vec<Vec<f64>> = (0..n_mix)
        .map(|_| (0..rank).map(|_| gauss(&mut rng) * 2.0).collect())
        .collect();
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let mean = &means[rng.random_range(0..n_mix)];
        let latent: Vec<f64> = mean.iter().map(|m| m + gauss(&mut rng)).collect();
        let mut acc = vec![0.0f64; COLOR_DIM];
        for (l, row) in latent.iter().zip(&mix) {
            for (x, m) in acc.iter_mut().zip(row) {
                *x += l * m;
            }
        }
        let v: Vec<f32> = acc
            .into_iter()
            .map(|x| (x + gauss(&mut rng) * 6.0).clamp(-255.0, 255.0) as f32) // per-dim noise
            .collect();
        out.push(v);
    }
    out
}

/// Synthetic: the paper's exact recipe — 20 integer dimensions in
/// `[0, 10000]`, the first five uniform random, the remaining fifteen linear
/// combinations of the first five; compared with (discrete) L∞.
pub fn synthetic(n: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5359);
    // Fixed integer combination weights, shared by the whole dataset.
    let weights: Vec<[f64; SYNTHETIC_FREE_DIMS]> = (0..SYNTHETIC_DIM - SYNTHETIC_FREE_DIMS)
        .map(|_| {
            let mut w = [0.0; SYNTHETIC_FREE_DIMS];
            for x in &mut w {
                *x = rng.random_range(-2..=2) as f64;
            }
            if w.iter().all(|x| *x == 0.0) {
                w[0] = 1.0;
            }
            w
        })
        .collect();
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let mut v = Vec::with_capacity(SYNTHETIC_DIM);
        let free: Vec<f64> = (0..SYNTHETIC_FREE_DIMS)
            .map(|_| rng.random_range(0..=10000) as f64)
            .collect();
        v.extend(free.iter().map(|x| *x as f32));
        for w in &weights {
            let mut x: f64 = free.iter().zip(w).map(|(f, wi)| f * wi).sum();
            // Affine-rescale into the integer domain [0, 10000].
            x = (x / 4.0 + 5000.0).clamp(0.0, 10000.0).round();
            v.push(x as f32);
        }
        out.push(v);
    }
    out
}

/// Statistics of a dataset as reported in the paper's Table 2.
#[derive(Clone, Copy, Debug)]
pub struct DatasetStats {
    /// Number of objects.
    pub cardinality: usize,
    /// Mean of sampled pairwise distances.
    pub mean_dist: f64,
    /// Variance of sampled pairwise distances.
    pub var_dist: f64,
    /// Intrinsic dimensionality `μ² / 2σ²` (§6.1).
    pub intrinsic_dim: f64,
    /// Maximum sampled pairwise distance (lower bound on the true maximum).
    pub max_dist: f64,
}

/// Estimates [`DatasetStats`] from `pairs` random pairs.
pub fn dataset_stats<O, M: Metric<O>>(
    objects: &[O],
    metric: &M,
    pairs: usize,
    seed: u64,
) -> DatasetStats {
    assert!(objects.len() >= 2, "need at least two objects");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5354);
    let mut sum = 0.0;
    let mut sum2 = 0.0;
    let mut max = 0.0f64;
    for _ in 0..pairs {
        let i = rng.random_range(0..objects.len());
        let mut j = rng.random_range(0..objects.len());
        while j == i {
            j = rng.random_range(0..objects.len());
        }
        let d = metric.dist(&objects[i], &objects[j]);
        sum += d;
        sum2 += d * d;
        if d > max {
            max = d;
        }
    }
    let n = pairs as f64;
    let mean = sum / n;
    let var = (sum2 / n - mean * mean).max(0.0);
    DatasetStats {
        cardinality: objects.len(),
        mean_dist: mean,
        var_dist: var,
        intrinsic_dim: if var > 0.0 {
            mean * mean / (2.0 * var)
        } else {
            0.0
        },
        max_dist: max,
    }
}

/// Calibrates a search radius that returns approximately
/// `selectivity · |O|` objects per query, matching the paper's definition of
/// the `r` parameter ("the percentage of objects in the dataset that are
/// result objects", §6.1). Uses the empirical quantile of query-to-object
/// distances over a sample.
pub fn calibrate_radius<O, M: Metric<O>>(
    objects: &[O],
    metric: &M,
    selectivity: f64,
    seed: u64,
) -> f64 {
    assert!((0.0..=1.0).contains(&selectivity));
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5241);
    let n_queries = 24.min(objects.len());
    let n_targets = 400.min(objects.len());
    let mut dists = Vec::with_capacity(n_queries * n_targets);
    for _ in 0..n_queries {
        let q = &objects[rng.random_range(0..objects.len())];
        for _ in 0..n_targets {
            let o = &objects[rng.random_range(0..objects.len())];
            dists.push(metric.dist(q, o));
        }
    }
    dists.sort_by(f64::total_cmp);
    let idx = ((dists.len() as f64 - 1.0) * selectivity).round() as usize;
    dists[idx.min(dists.len() - 1)]
}

/// Standard normal via Box–Muller (avoids a dependency on rand_distr).
fn gauss(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::{EditDistance, LInf, L1, L2};

    #[test]
    fn la_shape() {
        let d = la(500, 7);
        assert_eq!(d.len(), 500);
        assert!(d.iter().all(|v| v.len() == 2));
        assert!(d
            .iter()
            .all(|v| (0.0..=10000.0).contains(&v[0]) && (0.0..=10000.0).contains(&v[1])));
        // Deterministic per seed.
        assert_eq!(la(500, 7), d);
        assert_ne!(la(500, 8), d);
    }

    #[test]
    fn words_shape() {
        let w = words(300, 7);
        assert_eq!(w.len(), 300);
        assert!(w.iter().all(|s| !s.is_empty() && s.len() <= 34));
        // All distinct.
        let set: std::collections::HashSet<_> = w.iter().collect();
        assert_eq!(set.len(), w.len());
    }

    #[test]
    fn color_shape() {
        let c = color(50, 7);
        assert!(c.iter().all(|v| v.len() == COLOR_DIM));
        assert!(c
            .iter()
            .all(|v| v.iter().all(|x| (-255.0..=255.0).contains(x))));
    }

    #[test]
    fn synthetic_is_integral() {
        let s = synthetic(100, 7);
        assert!(s.iter().all(|v| v.len() == SYNTHETIC_DIM));
        assert!(s.iter().all(|v| v
            .iter()
            .all(|x| x.fract() == 0.0 && (0.0..=10000.0).contains(x))));
        // L∞ distances over integral vectors are integral -> discrete domain.
        let d = LInf::discrete().dist(&s[0], &s[1]);
        assert_eq!(d.fract(), 0.0);
    }

    #[test]
    fn intrinsic_dims_in_paper_ballpark() {
        // Table 2: LA 5.4, Words 1.2, Color 6.5, Synthetic 6.6. We accept a
        // generous band — the *ordering* and rough magnitude drive behaviour.
        let la_stats = dataset_stats(&la(2000, 1), &L2, 4000, 1);
        assert!(
            (2.0..=9.0).contains(&la_stats.intrinsic_dim),
            "LA intrinsic dim {:.2}",
            la_stats.intrinsic_dim
        );
        let w = words(1500, 1);
        let w_stats = dataset_stats(&w, &EditDistance, 4000, 1);
        assert!(
            (0.5..=4.0).contains(&w_stats.intrinsic_dim),
            "Words intrinsic dim {:.2}",
            w_stats.intrinsic_dim
        );
        let c_stats = dataset_stats(&color(600, 1), &L1, 3000, 1);
        assert!(
            (3.0..=12.0).contains(&c_stats.intrinsic_dim),
            "Color intrinsic dim {:.2}",
            c_stats.intrinsic_dim
        );
        let s_stats = dataset_stats(&synthetic(1500, 1), &LInf::discrete(), 4000, 1);
        assert!(
            (2.0..=12.0).contains(&s_stats.intrinsic_dim),
            "Synthetic intrinsic dim {:.2}",
            s_stats.intrinsic_dim
        );
    }

    #[test]
    fn radius_calibration_monotone() {
        let d = la(1500, 3);
        let r4 = calibrate_radius(&d, &L2, 0.04, 9);
        let r16 = calibrate_radius(&d, &L2, 0.16, 9);
        let r64 = calibrate_radius(&d, &L2, 0.64, 9);
        assert!(r4 > 0.0);
        assert!(r4 < r16 && r16 < r64, "{r4} {r16} {r64}");
    }
}
