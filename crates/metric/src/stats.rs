//! Cost accounting shared by every index: the paper's three performance
//! metrics are the number of page accesses (PA), the number of distance
//! computations (compdists) and CPU time (§6.1). The first two are counted
//! here; the harness measures the third.

use std::cmp::Ordering;

/// Identifier of an object inside an index. Identifiers are assigned by the
/// index at insertion time and refer to positions in the index's object
/// table; they are stable until the object is removed.
pub type ObjId = u32;

/// A query answer: object id plus its exact distance to the query object.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Neighbor {
    /// Object identifier.
    pub id: ObjId,
    /// Exact distance `d(q, o)`.
    pub dist: f64,
}

impl Neighbor {
    /// Creates a neighbor entry.
    pub fn new(id: ObjId, dist: f64) -> Self {
        Neighbor { id, dist }
    }
}

impl Eq for Neighbor {}

impl PartialOrd for Neighbor {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Neighbor {
    /// Orders by distance, then by id for determinism. Distances produced by
    /// the metrics in this workspace are never NaN.
    fn cmp(&self, other: &Self) -> Ordering {
        self.dist
            .total_cmp(&other.dist)
            .then_with(|| self.id.cmp(&other.id))
    }
}

/// Snapshot of an index's cost counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    /// Distance computations (the paper's `compdists`).
    pub compdists: u64,
    /// Simulated disk page reads.
    pub page_reads: u64,
    /// Simulated disk page writes.
    pub page_writes: u64,
}

impl Counters {
    /// Total page accesses — the paper's `PA` metric counts both reads and
    /// writes.
    pub fn page_accesses(&self) -> u64 {
        self.page_reads + self.page_writes
    }

    /// Component-wise difference (`self` is the later snapshot).
    pub fn since(&self, earlier: &Counters) -> Counters {
        Counters {
            compdists: self.compdists.saturating_sub(earlier.compdists),
            page_reads: self.page_reads.saturating_sub(earlier.page_reads),
            page_writes: self.page_writes.saturating_sub(earlier.page_writes),
        }
    }
}

impl std::ops::Add for Counters {
    type Output = Counters;
    fn add(self, rhs: Counters) -> Counters {
        Counters {
            compdists: self.compdists + rhs.compdists,
            page_reads: self.page_reads + rhs.page_reads,
            page_writes: self.page_writes + rhs.page_writes,
        }
    }
}

/// Storage footprint of an index, split by residence. Table 4 of the paper
/// annotates each size with `(I)` for main memory and `(D)` for disk.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StorageFootprint {
    /// Bytes resident in main memory (tables, tree nodes of in-memory
    /// indexes, the distance table of CPT, ...).
    pub mem_bytes: u64,
    /// Bytes resident on (simulated) disk pages.
    pub disk_bytes: u64,
}

impl StorageFootprint {
    /// In-memory footprint.
    pub fn mem(bytes: u64) -> Self {
        StorageFootprint {
            mem_bytes: bytes,
            disk_bytes: 0,
        }
    }

    /// On-disk footprint.
    pub fn disk(bytes: u64) -> Self {
        StorageFootprint {
            mem_bytes: 0,
            disk_bytes: bytes,
        }
    }

    /// Total bytes.
    pub fn total(&self) -> u64 {
        self.mem_bytes + self.disk_bytes
    }
}

impl std::ops::Add for StorageFootprint {
    type Output = StorageFootprint;
    fn add(self, rhs: StorageFootprint) -> StorageFootprint {
        StorageFootprint {
            mem_bytes: self.mem_bytes + rhs.mem_bytes,
            disk_bytes: self.disk_bytes + rhs.disk_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neighbor_ordering() {
        let a = Neighbor::new(1, 2.0);
        let b = Neighbor::new(2, 1.0);
        let c = Neighbor::new(0, 2.0);
        let mut v = vec![a, b, c];
        v.sort();
        assert_eq!(v, vec![b, c, a]);
    }

    #[test]
    fn counters_math() {
        let before = Counters {
            compdists: 10,
            page_reads: 2,
            page_writes: 1,
        };
        let after = Counters {
            compdists: 25,
            page_reads: 7,
            page_writes: 1,
        };
        let d = after.since(&before);
        assert_eq!(d.compdists, 15);
        assert_eq!(d.page_accesses(), 5);
        let sum = before + after;
        assert_eq!(sum.compdists, 35);
    }

    #[test]
    fn storage_split() {
        let s = StorageFootprint::mem(100) + StorageFootprint::disk(50);
        assert_eq!(s.total(), 150);
        assert_eq!(s.mem_bytes, 100);
        assert_eq!(s.disk_bytes, 50);
    }
}
