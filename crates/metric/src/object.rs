//! Binary object encoding.
//!
//! The disk-resident indexes of the paper (§5) store objects either in a
//! random access file (OmniR-tree, M-index, SPB-tree) or inline in tree
//! nodes (CPT, PM-tree). Both paths serialize objects through this trait so
//! that storage sizes and page layouts are realistic.

/// Fixed, self-describing little-endian binary encoding for index objects.
pub trait EncodeObject: Sized {
    /// Appends the encoding of `self` to `out`.
    fn encode_into(&self, out: &mut Vec<u8>);

    /// Decodes an object from `buf`, returning the object and the number of
    /// bytes consumed. Panics on malformed input (encodings are produced by
    /// this crate only).
    fn decode_from(buf: &[u8]) -> (Self, usize);

    /// Number of bytes [`EncodeObject::encode_into`] will append.
    fn encoded_len(&self) -> usize;

    /// Convenience: encode to a fresh buffer.
    fn encode(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(self.encoded_len());
        self.encode_into(&mut v);
        v
    }
}

impl EncodeObject for Vec<f32> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.len() as u32).to_le_bytes());
        for x in self {
            out.extend_from_slice(&x.to_le_bytes());
        }
    }

    fn decode_from(buf: &[u8]) -> (Self, usize) {
        let n = u32::from_le_bytes(buf[0..4].try_into().unwrap()) as usize;
        let mut v = Vec::with_capacity(n);
        let mut off = 4;
        for _ in 0..n {
            v.push(f32::from_le_bytes(buf[off..off + 4].try_into().unwrap()));
            off += 4;
        }
        (v, off)
    }

    fn encoded_len(&self) -> usize {
        4 + 4 * self.len()
    }
}

impl EncodeObject for String {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.len() as u32).to_le_bytes());
        out.extend_from_slice(self.as_bytes());
    }

    fn decode_from(buf: &[u8]) -> (Self, usize) {
        let n = u32::from_le_bytes(buf[0..4].try_into().unwrap()) as usize;
        let s = std::str::from_utf8(&buf[4..4 + n])
            .expect("corrupt string encoding")
            .to_owned();
        (s, 4 + n)
    }

    fn encoded_len(&self) -> usize {
        4 + self.len()
    }
}

/// Encodes a slice of `f64` distances (pre-computed pivot distances stored
/// alongside objects in RAFs, §5.3).
pub fn encode_f64s(xs: &[f64], out: &mut Vec<u8>) {
    out.extend_from_slice(&(xs.len() as u32).to_le_bytes());
    for x in xs {
        out.extend_from_slice(&x.to_le_bytes());
    }
}

/// Decodes a slice previously written by [`encode_f64s`]; returns the values
/// and bytes consumed.
pub fn decode_f64s(buf: &[u8]) -> (Vec<f64>, usize) {
    let n = u32::from_le_bytes(buf[0..4].try_into().unwrap()) as usize;
    let mut v = Vec::with_capacity(n);
    let mut off = 4;
    for _ in 0..n {
        v.push(f64::from_le_bytes(buf[off..off + 8].try_into().unwrap()));
        off += 8;
    }
    (v, off)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_roundtrip() {
        let v = vec![1.5f32, -2.25, 0.0, 1e9];
        let enc = v.encode();
        assert_eq!(enc.len(), v.encoded_len());
        let (back, used) = Vec::<f32>::decode_from(&enc);
        assert_eq!(back, v);
        assert_eq!(used, enc.len());
    }

    #[test]
    fn string_roundtrip() {
        for s in ["", "a", "defoliate", "naïve-ütf8"] {
            let s = s.to_owned();
            let enc = s.encode();
            assert_eq!(enc.len(), s.encoded_len());
            let (back, used) = String::decode_from(&enc);
            assert_eq!(back, s);
            assert_eq!(used, enc.len());
        }
    }

    #[test]
    fn f64s_roundtrip() {
        let xs = [0.0, -1.5, 3.25, f64::MAX];
        let mut buf = Vec::new();
        encode_f64s(&xs, &mut buf);
        let (back, used) = decode_f64s(&buf);
        assert_eq!(back, xs);
        assert_eq!(used, buf.len());
    }

    #[test]
    fn concatenated_decoding() {
        let a = vec![1.0f32, 2.0];
        let b = vec![3.0f32];
        let mut buf = Vec::new();
        a.encode_into(&mut buf);
        b.encode_into(&mut buf);
        let (da, used) = Vec::<f32>::decode_from(&buf);
        let (db, _) = Vec::<f32>::decode_from(&buf[used..]);
        assert_eq!(da, a);
        assert_eq!(db, b);
    }
}
