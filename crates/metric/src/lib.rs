//! Metric-space foundations for pivot-based metric indexing.
//!
//! This crate provides everything the index crates share:
//!
//! * the [`Metric`] trait and the concrete distance functions used by the
//!   paper's evaluation (L1 / L2 / L∞ / Lp norms and edit distance),
//! * [`CountingMetric`], the instrumented wrapper through which every index
//!   computes distances so that the `compdists` cost metric of the paper can
//!   be measured uniformly,
//! * the four pivot filtering / validation lemmas of the paper ([`lemmas`]),
//! * the shared flat pivot-distance matrix ([`PivotMatrix`]) built once, in
//!   parallel, and adopted by the pivot tables and the sharded engine —
//!   read through lock-free published snapshots and filtered through the
//!   blocked [`ScanKernel`] (see [`matrix`] for the publication rule),
//! * reusable per-worker query scratch space ([`QueryScratch`]) for the
//!   allocation-free batch query path,
//! * the object-safe [`MetricIndex`] trait implemented by all thirteen index
//!   variants,
//! * binary object encoding ([`object`]) used by the disk-resident indexes,
//! * synthetic dataset generators matching the paper's Table 2 ([`datasets`]).

pub mod datasets;
pub mod distance;
pub mod fault;
pub mod index;
pub mod lemmas;
pub mod matrix;
pub mod object;
pub mod parallel;
pub mod scratch;
pub mod simd;
pub mod stats;
pub mod table;

pub use distance::{CountingMetric, DistanceCounter, EditDistance, LInf, Lp, Metric, L1, L2};
pub use index::{BruteForce, MetricIndex};
pub use matrix::{ColumnMode, MatrixSlice, PivotMatrix, ScanKernel, SharedPivotMatrix};
pub use object::EncodeObject;
pub use scratch::QueryScratch;
pub use simd::SimdTier;
pub use stats::{Counters, Neighbor, ObjId, StorageFootprint};
pub use table::ObjTable;

/// A dense vector object. All vector datasets in the paper (LA, Color,
/// Synthetic) are represented this way; coordinates are stored as `f32`
/// and distances are accumulated in `f64`.
pub type Vector = Vec<f32>;
