//! Parallel pre-computation helpers built on crossbeam scoped threads.
//!
//! The paper's §6.2 discussion notes that index construction parallelizes
//! naturally: "since objects are independent of each other, the
//! pre-computed distances for each object can be computed in parallel".
//! The parallel pivot-distance table itself lives in
//! [`PivotMatrix::compute`](crate::PivotMatrix::compute); this module keeps
//! the remaining worker-pool helper. The
//! [`CountingMetric`](crate::CountingMetric) counter is atomic, so
//! `compdists` accounting stays exact under parallelism.

use crate::distance::Metric;

/// Parallel pairwise-distance sampling used to estimate dataset statistics
/// on large inputs (each thread samples an independent stripe).
pub fn sample_distances<O, M>(
    objects: &[O],
    metric: &M,
    pairs_per_thread: usize,
    threads: usize,
    seed: u64,
) -> Vec<f64>
where
    O: Sync,
    M: Metric<O> + Sync,
{
    let threads = threads.max(1);
    let n = objects.len();
    assert!(n >= 2);
    let mut out: Vec<Vec<f64>> = Vec::new();
    crossbeam::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                s.spawn(move |_| {
                    // Small deterministic LCG per thread.
                    let mut state = seed ^ (0x9e3779b97f4a7c15u64.wrapping_mul(t as u64 + 1));
                    let mut next = move || {
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        (state >> 33) as usize
                    };
                    let mut v = Vec::with_capacity(pairs_per_thread);
                    for _ in 0..pairs_per_thread {
                        let a = next() % n;
                        let mut b = next() % n;
                        if a == b {
                            b = (b + 1) % n;
                        }
                        v.push(metric.dist(&objects[a], &objects[b]));
                    }
                    v
                })
            })
            .collect();
        out = handles.into_iter().map(|h| h.join().unwrap()).collect();
    })
    .expect("worker thread panicked");
    out.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets;
    use crate::distance::L2;

    #[test]
    fn sampling_produces_requested_count() {
        let pts = datasets::la(300, 9);
        let d = sample_distances(&pts, &L2, 100, 3, 1);
        assert_eq!(d.len(), 300);
        assert!(d.iter().all(|x| *x >= 0.0));
        // Deterministic per seed.
        assert_eq!(sample_distances(&pts, &L2, 100, 3, 1), d);
        assert_ne!(sample_distances(&pts, &L2, 100, 3, 2), d);
    }
}
