//! Parallel pre-computation of pivot distances.
//!
//! The paper's §6.2 discussion notes that index construction parallelizes
//! naturally: "since objects are independent of each other, the
//! pre-computed distances for each object can be computed in parallel".
//! This module implements that strategy with crossbeam scoped threads; the
//! [`CountingMetric`](crate::CountingMetric) counter is atomic, so
//! `compdists` accounting stays exact under parallelism.

use crate::distance::Metric;

/// Computes the `n × |pivots|` distance table in parallel over `threads`
/// worker threads. Equivalent to the serial double loop; deterministic
/// output.
pub fn pivot_rows<O, M>(objects: &[O], metric: &M, pivots: &[O], threads: usize) -> Vec<Vec<f64>>
where
    O: Sync,
    M: Metric<O> + Sync,
{
    let threads = threads.max(1);
    if threads == 1 || objects.len() < 2 * threads {
        return objects
            .iter()
            .map(|o| pivots.iter().map(|p| metric.dist(o, p)).collect())
            .collect();
    }
    let mut rows: Vec<Vec<f64>> = vec![Vec::new(); objects.len()];
    let chunk = objects.len().div_ceil(threads);
    crossbeam::thread::scope(|s| {
        for (slot_chunk, obj_chunk) in rows.chunks_mut(chunk).zip(objects.chunks(chunk)) {
            s.spawn(move |_| {
                for (slot, o) in slot_chunk.iter_mut().zip(obj_chunk) {
                    *slot = pivots.iter().map(|p| metric.dist(o, p)).collect();
                }
            });
        }
    })
    .expect("worker thread panicked");
    rows
}

/// Parallel pairwise-distance sampling used to estimate dataset statistics
/// on large inputs (each thread samples an independent stripe).
pub fn sample_distances<O, M>(
    objects: &[O],
    metric: &M,
    pairs_per_thread: usize,
    threads: usize,
    seed: u64,
) -> Vec<f64>
where
    O: Sync,
    M: Metric<O> + Sync,
{
    let threads = threads.max(1);
    let n = objects.len();
    assert!(n >= 2);
    let mut out: Vec<Vec<f64>> = Vec::new();
    crossbeam::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                s.spawn(move |_| {
                    // Small deterministic LCG per thread.
                    let mut state = seed ^ (0x9e3779b97f4a7c15u64.wrapping_mul(t as u64 + 1));
                    let mut next = move || {
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        (state >> 33) as usize
                    };
                    let mut v = Vec::with_capacity(pairs_per_thread);
                    for _ in 0..pairs_per_thread {
                        let a = next() % n;
                        let mut b = next() % n;
                        if a == b {
                            b = (b + 1) % n;
                        }
                        v.push(metric.dist(&objects[a], &objects[b]));
                    }
                    v
                })
            })
            .collect();
        out = handles.into_iter().map(|h| h.join().unwrap()).collect();
    })
    .expect("worker thread panicked");
    out.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets;
    use crate::distance::{CountingMetric, L2};

    #[test]
    fn parallel_rows_match_serial() {
        let pts = datasets::la(500, 3);
        let pivots: Vec<Vec<f32>> = vec![pts[1].clone(), pts[99].clone(), pts[200].clone()];
        let serial = pivot_rows(&pts, &L2, &pivots, 1);
        for threads in [2usize, 4, 7] {
            let par = pivot_rows(&pts, &L2, &pivots, threads);
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn counting_stays_exact_under_parallelism() {
        let pts = datasets::la(400, 5);
        let pivots: Vec<Vec<f32>> = vec![pts[0].clone(), pts[7].clone()];
        let metric = CountingMetric::new(L2);
        let _ = pivot_rows(&pts, &metric, &pivots, 4);
        assert_eq!(metric.count(), 400 * 2);
    }

    #[test]
    fn sampling_produces_requested_count() {
        let pts = datasets::la(300, 9);
        let d = sample_distances(&pts, &L2, 100, 3, 1);
        assert_eq!(d.len(), 300);
        assert!(d.iter().all(|x| *x >= 0.0));
        // Deterministic per seed.
        assert_eq!(sample_distances(&pts, &L2, 100, 3, 1), d);
        assert_ne!(sample_distances(&pts, &L2, 100, 3, 2), d);
    }

    #[test]
    fn degenerate_thread_counts() {
        let pts = datasets::la(10, 1);
        let pivots = vec![pts[0].clone()];
        assert_eq!(pivot_rows(&pts, &L2, &pivots, 0).len(), 10);
        assert_eq!(pivot_rows(&pts, &L2, &pivots, 64).len(), 10);
    }
}
