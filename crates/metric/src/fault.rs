//! Deterministic fault injection for chaos testing, compiled away by
//! default.
//!
//! The types ([`FaultPlan`], [`FaultSpec`], [`FaultKind`]) are always
//! available so callers can construct plans unconditionally; the *hooks*
//! ([`at`], [`dist`]) and the installer ([`install`] / [`clear`]) only do
//! anything under the `fault-inject` feature — without it `at`/`dist` are
//! `#[inline(always)]` no-ops the optimizer erases, so production builds
//! carry zero fault-injection cost.
//!
//! A plan is a list of specs, each naming a **fault point** (a string
//! literal baked into the host code, e.g. `"engine.probe"` or
//! `"laesa.dist"`), an optional argument filter (e.g. a shard id), a
//! trigger schedule (`after` N matching hits, then `every` M-th, at most
//! `limit` firings), and what happens when it fires: panic, a NaN
//! distance, or a delay. Everything is counted deterministically — same
//! plan + same (single-threaded) execution order = same firings. See
//! `docs/robustness.md` for the fault-point catalog.
//!
//! Install/clear swap a process-global plan, so chaos tests that install
//! plans must serialize themselves (e.g. behind a shared mutex).

/// What happens when a fault fires.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// Panic at the fault point (tests panic containment).
    Panic,
    /// Make the wrapped distance come out NaN (tests input hardening
    /// below the validation boundary). Only meaningful at `dist` points;
    /// at an `at` point it does nothing.
    NanDist,
    /// Sleep this many microseconds (tests deadlines and shedding).
    DelayMicros(u64),
}

/// One injection rule of a [`FaultPlan`].
#[derive(Clone, Debug, PartialEq)]
pub struct FaultSpec {
    /// The named fault point this spec arms.
    pub point: String,
    /// Only hits carrying this argument match (`None` = every hit).
    pub arg: Option<u64>,
    /// What firing does.
    pub kind: FaultKind,
    /// Skip this many matching hits before the first firing.
    pub after: u64,
    /// After `after`, fire on every `every`-th matching hit (1 = every
    /// hit; 0 behaves as 1).
    pub every: u64,
    /// Stop after this many firings (0 = unlimited).
    pub limit: u64,
}

impl FaultSpec {
    /// A spec that fires on every matching hit, unlimited.
    pub fn always(point: &str, arg: Option<u64>, kind: FaultKind) -> Self {
        FaultSpec {
            point: point.to_string(),
            arg,
            kind,
            after: 0,
            every: 1,
            limit: 0,
        }
    }
}

/// A deterministic set of injection rules, installed process-wide with
/// [`install`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// The rules; every hit checks each matching spec in order and the
    /// first one whose schedule fires wins.
    pub specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds a spec, builder-style.
    pub fn with(mut self, spec: FaultSpec) -> Self {
        self.specs.push(spec);
        self
    }
}

#[cfg(feature = "fault-inject")]
mod active {
    use super::{FaultKind, FaultPlan};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::RwLock;

    struct Installed {
        plan: FaultPlan,
        /// Matching-hit count per spec (same order as `plan.specs`).
        hits: Vec<AtomicU64>,
        /// Firing count per spec.
        fires: Vec<AtomicU64>,
    }

    static PLAN: RwLock<Option<Installed>> = RwLock::new(None);

    fn read() -> std::sync::RwLockReadGuard<'static, Option<Installed>> {
        // A panic injected while a reader held the lock must not poison
        // the harness for the next test.
        PLAN.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Installs `plan` process-wide, replacing any previous plan and
    /// resetting all counters.
    pub fn install(plan: FaultPlan) {
        let n = plan.specs.len();
        *PLAN.write().unwrap_or_else(|e| e.into_inner()) = Some(Installed {
            plan,
            hits: (0..n).map(|_| AtomicU64::new(0)).collect(),
            fires: (0..n).map(|_| AtomicU64::new(0)).collect(),
        });
    }

    /// Removes the installed plan (hooks become inert again).
    pub fn clear() {
        *PLAN.write().unwrap_or_else(|e| e.into_inner()) = None;
    }

    /// Whether a plan is installed.
    pub fn active() -> bool {
        read().is_some()
    }

    /// Total firings per spec of the installed plan (empty if none).
    pub fn fired() -> Vec<u64> {
        read()
            .as_ref()
            .map(|i| i.fires.iter().map(|f| f.load(Ordering::Relaxed)).collect())
            .unwrap_or_default()
    }

    /// Consults the plan for a hit at `point` with `arg`; returns the kind
    /// to trigger, if any. The read guard is dropped before the caller
    /// acts (a triggered panic must not hold the lock).
    fn check(point: &str, arg: u64) -> Option<FaultKind> {
        let guard = read();
        let installed = guard.as_ref()?;
        for (i, spec) in installed.plan.specs.iter().enumerate() {
            if spec.point != point || spec.arg.is_some_and(|a| a != arg) {
                continue;
            }
            let hit = installed.hits[i].fetch_add(1, Ordering::Relaxed);
            if hit < spec.after {
                continue;
            }
            let every = spec.every.max(1);
            if !(hit - spec.after).is_multiple_of(every) {
                continue;
            }
            if spec.limit > 0 && installed.fires[i].load(Ordering::Relaxed) >= spec.limit {
                continue;
            }
            installed.fires[i].fetch_add(1, Ordering::Relaxed);
            return Some(spec.kind);
        }
        None
    }

    /// Acts on a triggered kind, outside the plan lock.
    fn trigger(point: &str, arg: u64, kind: FaultKind) {
        match kind {
            FaultKind::Panic => panic!("injected fault: panic at {point} (arg {arg})"),
            FaultKind::DelayMicros(us) => std::thread::sleep(std::time::Duration::from_micros(us)),
            FaultKind::NanDist => {}
        }
    }

    /// Fault point hook: may panic or delay per the installed plan.
    pub fn at(point: &str, arg: u64) {
        if let Some(kind) = check(point, arg) {
            trigger(point, arg, kind);
        }
    }

    /// Distance-wrapping fault point hook: may panic or delay, and turns
    /// the computed distance into NaN when a [`FaultKind::NanDist`] spec
    /// fires.
    pub fn dist(point: &str, arg: u64, d: f64) -> f64 {
        match check(point, arg) {
            Some(FaultKind::NanDist) => f64::NAN,
            Some(kind) => {
                trigger(point, arg, kind);
                d
            }
            None => d,
        }
    }
}

#[cfg(feature = "fault-inject")]
pub use active::{active, at, clear, dist, fired, install};

/// No-op hook (fault injection compiled out).
#[cfg(not(feature = "fault-inject"))]
#[inline(always)]
pub fn at(_point: &str, _arg: u64) {}

/// No-op hook (fault injection compiled out): returns `d` unchanged.
#[cfg(not(feature = "fault-inject"))]
#[inline(always)]
pub fn dist(_point: &str, _arg: u64, d: f64) -> f64 {
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_builder() {
        let plan = FaultPlan::new()
            .with(FaultSpec::always("engine.probe", Some(1), FaultKind::Panic))
            .with(FaultSpec {
                point: "laesa.dist".into(),
                arg: None,
                kind: FaultKind::NanDist,
                after: 2,
                every: 3,
                limit: 5,
            });
        assert_eq!(plan.specs.len(), 2);
        assert_eq!(plan.specs[0].every, 1);
        assert_eq!(plan.specs[0].limit, 0);
    }

    #[test]
    fn noop_hooks_pass_through() {
        // With the feature off these are the inert stubs; with it on, no
        // plan is installed in this test, so they are inert either way.
        at("engine.probe", 0);
        assert_eq!(dist("laesa.dist", 7, 2.5), 2.5);
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn schedule_after_every_limit() {
        // Serialized against other fault-inject tests by being the only
        // one in this crate that installs a plan.
        install(FaultPlan::new().with(FaultSpec {
            point: "p".into(),
            arg: None,
            kind: FaultKind::NanDist,
            after: 1,
            every: 2,
            limit: 2,
        }));
        assert!(active());
        // Hits: 0 skipped (after), 1 fires, 2 skipped (every), 3 fires,
        // 5 would fire but the limit is spent.
        let out: Vec<f64> = (0..6).map(|_| dist("p", 0, 1.0)).collect();
        let fired_mask: Vec<bool> = out.iter().map(|d| d.is_nan()).collect();
        assert_eq!(fired_mask, vec![false, true, false, true, false, false]);
        assert_eq!(fired(), vec![2]);
        // Arg filtering: a spec pinned to arg 3 ignores other args.
        install(FaultPlan::new().with(FaultSpec::always("q", Some(3), FaultKind::NanDist)));
        assert!(!dist("q", 2, 1.0).is_nan());
        assert!(dist("q", 3, 1.0).is_nan());
        clear();
        assert!(!active());
        assert!(fired().is_empty());
        assert!(!dist("q", 3, 1.0).is_nan());
    }
}
