//! The four pivot filtering / validation lemmas of the paper (§2.3).
//!
//! Every index implements its pruning in terms of these functions, which are
//! unit- and property-tested for soundness: a lemma may only discard objects
//! that cannot be answers (Lemmas 1–3) and may only validate objects that
//! must be answers (Lemma 4).

/// Lower bound on `d(q, o)` from pre-computed pivot distances:
/// `max_i |d(q, p_i) - d(o, p_i)|` (triangle inequality). With no pivots the
/// bound is trivially 0.
#[inline]
pub fn pivot_lower_bound(q_dists: &[f64], o_dists: &[f64]) -> f64 {
    debug_assert_eq!(q_dists.len(), o_dists.len());
    let mut lb = 0.0f64;
    for (qd, od) in q_dists.iter().zip(o_dists) {
        let d = (qd - od).abs();
        if d > lb {
            lb = d;
        }
    }
    lb
}

/// Upper bound on `d(q, o)`: `min_i (d(q, p_i) + d(o, p_i))`.
#[inline]
pub fn pivot_upper_bound(q_dists: &[f64], o_dists: &[f64]) -> f64 {
    debug_assert_eq!(q_dists.len(), o_dists.len());
    let mut ub = f64::INFINITY;
    for (qd, od) in q_dists.iter().zip(o_dists) {
        let d = qd + od;
        if d < ub {
            ub = d;
        }
    }
    ub
}

/// Lemma 1 (pivot filtering): `o` can be pruned for `MRQ(q, r)` when its
/// mapped point lies outside the search box `[d(q,p_i)-r, d(q,p_i)+r]^l`.
///
/// ```
/// use pmi_metric::lemmas::lemma1_prunable;
/// // d(q,p) = 10, d(o,p) = 2 -> d(q,o) >= 8 > r = 5: prune.
/// assert!(lemma1_prunable(&[10.0], &[2.0], 5.0));
/// assert!(!lemma1_prunable(&[10.0], &[6.0], 5.0));
/// ```
#[inline]
pub fn lemma1_prunable(q_dists: &[f64], o_dists: &[f64], r: f64) -> bool {
    pivot_lower_bound(q_dists, o_dists) > r
}

/// Lemma 1 applied to a minimum bounding box over mapped points: the whole
/// region can be pruned when the box does not intersect the search box.
/// `lo[i]..=hi[i]` bounds `d(o, p_i)` for all objects in the region.
#[inline]
pub fn lemma1_box_prunable(q_dists: &[f64], lo: &[f64], hi: &[f64], r: f64) -> bool {
    mbb_lower_bound(q_dists, lo, hi) > r
}

/// Lower bound on `d(q, o)` for any `o` whose mapped point lies in the box
/// `[lo, hi]` — the Chebyshev distance from the mapped query point to the
/// box. This is the `MINDIST` used for best-first traversal of R-tree /
/// M-index* / SPB-tree structures.
#[inline]
pub fn mbb_lower_bound(q_dists: &[f64], lo: &[f64], hi: &[f64]) -> f64 {
    debug_assert_eq!(q_dists.len(), lo.len());
    debug_assert_eq!(q_dists.len(), hi.len());
    let mut m = 0.0f64;
    for i in 0..q_dists.len() {
        let qd = q_dists[i];
        let gap = if qd < lo[i] {
            lo[i] - qd
        } else if qd > hi[i] {
            qd - hi[i]
        } else {
            0.0
        };
        if gap > m {
            m = gap;
        }
    }
    m
}

/// Upper bound counterpart of [`mbb_lower_bound`]: no point in the box maps
/// further than this from the query in the pivot (L∞) space. Combined with
/// Lemma 4 this can validate whole regions.
#[inline]
pub fn mbb_validation_bound(q_dists: &[f64], lo: &[f64], hi: &[f64]) -> f64 {
    let mut worst = f64::INFINITY;
    for i in 0..q_dists.len() {
        // For pivot i, every object o in the box has d(o,p_i) <= hi[i], so
        // d(q,o) <= d(q,p_i) + hi[i].
        let ub = q_dists[i] + hi[i];
        if ub < worst {
            worst = ub;
        }
    }
    let _ = lo;
    worst
}

/// A minimum bounding box over mapped points (pivot-distance vectors), the
/// region summary behind [`lemma1_box_prunable`]: `lo[i]..=hi[i]` bounds
/// `d(o, p_i)` for every object `o` the box covers.
///
/// Used wherever a set of objects is summarized for region-level pruning —
/// R-tree nodes conceptually, and the serving engine's per-shard routing
/// summaries concretely. An empty box (no points extended yet) reports an
/// infinite lower bound, so it is always prunable; a zero-dimensional box
/// (no pivots) reports a zero lower bound, so it never prunes.
#[derive(Clone, Debug, PartialEq)]
pub struct Mbb {
    lo: Vec<f64>,
    hi: Vec<f64>,
}

impl Mbb {
    /// An empty box over `dim` pivot dimensions (`lo = +∞`, `hi = -∞`).
    pub fn empty(dim: usize) -> Self {
        Mbb {
            lo: vec![f64::INFINITY; dim],
            hi: vec![f64::NEG_INFINITY; dim],
        }
    }

    /// The tight box over an iterator of mapped points.
    pub fn from_points<'a>(dim: usize, points: impl IntoIterator<Item = &'a [f64]>) -> Self {
        let mut b = Mbb::empty(dim);
        for p in points {
            b.extend(p);
        }
        b
    }

    /// Number of pivot dimensions.
    pub fn dim(&self) -> usize {
        self.lo.len()
    }

    /// Whether the box covers no points yet (any inverted interval).
    pub fn is_empty(&self) -> bool {
        self.lo.iter().zip(&self.hi).any(|(l, h)| l > h)
    }

    /// Per-dimension lower edges.
    pub fn lo(&self) -> &[f64] {
        &self.lo
    }

    /// Per-dimension upper edges.
    pub fn hi(&self) -> &[f64] {
        &self.hi
    }

    /// Grows the box to cover one mapped point.
    pub fn extend(&mut self, p: &[f64]) {
        debug_assert_eq!(p.len(), self.lo.len());
        for ((x, lo), hi) in p.iter().zip(&mut self.lo).zip(&mut self.hi) {
            if *x < *lo {
                *lo = *x;
            }
            if *x > *hi {
                *hi = *x;
            }
        }
    }

    /// [`mbb_lower_bound`] against this box; `+∞` when the box is empty
    /// (nothing inside, so everything is prunable).
    pub fn lower_bound(&self, q_dists: &[f64]) -> f64 {
        if self.is_empty() {
            return f64::INFINITY;
        }
        mbb_lower_bound(q_dists, &self.lo, &self.hi)
    }

    /// [`lemma1_box_prunable`] against this box.
    pub fn prunable(&self, q_dists: &[f64], r: f64) -> bool {
        self.lower_bound(q_dists) > r
    }
}

/// Lemma 2 (range-pivot filtering): a ball region with pivot distance
/// `d(q, R.p) = d_qp` and covering radius `R.r = radius` can be pruned when
/// `d_qp > radius + r`.
#[inline]
pub fn lemma2_prunable(d_qp: f64, radius: f64, r: f64) -> bool {
    d_qp > radius + r
}

/// Lower bound on `d(q, o)` for `o` inside a ball region (used for
/// best-first ordering): `max(0, d(q, R.p) - R.r)`.
#[inline]
pub fn ball_lower_bound(d_qp: f64, radius: f64) -> f64 {
    (d_qp - radius).max(0.0)
}

/// Lemma 3 (double-pivot filtering): the hyperplane partition of pivot `p_i`
/// can be pruned when `d(q, p_i) - d(q, p_j) > 2r` for some other pivot
/// `p_j`.
#[inline]
pub fn lemma3_prunable(d_q_pi: f64, d_q_pj: f64, r: f64) -> bool {
    d_q_pi - d_q_pj > 2.0 * r
}

/// Hyperplane lower bound used for best-first ordering of M-index clusters:
/// for `o` in the partition of `p_i`, `d(q,o) >= (d(q,p_i) - min_j d(q,p_j)) / 2`.
#[inline]
pub fn hyperplane_lower_bound(d_q_pi: f64, min_d_q_pj: f64) -> f64 {
    ((d_q_pi - min_d_q_pj) / 2.0).max(0.0)
}

/// Lemma 4 (pivot validation): `o` is guaranteed to be an answer of
/// `MRQ(q, r)` when some pivot satisfies `d(o, p_i) <= r - d(q, p_i)`.
#[inline]
pub fn lemma4_validated(q_dists: &[f64], o_dists: &[f64], r: f64) -> bool {
    debug_assert_eq!(q_dists.len(), o_dists.len());
    q_dists.iter().zip(o_dists).any(|(qd, od)| *od <= r - *qd)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::{Metric, L2};

    fn dists(points: &[[f32; 2]], pivots: &[[f32; 2]], x: &[f32; 2]) -> Vec<f64> {
        let _ = points;
        pivots.iter().map(|p| L2.dist(&p[..], &x[..])).collect()
    }

    #[test]
    fn lemma1_soundness_exhaustive() {
        // A small grid; check Lemma 1 never prunes a true answer.
        let pts: Vec<[f32; 2]> = (0..6)
            .flat_map(|x| (0..6).map(move |y| [x as f32, y as f32]))
            .collect();
        let pivots = [[0.0f32, 0.0], [5.0, 5.0]];
        let q = [2.0f32, 3.0];
        let qd = dists(&pts, &pivots, &q);
        for r in [0.5f64, 1.0, 2.0, 3.5] {
            for o in &pts {
                let od = dists(&pts, &pivots, o);
                let actual = L2.dist(&q[..], &o[..]);
                if lemma1_prunable(&qd, &od, r) {
                    assert!(actual > r, "false prune at r={r} for {o:?}");
                }
                if lemma4_validated(&qd, &od, r) {
                    assert!(actual <= r, "false validation at r={r} for {o:?}");
                }
                assert!(pivot_lower_bound(&qd, &od) <= actual + 1e-9);
                assert!(pivot_upper_bound(&qd, &od) >= actual - 1e-9);
            }
        }
    }

    #[test]
    fn lemma2_soundness() {
        // Ball around p with radius 2; q at distance 5 from p; r = 2.
        assert!(lemma2_prunable(5.0, 2.0, 2.0));
        assert!(!lemma2_prunable(4.0, 2.0, 2.0));
        assert_eq!(ball_lower_bound(5.0, 2.0), 3.0);
        assert_eq!(ball_lower_bound(1.0, 2.0), 0.0);
    }

    #[test]
    fn lemma3_soundness() {
        assert!(lemma3_prunable(10.0, 2.0, 3.0));
        assert!(!lemma3_prunable(8.0, 2.0, 3.0));
        assert_eq!(hyperplane_lower_bound(10.0, 2.0), 4.0);
        assert_eq!(hyperplane_lower_bound(1.0, 2.0), 0.0);
    }

    #[test]
    fn box_bounds() {
        let qd = [5.0, 1.0];
        let lo = [0.0, 2.0];
        let hi = [2.0, 4.0];
        // Pivot 0: gap 3; pivot 1: gap 1 -> lower bound 3.
        assert_eq!(mbb_lower_bound(&qd, &lo, &hi), 3.0);
        assert!(lemma1_box_prunable(&qd, &lo, &hi, 2.9));
        assert!(!lemma1_box_prunable(&qd, &lo, &hi, 3.0));
        // Validation bound: min(5+2, 1+4) = 5.
        assert_eq!(mbb_validation_bound(&qd, &lo, &hi), 5.0);
    }

    #[test]
    fn mbb_covers_and_bounds() {
        let mut b = Mbb::empty(2);
        assert!(b.is_empty());
        assert_eq!(b.lower_bound(&[1.0, 1.0]), f64::INFINITY);
        assert!(b.prunable(&[1.0, 1.0], 1e18), "empty box always prunes");
        b.extend(&[1.0, 3.0]);
        b.extend(&[2.0, 2.0]);
        assert!(!b.is_empty());
        assert_eq!(b.lo(), &[1.0, 2.0]);
        assert_eq!(b.hi(), &[2.0, 3.0]);
        // Same semantics as the free functions.
        assert_eq!(b.lower_bound(&[5.0, 1.0]), 3.0);
        assert!(b.prunable(&[5.0, 1.0], 2.9));
        assert!(!b.prunable(&[5.0, 1.0], 3.0));
        // Inside the box: bound 0.
        assert_eq!(b.lower_bound(&[1.5, 2.5]), 0.0);
        let c = Mbb::from_points(2, [[1.0, 3.0].as_slice(), [2.0, 2.0].as_slice()]);
        assert_eq!(b, c);
    }

    #[test]
    fn zero_dim_mbb_never_prunes() {
        let b = Mbb::empty(0);
        assert!(!b.is_empty(), "a 0-d box covers the whole (empty) space");
        assert_eq!(b.lower_bound(&[]), 0.0);
        assert!(!b.prunable(&[], 0.0));
    }

    #[test]
    fn empty_pivots_are_neutral() {
        assert_eq!(pivot_lower_bound(&[], &[]), 0.0);
        assert!(!lemma1_prunable(&[], &[], 1.0));
        assert!(!lemma4_validated(&[], &[], 1.0));
    }
}
