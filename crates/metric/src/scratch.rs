//! Reusable per-worker query scratch space.
//!
//! The batch-serving hot loop answers thousands of queries per worker
//! thread; allocating a fresh query-pivot distance vector, candidate heap,
//! and result buffers for every query is pure overhead. A [`QueryScratch`]
//! owns those buffers once per worker and is threaded through
//! [`MetricIndex::range_query_into`](crate::MetricIndex::range_query_into) /
//! [`MetricIndex::knn_query_into`](crate::MetricIndex::knn_query_into), so
//! that after a short warmup the scan path performs no transient heap
//! allocations per query.

use crate::stats::Neighbor;
use std::collections::BinaryHeap;

/// Reusable buffers for one query-serving worker.
///
/// All buffers keep their capacity across queries; callers `clear()` (or let
/// the index methods clear) rather than reallocate. One scratch must not be
/// shared across threads — each worker owns its own.
#[derive(Debug, Default)]
pub struct QueryScratch {
    /// Query-to-pivot distances (`d(q, p_1), …, d(q, p_l)`), recomputed per
    /// query into the same buffer.
    pub qd: Vec<f64>,
    /// Bounded max-heap of current k best neighbors for kNN scans. Emptied
    /// by each use; capacity persists.
    pub heap: BinaryHeap<Neighbor>,
    /// Per-slot Lemma 1 lower bounds, filled by the blocked
    /// [`ScanKernel`](crate::matrix::ScanKernel) once per scan (entry `i`
    /// is the bound of slot `i`, tombstoned slots included).
    pub lbs: Vec<f64>,
    /// Slot ids that survived the lower-bound filter of a range scan,
    /// collected before the exact-distance verification pass.
    pub survivors: Vec<u32>,
    /// Rows pushed through the blocked scan kernel since the last engine
    /// harvest (observability tally; stays 0 with the `obs` feature off).
    pub kernel_rows: u64,
    /// Kernel blocks those rows amounted to (rows / `ScanKernel::LANES`,
    /// rounded up per scan; stays 0 with the `obs` feature off).
    pub kernel_blocks: u64,
}

impl QueryScratch {
    /// A fresh scratch with empty buffers.
    pub fn new() -> Self {
        QueryScratch::default()
    }

    /// Clears all buffers, keeping capacity. The kernel tally is *not*
    /// cleared here — it is a cross-query accumulator the engine reads and
    /// resets at batch boundaries via [`QueryScratch::take_kernel_tally`].
    pub fn clear(&mut self) {
        self.qd.clear();
        self.heap.clear();
        self.lbs.clear();
        self.survivors.clear();
    }

    /// Tallies one blocked-kernel scan over `rows` table slots. A plain
    /// integer add on thread-local state — no atomics; with the `obs`
    /// feature off the body compiles to nothing.
    #[inline]
    pub fn note_kernel(&mut self, rows: usize) {
        #[cfg(feature = "obs")]
        {
            self.kernel_rows += rows as u64;
            self.kernel_blocks += rows.div_ceil(crate::matrix::ScanKernel::LANES) as u64;
        }
        #[cfg(not(feature = "obs"))]
        let _ = rows;
    }

    /// Returns and resets the `(rows, blocks)` kernel tally.
    #[inline]
    pub fn take_kernel_tally(&mut self) -> (u64, u64) {
        let t = (self.kernel_rows, self.kernel_blocks);
        self.kernel_rows = 0;
        self.kernel_blocks = 0;
        t
    }
}

/// Drains `heap` (a max-heap of the k best) into `out` in ascending
/// `(distance, id)` order, appending. Leaves the heap empty with its
/// capacity intact.
pub fn drain_heap_sorted(heap: &mut BinaryHeap<Neighbor>, out: &mut Vec<Neighbor>) {
    let start = out.len();
    while let Some(n) = heap.pop() {
        out.push(n);
    }
    out[start..].reverse();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drain_sorts_ascending_and_keeps_capacity() {
        let mut h = BinaryHeap::with_capacity(8);
        for (id, d) in [(3u32, 5.0f64), (1, 1.0), (2, 3.0)] {
            h.push(Neighbor::new(id, d));
        }
        let cap = h.capacity();
        let mut out = vec![Neighbor::new(9, 0.0)];
        drain_heap_sorted(&mut h, &mut out);
        assert_eq!(
            out.iter().map(|n| n.id).collect::<Vec<_>>(),
            vec![9, 1, 2, 3]
        );
        assert!(h.is_empty());
        assert_eq!(h.capacity(), cap);
    }

    #[test]
    fn scratch_clear_keeps_capacity() {
        let mut s = QueryScratch::new();
        s.qd.extend_from_slice(&[1.0, 2.0, 3.0]);
        s.heap.push(Neighbor::new(0, 1.0));
        let cap = s.qd.capacity();
        s.clear();
        assert!(s.qd.is_empty() && s.heap.is_empty());
        assert_eq!(s.qd.capacity(), cap);
    }
}
