//! Explicit-SIMD tiers for the [`ScanKernel`](crate::ScanKernel), with
//! one-time runtime dispatch.
//!
//! The Lemma 1 filter `max_j |qd_j − row_j|` is memory-bound, so the win of
//! hand-written lanes is modest for f64 — LLVM already auto-vectorizes the
//! portable blocked loop — but load-bearing for the f32 column mode, where
//! AVX2 processes **eight** rows per step over **half** the bytes. Three
//! tiers exist:
//!
//! * [`SimdTier::Avx2`] — 256-bit lanes (4 × f64 / 8 × f32 rows per step),
//!   picked when the CPU reports AVX2 at first use.
//! * [`SimdTier::Sse2`] — 128-bit lanes (2 × f64 / 4 × f32), the x86-64
//!   baseline.
//! * [`SimdTier::Portable`] — the blocked scalar code in `matrix.rs`
//!   (LLVM-auto-vectorized), the only tier on non-x86-64 targets.
//!
//! **Every tier produces bit-identical bounds.** `a − b` is a single
//! correctly-rounded operation, `abs` is exact, and a `max` reduction over
//! non-negative finite values is exact and association-insensitive;
//! degenerate inputs (`NaN`, `±∞`) collapse to the same clamped result
//! through one shared adjustment helper. The per-tier entry points on
//! `ScanKernel` exist so tests can pin every available tier against the
//! portable reference.
//!
//! Dispatch is decided once per process ([`tier`], a `OnceLock`) and can be
//! forced down with `PMI_SIMD=portable|sse2|avx2` — compiler flags alone
//! (`RUSTFLAGS=-C target-feature=-avx2`) cannot disable *runtime* feature
//! detection, and CI's no-AVX2 leg uses the override to prove the portable
//! fallback stays green on hardware that has AVX2.

use std::sync::OnceLock;

/// A SIMD implementation tier of the scan kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SimdTier {
    /// Blocked scalar code, auto-vectorized by LLVM. Always available.
    Portable,
    /// 128-bit `std::arch` lanes (x86-64 baseline).
    Sse2,
    /// 256-bit `std::arch` lanes (runtime-detected).
    Avx2,
}

impl SimdTier {
    /// Human-readable label (`"portable"` / `"sse2"` / `"avx2"`).
    pub fn label(&self) -> &'static str {
        match self {
            SimdTier::Portable => "portable",
            SimdTier::Sse2 => "sse2",
            SimdTier::Avx2 => "avx2",
        }
    }
}

/// The tiers this CPU can run, best last. Always starts with
/// [`SimdTier::Portable`].
pub fn available_tiers() -> Vec<SimdTier> {
    let mut tiers = vec![SimdTier::Portable];
    #[cfg(target_arch = "x86_64")]
    {
        tiers.push(SimdTier::Sse2);
        if is_x86_feature_detected!("avx2") {
            tiers.push(SimdTier::Avx2);
        }
    }
    tiers
}

fn detect() -> SimdTier {
    let best = *available_tiers().last().expect("portable always present");
    match std::env::var("PMI_SIMD").ok().as_deref() {
        Some("portable") | Some("scalar") => SimdTier::Portable,
        Some("sse2") if best != SimdTier::Portable => SimdTier::Sse2,
        Some("avx2") => best, // can only cap at what the CPU has
        _ => best,
    }
}

/// The tier the kernel dispatches to, decided once per process (first use)
/// from CPU feature detection, overridable via `PMI_SIMD`.
pub fn tier() -> SimdTier {
    static TIER: OnceLock<SimdTier> = OnceLock::new();
    *TIER.get_or_init(detect)
}

/// The x86-64 lane implementations. All functions require the slice
/// preconditions documented on their `ScanKernel` wrappers (`rows`/`out`
/// sized to `n`·`w`, every index row in bounds) and, for the AVX2 set, a
/// CPU with AVX2 — which the dispatcher guarantees.
#[cfg(target_arch = "x86_64")]
pub(crate) mod x86 {
    use crate::matrix::{adjust_f32, ScanKernel};
    use core::arch::x86_64::*;

    /// `|x|` via sign-bit clear — exact, no rounding.
    #[inline(always)]
    unsafe fn abs_pd(x: __m256d) -> __m256d {
        _mm256_andnot_pd(_mm256_set1_pd(-0.0), x)
    }

    #[inline(always)]
    unsafe fn abs_pd128(x: __m128d) -> __m128d {
        _mm_andnot_pd(_mm_set1_pd(-0.0), x)
    }

    #[inline(always)]
    unsafe fn abs_ps(x: __m256) -> __m256 {
        _mm256_andnot_ps(_mm256_set1_ps(-0.0), x)
    }

    #[inline(always)]
    unsafe fn abs_ps128(x: __m128) -> __m128 {
        _mm_andnot_ps(_mm_set1_ps(-0.0), x)
    }

    /// 4 rows of f64 per step; remainder through the shared scalar
    /// reduction (bit-identical by the module-level argument).
    ///
    /// # Safety
    /// Caller verified AVX2; `rows.len() == out.len() * qd.len()`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn lb_f64_avx2(qd: &[f64], rows: &[f64], out: &mut [f64]) {
        let w = qd.len();
        let n = out.len();
        let base = rows.as_ptr();
        let mut i = 0;
        while i + 4 <= n {
            let r0 = base.add(i * w);
            let r1 = r0.add(w);
            let r2 = r1.add(w);
            let r3 = r2.add(w);
            let mut m = _mm256_setzero_pd();
            for j in 0..w {
                let x = _mm256_set_pd(*r3.add(j), *r2.add(j), *r1.add(j), *r0.add(j));
                let q = _mm256_set1_pd(*qd.get_unchecked(j));
                m = _mm256_max_pd(abs_pd(_mm256_sub_pd(q, x)), m);
            }
            _mm256_storeu_pd(out.as_mut_ptr().add(i), m);
            i += 4;
        }
        for r in i..n {
            out[r] = ScanKernel::row_max(qd, &rows[r * w..(r + 1) * w]);
        }
    }

    /// The gather twin of [`lb_f64_avx2`]: row `index[i]` of `data`.
    ///
    /// # Safety
    /// Caller verified AVX2; every `index[i] * qd.len() + qd.len()` is in
    /// bounds of `data`; `out.len() == index.len()`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn lb_f64_idx_avx2(qd: &[f64], data: &[f64], index: &[u32], out: &mut [f64]) {
        let w = qd.len();
        let n = out.len();
        let base = data.as_ptr();
        let mut i = 0;
        while i + 4 <= n {
            let r0 = base.add(*index.get_unchecked(i) as usize * w);
            let r1 = base.add(*index.get_unchecked(i + 1) as usize * w);
            let r2 = base.add(*index.get_unchecked(i + 2) as usize * w);
            let r3 = base.add(*index.get_unchecked(i + 3) as usize * w);
            let mut m = _mm256_setzero_pd();
            for j in 0..w {
                let x = _mm256_set_pd(*r3.add(j), *r2.add(j), *r1.add(j), *r0.add(j));
                let q = _mm256_set1_pd(*qd.get_unchecked(j));
                m = _mm256_max_pd(abs_pd(_mm256_sub_pd(q, x)), m);
            }
            _mm256_storeu_pd(out.as_mut_ptr().add(i), m);
            i += 4;
        }
        for r in i..n {
            let id = index[r] as usize;
            out[r] = ScanKernel::row_max(qd, &data[id * w..id * w + w]);
        }
    }

    /// 8 rows of f32 per step over **planar** (column-major) storage:
    /// `cols[j][i]` is the f32 filter value of local row `i` against pivot
    /// `j`, so every inner step is one contiguous `loadu` per column — no
    /// per-lane scalar gather, which is what lets f32 actually cash in its
    /// halved bytes and doubled lanes. Row maxes are widened to f64 and
    /// slack-adjusted in-register (`max(m − slack, +0)` — `_mm256_max_pd(x,
    /// 0)` matches the scalar `clamp_pos`, including for `NaN` and `−0`).
    ///
    /// # Safety
    /// Caller verified AVX2; every `cols[j].len() == out.len()`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn lb_f32_planar_avx2(qd: &[f32], cols: &[&[f32]], slack: f64, out: &mut [f64]) {
        let w = qd.len();
        let n = out.len();
        debug_assert_eq!(cols.len(), w);
        let slk = _mm256_set1_pd(slack);
        let zero = _mm256_setzero_pd();
        let mut i = 0;
        while i + 8 <= n {
            let mut m = _mm256_setzero_ps();
            for j in 0..w {
                let x = _mm256_loadu_ps(cols.get_unchecked(j).as_ptr().add(i));
                let q = _mm256_set1_ps(*qd.get_unchecked(j));
                m = _mm256_max_ps(abs_ps(_mm256_sub_ps(q, x)), m);
            }
            let lo = _mm256_max_pd(
                _mm256_sub_pd(_mm256_cvtps_pd(_mm256_castps256_ps128(m)), slk),
                zero,
            );
            let hi = _mm256_max_pd(
                _mm256_sub_pd(_mm256_cvtps_pd(_mm256_extractf128_ps(m, 1)), slk),
                zero,
            );
            _mm256_storeu_pd(out.as_mut_ptr().add(i), lo);
            _mm256_storeu_pd(out.as_mut_ptr().add(i + 4), hi);
            i += 8;
        }
        for (r, o) in out.iter_mut().enumerate().take(n).skip(i) {
            *o = adjust_f32(ScanKernel::row_max_f32_planar(qd, cols, r), slack);
        }
    }

    /// 2 rows of f64 per step (SSE2 baseline).
    ///
    /// # Safety
    /// `rows.len() == out.len() * qd.len()` (SSE2 is baseline on x86-64).
    #[target_feature(enable = "sse2")]
    pub unsafe fn lb_f64_sse2(qd: &[f64], rows: &[f64], out: &mut [f64]) {
        let w = qd.len();
        let n = out.len();
        let base = rows.as_ptr();
        let mut i = 0;
        while i + 2 <= n {
            let r0 = base.add(i * w);
            let r1 = r0.add(w);
            let mut m = _mm_setzero_pd();
            for j in 0..w {
                let x = _mm_set_pd(*r1.add(j), *r0.add(j));
                let q = _mm_set1_pd(*qd.get_unchecked(j));
                m = _mm_max_pd(abs_pd128(_mm_sub_pd(q, x)), m);
            }
            _mm_storeu_pd(out.as_mut_ptr().add(i), m);
            i += 2;
        }
        for r in i..n {
            out[r] = ScanKernel::row_max(qd, &rows[r * w..(r + 1) * w]);
        }
    }

    /// The gather twin of [`lb_f64_sse2`].
    ///
    /// # Safety
    /// Every `index[i] * qd.len() + qd.len()` is in bounds of `data`;
    /// `out.len() == index.len()`.
    #[target_feature(enable = "sse2")]
    pub unsafe fn lb_f64_idx_sse2(qd: &[f64], data: &[f64], index: &[u32], out: &mut [f64]) {
        let w = qd.len();
        let n = out.len();
        let base = data.as_ptr();
        let mut i = 0;
        while i + 2 <= n {
            let r0 = base.add(*index.get_unchecked(i) as usize * w);
            let r1 = base.add(*index.get_unchecked(i + 1) as usize * w);
            let mut m = _mm_setzero_pd();
            for j in 0..w {
                let x = _mm_set_pd(*r1.add(j), *r0.add(j));
                let q = _mm_set1_pd(*qd.get_unchecked(j));
                m = _mm_max_pd(abs_pd128(_mm_sub_pd(q, x)), m);
            }
            _mm_storeu_pd(out.as_mut_ptr().add(i), m);
            i += 2;
        }
        for r in i..n {
            let id = index[r] as usize;
            out[r] = ScanKernel::row_max(qd, &data[id * w..id * w + w]);
        }
    }

    /// 4 rows of f32 per step (SSE2 baseline) over planar storage, widened
    /// and slack-adjusted. See [`lb_f32_planar_avx2`] for the layout.
    ///
    /// # Safety
    /// Every `cols[j].len() == out.len()`.
    #[target_feature(enable = "sse2")]
    pub unsafe fn lb_f32_planar_sse2(qd: &[f32], cols: &[&[f32]], slack: f64, out: &mut [f64]) {
        let w = qd.len();
        let n = out.len();
        debug_assert_eq!(cols.len(), w);
        let slk = _mm_set1_pd(slack);
        let zero = _mm_setzero_pd();
        let mut i = 0;
        while i + 4 <= n {
            let mut m = _mm_setzero_ps();
            for j in 0..w {
                let x = _mm_loadu_ps(cols.get_unchecked(j).as_ptr().add(i));
                let q = _mm_set1_ps(*qd.get_unchecked(j));
                m = _mm_max_ps(abs_ps128(_mm_sub_ps(q, x)), m);
            }
            let lo = _mm_max_pd(_mm_sub_pd(_mm_cvtps_pd(m), slk), zero);
            let hi = _mm_max_pd(_mm_sub_pd(_mm_cvtps_pd(_mm_movehl_ps(m, m)), slk), zero);
            _mm_storeu_pd(out.as_mut_ptr().add(i), lo);
            _mm_storeu_pd(out.as_mut_ptr().add(i + 2), hi);
            i += 4;
        }
        for (r, o) in out.iter_mut().enumerate().take(n).skip(i) {
            *o = adjust_f32(ScanKernel::row_max_f32_planar(qd, cols, r), slack);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn portable_is_always_available_and_best_is_last() {
        let tiers = available_tiers();
        assert_eq!(tiers[0], SimdTier::Portable);
        assert!(tiers.contains(&tier()));
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(SimdTier::Portable.label(), "portable");
        assert_eq!(SimdTier::Sse2.label(), "sse2");
        assert_eq!(SimdTier::Avx2.label(), "avx2");
    }
}
