//! Bench target for Table 2: dataset generation + statistics.

use criterion::{criterion_group, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2_datasets");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(400));
    g.measurement_time(std::time::Duration::from_millis(1600));
    g.bench_function("la_generate_2k", |b| b.iter(|| pmi::datasets::la(2000, 42)));
    g.bench_function("words_generate_2k", |b| {
        b.iter(|| pmi::datasets::words(2000, 42))
    });
    g.bench_function("color_generate_500", |b| {
        b.iter(|| pmi::datasets::color(500, 42))
    });
    g.bench_function("synthetic_generate_2k", |b| {
        b.iter(|| pmi::datasets::synthetic(2000, 42))
    });
    let la = pmi::datasets::la(2000, 42);
    g.bench_function("intrinsic_dim_la", |b| {
        b.iter(|| pmi::datasets::dataset_stats(&la, &pmi::L2, 2000, 1))
    });
    g.finish();
}

criterion_group!(benches, bench);
fn main() {
    let t0 = std::time::Instant::now();
    benches();
    // Every bench appends a JSONL run-log line (real runs only; smoke
    // invocations via `cargo test --bench` write nothing).
    pmi_bench::harness::finish_criterion_runlog("datasets", t0);
}
