//! Bench target for Figure 18: MkNNQ vs |P|.

use criterion::{criterion_group, Criterion};
use pmi::builder::{build_index, IndexKind};

fn la_setup(n: usize, l: usize) -> (Vec<Vec<f32>>, Vec<Vec<f32>>, pmi::builder::BuildOptions) {
    let pts = pmi::datasets::la(n, 42);
    let pivots: Vec<Vec<f32>> = pmi::pivots::select_hfi(&pts, &pmi::L2, l, 42)
        .into_iter()
        .map(|i| pts[i].clone())
        .collect();
    let opts = pmi::builder::BuildOptions {
        num_pivots: l,
        d_plus: 14143.0,
        maxnum: (n / 64).max(64),
        ..Default::default()
    };
    (pts, pivots, opts)
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig18_pivots_la3k");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(400));
    g.measurement_time(std::time::Duration::from_millis(1600));
    for l in [1usize, 5, 9] {
        let (pts, pivots, opts) = la_setup(3000, l);
        for kind in [IndexKind::Mvpt, IndexKind::Spb, IndexKind::OmniR] {
            let idx = build_index(kind, pts.clone(), pmi::L2, pivots.clone(), &opts).unwrap();
            g.bench_function(format!("{}/P{l}", kind.label()), |b| {
                let mut qi = 0usize;
                b.iter(|| {
                    qi = (qi + 131) % pts.len();
                    idx.knn_query(&pts[qi], 20)
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
fn main() {
    let t0 = std::time::Instant::now();
    benches();
    // Every bench appends a JSONL run-log line (real runs only; smoke
    // invocations via `cargo test --bench` write nothing).
    pmi_bench::harness::finish_criterion_runlog("pivot_count", t0);
}
