//! Build-throughput bench for the shared pivot-distance matrix path
//! (ISSUE 3), plus a serve-QPS check against the pre-change baseline.
//!
//! Two measurement groups, both emitted as machine-readable trajectory
//! points at the workspace root when run as a real bench
//! (`cargo bench -p pmi-bench --bench build_throughput`):
//!
//! * **`BENCH_build.json`** — LAESA engine build wall-clock vs worker
//!   `threads` vs shard count `P`, for both partition policies, with the
//!   exact `build_compdists` from [`BuildStats`]. The shared-matrix path
//!   computes the `n × l` matrix once in parallel and every shard adopts
//!   its slice, so build time scales with cores and shard-side compdists
//!   are zero.
//! * **`BENCH_engine.json`** — batch serve QPS in the exact shape of the
//!   pre-change `engine_qps` run (MVPT shards, 256 mixed queries over LA
//!   n = 8000), compared against the hard-coded pre-change baseline
//!   measured on the same machine immediately before the zero-allocation
//!   serve path landed, plus an interleaved in-process A/B of the
//!   allocating `execute` path against the scratch-reusing `execute_with`
//!   path (immune to machine drift between runs). `regression_ok` gates on
//!   the A/B: the scratch path must never be slower than the allocating
//!   path; absolute QPS vs the recorded baseline rides along as trajectory
//!   data. The `sched` group adds the scale-tier shard-scaling gate:
//!   LAESA over synthetic `n = 10⁵` at `P ∈ {1, 8}`, for both partition
//!   policies and both filter-column modes (f64 and f32). On this
//!   repository's single-core reference machine extra shards buy nothing
//!   from parallelism, so `scaling_ok` asks for *work reduction*: at
//!   least one `P = 8` point must reach the batch QPS of its matching
//!   policy-and-mode `P = 1` point, delivered by threshold-seeded kNN
//!   carryover across the sequential probe order (and, under
//!   pivot-space routing, whole-shard pruning). Every point and its
//!   P8/P1 ratio is committed alongside the gate.
//!
//! Real measurement mode requires `cargo bench` (cargo passes `--bench`);
//! any other invocation (e.g. `cargo test --bench build_throughput`) runs
//! everything once at a reduced scale as a smoke test and writes no files.

use pmi::builder::{BuildOptions, IndexKind};
use pmi::engine::{EngineConfig, Query};
use pmi::{build_sharded_vector_engine, datasets, ColumnMode, LInf, PartitionPolicy, L2};
use pmi_bench::harness::{append_runlog, TrajectoryPoint};
use std::fmt::Write as _;
use std::time::Instant;

/// Pre-change serve baseline (mean batch milliseconds, 256-query batch),
/// measured with `cargo bench -p pmi-bench --bench engine_qps` on commit
/// e09c6a2 (before the shared-matrix / zero-allocation serve path) on this
/// repository's reference machine. QPS = 256 / (ms / 1000).
const BASELINE_BATCH_MS: &[(&str, usize, f64)] = &[
    ("round-robin", 1, 2.006),
    ("pivot-space", 1, 2.081),
    ("round-robin", 2, 2.787),
    ("pivot-space", 2, 2.568),
    ("round-robin", 4, 4.828),
    ("pivot-space", 4, 3.704),
    ("round-robin", 8, 6.736),
    ("pivot-space", 8, 3.597),
];

const BATCH: usize = 256;

fn la_batch(pts: &[Vec<f32>], queries: usize, radius: f64) -> Vec<Query<Vec<f32>>> {
    (0..queries)
        .map(|i| {
            let q = pts[(i * 131) % pts.len()].clone();
            if i % 2 == 0 {
                Query::range(q, radius)
            } else {
                Query::knn(q, 10)
            }
        })
        .collect()
}

struct BuildPoint {
    policy: &'static str,
    shards: usize,
    threads: usize,
    wall_secs: f64,
    compdists: u64,
}

struct ServePoint {
    policy: &'static str,
    shards: usize,
    qps_mean: f64,
    qps_best: f64,
    baseline_qps: f64,
    /// Allocating `execute` time / scratch-reusing `execute_with` time for
    /// the same batch, interleaved in-process (> 1 means scratch is faster).
    scratch_speedup: f64,
}

fn main() {
    // `cargo bench` passes `--bench`; anything else (notably `cargo test
    // --bench build_throughput`, which passes no flags) is a smoke run.
    let smoke = !std::env::args().any(|a| a == "--bench");
    let n = if smoke { 2_000 } else { 8_000 };
    let reps = if smoke { 1 } else { 3 };
    let pts = datasets::la(n, 42);
    let opts = BuildOptions {
        d_plus: 14143.0,
        maxnum: 128,
        ..BuildOptions::default()
    };

    // ---- Build throughput: wall-clock vs threads vs P (LAESA adopts the
    // shared matrix, so this measures the parallel matrix + adoption path).
    let mut build_points = Vec::new();
    for policy in [PartitionPolicy::RoundRobin, PartitionPolicy::PivotSpace] {
        for threads in [1usize, 2, 4] {
            for shards in [2usize, 8] {
                let mut best = f64::INFINITY;
                let mut compdists = 0;
                for _ in 0..reps {
                    let engine = build_sharded_vector_engine(
                        IndexKind::Laesa,
                        pts.clone(),
                        L2,
                        &opts,
                        &EngineConfig {
                            shards,
                            threads,
                            ..EngineConfig::default()
                        },
                        policy,
                    )
                    .expect("buildable");
                    let stats = engine.build_stats();
                    best = best.min(stats.build_wall_secs);
                    compdists = stats.build_compdists;
                }
                println!(
                    "build_throughput/laesa/{}/P{shards}/T{threads}: {:.4}s, {compdists} compdists",
                    policy.label(),
                    best
                );
                build_points.push(BuildPoint {
                    policy: policy.label(),
                    shards,
                    threads,
                    wall_secs: best,
                    compdists,
                });
            }
        }
    }

    // ---- Serve QPS in the pre-change engine_qps shape (MVPT shards).
    let radius = datasets::calibrate_radius(&pts, &L2, 0.04, 42);
    let batch = la_batch(&pts, BATCH, radius);
    let mut serve_points = Vec::new();
    let mut last_engine = None;
    for &(policy_label, shards, baseline_ms) in BASELINE_BATCH_MS {
        let policy = if policy_label == "round-robin" {
            PartitionPolicy::RoundRobin
        } else {
            PartitionPolicy::PivotSpace
        };
        let engine = build_sharded_vector_engine(
            IndexKind::Mvpt,
            pts.clone(),
            L2,
            &opts,
            &EngineConfig {
                shards,
                threads: 0,
                ..EngineConfig::default()
            },
            policy,
        )
        .expect("buildable");
        // Warm up the per-worker scratch buffers, then sample per-batch
        // times; the best window approximates undisturbed throughput on a
        // shared machine, the mean includes whatever interference occurred.
        let iters = if smoke { 1 } else { 60 };
        for _ in 0..iters.min(5) {
            let _ = engine.serve(&batch);
        }
        let mut samples = Vec::with_capacity(iters);
        for _ in 0..iters {
            let t0 = Instant::now();
            let _ = engine.serve(&batch);
            samples.push(t0.elapsed().as_secs_f64());
        }
        let mean_secs = samples.iter().sum::<f64>() / samples.len() as f64;
        let best_secs = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let qps_mean = BATCH as f64 / mean_secs;
        let qps_best = BATCH as f64 / best_secs;
        let baseline_qps = BATCH as f64 / (baseline_ms * 1e-3);

        // Interleaved A/B of the allocating vs scratch-reusing per-query
        // paths in the same process: machine drift hits both sides equally,
        // so best-of-reps converges to the true ratio. Order alternates per
        // rep to cancel any first-mover bias.
        let reps = if smoke { 1 } else { 40 };
        let mut alloc_best = f64::INFINITY;
        let mut scratch_best = f64::INFINITY;
        let mut scratch = pmi::EngineScratch::new();
        let run_alloc = |best: &mut f64| {
            let t0 = Instant::now();
            for q in &batch {
                std::hint::black_box(engine.execute(q));
            }
            *best = best.min(t0.elapsed().as_secs_f64());
        };
        for rep in 0..reps {
            if rep % 2 == 0 {
                run_alloc(&mut alloc_best);
            }
            let t0 = Instant::now();
            for q in &batch {
                std::hint::black_box(engine.execute_with(q, &mut scratch));
            }
            scratch_best = scratch_best.min(t0.elapsed().as_secs_f64());
            if rep % 2 == 1 {
                run_alloc(&mut alloc_best);
            }
        }
        let scratch_speedup = alloc_best / scratch_best;

        println!(
            "engine_qps/{policy_label}/P{shards}: mean {qps_mean:.0} q/s, best {qps_best:.0} q/s \
             (pre-change baseline {baseline_qps:.0}), scratch speedup {scratch_speedup:.3}x"
        );
        serve_points.push(ServePoint {
            policy: policy_label,
            shards,
            qps_mean,
            qps_best,
            baseline_qps,
            scratch_speedup,
        });
        last_engine = Some(engine);
    }

    // ---- Scale-tier shard scaling (`sched`): the committed acceptance
    // gate for query-parallel batch scheduling. LAESA engines over the
    // paper's synthetic recipe at n = 10^5, P ∈ {1, 8}, both partition
    // policies × both column modes, serving the same 64-query mixed
    // batch. On a single-core host P = 8 cannot win by parallelism, only
    // by doing *less work* than P = 1: the sequential probe order feeds
    // each shard's kNN scan the global top-k threshold, so later shards
    // prune against an already-tight radius instead of rebuilding it
    // from scratch, and pivot-space routing additionally skips whole
    // shards per query. `scaling_ok` gates on at least one P = 8 point
    // reaching its matching policy-and-mode P = 1 QPS; the remaining
    // points and their P8/P1 ratios are committed as the contrast.
    let scale_n = if smoke { 4_000 } else { 100_000 };
    let sched_iters = if smoke { 1 } else { 15 };
    const SCHED_BATCH: usize = 64;
    let spts = datasets::synthetic(scale_n, 42);
    let smetric = LInf::discrete();
    let sradius = datasets::calibrate_radius(&spts, &smetric, 0.01, 42);
    let sbatch: Vec<Query<Vec<f32>>> = (0..SCHED_BATCH)
        .map(|i| {
            let q = spts[(i * 131) % spts.len()].clone();
            if i % 2 == 0 {
                Query::range(q, sradius)
            } else {
                Query::knn(q, 10)
            }
        })
        .collect();
    let sopts = BuildOptions {
        d_plus: 10_000.0,
        maxnum: (scale_n / 64).max(64),
        ..BuildOptions::default()
    };
    struct SchedPoint {
        policy: &'static str,
        mode: &'static str,
        shards: usize,
        qps: f64,
        strategy: &'static str,
    }
    let mut sched_points: Vec<SchedPoint> = Vec::new();
    for (column_mode, mode) in [(ColumnMode::F64, "f64"), (ColumnMode::F32, "f32")] {
        for policy in [PartitionPolicy::RoundRobin, PartitionPolicy::PivotSpace] {
            for shards in [1usize, 8] {
                let engine = build_sharded_vector_engine(
                    IndexKind::Laesa,
                    spts.clone(),
                    smetric,
                    &BuildOptions {
                        column_mode,
                        ..sopts.clone()
                    },
                    &EngineConfig {
                        shards,
                        threads: 0,
                        ..EngineConfig::default()
                    },
                    policy,
                )
                .expect("buildable");
                let mut strategy = "";
                let mut best = f64::INFINITY;
                for _ in 0..sched_iters.min(3) {
                    let _ = engine.serve(&sbatch);
                }
                for _ in 0..sched_iters {
                    let t0 = Instant::now();
                    let out = engine.serve(&sbatch);
                    best = best.min(t0.elapsed().as_secs_f64());
                    strategy = out.report.strategy.label();
                }
                let qps = SCHED_BATCH as f64 / best;
                println!(
                    "sched/laesa/synthetic/n{scale_n}/{}/{mode}/P{shards}: {qps:.0} q/s \
                     ({strategy})",
                    policy.label()
                );
                sched_points.push(SchedPoint {
                    policy: policy.label(),
                    mode,
                    shards,
                    qps,
                    strategy,
                });
            }
        }
    }
    let scaling_ok = sched_points.iter().filter(|p| p.shards == 8).any(|p8| {
        sched_points
            .iter()
            .find(|p1| p1.shards == 1 && p1.policy == p8.policy && p1.mode == p8.mode)
            .is_some_and(|p1| p8.qps >= p1.qps)
    });
    println!("sched/laesa/synthetic/n{scale_n}: scaling_ok = {scaling_ok}");

    if smoke {
        println!("build_throughput: ok (smoke)");
        return;
    }

    // ---- Emit trajectory points at the workspace root (shared writer:
    // schema version + config fingerprint stamped uniformly).
    let mut points_json = String::from("[\n");
    for (i, p) in build_points.iter().enumerate() {
        writeln!(
            points_json,
            "    {{\"policy\": \"{}\", \"shards\": {}, \"threads\": {}, \"build_wall_secs\": {:.6}, \"build_compdists\": {}}}{}",
            p.policy,
            p.shards,
            p.threads,
            p.wall_secs,
            p.compdists,
            if i + 1 < build_points.len() { "," } else { "" }
        )
        .unwrap();
    }
    points_json.push_str("  ]");
    let build_traj = TrajectoryPoint::new(
        "build_throughput",
        &[
            ("index", "\"LAESA\"".into()),
            ("dataset", "\"la\"".into()),
            ("n", n.to_string()),
            ("pivots", opts.num_pivots.to_string()),
        ],
    );
    let mut build_log = build_traj.runlog();
    for p in &build_points {
        build_log.record(
            &format!("build.{}.P{}.T{}", p.policy, p.shards, p.threads),
            1,
            p.wall_secs,
            &[("compdists", p.compdists)],
        );
    }
    build_traj
        .field_raw("points", &points_json)
        .write("BENCH_build.json");
    append_runlog(&build_log);

    // The regression gate is the drift-immune in-process A/B: the
    // scratch-reusing hot path must never be slower than the allocating
    // path under identical conditions. Cross-run absolute QPS (vs the
    // recorded pre-change baseline) is kept as trajectory data — on a
    // shared single-core box it moves several percent between runs in both
    // directions, so it informs but does not gate.
    let regression_ok = serve_points.iter().all(|p| p.scratch_speedup >= 1.0);
    let mut points_json = String::from("[\n");
    for (i, p) in serve_points.iter().enumerate() {
        writeln!(
            points_json,
            "    {{\"policy\": \"{}\", \"shards\": {}, \"qps_mean\": {:.0}, \"qps_best\": {:.0}, \
             \"baseline_qps\": {:.0}, \"scratch_speedup\": {:.3}}}{}",
            p.policy,
            p.shards,
            p.qps_mean,
            p.qps_best,
            p.baseline_qps,
            p.scratch_speedup,
            if i + 1 < serve_points.len() { "," } else { "" }
        )
        .unwrap();
    }
    points_json.push_str("  ]");
    let engine_traj = TrajectoryPoint::new(
        "engine_qps",
        &[
            ("index", "\"MVPT\"".into()),
            ("dataset", "\"la\"".into()),
            ("n", n.to_string()),
            ("batch", BATCH.to_string()),
        ],
    );
    let mut serve_log = engine_traj.runlog();
    for p in &serve_points {
        serve_log.record(
            &format!("serve.{}.P{}", p.policy, p.shards),
            1,
            BATCH as f64 / p.qps_best,
            &[("batch", BATCH as u64), ("shards", p.shards as u64)],
        );
    }
    // The last engine's own phase tree (build/serve.plan/serve.scan/...,
    // exact counter deltas included) rides along when obs is compiled in.
    if let Some(engine) = last_engine {
        serve_log.extend_from(&engine.metrics());
    }
    let mut sched_json = String::new();
    write!(
        sched_json,
        "{{\"n\": {scale_n}, \"batch\": {SCHED_BATCH}, \"scaling_ok\": {scaling_ok}, \
         \"points\": ["
    )
    .unwrap();
    for (i, p) in sched_points.iter().enumerate() {
        let p1_qps = sched_points
            .iter()
            .find(|q| q.shards == 1 && q.policy == p.policy && q.mode == p.mode)
            .map_or(p.qps, |q| q.qps);
        write!(
            sched_json,
            "{}{{\"policy\": \"{}\", \"mode\": \"{}\", \"shards\": {}, \"qps\": {:.0}, \
             \"vs_p1\": {:.3}, \"strategy\": \"{}\"}}",
            if i > 0 { ", " } else { "" },
            p.policy,
            p.mode,
            p.shards,
            p.qps,
            p.qps / p1_qps,
            p.strategy
        )
        .unwrap();
    }
    sched_json.push_str("]}");
    for p in &sched_points {
        serve_log.record(
            &format!("sched.{}.{}.P{}", p.policy, p.mode, p.shards),
            sched_iters as u64,
            SCHED_BATCH as f64 / p.qps,
            &[("batch", SCHED_BATCH as u64), ("n", scale_n as u64)],
        );
    }
    engine_traj
        .field_str(
            "baseline_commit",
            "e09c6a2 (pre shared-matrix / zero-allocation serve)",
        )
        .field_bool("regression_ok", regression_ok)
        .field_raw("points", &points_json)
        .field_raw("sched", &sched_json)
        .write("BENCH_engine.json");
    append_runlog(&serve_log);
    println!("regression_ok = {regression_ok}");
}
