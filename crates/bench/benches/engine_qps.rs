//! Bench target for the serving engine: batch throughput (QPS) vs shard
//! count, against the serial single-index baseline, on the synthetic LA
//! dataset (the ROADMAP's "serve heavy traffic" direction; not a figure of
//! the paper). Each sharded configuration runs under both partition
//! policies so the routed engine's QPS and shard-probe counts can be
//! compared with round-robin directly; the exact probe/prune totals per
//! configuration are printed once before measuring.

use criterion::{criterion_group, Criterion};
use pmi::builder::{build_vector_index, BuildOptions, IndexKind};
use pmi::engine::{EngineConfig, Query};
use pmi::{build_sharded_vector_engine, PartitionPolicy, L2};

fn la_batch(pts: &[Vec<f32>], queries: usize, radius: f64) -> Vec<Query<Vec<f32>>> {
    (0..queries)
        .map(|i| {
            let q = pts[(i * 131) % pts.len()].clone();
            if i % 2 == 0 {
                Query::range(q, radius)
            } else {
                Query::knn(q, 10)
            }
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let pts = pmi::datasets::la(8_000, 42);
    let radius = pmi::datasets::calibrate_radius(&pts, &L2, 0.04, 42);
    let opts = BuildOptions {
        d_plus: 14143.0,
        maxnum: 128,
        ..BuildOptions::default()
    };
    let batch = la_batch(&pts, 256, radius);

    let mut g = c.benchmark_group("engine_qps_la8k");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(400));
    g.measurement_time(std::time::Duration::from_millis(1600));

    // Serial baseline: one unsharded index, queries run one after another.
    let single = build_vector_index(IndexKind::Mvpt, pts.clone(), L2, &opts).unwrap();
    g.bench_function("serial_baseline", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for q in &batch {
                match q {
                    Query::Range { q, radius } => hits += single.range_query(q, *radius).len(),
                    Query::Knn { q, k } => hits += single.knn_query(q, *k).len(),
                }
            }
            hits
        })
    });

    for shards in [1usize, 2, 4, 8] {
        for policy in [PartitionPolicy::RoundRobin, PartitionPolicy::PivotSpace] {
            let engine = build_sharded_vector_engine(
                IndexKind::Mvpt,
                pts.clone(),
                L2,
                &opts,
                &EngineConfig {
                    shards,
                    threads: 0,
                    ..EngineConfig::default()
                },
                policy,
            )
            .unwrap();
            // One measured serve up front: the probe/prune counters are
            // exact, so this is the policy comparison the bench exists for.
            engine.reset_counters();
            let probe = engine.serve(&batch);
            println!(
                "engine_qps_la8k P={shards} [{}]: {} probes / {} pruned ({:.1}% skipped), \
                 {} compdists",
                policy.label(),
                probe.report.shards_probed,
                probe.report.shards_pruned,
                probe.report.prune_rate() * 100.0,
                probe.report.cost.compdists
            );
            g.bench_function(format!("sharded/{}/P{shards}", policy.label()), |b| {
                b.iter(|| engine.serve(&batch).report.total_results)
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
fn main() {
    let t0 = std::time::Instant::now();
    benches();
    // Every bench appends a JSONL run-log line (real runs only; smoke
    // invocations via `cargo test --bench` write nothing).
    pmi_bench::harness::finish_criterion_runlog("engine_qps", t0);
}
