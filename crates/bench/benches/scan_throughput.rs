//! Scan-kernel and serve-path throughput bench for the vectorized
//! pivot-filter work (ISSUE 5): blocked vs scalar lower-bound kernel,
//! locked vs snapshot matrix reads in the serve loop, and post-churn QPS
//! recovery through matrix compaction.
//!
//! Emitted as a machine-readable trajectory point at the workspace root
//! when run as a real bench (`cargo bench -p pmi-bench --bench
//! scan_throughput`):
//!
//! * **`BENCH_scan.json`** — three measurement groups:
//!   1. `kernel`: lower-bound throughput (rows/s) of the blocked
//!      [`ScanKernel`] against the scalar per-row `pivot_lower_bound`
//!      reference over the same LAESA-shaped `8k × 5` flat matrix,
//!      interleaved in-process so machine drift cancels. Also the f32
//!      filter-column kernel against the f64 blocked kernel (gated
//!      `f32_speedup_ok` at ≥ 1.5× — half the bytes streamed), the
//!      dispatched SIMD tier, and a paper-scale (`10⁵` synthetic rows)
//!      point for both widths. The `f32` group holds the end-to-end
//!      gate: an F32-mode LAESA engine must serve byte-identical answers
//!      (`exact_ok`), with its QPS riding along.
//!   2. `serve`: batch-serving QPS at `P = 8` of two engines over
//!      identical shards and queries — one whose shards are the *old*
//!      scan shape (`RwLock::read` per scan + per-row scalar lower
//!      bounds), one with the real snapshot + blocked-kernel LAESA — the
//!      locked-vs-lock-free A/B of the serve hot loop.
//!   3. `obs` / `trace`: the zero-overhead acceptance gates — serve QPS
//!      with the obs runtime switch on vs off, and with a live 1-in-8
//!      sampling `TracePolicy` vs tracing disabled, each interleaved
//!      in-process and gated at ≤ 2% (`overhead_ok`).
//!   4. `robust`: the fault-tolerance gates — serve QPS with a
//!      never-binding query budget armed vs budgets disabled (same ≤ 2%
//!      interleaved A/B, `overhead_ok`), plus a deadline-pressure sweep
//!      on a single-threaded engine where tightening compdist caps must
//!      degrade monotonically more queries to subsets of the exact
//!      answer and a 1 ns batch deadline must shed the whole batch
//!      (`degraded_ok`).
//!   5. `compaction`: serve QPS after the PR-4 churn workload (2k routed
//!      inserts + 2k removes on LA `n = 8k`) with tombstoned matrix rows
//!      still in place, after `engine.compact()`, and on a no-churn
//!      baseline engine built fresh over the same surviving objects.
//!
//! Real measurement mode requires `cargo bench` (cargo passes `--bench`);
//! any other invocation (e.g. `cargo test --bench scan_throughput`) runs
//! everything once at a reduced scale as a smoke test and writes no files.

use pmi::builder::{BuildOptions, IndexKind};
use pmi::engine::{EngineConfig, Query, ShardedEngine};
use pmi::lemmas::{self, pivot_lower_bound};
use pmi::{
    build_sharded_vector_engine, datasets, Counters, CountingMetric, Metric, MetricIndex, Neighbor,
    ObjId, PartitionPolicy, PivotMatrix, QueryBudget, QueryScratch, RefreshPolicy, ScanKernel,
    ServeBudget, StorageFootprint, UpdateBatch, L2,
};
use pmi_bench::harness::{append_runlog, TrajectoryPoint};
use std::fmt::Write as _;
use std::sync::RwLock;
use std::time::Instant;

const SHARDS: usize = 8;
const BATCH: usize = 256;

/// The pre-ISSUE-5 scan shape, kept here as the measurement counterpart:
/// the pivot matrix behind a reader-writer lock, one `read()` guard
/// acquired per query scan, and one scalar `pivot_lower_bound` call per
/// row. Queries are byte-identical to the real LAESA's; only the
/// synchronization discipline and the filter loop differ.
struct LockedLaesa {
    metric: CountingMetric<L2>,
    pivots: Vec<Vec<f32>>,
    matrix: RwLock<PivotMatrix>,
    objects: Vec<Vec<f32>>,
}

impl LockedLaesa {
    fn build(objects: Vec<Vec<f32>>, pivots: Vec<Vec<f32>>) -> Self {
        let metric = CountingMetric::new(L2);
        let matrix = PivotMatrix::compute(&objects, &metric, &pivots, 1);
        metric.reset();
        LockedLaesa {
            metric,
            pivots,
            matrix: RwLock::new(matrix),
            objects,
        }
    }
}

impl MetricIndex<Vec<f32>> for LockedLaesa {
    fn name(&self) -> &str {
        "LockedLAESA"
    }

    fn len(&self) -> usize {
        self.objects.len()
    }

    fn range_query(&self, q: &Vec<f32>, r: f64) -> Vec<ObjId> {
        let mut out = Vec::new();
        self.range_query_into(q, r, &mut QueryScratch::new(), &mut out);
        out
    }

    fn knn_query(&self, q: &Vec<f32>, k: usize) -> Vec<Neighbor> {
        let mut out = Vec::new();
        self.knn_query_into(q, k, &mut QueryScratch::new(), &mut out);
        out
    }

    fn range_query_into(
        &self,
        q: &Vec<f32>,
        r: f64,
        scratch: &mut QueryScratch,
        out: &mut Vec<ObjId>,
    ) {
        scratch.qd.clear();
        scratch
            .qd
            .extend(self.pivots.iter().map(|p| self.metric.dist(q, p)));
        // One lock acquire per scan, one scalar lower bound per row.
        let rows = self.matrix.read().expect("matrix lock");
        for (i, o) in self.objects.iter().enumerate() {
            if lemmas::lemma1_prunable(&scratch.qd, rows.row(i), r) {
                continue;
            }
            if self.metric.dist(q, o) <= r {
                out.push(i as ObjId);
            }
        }
    }

    fn knn_query_into(
        &self,
        q: &Vec<f32>,
        k: usize,
        scratch: &mut QueryScratch,
        out: &mut Vec<Neighbor>,
    ) {
        if k == 0 {
            return;
        }
        scratch.qd.clear();
        scratch
            .qd
            .extend(self.pivots.iter().map(|p| self.metric.dist(q, p)));
        scratch.heap.clear();
        let rows = self.matrix.read().expect("matrix lock");
        for (i, o) in self.objects.iter().enumerate() {
            let radius = if scratch.heap.len() < k {
                f64::INFINITY
            } else {
                scratch.heap.peek().expect("heap is full").dist
            };
            if radius.is_finite() && lemmas::lemma1_prunable(&scratch.qd, rows.row(i), radius) {
                continue;
            }
            let d = self.metric.dist(q, o);
            if d < radius || scratch.heap.len() < k {
                scratch.heap.push(Neighbor::new(i as ObjId, d));
                if scratch.heap.len() > k {
                    scratch.heap.pop();
                }
            }
        }
        let start = out.len();
        while let Some(nb) = scratch.heap.pop() {
            out.push(nb);
        }
        out[start..].reverse();
    }

    fn insert(&mut self, _o: Vec<f32>) -> ObjId {
        unimplemented!("measurement-only index")
    }

    fn remove(&mut self, _id: ObjId) -> bool {
        false
    }

    fn get(&self, id: ObjId) -> Option<Vec<f32>> {
        self.objects.get(id as usize).cloned()
    }

    fn storage(&self) -> StorageFootprint {
        StorageFootprint::mem(0)
    }

    fn counters(&self) -> Counters {
        Counters {
            compdists: self.metric.count(),
            ..Counters::default()
        }
    }

    fn reset_counters(&self) {
        self.metric.reset();
    }
}

fn la_batch(pts: &[Vec<f32>], queries: usize, radius: f64) -> Vec<Query<Vec<f32>>> {
    (0..queries)
        .map(|i| {
            let q = pts[(i * 131) % pts.len()].clone();
            if i % 2 == 0 {
                Query::range(q, radius)
            } else {
                Query::knn(q, 10)
            }
        })
        .collect()
}

fn serve_qps(e: &ShardedEngine<Vec<f32>>, batch: &[Query<Vec<f32>>], iters: usize) -> f64 {
    for _ in 0..iters.min(3) {
        let _ = e.serve(batch);
    }
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t0 = Instant::now();
        let _ = e.serve(batch);
        best = best.min(t0.elapsed().as_secs_f64());
    }
    batch.len() as f64 / best
}

/// Interleaved paired A/B: per rep, runs `side(true)` and `side(false)`
/// back to back in alternating order, returning each side's best wall and
/// the **median of per-rep off/on wall ratios**. Best-of per side cannot
/// cancel machine-wide drift (a noisy-neighbor patch can hand one side a
/// lucky floor the other never sees); a paired ratio can, because both
/// sides of a pair share the same patch of machine time — so the ≤2%
/// overhead gates are decided by the median ratio, while the best walls
/// still report each side's observed throughput ceiling.
fn paired_ab(reps: usize, mut side: impl FnMut(bool) -> f64) -> (f64, f64, f64) {
    let (mut best_on, mut best_off) = (f64::INFINITY, f64::INFINITY);
    let mut ratios = Vec::with_capacity(reps);
    for rep in 0..reps {
        let (t_on, t_off) = if rep % 2 == 0 {
            let on = side(true);
            (on, side(false))
        } else {
            let off = side(false);
            (side(true), off)
        };
        best_on = best_on.min(t_on);
        best_off = best_off.min(t_off);
        ratios.push(t_off / t_on);
    }
    ratios.sort_by(f64::total_cmp);
    (best_on, best_off, ratios[ratios.len() / 2])
}

/// Routing quality of one served batch (fraction of shard probes skipped).
fn prune_rate(e: &ShardedEngine<Vec<f32>>, batch: &[Query<Vec<f32>>]) -> f64 {
    e.reset_counters();
    let out = e.serve(batch);
    out.report.prune_rate()
}

fn main() {
    let smoke = !std::env::args().any(|a| a == "--bench");
    let n = if smoke { 2_000 } else { 8_000 };
    let serve_iters = if smoke { 1 } else { 30 };
    let kernel_reps = if smoke { 2 } else { 200 };
    let pts = datasets::la(n, 42);
    let opts = BuildOptions {
        d_plus: 14143.0,
        ..BuildOptions::default()
    };
    let l = opts.num_pivots;
    let pivots: Vec<Vec<f32>> = pmi::pivots::select_hfi(&pts, &L2, l, opts.seed)
        .into_iter()
        .map(|i| pts[i].clone())
        .collect();
    let radius = datasets::calibrate_radius(&pts, &L2, 0.04, 42);
    let batch = la_batch(&pts, BATCH, radius);

    // ---- 1. Blocked vs scalar kernel throughput over the LAESA matrix.
    let matrix = PivotMatrix::compute(&pts, &L2, &pivots, 1);
    let qd: Vec<f64> = pivots.iter().map(|p| L2.dist(&pts[17], p)).collect();
    let mut blocked = Vec::new();
    let mut scalar = Vec::new();
    let (mut blocked_best, mut scalar_best) = (f64::INFINITY, f64::INFINITY);
    let run_scalar = |out: &mut Vec<f64>, best: &mut f64| {
        let t0 = Instant::now();
        out.clear();
        out.extend((0..n).map(|i| pivot_lower_bound(&qd, matrix.row(i))));
        *best = best.min(t0.elapsed().as_secs_f64());
    };
    let run_blocked = |out: &mut Vec<f64>, best: &mut f64| {
        let t0 = Instant::now();
        ScanKernel::lower_bounds(&qd, matrix.as_slice(), n, out);
        *best = best.min(t0.elapsed().as_secs_f64());
    };
    for rep in 0..kernel_reps {
        // Alternate order per rep so neither side benefits from cache
        // warmup or interference asymmetrically.
        if rep % 2 == 0 {
            run_scalar(&mut scalar, &mut scalar_best);
            run_blocked(&mut blocked, &mut blocked_best);
        } else {
            run_blocked(&mut blocked, &mut blocked_best);
            run_scalar(&mut scalar, &mut scalar_best);
        }
        std::hint::black_box((&blocked, &scalar));
    }
    assert_eq!(blocked, scalar, "kernel must be bit-identical to scalar");
    let blocked_rows_per_sec = n as f64 / blocked_best;
    let scalar_rows_per_sec = n as f64 / scalar_best;
    let kernel_speedup = blocked_rows_per_sec / scalar_rows_per_sec;
    let simd_tier = pmi::metric::simd::tier();
    println!(
        "scan_kernel/laesa/n{n}/l{l}: blocked {blocked_rows_per_sec:.3e} rows/s [{}], \
         scalar {scalar_rows_per_sec:.3e} rows/s, speedup {kernel_speedup:.2}x",
        simd_tier.label()
    );

    // ---- 1b. f32 filter columns: the same matrix in planar f32 columns
    // halves the bytes the kernel streams, so the f32 path must beat the
    // f64 blocked path on rows/s (gated at >= 1.5x); its slack-adjusted
    // bounds must never exceed the exact f64 bounds (admissibility).
    // Columns are materialized exactly as `MatrixSlice` does for an F32
    // engine. Interleaved against a fresh f64 measurement so the ratio is
    // drift-immune.
    let matrix32 = matrix.clone().with_mode(pmi::ColumnMode::F32);
    let cols32_own: Vec<Vec<f32>> = (0..l)
        .map(|j| (0..n).map(|i| matrix.row(i)[j] as f32).collect())
        .collect();
    let cols32: Vec<&[f32]> = cols32_own.iter().map(|c| c.as_slice()).collect();
    let qd32: Vec<f32> = qd.iter().map(|&v| v as f32).collect();
    let qmax = qd.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
    let slack = matrix32.f32_slack(qmax);
    let mut f64_paired = Vec::new();
    let mut f32_out = Vec::new();
    let (mut f64_paired_best, mut f32_best) = (f64::INFINITY, f64::INFINITY);
    let run_f32 = |out: &mut Vec<f64>, best: &mut f64| {
        let t0 = Instant::now();
        ScanKernel::lower_bounds_f32(&qd32, &cols32, n, slack, out);
        *best = best.min(t0.elapsed().as_secs_f64());
    };
    for rep in 0..kernel_reps {
        if rep % 2 == 0 {
            run_blocked(&mut f64_paired, &mut f64_paired_best);
            run_f32(&mut f32_out, &mut f32_best);
        } else {
            run_f32(&mut f32_out, &mut f32_best);
            run_blocked(&mut f64_paired, &mut f64_paired_best);
        }
        std::hint::black_box((&f64_paired, &f32_out));
    }
    assert!(
        f32_out
            .iter()
            .zip(&f64_paired)
            .all(|(lo, hi)| *lo >= 0.0 && lo <= hi),
        "f32 bounds must stay admissible (never above the f64 bounds)"
    );
    let f32_rows_per_sec = n as f64 / f32_best;
    let f32_speedup = f64_paired_best / f32_best;
    let f32_speedup_ok = smoke || f32_speedup >= 1.5;
    println!(
        "scan_kernel/laesa/n{n}/l{l}: f32 {f32_rows_per_sec:.3e} rows/s, \
         {f32_speedup:.2}x over f64 blocked (f32_speedup_ok = {f32_speedup_ok})"
    );
    assert!(f32_speedup_ok, "f32 kernel must be >= 1.5x f64 blocked");

    // ---- 1c. Scale tier: the same kernels over the paper-scale synthetic
    // matrix (10^5 rows; the 8k LA matrix is L2-resident, this one is
    // not), so the committed rows/s reflect streaming from memory.
    let scale_n = if smoke { 10_000 } else { 100_000 };
    let scale_reps = if smoke { 1 } else { 40 };
    let spts = datasets::synthetic(scale_n, 42);
    let spivots: Vec<Vec<f32>> = spts[..l].to_vec();
    let smatrix = PivotMatrix::compute(&spts, &pmi::LInf::discrete(), &spivots, 1);
    let smatrix32 = smatrix.clone().with_mode(pmi::ColumnMode::F32);
    let sqd: Vec<f64> = spivots
        .iter()
        .map(|p| pmi::LInf::discrete().dist(&spts[17], p))
        .collect();
    let sqd32: Vec<f32> = sqd.iter().map(|&v| v as f32).collect();
    let sslack = smatrix32.f32_slack(sqd.iter().fold(0.0f64, |m, &v| m.max(v.abs())));
    let scols32_own: Vec<Vec<f32>> = (0..l)
        .map(|j| (0..scale_n).map(|i| smatrix.row(i)[j] as f32).collect())
        .collect();
    let scols32: Vec<&[f32]> = scols32_own.iter().map(|c| c.as_slice()).collect();
    let (mut s64, mut s32) = (Vec::new(), Vec::new());
    let (mut s64_best, mut s32_best) = (f64::INFINITY, f64::INFINITY);
    for rep in 0..scale_reps {
        let a = |s64: &mut Vec<f64>, best: &mut f64| {
            let t0 = Instant::now();
            ScanKernel::lower_bounds(&sqd, smatrix.as_slice(), scale_n, s64);
            *best = best.min(t0.elapsed().as_secs_f64());
        };
        let b = |s32v: &mut Vec<f64>, best: &mut f64| {
            let t0 = Instant::now();
            ScanKernel::lower_bounds_f32(&sqd32, &scols32, scale_n, sslack, s32v);
            *best = best.min(t0.elapsed().as_secs_f64());
        };
        if rep % 2 == 0 {
            a(&mut s64, &mut s64_best);
            b(&mut s32, &mut s32_best);
        } else {
            b(&mut s32, &mut s32_best);
            a(&mut s64, &mut s64_best);
        }
        std::hint::black_box((&s64, &s32));
    }
    let scale_rows_per_sec = scale_n as f64 / s64_best;
    let scale_f32_rows_per_sec = scale_n as f64 / s32_best;
    println!(
        "scan_kernel/synthetic/n{scale_n}/l{l}: f64 {scale_rows_per_sec:.3e} rows/s, \
         f32 {scale_f32_rows_per_sec:.3e} rows/s ({:.2}x)",
        s64_best / s32_best
    );

    // ---- 2. Locked vs snapshot serve QPS at P = 8 (round-robin, so both
    // engines probe every shard and the scan path is the whole difference).
    let cfg = EngineConfig {
        shards: SHARDS,
        threads: 0,
        ..EngineConfig::default()
    };
    let locked_engine = ShardedEngine::build_with::<&str, _>(pts.clone(), &cfg, |_, part| {
        Ok(Box::new(LockedLaesa::build(part, pivots.clone())))
    })
    .expect("buildable");
    let snapshot_engine = build_sharded_vector_engine(
        IndexKind::Laesa,
        pts.clone(),
        L2,
        &opts,
        &cfg,
        PartitionPolicy::RoundRobin,
    )
    .expect("buildable");
    // Same answers, same verification work — the A/B is pure scan path.
    let a = locked_engine.serve(&batch[..8.min(batch.len())]);
    let b = snapshot_engine.serve(&batch[..8.min(batch.len())]);
    assert_eq!(a.results, b.results, "identical serving either way");
    let locked_qps = serve_qps(&locked_engine, &batch, serve_iters);
    let snapshot_qps = serve_qps(&snapshot_engine, &batch, serve_iters);
    let serve_speedup = snapshot_qps / locked_qps;
    println!(
        "serve_scan/laesa/P{SHARDS}: snapshot {snapshot_qps:.0} q/s vs locked {locked_qps:.0} q/s \
         ({serve_speedup:.2}x)"
    );

    // ---- 2a. F32 column mode end to end: the same LAESA engine built
    // with f32 filter columns must serve byte-identical answers
    // (`f32.exact_ok` — the committed acceptance gate for the mode) while
    // the filter streams half the bytes; QPS rides along as trajectory
    // data (at this n the exact verification pass, not the filter,
    // dominates the serve wall).
    let f32_engine = build_sharded_vector_engine(
        IndexKind::Laesa,
        pts.clone(),
        L2,
        &BuildOptions {
            column_mode: pmi::ColumnMode::F32,
            ..opts.clone()
        },
        &cfg,
        PartitionPolicy::RoundRobin,
    )
    .expect("buildable");
    let full64 = snapshot_engine.serve(&batch);
    let full32 = f32_engine.serve(&batch);
    let f32_exact_ok = full64.results == full32.results;
    assert!(f32_exact_ok, "f32 column mode changed serve results");
    let f32_qps = serve_qps(&f32_engine, &batch, serve_iters);
    let f32_qps_ratio = f32_qps / snapshot_qps;
    println!(
        "serve_scan/laesa/P{SHARDS}: f32 columns {f32_qps:.0} q/s vs f64 {snapshot_qps:.0} q/s \
         ({f32_qps_ratio:.2}x), exact_ok = {f32_exact_ok}"
    );

    // ---- 2b. Observability overhead: serve QPS with the obs runtime
    // switch on vs off, interleaved in-process so machine drift hits both
    // sides equally. This is the acceptance gate for the zero-overhead
    // rule: the instrumented hot path (one registry load per batch, one
    // histogram record per query, clock laps on 1-in-8 sampled queries)
    // must stay within 2% of the uninstrumented path, judged by the
    // median paired ratio (see `paired_ab`).
    let obs_reps = if smoke { 1 } else { 40 };
    let (obs_on_best, obs_off_best, obs_ratio) = paired_ab(obs_reps, |on| {
        snapshot_engine.set_obs_enabled(on);
        let t0 = Instant::now();
        std::hint::black_box(snapshot_engine.serve(&batch));
        t0.elapsed().as_secs_f64()
    });
    snapshot_engine.set_obs_enabled(true);
    let obs_on_qps = BATCH as f64 / obs_on_best;
    let obs_off_qps = BATCH as f64 / obs_off_best;
    let overhead_ok = obs_ratio >= 0.98;
    println!(
        "obs_overhead/laesa/P{SHARDS}: on {obs_on_qps:.0} q/s vs off {obs_off_qps:.0} q/s \
         (ratio {obs_ratio:.3}, overhead_ok = {overhead_ok})"
    );

    // ---- 2c. Tracing overhead: serve QPS with a live sampling trace
    // policy vs tracing disabled, obs on for both sides so the delta is
    // tracing alone. Untraced queries pay one branch per pipeline
    // segment; sampled queries (1-in-8 here, a deliberately heavy rate)
    // pay ring writes, clock laps, and per-probe counter snapshots. Same
    // ≤2% median-paired-ratio gate and interleaving as the obs A/B above.
    let trace_policy = pmi::engine::TracePolicy::sample(8).with_max_captured(4);
    let mut trace_captured = 0usize;
    let (trace_on_best, trace_off_best, trace_ratio) = paired_ab(obs_reps, |on| {
        snapshot_engine.set_trace_policy(if on {
            trace_policy
        } else {
            pmi::engine::TracePolicy::disabled()
        });
        let t0 = Instant::now();
        let out = std::hint::black_box(snapshot_engine.serve(&batch));
        let t = t0.elapsed().as_secs_f64();
        if on {
            trace_captured = trace_captured.max(out.report.traces.len());
        } else {
            assert!(out.report.traces.is_empty(), "disabled tracing captured");
        }
        t
    });
    snapshot_engine.set_trace_policy(pmi::engine::TracePolicy::disabled());
    assert!(trace_captured > 0, "sampling 1/8 must capture traces");
    let trace_on_qps = BATCH as f64 / trace_on_best;
    let trace_off_qps = BATCH as f64 / trace_off_best;
    let trace_overhead_ok = trace_ratio >= 0.98;
    println!(
        "trace_overhead/laesa/P{SHARDS}: on {trace_on_qps:.0} q/s vs off {trace_off_qps:.0} q/s \
         (ratio {trace_ratio:.3}, {trace_captured} captured, overhead_ok = {trace_overhead_ok})"
    );

    // ---- 2d. Budget-guard overhead: serve QPS with a never-binding
    // per-query budget armed vs budgets disabled, interleaved like the
    // obs/trace A/Bs above. An armed budget costs one arm per query plus
    // one deadline/cap check per probe; the ≤2% gate (`robust.overhead_ok`)
    // enforces the "zero cost when disabled, near-zero when idle" rule of
    // docs/robustness.md.
    let huge_budget = ServeBudget {
        query: QueryBudget {
            wall_nanos: 3_600_000_000_000, // one hour: armed, never binds
            compdists: u64::MAX,
        },
        batch_wall_nanos: 0,
    };
    // Same answers either way — a non-binding budget must not degrade.
    snapshot_engine.set_budget(huge_budget);
    let c = snapshot_engine.serve(&batch[..8.min(batch.len())]);
    snapshot_engine.set_budget(ServeBudget::unlimited());
    let d = snapshot_engine.serve(&batch[..8.min(batch.len())]);
    assert_eq!(c.results, d.results, "non-binding budget changed answers");
    assert_eq!(c.report.degraded + c.report.shed + c.report.failed, 0);
    // The true budget overhead (one clock read per query, one check per
    // probe) is well under 1%, so the ≤2% verdict rides almost entirely
    // on the measurement statistic — the median paired ratio.
    let budget_reps = obs_reps * 3;
    let (bud_on_best, bud_off_best, robust_ratio) = paired_ab(budget_reps, |on| {
        snapshot_engine.set_budget(if on {
            huge_budget
        } else {
            ServeBudget::unlimited()
        });
        let t0 = Instant::now();
        std::hint::black_box(snapshot_engine.serve(&batch));
        t0.elapsed().as_secs_f64()
    });
    snapshot_engine.set_budget(ServeBudget::unlimited());
    let bud_on_qps = BATCH as f64 / bud_on_best;
    let bud_off_qps = BATCH as f64 / bud_off_best;
    let robust_overhead_ok = robust_ratio >= 0.98;
    println!(
        "robust_overhead/laesa/P{SHARDS}: budgets on {bud_on_qps:.0} q/s vs off \
         {bud_off_qps:.0} q/s (ratio {robust_ratio:.3}, overhead_ok = {robust_overhead_ok})"
    );

    // ---- 2e. Deadline pressure: tightening per-query compdist caps on a
    // single-threaded engine (exact, deterministic accounting) must
    // degrade monotonically more queries while every returned result stays
    // a subset of the exact answer; a 1 ns batch deadline then sheds the
    // whole batch. All checks fold into the `robust.degraded_ok` gate.
    let pressure_engine = build_sharded_vector_engine(
        IndexKind::Laesa,
        pts.clone(),
        L2,
        &opts,
        &EngineConfig {
            shards: SHARDS,
            threads: 1,
            ..EngineConfig::default()
        },
        PartitionPolicy::RoundRobin,
    )
    .expect("buildable");
    let pressure_batch: Vec<Query<Vec<f32>>> = (0..BATCH)
        .map(|i| Query::range(pts[(i * 131) % pts.len()].clone(), radius))
        .collect();
    let exact_out = pressure_engine.serve(&pressure_batch);
    let caps: [u64; 4] = [0, 1_000, 100, 1]; // 0 = budgets disabled
    let mut degraded_ok = true;
    let mut prev_degraded = 0usize;
    let mut pressure_json = String::from("[");
    for (ci, &cap) in caps.iter().enumerate() {
        pressure_engine.set_budget(ServeBudget {
            query: QueryBudget {
                wall_nanos: 0,
                compdists: cap,
            },
            batch_wall_nanos: 0,
        });
        let out = pressure_engine.serve(&pressure_batch);
        for (r, x) in out.results.iter().zip(&exact_out.results) {
            let (Some(got), Some(want)) = (r.as_range(), x.as_range()) else {
                degraded_ok = false;
                break;
            };
            if !got.iter().all(|id| want.contains(id)) {
                degraded_ok = false;
                break;
            }
        }
        if out.report.degraded < prev_degraded {
            degraded_ok = false;
        }
        prev_degraded = out.report.degraded;
        if ci > 0 {
            pressure_json.push_str(", ");
        }
        write!(
            pressure_json,
            "{{\"cap\": {cap}, \"degraded\": {}, \"shed\": {}}}",
            out.report.degraded, out.report.shed
        )
        .unwrap();
        println!(
            "robust_pressure/laesa/P{SHARDS}: cap {cap} -> {} degraded, {} shed",
            out.report.degraded, out.report.shed
        );
    }
    pressure_json.push(']');
    // A 1-distance cap degrades every query; a 1 ns batch deadline sheds
    // every query without touching a shard.
    degraded_ok &= prev_degraded == BATCH;
    pressure_engine.set_budget(ServeBudget {
        query: QueryBudget::unlimited(),
        batch_wall_nanos: 1,
    });
    let shed_out = pressure_engine.serve(&pressure_batch);
    degraded_ok &= shed_out.report.shed == BATCH;
    pressure_engine.set_budget(ServeBudget::unlimited());
    println!(
        "robust_pressure/laesa/P{SHARDS}: batch deadline -> {} shed, degraded_ok = {degraded_ok}",
        shed_out.report.shed
    );
    // Unlike the timing ratios, these are deterministic invariants: fail
    // fast in smoke/test runs too, not just through the JSON gate.
    assert!(degraded_ok, "deadline-pressure invariants violated");

    // ---- 3. Post-churn QPS with tombstones, after compaction, and the
    // no-churn baseline (the PR-4 churn workload).
    let churn = n / 4;
    let fresh = datasets::la(churn, 4242);
    let build = |objects: &[Vec<f32>]| {
        build_sharded_vector_engine(
            IndexKind::Laesa,
            objects.to_vec(),
            L2,
            &opts,
            &EngineConfig {
                shards: SHARDS,
                threads: 0,
                refresh: RefreshPolicy::default(),
                ..EngineConfig::default()
            },
            PartitionPolicy::PivotSpace,
        )
        .expect("buildable")
    };
    let mut engine = build(&pts);
    let apply_chunk = if smoke { 128 } else { 512 };
    for chunk in fresh.chunks(apply_chunk) {
        let mut b = UpdateBatch::new();
        for o in chunk {
            b.insert(o.clone());
        }
        engine.apply(&b);
    }
    for chunk in (0..churn as u32).collect::<Vec<_>>().chunks(apply_chunk) {
        let mut b = UpdateBatch::new();
        for &g in chunk {
            b.remove(g * 3 % n as u32);
        }
        engine.apply(&b);
    }
    let qps_churn = serve_qps(&engine, &batch, serve_iters);
    let dropped = engine.compact();
    let qps_compacted = serve_qps(&engine, &batch, serve_iters);
    let survivors: Vec<Vec<f32>> = (0..engine.len() as u32)
        .filter_map(|g| engine.get(g))
        .collect();
    assert_eq!(survivors.len(), engine.len(), "ids are dense post-compact");
    let baseline = build(&survivors);
    let qps_baseline = serve_qps(&baseline, &batch, serve_iters);
    let churn_frac = qps_churn / qps_baseline;
    let recovered_frac = qps_compacted / qps_baseline;
    println!(
        "compaction/laesa/P{SHARDS}: churned {qps_churn:.0} q/s ({churn_frac:.2} of baseline), \
         compacted {qps_compacted:.0} q/s ({recovered_frac:.2} of baseline {qps_baseline:.0}), \
         {dropped} dead rows dropped"
    );
    println!(
        "  prune rates: compacted {:.3} vs fresh-build baseline {:.3} \
         (the routing-quality gap that remains after the dead rows are gone)",
        prune_rate(&engine, &batch),
        prune_rate(&baseline, &batch)
    );
    let sizes = |e: &ShardedEngine<Vec<f32>>| -> Vec<usize> {
        e.shards().iter().map(|s| s.len()).collect()
    };
    println!(
        "  shard sizes: compacted {:?} vs baseline {:?}",
        sizes(&engine),
        sizes(&baseline)
    );

    if smoke {
        println!("scan_throughput: ok (smoke)");
        return;
    }

    let traj = TrajectoryPoint::new(
        "scan_throughput",
        &[
            ("index", "\"LAESA\"".into()),
            ("dataset", "\"la\"".into()),
            ("n", n.to_string()),
            ("pivots", l.to_string()),
            ("shards", SHARDS.to_string()),
            ("batch", BATCH.to_string()),
        ],
    );
    let mut log = traj.runlog();
    log.record(
        "kernel.blocked",
        kernel_reps as u64,
        blocked_best,
        &[("rows", n as u64)],
    );
    log.record(
        "kernel.scalar",
        kernel_reps as u64,
        scalar_best,
        &[("rows", n as u64)],
    );
    log.record(
        "kernel.f32",
        kernel_reps as u64,
        f32_best,
        &[("rows", n as u64)],
    );
    log.record(
        "kernel.scale_f64",
        scale_reps as u64,
        s64_best,
        &[("rows", scale_n as u64)],
    );
    log.record(
        "kernel.scale_f32",
        scale_reps as u64,
        s32_best,
        &[("rows", scale_n as u64)],
    );
    log.record(
        "serve.f32",
        serve_iters as u64,
        BATCH as f64 / f32_qps,
        &[("batch", BATCH as u64)],
    );
    log.record(
        "serve.snapshot",
        serve_iters as u64,
        BATCH as f64 / snapshot_qps,
        &[("batch", BATCH as u64)],
    );
    log.record(
        "serve.locked",
        serve_iters as u64,
        BATCH as f64 / locked_qps,
        &[("batch", BATCH as u64)],
    );
    log.record(
        "serve.obs_on",
        obs_reps as u64,
        obs_on_best,
        &[("batch", BATCH as u64)],
    );
    log.record(
        "serve.obs_off",
        obs_reps as u64,
        obs_off_best,
        &[("batch", BATCH as u64)],
    );
    log.record(
        "serve.trace_on",
        obs_reps as u64,
        trace_on_best,
        &[("batch", BATCH as u64), ("captured", trace_captured as u64)],
    );
    log.record(
        "serve.trace_off",
        obs_reps as u64,
        trace_off_best,
        &[("batch", BATCH as u64)],
    );
    log.record(
        "serve.budget_on",
        budget_reps as u64,
        bud_on_best,
        &[("batch", BATCH as u64)],
    );
    log.record(
        "serve.budget_off",
        budget_reps as u64,
        bud_off_best,
        &[("batch", BATCH as u64)],
    );
    log.record(
        "compaction.serve",
        serve_iters as u64,
        BATCH as f64 / qps_compacted,
        &[("dead_rows_dropped", dropped as u64)],
    );
    // The churned engine's full phase tree (build/apply/compact/serve with
    // exact counter deltas) rides along when obs is compiled in.
    log.extend_from(&engine.metrics());
    let mut kernel_json = String::new();
    write!(
        kernel_json,
        "{{\"blocked_rows_per_sec\": {blocked_rows_per_sec:.0}, \
         \"scalar_rows_per_sec\": {scalar_rows_per_sec:.0}, \"speedup\": {kernel_speedup:.3}, \
         \"simd_tier\": \"{}\", \
         \"f32_rows_per_sec\": {f32_rows_per_sec:.0}, \"f32_speedup\": {f32_speedup:.3}, \
         \"f32_speedup_ok\": {f32_speedup_ok}, \
         \"scale_n\": {scale_n}, \"scale_rows_per_sec\": {scale_rows_per_sec:.0}, \
         \"scale_f32_rows_per_sec\": {scale_f32_rows_per_sec:.0}}}",
        simd_tier.label()
    )
    .unwrap();
    let mut f32_json = String::new();
    write!(
        f32_json,
        "{{\"exact_ok\": {f32_exact_ok}, \"f64_qps\": {snapshot_qps:.0}, \
         \"f32_qps\": {f32_qps:.0}, \"qps_ratio\": {f32_qps_ratio:.3}}}"
    )
    .unwrap();
    let mut serve_json = String::new();
    write!(
        serve_json,
        "{{\"snapshot_qps\": {snapshot_qps:.0}, \"locked_qps\": {locked_qps:.0}, \
         \"speedup\": {serve_speedup:.3}}}"
    )
    .unwrap();
    let mut obs_json = String::new();
    write!(
        obs_json,
        "{{\"compiled_in\": {}, \"on_qps\": {obs_on_qps:.0}, \"off_qps\": {obs_off_qps:.0}, \
         \"ratio\": {obs_ratio:.3}, \"overhead_ok\": {overhead_ok}}}",
        pmi::obs::Registry::compiled_in()
    )
    .unwrap();
    let mut trace_json = String::new();
    write!(
        trace_json,
        "{{\"sample_every\": {}, \"on_qps\": {trace_on_qps:.0}, \"off_qps\": {trace_off_qps:.0}, \
         \"ratio\": {trace_ratio:.3}, \"captured\": {trace_captured}, \
         \"overhead_ok\": {trace_overhead_ok}}}",
        trace_policy.sample_every
    )
    .unwrap();
    let mut robust_json = String::new();
    write!(
        robust_json,
        "{{\"on_qps\": {bud_on_qps:.0}, \"off_qps\": {bud_off_qps:.0}, \
         \"ratio\": {robust_ratio:.3}, \"overhead_ok\": {robust_overhead_ok}, \
         \"pressure\": {pressure_json}, \
         \"shed_at_batch_deadline\": {}, \"degraded_ok\": {degraded_ok}}}",
        shed_out.report.shed
    )
    .unwrap();
    let mut compaction_json = String::new();
    write!(
        compaction_json,
        "{{\"qps_after_churn\": {qps_churn:.0}, \
         \"qps_after_compaction\": {qps_compacted:.0}, \"qps_no_churn_baseline\": {qps_baseline:.0}, \
         \"churn_frac_of_baseline\": {churn_frac:.3}, \"recovered_frac_of_baseline\": {recovered_frac:.3}, \
         \"dead_rows_dropped\": {dropped}}}"
    )
    .unwrap();
    traj.field_raw("kernel", &kernel_json)
        .field_raw("f32", &f32_json)
        .field_raw("serve", &serve_json)
        .field_raw("obs", &obs_json)
        .field_raw("trace", &trace_json)
        .field_raw("robust", &robust_json)
        .field_raw("compaction", &compaction_json)
        .write("BENCH_scan.json");
    append_runlog(&log);
}
