//! Bench target for Figure 14: EPT vs EPT* MkNNQ.

use criterion::{criterion_group, Criterion};
use pmi::builder::{build_index, IndexKind};

fn la_setup(n: usize, l: usize) -> (Vec<Vec<f32>>, Vec<Vec<f32>>, pmi::builder::BuildOptions) {
    let pts = pmi::datasets::la(n, 42);
    let pivots: Vec<Vec<f32>> = pmi::pivots::select_hfi(&pts, &pmi::L2, l, 42)
        .into_iter()
        .map(|i| pts[i].clone())
        .collect();
    let opts = pmi::builder::BuildOptions {
        num_pivots: l,
        d_plus: 14143.0,
        maxnum: (n / 64).max(64),
        ..Default::default()
    };
    (pts, pivots, opts)
}

fn bench(c: &mut Criterion) {
    let (pts, pivots, opts) = la_setup(3000, 5);
    let mut g = c.benchmark_group("fig14_ept_vs_eptstar_la3k");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(400));
    g.measurement_time(std::time::Duration::from_millis(1600));
    for kind in [IndexKind::Ept, IndexKind::EptStar] {
        let idx = build_index(kind, pts.clone(), pmi::L2, pivots.clone(), &opts).unwrap();
        for k in [5usize, 20, 100] {
            g.bench_function(format!("{}/k{k}", kind.label()), |b| {
                let mut qi = 0usize;
                b.iter(|| {
                    qi = (qi + 131) % pts.len();
                    idx.knn_query(&pts[qi], k)
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
fn main() {
    let t0 = std::time::Instant::now();
    benches();
    // Every bench appends a JSONL run-log line (real runs only; smoke
    // invocations via `cargo test --bench` write nothing).
    pmi_bench::harness::finish_criterion_runlog("ept_star", t0);
}
