//! Bench target for Table 6: update (delete + reinsert) cost.

use criterion::{criterion_group, Criterion};
use pmi::builder::{build_index, IndexKind};

fn la_setup(n: usize, l: usize) -> (Vec<Vec<f32>>, Vec<Vec<f32>>, pmi::builder::BuildOptions) {
    let pts = pmi::datasets::la(n, 42);
    let pivots: Vec<Vec<f32>> = pmi::pivots::select_hfi(&pts, &pmi::L2, l, 42)
        .into_iter()
        .map(|i| pts[i].clone())
        .collect();
    let opts = pmi::builder::BuildOptions {
        num_pivots: l,
        d_plus: 14143.0,
        maxnum: (n / 64).max(64),
        ..Default::default()
    };
    (pts, pivots, opts)
}

fn bench(c: &mut Criterion) {
    let (pts, pivots, opts) = la_setup(2000, 5);
    let mut g = c.benchmark_group("table6_update_la2k");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(400));
    g.measurement_time(std::time::Duration::from_millis(1600));
    for kind in [
        IndexKind::Laesa,
        IndexKind::EptStar,
        IndexKind::Cpt,
        IndexKind::Mvpt,
        IndexKind::PmTree,
        IndexKind::OmniR,
        IndexKind::MIndexStar,
        IndexKind::Spb,
    ] {
        let mut idx = build_index(kind, pts.clone(), pmi::L2, pivots.clone(), &opts).unwrap();
        // Reinsertion assigns fresh ids, so track the live id per slot.
        let mut live: Vec<u32> = (0..2000).collect();
        let mut next = 0usize;
        g.bench_function(kind.label(), |b| {
            b.iter(|| {
                next = (next + 37) % live.len();
                let o = idx.get(live[next]).expect("live object");
                assert!(idx.remove(live[next]));
                live[next] = idx.insert(o);
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
fn main() {
    let t0 = std::time::Instant::now();
    benches();
    // Every bench appends a JSONL run-log line (real runs only; smoke
    // invocations via `cargo test --bench` write nothing).
    pmi_bench::harness::finish_criterion_runlog("update", t0);
}
