//! Update-path throughput bench for the unified mutation path (ISSUE 4):
//! batched inserts/removes through `ShardedEngine::apply`, box shrinking,
//! and the re-cluster trigger, plus serve QPS before/after churn against a
//! no-churn baseline built directly over the post-churn object set.
//!
//! Emitted as a machine-readable trajectory point at the workspace root
//! when run as a real bench (`cargo bench -p pmi-bench --bench
//! update_throughput`):
//!
//! * **`BENCH_update.json`** — inserts/sec and removes/sec through
//!   `apply` (LAESA shards adopt one pushed matrix row per insert, so the
//!   shard-side insert cost is exactly `l` map distances and zero remap),
//!   the wall-clock overhead of one re-cluster pass (the same skewed batch
//!   applied with the trigger disabled vs enabled), and batch-serving QPS
//!   before churn, after churn (boxes shrunk by `apply`), and on a
//!   from-scratch engine over the same surviving objects.
//!
//! Real measurement mode requires `cargo bench` (cargo passes `--bench`);
//! any other invocation (e.g. `cargo test --bench update_throughput`) runs
//! everything once at a reduced scale as a smoke test and writes no files.

use pmi::builder::{BuildOptions, IndexKind};
use pmi::engine::{EngineConfig, Query, ShardedEngine};
use pmi::{
    build_sharded_vector_engine, datasets, AdmissionPolicy, EngineReader, PartitionPolicy,
    PumpOutcome, RefreshPolicy, SubmitOutcome, SubmitQueue, UpdateBatch, L2,
};
use pmi_bench::harness::{append_runlog, TrajectoryPoint};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

const SHARDS: usize = 8;

fn build(pts: &[Vec<f32>], opts: &BuildOptions, refresh: RefreshPolicy) -> ShardedEngine<Vec<f32>> {
    build_sharded_vector_engine(
        IndexKind::Laesa,
        pts.to_vec(),
        L2,
        opts,
        &EngineConfig {
            shards: SHARDS,
            threads: 0,
            refresh,
            ..EngineConfig::default()
        },
        PartitionPolicy::PivotSpace,
    )
    .expect("buildable")
}

fn la_batch(pts: &[Vec<f32>], queries: usize, radius: f64) -> Vec<Query<Vec<f32>>> {
    (0..queries)
        .map(|i| {
            let q = pts[(i * 131) % pts.len()].clone();
            if i % 2 == 0 {
                Query::range(q, radius)
            } else {
                Query::knn(q, 10)
            }
        })
        .collect()
}

/// What `readers` pumping threads got through a standing [`SubmitQueue`]
/// in a fixed window: `(queries_served, max_queue_depth, shed, rejected)`.
/// Each thread submits the batch and pumps — the serving side of the
/// always-on model, with or without a concurrent writer.
fn pump_window(
    reader: &EngineReader<Vec<f32>>,
    batch: &[Query<Vec<f32>>],
    readers: usize,
    window: Duration,
    stop: &AtomicBool,
) -> (u64, usize, u64, u64) {
    let queue: SubmitQueue<Vec<f32>> = SubmitQueue::new(AdmissionPolicy {
        max_depth: readers * 2,
        queue_wall_nanos: 250_000_000,
    });
    let t0 = Instant::now();
    let (served, max_depth) = std::thread::scope(|s| {
        let handles: Vec<_> = (0..readers)
            .map(|_| {
                let r = reader.clone();
                let queue = &queue;
                s.spawn(move || {
                    let (mut served, mut max_depth) = (0u64, 0usize);
                    while t0.elapsed() < window && !stop.load(Ordering::Relaxed) {
                        if let SubmitOutcome::Enqueued { depth, .. } = queue.submit(batch.to_vec())
                        {
                            max_depth = max_depth.max(depth);
                        }
                        if let PumpOutcome::Served { outcome, .. } = r.pump(queue) {
                            served += outcome.results.len() as u64;
                        }
                    }
                    (served, max_depth)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .fold((0u64, 0usize), |(s_acc, d_acc), (s, d)| {
                (s_acc + s, d_acc.max(d))
            })
    });
    let stats = queue.stats();
    (served, max_depth, stats.shed, stats.rejected)
}

fn serve_qps(e: &ShardedEngine<Vec<f32>>, batch: &[Query<Vec<f32>>], iters: usize) -> f64 {
    for _ in 0..iters.min(3) {
        let _ = e.serve(batch);
    }
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t0 = Instant::now();
        let _ = e.serve(batch);
        best = best.min(t0.elapsed().as_secs_f64());
    }
    batch.len() as f64 / best
}

fn main() {
    let smoke = !std::env::args().any(|a| a == "--bench");
    let n = if smoke { 2_000 } else { 8_000 };
    let churn = n / 4;
    let apply_chunk = if smoke { 128 } else { 512 };
    let serve_iters = if smoke { 1 } else { 30 };
    let pts = datasets::la(n, 42);
    let fresh = datasets::la(churn, 4242);
    let opts = BuildOptions {
        d_plus: 14143.0,
        ..BuildOptions::default()
    };
    let l = opts.num_pivots as u64;
    let radius = datasets::calibrate_radius(&pts, &L2, 0.04, 42);
    let batch = la_batch(&pts, 256, radius);

    // ---- Serve before churn.
    let mut engine = build(&pts, &opts, RefreshPolicy::default());
    let qps_before = serve_qps(&engine, &batch, serve_iters);

    // ---- Insert throughput: apply_chunk-sized batches of routed inserts.
    let mut insert_secs = 0.0;
    let mut inserted = Vec::with_capacity(churn);
    let mut map_compdists = 0u64;
    let mut shard_compdists = 0u64;
    for chunk in fresh.chunks(apply_chunk) {
        let mut b = UpdateBatch::new();
        for o in chunk {
            b.insert(o.clone());
        }
        let r = engine.apply(&b);
        insert_secs += r.wall_secs;
        map_compdists += r.map_compdists;
        shard_compdists += r.shard_compdists;
        inserted.extend(r.inserted_ids);
    }
    assert_eq!(map_compdists, churn as u64 * l, "exactly l per insert");
    assert_eq!(shard_compdists, 0, "LAESA adopts pushed rows — no remap");
    let inserts_per_sec = churn as f64 / insert_secs;

    // ---- Remove throughput: drop the same count of original objects
    // (apply shrinks every affected shard's box once per batch).
    let mut remove_secs = 0.0;
    let mut reboxed = 0usize;
    for chunk in (0..churn as u32).collect::<Vec<_>>().chunks(apply_chunk) {
        let mut b = UpdateBatch::new();
        for &g in chunk {
            b.remove(g * 3 % n as u32);
        }
        let r = engine.apply(&b);
        remove_secs += r.wall_secs;
        reboxed += r.reboxed_shards;
    }
    let removed = engine.update_stats().removes;
    let removes_per_sec = removed as f64 / remove_secs;

    // ---- Serve after churn vs a no-churn baseline over the same objects.
    let qps_after = serve_qps(&engine, &batch, serve_iters);
    let survivors: Vec<Vec<f32>> = (0..(n + churn) as u32)
        .filter_map(|g| engine.get(g))
        .collect();
    assert_eq!(survivors.len(), engine.len());
    let baseline = build(&survivors, &opts, RefreshPolicy::default());
    let qps_baseline = serve_qps(&baseline, &batch, serve_iters);

    // ---- Re-cluster cost: one skewed batch (remove 7/8 of one shard's
    // members, leaving it far below its siblings), applied with the
    // trigger disabled vs enabled on identical engines; the difference is
    // what a re-cluster pass costs (both sides pay the same box shrink).
    let mut plain = build(&pts, &opts, RefreshPolicy::disabled());
    let victims: Vec<u32> = (0..n as u32)
        .filter(|&g| plain.locate(g).map(|(s, _)| s) == Some(0))
        .collect();
    let mut skew = UpdateBatch::new();
    for &g in victims.iter().take(victims.len() * 7 / 8) {
        skew.remove(g);
    }
    let wall_disabled = plain.apply(&skew).wall_secs;
    let mut trig = build(
        &pts,
        &opts,
        RefreshPolicy {
            max_imbalance: 2.0,
            min_objects: 64,
        },
    );
    let r = trig.apply(&skew);
    let (wall_enabled, moved, reclusters) = (r.wall_secs, r.moved_objects, r.reclusters);
    let recluster_overhead_secs = (wall_enabled - wall_disabled).max(0.0);

    // ---- Availability under churn (the always-on model): reader threads
    // pump a standing SubmitQueue while a writer thread commits apply
    // transactions, vs the same reader loop over an idle engine. MVCC
    // snapshots mean serving never blocks on the writer — the gate below
    // holds during-churn QPS at ≥ 50% of the no-churn figure.
    //
    // The writer is paced to a fixed arrival rate (one 64-op commit per
    // 10 ms) rather than committing back-to-back: an unpaced writer turns
    // the measurement into a CPU-sharing benchmark (on a 1-core runner it
    // pins availability at ~0.5 regardless of snapshot behavior), while a
    // paced one still publishes ~100 epochs per second — a pre-MVCC
    // engine, where apply excludes serving outright, still collapses the
    // ratio and trips the gate.
    let readers = 2;
    let window = Duration::from_millis(if smoke { 50 } else { 1_000 });
    let commit_period = Duration::from_millis(10);
    let mut avail = build(&pts, &opts, RefreshPolicy::default());
    let reader = avail.reader().expect("matrix LAESA engines fork");
    let never = AtomicBool::new(false);
    let (idle_served, _, _, _) = pump_window(&reader, &batch, readers, window, &never);
    let qps_no_churn_concurrent = idle_served as f64 / window.as_secs_f64();

    let ((during_served, depth_max, q_shed, q_rejected), commits) = std::thread::scope(|s| {
        let pumps = {
            let reader = &reader;
            let batch = &batch;
            let never = &never;
            // Readers run the full window even if the writer finishes early.
            s.spawn(move || pump_window(reader, batch, readers, window, never))
        };
        let mut commits = 0u64;
        let t0 = Instant::now();
        let mut cursor = 0u32;
        while t0.elapsed() < window && (cursor + 32) as usize <= n {
            let mut b = UpdateBatch::new();
            for i in 0..32u32 {
                b.remove(cursor + i);
                b.insert(fresh[(cursor as usize + i as usize) % fresh.len()].clone());
            }
            let r = avail.apply(&b);
            assert!(!r.aborted);
            cursor += 32;
            commits += 1;
            let next = commit_period * commits as u32;
            let elapsed = t0.elapsed();
            if next > elapsed {
                std::thread::sleep(next - elapsed);
            }
        }
        (pumps.join().expect("pump threads panicked"), commits)
    });
    let qps_during_churn = during_served as f64 / window.as_secs_f64();
    let availability = if qps_no_churn_concurrent > 0.0 {
        qps_during_churn / qps_no_churn_concurrent
    } else {
        0.0
    };
    let availability_ok = availability >= 0.5;

    println!(
        "update_throughput/laesa/P{SHARDS}: {inserts_per_sec:.0} inserts/s, \
         {removes_per_sec:.0} removes/s ({reboxed} reboxes)"
    );
    println!(
        "  availability: no-churn {qps_no_churn_concurrent:.0} q/s, during churn \
         {qps_during_churn:.0} q/s ({availability:.2}x, {commits} commits, epoch {}, \
         queue depth max {depth_max}, shed {q_shed}, rejected {q_rejected}) — \
         gate {}",
        avail.epoch(),
        if availability_ok { "OK" } else { "FAIL" }
    );
    println!(
        "  serve QPS: before churn {qps_before:.0}, after churn {qps_after:.0}, \
         no-churn baseline {qps_baseline:.0}"
    );
    println!(
        "  re-cluster: {reclusters} pass(es) moved {moved} object(s), \
         overhead {recluster_overhead_secs:.4}s"
    );

    if smoke {
        println!("update_throughput: ok (smoke)");
        return;
    }

    let traj = TrajectoryPoint::new(
        "update_throughput",
        &[
            ("index", "\"LAESA\"".into()),
            ("dataset", "\"la\"".into()),
            ("n", n.to_string()),
            ("churn", churn.to_string()),
            ("shards", SHARDS.to_string()),
            ("apply_chunk", apply_chunk.to_string()),
            // Apply semantics changed with the MVCC snapshot engine
            // (copy-on-write transactions); the run-log sentinel must not
            // compare wall-per-call across that boundary.
            ("mutation", "\"mvcc\"".into()),
        ],
    );
    let mut log = traj.runlog();
    log.record(
        "insert",
        (churn / apply_chunk + 1) as u64,
        insert_secs,
        &[
            ("inserts", churn as u64),
            ("map_compdists", map_compdists),
            ("shard_compdists", shard_compdists),
        ],
    );
    log.record(
        "remove",
        (churn / apply_chunk + 1) as u64,
        remove_secs,
        &[("removes", removed), ("reboxed_shards", reboxed as u64)],
    );
    log.record(
        "serve.after_churn",
        serve_iters as u64,
        batch.len() as f64 / qps_after * serve_iters as f64,
        &[("batch", batch.len() as u64)],
    );
    log.record(
        "recluster",
        reclusters as u64,
        recluster_overhead_secs,
        &[("moved_objects", moved)],
    );
    // The churned engine's own phase tree (build/apply.*/serve.*) carries
    // the exact per-phase wall + counter deltas when obs is compiled in.
    log.extend_from(&engine.metrics());
    traj.field_f64("inserts_per_sec", inserts_per_sec)
        .field_f64("removes_per_sec", removes_per_sec)
        .field_u64("insert_map_compdists", map_compdists)
        .field_u64("insert_shard_compdists", shard_compdists)
        .field_f64("qps_before_churn", qps_before)
        .field_f64("qps_after_churn", qps_after)
        .field_f64("qps_no_churn_baseline", qps_baseline)
        .field_u64("recluster_passes", reclusters as u64)
        .field_u64("recluster_moved", moved)
        .field_f64("recluster_overhead_secs", recluster_overhead_secs)
        .field_f64("qps_no_churn_concurrent", qps_no_churn_concurrent)
        .field_f64("qps_during_churn", qps_during_churn)
        .field_f64("availability", availability)
        .field_u64("churn_commits", commits)
        .field_u64("queue_depth_max", depth_max as u64)
        .field_u64("queue_shed", q_shed)
        .field_u64("queue_rejected", q_rejected)
        .field_bool("update.availability_ok", availability_ok)
        .write("BENCH_update.json");
    append_runlog(&log);
}
