//! Bench target for Figure 16: MRQ vs radius selectivity.

use criterion::{criterion_group, Criterion};
use pmi::builder::{build_index, IndexKind};

fn la_setup(n: usize, l: usize) -> (Vec<Vec<f32>>, Vec<Vec<f32>>, pmi::builder::BuildOptions) {
    let pts = pmi::datasets::la(n, 42);
    let pivots: Vec<Vec<f32>> = pmi::pivots::select_hfi(&pts, &pmi::L2, l, 42)
        .into_iter()
        .map(|i| pts[i].clone())
        .collect();
    let opts = pmi::builder::BuildOptions {
        num_pivots: l,
        d_plus: 14143.0,
        maxnum: (n / 64).max(64),
        ..Default::default()
    };
    (pts, pivots, opts)
}

fn bench(c: &mut Criterion) {
    let (pts, pivots, opts) = la_setup(3000, 5);
    let mut g = c.benchmark_group("fig16_mrq_la3k");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(400));
    g.measurement_time(std::time::Duration::from_millis(1600));
    let radii: Vec<(u32, f64)> = [(4u32, 0.04f64), (16, 0.16), (64, 0.64)]
        .iter()
        .map(|(pct, s)| {
            (
                *pct,
                pmi::datasets::calibrate_radius(&pts, &pmi::L2, *s, 42),
            )
        })
        .collect();
    for kind in [
        IndexKind::EptStar,
        IndexKind::Cpt,
        IndexKind::Mvpt,
        IndexKind::Spb,
        IndexKind::MIndexStar,
        IndexKind::PmTree,
        IndexKind::OmniR,
    ] {
        let idx = build_index(kind, pts.clone(), pmi::L2, pivots.clone(), &opts).unwrap();
        for (pct, r) in &radii {
            g.bench_function(format!("{}/r{pct}pct", kind.label()), |b| {
                let mut qi = 0usize;
                b.iter(|| {
                    qi = (qi + 131) % pts.len();
                    idx.range_query(&pts[qi], *r)
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
fn main() {
    let t0 = std::time::Instant::now();
    benches();
    // Every bench appends a JSONL run-log line (real runs only; smoke
    // invocations via `cargo test --bench` write nothing).
    pmi_bench::harness::finish_criterion_runlog("mrq_radius", t0);
}
