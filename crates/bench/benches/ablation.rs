//! Ablations of the design choices the paper discusses: MVPT arity
//! (§4.3: "we set m as 5"), SPB-tree SFC resolution (§5.4 discretization
//! trade-off), and the PM-tree's pivot rings versus a plain M-tree.

use criterion::{criterion_group, Criterion};
use pmi::builder::{build_index, BuildOptions, IndexKind};

fn la_setup(n: usize, l: usize) -> (Vec<Vec<f32>>, Vec<Vec<f32>>, pmi::builder::BuildOptions) {
    let pts = pmi::datasets::la(n, 42);
    let pivots: Vec<Vec<f32>> = pmi::pivots::select_hfi(&pts, &pmi::L2, l, 42)
        .into_iter()
        .map(|i| pts[i].clone())
        .collect();
    let opts = pmi::builder::BuildOptions {
        num_pivots: l,
        d_plus: 14143.0,
        maxnum: (n / 64).max(64),
        ..Default::default()
    };
    (pts, pivots, opts)
}

fn bench(c: &mut Criterion) {
    let (pts, pivots, opts) = la_setup(3000, 5);
    let mut g = c.benchmark_group("ablations_la3k");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(400));
    g.measurement_time(std::time::Duration::from_millis(1600));

    // MVPT arity sweep.
    for arity in [2usize, 5, 16] {
        let o = BuildOptions {
            mvpt_arity: arity,
            ..opts.clone()
        };
        let idx = build_index(IndexKind::Mvpt, pts.clone(), pmi::L2, pivots.clone(), &o).unwrap();
        g.bench_function(format!("mvpt_arity/m{arity}"), |b| {
            let mut qi = 0usize;
            b.iter(|| {
                qi = (qi + 131) % pts.len();
                idx.knn_query(&pts[qi], 20)
            })
        });
    }

    // SPB-tree SFC bits sweep.
    for bits in [4u32, 8, 12] {
        let o = BuildOptions {
            sfc_bits: bits,
            ..opts.clone()
        };
        let idx = build_index(IndexKind::Spb, pts.clone(), pmi::L2, pivots.clone(), &o).unwrap();
        g.bench_function(format!("spb_bits/b{bits}"), |b| {
            let mut qi = 0usize;
            b.iter(|| {
                qi = (qi + 131) % pts.len();
                idx.range_query(&pts[qi], 400.0)
            })
        });
    }

    // PM-tree rings vs plain M-tree clustering (CPT's tree without rings).
    for kind in [IndexKind::PmTree, IndexKind::Cpt] {
        let idx = build_index(kind, pts.clone(), pmi::L2, pivots.clone(), &opts).unwrap();
        g.bench_function(format!("rings/{}", idx.name()), |b| {
            let mut qi = 0usize;
            b.iter(|| {
                qi = (qi + 131) % pts.len();
                idx.range_query(&pts[qi], 400.0)
            })
        });
    }

    // FQT vs FQA (array form) on a discrete metric.
    {
        let syn = pmi::datasets::synthetic(3000, 42);
        let m = pmi::LInf::discrete();
        let spv: Vec<Vec<f32>> = pmi::pivots::select_hfi(&syn, &m, 5, 42)
            .into_iter()
            .map(|i| syn[i].clone())
            .collect();
        let o = BuildOptions {
            d_plus: 10000.0,
            ..opts.clone()
        };
        for kind in [IndexKind::Fqt, IndexKind::Fqa] {
            let idx = build_index(kind, syn.clone(), m, spv.clone(), &o).unwrap();
            g.bench_function(format!("fq_form/{}", idx.name()), |b| {
                let mut qi = 0usize;
                b.iter(|| {
                    qi = (qi + 131) % syn.len();
                    idx.knn_query(&syn[qi], 20)
                })
            });
        }
    }

    // EPT* (in-memory) vs EPT*-disk (the paper's §7 future-work variant).
    {
        let star = build_index(
            IndexKind::EptStar,
            pts.clone(),
            pmi::L2,
            pivots.clone(),
            &opts,
        )
        .unwrap();
        let disk = pmi::EptDisk::build(
            pts.clone(),
            pmi::L2,
            pmi::storage::DiskSim::default_pages(),
            pmi::EptDiskConfig::default(),
        );
        g.bench_function("ept_disk/EPT*", |b| {
            let mut qi = 0usize;
            b.iter(|| {
                qi = (qi + 131) % pts.len();
                star.knn_query(&pts[qi], 20)
            })
        });
        g.bench_function("ept_disk/EPT*-disk", |b| {
            use pmi::MetricIndex as _;
            let mut qi = 0usize;
            b.iter(|| {
                qi = (qi + 131) % pts.len();
                disk.knn_query(&pts[qi], 20)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
fn main() {
    let t0 = std::time::Instant::now();
    benches();
    // Every bench appends a JSONL run-log line (real runs only; smoke
    // invocations via `cargo test --bench` write nothing).
    pmi_bench::harness::finish_criterion_runlog("ablation", t0);
}
