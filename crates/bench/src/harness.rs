//! Measurement plumbing: builds indexes with the paper's shared-pivot
//! setup, runs query/update batches, and reports the three §6.1 cost
//! metrics averaged per operation.

use pmi::builder::{build_index, BuildOptions, IndexKind};
use pmi::obs::{fingerprint, JsonObj, RunLog};
use pmi::{datasets, pivots, EncodeObject, Metric, MetricIndex, ObjId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::time::Instant;

/// Construction cost + storage (Table 4 row fragment).
#[derive(Clone, Copy, Debug)]
pub struct BuildStats {
    /// Page accesses during construction.
    pub pa: u64,
    /// Distance computations during construction.
    pub compdists: u64,
    /// Wall-clock construction time.
    pub secs: f64,
    /// Main-memory footprint (KB).
    pub mem_kb: u64,
    /// Disk footprint (KB).
    pub disk_kb: u64,
}

/// Per-query averages (figures 14–18 data points).
#[derive(Clone, Copy, Debug, Default)]
pub struct QueryCost {
    /// Average page accesses per query.
    pub pa: f64,
    /// Average distance computations per query.
    pub compdists: f64,
    /// Average CPU seconds per query.
    pub secs: f64,
    /// Average result-set size (sanity / selectivity check).
    pub results: f64,
}

/// Per-update averages (Table 6 row fragment).
#[derive(Clone, Copy, Debug, Default)]
pub struct UpdateCost {
    /// Average page accesses per delete+reinsert.
    pub pa: f64,
    /// Average distance computations per delete+reinsert.
    pub compdists: f64,
    /// Average CPU seconds per delete+reinsert.
    pub secs: f64,
}

/// The paper's experiment defaults (Table 3).
pub const PIVOT_COUNTS: [usize; 5] = [1, 3, 5, 7, 9];
/// Range-query selectivities of Fig. 16.
pub const SELECTIVITIES: [f64; 5] = [0.04, 0.08, 0.16, 0.32, 0.64];
/// k values of Figs. 14, 15, 17, 18.
pub const KS: [usize; 5] = [5, 10, 20, 50, 100];
/// Default |P|.
pub const DEFAULT_PIVOTS: usize = 5;
/// Default selectivity (16%).
pub const DEFAULT_SELECTIVITY: f64 = 0.16;
/// Default k.
pub const DEFAULT_K: usize = 20;

/// Builds the per-dataset [`BuildOptions`], applying the paper's special
/// cases: a 40 KB page for CPT/PM-tree on high-dimensional data (§6.1) and
/// a `maxnum` scaled to the reduced cardinality.
pub fn options_for(
    n: usize,
    d_plus: f64,
    num_pivots: usize,
    high_dimensional: bool,
    seed: u64,
) -> BuildOptions {
    BuildOptions {
        num_pivots,
        d_plus,
        inline_page_size: if high_dimensional {
            pmi::storage::LARGE_PAGE_SIZE
        } else {
            pmi::storage::DEFAULT_PAGE_SIZE
        },
        maxnum: (n / 64).max(64),
        seed,
        ..BuildOptions::default()
    }
}

/// Selects the shared HFI pivot set (§6.1) — uncounted, like the paper,
/// which charges pivot selection to neither index (EPT/EPT*/BKT pick their
/// own pivots inside their builders and *are* charged).
pub fn shared_pivots<O: Clone, M: Metric<O>>(
    objects: &[O],
    metric: &M,
    l: usize,
    seed: u64,
) -> Vec<O> {
    pivots::select_hfi(objects, metric, l, seed)
        .into_iter()
        .map(|i| objects[i].clone())
        .collect()
}

/// Builds an index and measures its construction cost.
#[allow(clippy::type_complexity)]
pub fn build_measured<O, M>(
    kind: IndexKind,
    objects: &[O],
    metric: &M,
    pivots: &[O],
    opts: &BuildOptions,
) -> Option<(Box<dyn MetricIndex<O>>, BuildStats)>
where
    O: Clone + EncodeObject + Send + Sync + 'static,
    M: Metric<O> + Clone + 'static,
{
    let start = Instant::now();
    let idx = build_index(
        kind,
        objects.to_vec(),
        metric.clone(),
        pivots.to_vec(),
        opts,
    )
    .ok()?;
    let secs = start.elapsed().as_secs_f64();
    let c = idx.counters();
    let s = idx.storage();
    let stats = BuildStats {
        pa: c.page_accesses(),
        compdists: c.compdists,
        secs,
        mem_kb: s.mem_bytes / 1024,
        disk_kb: s.disk_bytes / 1024,
    };
    Some((idx, stats))
}

/// Draws `q` query positions (dataset objects double as query objects).
pub fn query_positions(n: usize, q: usize, seed: u64) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x51);
    (0..q).map(|_| rng.random_range(0..n)).collect()
}

/// Runs a batch of range queries and averages the costs. The 128 KB LRU
/// cache is enabled only for kNN batches (paper §6.1), so it is cleared
/// here by resetting counters only.
pub fn run_mrq<O>(idx: &dyn MetricIndex<O>, objects: &[O], queries: &[usize], r: f64) -> QueryCost {
    idx.reset_counters();
    let mut results = 0usize;
    let start = Instant::now();
    for &qi in queries {
        results += idx.range_query(&objects[qi], r).len();
    }
    let secs = start.elapsed().as_secs_f64();
    let c = idx.counters();
    let nq = queries.len().max(1) as f64;
    QueryCost {
        pa: c.page_accesses() as f64 / nq,
        compdists: c.compdists as f64 / nq,
        secs: secs / nq,
        results: results as f64 / nq,
    }
}

/// Runs a batch of kNN queries and averages the costs.
pub fn run_knn<O>(
    idx: &dyn MetricIndex<O>,
    objects: &[O],
    queries: &[usize],
    k: usize,
) -> QueryCost {
    idx.reset_counters();
    let mut results = 0usize;
    let start = Instant::now();
    for &qi in queries {
        results += idx.knn_query(&objects[qi], k).len();
    }
    let secs = start.elapsed().as_secs_f64();
    let c = idx.counters();
    let nq = queries.len().max(1) as f64;
    QueryCost {
        pa: c.page_accesses() as f64 / nq,
        compdists: c.compdists as f64 / nq,
        secs: secs / nq,
        results: results as f64 / nq,
    }
}

/// Table 6's update operation: delete a specific object, then insert it
/// back; averaged over `ops` objects.
pub fn run_updates<O: Clone>(idx: &mut dyn MetricIndex<O>, ops: usize, seed: u64) -> UpdateCost {
    let n = idx.len();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x55);
    let ids: Vec<ObjId> = (0..ops.min(n))
        .map(|_| rng.random_range(0..n as u32))
        .collect();
    idx.reset_counters();
    let start = Instant::now();
    let mut done = 0usize;
    for id in ids {
        let Some(o) = idx.get(id) else { continue }; // duplicate draw
        assert!(idx.remove(id), "object {id} must be removable");
        idx.insert(o);
        done += 1;
    }
    let secs = start.elapsed().as_secs_f64();
    let c = idx.counters();
    let nd = done.max(1) as f64;
    UpdateCost {
        pa: c.page_accesses() as f64 / nd,
        compdists: c.compdists as f64 / nd,
        secs: secs / nd,
    }
}

/// Calibrated radius for a target selectivity (the paper's `r` parameter
/// is "the percentage of objects ... that are result objects", §6.1).
pub fn radius_for<O, M: Metric<O>>(objects: &[O], metric: &M, selectivity: f64, seed: u64) -> f64 {
    datasets::calibrate_radius(objects, metric, selectivity, seed)
}

/// Schema version stamped into every `BENCH_*.json` trajectory point —
/// bump when the shared header shape below changes.
pub const BENCH_SCHEMA: &str = "pmi-bench-v2";

/// The workspace root, where every trajectory artifact
/// (`BENCH_*.json`, `RUNLOG.jsonl`) lands.
pub fn workspace_root() -> &'static str {
    concat!(env!("CARGO_MANIFEST_DIR"), "/../..")
}

/// One `BENCH_*.json` trajectory point. Every emitter funnels through
/// here, so each file carries the same header: `schema` (the
/// [`BENCH_SCHEMA`] version), `bench`, `config_fingerprint` (FNV-1a over
/// the bench name and its config pairs — trajectory consumers use it to
/// tell apart points produced under different parameter sets), and the
/// config echo itself. Bench-specific measurements chain on via the
/// `field_*` builders; [`write`](Self::write) lands the file at the
/// workspace root.
pub struct TrajectoryPoint {
    bench: &'static str,
    fingerprint: u64,
    obj: JsonObj,
}

impl TrajectoryPoint {
    /// `config` pairs are `(key, raw JSON value)` — numbers as `"8000"`,
    /// strings pre-quoted as `"\"la\""`.
    pub fn new(bench: &'static str, config: &[(&str, String)]) -> Self {
        let mut parts: Vec<String> = vec![bench.to_string()];
        parts.extend(config.iter().map(|(k, v)| format!("{k}={v}")));
        let fp = fingerprint(&parts);
        let mut obj = JsonObj::new()
            .field_str("schema", BENCH_SCHEMA)
            .field_str("bench", bench)
            .field_str("config_fingerprint", &format!("{fp:#018x}"));
        for (k, v) in config {
            obj = obj.field_raw(k, v);
        }
        TrajectoryPoint {
            bench,
            fingerprint: fp,
            obj,
        }
    }

    /// The config fingerprint stamped into the header (also the key that
    /// links this point's run-log lines — see [`runlog`](Self::runlog)).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// A fresh run-log keyed to this point's bench name + fingerprint.
    pub fn runlog(&self) -> RunLog {
        RunLog::new(self.bench, self.fingerprint)
    }

    /// Appends an unsigned-integer measurement.
    pub fn field_u64(mut self, k: &str, v: u64) -> Self {
        self.obj = self.obj.field_u64(k, v);
        self
    }

    /// Appends a float measurement (non-finite values become `null`).
    pub fn field_f64(mut self, k: &str, v: f64) -> Self {
        self.obj = self.obj.field_f64(k, v);
        self
    }

    /// Appends a string field.
    pub fn field_str(mut self, k: &str, v: &str) -> Self {
        self.obj = self.obj.field_str(k, v);
        self
    }

    /// Appends a boolean field.
    pub fn field_bool(mut self, k: &str, v: bool) -> Self {
        self.obj = self.obj.field_bool(k, v);
        self
    }

    /// Appends pre-rendered JSON (nested objects / arrays).
    pub fn field_raw(mut self, k: &str, v: &str) -> Self {
        self.obj = self.obj.field_raw(k, v);
        self
    }

    /// Writes the point to `<workspace root>/<file>` and logs it.
    pub fn write(self, file: &str) {
        let path = format!("{}/{file}", workspace_root());
        let mut body = self.obj.finish();
        body.push('\n');
        std::fs::write(&path, body).unwrap_or_else(|e| panic!("write {file}: {e}"));
        println!("wrote {file}");
    }
}

/// Appends a bench's run-log lines to `<workspace root>/RUNLOG.jsonl`
/// (no-op when the log is empty, e.g. with the `obs` feature off). The
/// sink is size-capped: once the file would exceed
/// [`pmi::obs::RUNLOG_MAX_LINES`] lines it is rotated down to the newest
/// lines, so the committed trajectory never grows without bound while the
/// recent history `pmi-analyze` diffs against stays intact.
///
/// The run log is telemetry, not a result: an unwritable sink (read-only
/// checkout, full disk) must not fail the bench that produced the numbers,
/// so I/O errors are reported on stderr and otherwise ignored.
pub fn append_runlog(log: &RunLog) {
    if log.is_empty() {
        return;
    }
    let path = std::path::Path::new(workspace_root()).join("RUNLOG.jsonl");
    match log.append_to_capped(&path, pmi::obs::RUNLOG_MAX_LINES) {
        Ok(()) => println!(
            "appended {} run-log line(s) to RUNLOG.jsonl",
            log.lines().len()
        ),
        Err(e) => eprintln!("warning: could not append RUNLOG.jsonl: {e} (continuing)"),
    }
}

/// The uniform run-log trailer for the criterion figure benches: records
/// one whole-process `bench` phase and appends it. Only fires in real
/// measurement mode (`cargo bench` passes `--bench`); smoke/test
/// invocations write nothing, mirroring the `BENCH_*.json` emitters.
pub fn finish_criterion_runlog(bench: &'static str, t0: Instant) {
    if !std::env::args().any(|a| a == "--bench") {
        return;
    }
    let mut log = RunLog::new(bench, fingerprint(&[bench]));
    log.record("bench", 1, t0.elapsed().as_secs_f64(), &[]);
    append_runlog(&log);
}

/// Enables the paper's 128 KB MkNNQ cache on a disk-based index by probing
/// its storage handle (no-op for in-memory indexes). The trait has no disk
/// accessor, so the harness passes the flag at build time instead; this
/// helper documents the knob for external users.
pub fn knn_cache_bytes() -> usize {
    pmi::storage::KNN_CACHE_BYTES
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmi::L2;

    #[test]
    fn build_and_measure_roundtrip() {
        let pts = datasets::la(400, 3);
        let pv = shared_pivots(&pts, &L2, 4, 3);
        let opts = options_for(pts.len(), 14143.0, 4, false, 3);
        let (idx, stats) =
            build_measured(IndexKind::Laesa, &pts, &L2, &pv, &opts).expect("buildable");
        assert_eq!(stats.compdists, 400 * 4);
        assert!(stats.mem_kb > 0);
        assert_eq!(stats.pa, 0);

        let qs = query_positions(pts.len(), 5, 3);
        let r = radius_for(&pts, &L2, 0.16, 3);
        let mrq = run_mrq(idx.as_ref(), &pts, &qs, r);
        assert!(mrq.compdists > 0.0);
        // Selectivity should be in the right ballpark (16% ± a lot at this
        // tiny scale).
        assert!(mrq.results > 400.0 * 0.02 && mrq.results < 400.0 * 0.6);
        let knn = run_knn(idx.as_ref(), &pts, &qs, 10);
        assert!((knn.results - 10.0).abs() < 1e-9);
    }

    #[test]
    fn updates_roundtrip() {
        let pts = datasets::la(300, 5);
        let pv = shared_pivots(&pts, &L2, 3, 5);
        let opts = options_for(pts.len(), 14143.0, 3, false, 5);
        let (mut idx, _) =
            build_measured(IndexKind::OmniR, &pts, &L2, &pv, &opts).expect("buildable");
        let cost = run_updates(idx.as_mut(), 10, 5);
        assert!(cost.compdists > 0.0);
        assert!(cost.pa > 0.0);
        assert_eq!(idx.len(), 300);
    }
}
