//! The paper's four evaluation datasets, with their metrics and analytic
//! distance bounds (Table 2), at harness scale.

use pmi::datasets;
use pmi::{EditDistance, LInf, L1, L2};

/// One of the paper's datasets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scenario {
    /// LA: 2-d locations, L2.
    La,
    /// Words: strings, edit distance (discrete).
    Words,
    /// Color: 282-d features, L1.
    Color,
    /// Synthetic: 20-d integer vectors, (discrete) L∞.
    Synthetic,
}

impl Scenario {
    /// All four, in the paper's order.
    pub const ALL: [Scenario; 4] = [
        Scenario::La,
        Scenario::Words,
        Scenario::Color,
        Scenario::Synthetic,
    ];

    /// Display name.
    pub fn label(&self) -> &'static str {
        match self {
            Scenario::La => "LA",
            Scenario::Words => "Words",
            Scenario::Color => "Color",
            Scenario::Synthetic => "Synthetic",
        }
    }

    /// Analytic upper bound on distances (`d⁺`): the domain bound, like the
    /// paper's Table 2 MaxD column.
    pub fn d_plus(&self) -> f64 {
        match self {
            Scenario::La => 14143.0, // √2 · 10⁴
            Scenario::Words => 34.0, // longest word
            Scenario::Color => 510.0 * datasets::COLOR_DIM as f64,
            Scenario::Synthetic => 10000.0,
        }
    }

    /// Whether the metric is discrete (BKT/FQT availability).
    pub fn is_discrete(&self) -> bool {
        matches!(self, Scenario::Words | Scenario::Synthetic)
    }

    /// Default cardinality at harness scale 1.0. Color is scaled down — a
    /// 282-dim L1 distance costs ~140× an LA distance.
    pub fn default_n(&self) -> usize {
        match self {
            Scenario::La => 20_000,
            Scenario::Words => 12_000,
            Scenario::Color => 6_000,
            Scenario::Synthetic => 16_000,
        }
    }

    /// Materializes the dataset at `scale` (multiplies the default n).
    pub fn data(&self, scale: f64, seed: u64) -> ScenarioData {
        let n = ((self.default_n() as f64 * scale) as usize).max(200);
        match self {
            Scenario::La => ScenarioData::Vecs {
                scenario: *self,
                objects: datasets::la(n, seed),
                metric: VecMetric::L2(L2),
            },
            Scenario::Words => ScenarioData::Strs {
                scenario: *self,
                objects: datasets::words(n, seed),
                metric: EditDistance,
            },
            Scenario::Color => ScenarioData::Vecs {
                scenario: *self,
                objects: datasets::color(n, seed),
                metric: VecMetric::L1(L1),
            },
            Scenario::Synthetic => ScenarioData::Vecs {
                scenario: *self,
                objects: datasets::synthetic(n, seed),
                metric: VecMetric::LInf(LInf::discrete()),
            },
        }
    }
}

/// A vector metric chosen per dataset (Table 2's distance column).
#[derive(Clone, Copy, Debug)]
pub enum VecMetric {
    /// Manhattan.
    L1(L1),
    /// Euclidean.
    L2(L2),
    /// Chebyshev (discrete on integer data).
    LInf(LInf),
}

impl pmi::Metric<Vec<f32>> for VecMetric {
    fn dist(&self, a: &Vec<f32>, b: &Vec<f32>) -> f64 {
        match self {
            VecMetric::L1(m) => m.dist(a, b),
            VecMetric::L2(m) => m.dist(a, b),
            VecMetric::LInf(m) => m.dist(a, b),
        }
    }
    fn is_discrete(&self) -> bool {
        match self {
            VecMetric::L1(m) => pmi::Metric::<Vec<f32>>::is_discrete(m),
            VecMetric::L2(m) => pmi::Metric::<Vec<f32>>::is_discrete(m),
            VecMetric::LInf(m) => pmi::Metric::<Vec<f32>>::is_discrete(m),
        }
    }
    fn name(&self) -> &'static str {
        match self {
            VecMetric::L1(_) => "L1",
            VecMetric::L2(_) => "L2",
            VecMetric::LInf(_) => "Linf",
        }
    }
}

/// A materialized dataset: either vectors or strings.
pub enum ScenarioData {
    /// Vector data (LA, Color, Synthetic).
    Vecs {
        /// Source scenario.
        scenario: Scenario,
        /// The objects.
        objects: Vec<Vec<f32>>,
        /// Its metric.
        metric: VecMetric,
    },
    /// String data (Words).
    Strs {
        /// Source scenario.
        scenario: Scenario,
        /// The objects.
        objects: Vec<String>,
        /// Its metric.
        metric: EditDistance,
    },
}

impl ScenarioData {
    /// Cardinality.
    pub fn len(&self) -> usize {
        match self {
            ScenarioData::Vecs { objects, .. } => objects.len(),
            ScenarioData::Strs { objects, .. } => objects.len(),
        }
    }

    /// Whether empty (never, in practice).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The scenario this data came from.
    pub fn scenario(&self) -> Scenario {
        match self {
            ScenarioData::Vecs { scenario, .. } => *scenario,
            ScenarioData::Strs { scenario, .. } => *scenario,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_materialize() {
        for s in Scenario::ALL {
            let d = s.data(0.05, 1);
            assert!(d.len() >= 200, "{}", s.label());
            assert_eq!(d.scenario(), s);
            assert!(s.d_plus() > 0.0);
        }
    }

    #[test]
    fn discreteness_matches_metric() {
        use pmi::Metric;
        for s in Scenario::ALL {
            match s.data(0.02, 1) {
                ScenarioData::Vecs { metric, .. } => {
                    assert_eq!(metric.is_discrete(), s.is_discrete(), "{}", s.label());
                }
                ScenarioData::Strs { metric, .. } => {
                    assert_eq!(
                        Metric::<String>::is_discrete(&metric),
                        s.is_discrete(),
                        "{}",
                        s.label()
                    );
                }
            }
        }
    }
}
