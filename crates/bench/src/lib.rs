//! Experiment harness for the VLDB 2017 study.
//!
//! Everything here mirrors §6.1 of the paper: four datasets (Table 2), the
//! shared HFI pivot set, Table 3's parameter grid (|P| ∈ {1,3,5,7,9},
//! r ∈ {4..64}% selectivity, k ∈ {5..100}), and the three cost metrics —
//! page accesses (PA), distance computations (compdists) and CPU time —
//! averaged over a batch of random queries. The `repro` binary
//! (`cargo run -p pmi-bench --release --bin repro -- all`) regenerates
//! every table and figure; see EXPERIMENTS.md for the mapping.

pub mod experiments;
pub mod harness;
pub mod scenario;

pub use harness::{BuildStats, QueryCost, UpdateCost};
pub use scenario::{Scenario, ScenarioData};
