//! Structural validator for the JSONL run-metrics sink (`RUNLOG.jsonl`).
//!
//! Two modes:
//!
//! * `validate_runlog <file>...` — check every line of each file against
//!   the `pmi-runlog-v1` schema via [`pmi::obs::validate_runlog_line`];
//!   exits non-zero on the first malformed line. This is what CI runs
//!   against a real bench emission.
//! * `validate_runlog --generate` — self-contained smoke: build a small
//!   engine, serve a batch, turn the resulting metrics snapshot into a
//!   run-log, and validate every generated line without touching disk.
//!   Proves the emitter and the validator agree even when no bench has
//!   run yet (and regardless of whether the `obs` feature is compiled in:
//!   with it off the snapshot is empty and only the hand-recorded lines
//!   are checked).

use pmi::builder::{BuildOptions, IndexKind};
use pmi::engine::{EngineConfig, Query};
use pmi::obs::{fingerprint, validate_runlog_line, RunLog};
use pmi::{build_sharded_vector_engine, datasets, PartitionPolicy, L2};

fn generate_and_validate() -> Result<(), String> {
    let pts = datasets::la(500, 7);
    let engine = build_sharded_vector_engine(
        IndexKind::Laesa,
        pts.clone(),
        L2,
        &BuildOptions {
            d_plus: 14143.0,
            ..BuildOptions::default()
        },
        &EngineConfig {
            shards: 4,
            threads: 2,
            ..EngineConfig::default()
        },
        PartitionPolicy::PivotSpace,
    )
    .map_err(|e| format!("build failed: {e}"))?;
    let radius = datasets::calibrate_radius(&pts, &L2, 0.05, 7);
    let batch: Vec<Query<Vec<f32>>> = (0..32)
        .map(|i| {
            let q = pts[(i * 17) % pts.len()].clone();
            if i % 2 == 0 {
                Query::range(q, radius)
            } else {
                Query::knn(q, 5)
            }
        })
        .collect();
    let out = engine.serve(&batch);

    let mut log = RunLog::new(
        "validate_runlog_smoke",
        fingerprint(&["laesa", "P=4", "n=500"]),
    );
    log.record(
        "serve",
        1,
        out.report.wall_secs,
        &[
            ("queries", batch.len() as u64),
            ("shards_probed", out.report.shards_probed),
        ],
    );
    log.extend_from(&engine.metrics());

    let compiled = pmi::obs::Registry::compiled_in();
    if compiled && log.lines().len() < 2 {
        return Err("obs is compiled in but the snapshot produced no phase lines".into());
    }
    for line in log.lines() {
        validate_runlog_line(line).map_err(|e| format!("{e}: {line}"))?;
    }
    println!(
        "validate_runlog --generate: {} line(s) ok (obs compiled_in = {compiled})",
        log.lines().len()
    );
    Ok(())
}

fn validate_files(paths: &[String]) -> Result<(), String> {
    for path in paths {
        let body = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let mut count = 0usize;
        for (i, line) in body.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            validate_runlog_line(line).map_err(|e| format!("{path}:{}: {e}", i + 1))?;
            count += 1;
        }
        // Distinct from any malformed-line error: an empty sink usually
        // means the emitting bench never ran (or obs was compiled out),
        // which CI should surface differently from a schema violation.
        if count == 0 {
            return Err(format!(
                "{path}: empty run-log — zero lines to validate (did the bench run with obs on?)"
            ));
        }
        println!("{path}: {count} line(s) ok");
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = if args.iter().any(|a| a == "--generate") {
        generate_and_validate()
    } else if args.is_empty() {
        Err("usage: validate_runlog <RUNLOG.jsonl>... | validate_runlog --generate".into())
    } else {
        validate_files(&args)
    };
    if let Err(e) = result {
        eprintln!("validate_runlog: {e}");
        std::process::exit(1);
    }
}
