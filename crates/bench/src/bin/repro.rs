//! Reproduction driver: regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run --release -p pmi-bench --bin repro -- all
//! cargo run --release -p pmi-bench --bin repro -- fig16 --scale 0.5 --queries 50
//! ```

use pmi_bench::experiments::{self, ExpConfig};

const USAGE: &str = "\
repro — regenerate the tables and figures of 'Pivot-based Metric Indexing' (VLDB 2017)

USAGE: repro <experiment> [--scale F] [--queries N] [--updates N] [--seed N]

EXPERIMENTS:
  table2   dataset statistics
  table4   construction costs & storage sizes
  table5   construction ranking (runs table4)
  table6   update costs
  table7   update ranking (runs table6)
  fig14    EPT vs EPT* (MkNNQ vs k)
  fig15    M-index vs M-index* (MkNNQ vs k)
  fig16    MRQ vs radius selectivity (9 indexes x 4 datasets)
  fig17    MkNNQ vs k (9 indexes x 4 datasets)
  fig18    MkNNQ vs |P| (LA + Synthetic)
  scale    batch-serve QPS at 10^5 x scale objects (Synthetic, LAESA, P in {1,8},
           both partition policies and filter-column modes; --scale 10 = 10^6)
  all      everything above
";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprint!("{USAGE}");
        std::process::exit(2);
    }
    let mut cfg = ExpConfig::default();
    let mut exp = String::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => cfg.scale = it.next().expect("--scale F").parse().expect("float"),
            "--queries" => cfg.queries = it.next().expect("--queries N").parse().expect("int"),
            "--updates" => cfg.updates = it.next().expect("--updates N").parse().expect("int"),
            "--seed" => cfg.seed = it.next().expect("--seed N").parse().expect("int"),
            "-h" | "--help" => {
                print!("{USAGE}");
                return;
            }
            other if exp.is_empty() && !other.starts_with('-') => exp = other.to_string(),
            other => {
                eprintln!("unknown argument: {other}\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    println!(
        "# repro {exp} — scale {:.2}, {} queries, {} updates, seed {}",
        cfg.scale, cfg.queries, cfg.updates, cfg.seed
    );
    match exp.as_str() {
        "table2" => experiments::table2(&cfg),
        "table4" => {
            experiments::table4(&cfg);
        }
        "table5" => experiments::table5(&cfg),
        "table6" => {
            experiments::table6(&cfg);
        }
        "table7" => experiments::table7(&cfg),
        "fig14" => {
            experiments::fig14(&cfg);
        }
        "fig15" => {
            experiments::fig15(&cfg);
        }
        "fig16" => {
            experiments::fig16(&cfg);
        }
        "fig17" => {
            experiments::fig17(&cfg);
        }
        "fig18" => {
            experiments::fig18(&cfg);
        }
        "scale" => {
            experiments::scale(&cfg);
        }
        "all" => {
            experiments::table2(&cfg);
            experiments::table5(&cfg); // includes table4
            experiments::table7(&cfg); // includes table6
            experiments::fig14(&cfg);
            experiments::fig15(&cfg);
            experiments::fig16(&cfg);
            experiments::fig17(&cfg);
            experiments::fig18(&cfg);
        }
        other => {
            eprintln!("unknown experiment: {other}\n{USAGE}");
            std::process::exit(2);
        }
    }
}
