//! `pmi-analyze` — the trajectory analyzer and regression sentinel over
//! the repo's committed measurement artifacts.
//!
//! Reads any mix of `RUNLOG.jsonl` files (the `pmi-runlog-v1` sink every
//! bench appends to) and `BENCH_*.json` trajectory points, then:
//!
//! * groups run-log lines by `(bench, config_fingerprint, phase)` — the
//!   fingerprint keeps points measured under different parameter sets from
//!   being conflated — and computes the **wall-per-call** delta from the
//!   group's first recorded run to its last,
//! * pulls each trajectory point's quality gates: every boolean key ending
//!   in `_ok` anywhere in the object (`regression_ok`, `overhead_ok`,
//!   `trace.overhead_ok`, ...) is a gate the emitting bench already
//!   decided; this tool re-surfaces the verdicts in one place,
//! * renders a markdown trajectory report (stdout, or `--out <file>`).
//!
//! With `--check` it becomes CI's regression sentinel and exits non-zero
//! when any gate bool is `false`, or when a tracked phase's wall-per-call
//! grew beyond `--tolerance <factor>` (default 3.0 — generous on purpose:
//! run-log walls come from shared CI runners, so the sentinel is meant to
//! catch order-of-magnitude cliffs and flipped gates, not 10% noise).

use pmi::obs::{JsonValue, RUNLOG_SCHEMA};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One run-log observation: calls + wall for a phase at one emission.
struct Obs {
    calls: u64,
    wall_secs: f64,
}

impl Obs {
    fn per_call(&self) -> f64 {
        self.wall_secs / self.calls.max(1) as f64
    }
}

/// A `(bench, fingerprint, phase)` group's chronological observations
/// (file order is emission order — benches append).
type Groups = BTreeMap<(String, String, String), Vec<Obs>>;

/// One surfaced quality gate from a trajectory point.
struct Gate {
    file: String,
    /// Dotted path to the bool inside the point (`obs.overhead_ok`).
    path: String,
    ok: bool,
}

fn parse_runlog(path: &str, body: &str, groups: &mut Groups) -> Result<usize, String> {
    let mut n = 0usize;
    for (i, line) in body.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = JsonValue::parse(line).map_err(|e| format!("{path}:{}: {e}", i + 1))?;
        let field = |k: &str| -> Result<&JsonValue, String> {
            v.get(k)
                .ok_or_else(|| format!("{path}:{}: missing key \"{k}\"", i + 1))
        };
        let schema = field("schema")?.as_str().unwrap_or_default();
        if schema != RUNLOG_SCHEMA {
            return Err(format!(
                "{path}:{}: schema \"{schema}\" is not \"{RUNLOG_SCHEMA}\"",
                i + 1
            ));
        }
        let bench = field("bench")?.as_str().unwrap_or_default().to_string();
        let fp = field("fingerprint")?
            .as_str()
            .unwrap_or_default()
            .to_string();
        let phase = field("phase")?.as_str().unwrap_or_default().to_string();
        let calls = field("calls")?.as_u64().unwrap_or(0);
        let wall_secs = field("wall_secs")?.as_f64().unwrap_or(0.0);
        groups
            .entry((bench, fp, phase))
            .or_default()
            .push(Obs { calls, wall_secs });
        n += 1;
    }
    if n == 0 {
        return Err(format!("{path}: empty run-log (no lines to analyze)"));
    }
    Ok(n)
}

/// Walks a trajectory point and collects every `*_ok` boolean with its
/// dotted path.
fn collect_gates(file: &str, prefix: &str, v: &JsonValue, out: &mut Vec<Gate>) {
    if let Some(entries) = v.entries() {
        for (k, child) in entries {
            let path = if prefix.is_empty() {
                k.clone()
            } else {
                format!("{prefix}.{k}")
            };
            if k.ends_with("_ok") {
                if let Some(ok) = child.as_bool() {
                    out.push(Gate {
                        file: file.to_string(),
                        path,
                        ok,
                    });
                    continue;
                }
            }
            collect_gates(file, &path, child, out);
        }
    } else if let Some(items) = v.items() {
        for (i, child) in items.iter().enumerate() {
            collect_gates(file, &format!("{prefix}[{i}]"), child, out);
        }
    }
}

struct BenchPoint {
    file: String,
    bench: String,
    fingerprint: String,
}

fn parse_bench(path: &str, body: &str, gates: &mut Vec<Gate>) -> Result<BenchPoint, String> {
    let v = JsonValue::parse(body.trim()).map_err(|e| format!("{path}: {e}"))?;
    let bench = v
        .get("bench")
        .and_then(|b| b.as_str())
        .ok_or_else(|| format!("{path}: missing \"bench\""))?
        .to_string();
    let fingerprint = v
        .get("config_fingerprint")
        .and_then(|b| b.as_str())
        .unwrap_or("?")
        .to_string();
    collect_gates(path, "", &v, gates);
    Ok(BenchPoint {
        file: path.to_string(),
        bench,
        fingerprint,
    })
}

fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3}s")
    } else if s >= 1e-3 {
        format!("{:.1}ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.1}µs", s * 1e6)
    } else {
        format!("{:.0}ns", s * 1e9)
    }
}

struct Report {
    markdown: String,
    /// `--check` failures, empty when the trajectory is healthy.
    violations: Vec<String>,
}

fn analyze(groups: &Groups, points: &[BenchPoint], gates: &[Gate], tolerance: f64) -> Report {
    let mut md = String::new();
    let mut violations = Vec::new();
    let _ = writeln!(md, "# Trajectory report\n");

    if !points.is_empty() {
        let _ = writeln!(md, "## Trajectory points\n");
        let _ = writeln!(md, "| file | bench | fingerprint |");
        let _ = writeln!(md, "|---|---|---|");
        for p in points {
            let _ = writeln!(md, "| {} | {} | `{}` |", p.file, p.bench, p.fingerprint);
        }
        let _ = writeln!(md);
    }

    if !gates.is_empty() {
        let _ = writeln!(md, "## Quality gates\n");
        let _ = writeln!(md, "| file | gate | verdict |");
        let _ = writeln!(md, "|---|---|---|");
        for g in gates {
            let verdict = if g.ok { "ok" } else { "**FAIL**" };
            let _ = writeln!(md, "| {} | `{}` | {verdict} |", g.file, g.path);
            if !g.ok {
                violations.push(format!("{}: gate {} is false", g.file, g.path));
            }
        }
        let _ = writeln!(md);
    }

    if !groups.is_empty() {
        let _ = writeln!(md, "## Run-log phases (wall per call, first → last run)\n");
        let _ = writeln!(
            md,
            "| bench | fingerprint | phase | runs | calls (last) | first | last | Δ |"
        );
        let _ = writeln!(md, "|---|---|---|---|---|---|---|---|");
        for ((bench, fp, phase), obs) in groups {
            let first = obs.first().expect("non-empty group");
            let last = obs.last().expect("non-empty group");
            let (a, b) = (first.per_call(), last.per_call());
            let delta = if a > 0.0 {
                format!("{:+.1}%", (b / a - 1.0) * 100.0)
            } else {
                "n/a".to_string()
            };
            let _ = writeln!(
                md,
                "| {bench} | `{fp}` | {phase} | {} | {} | {} | {} | {delta} |",
                obs.len(),
                last.calls,
                fmt_secs(a),
                fmt_secs(b),
            );
            // A phase only regresses when we have distinct runs to compare
            // and the latest wall-per-call blew past tolerance × first.
            if obs.len() >= 2 && a > 0.0 && b > a * tolerance {
                violations.push(format!(
                    "{bench}/{phase} ({fp}): wall per call regressed {}× \
                     ({} → {}), tolerance {tolerance}×",
                    (b / a * 10.0).round() / 10.0,
                    fmt_secs(a),
                    fmt_secs(b),
                ));
            }
        }
        let _ = writeln!(md);
    }

    let _ = writeln!(
        md,
        "Sentinel: {} gate(s), {} phase group(s), tolerance {tolerance}× — {}.",
        gates.len(),
        groups.len(),
        if violations.is_empty() {
            "healthy".to_string()
        } else {
            format!("{} violation(s)", violations.len())
        }
    );
    Report {
        markdown: md,
        violations,
    }
}

fn run(args: &[String]) -> Result<bool, String> {
    let mut check = false;
    let mut tolerance = 3.0f64;
    let mut out: Option<String> = None;
    let mut files: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--check" => check = true,
            "--tolerance" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--tolerance needs a factor".to_string())?;
                tolerance = v
                    .parse::<f64>()
                    .map_err(|_| format!("--tolerance: not a number: {v}"))?;
                if !(tolerance.is_finite() && tolerance >= 1.0) {
                    return Err(format!("--tolerance must be >= 1.0, got {tolerance}"));
                }
            }
            "--out" => {
                out = Some(
                    it.next()
                        .ok_or_else(|| "--out needs a path".to_string())?
                        .clone(),
                )
            }
            _ => files.push(a.clone()),
        }
    }
    if files.is_empty() {
        return Err(
            "usage: pmi-analyze [--check] [--tolerance F] [--out report.md] \
             <RUNLOG.jsonl | BENCH_*.json>..."
                .to_string(),
        );
    }

    let mut groups: Groups = Groups::new();
    let mut points: Vec<BenchPoint> = Vec::new();
    let mut gates: Vec<Gate> = Vec::new();
    for path in &files {
        let body = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        if path.ends_with(".jsonl") {
            parse_runlog(path, &body, &mut groups)?;
        } else {
            points.push(parse_bench(path, &body, &mut gates)?);
        }
    }

    let report = analyze(&groups, &points, &gates, tolerance);
    match &out {
        Some(p) => {
            std::fs::write(p, &report.markdown).map_err(|e| format!("cannot write {p}: {e}"))?;
            println!("wrote {p}");
        }
        None => print!("{}", report.markdown),
    }
    if check {
        for v in &report.violations {
            eprintln!("pmi-analyze: REGRESSION: {v}");
        }
        return Ok(report.violations.is_empty());
    }
    Ok(true)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(true) => {}
        Ok(false) => std::process::exit(2),
        Err(e) => {
            eprintln!("pmi-analyze: {e}");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(calls: u64, wall_secs: f64) -> Obs {
        Obs { calls, wall_secs }
    }

    #[test]
    fn healthy_trajectory_has_no_violations() {
        let mut groups = Groups::new();
        groups.insert(
            ("scan".into(), "0xab".into(), "serve".into()),
            vec![obs(100, 1.0), obs(100, 1.1)],
        );
        let r = analyze(&groups, &[], &[], 3.0);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert!(r.markdown.contains("| scan |"));
        assert!(r.markdown.contains("healthy"));
    }

    #[test]
    fn wall_regression_beyond_tolerance_is_flagged() {
        let mut groups = Groups::new();
        groups.insert(
            ("scan".into(), "0xab".into(), "serve".into()),
            vec![obs(100, 1.0), obs(100, 5.0)],
        );
        let r = analyze(&groups, &[], &[], 3.0);
        assert_eq!(r.violations.len(), 1, "{:?}", r.violations);
        assert!(r.violations[0].contains("scan/serve"));
        // A single run can never regress against itself.
        let mut lone = Groups::new();
        lone.insert(
            ("scan".into(), "0xab".into(), "serve".into()),
            vec![obs(100, 5.0)],
        );
        assert!(analyze(&lone, &[], &[], 3.0).violations.is_empty());
    }

    #[test]
    fn false_gates_fail_and_nested_gates_are_found() {
        let v = JsonValue::parse(
            r#"{"bench":"scan","regression_ok":true,"obs":{"overhead_ok":false},"points":[{"trace":{"overhead_ok":true}}]}"#,
        )
        .unwrap();
        let mut gates = Vec::new();
        collect_gates("BENCH_scan.json", "", &v, &mut gates);
        let paths: Vec<&str> = gates.iter().map(|g| g.path.as_str()).collect();
        assert_eq!(
            paths,
            [
                "regression_ok",
                "obs.overhead_ok",
                "points[0].trace.overhead_ok"
            ]
        );
        let r = analyze(&Groups::new(), &[], &gates, 3.0);
        assert_eq!(r.violations.len(), 1);
        assert!(r.violations[0].contains("obs.overhead_ok"));
    }

    #[test]
    fn robust_gates_are_collected_from_the_scan_point() {
        // Pins the fault-tolerance gates of BENCH_scan.json's `robust`
        // section to the sentinel: a `degraded_ok: false` (or
        // `overhead_ok: false`) emitted by the deadline-pressure bench
        // must fail `--check`, with no analyzer changes needed.
        let v = JsonValue::parse(
            r#"{"bench":"scan_throughput","robust":{"on_qps":1000,"off_qps":1010,
                "ratio":0.990,"overhead_ok":true,
                "pressure":[{"cap":0,"degraded":0,"shed":0},{"cap":1,"degraded":256,"shed":0}],
                "shed_at_batch_deadline":256,"degraded_ok":false}}"#,
        )
        .unwrap();
        let mut gates = Vec::new();
        collect_gates("BENCH_scan.json", "", &v, &mut gates);
        let paths: Vec<&str> = gates.iter().map(|g| g.path.as_str()).collect();
        assert_eq!(paths, ["robust.overhead_ok", "robust.degraded_ok"]);
        let r = analyze(&Groups::new(), &[], &gates, 3.0);
        assert_eq!(r.violations.len(), 1, "{:?}", r.violations);
        assert!(r.violations[0].contains("robust.degraded_ok"));
    }

    #[test]
    fn f32_and_sched_gates_are_collected() {
        // Pins the ISSUE-9 gate shapes to the sentinel: the f32
        // column-mode gates of BENCH_scan.json (`kernel.f32_speedup_ok`,
        // `f32.exact_ok`) and the scale-tier scheduling gate of
        // BENCH_engine.json (`sched.scaling_ok`) must be picked up by the
        // generic `_ok` walk — and unknown sibling keys (`simd_tier`,
        // `strategy`, future fields) must be ignored, not crash `--check`.
        let scan = JsonValue::parse(
            r#"{"bench":"scan_throughput",
                "kernel":{"blocked_rows_per_sec":648000000,"simd_tier":"avx2",
                          "f32_rows_per_sec":1300000000,"f32_speedup":2.0,
                          "f32_speedup_ok":true,"scale_n":100000,"mystery":null},
                "f32":{"exact_ok":true,"f64_qps":2400,"f32_qps":2900,"qps_ratio":1.21}}"#,
        )
        .unwrap();
        let engine = JsonValue::parse(
            r#"{"bench":"engine_qps",
                "sched":{"n":100000,"batch":64,"scaling_ok":false,
                         "points":[{"policy":"round-robin","shards":8,"qps":900,
                                    "strategy":"query-parallel"}]}}"#,
        )
        .unwrap();
        let mut gates = Vec::new();
        collect_gates("BENCH_scan.json", "", &scan, &mut gates);
        collect_gates("BENCH_engine.json", "", &engine, &mut gates);
        let paths: Vec<&str> = gates.iter().map(|g| g.path.as_str()).collect();
        assert_eq!(
            paths,
            ["kernel.f32_speedup_ok", "f32.exact_ok", "sched.scaling_ok"]
        );
        let r = analyze(&Groups::new(), &[], &gates, 3.0);
        assert_eq!(r.violations.len(), 1, "{:?}", r.violations);
        assert!(r.violations[0].contains("sched.scaling_ok"));
    }

    #[test]
    fn availability_gate_is_collected_and_old_update_artifacts_still_parse() {
        // Pins the ISSUE-10 availability gate to the sentinel: the
        // during-churn section of BENCH_update.json carries
        // `update.availability_ok` (serve QPS while a writer commits apply
        // transactions must stay ≥ 0.5× the no-churn figure), and a false
        // verdict must fail `--check` with no analyzer changes.
        let new_point = JsonValue::parse(
            r#"{"bench":"update_throughput","mutation":"mvcc",
                "qps_no_churn_concurrent":52000,"qps_during_churn":20000,
                "availability":0.38,"churn_commits":120,
                "queue_depth_max":4,"queue_shed":0,"queue_rejected":17,
                "update.availability_ok":false}"#,
        )
        .unwrap();
        let mut gates = Vec::new();
        collect_gates("BENCH_update.json", "", &new_point, &mut gates);
        let paths: Vec<&str> = gates.iter().map(|g| g.path.as_str()).collect();
        assert_eq!(paths, ["update.availability_ok"]);
        let r = analyze(&Groups::new(), &[], &gates, 3.0);
        assert_eq!(r.violations.len(), 1, "{:?}", r.violations);
        assert!(r.violations[0].contains("update.availability_ok"));

        // A pre-ISSUE-10 artifact (no during-churn section, no gate) still
        // parses and simply contributes zero gates.
        let old_point = JsonValue::parse(
            r#"{"bench":"update_throughput","inserts_per_sec":400000,
                "removes_per_sec":380000,"qps_before_churn":50000,
                "qps_after_churn":49000,"qps_no_churn_baseline":51000,
                "recluster_passes":1}"#,
        )
        .unwrap();
        let mut old_gates = Vec::new();
        collect_gates("BENCH_update.json", "", &old_point, &mut old_gates);
        assert!(old_gates.is_empty());
        assert!(analyze(&Groups::new(), &[], &old_gates, 3.0)
            .violations
            .is_empty());
    }

    #[test]
    fn runlog_lines_group_by_bench_fp_phase() {
        let body = concat!(
            r#"{"schema":"pmi-runlog-v1","bench":"a","fingerprint":"0x1","phase":"p","calls":10,"wall_secs":0.5}"#,
            "\n",
            r#"{"schema":"pmi-runlog-v1","bench":"a","fingerprint":"0x1","phase":"p","calls":10,"wall_secs":0.6}"#,
            "\n",
            r#"{"schema":"pmi-runlog-v1","bench":"a","fingerprint":"0x2","phase":"p","calls":10,"wall_secs":0.7}"#,
            "\n",
        );
        let mut groups = Groups::new();
        let n = parse_runlog("r.jsonl", body, &mut groups).unwrap();
        assert_eq!(n, 3);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[&("a".into(), "0x1".into(), "p".into())].len(), 2);
        // Wrong schema and empty files are hard errors.
        assert!(parse_runlog("r.jsonl", r#"{"schema":"nope"}"#, &mut Groups::new()).is_err());
        let empty = parse_runlog("r.jsonl", "", &mut Groups::new()).unwrap_err();
        assert!(empty.contains("empty run-log"), "{empty}");
    }
}
