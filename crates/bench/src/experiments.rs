//! Per-table / per-figure experiment drivers. Each function regenerates one
//! artifact of the paper's §6 and prints it as an aligned text table; the
//! `repro` binary maps subcommands onto these.

use crate::harness::{self, BuildStats, QueryCost, UpdateCost};
use crate::scenario::{Scenario, ScenarioData};
use pmi::builder::IndexKind;
use pmi::{datasets, EncodeObject, Metric};

/// Harness-wide experiment settings.
#[derive(Clone, Copy, Debug)]
pub struct ExpConfig {
    /// Dataset scale factor (1.0 = the harness defaults; the paper uses
    /// ~1M objects, which a laptop-scale run shrinks).
    pub scale: f64,
    /// Queries per measurement (paper: 100).
    pub queries: usize,
    /// Update operations per measurement (Table 6).
    pub updates: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for ExpConfig {
    fn default() -> Self {
        ExpConfig {
            scale: 1.0,
            queries: 20,
            updates: 20,
            seed: 42,
        }
    }
}

/// Indexes of the paper's Tables 4 and 6 (BKT/FQT appear only on discrete
/// datasets).
pub fn table_kinds(discrete: bool) -> Vec<IndexKind> {
    let mut v = vec![
        IndexKind::Laesa,
        IndexKind::Ept,
        IndexKind::EptStar,
        IndexKind::Cpt,
    ];
    if discrete {
        v.push(IndexKind::Bkt);
        v.push(IndexKind::Fqt);
    }
    v.extend([
        IndexKind::Mvpt,
        IndexKind::PmTree,
        IndexKind::OmniR,
        IndexKind::MIndexStar,
        IndexKind::Spb,
    ]);
    v
}

/// The nine indexes plotted by Figures 16–18 (BKT/FQT only when discrete).
pub fn figure_kinds(discrete: bool) -> Vec<IndexKind> {
    IndexKind::FIGURE_SET
        .into_iter()
        .filter(|k| discrete || !k.requires_discrete())
        .collect()
}

fn human(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 1e7 {
        format!("{:.2e}", x)
    } else if x.abs() >= 100.0 {
        format!("{:.0}", x)
    } else if x.abs() >= 1.0 {
        format!("{:.1}", x)
    } else {
        format!("{:.4}", x)
    }
}

fn secs(x: f64) -> String {
    if x >= 1.0 {
        format!("{x:.2}s")
    } else if x >= 1e-3 {
        format!("{:.2}ms", x * 1e3)
    } else {
        format!("{:.1}us", x * 1e6)
    }
}

// ---------------------------------------------------------------------------
// Table 2 — dataset statistics
// ---------------------------------------------------------------------------

/// Regenerates Table 2 (cardinality, dims, intrinsic dim, maxD, metric).
pub fn table2(cfg: &ExpConfig) {
    println!("Table 2: datasets (scale {:.2})", cfg.scale);
    println!(
        "{:<10} {:>10} {:>6} {:>9} {:>10} {:>8}",
        "Dataset", "n", "Dim", "IntDim", "MaxD(est)", "Metric"
    );
    for s in Scenario::ALL {
        let data = s.data(cfg.scale, cfg.seed);
        match &data {
            ScenarioData::Vecs {
                objects, metric, ..
            } => {
                let st = datasets::dataset_stats(objects, metric, 20_000, cfg.seed);
                println!(
                    "{:<10} {:>10} {:>6} {:>9.1} {:>10.0} {:>8}",
                    s.label(),
                    objects.len(),
                    objects[0].len(),
                    st.intrinsic_dim,
                    st.max_dist,
                    metric.name()
                );
            }
            ScenarioData::Strs {
                objects, metric, ..
            } => {
                let st = datasets::dataset_stats(objects, metric, 20_000, cfg.seed);
                let max_len = objects.iter().map(|w| w.len()).max().unwrap_or(0);
                println!(
                    "{:<10} {:>10} {:>6} {:>9.1} {:>10.0} {:>8}",
                    s.label(),
                    objects.len(),
                    format!("1~{max_len}"),
                    st.intrinsic_dim,
                    st.max_dist,
                    "edit"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Tables 4/5 — construction cost & storage, and the derived ranking
// ---------------------------------------------------------------------------

fn table4_rows<O, M>(
    objects: &[O],
    metric: &M,
    scenario: Scenario,
    cfg: &ExpConfig,
) -> Vec<(IndexKind, BuildStats)>
where
    O: Clone + EncodeObject + Send + Sync + 'static,
    M: Metric<O> + Clone + 'static,
{
    let high_dim = matches!(scenario, Scenario::Color | Scenario::Synthetic);
    let opts = harness::options_for(
        objects.len(),
        scenario.d_plus(),
        harness::DEFAULT_PIVOTS,
        high_dim,
        cfg.seed,
    );
    let pivots = harness::shared_pivots(objects, metric, opts.num_pivots, cfg.seed);
    table_kinds(scenario.is_discrete())
        .into_iter()
        .filter_map(|kind| {
            harness::build_measured(kind, objects, metric, &pivots, &opts)
                .map(|(_, stats)| (kind, stats))
        })
        .collect()
}

/// Regenerates Table 4 (construction costs and storage sizes).
pub fn table4(cfg: &ExpConfig) -> Vec<(Scenario, Vec<(IndexKind, BuildStats)>)> {
    let mut all = Vec::new();
    for s in Scenario::ALL {
        let data = s.data(cfg.scale, cfg.seed);
        println!("\nTable 4 [{}] (n = {})", s.label(), data.len());
        println!(
            "{:<12} {:>10} {:>14} {:>9} {:>12} {:>12}",
            "Index", "PA", "Compdists", "Time", "Mem(KB)", "Disk(KB)"
        );
        let rows = match &data {
            ScenarioData::Vecs {
                objects, metric, ..
            } => table4_rows(objects, metric, s, cfg),
            ScenarioData::Strs {
                objects, metric, ..
            } => table4_rows(objects, metric, s, cfg),
        };
        for (kind, st) in &rows {
            println!(
                "{:<12} {:>10} {:>14} {:>9} {:>12} {:>12}",
                kind.label(),
                st.pa,
                st.compdists,
                secs(st.secs),
                st.mem_kb,
                st.disk_kb
            );
        }
        all.push((s, rows));
    }
    all
}

/// Regenerates Table 5: ranks indexes by each construction metric, averaged
/// over the datasets.
pub fn table5(cfg: &ExpConfig) {
    let all = table4(cfg);
    println!("\nTable 5: construction ranking (lower = better, averaged rank over datasets)");
    rank_and_print(
        &all,
        &[
            ("PA", &|st: &BuildStats| st.pa as f64),
            ("Compdists", &|st| st.compdists as f64),
            ("Time", &|st| st.secs),
            ("Storage", &|st| (st.mem_kb + st.disk_kb) as f64),
        ],
    );
}

type MetricFn<T> = dyn Fn(&T) -> f64;

fn rank_and_print<T>(all: &[(Scenario, Vec<(IndexKind, T)>)], metrics: &[(&str, &MetricFn<T>)]) {
    use std::collections::HashMap;
    for (mname, f) in metrics {
        let mut ranks: HashMap<IndexKind, (f64, usize)> = HashMap::new();
        for (_, rows) in all {
            let mut vals: Vec<(IndexKind, f64)> = rows.iter().map(|(k, st)| (*k, f(st))).collect();
            vals.sort_by(|a, b| a.1.total_cmp(&b.1));
            for (pos, (k, _)) in vals.iter().enumerate() {
                let e = ranks.entry(*k).or_insert((0.0, 0));
                e.0 += (pos + 1) as f64;
                e.1 += 1;
            }
        }
        let mut avg: Vec<(IndexKind, f64)> = ranks
            .into_iter()
            .map(|(k, (sum, n))| (k, sum / n as f64))
            .collect();
        avg.sort_by(|a, b| a.1.total_cmp(&b.1));
        let line: Vec<String> = avg
            .iter()
            .map(|(k, r)| format!("{}({r:.1})", k.label()))
            .collect();
        println!("{:<10} {}", mname, line.join(" > "));
    }
}

// ---------------------------------------------------------------------------
// Tables 6/7 — update cost and ranking
// ---------------------------------------------------------------------------

fn table6_rows<O, M>(
    objects: &[O],
    metric: &M,
    scenario: Scenario,
    cfg: &ExpConfig,
) -> Vec<(IndexKind, UpdateCost)>
where
    O: Clone + EncodeObject + Send + Sync + 'static,
    M: Metric<O> + Clone + 'static,
{
    let high_dim = matches!(scenario, Scenario::Color | Scenario::Synthetic);
    let opts = harness::options_for(
        objects.len(),
        scenario.d_plus(),
        harness::DEFAULT_PIVOTS,
        high_dim,
        cfg.seed,
    );
    let pivots = harness::shared_pivots(objects, metric, opts.num_pivots, cfg.seed);
    table_kinds(scenario.is_discrete())
        .into_iter()
        .filter_map(|kind| {
            let (mut idx, _) = harness::build_measured(kind, objects, metric, &pivots, &opts)?;
            let cost = harness::run_updates(idx.as_mut(), cfg.updates, cfg.seed);
            Some((kind, cost))
        })
        .collect()
}

/// Regenerates Table 6 (update costs: delete + reinsert).
pub fn table6(cfg: &ExpConfig) -> Vec<(Scenario, Vec<(IndexKind, UpdateCost)>)> {
    let mut all = Vec::new();
    for s in Scenario::ALL {
        let data = s.data(cfg.scale, cfg.seed);
        println!(
            "\nTable 6 [{}] (n = {}, {} updates)",
            s.label(),
            data.len(),
            cfg.updates
        );
        println!(
            "{:<12} {:>10} {:>14} {:>10}",
            "Index", "PA", "Compdists", "Time"
        );
        let rows = match &data {
            ScenarioData::Vecs {
                objects, metric, ..
            } => table6_rows(objects, metric, s, cfg),
            ScenarioData::Strs {
                objects, metric, ..
            } => table6_rows(objects, metric, s, cfg),
        };
        for (kind, c) in &rows {
            println!(
                "{:<12} {:>10} {:>14} {:>10}",
                kind.label(),
                human(c.pa),
                human(c.compdists),
                secs(c.secs)
            );
        }
        all.push((s, rows));
    }
    all
}

/// Regenerates Table 7: update-cost ranking.
pub fn table7(cfg: &ExpConfig) {
    let all = table6(cfg);
    println!("\nTable 7: update ranking (lower = better, averaged rank over datasets)");
    rank_and_print(
        &all,
        &[
            ("PA", &|c: &UpdateCost| c.pa),
            ("Compdists", &|c| c.compdists),
            ("Time", &|c| c.secs),
        ],
    );
}

// ---------------------------------------------------------------------------
// Shared sweep machinery for the figures
// ---------------------------------------------------------------------------

/// One figure data point.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// Index label.
    pub index: &'static str,
    /// Swept parameter value (k, r-selectivity, or |P|).
    pub x: f64,
    /// Measured costs.
    pub cost: QueryCost,
}

#[allow(clippy::too_many_arguments)]
fn knn_sweep<O, M>(
    kinds: &[IndexKind],
    objects: &[O],
    metric: &M,
    scenario: Scenario,
    ks: &[usize],
    num_pivots: usize,
    cfg: &ExpConfig,
    out: &mut Vec<SweepPoint>,
) where
    O: Clone + EncodeObject + Send + Sync + 'static,
    M: Metric<O> + Clone + 'static,
{
    let high_dim = matches!(scenario, Scenario::Color | Scenario::Synthetic);
    let opts = harness::options_for(
        objects.len(),
        scenario.d_plus(),
        num_pivots,
        high_dim,
        cfg.seed,
    );
    let pivots = harness::shared_pivots(objects, metric, num_pivots, cfg.seed);
    let queries = harness::query_positions(objects.len(), cfg.queries, cfg.seed);
    for &kind in kinds {
        let Some((idx, _)) = harness::build_measured(kind, objects, metric, &pivots, &opts) else {
            continue;
        };
        // The paper enables a 128 KB LRU cache for MkNNQ (§6.1).
        idx.set_page_cache(harness::knn_cache_bytes());
        for &k in ks {
            let cost = harness::run_knn(idx.as_ref(), objects, &queries, k);
            out.push(SweepPoint {
                index: kind.label(),
                x: k as f64,
                cost,
            });
        }
    }
}

fn mrq_sweep<O, M>(
    kinds: &[IndexKind],
    objects: &[O],
    metric: &M,
    scenario: Scenario,
    cfg: &ExpConfig,
    out: &mut Vec<SweepPoint>,
) where
    O: Clone + EncodeObject + Send + Sync + 'static,
    M: Metric<O> + Clone + 'static,
{
    let high_dim = matches!(scenario, Scenario::Color | Scenario::Synthetic);
    let opts = harness::options_for(
        objects.len(),
        scenario.d_plus(),
        harness::DEFAULT_PIVOTS,
        high_dim,
        cfg.seed,
    );
    let pivots = harness::shared_pivots(objects, metric, opts.num_pivots, cfg.seed);
    let queries = harness::query_positions(objects.len(), cfg.queries, cfg.seed);
    let radii: Vec<(f64, f64)> = harness::SELECTIVITIES
        .iter()
        .map(|s| (*s, harness::radius_for(objects, metric, *s, cfg.seed)))
        .collect();
    for &kind in kinds {
        let Some((idx, _)) = harness::build_measured(kind, objects, metric, &pivots, &opts) else {
            continue;
        };
        for &(sel, r) in &radii {
            let cost = harness::run_mrq(idx.as_ref(), objects, &queries, r);
            out.push(SweepPoint {
                index: kind.label(),
                x: sel,
                cost,
            });
        }
    }
}

fn print_sweep(title: &str, xname: &str, points: &[SweepPoint]) {
    println!("\n{title}");
    println!(
        "{:<12} {:>8} {:>14} {:>10} {:>10} {:>10}",
        "Index", xname, "Compdists", "PA", "CPU", "Results"
    );
    for p in points {
        println!(
            "{:<12} {:>8} {:>14} {:>10} {:>10} {:>10}",
            p.index,
            human(p.x),
            human(p.cost.compdists),
            human(p.cost.pa),
            secs(p.cost.secs),
            human(p.cost.results)
        );
    }
}

// ---------------------------------------------------------------------------
// Figures 14–18
// ---------------------------------------------------------------------------

/// Figure 14: EPT vs EPT*, MkNNQ vs k on all four datasets.
pub fn fig14(cfg: &ExpConfig) -> Vec<(Scenario, Vec<SweepPoint>)> {
    let kinds = [IndexKind::Ept, IndexKind::EptStar];
    let mut all = Vec::new();
    for s in Scenario::ALL {
        let data = s.data(cfg.scale, cfg.seed);
        let mut pts = Vec::new();
        match &data {
            ScenarioData::Vecs {
                objects, metric, ..
            } => knn_sweep(
                &kinds,
                objects,
                metric,
                s,
                &harness::KS,
                harness::DEFAULT_PIVOTS,
                cfg,
                &mut pts,
            ),
            ScenarioData::Strs {
                objects, metric, ..
            } => knn_sweep(
                &kinds,
                objects,
                metric,
                s,
                &harness::KS,
                harness::DEFAULT_PIVOTS,
                cfg,
                &mut pts,
            ),
        }
        print_sweep(
            &format!("Figure 14 [{}]: EPT vs EPT*, MkNNQ", s.label()),
            "k",
            &pts,
        );
        all.push((s, pts));
    }
    all
}

/// Figure 15: M-index vs M-index*, MkNNQ vs k on all four datasets.
pub fn fig15(cfg: &ExpConfig) -> Vec<(Scenario, Vec<SweepPoint>)> {
    let kinds = [IndexKind::MIndex, IndexKind::MIndexStar];
    let mut all = Vec::new();
    for s in Scenario::ALL {
        let data = s.data(cfg.scale, cfg.seed);
        let mut pts = Vec::new();
        match &data {
            ScenarioData::Vecs {
                objects, metric, ..
            } => knn_sweep(
                &kinds,
                objects,
                metric,
                s,
                &harness::KS,
                harness::DEFAULT_PIVOTS,
                cfg,
                &mut pts,
            ),
            ScenarioData::Strs {
                objects, metric, ..
            } => knn_sweep(
                &kinds,
                objects,
                metric,
                s,
                &harness::KS,
                harness::DEFAULT_PIVOTS,
                cfg,
                &mut pts,
            ),
        }
        print_sweep(
            &format!("Figure 15 [{}]: M-index vs M-index*, MkNNQ", s.label()),
            "k",
            &pts,
        );
        all.push((s, pts));
    }
    all
}

/// Figure 16: MRQ cost vs radius selectivity for the nine plotted indexes.
pub fn fig16(cfg: &ExpConfig) -> Vec<(Scenario, Vec<SweepPoint>)> {
    let mut all = Vec::new();
    for s in Scenario::ALL {
        let data = s.data(cfg.scale, cfg.seed);
        let kinds = figure_kinds(s.is_discrete());
        let mut pts = Vec::new();
        match &data {
            ScenarioData::Vecs {
                objects, metric, ..
            } => mrq_sweep(&kinds, objects, metric, s, cfg, &mut pts),
            ScenarioData::Strs {
                objects, metric, ..
            } => mrq_sweep(&kinds, objects, metric, s, cfg, &mut pts),
        }
        print_sweep(
            &format!("Figure 16 [{}]: MRQ vs selectivity r", s.label()),
            "r",
            &pts,
        );
        all.push((s, pts));
    }
    all
}

/// Figure 17: MkNNQ cost vs k for the nine plotted indexes.
pub fn fig17(cfg: &ExpConfig) -> Vec<(Scenario, Vec<SweepPoint>)> {
    let mut all = Vec::new();
    for s in Scenario::ALL {
        let data = s.data(cfg.scale, cfg.seed);
        let kinds = figure_kinds(s.is_discrete());
        let mut pts = Vec::new();
        match &data {
            ScenarioData::Vecs {
                objects, metric, ..
            } => knn_sweep(
                &kinds,
                objects,
                metric,
                s,
                &harness::KS,
                harness::DEFAULT_PIVOTS,
                cfg,
                &mut pts,
            ),
            ScenarioData::Strs {
                objects, metric, ..
            } => knn_sweep(
                &kinds,
                objects,
                metric,
                s,
                &harness::KS,
                harness::DEFAULT_PIVOTS,
                cfg,
                &mut pts,
            ),
        }
        print_sweep(&format!("Figure 17 [{}]: MkNNQ vs k", s.label()), "k", &pts);
        all.push((s, pts));
    }
    all
}

/// Figure 18: MkNNQ cost vs |P| on LA and Synthetic (the paper's pair).
/// The M-index* is absent at |P| = 1 (hyperplane partitioning needs two
/// pivots), exactly as in the paper.
pub fn fig18(cfg: &ExpConfig) -> Vec<(Scenario, Vec<SweepPoint>)> {
    let mut all = Vec::new();
    for s in [Scenario::La, Scenario::Synthetic] {
        let data = s.data(cfg.scale, cfg.seed);
        let kinds = figure_kinds(s.is_discrete());
        let mut pts = Vec::new();
        for &l in &harness::PIVOT_COUNTS {
            match &data {
                ScenarioData::Vecs {
                    objects, metric, ..
                } => {
                    let mut batch = Vec::new();
                    knn_sweep(
                        &kinds,
                        objects,
                        metric,
                        s,
                        &[harness::DEFAULT_K],
                        l,
                        cfg,
                        &mut batch,
                    );
                    for mut p in batch {
                        p.x = l as f64;
                        pts.push(p);
                    }
                }
                ScenarioData::Strs {
                    objects, metric, ..
                } => {
                    let mut batch = Vec::new();
                    knn_sweep(
                        &kinds,
                        objects,
                        metric,
                        s,
                        &[harness::DEFAULT_K],
                        l,
                        cfg,
                        &mut batch,
                    );
                    for mut p in batch {
                        p.x = l as f64;
                        pts.push(p);
                    }
                }
            }
        }
        print_sweep(
            &format!(
                "Figure 18 [{}]: MkNNQ vs |P| (k = {})",
                s.label(),
                harness::DEFAULT_K
            ),
            "|P|",
            &pts,
        );
        all.push((s, pts));
    }
    all
}

/// One measured point of the [`scale`] experiment.
#[derive(Clone, Copy, Debug)]
pub struct ScalePoint {
    /// Corpus size actually built.
    pub n: usize,
    /// Shard count `P`.
    pub shards: usize,
    /// Partition policy label.
    pub policy: &'static str,
    /// Filter-column mode label.
    pub mode: &'static str,
    /// Best-of-reps batch QPS.
    pub qps: f64,
    /// Build wall seconds.
    pub build_secs: f64,
}

/// Scalable serving tier: batch-serve QPS on the paper's synthetic recipe
/// at `10^5 x cfg.scale` objects (`--scale 10` reaches the paper's 10^6),
/// LAESA engines at `P ∈ {1, 8}` for both partition policies and both
/// filter-column modes. The printed table makes the shard-scaling
/// contract observable at scale — `P = 8` must not serve slower than
/// `P = 1` over the same shared matrix — alongside the F32 column mode's
/// bandwidth savings on the identical workload.
pub fn scale(cfg: &ExpConfig) -> Vec<ScalePoint> {
    use pmi::builder::BuildOptions;
    use pmi::engine::{EngineConfig, Query};
    use pmi::{build_sharded_vector_engine, ColumnMode, LInf, PartitionPolicy};
    use std::time::Instant;

    let n = ((100_000.0 * cfg.scale) as usize).max(1_000);
    let s = Scenario::Synthetic;
    let pts = datasets::synthetic(n, cfg.seed);
    let metric = LInf::discrete();
    let radius = datasets::calibrate_radius(&pts, &metric, 0.01, cfg.seed);
    let queries = cfg.queries.max(8);
    let batch: Vec<Query<Vec<f32>>> = (0..queries)
        .map(|i| {
            let q = pts[(i * 131) % pts.len()].clone();
            if i % 2 == 0 {
                Query::range(q, radius)
            } else {
                Query::knn(q, harness::DEFAULT_K)
            }
        })
        .collect();
    let opts = |mode| BuildOptions {
        column_mode: mode,
        ..harness::options_for(n, s.d_plus(), harness::DEFAULT_PIVOTS, false, cfg.seed)
    };

    println!(
        "\nScale tier [{}]: n = {n}, {queries} queries (range r = {radius:.0} + {}-NN), LAESA",
        s.label(),
        harness::DEFAULT_K
    );
    println!(
        "{:<14} {:>3} {:>6} {:>12} {:>10}",
        "policy", "P", "mode", "build_s", "qps"
    );
    let mut out = Vec::new();
    for policy in [PartitionPolicy::RoundRobin, PartitionPolicy::PivotSpace] {
        for shards in [1usize, 8] {
            for mode in [ColumnMode::F64, ColumnMode::F32] {
                let engine = build_sharded_vector_engine(
                    IndexKind::Laesa,
                    pts.clone(),
                    metric,
                    &opts(mode),
                    &EngineConfig {
                        shards,
                        threads: 0,
                        ..EngineConfig::default()
                    },
                    policy,
                )
                .expect("buildable");
                let build_secs = engine.build_stats().build_wall_secs;
                let _ = engine.serve(&batch); // warm scratch + page cache
                let mut best = f64::INFINITY;
                for _ in 0..2 {
                    let t0 = Instant::now();
                    let _ = engine.serve(&batch);
                    best = best.min(t0.elapsed().as_secs_f64());
                }
                let qps = queries as f64 / best;
                println!(
                    "{:<14} {:>3} {:>6} {:>12.3} {:>10.0}",
                    policy.label(),
                    shards,
                    mode.label(),
                    build_secs,
                    qps
                );
                out.push(ScalePoint {
                    n,
                    shards,
                    policy: policy.label(),
                    mode: mode.label(),
                    qps,
                    build_secs,
                });
            }
        }
    }
    for p1 in out.iter().filter(|p| p.shards == 1) {
        if let Some(p8) = out
            .iter()
            .find(|p| p.shards == 8 && p.policy == p1.policy && p.mode == p1.mode)
        {
            println!(
                "  {} / {}: P8/P1 = {:.2}x",
                p1.policy,
                p1.mode,
                p8.qps / p1.qps
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpConfig {
        ExpConfig {
            scale: 0.03,
            queries: 3,
            updates: 3,
            seed: 7,
        }
    }

    #[test]
    fn kind_sets() {
        assert!(!table_kinds(false).contains(&IndexKind::Bkt));
        assert!(table_kinds(true).contains(&IndexKind::Bkt));
        assert_eq!(figure_kinds(true).len(), 9);
        assert_eq!(figure_kinds(false).len(), 7);
    }

    #[test]
    fn fig14_smoke() {
        let cfg = ExpConfig {
            scale: 0.02,
            queries: 2,
            updates: 2,
            seed: 7,
        };
        // Only check the driver runs end to end on one dataset: restrict by
        // running the full driver at minimal scale.
        let out = fig14(&cfg);
        assert_eq!(out.len(), 4);
        for (_, pts) in &out {
            assert_eq!(pts.len(), 2 * harness::KS.len());
            assert!(pts.iter().all(|p| p.cost.results > 0.0));
        }
    }

    #[test]
    fn scale_smoke() {
        let out = scale(&tiny());
        assert_eq!(out.len(), 8, "2 policies x P in {{1,8}} x 2 modes");
        assert!(out.iter().all(|p| p.qps > 0.0 && p.build_secs >= 0.0));
        // Same n everywhere, both column modes measured.
        assert!(out.iter().all(|p| p.n == out[0].n));
        assert!(out.iter().any(|p| p.mode == "f32"));
    }

    #[test]
    fn table6_smoke() {
        let out = table6(&tiny());
        assert_eq!(out.len(), 4);
        for (s, rows) in &out {
            let expect = table_kinds(s.is_discrete()).len();
            assert_eq!(rows.len(), expect, "{}", s.label());
        }
    }
}
