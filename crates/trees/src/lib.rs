//! Pivot-based tree indexes (paper §4): BKT, FQT, VPT and MVPT.
//!
//! These are in-memory trees that store only object identifiers and the
//! partition information (distance buckets or median cut values); the
//! objects themselves live in a separate table (§4.1). BKT and FQT are
//! defined for *discrete* distance functions; VPT/MVPT handle continuous
//! ones. In the paper's setup (§6.1) FQT, VPT and MVPT use the shared HFI
//! pivot set — one pivot per tree level — while BKT picks random pivots per
//! sub-tree.

mod discrete;
mod fqa;
mod mvpt;

pub use discrete::{DiscreteTree, DiscreteTreeConfig};
pub use fqa::Fqa;
pub use mvpt::{Mvpt, MvptConfig};
