//! VPT / MVPT (paper §4.3): (multi-way) vantage point trees for continuous
//! metrics.
//!
//! Each level splits a node's objects into `m` children at the quantiles of
//! their distances to the level's pivot; VPT is the `m = 2` case and the
//! paper fixes `m = 5` for MVPT. To allow apples-to-apples comparison with
//! the other indexes, nodes at the same level share the same pivot (§4.3),
//! taken from the workspace-wide HFI set. Leaves store, for each object,
//! its exact distances to all path pivots, enabling full Lemma 1 filtering
//! at the leaf level — this is the subset of pre-computed distances the
//! paper says the trees keep.

use pmi_metric::lemmas;
use pmi_metric::{
    Counters, CountingMetric, EncodeObject, Metric, MetricIndex, Neighbor, ObjId, ObjTable,
    StorageFootprint,
};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Construction parameters for [`Mvpt`].
#[derive(Clone, Copy, Debug)]
pub struct MvptConfig {
    /// Arity `m` (2 = VPT; the paper uses 5 for MVPT).
    pub arity: usize,
    /// Leaf capacity.
    pub leaf_cap: usize,
}

impl Default for MvptConfig {
    fn default() -> Self {
        MvptConfig {
            arity: 5,
            leaf_cap: 16,
        }
    }
}

enum Node {
    Internal {
        /// `m − 1` ascending cut values over d(o, pivot-of-level).
        cuts: Vec<f64>,
        children: Vec<Node>,
    },
    Leaf {
        /// Object ids plus their distances to the path pivots
        /// (`pdists[i][lvl] = d(o_i, P[lvl])`).
        ids: Vec<ObjId>,
        pdists: Vec<Vec<f64>>,
    },
}

/// MVPT (VPT when `arity == 2`).
pub struct Mvpt<O, M> {
    metric: CountingMetric<M>,
    pivots: Vec<O>,
    cfg: MvptConfig,
    root: Node,
    table: ObjTable<O>,
    node_count: usize,
}

impl<O, M> Mvpt<O, M>
where
    O: Clone + EncodeObject + Send + Sync + 'static,
    M: Metric<O>,
{
    /// Builds an MVPT with one shared pivot per level (`pivots[lvl]`).
    pub fn build(objects: Vec<O>, metric: M, pivots: Vec<O>, cfg: MvptConfig) -> Self {
        assert!(cfg.arity >= 2, "MVPT arity must be at least 2");
        assert!(!pivots.is_empty(), "MVPT needs at least one pivot");
        let metric = CountingMetric::new(metric);
        let table = ObjTable::new(objects);
        let mut t = Mvpt {
            metric,
            pivots,
            cfg,
            root: Node::Leaf {
                ids: Vec::new(),
                pdists: Vec::new(),
            },
            table,
            node_count: 0,
        };
        let items: Vec<(ObjId, Vec<f64>)> =
            t.table.iter().map(|(id, _)| (id, Vec::new())).collect();
        t.root = t.build_node(items, 0);
        t
    }

    /// VPT: binary vantage point tree.
    pub fn vpt(objects: Vec<O>, metric: M, pivots: Vec<O>, leaf_cap: usize) -> Self {
        Self::build(objects, metric, pivots, MvptConfig { arity: 2, leaf_cap })
    }

    /// Arity `m`.
    pub fn arity(&self) -> usize {
        self.cfg.arity
    }

    /// Nodes in the tree.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// The instrumented metric.
    pub fn metric(&self) -> &CountingMetric<M> {
        &self.metric
    }

    /// Builds a subtree from `(id, path distances so far)` items.
    fn build_node(&mut self, mut items: Vec<(ObjId, Vec<f64>)>, level: usize) -> Node {
        self.node_count += 1;
        if items.len() <= self.cfg.leaf_cap || level >= self.pivots.len() {
            let (ids, pdists) = items.into_iter().unzip();
            return Node::Leaf { ids, pdists };
        }
        // One distance computation per object per level: the n·l build cost
        // shared by all pivot-based structures (Table 4).
        let pivot = self.pivots[level].clone();
        for (id, pd) in &mut items {
            let o = self.table.get(*id).expect("live");
            pd.push(self.metric.dist(o, &pivot));
        }
        items.sort_by(|a, b| a.1[level].total_cmp(&b.1[level]));
        // Quantile cuts (medians for m = 2).
        let m = self.cfg.arity;
        let cuts: Vec<f64> = (1..m)
            .map(|i| items[(items.len() * i / m).min(items.len() - 1)].1[level])
            .collect();
        let mut parts: Vec<Vec<(ObjId, Vec<f64>)>> = (0..m).map(|_| Vec::new()).collect();
        'outer: for item in items {
            for (i, c) in cuts.iter().enumerate() {
                if item.1[level] <= *c {
                    parts[i].push(item);
                    continue 'outer;
                }
            }
            parts[m - 1].push(item);
        }
        // Degenerate cuts (all-equal distances): keep as a leaf.
        if parts.iter().filter(|p| !p.is_empty()).count() <= 1 {
            let items: Vec<_> = parts.into_iter().flatten().collect();
            let (ids, pdists) = items.into_iter().unzip();
            return Node::Leaf { ids, pdists };
        }
        let children = parts
            .into_iter()
            .map(|p| self.build_node(p, level + 1))
            .collect();
        Node::Internal { cuts, children }
    }

    /// `[lo, hi]` range of d(o, pivot) covered by child `i`.
    fn child_range(cuts: &[f64], i: usize) -> (f64, f64) {
        let lo = if i == 0 { 0.0 } else { cuts[i - 1] };
        let hi = if i == cuts.len() {
            f64::INFINITY
        } else {
            cuts[i]
        };
        (lo, hi)
    }

    fn range_rec(
        &self,
        node: &Node,
        q: &O,
        r: f64,
        q_dists: &[f64],
        level: usize,
        out: &mut Vec<ObjId>,
    ) {
        match node {
            Node::Leaf { ids, pdists } => {
                for (idx, &id) in ids.iter().enumerate() {
                    let Some(o) = self.table.get(id) else {
                        continue;
                    };
                    let pd = &pdists[idx];
                    if lemmas::lemma1_prunable(&q_dists[..pd.len()], pd, r) {
                        continue;
                    }
                    if self.metric.dist(q, o) <= r {
                        out.push(id);
                    }
                }
            }
            Node::Internal { cuts, children } => {
                let dq = q_dists[level];
                for (i, child) in children.iter().enumerate() {
                    let (lo, hi) = Self::child_range(cuts, i);
                    if dq + r < lo || dq - r > hi {
                        continue;
                    }
                    self.range_rec(child, q, r, q_dists, level + 1, out);
                }
            }
        }
    }
}

impl<O, M> MetricIndex<O> for Mvpt<O, M>
where
    O: Clone + EncodeObject + Send + Sync + 'static,
    M: Metric<O>,
{
    fn name(&self) -> &str {
        if self.cfg.arity == 2 {
            "VPT"
        } else {
            "MVPT"
        }
    }

    fn len(&self) -> usize {
        self.table.len()
    }

    fn range_query(&self, q: &O, r: f64) -> Vec<ObjId> {
        let q_dists: Vec<f64> = self.pivots.iter().map(|p| self.metric.dist(q, p)).collect();
        let mut out = Vec::new();
        self.range_rec(&self.root, q, r, &q_dists, 0, &mut out);
        out
    }

    fn knn_query(&self, q: &O, k: usize) -> Vec<Neighbor> {
        if k == 0 || self.table.is_empty() {
            return Vec::new();
        }
        let q_dists: Vec<f64> = self.pivots.iter().map(|p| self.metric.dist(q, p)).collect();
        let mut result: BinaryHeap<Neighbor> = BinaryHeap::new();
        let mut nodes: Vec<(&Node, usize, f64)> = vec![(&self.root, 0, 0.0)];
        let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
        heap.push(Reverse((0, 0)));
        let radius = |res: &BinaryHeap<Neighbor>| {
            if res.len() < k {
                f64::INFINITY
            } else {
                res.peek().unwrap().dist
            }
        };
        while let Some(Reverse((lb_bits, idx))) = heap.pop() {
            let lb = f64::from_bits(lb_bits);
            if lb > radius(&result) {
                break;
            }
            let (node, level, _) = nodes[idx];
            match node {
                Node::Leaf { ids, pdists } => {
                    for (i, &id) in ids.iter().enumerate() {
                        let Some(o) = self.table.get(id) else {
                            continue;
                        };
                        let r = radius(&result);
                        let pd = &pdists[i];
                        if r.is_finite() && lemmas::lemma1_prunable(&q_dists[..pd.len()], pd, r) {
                            continue;
                        }
                        let d = self.metric.dist(q, o);
                        if d < radius(&result) || result.len() < k {
                            result.push(Neighbor::new(id, d));
                            if result.len() > k {
                                result.pop();
                            }
                        }
                    }
                }
                Node::Internal { cuts, children } => {
                    let dq = q_dists[level];
                    for (i, child) in children.iter().enumerate() {
                        let (lo, hi) = Self::child_range(cuts, i);
                        let gap = if dq < lo {
                            lo - dq
                        } else if dq > hi {
                            dq - hi
                        } else {
                            0.0
                        };
                        let child_lb = lb.max(gap);
                        if child_lb <= radius(&result) {
                            nodes.push((child, level + 1, child_lb));
                            heap.push(Reverse((child_lb.to_bits(), nodes.len() - 1)));
                        }
                    }
                }
            }
        }
        let mut v = result.into_sorted_vec();
        v.truncate(k);
        v
    }

    fn insert(&mut self, o: O) -> ObjId {
        let id = self.table.push(o.clone());
        // Phase 1: descend (one distance per level), add to the leaf, and —
        // if it overflowed — take its items out for rebuilding. The path of
        // child indices is recorded so phase 2 can replay the descent
        // without further distance computations.
        let mut pd: Vec<f64> = Vec::new();
        let mut path: Vec<usize> = Vec::new();
        #[allow(clippy::type_complexity)]
        let mut split: Option<(Vec<(ObjId, Vec<f64>)>, usize)> = None;
        {
            let mut node = &mut self.root;
            let mut level = 0usize;
            loop {
                match node {
                    Node::Internal { cuts, children } => {
                        let d = self.metric.dist(&o, &self.pivots[level]);
                        pd.push(d);
                        let mut idx = cuts.len();
                        for (i, c) in cuts.iter().enumerate() {
                            if d <= *c {
                                idx = i;
                                break;
                            }
                        }
                        path.push(idx);
                        node = &mut children[idx];
                        level += 1;
                    }
                    Node::Leaf { ids, pdists } => {
                        // Leaf objects may carry fewer path distances than
                        // the leaf's depth suggests if an ancestor
                        // degenerated; match their length.
                        let want = pdists.first().map(|p| p.len()).unwrap_or(pd.len());
                        while pd.len() < want {
                            pd.push(self.metric.dist(&o, &self.pivots[pd.len()]));
                        }
                        pd.truncate(want);
                        ids.push(id);
                        pdists.push(pd);
                        if ids.len() > self.cfg.leaf_cap * 2 && level < self.pivots.len() {
                            let items: Vec<(ObjId, Vec<f64>)> = std::mem::take(ids)
                                .into_iter()
                                .zip(std::mem::take(pdists))
                                .map(|(id, mut p)| {
                                    // build_node recomputes from `level`.
                                    p.truncate(level);
                                    (id, p)
                                })
                                .collect();
                            split = Some((items, level));
                        }
                        break;
                    }
                }
            }
        }
        // Phase 2: rebuild the overflowed leaf in place.
        if let Some((items, level)) = split {
            self.node_count -= 1; // the leaf being replaced
            let rebuilt = self.build_node(items, level);
            let mut node = &mut self.root;
            for idx in path {
                match node {
                    Node::Internal { children, .. } => node = &mut children[idx],
                    Node::Leaf { .. } => break,
                }
            }
            *node = rebuilt;
        }
        id
    }

    fn remove(&mut self, id: ObjId) -> bool {
        let Some(o) = self.table.get(id).cloned() else {
            return false;
        };
        let mut node = &mut self.root;
        let mut level = 0usize;
        loop {
            match node {
                Node::Internal { cuts, children } => {
                    let d = self.metric.dist(&o, &self.pivots[level]);
                    let mut idx = cuts.len();
                    for (i, c) in cuts.iter().enumerate() {
                        if d <= *c {
                            idx = i;
                            break;
                        }
                    }
                    node = &mut children[idx];
                    level += 1;
                }
                Node::Leaf { ids, pdists } => {
                    if let Some(pos) = ids.iter().position(|&x| x == id) {
                        ids.swap_remove(pos);
                        pdists.swap_remove(pos);
                        self.table.remove(id);
                        return true;
                    }
                    return false;
                }
            }
        }
    }

    fn get(&self, id: ObjId) -> Option<O> {
        self.table.get(id).cloned()
    }

    fn storage(&self) -> StorageFootprint {
        let objs: u64 = self.table.iter().map(|(_, o)| o.encoded_len() as u64).sum();
        fn node_bytes(n: &Node) -> u64 {
            match n {
                Node::Leaf { ids, pdists } => {
                    4 * ids.len() as u64 + pdists.iter().map(|p| 8 * p.len() as u64).sum::<u64>()
                }
                Node::Internal { cuts, children } => {
                    8 * cuts.len() as u64 + children.iter().map(node_bytes).sum::<u64>()
                }
            }
        }
        StorageFootprint::mem(objs + node_bytes(&self.root))
    }

    fn counters(&self) -> Counters {
        Counters {
            compdists: self.metric.count(),
            ..Counters::default()
        }
    }

    fn reset_counters(&self) {
        self.metric.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmi_metric::datasets;
    use pmi_metric::{BruteForce, EditDistance, L2};
    use pmi_pivots::select_hfi;

    fn build(n: usize, arity: usize) -> (Vec<Vec<f32>>, Mvpt<Vec<f32>, L2>) {
        let pts = datasets::la(n, 31);
        let pv: Vec<Vec<f32>> = select_hfi(&pts, &L2, 5, 31)
            .into_iter()
            .map(|i| pts[i].clone())
            .collect();
        let idx = Mvpt::build(pts.clone(), L2, pv, MvptConfig { arity, leaf_cap: 8 });
        (pts, idx)
    }

    #[test]
    fn range_matches_brute_force() {
        for arity in [2usize, 5] {
            let (pts, idx) = build(400, arity);
            let oracle = BruteForce::new(pts.clone(), L2);
            for r in [80.0, 900.0, 5000.0] {
                let mut got = idx.range_query(&pts[3], r);
                got.sort();
                let mut want = oracle.range_query(&pts[3], r);
                want.sort();
                assert_eq!(got, want, "arity={arity} r={r}");
            }
        }
    }

    #[test]
    fn knn_matches_brute_force() {
        for arity in [2usize, 5] {
            let (pts, idx) = build(400, arity);
            let oracle = BruteForce::new(pts.clone(), L2);
            for k in [1usize, 10, 40] {
                let got = idx.knn_query(&pts[77], k);
                let want = oracle.knn_query(&pts[77], k);
                assert_eq!(got.len(), want.len());
                for (g, w) in got.iter().zip(&want) {
                    assert!((g.dist - w.dist).abs() < 1e-9, "arity={arity} k={k}");
                }
            }
        }
    }

    #[test]
    fn works_on_strings() {
        let ws = datasets::words(300, 8);
        let pv: Vec<String> = select_hfi(&ws, &EditDistance, 4, 8)
            .into_iter()
            .map(|i| ws[i].clone())
            .collect();
        let idx = Mvpt::build(ws.clone(), EditDistance, pv, MvptConfig::default());
        let oracle = BruteForce::new(ws.clone(), EditDistance);
        let mut got = idx.range_query(&ws[9], 4.0);
        got.sort();
        let mut want = oracle.range_query(&ws[9], 4.0);
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn name_depends_on_arity() {
        let (_, vpt) = build(60, 2);
        let (_, mvpt) = build(60, 5);
        assert_eq!(vpt.name(), "VPT");
        assert_eq!(mvpt.name(), "MVPT");
    }

    #[test]
    fn balanced_tree_prunes() {
        let (pts, idx) = build(900, 5);
        idx.reset_counters();
        let _ = idx.range_query(&pts[1], 150.0);
        let cd = idx.counters().compdists;
        assert!(cd < 900 / 2, "expected pruning, got {cd}");
    }

    #[test]
    fn update_cycle_with_splits() {
        let (pts, mut idx) = build(250, 5);
        let o = idx.get(40).unwrap();
        assert!(idx.remove(40));
        assert!(!idx.remove(40));
        let nid = idx.insert(o);
        assert!(idx.range_query(&pts[40], 0.0).contains(&nid));
        // Bulk inserts to force leaf splits.
        for p in pts.iter().take(120) {
            idx.insert(vec![p[0] + 1.0, p[1] + 1.0]);
        }
        let all: Vec<Vec<f32>> = idx.table.iter().map(|(_, o)| o.clone()).collect();
        let oracle = BruteForce::new(all, L2);
        let got = idx.knn_query(&pts[10], 15);
        let want = oracle.knn_query(&pts[10], 15);
        for (g, w) in got.iter().zip(&want) {
            assert!((g.dist - w.dist).abs() < 1e-9);
        }
        let mut gr = idx.range_query(&pts[10], 700.0);
        gr.sort();
        assert_eq!(gr.len(), oracle.range_query(&pts[10], 700.0).len());
    }
}
