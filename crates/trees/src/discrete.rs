//! BKT and FQT (paper §4.1–4.2): bucketed trees for discrete metrics.
//!
//! BKT chooses a pivot per sub-tree (randomly, per the paper) and sends
//! objects at distance `i` to the `i`-th child; FQT uses the same pivot for
//! every node of a level. To avoid empty sub-trees on large distance
//! domains "every sub-tree covers the same range of distance values"
//! (§4.1 discussion): children are distance *buckets* of equal width.

use pmi_metric::{
    Counters, CountingMetric, EncodeObject, Metric, MetricIndex, Neighbor, ObjId, ObjTable,
    StorageFootprint,
};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Which pivot policy the tree uses: `true` = FQT (fixed pivot per level
/// from the shared set), `false` = BKT (random pivot per sub-tree).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Kind {
    Bkt,
    Fqt,
}

/// Construction parameters for [`DiscreteTree`].
#[derive(Clone, Debug)]
pub struct DiscreteTreeConfig {
    /// Upper bound on distances (the discrete domain is `0..=max_distance`).
    pub max_distance: f64,
    /// Number of buckets per node (children cover equal distance ranges).
    pub buckets: usize,
    /// Leaf capacity before a split is attempted.
    pub leaf_cap: usize,
    /// Maximum tree depth (FQT is bounded by the pivot count anyway).
    pub max_depth: usize,
    /// RNG seed for BKT's random pivots.
    pub seed: u64,
}

impl Default for DiscreteTreeConfig {
    fn default() -> Self {
        DiscreteTreeConfig {
            max_distance: 100.0,
            buckets: 32,
            leaf_cap: 8,
            max_depth: 16,
            seed: 42,
        }
    }
}

enum Node<O> {
    Internal {
        /// The pivot object, owned by the node so that routing never breaks
        /// when the underlying dataset object is removed.
        pivot: O,
        /// `children[b]` covers distances `[b·w, (b+1)·w)`.
        children: Vec<Option<Box<Node<O>>>>,
    },
    Leaf {
        ids: Vec<ObjId>,
    },
}

/// BKT / FQT over a discrete metric.
pub struct DiscreteTree<O, M> {
    kind: Kind,
    metric: CountingMetric<M>,
    /// FQT: the shared per-level pivots.
    level_pivots: Vec<O>,
    cfg: DiscreteTreeConfig,
    root: Option<Node<O>>,
    table: ObjTable<O>,
    rng: StdRng,
    node_count: usize,
}

impl<O, M> DiscreteTree<O, M>
where
    O: Clone + EncodeObject + Send + Sync + 'static,
    M: Metric<O>,
{
    /// Builds a BKT (random pivots per sub-tree).
    pub fn bkt(objects: Vec<O>, metric: M, cfg: DiscreteTreeConfig) -> Self {
        Self::build(objects, metric, Kind::Bkt, Vec::new(), cfg)
    }

    /// Builds an FQT with one shared pivot per level.
    pub fn fqt(objects: Vec<O>, metric: M, level_pivots: Vec<O>, cfg: DiscreteTreeConfig) -> Self {
        assert!(!level_pivots.is_empty(), "FQT needs at least one pivot");
        Self::build(objects, metric, Kind::Fqt, level_pivots, cfg)
    }

    fn build(
        objects: Vec<O>,
        metric: M,
        kind: Kind,
        level_pivots: Vec<O>,
        cfg: DiscreteTreeConfig,
    ) -> Self {
        assert!(
            metric.is_discrete(),
            "BKT/FQT require a discrete distance function (paper §4.1)"
        );
        assert!(cfg.buckets >= 2 && cfg.max_distance > 0.0);
        let metric = CountingMetric::new(metric);
        let mut t = DiscreteTree {
            kind,
            metric,
            level_pivots,
            rng: StdRng::seed_from_u64(cfg.seed ^ 0x424b54),
            cfg,
            root: None,
            table: ObjTable::new(objects),
            node_count: 0,
        };
        let ids: Vec<ObjId> = t.table.iter().map(|(i, _)| i).collect();
        t.root = Some(t.build_node(ids, 0));
        t
    }

    fn bucket_width(&self) -> f64 {
        (self.cfg.max_distance / self.cfg.buckets as f64).max(1.0)
    }

    fn max_depth(&self) -> usize {
        match self.kind {
            Kind::Bkt => self.cfg.max_depth,
            Kind::Fqt => self.level_pivots.len(),
        }
    }

    fn pick_pivot(&mut self, ids: &[ObjId], depth: usize) -> O {
        match self.kind {
            Kind::Bkt => {
                let id = ids[self.rng.random_range(0..ids.len())];
                self.table.get(id).expect("pivot object live").clone()
            }
            Kind::Fqt => self.level_pivots[depth].clone(),
        }
    }

    fn build_node(&mut self, ids: Vec<ObjId>, depth: usize) -> Node<O> {
        self.node_count += 1;
        if ids.len() <= self.cfg.leaf_cap || depth >= self.max_depth() {
            return Node::Leaf { ids };
        }
        let pivot = self.pick_pivot(&ids, depth);
        let w = self.bucket_width();
        let mut parts: Vec<Vec<ObjId>> = vec![Vec::new(); self.cfg.buckets];
        for id in ids {
            let o = self.table.get(id).expect("live");
            let d = self.metric.dist(o, &pivot);
            let b = ((d / w) as usize).min(self.cfg.buckets - 1);
            parts[b].push(id);
        }
        // A pivot that fails to discriminate (everything in one bucket)
        // would recurse forever — fall back to a leaf.
        if parts.iter().filter(|p| !p.is_empty()).count() <= 1 && self.kind == Kind::Bkt {
            let ids = parts.into_iter().flatten().collect();
            return Node::Leaf { ids };
        }
        let children = parts
            .into_iter()
            .map(|p| (!p.is_empty()).then(|| Box::new(self.build_node(p, depth + 1))))
            .collect();
        Node::Internal { pivot, children }
    }

    /// Nodes in the tree (diagnostics).
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// The instrumented metric.
    pub fn metric(&self) -> &CountingMetric<M> {
        &self.metric
    }

    fn range_rec(&self, node: &Node<O>, q: &O, r: f64, out: &mut Vec<ObjId>) {
        match node {
            Node::Leaf { ids } => {
                for &id in ids {
                    if let Some(o) = self.table.get(id) {
                        if self.metric.dist(q, o) <= r {
                            out.push(id);
                        }
                    }
                }
            }
            Node::Internal { pivot, children } => {
                let dq = self.metric.dist(q, pivot);
                let w = self.bucket_width();
                for (b, child) in children.iter().enumerate() {
                    let Some(child) = child else { continue };
                    let lo = b as f64 * w;
                    let hi = if b + 1 == children.len() {
                        f64::INFINITY
                    } else {
                        (b + 1) as f64 * w
                    };
                    // Lemma 1 on the bucket range: objects in this child have
                    // d(o, p) ∈ [lo, hi).
                    if dq + r < lo || dq - r >= hi {
                        continue;
                    }
                    self.range_rec(child, q, r, out);
                }
            }
        }
    }
}

impl<O, M> MetricIndex<O> for DiscreteTree<O, M>
where
    O: Clone + EncodeObject + Send + Sync + 'static,
    M: Metric<O>,
{
    fn name(&self) -> &str {
        match self.kind {
            Kind::Bkt => "BKT",
            Kind::Fqt => "FQT",
        }
    }

    fn len(&self) -> usize {
        self.table.len()
    }

    fn range_query(&self, q: &O, r: f64) -> Vec<ObjId> {
        let mut out = Vec::new();
        if let Some(root) = &self.root {
            self.range_rec(root, q, r, &mut out);
        }
        out
    }

    fn knn_query(&self, q: &O, k: usize) -> Vec<Neighbor> {
        if k == 0 || self.table.is_empty() {
            return Vec::new();
        }
        // Best-first: nodes ordered by the lower bound accumulated from
        // bucket ranges along the path.
        let mut result: BinaryHeap<Neighbor> = BinaryHeap::new();
        let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
        let mut nodes: Vec<(&Node<O>, usize, f64)> = Vec::new(); // node, depth, lb
        if let Some(root) = &self.root {
            nodes.push((root, 0, 0.0));
            heap.push(Reverse((0, 0)));
        }
        let radius = |res: &BinaryHeap<Neighbor>| {
            if res.len() < k {
                f64::INFINITY
            } else {
                res.peek().unwrap().dist
            }
        };
        while let Some(Reverse((lb_bits, idx))) = heap.pop() {
            let lb = f64::from_bits(lb_bits);
            if lb > radius(&result) {
                break;
            }
            let (node, depth, _) = nodes[idx];
            match node {
                Node::Leaf { ids } => {
                    for &id in ids {
                        let Some(o) = self.table.get(id) else {
                            continue;
                        };
                        let d = self.metric.dist(q, o);
                        if d < radius(&result) || result.len() < k {
                            result.push(Neighbor::new(id, d));
                            if result.len() > k {
                                result.pop();
                            }
                        }
                    }
                }
                Node::Internal { pivot, children } => {
                    let dq = self.metric.dist(q, pivot);
                    let w = self.bucket_width();
                    for (b, child) in children.iter().enumerate() {
                        let Some(child) = child else { continue };
                        let lo = b as f64 * w;
                        let hi = if b + 1 == children.len() {
                            f64::INFINITY
                        } else {
                            (b + 1) as f64 * w
                        };
                        let gap = if dq < lo {
                            lo - dq
                        } else if dq >= hi {
                            dq - hi
                        } else {
                            0.0
                        };
                        let child_lb = lb.max(gap);
                        if child_lb <= radius(&result) {
                            nodes.push((child, depth + 1, child_lb));
                            heap.push(Reverse((child_lb.to_bits(), nodes.len() - 1)));
                        }
                    }
                }
            }
        }
        let mut v = result.into_sorted_vec();
        v.truncate(k);
        v
    }

    fn insert(&mut self, o: O) -> ObjId {
        let id = self.table.push(o.clone());
        let w = self.bucket_width();
        let buckets = self.cfg.buckets;
        let leaf_cap = self.cfg.leaf_cap;
        let max_depth = self.max_depth();
        // Descend to the leaf, splitting it if it overflows.
        let mut root = self.root.take().unwrap_or(Node::Leaf { ids: Vec::new() });
        {
            let mut node = &mut root;
            let mut depth = 0usize;
            loop {
                match node {
                    Node::Internal { pivot, children } => {
                        let d = self.metric.dist(&o, pivot);
                        let b = ((d / w) as usize).min(buckets - 1);
                        if children[b].is_none() {
                            children[b] = Some(Box::new(Node::Leaf { ids: vec![id] }));
                            self.node_count += 1;
                            self.root = Some(root);
                            return id;
                        }
                        node = children[b].as_mut().unwrap();
                        depth += 1;
                    }
                    Node::Leaf { ids } => {
                        ids.push(id);
                        if ids.len() > leaf_cap && depth < max_depth {
                            let ids = std::mem::take(ids);
                            self.node_count -= 1; // rebuilt below
                            *node = self.build_node(ids, depth);
                        }
                        self.root = Some(root);
                        return id;
                    }
                }
            }
        }
    }

    fn remove(&mut self, id: ObjId) -> bool {
        // Nodes own their pivot objects, so removing the dataset object
        // never breaks routing: we just drop the id from its leaf.
        let Some(o) = self.table.get(id).cloned() else {
            return false;
        };
        let w = self.bucket_width();
        let buckets = self.cfg.buckets;
        let mut removed = false;
        let mut root = self.root.take();
        if let Some(root) = root.as_mut() {
            let mut node = root;
            loop {
                match node {
                    Node::Internal { pivot, children } => {
                        let d = self.metric.dist(&o, pivot);
                        let b = ((d / w) as usize).min(buckets - 1);
                        match children[b].as_mut() {
                            Some(c) => node = c,
                            None => break,
                        }
                    }
                    Node::Leaf { ids } => {
                        if let Some(pos) = ids.iter().position(|&x| x == id) {
                            ids.swap_remove(pos);
                            removed = true;
                        }
                        break;
                    }
                }
            }
        }
        self.root = root;
        if removed {
            self.table.remove(id);
        }
        removed
    }

    fn get(&self, id: ObjId) -> Option<O> {
        self.table.get(id).cloned()
    }

    fn storage(&self) -> StorageFootprint {
        let objs: u64 = self.table.iter().map(|(_, o)| o.encoded_len() as u64).sum();
        // Rough structural accounting: each node has a pivot id + bucket
        // pointers; leaves hold ids.
        let structure =
            (self.node_count * (4 + self.cfg.buckets * 8)) as u64 + 4 * self.table.len() as u64;
        StorageFootprint::mem(objs + structure)
    }

    fn counters(&self) -> Counters {
        Counters {
            compdists: self.metric.count(),
            ..Counters::default()
        }
    }

    fn reset_counters(&self) {
        self.metric.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmi_metric::datasets;
    use pmi_metric::{BruteForce, EditDistance, LInf};
    use pmi_pivots::select_hfi;

    fn cfg(maxd: f64) -> DiscreteTreeConfig {
        DiscreteTreeConfig {
            max_distance: maxd,
            buckets: 16,
            leaf_cap: 6,
            max_depth: 12,
            seed: 3,
        }
    }

    #[test]
    fn bkt_on_words_matches_brute_force() {
        let ws = datasets::words(300, 3);
        let idx = DiscreteTree::bkt(ws.clone(), EditDistance, cfg(34.0));
        let oracle = BruteForce::new(ws.clone(), EditDistance);
        for r in [1.0, 3.0, 8.0] {
            let mut got = idx.range_query(&ws[5], r);
            got.sort();
            let mut want = oracle.range_query(&ws[5], r);
            want.sort();
            assert_eq!(got, want, "r={r}");
        }
    }

    #[test]
    fn fqt_on_synthetic_matches_brute_force() {
        let pts = datasets::synthetic(400, 3);
        let m = LInf::discrete();
        let pv: Vec<Vec<f32>> = select_hfi(&pts, &m, 5, 3)
            .into_iter()
            .map(|i| pts[i].clone())
            .collect();
        let idx = DiscreteTree::fqt(pts.clone(), m, pv, cfg(10000.0));
        let oracle = BruteForce::new(pts.clone(), m);
        for r in [500.0, 2500.0] {
            let mut got = idx.range_query(&pts[17], r);
            got.sort();
            let mut want = oracle.range_query(&pts[17], r);
            want.sort();
            assert_eq!(got, want, "r={r}");
        }
    }

    #[test]
    fn knn_matches_brute_force() {
        let ws = datasets::words(250, 9);
        let idx = DiscreteTree::bkt(ws.clone(), EditDistance, cfg(34.0));
        let oracle = BruteForce::new(ws.clone(), EditDistance);
        for k in [1usize, 5, 20] {
            let got = idx.knn_query(&ws[100], k);
            let want = oracle.knn_query(&ws[100], k);
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                assert!((g.dist - w.dist).abs() < 1e-9, "k={k}");
            }
        }
    }

    #[test]
    fn tree_prunes_versus_scan() {
        let ws = datasets::words(800, 1);
        let idx = DiscreteTree::bkt(ws.clone(), EditDistance, cfg(34.0));
        idx.reset_counters();
        let _ = idx.range_query(&ws[0], 1.0);
        let cd = idx.counters().compdists;
        assert!(cd < 800, "expected pruning, got {cd}");
    }

    #[test]
    #[should_panic]
    fn continuous_metric_rejected() {
        let pts = datasets::la(50, 1);
        let _ = DiscreteTree::bkt(pts, pmi_metric::L2, cfg(14000.0));
    }

    #[test]
    fn update_cycle() {
        let ws = datasets::words(200, 5);
        let idx_target = ws[150].clone();
        let mut idx = DiscreteTree::bkt(ws.clone(), EditDistance, cfg(34.0));
        assert!(idx.remove(150));
        assert!(!idx.remove(150));
        assert!(!idx.range_query(&idx_target, 0.0).contains(&150));
        let nid = idx.insert(idx_target.clone());
        assert!(idx.range_query(&idx_target, 0.0).contains(&nid));
        // Insert enough near-duplicates to force leaf splits.
        for i in 0..30 {
            let mut w = idx_target.clone();
            w.push(char::from(b'a' + (i % 26) as u8));
            idx.insert(w);
        }
        let oracle_data: Vec<String> = idx.table.iter().map(|(_, o)| o.clone()).collect();
        let oracle = BruteForce::new(oracle_data, EditDistance);
        let got = idx.knn_query(&idx_target, 10);
        let want = oracle.knn_query(&idx_target, 10);
        for (g, w) in got.iter().zip(&want) {
            assert!((g.dist - w.dist).abs() < 1e-9);
        }
    }
}
