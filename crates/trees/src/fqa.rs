//! FQA — Fixed Queries Array (paper §2.2, Table 1; Chávez et al. [11]).
//!
//! The FQA is the array form of the FQT: instead of materializing tree
//! nodes, every object's vector of (bucketed) distances to the `l` level
//! pivots is stored as a *signature*, and the signatures are kept in one
//! lexicographically sorted array. A tree node corresponds to a contiguous
//! run of equal signature prefixes, found by binary search, so the FQA
//! trades pointer chasing for `log n` searches and is far more compact —
//! the reason it historically scaled past the FQT in memory-constrained
//! settings.
//!
//! A matrix-adopting FQA ([`Fqa::build_with_matrix`]) additionally holds
//! the *exact* (unbucketed) pivot distances as a slot-aligned
//! [`MatrixSlice`], and its hot-path queries
//! ([`MetricIndex::range_query_into`] / [`MetricIndex::knn_query_into`] and
//! the allocating wrappers) filter through the blocked
//! [`ScanKernel`](pmi_metric::ScanKernel) over those rows instead of
//! descending bucketed signature runs: the exact Lemma 1 bound is at least
//! as tight as the bucket bound, the scan is a lock-free linear kernel
//! pass, and results remain exact. A plain-built FQA (no matrix) keeps the
//! classic signature descent.

use pmi_metric::fault;
use pmi_metric::scratch::drain_heap_sorted;
use pmi_metric::{
    Counters, CountingMetric, EncodeObject, MatrixSlice, Metric, MetricIndex, Neighbor, ObjId,
    ObjTable, QueryScratch, StorageFootprint,
};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// FQA over a discrete metric; shares FQT's per-level pivots and bucketing.
pub struct Fqa<O, M> {
    metric: CountingMetric<M>,
    pivots: Vec<O>,
    /// Bucket width shared by all levels.
    width: f64,
    buckets: u32,
    /// Lexicographically sorted `(signature, id)` pairs.
    rows: Vec<(Vec<u32>, ObjId)>,
    table: ObjTable<O>,
    /// Slot-aligned adopted pivot-distance rows, when built with
    /// [`build_with_matrix`](Self::build_with_matrix): signatures for
    /// engine-pushed rows are bucketed from the shared matrix
    /// ([`MetricIndex::insert_adopted`]) and removals re-derive the removed
    /// object's signature from its row — neither computes any distance.
    adopted: Option<MatrixSlice>,
}

/// The one bucketing rule of the FQA: distance `d` to a level pivot falls
/// in bucket `min(⌊d / width⌋, buckets - 1)`. Every signature — built from
/// the metric, from an adopted matrix row at build time, or from an
/// engine-pushed row at insert time — goes through this function, so the
/// sorted-row binary searches always agree.
#[inline]
fn bucket(d: f64, width: f64, buckets: u32) -> u32 {
    ((d / width) as u32).min(buckets - 1)
}

impl<O, M> Fqa<O, M>
where
    O: Clone + EncodeObject + Send + Sync + 'static,
    M: Metric<O>,
{
    /// Builds an FQA with the shared pivot set. `max_distance` bounds the
    /// discrete distance domain; `buckets` is the signature alphabet size.
    pub fn build(
        objects: Vec<O>,
        metric: M,
        pivots: Vec<O>,
        max_distance: f64,
        buckets: u32,
    ) -> Self {
        assert!(
            metric.is_discrete(),
            "FQA requires a discrete distance function (paper §4.2)"
        );
        assert!(!pivots.is_empty() && buckets >= 2 && max_distance > 0.0);
        let metric = CountingMetric::new(metric);
        let width = (max_distance / buckets as f64).max(1.0);
        let table = ObjTable::new(objects);
        let mut rows: Vec<(Vec<u32>, ObjId)> = table
            .iter()
            .map(|(id, o)| {
                let sig = pivots
                    .iter()
                    .map(|p| ((metric.dist(o, p) / width) as u32).min(buckets - 1))
                    .collect();
                (sig, id)
            })
            .collect();
        rows.sort();
        Fqa {
            metric,
            pivots,
            width,
            buckets,
            rows,
            table,
            adopted: None,
        }
    }

    /// Builds an FQA by *adopting* pre-computed pivot-distance rows (local
    /// row `i` = `objects[i]`'s distances to `pivots`, e.g. the shard's
    /// [`MatrixSlice`] of an engine's shared matrix): signatures are
    /// bucketed straight from the rows, so construction computes **zero**
    /// distances beyond what the caller already paid for the matrix, and
    /// later engine inserts push one shared row this FQA buckets by id
    /// ([`MetricIndex::insert_adopted`]). Queries are byte-identical to
    /// [`build`](Self::build)'s.
    pub fn build_with_matrix(
        objects: Vec<O>,
        metric: M,
        pivots: Vec<O>,
        matrix_rows: impl Into<MatrixSlice>,
        max_distance: f64,
        buckets: u32,
    ) -> Self {
        assert!(
            metric.is_discrete(),
            "FQA requires a discrete distance function (paper §4.2)"
        );
        assert!(!pivots.is_empty() && buckets >= 2 && max_distance > 0.0);
        let matrix_rows = matrix_rows.into();
        assert_eq!(
            matrix_rows.len(),
            objects.len(),
            "one matrix row per object"
        );
        assert_eq!(
            matrix_rows.width(),
            pivots.len(),
            "one matrix column per pivot"
        );
        let width = (max_distance / buckets as f64).max(1.0);
        let table = ObjTable::new(objects);
        let mut rows: Vec<(Vec<u32>, ObjId)> = table
            .iter()
            .map(|(id, _)| {
                let sig = matrix_rows
                    .row(id as usize)
                    .iter()
                    .map(|&d| bucket(d, width, buckets))
                    .collect();
                (sig, id)
            })
            .collect();
        rows.sort();
        Fqa {
            metric: CountingMetric::new(metric),
            pivots,
            width,
            buckets,
            rows,
            table,
            adopted: Some(matrix_rows),
        }
    }

    fn signature(&self, o: &O) -> Vec<u32> {
        self.pivots
            .iter()
            .map(|p| bucket(self.metric.dist(o, p), self.width, self.buckets))
            .collect()
    }

    fn signature_of_row(&self, row: &[f64]) -> Vec<u32> {
        row.iter()
            .map(|&d| bucket(d, self.width, self.buckets))
            .collect()
    }

    fn insert_sorted(&mut self, sig: Vec<u32>, id: ObjId) {
        let pos = self.rows.partition_point(|(s, _)| (s, 0) < (&sig, 1));
        self.rows.insert(pos, (sig, id));
    }

    /// Bucket value range compatible with `d(q,p) = dq` and radius `r` at
    /// one level: objects at distance in `[dq-r, dq+r]` fall in these
    /// buckets (bucket `b` covers `[b·w, (b+1)·w)`).
    fn bucket_range(&self, dq: f64, r: f64) -> (u32, u32) {
        let lo = ((dq - r).max(0.0) / self.width) as u32;
        let hi = ((dq + r) / self.width) as u32;
        (lo.min(self.buckets - 1), hi.min(self.buckets - 1))
    }

    /// Finds the sub-slice of `rows[lo..hi]` whose signatures have value
    /// `v` at position `level`, given that the slice is sorted and shares a
    /// common prefix below `level`.
    fn value_run(&self, lo: usize, hi: usize, level: usize, v: u32) -> (usize, usize) {
        let s = &self.rows[lo..hi];
        let start = lo + s.partition_point(|(sig, _)| sig[level] < v);
        let end = lo + s.partition_point(|(sig, _)| sig[level] <= v);
        (start, end)
    }

    /// The instrumented metric.
    pub fn metric(&self) -> &CountingMetric<M> {
        &self.metric
    }

    /// Lower bound on `d(q, o)` for any object whose level-`i` bucket is
    /// `b`, combined over all levels processed so far (monotone in the
    /// recursion).
    fn bucket_gap(&self, dq: f64, b: u32) -> f64 {
        let lo = b as f64 * self.width;
        let hi = if b + 1 == self.buckets {
            f64::INFINITY
        } else {
            (b + 1) as f64 * self.width
        };
        if dq < lo {
            lo - dq
        } else if dq >= hi {
            dq - hi
        } else {
            0.0
        }
    }

    /// The classic FQA range query: best-case `log n` descent over bucketed
    /// signature runs. The only range path for plain builds; adopted
    /// builds filter through the exact-row kernel instead (module docs).
    fn range_by_signature(&self, q: &O, r: f64) -> Vec<ObjId> {
        // Same boundary contract as the adopted path: a malformed radius
        // is an empty answer here, never a panic.
        debug_assert!(!r.is_nan(), "NaN radius must be rejected upstream");
        if r.is_nan() || r < 0.0 {
            return Vec::new();
        }
        let qd: Vec<f64> = self.pivots.iter().map(|p| self.metric.dist(q, p)).collect();
        let mut out = Vec::new();
        // Iterative stack of (slice start, slice end, level).
        let mut stack = vec![(0usize, self.rows.len(), 0usize)];
        while let Some((lo, hi, level)) = stack.pop() {
            if lo >= hi {
                continue;
            }
            if level == self.pivots.len() {
                for (_, id) in &self.rows[lo..hi] {
                    if let Some(o) = self.table.get(*id) {
                        if self.metric.dist(q, o) <= r {
                            out.push(*id);
                        }
                    }
                }
                continue;
            }
            let (blo, bhi) = self.bucket_range(qd[level], r);
            for v in blo..=bhi {
                let (s, e) = self.value_run(lo, hi, level, v);
                if s < e {
                    stack.push((s, e, level + 1));
                }
            }
        }
        out
    }

    /// The classic FQA kNN query: best-first over signature runs, keyed by
    /// the accumulated bucket lower bound.
    fn knn_by_signature(&self, q: &O, k: usize) -> Vec<Neighbor> {
        if k == 0 || self.table.is_empty() {
            return Vec::new();
        }
        let qd: Vec<f64> = self.pivots.iter().map(|p| self.metric.dist(q, p)).collect();
        let mut result: BinaryHeap<Neighbor> = BinaryHeap::new();
        let radius = |res: &BinaryHeap<Neighbor>| {
            if res.len() < k {
                f64::INFINITY
            } else {
                res.peek().unwrap().dist
            }
        };
        let mut heap: BinaryHeap<Reverse<(u64, usize, usize, usize)>> = BinaryHeap::new();
        heap.push(Reverse((0, 0, self.rows.len(), 0)));
        while let Some(Reverse((lb_bits, lo, hi, level))) = heap.pop() {
            let lb = f64::from_bits(lb_bits);
            if lb > radius(&result) || lo >= hi {
                if lb > radius(&result) {
                    break;
                }
                continue;
            }
            if level == self.pivots.len() {
                for (_, id) in &self.rows[lo..hi] {
                    let Some(o) = self.table.get(*id) else {
                        continue;
                    };
                    let d = self.metric.dist(q, o);
                    if d < radius(&result) || result.len() < k {
                        result.push(Neighbor::new(*id, d));
                        if result.len() > k {
                            result.pop();
                        }
                    }
                }
                continue;
            }
            // All bucket values present in this run.
            let mut v = self.rows[lo].0[level];
            let last = self.rows[hi - 1].0[level];
            loop {
                let (s, e) = self.value_run(lo, hi, level, v);
                if s < e {
                    let child_lb = lb.max(self.bucket_gap(qd[level], v));
                    if child_lb <= radius(&result) {
                        heap.push(Reverse((child_lb.to_bits(), s, e, level + 1)));
                    }
                }
                if v >= last {
                    break;
                }
                // Jump to the next present value.
                v = if e < hi { self.rows[e].0[level] } else { break };
            }
        }
        let mut out = result.into_sorted_vec();
        out.truncate(k);
        out
    }
}

impl<O, M> MetricIndex<O> for Fqa<O, M>
where
    O: Clone + EncodeObject + Send + Sync + 'static,
    M: Metric<O>,
{
    fn name(&self) -> &str {
        "FQA"
    }

    fn len(&self) -> usize {
        self.table.len()
    }

    fn range_query(&self, q: &O, r: f64) -> Vec<ObjId> {
        if self.adopted.is_some() {
            let mut out = Vec::new();
            self.range_query_into(q, r, &mut QueryScratch::new(), &mut out);
            return out;
        }
        self.range_by_signature(q, r)
    }

    fn knn_query(&self, q: &O, k: usize) -> Vec<Neighbor> {
        if self.adopted.is_some() {
            let mut out = Vec::new();
            self.knn_query_into(q, k, &mut QueryScratch::new(), &mut out);
            return out;
        }
        self.knn_by_signature(q, k)
    }

    fn range_query_into(&self, q: &O, r: f64, scratch: &mut QueryScratch, out: &mut Vec<ObjId>) {
        // Malformed radii are rejected at the engine boundary; here they
        // are an empty answer, never a panic. `+∞` stays valid.
        debug_assert!(!r.is_nan(), "NaN radius must be rejected upstream");
        if r.is_nan() || r < 0.0 {
            return;
        }
        let Some(slice) = &self.adopted else {
            out.extend(self.range_by_signature(q, r));
            return;
        };
        // Adopted hot path: blocked kernel over the exact rows, survivors
        // collected, then verification — same shape as LAESA.
        scratch.note_kernel(slice.len());
        let QueryScratch {
            qd, lbs, survivors, ..
        } = scratch;
        qd.clear();
        qd.extend(self.pivots.iter().map(|p| self.metric.dist(q, p)));
        slice.lower_bounds_into(qd, lbs);
        survivors.clear();
        survivors.extend(
            self.table
                .iter()
                .filter(|&(id, _)| lbs[id as usize] <= r)
                .map(|(id, _)| id),
        );
        for &id in survivors.iter() {
            let o = self.table.get(id).expect("survivor is live");
            // Inlined identity unless the chaos suite arms `fqa.dist`.
            if fault::dist("fqa.dist", id as u64, self.metric.dist(q, o)) <= r {
                out.push(id);
            }
        }
    }

    fn knn_query_into(&self, q: &O, k: usize, scratch: &mut QueryScratch, out: &mut Vec<Neighbor>) {
        self.knn_query_into_seeded(q, k, f64::INFINITY, scratch, out);
    }

    fn knn_query_into_seeded(
        &self,
        q: &O,
        k: usize,
        seed: f64,
        scratch: &mut QueryScratch,
        out: &mut Vec<Neighbor>,
    ) {
        if k == 0 {
            return;
        }
        let Some(slice) = &self.adopted else {
            // The signature path has no per-object lower bounds to seed.
            out.extend(self.knn_by_signature(q, k));
            return;
        };
        scratch.note_kernel(slice.len());
        let QueryScratch { qd, heap, lbs, .. } = scratch;
        qd.clear();
        qd.extend(self.pivots.iter().map(|p| self.metric.dist(q, p)));
        slice.lower_bounds_into(qd, lbs);
        heap.clear();
        for (id, o) in self.table.iter() {
            let radius = if heap.len() < k {
                f64::INFINITY
            } else {
                heap.peek().expect("heap is full").dist
            };
            let prune = if radius < seed { radius } else { seed };
            if prune.is_finite() && lbs[id as usize] > prune {
                continue;
            }
            let d = self.metric.dist(q, o);
            if d < radius || heap.len() < k {
                heap.push(Neighbor::new(id, d));
                if heap.len() > k {
                    heap.pop();
                }
            }
        }
        drain_heap_sorted(heap, out);
    }

    fn insert(&mut self, o: O) -> ObjId {
        // An adopted FQA keeps its slice slot-aligned even on the plain
        // path: compute the raw row once, push it as one shared row
        // (staged + published + adopted), and bucket the signature from it.
        let sig = if self.adopted.is_some() {
            let row: Vec<f64> = self
                .pivots
                .iter()
                .map(|p| self.metric.dist(&o, p))
                .collect();
            let sig = self.signature_of_row(&row);
            if let Some(slice) = &mut self.adopted {
                slice.push_adopt(&row);
            }
            sig
        } else {
            self.signature(&o)
        };
        let id = self.table.push(o);
        self.insert_sorted(sig, id);
        id
    }

    fn insert_adopted(&mut self, o: O, row: ObjId, row_data: &[f64]) -> Result<ObjId, O> {
        // Bucket the signature straight from the engine-staged row's data:
        // zero distance computations, and no read of the (possibly still
        // unpublished) shared matrix.
        if self.adopted.is_none() {
            return Err(o);
        }
        debug_assert_eq!(row_data.len(), self.pivots.len());
        let sig = self.signature_of_row(row_data);
        let slice = self.adopted.as_mut().expect("checked adopted above");
        if (row as usize) >= slice.shared().rows() {
            return Err(o);
        }
        let local = slice.adopt(row as usize);
        let id = self.table.push(o);
        debug_assert_eq!(id as usize, local, "slice stays slot-aligned");
        self.insert_sorted(sig, id);
        Ok(id)
    }

    fn refresh_rows(&mut self) {
        if let Some(slice) = &mut self.adopted {
            slice.refresh();
        }
    }

    fn release_rows(&mut self) {
        if let Some(slice) = &mut self.adopted {
            slice.release();
        }
    }

    fn compact_rows(&mut self, keep: &[ObjId], rows: &[ObjId]) -> bool {
        if self.adopted.is_none() {
            return false;
        }
        debug_assert_eq!(keep.len(), rows.len());
        // Remap slot ids in the sorted signature array (signatures are
        // unchanged — zero distance computations), re-sorting because keep
        // order is ascending global id, not necessarily ascending old slot.
        let mut remap = vec![u32::MAX; self.table.slots()];
        for (new, &old) in keep.iter().enumerate() {
            remap[old as usize] = new as u32;
        }
        for (_, id) in self.rows.iter_mut() {
            *id = remap[*id as usize];
            debug_assert_ne!(*id, u32::MAX, "signature rows hold only live ids");
        }
        self.rows.sort();
        self.table.compact(keep);
        if let Some(slice) = &mut self.adopted {
            slice.reindex(rows.to_vec());
        }
        true
    }

    fn remove(&mut self, id: ObjId) -> bool {
        if self.table.get(id).is_none() {
            return false;
        }
        // Re-derive the signature from the adopted row when present (no
        // distance computations); fall back to the metric otherwise.
        let sig = match &self.adopted {
            Some(slice) => self.signature_of_row(slice.row(id as usize)),
            None => {
                let o = self.table.get(id).cloned().expect("checked live above");
                self.signature(&o)
            }
        };
        // Locate the run of equal signatures, then the id within it.
        let start = self.rows.partition_point(|(s, _)| s < &sig);
        let mut pos = None;
        for (i, (s, rid)) in self.rows[start..].iter().enumerate() {
            if s != &sig {
                break;
            }
            if *rid == id {
                pos = Some(start + i);
                break;
            }
        }
        let Some(pos) = pos else { return false };
        self.rows.remove(pos);
        self.table.remove(id);
        true
    }

    fn get(&self, id: ObjId) -> Option<O> {
        self.table.get(id).cloned()
    }

    fn storage(&self) -> StorageFootprint {
        let objs: u64 = self.table.iter().map(|(_, o)| o.encoded_len() as u64).sum();
        // Signatures are the compact part: l small integers per object.
        let sigs: u64 = self.rows.iter().map(|(s, _)| 4 * s.len() as u64 + 4).sum();
        let pivots: u64 = self.pivots.iter().map(|p| p.encoded_len() as u64).sum();
        StorageFootprint::mem(objs + sigs + pivots)
    }

    fn counters(&self) -> Counters {
        Counters {
            compdists: self.metric.count(),
            ..Counters::default()
        }
    }

    fn reset_counters(&self) {
        self.metric.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmi_metric::datasets;
    use pmi_metric::{BruteForce, EditDistance, LInf};
    use pmi_pivots::select_hfi;

    fn build_words(n: usize) -> (Vec<String>, Fqa<String, EditDistance>) {
        let ws = datasets::words(n, 17);
        let pv: Vec<String> = select_hfi(&ws, &EditDistance, 5, 17)
            .into_iter()
            .map(|i| ws[i].clone())
            .collect();
        let idx = Fqa::build(ws.clone(), EditDistance, pv, 34.0, 16);
        (ws, idx)
    }

    #[test]
    fn range_matches_brute_force() {
        let (ws, idx) = build_words(400);
        let oracle = BruteForce::new(ws.clone(), EditDistance);
        for r in [1.0, 4.0, 12.0] {
            let mut got = idx.range_query(&ws[9], r);
            got.sort();
            let mut want = oracle.range_query(&ws[9], r);
            want.sort();
            assert_eq!(got, want, "r={r}");
        }
    }

    #[test]
    fn knn_matches_brute_force() {
        let (ws, idx) = build_words(400);
        let oracle = BruteForce::new(ws.clone(), EditDistance);
        for k in [1usize, 7, 25] {
            let got = idx.knn_query(&ws[55], k);
            let want = oracle.knn_query(&ws[55], k);
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                assert!((g.dist - w.dist).abs() < 1e-9, "k={k}");
            }
        }
    }

    #[test]
    fn works_on_synthetic() {
        let pts = datasets::synthetic(400, 17);
        let m = LInf::discrete();
        let pv: Vec<Vec<f32>> = select_hfi(&pts, &m, 5, 17)
            .into_iter()
            .map(|i| pts[i].clone())
            .collect();
        let idx = Fqa::build(pts.clone(), m, pv, 10000.0, 32);
        let oracle = BruteForce::new(pts.clone(), m);
        let mut got = idx.range_query(&pts[100], 1800.0);
        got.sort();
        let mut want = oracle.range_query(&pts[100], 1800.0);
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn signatures_prune() {
        let (ws, idx) = build_words(800);
        idx.reset_counters();
        let _ = idx.range_query(&ws[0], 1.0);
        let cd = idx.counters().compdists;
        assert!(cd < 800 / 2, "expected pruning, got {cd}");
    }

    #[test]
    fn more_compact_than_fqt() {
        // The FQA's point: signature array beats materialized tree nodes.
        let ws = datasets::words(600, 19);
        let pv: Vec<String> = select_hfi(&ws, &EditDistance, 5, 19)
            .into_iter()
            .map(|i| ws[i].clone())
            .collect();
        let fqa = Fqa::build(ws.clone(), EditDistance, pv.clone(), 34.0, 16);
        let fqt = crate::DiscreteTree::fqt(
            ws.clone(),
            EditDistance,
            pv,
            crate::DiscreteTreeConfig {
                max_distance: 34.0,
                buckets: 16,
                leaf_cap: 8,
                max_depth: 16,
                seed: 19,
            },
        );
        assert!(fqa.storage().mem_bytes < fqt.storage().mem_bytes);
    }

    #[test]
    fn matrix_adoption_is_free_and_byte_identical() {
        use pmi_metric::{MetricIndex as _, PivotMatrix};
        let (ws, plain) = build_words(300);
        let matrix = PivotMatrix::compute(&ws, &EditDistance, &plain.pivots, 2);
        let mut adopted = Fqa::build_with_matrix(
            ws.clone(),
            EditDistance,
            plain.pivots.clone(),
            matrix,
            34.0,
            16,
        );
        assert_eq!(
            adopted.counters().compdists,
            0,
            "signatures bucket matrix rows"
        );
        assert_eq!(adopted.rows, plain.rows, "identical signature array");
        for r in [1.0, 4.0] {
            let mut got = adopted.range_query(&ws[9], r);
            got.sort_unstable();
            let mut want = plain.range_query(&ws[9], r);
            want.sort_unstable();
            assert_eq!(got, want);
        }
        // The adopted kernel scan and the plain signature descent agree on
        // every distance; ties at the k-th distance may resolve to a
        // different id (the trait allows either).
        let got = adopted.knn_query(&ws[55], 7);
        let want = plain.knn_query(&ws[55], 7);
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.dist, w.dist);
        }
        // Engine-style insert: push the row into the shared matrix, adopt
        // by id — still zero distance computations.
        let o = ws[11].clone();
        let row: Vec<f64> = plain
            .pivots
            .iter()
            .map(|p| EditDistance.dist(&o, p))
            .collect();
        let shared_row = adopted.adopted.as_ref().unwrap().shared().push_row(&row);
        adopted.reset_counters();
        let id = adopted
            .insert_adopted(o.clone(), shared_row as ObjId, &row)
            .expect("adopting FQA accepts the row");
        assert_eq!(adopted.counters().compdists, 0, "adoption computes nothing");
        assert!(adopted.range_query(&o, 0.0).contains(&id));
        // A plain-built FQA has no adopted matrix and hands the object back.
        let (_, mut bare) = build_words(50);
        assert!(bare.insert_adopted(o, 0, &row).is_err());
    }

    #[test]
    fn update_cycle() {
        let (ws, mut idx) = build_words(200);
        let o = idx.get(31).unwrap();
        assert!(idx.remove(31));
        assert!(!idx.remove(31));
        assert_eq!(idx.len(), 199);
        let id = idx.insert(o);
        assert!(idx.range_query(&ws[31], 0.0).contains(&id));
        assert_eq!(idx.len(), 200);
    }

    #[test]
    #[should_panic]
    fn continuous_metric_rejected() {
        let pts = datasets::la(40, 1);
        let _ = Fqa::build(
            pts.clone(),
            pmi_metric::L2,
            vec![pts[0].clone()],
            14143.0,
            16,
        );
    }
}
