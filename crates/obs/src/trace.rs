//! Per-query tracing: the event format, capture policy, and the
//! EXPLAIN-ANALYZE renderer.
//!
//! The aggregate layer ([`crate::registry`]) answers "how expensive was the
//! batch"; this module answers "why was *this query* expensive": which
//! shards the router pruned and at what Lemma-1 lower bound, in what order
//! the survivors were probed, how many rows the blocked kernel filtered vs.
//! survived to exact verification, and where the wall went.
//!
//! # Discipline
//!
//! The same zero-overhead rules as the registry apply:
//!
//! * **Per-worker, fixed capacity, plain writes.** Each serve worker owns
//!   one [`TraceRing`] inside its scratch; recording an event is a bounds
//!   check and a slot write — no allocation (the ring's backing store is
//!   allocated once, on the worker's first traced query) and no atomics.
//! * **Nothing on the untraced hot path.** Whether a query records at all
//!   is one branch on a per-batch bool; with the default
//!   [`TracePolicy::disabled`] the serve loop is unchanged.
//! * **Capture is a policy decision.** [`TracePolicy`] samples 1-in-N
//!   queries up front and/or keeps the ring of *every* query so that a
//!   query whose wall exceeds the slow-query threshold can be captured
//!   retroactively — the events were already recorded by the time the wall
//!   is known.
//!
//! A captured query becomes a [`QueryTrace`] — an owned event list whose
//! counters sum exactly to the engine's `ServeReport` totals (asserted in
//! `tests/counters.rs`) — and [`QueryTrace::explain`] renders it as a plan
//! tree.

/// When and what the engine captures per query. Lives on `EngineConfig`
/// and is runtime-swappable (`ShardedEngine::set_trace_policy`); the
/// default is fully disabled, which keeps the serve hot path untraced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TracePolicy {
    /// Capture every N-th query a worker serves (`0` disables sampling).
    /// `1` traces every query — the setting under which trace counters sum
    /// to the full batch totals.
    pub sample_every: u64,
    /// Retroactively capture any query whose wall clock meets or exceeds
    /// this many nanoseconds (`0` disables slow-query capture). While set,
    /// every query records events — plain ring writes — so the decision
    /// can be made after the wall is known.
    pub slow_query_nanos: u64,
    /// Cap on captured traces per serve batch (and per worker), bounding
    /// report memory no matter how many queries qualify.
    pub max_captured: usize,
}

impl TracePolicy {
    /// No tracing at all — the default; the serve path stays untraced.
    pub const fn disabled() -> Self {
        TracePolicy {
            sample_every: 0,
            slow_query_nanos: 0,
            max_captured: 8,
        }
    }

    /// Trace every `n`-th query per worker (`n == 1`: every query).
    pub const fn sample(n: u64) -> Self {
        TracePolicy {
            sample_every: n,
            ..TracePolicy::disabled()
        }
    }

    /// Capture queries at least `secs` seconds of wall apart from the rest.
    pub fn slow(secs: f64) -> Self {
        TracePolicy {
            slow_query_nanos: (secs.max(0.0) * 1e9) as u64,
            ..TracePolicy::disabled()
        }
    }

    /// With the capture cap replaced.
    pub const fn with_max_captured(mut self, max: usize) -> Self {
        self.max_captured = max;
        self
    }

    /// Whether any capture mode is active.
    pub fn enabled(&self) -> bool {
        self.sample_every > 0 || self.slow_query_nanos > 0
    }
}

impl Default for TracePolicy {
    fn default() -> Self {
        TracePolicy::disabled()
    }
}

/// One traced step of a query's execution. `Copy` and fixed-size so ring
/// writes are slot stores; counters are the exact per-step deltas of the
/// same sources the `ServeReport` aggregates.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TraceEvent {
    /// The router's verdict on one shard: its box lower bound against the
    /// query's mapped point, whether it was probed, and at which position
    /// of the probe schedule the decision fell (kNN probes best-first, so
    /// order is the pruning order too).
    Plan {
        /// Shard the verdict is about.
        shard: u32,
        /// Lemma-1 lower bound of the shard's routing box (0 for
        /// round-robin engines, which have no boxes).
        lower_bound: f64,
        /// `true` if the shard was probed, `false` if pruned.
        probed: bool,
        /// Position in the planning order (probe rank for probed shards).
        order: u32,
    },
    /// Planning finished: totals plus the plan-stage wall.
    PlanDone {
        /// Shards considered (== the engine's shard count).
        shards: u32,
        /// Shards probed.
        probed: u32,
        /// Shards pruned.
        pruned: u32,
        /// Pivot distances paid to map the query into pivot space.
        map_dists: u64,
        /// Plan-stage wall, nanoseconds.
        nanos: u64,
    },
    /// One shard probe: exact per-probe counter deltas.
    Scan {
        /// Shard probed.
        shard: u32,
        /// Distance computations this probe paid (the paper's compdists).
        dists: u64,
        /// Simulated page accesses this probe paid.
        page_accesses: u64,
        /// Rows the blocked scan kernel filtered (0 for tree shards).
        kernel_rows: u64,
        /// Kernel blocks those rows amounted to.
        kernel_blocks: u64,
        /// Candidates that survived the lower-bound filter into exact
        /// verification (range scans over kernel shards; 0 elsewhere).
        survivors: u64,
        /// Probe wall, nanoseconds.
        nanos: u64,
    },
    /// The merge step: result count plus the merge wall.
    Merge {
        /// Results the query returned after the global merge.
        results: u64,
        /// Merge-stage wall, nanoseconds.
        nanos: u64,
    },
}

/// Fixed-capacity per-worker event ring. The backing store is allocated
/// lazily on the first traced query and reused for every query after it;
/// recording overwrites the oldest event once full (the tail of a plan is
/// worth more than its head when a huge fan-out overflows the ring).
#[derive(Debug, Default)]
pub struct TraceRing {
    buf: Vec<TraceEvent>,
    start: usize,
    len: usize,
    dropped: u64,
}

/// Events one query may record before its ring wraps: a Plan verdict and a
/// Scan per shard plus the two stage summaries covers engines up to ~120
/// shards, far beyond the paper's P ≤ 16 regime.
pub const TRACE_RING_CAPACITY: usize = 256;

impl TraceRing {
    /// An empty ring (no backing store until the first push).
    pub fn new() -> Self {
        TraceRing::default()
    }

    /// Forgets all events (capacity kept) — called at traced-query start.
    pub fn clear(&mut self) {
        self.start = 0;
        self.len = 0;
        self.dropped = 0;
    }

    /// Records one event; overwrites the oldest once the ring is full.
    #[inline]
    pub fn push(&mut self, ev: TraceEvent) {
        if self.len < TRACE_RING_CAPACITY {
            let slot = (self.start + self.len) % TRACE_RING_CAPACITY;
            if slot == self.buf.len() {
                self.buf.push(ev);
            } else {
                self.buf[slot] = ev;
            }
            self.len += 1;
        } else {
            self.buf[self.start] = ev;
            self.start = (self.start + 1) % TRACE_RING_CAPACITY;
            self.dropped += 1;
        }
    }

    /// Events recorded since the last clear, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        (0..self.len).map(|i| &self.buf[(self.start + i) % TRACE_RING_CAPACITY])
    }

    /// How many events the ring overwrote since the last clear.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// What kind of query a trace describes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TraceKind {
    /// `MRQ(q, r)`.
    Range {
        /// The query radius.
        radius: f64,
    },
    /// `MkNNQ(q, k)`.
    Knn {
        /// The neighbor count.
        k: usize,
    },
}

/// One captured query: the owned copy of its ring, ready to render. The
/// capture path (not the hot path) pays the one allocation.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryTrace {
    /// Index of the query in its serve batch.
    pub query: usize,
    /// Range or kNN, with the query parameter.
    pub kind: TraceKind,
    /// The query's full wall, nanoseconds.
    pub wall_nanos: u64,
    /// Captured because it hit the 1-in-N sample.
    pub sampled: bool,
    /// Captured because its wall met the slow-query threshold.
    pub slow: bool,
    /// Events the ring overwrote before capture (0 unless the plan
    /// exceeded [`TRACE_RING_CAPACITY`] events).
    pub dropped_events: u64,
    /// The recorded events, oldest first.
    pub events: Vec<TraceEvent>,
}

impl QueryTrace {
    /// Shards this query probed (from the per-shard plan verdicts).
    pub fn shards_probed(&self) -> u64 {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Plan { probed: true, .. }))
            .count() as u64
    }

    /// Shards the router pruned for this query.
    pub fn shards_pruned(&self) -> u64 {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Plan { probed: false, .. }))
            .count() as u64
    }

    /// Distance computations across all probes (the paper's compdists).
    pub fn compdists(&self) -> u64 {
        self.events
            .iter()
            .map(|e| match e {
                TraceEvent::Scan { dists, .. } => *dists,
                _ => 0,
            })
            .sum()
    }

    /// Page accesses across all probes.
    pub fn page_accesses(&self) -> u64 {
        self.events
            .iter()
            .map(|e| match e {
                TraceEvent::Scan { page_accesses, .. } => *page_accesses,
                _ => 0,
            })
            .sum()
    }

    /// Rows the blocked kernel filtered across all probes.
    pub fn kernel_rows(&self) -> u64 {
        self.events
            .iter()
            .map(|e| match e {
                TraceEvent::Scan { kernel_rows, .. } => *kernel_rows,
                _ => 0,
            })
            .sum()
    }

    /// Results the query returned (from the merge event).
    pub fn results(&self) -> u64 {
        self.events
            .iter()
            .map(|e| match e {
                TraceEvent::Merge { results, .. } => *results,
                _ => 0,
            })
            .sum()
    }

    /// Renders the trace as an EXPLAIN-ANALYZE-style plan tree: the plan
    /// stage with every per-shard prune/probe verdict and its lower bound,
    /// one scan line per probe with its exact counter deltas, and the
    /// merge. Walls are per stage; counters are exact.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        let head = match self.kind {
            TraceKind::Range { radius } => format!("range(r={radius})"),
            TraceKind::Knn { k } => format!("knn(k={k})"),
        };
        let why = match (self.sampled, self.slow) {
            (_, true) => " [slow]",
            (true, false) => " [sampled]",
            (false, false) => "",
        };
        out.push_str(&format!(
            "query #{} {head}  wall {}{why}\n",
            self.query,
            fmt_nanos(self.wall_nanos)
        ));

        // Plan stage: the summary line, then one verdict per shard in
        // planning order.
        let mut plan: Vec<(u32, u32, f64, bool)> = self
            .events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Plan {
                    shard,
                    lower_bound,
                    probed,
                    order,
                } => Some((*order, *shard, *lower_bound, *probed)),
                _ => None,
            })
            .collect();
        plan.sort_by_key(|&(order, shard, ..)| (order, shard));
        let done = self.events.iter().find_map(|e| match e {
            TraceEvent::PlanDone {
                shards,
                probed,
                pruned,
                map_dists,
                nanos,
            } => Some((*shards, *probed, *pruned, *map_dists, *nanos)),
            _ => None,
        });
        if let Some((shards, probed, pruned, map_dists, nanos)) = done {
            out.push_str(&format!(
                "├─ plan: probed {probed}/{shards} shards (pruned {pruned}), map_dists {map_dists}, {}\n",
                fmt_nanos(nanos)
            ));
        } else {
            out.push_str("├─ plan\n");
        }
        for (order, shard, lb, probed) in &plan {
            if *probed {
                out.push_str(&format!(
                    "│    probe #{order} → shard {shard}  lb {lb:.3}\n"
                ));
            } else {
                out.push_str(&format!("│    pruned    · shard {shard}  lb {lb:.3}\n"));
            }
        }

        // Scan stage: one line per probe, in probe order.
        for e in &self.events {
            if let TraceEvent::Scan {
                shard,
                dists,
                page_accesses,
                kernel_rows,
                kernel_blocks,
                survivors,
                nanos,
            } = e
            {
                out.push_str(&format!(
                    "├─ scan shard {shard}: dists {dists}, pages {page_accesses}"
                ));
                if *kernel_rows > 0 {
                    out.push_str(&format!(
                        ", kernel {kernel_rows} rows / {kernel_blocks} blocks, survivors {survivors}"
                    ));
                }
                out.push_str(&format!(", {}\n", fmt_nanos(*nanos)));
            }
        }

        match self.events.iter().rev().find_map(|e| match e {
            TraceEvent::Merge { results, nanos } => Some((*results, *nanos)),
            _ => None,
        }) {
            Some((results, nanos)) => {
                out.push_str(&format!(
                    "└─ merge: {results} results, {}\n",
                    fmt_nanos(nanos)
                ));
            }
            None => out.push_str("└─ merge: (not recorded)\n"),
        }
        if self.dropped_events > 0 {
            out.push_str(&format!(
                "   ({} events overwrote the ring)\n",
                self.dropped_events
            ));
        }
        out
    }
}

/// Formats nanoseconds with a readable unit (`431ns`, `12.3µs`, `4.56ms`,
/// `1.23s`).
fn fmt_nanos(ns: u64) -> String {
    let ns = ns as f64;
    if ns < 1e3 {
        format!("{ns:.0}ns")
    } else if ns < 1e6 {
        format!("{:.1}µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2}ms", ns / 1e6)
    } else {
        format!("{:.2}s", ns / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> QueryTrace {
        QueryTrace {
            query: 17,
            kind: TraceKind::Knn { k: 10 },
            wall_nanos: 123_400,
            sampled: true,
            slow: false,
            dropped_events: 0,
            events: vec![
                TraceEvent::Plan {
                    shard: 2,
                    lower_bound: 0.0,
                    probed: true,
                    order: 0,
                },
                TraceEvent::Scan {
                    shard: 2,
                    dists: 42,
                    page_accesses: 2,
                    kernel_rows: 1024,
                    kernel_blocks: 8,
                    survivors: 37,
                    nanos: 45_600,
                },
                TraceEvent::Plan {
                    shard: 0,
                    lower_bound: 9.99,
                    probed: false,
                    order: 1,
                },
                TraceEvent::PlanDone {
                    shards: 2,
                    probed: 1,
                    pruned: 1,
                    map_dists: 5,
                    nanos: 12_300,
                },
                TraceEvent::Merge {
                    results: 10,
                    nanos: 3_200,
                },
            ],
        }
    }

    #[test]
    fn policy_modes() {
        assert!(!TracePolicy::disabled().enabled());
        assert!(TracePolicy::sample(8).enabled());
        assert!(TracePolicy::slow(0.001).enabled());
        assert_eq!(TracePolicy::slow(0.001).slow_query_nanos, 1_000_000);
        assert_eq!(TracePolicy::sample(1).with_max_captured(3).max_captured, 3);
        assert_eq!(TracePolicy::default(), TracePolicy::disabled());
    }

    #[test]
    fn ring_records_in_order_and_wraps() {
        let mut r = TraceRing::new();
        assert!(r.is_empty());
        for i in 0..TRACE_RING_CAPACITY + 5 {
            r.push(TraceEvent::Merge {
                results: i as u64,
                nanos: 0,
            });
        }
        assert_eq!(r.len(), TRACE_RING_CAPACITY);
        assert_eq!(r.dropped(), 5);
        let first = r.events().next().unwrap();
        assert_eq!(
            first,
            &TraceEvent::Merge {
                results: 5,
                nanos: 0
            }
        );
        let last = r.events().last().unwrap();
        assert_eq!(
            last,
            &TraceEvent::Merge {
                results: (TRACE_RING_CAPACITY + 4) as u64,
                nanos: 0
            }
        );
        r.clear();
        assert!(r.is_empty());
        r.push(TraceEvent::Merge {
            results: 7,
            nanos: 0,
        });
        assert_eq!(r.len(), 1);
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn trace_counters_sum_events() {
        let t = sample_trace();
        assert_eq!(t.shards_probed(), 1);
        assert_eq!(t.shards_pruned(), 1);
        assert_eq!(t.compdists(), 42);
        assert_eq!(t.page_accesses(), 2);
        assert_eq!(t.kernel_rows(), 1024);
        assert_eq!(t.results(), 10);
    }

    #[test]
    fn explain_renders_a_plan_tree() {
        let s = sample_trace().explain();
        assert!(s.contains("query #17 knn(k=10)"), "{s}");
        assert!(s.contains("[sampled]"), "{s}");
        assert!(s.contains("probed 1/2 shards (pruned 1)"), "{s}");
        assert!(s.contains("probe #0 → shard 2  lb 0.000"), "{s}");
        assert!(s.contains("pruned    · shard 0  lb 9.990"), "{s}");
        assert!(
            s.contains(
                "scan shard 2: dists 42, pages 2, kernel 1024 rows / 8 blocks, survivors 37"
            ),
            "{s}"
        );
        assert!(s.contains("merge: 10 results"), "{s}");
    }

    #[test]
    fn explain_marks_slow_queries() {
        let mut t = sample_trace();
        t.slow = true;
        assert!(t.explain().contains("[slow]"));
    }

    #[test]
    fn fmt_nanos_units() {
        assert_eq!(fmt_nanos(431), "431ns");
        assert_eq!(fmt_nanos(12_300), "12.3µs");
        assert_eq!(fmt_nanos(4_560_000), "4.56ms");
        assert_eq!(fmt_nanos(1_230_000_000), "1.23s");
    }
}
